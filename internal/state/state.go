// Package state implements the snapshot state backend used by the dataflow
// engine's asynchronous barrier checkpointing: a checkpoint is a consistent
// bundle of per-subtask operator state blobs, persisted either in memory
// (tests, benches) or on disk (gob files).
package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SubtaskKey identifies one operator subtask's state within a snapshot.
type SubtaskKey struct {
	OperatorID int
	Subtask    int
}

// String renders the key as "op/subtask".
func (k SubtaskKey) String() string { return fmt.Sprintf("%d/%d", k.OperatorID, k.Subtask) }

// Snapshot is a completed checkpoint: every subtask's serialized state.
type Snapshot struct {
	CheckpointID int64
	Entries      map[SubtaskKey][]byte
}

// NewSnapshot returns an empty snapshot for the given checkpoint id.
func NewSnapshot(id int64) *Snapshot {
	return &Snapshot{CheckpointID: id, Entries: make(map[SubtaskKey][]byte)}
}

// Put stores one subtask's state blob.
func (s *Snapshot) Put(k SubtaskKey, blob []byte) { s.Entries[k] = blob }

// Get returns one subtask's state blob, or nil if absent.
func (s *Snapshot) Get(k SubtaskKey) []byte { return s.Entries[k] }

// Backend persists completed snapshots and serves the latest one for
// recovery.
type Backend interface {
	// Persist durably stores a completed snapshot. Later snapshots must
	// have larger checkpoint ids.
	Persist(snap *Snapshot) error
	// Latest returns the most recent persisted snapshot, or ok=false if
	// none exists.
	Latest() (*Snapshot, bool)
	// Load returns the snapshot with the given checkpoint id.
	Load(checkpointID int64) (*Snapshot, error)
}

// MemoryBackend keeps snapshots in memory; safe for concurrent use.
type MemoryBackend struct {
	mu    sync.Mutex
	snaps map[int64]*Snapshot
	ids   []int64
	// Retain limits how many snapshots are kept (0 = unlimited).
	Retain int
}

// NewMemoryBackend returns an empty in-memory backend retaining the last
// `retain` snapshots (0 = all).
func NewMemoryBackend(retain int) *MemoryBackend {
	return &MemoryBackend{snaps: make(map[int64]*Snapshot), Retain: retain}
}

// Persist implements Backend.
func (m *MemoryBackend) Persist(snap *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.snaps[snap.CheckpointID]; dup {
		return fmt.Errorf("state: checkpoint %d already persisted", snap.CheckpointID)
	}
	m.snaps[snap.CheckpointID] = snap
	m.ids = append(m.ids, snap.CheckpointID)
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	if m.Retain > 0 {
		for len(m.ids) > m.Retain {
			delete(m.snaps, m.ids[0])
			m.ids = m.ids[1:]
		}
	}
	return nil
}

// Latest implements Backend.
func (m *MemoryBackend) Latest() (*Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ids) == 0 {
		return nil, false
	}
	return m.snaps[m.ids[len(m.ids)-1]], true
}

// Load implements Backend.
func (m *MemoryBackend) Load(id int64) (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[id]
	if !ok {
		return nil, fmt.Errorf("state: checkpoint %d not found", id)
	}
	return s, nil
}

// FileBackend persists each snapshot as a gob file in a directory.
type FileBackend struct {
	dir string
	mu  sync.Mutex
}

// NewFileBackend returns a backend writing to dir, creating it if needed.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: create dir: %w", err)
	}
	return &FileBackend{dir: dir}, nil
}

type fileSnapshot struct {
	CheckpointID int64
	Keys         []SubtaskKey
	Blobs        [][]byte
}

func (f *FileBackend) path(id int64) string {
	return filepath.Join(f.dir, fmt.Sprintf("chk-%012d.gob", id))
}

// Persist implements Backend.
func (f *FileBackend) Persist(snap *Snapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := fileSnapshot{CheckpointID: snap.CheckpointID}
	for k, b := range snap.Entries {
		fs.Keys = append(fs.Keys, k)
		fs.Blobs = append(fs.Blobs, b)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fs); err != nil {
		return fmt.Errorf("state: encode checkpoint %d: %w", snap.CheckpointID, err)
	}
	tmp := f.path(snap.CheckpointID) + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.path(snap.CheckpointID))
}

// Latest implements Backend.
func (f *FileBackend) Latest() (*Snapshot, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	matches, err := filepath.Glob(filepath.Join(f.dir, "chk-*.gob"))
	if err != nil || len(matches) == 0 {
		return nil, false
	}
	sort.Strings(matches)
	snap, err := f.read(matches[len(matches)-1])
	if err != nil {
		return nil, false
	}
	return snap, true
}

// Load implements Backend.
func (f *FileBackend) Load(id int64) (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.read(f.path(id))
}

func (f *FileBackend) read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("state: read %s: %w", path, err)
	}
	var fs fileSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&fs); err != nil {
		return nil, fmt.Errorf("state: decode %s: %w", path, err)
	}
	snap := NewSnapshot(fs.CheckpointID)
	for i, k := range fs.Keys {
		snap.Put(k, fs.Blobs[i])
	}
	return snap, nil
}
