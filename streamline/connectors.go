package streamline

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
)

// Built-in connectors. Each returns a Source[T] for From; they compose —
// Hybrid(JSONL[...](path), Channel(live)) is a pipeline bootstrapped from a
// file of history and continued on a live channel, and Paced(src, rate)
// throttles any connector into a live-stream simulation.

// ---- slices (data at rest) ------------------------------------------------

// Slice returns a bounded in-memory source (data at rest). Element i
// carries event timestamp i; keys are assigned by a later KeyBy (or a
// WithTimestamps option). Elements are split round-robin across subtasks.
func Slice[T any](items []T) Source[T] {
	return sliceSource[T]{make: func(i int64) Keyed[T] { return Keyed[T]{Ts: i, Value: items[i]} }, n: int64(len(items))}
}

// KeyedSlice returns a bounded in-memory source of records carrying
// explicit timestamps and keys, split round-robin across subtasks.
func KeyedSlice[T any](items []Keyed[T]) Source[T] {
	return sliceSource[T]{make: func(i int64) Keyed[T] { return items[i] }, n: int64(len(items))}
}

type sliceSource[T any] struct {
	make func(i int64) Keyed[T]
	n    int64
}

func (s sliceSource[T]) Open(sub, par int) Reader[T] {
	return &sliceReader[T]{src: s, idx: int64(sub), stride: int64(par)}
}

// sliceReader walks the global indices of one subtask's round-robin share.
type sliceReader[T any] struct {
	src    sliceSource[T]
	idx    int64 // next global index
	stride int64
}

func (r *sliceReader[T]) Next() (Keyed[T], ReadStatus) {
	if r.idx >= r.src.n {
		return Keyed[T]{}, ReadEnd
	}
	k := r.src.make(r.idx)
	r.idx += r.stride
	return k, ReadData
}

func (r *sliceReader[T]) Snapshot() ([]byte, error) { return encodeCursor(r.idx) }

func (r *sliceReader[T]) Restore(blob []byte) error {
	idx, err := decodeCursor(blob)
	if err != nil {
		return err
	}
	r.idx = idx
	return nil
}

// ---- generators (at rest or in motion, by count) --------------------------

// Generator returns a deterministic generator source. count < 0 makes it
// unbounded (data in motion); otherwise it is a bounded source that ends —
// the same plan either way. gen computes the i-th record of the given
// subtask; a bounded count is split across subtasks.
func Generator[T any](count int64, gen func(subtask, parallelism int, i int64) Keyed[T]) Source[T] {
	return generatorSource[T]{count: count, gen: gen}
}

type generatorSource[T any] struct {
	count int64
	gen   func(sub, par int, i int64) Keyed[T]
}

func (g generatorSource[T]) Open(sub, par int) Reader[T] {
	return &generatorReader[T]{
		n:   core.SplitCount(g.count, sub, par),
		gen: func(i int64) Keyed[T] { return g.gen(sub, par, i) },
	}
}

type generatorReader[T any] struct {
	n   int64
	gen func(i int64) Keyed[T]
	idx int64
}

func (r *generatorReader[T]) Next() (Keyed[T], ReadStatus) {
	if r.n >= 0 && r.idx >= r.n {
		return Keyed[T]{}, ReadEnd
	}
	k := r.gen(r.idx)
	r.idx++
	return k, ReadData
}

func (r *generatorReader[T]) Snapshot() ([]byte, error) { return encodeCursor(r.idx) }

func (r *generatorReader[T]) Restore(blob []byte) error {
	idx, err := decodeCursor(blob)
	if err != nil {
		return err
	}
	r.idx = idx
	return nil
}

// ---- pacing decorator -----------------------------------------------------

// Paced throttles any source to approximately perSec records per second per
// subtask (wall clock) — the live-stream simulation used by the latency
// experiments, now composable over every connector.
func Paced[T any](src Source[T], perSec float64) Source[T] {
	return pacedSource[T]{inner: src, perSec: perSec}
}

type pacedSource[T any] struct {
	inner  Source[T]
	perSec float64
}

func (p pacedSource[T]) Open(sub, par int) Reader[T] {
	return &pacedReader[T]{inner: p.inner.Open(sub, par), perSec: p.perSec}
}

// PreferredParallelism implements ParallelismHinter by delegation: pacing
// does not change the inner connector's parallelism needs.
func (p pacedSource[T]) PreferredParallelism() int { return preferredParallelism(p.inner) }

type pacedReader[T any] struct {
	inner  Reader[T]
	perSec float64
	pacer  dataflow.Pacer
}

func (r *pacedReader[T]) Next() (Keyed[T], ReadStatus) {
	r.pacer.Wait(r.perSec)
	return r.inner.Next()
}

func (r *pacedReader[T]) Snapshot() ([]byte, error) { return r.inner.Snapshot() }

// Restore re-anchors the pacing schedule: a restored source emits at perSec
// from the resume point, it does not sleep (or burst) to catch up with the
// pre-crash schedule.
func (r *pacedReader[T]) Restore(blob []byte) error {
	r.pacer.Reset()
	return r.inner.Restore(blob)
}

func (r *pacedReader[T]) Err() error { return readerErr(r.inner) }

// ---- channels (data in motion) --------------------------------------------

// Channel returns a live in-motion source fed by a Go channel; closing the
// channel ends the stream. Subtasks would share the channel (each record
// consumed by exactly one) and a subtask that never receives a record would
// pin downstream event time at -inf, so the connector hints parallelism 1
// (ParallelismHinter) and From runs it single-subtask unless
// WithSourceParallelism overrides.
//
// A channel cannot be replayed: records consumed before a crash are not
// re-emitted after recovery (operator state remains exactly-once).
// Bootstrapping from replayable history belongs to Hybrid.
func Channel[T any](c <-chan Keyed[T]) Source[T] {
	return channelSource[T]{c: c}
}

type channelSource[T any] struct {
	c <-chan Keyed[T]
}

func (s channelSource[T]) Open(sub, par int) Reader[T] {
	return &channelReader[T]{c: s.c, poll: 25 * time.Millisecond}
}

// PreferredParallelism implements ParallelismHinter: a shared channel only
// keeps event time sound with a single subtask.
func (channelSource[T]) PreferredParallelism() int { return 1 }

type channelReader[T any] struct {
	c       <-chan Keyed[T]
	poll    time.Duration
	emitted int64
}

func (r *channelReader[T]) Next() (Keyed[T], ReadStatus) {
	// Fast path: a busy producer keeps the channel non-empty, so the idle
	// timer (an allocation per call) is only armed when it is actually
	// needed.
	select {
	case k, ok := <-r.c:
		return r.received(k, ok)
	default:
	}
	timer := time.NewTimer(r.poll)
	defer timer.Stop()
	select {
	case k, ok := <-r.c:
		return r.received(k, ok)
	case <-timer.C:
		return Keyed[T]{}, ReadIdle
	}
}

func (r *channelReader[T]) received(k Keyed[T], ok bool) (Keyed[T], ReadStatus) {
	if !ok {
		return Keyed[T]{}, ReadEnd
	}
	r.emitted++
	return k, ReadData
}

func (r *channelReader[T]) Snapshot() ([]byte, error) { return encodeCursor(r.emitted) }

func (r *channelReader[T]) Restore(blob []byte) error {
	n, err := decodeCursor(blob)
	if err != nil {
		return err
	}
	r.emitted = n
	return nil
}

// ---- files (data at rest) -------------------------------------------------

// JSONL returns a bounded source reading one JSON document per line from a
// file at rest, decoded into T with encoding/json. Blank lines are skipped.
// Records default to their line index as event timestamp — pair with
// WithTimestamps to extract real event time. Lines are split round-robin
// across subtasks; Snapshot records the line position, so recovery replays
// the file exactly-once.
func JSONL[T any](path string) Source[T] {
	return jsonlSource[T]{path: path}
}

type jsonlSource[T any] struct {
	path string
}

func (j jsonlSource[T]) Open(sub, par int) Reader[T] {
	return &funcReader[T]{src: &dataflow.LineFileSource{
		Path: j.path, Subtask: sub, Parallelism: par,
		Decode: func(line []byte, idx int64) (dataflow.Record, bool, error) {
			if len(bytes.TrimSpace(line)) == 0 {
				return dataflow.Record{}, false, nil
			}
			var v T
			if err := json.Unmarshal(line, &v); err != nil {
				return dataflow.Record{}, false, fmt.Errorf("decode %s: %w", typeName[T](), err)
			}
			return dataflow.Data(idx, 0, v), true, nil
		},
	}}
}

// CSV returns a bounded source reading rows from a CSV file at rest, parsed
// into T with the given row parser (quoted fields may span lines; rows may
// vary in width). skipHeader drops the first row. Records default to their
// row index as event timestamp — pair with WithTimestamps to extract real
// event time. Rows are split round-robin across subtasks; Snapshot records
// the row position, so recovery replays the file exactly-once.
func CSV[T any](path string, skipHeader bool, parse func(row []string) (T, error)) Source[T] {
	return csvSource[T]{path: path, skipHeader: skipHeader, parse: parse}
}

type csvSource[T any] struct {
	path       string
	skipHeader bool
	parse      func(row []string) (T, error)
}

func (c csvSource[T]) Open(sub, par int) Reader[T] {
	return &funcReader[T]{src: &dataflow.CSVFileSource{
		Path: c.path, SkipHeader: c.skipHeader, Subtask: sub, Parallelism: par,
		Decode: func(row []string, idx int64) (dataflow.Record, error) {
			v, err := c.parse(row)
			if err != nil {
				return dataflow.Record{}, err
			}
			return dataflow.Data(idx, 0, v), nil
		},
	}}
}

// funcReader bridges an engine-level SourceFunc whose data records carry T
// payloads into a typed Reader.
type funcReader[T any] struct {
	src dataflow.SourceFunc
}

func (f *funcReader[T]) Next() (Keyed[T], ReadStatus) {
	r, ok := f.src.Next()
	if !ok {
		return Keyed[T]{}, ReadEnd
	}
	if r.Kind == dataflow.KindWatermark {
		return Keyed[T]{Ts: r.Ts}, ReadWatermark
	}
	return unbox[T](r), ReadData
}

func (f *funcReader[T]) Snapshot() ([]byte, error) { return f.src.Snapshot() }

func (f *funcReader[T]) Restore(blob []byte) error { return f.src.Restore(blob) }

func (f *funcReader[T]) Err() error {
	if fail, ok := f.src.(dataflow.Failable); ok {
		return fail.Err()
	}
	return nil
}

// ---- hybrid (at rest → in motion) -----------------------------------------

// Hybrid is the at-rest→in-motion handoff — the paper's headline scenario:
// replay a bounded history source, emit a handoff watermark at the
// history's max event timestamp the moment it ends, then atomically switch
// to the live source. One pipeline bootstraps from stored data and
// continues on the live stream, with no Lambda-style second system.
//
// Snapshots record the phase and both inner positions, so a checkpoint
// taken during replay restores into the history phase and still crosses
// the handoff exactly once. Live records must carry timestamps after the
// history's max; older ones are late relative to the handoff watermark.
func Hybrid[T any](history, live Source[T]) Source[T] {
	return hybridSource[T]{history: history, live: live}
}

type hybridSource[T any] struct {
	history, live Source[T]
}

func (h hybridSource[T]) Open(sub, par int) Reader[T] {
	return &hybridReader[T]{history: h.history.Open(sub, par), live: h.live.Open(sub, par)}
}

// PreferredParallelism implements ParallelismHinter by delegation. The live
// phase's hint wins — it runs forever, while any history connector splits
// correctly at any parallelism.
func (h hybridSource[T]) PreferredParallelism() int {
	if p := preferredParallelism(h.live); p > 0 {
		return p
	}
	return preferredParallelism(h.history)
}

type hybridReader[T any] struct {
	history, live Reader[T]
	inLive        bool // past the handoff
	maxTs         int64
	haveTs        bool
}

type hybridReaderState struct {
	Live    bool
	MaxTs   int64
	HaveTs  bool
	History []byte
	LivePos []byte
}

func (h *hybridReader[T]) Next() (Keyed[T], ReadStatus) {
	if !h.inLive {
		k, st := h.history.Next()
		switch st {
		case ReadData:
			if k.Ts > h.maxTs || !h.haveTs {
				h.maxTs, h.haveTs = k.Ts, true
			}
			return k, ReadData
		case ReadWatermark, ReadIdle:
			return k, st
		}
		// A history that failed mid-stream ends the whole stream here
		// instead of handing off: the runtime only inspects Err at end of
		// stream, and an unbounded live phase would bury a truncated
		// history forever.
		if readerErr(h.history) != nil {
			return Keyed[T]{}, ReadEnd
		}
		// History exhausted: hand off. The switch and the handoff
		// watermark happen in this one call, so a checkpoint can never
		// fall between them.
		h.inLive = true
		if h.haveTs {
			return Keyed[T]{Ts: h.maxTs}, ReadWatermark
		}
	}
	return h.live.Next()
}

func (h *hybridReader[T]) Snapshot() ([]byte, error) {
	hist, err := h.history.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("hybrid history snapshot: %w", err)
	}
	live, err := h.live.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("hybrid live snapshot: %w", err)
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(hybridReaderState{
		Live: h.inLive, MaxTs: h.maxTs, HaveTs: h.haveTs, History: hist, LivePos: live,
	})
	return buf.Bytes(), err
}

func (h *hybridReader[T]) Restore(blob []byte) error {
	var s hybridReaderState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("hybrid restore: %w", err)
	}
	if err := h.history.Restore(s.History); err != nil {
		return fmt.Errorf("hybrid history restore: %w", err)
	}
	if err := h.live.Restore(s.LivePos); err != nil {
		return fmt.Errorf("hybrid live restore: %w", err)
	}
	h.inLive, h.maxTs, h.haveTs = s.Live, s.MaxTs, s.HaveTs
	return nil
}

func (h *hybridReader[T]) Err() error {
	if err := readerErr(h.history); err != nil {
		return err
	}
	return readerErr(h.live)
}

// readerErr returns the terminal error of a reader, if it reports one.
func readerErr[T any](r Reader[T]) error {
	if f, ok := r.(interface{ Err() error }); ok {
		return f.Err()
	}
	return nil
}

// ---- cursor encoding ------------------------------------------------------

// encodeCursor serializes a single position counter — the snapshot format
// shared by the index-addressed readers.
func encodeCursor(idx int64) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(idx)
	return buf.Bytes(), err
}

func decodeCursor(blob []byte) (int64, error) {
	var idx int64
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&idx); err != nil {
		return 0, fmt.Errorf("source cursor restore: %w", err)
	}
	return idx, nil
}
