// Command streamline-worker executes one worker's share of a distributed
// STREAMLINE job. It dials the coordinator (cmd/streamline-coord), receives
// the plan, rebuilds the named pipeline from the shared registry, verifies
// the plan fingerprint, and runs its assigned subtasks over loopback TCP.
//
//	streamline-worker -coord 127.0.0.1:7171
//
// The initial dial retries for -dial-timeout, so workers may start before
// the coordinator is listening.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"syscall"
	"time"

	"repro/internal/pipelines"
	"repro/streamline"
)

func main() {
	coord := flag.String("coord", "127.0.0.1:7171", "coordinator control address")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "how long to retry the initial dial")
	flag.Parse()

	pipelines.RegisterAll()
	deadline := time.Now().Add(*dialTimeout)
	for {
		err := streamline.RunRegisteredWorker(context.Background(), *coord)
		if err == nil {
			return
		}
		if errors.Is(err, syscall.ECONNREFUSED) && time.Now().Before(deadline) {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		log.Fatal(err)
	}
}
