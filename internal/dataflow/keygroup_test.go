package dataflow

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/state"
)

// captureGroups snapshots an operator's keyed state exactly the way the
// runtime does — a copy-on-write capture serialized into per-group blobs —
// and hands the blobs back for a restore via OpContext.RestoreGroups.
func captureGroups(t *testing.T, op Operator) map[int][]byte {
	t.Helper()
	h, ok := op.(KeyedStateful)
	if !ok {
		t.Fatalf("%T does not hold keyed state", op)
	}
	groups, err := h.KeyedState().Capture().EncodeGroups()
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

// keyGroupPipeline is the workload of the plan-identity test: two keyed
// stages (reduce behind one hash edge feeding a second reduce behind
// another) over a skewed key space.
func keyGroupPipeline(numKeyGroups, parallelism int, sink *CollectSink) *Graph {
	g := NewGraph("kg")
	g.NumKeyGroups = numKeyGroups
	src := g.AddSource("src", 2, func(sub, par int) SourceFunc {
		return &GenSource{N: 3000, WatermarkEvery: 64, Gen: func(i int64) Record {
			global := i*2 + int64(sub)
			return Data(global, uint64(global*global%97), float64(global%13))
		}}
	})
	sum := g.AddOperator("sum", parallelism, func() Operator {
		return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }, EmitEach: true}
	}, Edge{From: src, Part: HashPartition})
	rekey := g.AddOperator("rekey", parallelism, func() Operator {
		return &MapOp{F: func(r Record) Record {
			r.Key = r.Key % 7
			return r
		}}
	}, Edge{From: sum, Part: Forward})
	max := g.AddOperator("max", parallelism, func() Operator {
		return &KeyedReduceOp{F: func(acc, v float64) float64 {
			if v > acc {
				return v
			}
			return acc
		}}
	}, Edge{From: rekey, Part: HashPartition})
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: max, Part: Rebalance})
	return g
}

// TestNumKeyGroupsIsPhysicalOnly proves key grouping is purely physical:
// the same pipeline produces identical results at NumKeyGroups 1, 7 and 128
// and at any parallelism — including parallelism above the group count,
// where some subtasks own no groups at all.
func TestNumKeyGroupsIsPhysicalOnly(t *testing.T) {
	results := func(numKeyGroups, parallelism int) map[uint64]float64 {
		sink := &CollectSink{}
		run(t, keyGroupPipeline(numKeyGroups, parallelism, sink))
		out := map[uint64]float64{}
		for _, r := range sink.Records() {
			out[r.Key] = r.Value.(float64)
		}
		return out
	}
	want := results(DefaultNumKeyGroups, 1)
	if len(want) != 7 {
		t.Fatalf("reference run produced %d keys, want 7", len(want))
	}
	for _, numKeyGroups := range []int{1, 7, 128} {
		for _, parallelism := range []int{1, 2, 4} {
			got := results(numKeyGroups, parallelism)
			if len(got) != len(want) {
				t.Fatalf("G=%d P=%d: %d keys, want %d", numKeyGroups, parallelism, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("G=%d P=%d: key %d = %v, want %v", numKeyGroups, parallelism, k, got[k], v)
				}
			}
		}
	}
}

// TestHashRoutingMatchesStateOwnership drives every key group through a
// hash edge and asserts each record lands on the subtask owning its group —
// the invariant that makes per-group snapshots restorable. (KeyedState
// panics on a mismatch, so the keyed reduce doubles as the assertion.)
func TestHashRoutingMatchesStateOwnership(t *testing.T) {
	for _, parallelism := range []int{1, 2, 3, 5} {
		g := NewGraph("route")
		g.NumKeyGroups = 16
		src := g.AddSource("src", 1, SliceSource(intRecords(500)))
		red := g.AddOperator("sum", parallelism, func() Operator {
			return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
		}, Edge{From: src, Part: HashPartition})
		sink := &CollectSink{}
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})
		run(t, g)
		if got := len(sink.Records()); got != 7 { // intRecords keys are i%7
			t.Fatalf("parallelism %d: %d keys, want 7", parallelism, got)
		}
	}
}

// TestGroupRangesPartition checks the range/ownership algebra directly:
// for any (groups, parallelism), the ranges partition [0, groups) and
// SubtaskForGroup inverts them.
func TestGroupRangesPartition(t *testing.T) {
	for _, numKeyGroups := range []int{1, 2, 7, 128} {
		for parallelism := 1; parallelism <= 9; parallelism++ {
			owner := make([]int, numKeyGroups)
			for i := range owner {
				owner[i] = -1
			}
			for s := 0; s < parallelism; s++ {
				start, end := state.GroupRangeFor(numKeyGroups, parallelism, s)
				for g := start; g < end; g++ {
					if owner[g] != -1 {
						t.Fatalf("G=%d P=%d: group %d owned by %d and %d", numKeyGroups, parallelism, g, owner[g], s)
					}
					owner[g] = s
					if got := state.SubtaskForGroup(g, numKeyGroups, parallelism); got != s {
						t.Fatalf("G=%d P=%d: SubtaskForGroup(%d) = %d, want %d", numKeyGroups, parallelism, g, got, s)
					}
				}
			}
			for g, s := range owner {
				if s == -1 {
					t.Fatalf("G=%d P=%d: group %d unowned", numKeyGroups, parallelism, g)
				}
			}
		}
	}
}

// TestKillAndRecoverRescaled is the headline rescale test: the job is
// checkpointed at keyed-operator parallelism 2, killed, and recovered at
// parallelism 1 and at 4 — the snapshot's key-group blobs redistribute to
// the new subtask ranges and the deduplicated window results must equal a
// failure-free run, exactly once.
func TestKillAndRecoverRescaled(t *testing.T) {
	const n = 6000
	refSink := &CollectSink{}
	run(t, buildRecoveryGraph(n, 0, refSink))
	want := collectWindows(t, refSink)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	for _, restorePar := range []int{1, 4} {
		restorePar := restorePar
		t.Run(fmt.Sprintf("to-parallelism-%d", restorePar), func(t *testing.T) {
			backend := state.NewMemoryBackend(0)
			crashSink := &CollectSink{}
			g1 := buildRecoveryGraphAt(n, 10000, crashSink, 2)
			job1 := NewJob(g1, WithCheckpointing(backend, 25*time.Millisecond))
			ctx1, cancel1 := context.WithTimeout(context.Background(), 150*time.Millisecond)
			err := job1.Run(ctx1)
			cancel1()
			if err == nil {
				t.Skip("job completed before kill; rescale path not exercised on this machine")
			}
			snap, ok, _ := backend.Latest()
			if !ok {
				t.Skip("no checkpoint completed before kill")
			}
			g2 := buildRecoveryGraphAt(n, 0, crashSink, restorePar)
			job2 := NewJob(g2, WithRestore(snap), WithCheckpointing(backend, 25*time.Millisecond))
			ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel2()
			if err := job2.Run(ctx2); err != nil {
				t.Fatalf("recovery at parallelism %d failed: %v", restorePar, err)
			}
			assertWindowsEqual(t, collectWindows(t, crashSink), want)
		})
	}
}

// TestEmptyKeyedOperatorSnapshotRestore checkpoints a keyed operator that
// has seen no records at all (a filter upstream drops everything) and
// restores from that snapshot: both directions must work with zero keys.
func TestEmptyKeyedOperatorSnapshotRestore(t *testing.T) {
	build := func(sink *CollectSink) *Graph {
		g := NewGraph("empty")
		src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
			return &PacedSource{PerSec: 20000, Inner: &GenSource{
				N: 4000, WatermarkEvery: 16,
				Gen: func(i int64) Record { return Data(i, uint64(i%5), float64(1)) },
			}}
		})
		drop := g.AddOperator("drop", 1, func() Operator {
			return &FilterOp{F: func(Record) bool { return false }}
		}, Edge{From: src, Part: Rebalance})
		red := g.AddOperator("sum", 2, func() Operator {
			return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
		}, Edge{From: drop, Part: HashPartition})
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})
		return g
	}
	backend := state.NewMemoryBackend(0)
	sink1 := &CollectSink{}
	job1 := NewJob(build(sink1), WithCheckpointing(backend, 10*time.Millisecond))
	ctx1, cancel1 := context.WithTimeout(context.Background(), 120*time.Millisecond)
	err := job1.Run(ctx1)
	cancel1()
	snap, ok, _ := backend.Latest()
	if !ok {
		if err != nil {
			t.Skip("no checkpoint completed before kill")
		}
		t.Fatalf("job completed without a checkpoint")
	}
	sink2 := &CollectSink{}
	job2 := NewJob(build(sink2), WithRestore(snap))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := job2.Run(ctx2); err != nil {
		t.Fatalf("restore of empty keyed state failed: %v", err)
	}
	if got := len(sink2.Records()); got != 0 {
		t.Fatalf("empty keyed operator emitted %d records after restore", got)
	}
}

// TestRestoreRejectsChangedNumKeyGroups: NumKeyGroups is a plan constant —
// a snapshot must not silently load into a plan with a different value.
func TestRestoreRejectsChangedNumKeyGroups(t *testing.T) {
	sinkA := &CollectSink{}
	gA := keyGroupPipeline(8, 2, sinkA)
	backend := state.NewMemoryBackend(0)
	jobA := NewJob(gA, WithCheckpointing(backend, 5*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := jobA.Run(ctx); err != nil {
		t.Fatal(err)
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed during the run")
	}
	gB := keyGroupPipeline(16, 2, &CollectSink{})
	if err := NewJob(gB, WithRestore(snap)).Run(context.Background()); err == nil {
		t.Fatalf("restore with a different NumKeyGroups must fail")
	}
}

// TestRestoreRejectsSourceRescale: per-subtask state (source positions)
// does not redistribute; restoring a 2-subtask source at parallelism 3 must
// fail loudly instead of double-reading or dropping input.
func TestRestoreRejectsSourceRescale(t *testing.T) {
	build := func(srcPar int, sink *CollectSink) *Graph {
		g := NewGraph("srcscale")
		src := g.AddSource("src", srcPar, func(sub, par int) SourceFunc {
			return &PacedSource{PerSec: 20000, Inner: &GenSource{
				N: 4000, WatermarkEvery: 16,
				Gen: func(i int64) Record { return Data(i, uint64(i%5), float64(1)) },
			}}
		})
		red := g.AddOperator("sum", 2, func() Operator {
			return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
		}, Edge{From: src, Part: HashPartition})
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})
		return g
	}
	backend := state.NewMemoryBackend(0)
	job := NewJob(build(2, &CollectSink{}), WithCheckpointing(backend, 10*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	_ = job.Run(ctx)
	cancel()
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed before kill")
	}
	err := NewJob(build(3, &CollectSink{}), WithRestore(snap)).Run(context.Background())
	if err == nil {
		t.Fatalf("restoring a rescaled source must fail")
	}
}
