// Package cutty implements the Cutty aggregate-sharing engine (Carbone,
// Traub, Katsifodimos, Haridi, Markl: "Cutty: Aggregate Sharing for
// User-Defined Windows", CIKM 2016), the first research highlight of the
// STREAMLINE paper.
//
// The central idea: for *deterministic* user-defined window functions, it is
// sufficient to cut the stream into non-overlapping slices at window-begin
// boundaries (the union of begins across all registered queries). Every
// window is then a union of whole slices, so
//
//   - each element is lifted and combined into exactly one slice partial per
//     distinct aggregate function — O(1) aggregation work per element
//     regardless of how many queries or how finely windows overlap, and
//   - each completed window is answered with O(log s) combines by a range
//     query over a FlatFAT aggregate tree built on the slice partials,
//     where s is the number of live slices.
//
// This is what produces the order-of-magnitude gap over bucket-per-window
// and element-granularity sharing (B-Int) measured in experiments E1–E5,
// and — unlike Pairs and Panes — it applies to non-periodic windows such as
// sessions, punctuations and delta windows.
package cutty

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

// sliceMeta describes one slice: the timestamp of its first element and the
// number of elements folded into it.
type sliceMeta struct {
	firstTs int64
	count   int64
}

// metaRing stores slice metadata addressed by absolute slice index.
type metaRing struct {
	base  int64 // absolute index of items[0]
	items []sliceMeta
}

func (r *metaRing) len() int64     { return int64(len(r.items)) }
func (r *metaRing) nextAbs() int64 { return r.base + r.len() }
func (r *metaRing) at(abs int64) *sliceMeta {
	return &r.items[abs-r.base]
}

func (r *metaRing) append(m sliceMeta) { r.items = append(r.items, m) }

func (r *metaRing) popFront() {
	r.items = r.items[1:]
	r.base++
	// Reclaim the unreachable prefix once it dominates the backing array.
	if cap(r.items) > 64 && len(r.items) < cap(r.items)/4 {
		fresh := make([]sliceMeta, len(r.items))
		copy(fresh, r.items)
		r.items = fresh
	}
}

// firstAtOrAfter returns the smallest absolute slice index in [fromAbs,
// nextAbs) whose firstTs >= cutoff, or nextAbs if none (timestamps are
// non-decreasing across slices).
func (r *metaRing) firstAtOrAfter(fromAbs, cutoff int64) int64 {
	lo := int(fromAbs - r.base)
	if lo < 0 {
		lo = 0
	}
	n := len(r.items)
	idx := sort.Search(n-lo, func(i int) bool { return r.items[lo+i].firstTs >= cutoff })
	return r.base + int64(lo+idx)
}

// fnStore is the shared per-aggregate-function state: one FlatFAT over slice
// partials, shared by every query using the same function name.
type fnStore struct {
	fn   *agg.FnF64
	tree *agg.FlatFAT[agg.Acc]
	refs int
}

type openWin struct {
	begin int64 // absolute index of the window's first slice
}

type queryState struct {
	id       int
	assigner window.Assigner
	store    *fnStore
	open     map[int64]openWin
	minBegin int64 // valid when len(open) > 0
}

// Engine is the Cutty multi-query window aggregation engine. It is not safe
// for concurrent use; the dataflow layer runs one engine per operator
// subtask.
type Engine struct {
	emit engine.Emit

	pos     int64
	curWM   int64
	queries map[int]*queryState
	nextQID int
	stores  map[string]*fnStore
	// qlist and stlist mirror queries and stores in insertion order: the
	// per-element and per-watermark paths iterate them instead of the maps
	// (Go map iteration re-seeds its random start on every call, a real cost
	// when OnElement and OnWatermark run once per record), and they make
	// dispatch — and therefore emission order under multiple queries —
	// deterministic instead of map-order.
	qlist  []*queryState
	stlist []*fnStore

	meta       metaRing
	cutPending bool
	linearEval bool

	// active is the query whose assigner callbacks are being dispatched.
	active *queryState
}

var _ engine.Engine = (*Engine)(nil)

// Option configures an Engine.
type Option func(*Engine)

// WithLinearEval switches window evaluation from O(log s) FlatFAT range
// queries to a linear fold over the window's slices — the evaluation-
// strategy ablation of experiment E11. Slicing and sharing are unchanged.
func WithLinearEval() Option {
	return func(e *Engine) { e.linearEval = true }
}

// New returns an empty Cutty engine emitting completed windows to emit.
func New(emit engine.Emit, opts ...Option) *Engine {
	e := &Engine{
		emit:    emit,
		curWM:   math.MinInt64,
		queries: make(map[int]*queryState),
		stores:  make(map[string]*fnStore),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "cutty" }

// AddQuery implements engine.Engine. Cutty accepts every deterministic
// window spec.
func (e *Engine) AddQuery(q engine.Query) (int, error) {
	if q.Fn == nil || q.Window.Factory == nil {
		return 0, fmt.Errorf("cutty: query requires a window spec and an aggregate function")
	}
	st, ok := e.stores[q.Fn.Name]
	if !ok {
		st = &fnStore{fn: q.Fn, tree: agg.NewFlatFAT(q.Fn.Identity, q.Fn.Combine, 16)}
		// Align the new tree with the existing slice ring: identity
		// partials for slices that predate the query (its windows can only
		// begin at future slices, so these leaves are never queried).
		for i := int64(0); i < e.meta.len(); i++ {
			st.tree.Append(q.Fn.Identity)
		}
		e.stores[q.Fn.Name] = st
		e.stlist = append(e.stlist, st)
	}
	st.refs++
	id := e.nextQID
	e.nextQID++
	qs := &queryState{
		id:       id,
		assigner: q.Window.Factory(),
		store:    st,
		open:     make(map[int64]openWin),
	}
	e.queries[id] = qs
	e.qlist = append(e.qlist, qs)
	return id, nil
}

// RemoveQuery implements engine.Engine.
func (e *Engine) RemoveQuery(id int) {
	q, ok := e.queries[id]
	if !ok {
		return
	}
	delete(e.queries, id)
	for i, qs := range e.qlist {
		if qs == q {
			e.qlist = append(e.qlist[:i], e.qlist[i+1:]...)
			break
		}
	}
	q.store.refs--
	if q.store.refs == 0 {
		delete(e.stores, q.store.fn.Name)
		for i, st := range e.stlist {
			if st == q.store {
				e.stlist = append(e.stlist[:i], e.stlist[i+1:]...)
				break
			}
		}
	}
	e.evict()
}

// OnElement implements engine.Engine.
func (e *Engine) OnElement(ts int64, v float64) {
	// 1. Let every query's window function observe the element first; any
	//    Open cuts a slice boundary immediately before it.
	for _, q := range e.qlist {
		e.active = q
		q.assigner.OnElement(ts, e.pos, v, (*ctx)(e))
	}
	e.active = nil
	// 2. Fold the element into the current slice (or start a new one),
	//    once per distinct aggregate function — this is the shared work.
	if e.cutPending || e.meta.len() == 0 {
		e.meta.append(sliceMeta{firstTs: ts, count: 1})
		for _, st := range e.stlist {
			st.tree.Append(st.fn.Lift(v))
		}
		e.cutPending = false
	} else {
		e.meta.at(e.meta.nextAbs()-1).count++
		for _, st := range e.stlist {
			st.tree.UpdateBack(st.fn.Combine(st.tree.Back(), st.fn.Lift(v)))
		}
	}
	e.pos++
}

// OnWatermark implements engine.Engine.
func (e *Engine) OnWatermark(wm int64) {
	// Equal watermarks are idempotent: skip the per-query dispatch.
	if wm <= e.curWM {
		return
	}
	e.curWM = wm
	for _, q := range e.qlist {
		e.active = q
		q.assigner.OnTime(wm, (*ctx)(e))
	}
	e.active = nil
	e.evict()
}

// StoredPartials implements engine.Engine: live slice partials across all
// function stores.
func (e *Engine) StoredPartials() int {
	n := 0
	for _, st := range e.stlist {
		n += st.tree.Len()
	}
	return n
}

// Slices reports the number of live slices (diagnostics, E5).
func (e *Engine) Slices() int { return int(e.meta.len()) }

// ctx adapts Engine to window.Context for the query in e.active.
type ctx Engine

func (c *ctx) engine() *Engine { return (*Engine)(c) }

// Open implements window.Context: the window begins with the next element;
// a slice boundary is cut before it.
func (c *ctx) Open(id int64) {
	e := c.engine()
	q := e.active
	// The window starts at the slice created next: the current slice (if
	// any) ends at this boundary, cutPending forces the next element to
	// open a fresh slice at absolute index nextAbs().
	begin := e.meta.nextAbs()
	e.cutPending = true
	if _, dup := q.open[id]; dup {
		return
	}
	if len(q.open) == 0 || begin < q.minBegin {
		q.minBegin = begin
	}
	q.open[id] = openWin{begin: begin}
}

// CloseHere implements window.Context: content is every slice so far.
func (c *ctx) CloseHere(id, end int64) {
	e := c.engine()
	c.close(id, end, e.meta.nextAbs())
}

// CloseAt implements window.Context: content is every slice whose first
// element's timestamp is below cutoff.
func (c *ctx) CloseAt(id, end, cutoff int64) {
	e := c.engine()
	q := e.active
	w, ok := q.open[id]
	if !ok {
		return
	}
	toAbs := e.meta.firstAtOrAfter(w.begin, cutoff)
	c.close(id, end, toAbs)
}

func (c *ctx) close(id, end, toAbs int64) {
	e := c.engine()
	q := e.active
	w, ok := q.open[id]
	if !ok {
		return
	}
	delete(q.open, id)
	if w.begin == q.minBegin && len(q.open) > 0 {
		q.minBegin = math.MaxInt64
		for _, ow := range q.open {
			if ow.begin < q.minBegin {
				q.minBegin = ow.begin
			}
		}
	}
	st := q.store
	lo := w.begin - e.meta.base
	hi := toAbs - e.meta.base
	var acc agg.Acc
	if e.linearEval {
		acc = st.tree.FoldRange(int(lo), int(hi))
	} else {
		acc = st.tree.Range(int(lo), int(hi))
	}
	e.emit(engine.Result{
		QueryID: q.id,
		Start:   id,
		End:     end,
		Value:   st.fn.Lower(acc),
		Count:   acc.N,
	})
}

// evict drops slices that no open window can reference anymore. A window
// opened in the future always begins at the next slice or later, so every
// slice below the minimum open begin (or every slice at all, if no window is
// open) is dead. The trailing slice may still receive elements; evicting it
// forces a cut before the next element.
func (e *Engine) evict() {
	minNeeded := int64(math.MaxInt64)
	for _, q := range e.qlist {
		if len(q.open) > 0 && q.minBegin < minNeeded {
			minNeeded = q.minBegin
		}
	}
	for e.meta.len() > 0 && e.meta.base < minNeeded {
		last := e.meta.len() == 1
		e.meta.popFront()
		for _, st := range e.stlist {
			st.tree.EvictFront()
		}
		if last {
			e.cutPending = false // next element starts a fresh slice anyway
		}
	}
}
