package streamline_test

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/streamline"
)

// startWorkers launches n in-process workers over real loopback TCP once
// the coordinator address lands on addrCh. Each worker rebuilds the
// pipeline with its own build() call — the SPMD contract, exercised inside
// one test process. Worker n-1 runs under victimCtx so kill tests can take
// it down; wait() collects every worker's error.
func startWorkers(ctx context.Context, n int, addrCh <-chan string, victimCtx context.Context, build func() *streamline.Env) (wait func() []error) {
	errCh := make(chan error, n)
	go func() {
		var addr string
		select {
		case addr = <-addrCh:
		case <-ctx.Done():
			for i := 0; i < n; i++ {
				errCh <- ctx.Err()
			}
			return
		}
		for i := 0; i < n; i++ {
			wctx := ctx
			if victimCtx != nil && i == n-1 {
				wctx = victimCtx
			}
			go func(wctx context.Context) {
				errCh <- streamline.RunWorker(wctx, addr, func(string, []string) (*streamline.Env, error) {
					return build(), nil
				})
			}(wctx)
		}
	}()
	return func() []error {
		errs := make([]error, n)
		for i := range errs {
			errs[i] = <-errCh
		}
		return errs
	}
}

// --- Wordcount: distributed output must be byte-identical to local. ---

func wordcountLines() []string {
	lines := make([]string, 240)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha w%d beta w%d gamma w%d", i%17, i%29, (i*7)%61)
	}
	return lines
}

func buildWordcount(workers int, extra ...streamline.Option) (*streamline.Env, *streamline.Results[float64]) {
	opts := append([]streamline.Option{
		streamline.WithParallelism(2),
		streamline.WithWorkers(workers),
	}, extra...)
	env := streamline.New(opts...)
	src := streamline.FromSlice(env, "lines", wordcountLines())
	words := streamline.FlatMap(src, "split", func(l string, em streamline.Emitter[string]) {
		for _, w := range strings.Fields(l) {
			em.Emit(w)
		}
	})
	keyed := streamline.KeyByString(words, "key", func(w string) string { return w })
	ones := streamline.Map(keyed, "one", func(string) float64 { return 1 })
	counts := streamline.ReduceByKey(ones, "count", func(acc, v float64) float64 { return acc + v }, false)
	return env, streamline.Collect(counts, "out")
}

// renderCounts renders sorted "key=count" lines — the byte-identity format
// the single-process and distributed runs are compared in.
func renderCounts(out *streamline.Results[float64]) string {
	lines := make([]string, 0, len(out.Records()))
	for _, r := range out.Records() {
		lines = append(lines, fmt.Sprintf("%d=%v", r.Key, r.Value))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestDistributedWordcountMatchesLocal(t *testing.T) {
	localEnv, localOut := buildWordcount(0)
	execute(t, localEnv.Execute)
	want := renderCounts(localOut)
	if want == "" {
		t.Fatal("local run produced no counts")
	}

	addrCh := make(chan string, 1)
	distEnv, distOut := buildWordcount(2,
		streamline.WithOnListen(func(a string) { addrCh <- a }))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait := startWorkers(ctx, 2, addrCh, nil, func() *streamline.Env {
		env, _ := buildWordcount(2)
		return env
	})
	if err := distEnv.ExecuteDistributed(ctx); err != nil {
		t.Fatalf("distributed execute: %v", err)
	}
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	if got := renderCounts(distOut); got != want {
		t.Fatalf("distributed wordcount diverged from local:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// --- Windowed aggregate: same byte-identity requirement. ---

func buildDistWindowed(par, workers int, perSec float64, extra ...streamline.Option) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
	opts := append([]streamline.Option{
		streamline.WithParallelism(par),
		streamline.WithWorkers(workers),
	}, extra...)
	env := streamline.New(opts...)
	gen := streamline.Generator(6000, func(sub, par int, i int64) streamline.Keyed[float64] {
		global := i*int64(par) + int64(sub)
		return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 6), Value: 1}
	})
	var src *streamline.Stream[float64]
	if perSec > 0 {
		src = streamline.From(env, "gen", streamline.Paced(gen, perSec), streamline.WithSourceParallelism(2))
	} else {
		src = streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
	}
	keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	win := streamline.WindowAggregate(keyed, "win",
		streamline.Query(streamline.Tumbling(100), streamline.Sum()),
		streamline.Query(streamline.Sliding(200, 100), streamline.Count()))
	return env, streamline.Collect(win, "out")
}

func renderWindows(outs ...*streamline.Results[streamline.WindowResult]) string {
	dedup := map[string]struct{}{}
	for _, out := range outs {
		for _, r := range out.Records() {
			dedup[fmt.Sprintf("%d q%d [%d,%d)=%v", r.Key, r.Value.QueryID, r.Value.Start, r.Value.End, r.Value.Value)] = struct{}{}
		}
	}
	lines := make([]string, 0, len(dedup))
	for l := range dedup {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestDistributedWindowedAggregateMatchesLocal(t *testing.T) {
	localEnv, localOut := buildDistWindowed(2, 0, 0)
	execute(t, localEnv.Execute)
	want := renderWindows(localOut)
	if want == "" {
		t.Fatal("local run produced no windows")
	}

	addrCh := make(chan string, 1)
	distEnv, distOut := buildDistWindowed(2, 2, 0,
		streamline.WithOnListen(func(a string) { addrCh <- a }))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait := startWorkers(ctx, 2, addrCh, nil, func() *streamline.Env {
		env, _ := buildDistWindowed(2, 2, 0)
		return env
	})
	if err := distEnv.ExecuteDistributed(ctx); err != nil {
		t.Fatalf("distributed execute: %v", err)
	}
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	if got := renderWindows(distOut); got != want {
		t.Fatalf("distributed windowed aggregate diverged from local:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// --- Kill a worker mid-checkpoint, restore at a different worker count. ---

func TestDistributedKillWorkerRestoreRescaled(t *testing.T) {
	localEnv, localOut := buildDistWindowed(2, 0, 0)
	execute(t, localEnv.Execute)
	want := renderWindows(localOut)

	backend, err := streamline.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Crash run: keyed parallelism 2, two workers, paced so the kill lands
	// mid-stream; the victim worker dies as soon as a checkpoint persists.
	addrCh := make(chan string, 1)
	crashEnv, crashOut := buildDistWindowed(2, 2, 12_000,
		streamline.WithCheckpointing(backend, 20*time.Millisecond),
		streamline.WithOnListen(func(a string) { addrCh <- a }))
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	go func() {
		for {
			if _, ok, _ := backend.Latest(); ok {
				killVictim()
				return
			}
			select {
			case <-victimCtx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	wait := startWorkers(ctx, 2, addrCh, victimCtx, func() *streamline.Env {
		env, _ := buildDistWindowed(2, 2, 12_000,
			streamline.WithCheckpointing(backend, 20*time.Millisecond))
		return env
	})
	runErr := crashEnv.ExecuteDistributed(ctx)
	wait()
	snap, ok, err := backend.Latest()
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if !ok {
		t.Skip("no checkpoint persisted before the kill on this machine")
	}
	if runErr == nil {
		t.Skip("job finished before the kill on this machine")
	}

	// Recovery: keyed parallelism 3, three workers — keyed state
	// redistributes across both rescales; counts stay exactly-once.
	addrCh2 := make(chan string, 1)
	resumeEnv, resumeOut := buildDistWindowed(3, 3, 0,
		streamline.WithStateBackend(backend),
		streamline.WithOnListen(func(a string) { addrCh2 <- a }))
	wait2 := startWorkers(ctx, 3, addrCh2, nil, func() *streamline.Env {
		env, _ := buildDistWindowed(3, 3, 0, streamline.WithStateBackend(backend))
		return env
	})
	if err := resumeEnv.ExecuteDistributedRestored(ctx, snap); err != nil {
		t.Fatalf("restored distributed run: %v", err)
	}
	for i, err := range wait2() {
		if err != nil {
			t.Fatalf("restored worker %d: %v", i+1, err)
		}
	}
	got := renderWindows(crashOut, resumeOut)
	if got != want {
		t.Fatalf("rescaled distributed recovery diverged from local:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// --- Topic source: splittable scan redistributes across worker counts. ---

func TestDistributedTopicSourceKillRestoreRescaled(t *testing.T) {
	history := mkEvents(4000, 5000)
	store := openTopicStore(t, streamline.WithSegmentBytes(16<<10))
	persistEvents(t, store, "history", history)

	build := func(srcPar, workers int, pace float64, extra ...streamline.Option) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
		opts := append([]streamline.Option{
			streamline.WithParallelism(2),
			streamline.WithWorkers(workers),
		}, extra...)
		env := streamline.New(opts...)
		var src streamline.Source[event] = streamline.Topic[event](store, "history", streamline.WithSplitSize(4096))
		if pace > 0 {
			src = streamline.Paced(src, pace)
		}
		stream := streamline.From(env, "events", src,
			streamline.WithSourceParallelism(srcPar),
			streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
		return env, buildHybridPipeline(env, stream)
	}

	refEnv, refOut := build(2, 0, 0)
	execute(t, refEnv.Execute)
	want := collectWindows(refOut)
	if len(want) == 0 {
		t.Fatal("reference run produced no windows")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	backend := streamline.NewMemoryBackend(0)

	// Crash: source parallelism 4 across two workers, paced; kill one
	// worker after the first checkpoint lands.
	addrCh := make(chan string, 1)
	crashEnv, crashOut := build(4, 2, 9_000,
		streamline.WithCheckpointing(backend, 15*time.Millisecond),
		streamline.WithOnListen(func(a string) { addrCh <- a }))
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	go func() {
		for {
			if _, ok, _ := backend.Latest(); ok {
				killVictim()
				return
			}
			select {
			case <-victimCtx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	wait := startWorkers(ctx, 2, addrCh, victimCtx, func() *streamline.Env {
		env, _ := build(4, 2, 9_000, streamline.WithCheckpointing(backend, 15*time.Millisecond))
		return env
	})
	runErr := crashEnv.ExecuteDistributed(ctx)
	wait()
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint persisted before the kill on this machine")
	}
	if runErr == nil {
		t.Skip("job finished before the kill on this machine")
	}

	// Recovery: source parallelism 2 across three workers — the remaining
	// splits redistribute across a different subtask count and worker set.
	addrCh2 := make(chan string, 1)
	resumeEnv, resumeOut := build(2, 3, 0,
		streamline.WithStateBackend(backend),
		streamline.WithOnListen(func(a string) { addrCh2 <- a }))
	wait2 := startWorkers(ctx, 3, addrCh2, nil, func() *streamline.Env {
		env, _ := build(2, 3, 0, streamline.WithStateBackend(backend))
		return env
	})
	if err := resumeEnv.ExecuteDistributedRestored(ctx, snap); err != nil {
		t.Fatalf("restored distributed run: %v", err)
	}
	for i, err := range wait2() {
		if err != nil {
			t.Fatalf("restored worker %d: %v", i+1, err)
		}
	}
	got := collectWindows(crashOut)
	for k, v := range collectWindows(resumeOut) {
		got[k] = v
	}
	if len(got) != len(want) {
		t.Fatalf("restored run produced %d windows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v (exactly-once across the distributed split reassignment)", k, got[k], v)
		}
	}
}

// --- Cancel mid-checkpoint: everything unwinds, nothing leaks. ---

func TestDistributedCancelReleasesAllGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		backend := streamline.NewMemoryBackend(0)
		addrCh := make(chan string, 1)
		env, _ := buildDistWindowed(2, 2, 10_000,
			streamline.WithCheckpointing(backend, 10*time.Millisecond),
			streamline.WithOnListen(func(a string) { addrCh <- a }))
		ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
		wait := startWorkers(ctx, 2, addrCh, nil, func() *streamline.Env {
			e, _ := buildDistWindowed(2, 2, 10_000, streamline.WithCheckpointing(backend, 10*time.Millisecond))
			return e
		})
		_ = env.ExecuteDistributed(ctx) // cancelled mid-run; error expected
		wait()
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancelled distributed runs: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
