package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/seglog"
	"repro/streamline"
)

// The topic benchmark records the embedded history store trajectory: raw
// append throughput into the segment log (by fsync policy), replay of the
// same records through the splittable Topic source versus the equivalent
// JSONL file at source parallelism 1 and 4, and follow-mode latency — the
// time from Append to a tailing reader observing the record. Results are
// written to BENCH_topic.json by `streamline-bench -topic`.

// TopicAppendRun is one append-throughput measurement.
type TopicAppendRun struct {
	Fsync         string  `json:"fsync"`
	Records       int64   `json:"records"`
	Bytes         int64   `json:"bytes"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
}

// TopicScanRun is one replay measurement: the same records drained through
// the Topic source or the equivalent JSONL file.
type TopicScanRun struct {
	Source        string  `json:"source"` // "topic" | "jsonl"
	Parallelism   int     `json:"parallelism"`
	Records       int64   `json:"records"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// TopicFollowRun is the follow-mode latency measurement: records appended at
// a steady interval, each stamped with its append time, read by a tailing
// reader.
type TopicFollowRun struct {
	Records    int64   `json:"records"`
	IntervalMs float64 `json:"interval_ms"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
}

// TopicReport is the full suite.
type TopicReport struct {
	SegmentBytes int64              `json:"segment_bytes"`
	Append       []TopicAppendRun   `json:"append"`
	Scan         []TopicScanRun     `json:"scan"`
	Follow       TopicFollowRun     `json:"follow"`
	Speedup      map[string]float64 `json:"speedup"`
}

// topicBenchEvent is the payload shared by the topic and JSONL replays.
type topicBenchEvent struct {
	TS int64   `json:"ts"`
	V  float64 `json:"v"`
}

// topicAppend measures appending n events under one fsync policy.
func topicAppend(dir, name string, n int64, opts seglog.Options) (TopicAppendRun, error) {
	st, err := seglog.Open(filepath.Join(dir, name), opts)
	if err != nil {
		return TopicAppendRun{}, err
	}
	defer st.Close()
	tp, err := st.Topic("bench")
	if err != nil {
		return TopicAppendRun{}, err
	}
	var total int64
	start := time.Now()
	for i := int64(0); i < n; i++ {
		data, err := json.Marshal(topicBenchEvent{TS: i, V: float64(i % 97)})
		if err != nil {
			return TopicAppendRun{}, err
		}
		if _, err := tp.Append(i, uint64(i%64), data); err != nil {
			return TopicAppendRun{}, err
		}
		total += int64(len(data))
	}
	if err := tp.Sync(); err != nil {
		return TopicAppendRun{}, err
	}
	el := time.Since(start).Seconds()
	fsync := "never"
	switch opts.Fsync {
	case seglog.FsyncAlways:
		fsync = "always"
	case seglog.FsyncInterval:
		fsync = fmt.Sprintf("interval(%s)", opts.FsyncEvery)
	}
	return TopicAppendRun{
		Fsync: fsync, Records: n, Bytes: total, Seconds: el,
		RecordsPerSec: float64(n) / el,
		MBPerSec:      float64(total) / el / (1 << 20),
	}, nil
}

// topicScanInputs materializes the same n events as a topic and a JSONL file.
func topicScanInputs(dir string, n int64, segBytes int64) (*streamline.TopicStore, string, error) {
	store, err := streamline.OpenTopicStore(filepath.Join(dir, "scan-store"),
		streamline.WithSegmentBytes(segBytes))
	if err != nil {
		return nil, "", err
	}
	tp, err := store.Store().Topic("events")
	if err != nil {
		store.Close()
		return nil, "", err
	}
	jsonlPath := filepath.Join(dir, "scan-input.jsonl")
	f, err := os.Create(jsonlPath)
	if err != nil {
		store.Close()
		return nil, "", err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for i := int64(0); i < n; i++ {
		data, err := json.Marshal(topicBenchEvent{TS: i, V: float64(i % 97)})
		if err == nil {
			_, err = tp.Append(i, 0, data)
		}
		if err == nil {
			_, err = w.Write(append(data, '\n'))
		}
		if err != nil {
			f.Close()
			store.Close()
			return nil, "", err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		store.Close()
		return nil, "", err
	}
	if err := f.Close(); err != nil {
		store.Close()
		return nil, "", err
	}
	if err := tp.Sync(); err != nil {
		store.Close()
		return nil, "", err
	}
	return store, jsonlPath, nil
}

// topicScanOnce drains one replay pipeline and checks the record count.
func topicScanOnce(src streamline.Source[topicBenchEvent], source string, n int64, par int) (TopicScanRun, error) {
	env := streamline.New(streamline.WithParallelism(2))
	s := streamline.From(env, "replay", src, streamline.WithSourceParallelism(par))
	var count atomic.Int64
	streamline.Sink(s, "count", func(streamline.Keyed[topicBenchEvent]) { count.Add(1) })
	start := time.Now()
	if err := env.Execute(context.Background()); err != nil {
		return TopicScanRun{}, fmt.Errorf("%s replay p=%d: %w", source, par, err)
	}
	el := time.Since(start).Seconds()
	if got := count.Load(); got != n {
		return TopicScanRun{}, fmt.Errorf("%s replay p=%d drained %d of %d records", source, par, got, n)
	}
	return TopicScanRun{
		Source: source, Parallelism: par, Records: n, Seconds: el,
		RecordsPerSec: float64(n) / el,
	}, nil
}

// topicFollow measures append→observe latency: an appender stamps each
// payload with its wall-clock send time, a tailing reader computes the delta
// on receipt.
func topicFollow(dir string, n int64, interval time.Duration) (TopicFollowRun, error) {
	st, err := seglog.Open(filepath.Join(dir, "follow-store"), seglog.Options{})
	if err != nil {
		return TopicFollowRun{}, err
	}
	defer st.Close()
	tp, err := st.Topic("follow")
	if err != nil {
		return TopicFollowRun{}, err
	}
	appendErr := make(chan error, 1)
	go func() {
		for i := int64(0); i < n; i++ {
			payload := strconv.AppendInt(nil, time.Now().UnixNano(), 10)
			if _, err := tp.Append(i, 0, payload); err != nil {
				appendErr <- err
				return
			}
			time.Sleep(interval)
		}
		appendErr <- nil
	}()

	rd, err := tp.ReadFrom(0)
	if err != nil {
		return TopicFollowRun{}, err
	}
	defer rd.Close()
	lat := make([]float64, 0, n)
	deadline := time.Now().Add(time.Duration(n)*interval + 30*time.Second)
	for int64(len(lat)) < n {
		rec, ok, err := rd.Next()
		if err != nil {
			return TopicFollowRun{}, err
		}
		if !ok {
			if time.Now().After(deadline) {
				return TopicFollowRun{}, fmt.Errorf("follow bench: only %d of %d records observed", len(lat), n)
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		sent, err := strconv.ParseInt(string(rec.Payload), 10, 64)
		if err != nil {
			return TopicFollowRun{}, err
		}
		lat = append(lat, float64(time.Now().UnixNano()-sent)/1e6)
	}
	if err := <-appendErr; err != nil {
		return TopicFollowRun{}, err
	}
	sort.Float64s(lat)
	q := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
	return TopicFollowRun{
		Records: n, IntervalMs: float64(interval.Nanoseconds()) / 1e6,
		P50Ms: q(0.50), P99Ms: q(0.99), MaxMs: lat[len(lat)-1],
	}, nil
}

// Topic runs the topic benchmark suite.
func Topic(quick bool) (*TopicReport, error) {
	n := int64(400_000)
	followN := int64(2_000)
	if quick {
		n = 40_000
		followN = 300
	}
	segBytes := int64(8 << 20)
	dir, err := os.MkdirTemp("", "streamline-topic")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rep := &TopicReport{SegmentBytes: segBytes, Speedup: map[string]float64{}}

	// Append throughput: the default OS-buffered policy at full size, the
	// per-record fsync at 1/100 of it (it is orders of magnitude slower).
	run, err := topicAppend(dir, "append-never", n, seglog.Options{SegmentBytes: segBytes})
	if err != nil {
		return nil, err
	}
	rep.Append = append(rep.Append, run)
	run, err = topicAppend(dir, "append-always", n/100, seglog.Options{SegmentBytes: segBytes, Fsync: seglog.FsyncAlways})
	if err != nil {
		return nil, err
	}
	rep.Append = append(rep.Append, run)

	// Replay: topic vs JSONL over identical records.
	store, jsonlPath, err := topicScanInputs(dir, n, segBytes)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	splitSize := int64(1 << 20)
	base := map[int]float64{}
	for _, par := range []int{1, 4} {
		jr, err := topicScanOnce(streamline.JSONL[topicBenchEvent](jsonlPath, streamline.WithSplitSize(splitSize)), "jsonl", n, par)
		if err != nil {
			return nil, err
		}
		rep.Scan = append(rep.Scan, jr)
		base[par] = jr.RecordsPerSec
		tr, err := topicScanOnce(streamline.Topic[topicBenchEvent](store, "events", streamline.WithSplitSize(splitSize)), "topic", n, par)
		if err != nil {
			return nil, err
		}
		rep.Scan = append(rep.Scan, tr)
		if b := base[par]; b > 0 {
			rep.Speedup[fmt.Sprintf("topic_vs_jsonl_p%d", par)] = tr.RecordsPerSec / b
		}
	}

	follow, err := topicFollow(dir, followN, time.Millisecond)
	if err != nil {
		return nil, err
	}
	rep.Follow = follow
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *TopicReport) Table() *Table {
	t := &Table{
		ID:     "TOPIC",
		Title:  "embedded history store: segment-log append, replay vs JSONL, follow latency",
		Claim:  "the engine's own store persists and replays history at file-scan speeds",
		Header: []string{"phase", "config", "par", "records", "runtime", "records/sec", "MB/sec"},
	}
	for _, run := range r.Append {
		t.Add("append", "fsync="+run.Fsync, "1", fmtCount(float64(run.Records)),
			fmt.Sprintf("%.3fs", run.Seconds), fmtRate(run.RecordsPerSec),
			fmt.Sprintf("%.0f", run.MBPerSec))
	}
	for _, run := range r.Scan {
		t.Add("replay", run.Source, fmt.Sprintf("%d", run.Parallelism),
			fmtCount(float64(run.Records)), fmt.Sprintf("%.3fs", run.Seconds),
			fmtRate(run.RecordsPerSec), "-")
	}
	for key, s := range r.Speedup {
		t.Note("%s: %.2fx records/sec", key, s)
	}
	t.Note("follow latency over %d records at %.1fms intervals: p50 %.3fms, p99 %.3fms, max %.3fms",
		r.Follow.Records, r.Follow.IntervalMs, r.Follow.P50Ms, r.Follow.P99Ms, r.Follow.MaxMs)
	return t
}

// WriteJSON records the report (the perf trajectory file BENCH_topic.json).
func (r *TopicReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
