package streamline_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/window"
	"repro/streamline"
)

func execute(t *testing.T, run func(context.Context) error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := run(ctx); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

// planString renders a graph's structure — node names, parallelism, and
// incoming edge partitioning — for plan-identity assertions.
func planString(g *dataflow.Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "%s/p%d", n.Name, n.Parallelism)
		for _, e := range n.In {
			fmt.Fprintf(&b, " <-%s- %s", e.Part, e.From.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// buildTypedWindowed is the quickstart-shaped pipeline on the typed API:
// generator -> keyBy -> two-query window aggregate -> collect.
func buildTypedWindowed(n int64) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.FromGenerator(env, "gen", 1, n,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			return streamline.Keyed[float64]{Ts: i, Value: float64(i)}
		})
	keyed := streamline.KeyBy(src, "key", func(v float64) uint64 { return uint64(v) % 5 })
	win := streamline.WindowAggregate(keyed, "win",
		streamline.Query(streamline.Tumbling(30), streamline.Sum()),
		streamline.Query(streamline.Sliding(60, 30), streamline.Count()),
	)
	return env, streamline.Collect(win, "out")
}

// buildUntypedWindowed is the identical pipeline hand-built on the untyped
// internal/core API.
func buildUntypedWindowed(n int64) (*core.Environment, *dataflow.CollectSink) {
	env := core.NewEnvironment(core.WithParallelism(2))
	sink := env.FromGenerator("gen", 1, n, func(sub, par int, i int64) dataflow.Record {
		return dataflow.Data(i, 0, float64(i))
	}).
		KeyBy("key", func(r dataflow.Record) uint64 { return uint64(r.Value.(float64)) % 5 }).
		WindowAggregate("win",
			core.WindowedQuery{Window: window.Tumbling(30), Fn: agg.SumF64()},
			core.WindowedQuery{Window: window.Sliding(60, 30), Fn: agg.CountF64()},
		).
		Collect("out")
	return env, sink
}

type resultKey struct {
	key uint64
	wr  streamline.WindowResult
}

// TestTypedUntypedEquivalence runs the quickstart pipeline through both the
// typed facade and the untyped substrate and asserts identical window
// results AND identical plans — so chaining, combiner decisions, and Cutty
// window sharing fire the same way for both.
func TestTypedUntypedEquivalence(t *testing.T) {
	const n = 300

	typedEnv, typedOut := buildTypedWindowed(n)
	execute(t, typedEnv.Execute)
	typed := map[resultKey]int{}
	for _, k := range typedOut.Records() {
		typed[resultKey{key: k.Key, wr: k.Value}]++
	}

	untypedEnv, untypedSink := buildUntypedWindowed(n)
	execute(t, untypedEnv.Execute)
	untyped := map[resultKey]int{}
	for _, r := range untypedSink.Records() {
		untyped[resultKey{key: r.Key, wr: r.Value.(streamline.WindowResult)}]++
	}

	if len(typed) == 0 {
		t.Fatalf("typed pipeline produced no windows")
	}
	if len(typed) != len(untyped) {
		t.Fatalf("distinct results: typed %d, untyped %d", len(typed), len(untyped))
	}
	for rk, c := range untyped {
		if typed[rk] != c {
			t.Fatalf("result %+v: typed count %d, untyped count %d", rk, typed[rk], c)
		}
	}

	// Plan identity: the typed facade must lower to the exact same job graph
	// (same nodes, parallelism, partitioning), so the optimizer sees no
	// difference. In particular both plans share one window operator for the
	// two queries (Cutty sharing).
	typedPlan := planString(typedEnv.Core().Graph())
	untypedPlan := planString(untypedEnv.Graph())
	if typedPlan != untypedPlan {
		t.Fatalf("plans differ:\ntyped:\n%s\nuntyped:\n%s", typedPlan, untypedPlan)
	}
	if got := strings.Count(typedPlan, "win/"); got != 1 {
		t.Fatalf("expected 1 shared window operator for 2 queries, plan has %d:\n%s", got, typedPlan)
	}
}

// TestTypedUntypedCombinerParity asserts that the optimizer's combiner
// insertion fires identically for typed and untyped reduce pipelines: same
// plan (including the sum-combine node) and same sums.
func TestTypedUntypedCombinerParity(t *testing.T) {
	const n = 500

	typedEnv := streamline.New(streamline.WithParallelism(2), streamline.WithCombiner(streamline.CombinerOn))
	src := streamline.FromGenerator(typedEnv, "gen", 1, n,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			return streamline.Keyed[float64]{Ts: i, Value: float64(i)}
		})
	keyed := streamline.KeyBy(src, "key", func(v float64) uint64 { return uint64(v) % 5 })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	typedOut := streamline.Collect(sums, "out")
	execute(t, typedEnv.Execute)

	untypedEnv := core.NewEnvironment(core.WithParallelism(2), core.WithCombiner(core.CombinerOn))
	untypedSink := untypedEnv.FromGenerator("gen", 1, n, func(sub, par int, i int64) dataflow.Record {
		return dataflow.Data(i, 0, float64(i))
	}).
		KeyBy("key", func(r dataflow.Record) uint64 { return uint64(r.Value.(float64)) % 5 }).
		ReduceByKey("sum", func(acc, v float64) float64 { return acc + v }, false).
		Collect("out")
	execute(t, untypedEnv.Execute)

	typedPlan := planString(typedEnv.Core().Graph())
	untypedPlan := planString(untypedEnv.Graph())
	if typedPlan != untypedPlan {
		t.Fatalf("plans differ:\ntyped:\n%s\nuntyped:\n%s", typedPlan, untypedPlan)
	}
	if !strings.Contains(typedPlan, "sum-combine") {
		t.Fatalf("combiner not inserted into typed plan:\n%s", typedPlan)
	}

	typed := map[uint64]float64{}
	for _, k := range typedOut.Records() {
		typed[k.Key] += k.Value
	}
	untyped := map[uint64]float64{}
	for _, r := range untypedSink.Records() {
		untyped[r.Key] += r.Value.(float64)
	}
	if len(typed) != 5 {
		t.Fatalf("typed keys = %d, want 5", len(typed))
	}
	for k, v := range untyped {
		if typed[k] != v {
			t.Fatalf("key %d: typed %v, untyped %v", k, typed[k], v)
		}
	}
}

// TestBoundedUnboundedSamePlan is the paper's central premise on the typed
// API: a bounded (data at rest) and an unbounded (data in motion) source
// produce the exact same job plan — only the source's record count differs.
func TestBoundedUnboundedSamePlan(t *testing.T) {
	build := func(count int64) string {
		env := streamline.New(streamline.WithParallelism(2))
		src := streamline.FromGenerator(env, "gen", 1, count,
			func(sub, par int, i int64) streamline.Keyed[float64] {
				return streamline.Keyed[float64]{Ts: i, Value: float64(i)}
			})
		keyed := streamline.KeyBy(src, "key", func(v float64) uint64 { return uint64(v) % 3 })
		win := streamline.WindowAggregate(keyed, "win",
			streamline.Query(streamline.Tumbling(50), streamline.Avg()))
		streamline.Sink(win, "out", func(streamline.Keyed[streamline.WindowResult]) {})
		return planString(env.Core().Graph())
	}
	bounded := build(200)
	unbounded := build(-1) // never executed; the plan is what matters
	if bounded != unbounded {
		t.Fatalf("bounded and unbounded plans differ:\nbounded:\n%s\nunbounded:\n%s", bounded, unbounded)
	}
}

func TestMapFilterFlatMapTyped(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	nums := streamline.FromSlice(env, "src", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	odds := streamline.Filter(nums, "odd", func(v int) bool { return v%2 == 1 })
	strs := streamline.Map(odds, "str", func(v int) string { return strings.Repeat("x", v) })
	tripled := streamline.FlatMap(strs, "triple", func(s string, out streamline.Emitter[int]) {
		for k := 0; k < 3; k++ {
			out.Emit(len(s))
		}
	})
	got := streamline.Collect(tripled, "out")
	execute(t, env.Execute)

	recs := got.Records()
	if len(recs) != 15 { // 5 odds * 3
		t.Fatalf("got %d records, want 15", len(recs))
	}
	sum := 0
	for _, k := range recs {
		sum += k.Value
	}
	if sum != 3*(1+3+5+7+9) {
		t.Fatalf("sum = %d, want %d", sum, 3*(1+3+5+7+9))
	}
}

func TestKeyByStringMatchesKeyOf(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	words := streamline.FromSlice(env, "src", []string{"alpha", "beta", "alpha"})
	keyed := streamline.KeyByString(words, "word", func(w string) string { return w })
	out := streamline.Collect(keyed, "out")
	execute(t, env.Execute)
	for _, k := range out.Records() {
		if k.Key != streamline.KeyOf(k.Value) {
			t.Fatalf("word %q carries key %d, want %d", k.Value, k.Key, streamline.KeyOf(k.Value))
		}
	}
}

func TestKeyByRecordUsesStampedKey(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.FromGenerator(env, "gen", 1, 10,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			return streamline.Keyed[float64]{Ts: i, Key: uint64(i % 3), Value: 1}
		})
	keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	out := streamline.Collect(sums, "out")
	execute(t, env.Execute)
	got := map[uint64]float64{}
	for _, k := range out.Records() {
		got[k.Key] += k.Value
	}
	want := map[uint64]float64{0: 4, 1: 3, 2: 3}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %d = %v, want %v (all: %v)", k, got[k], w, got)
		}
	}
}

func TestUnionTyped(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	a := streamline.FromSlice(env, "a", []float64{1, 2, 3})
	b := streamline.FromSlice(env, "b", []float64{4, 5})
	u := streamline.Union(a, "u", b)
	out := streamline.Collect(u, "out")
	execute(t, env.Execute)
	var sum float64
	for _, k := range out.Records() {
		sum += k.Value
	}
	if len(out.Records()) != 5 || sum != 15 {
		t.Fatalf("union records = %d sum = %v, want 5 / 15", len(out.Records()), sum)
	}
}

func TestJoinWindowTyped(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	left := streamline.FromKeyedSlice(env, "left", []streamline.Keyed[float64]{
		{Ts: 1, Value: 10},
		{Ts: 12, Value: 30},
	})
	right := streamline.FromKeyedSlice(env, "right", []streamline.Keyed[float64]{
		{Ts: 2, Value: 20},
		{Ts: 13, Value: 40},
	})
	lk := streamline.KeyBy(left, "lk", func(float64) uint64 { return 7 })
	rk := streamline.KeyBy(right, "rk", func(float64) uint64 { return 7 })
	joined := streamline.JoinWindow(lk, "join", rk, 10)
	out := streamline.Collect(joined, "out")
	execute(t, env.Execute)

	pairs := out.Records()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Value.WindowStart < pairs[j].Value.WindowStart })
	if len(pairs) != 2 {
		t.Fatalf("got %d joined pairs, want 2: %+v", len(pairs), pairs)
	}
	want := []streamline.JoinedPair[float64, float64]{
		{WindowStart: 0, WindowEnd: 10, Left: 10, Right: 20},
		{WindowStart: 10, WindowEnd: 20, Left: 30, Right: 40},
	}
	for i, p := range pairs {
		if p.Value != want[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, p.Value, want[i])
		}
	}
}

func TestReduceByKeyEmitEach(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.FromSlice(env, "src", []float64{1, 1, 1, 1})
	keyed := streamline.KeyBy(src, "k", func(float64) uint64 { return 1 })
	running := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, true)
	out := streamline.Collect(running, "out")
	execute(t, env.Execute)
	recs := out.Records()
	if len(recs) != 4 {
		t.Fatalf("emitEach produced %d updates, want 4", len(recs))
	}
	vals := make([]float64, len(recs))
	for i, k := range recs {
		vals[i] = k.Value
	}
	sort.Float64s(vals)
	for i, v := range vals {
		if v != float64(i+1) {
			t.Fatalf("running sums = %v, want [1 2 3 4]", vals)
		}
	}
}

func TestCheckpointingThroughTypedAPI(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1),
		streamline.WithCheckpointing(streamline.NewMemoryBackend(0), 20*time.Millisecond))
	src := streamline.FromPacedGenerator(env, "gen", 1, 3000, 15000,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			return streamline.Keyed[float64]{Ts: i, Value: 1}
		})
	keyed := streamline.KeyBy(src, "key", func(v float64) uint64 { return uint64(v) })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	out := streamline.Collect(sums, "out")
	execute(t, env.Execute)
	if env.CompletedCheckpoints() == 0 {
		t.Fatalf("no checkpoints completed")
	}
	if len(out.Records()) == 0 {
		t.Fatalf("no output")
	}
}

// TestBatchSizeIsPhysicalOnly proves WithBatchSize/WithFlushInterval are
// pure exchange knobs: typed pipelines build byte-identical logical plans at
// every batch size, and the windowed results are identical whether records
// cross exchanges one at a time (batch size 1), in small batches, or in the
// default pooled batches.
func TestBatchSizeIsPhysicalOnly(t *testing.T) {
	const n = 300

	build := func(opts ...streamline.Option) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
		env := streamline.New(append([]streamline.Option{streamline.WithParallelism(2)}, opts...)...)
		src := streamline.From(env, "gen", streamline.Generator(n,
			func(sub, par int, i int64) streamline.Keyed[float64] {
				return streamline.Keyed[float64]{Ts: i, Value: float64(i)}
			}), streamline.WithSourceParallelism(1))
		keyed := streamline.KeyBy(src, "key", func(v float64) uint64 { return uint64(v) % 5 })
		win := streamline.WindowAggregate(keyed, "win",
			streamline.Query(streamline.Tumbling(30), streamline.Sum()),
			streamline.Query(streamline.Sliding(60, 30), streamline.Count()),
		)
		return env, streamline.Collect(win, "out")
	}

	refEnv, refOut := build()
	refPlan := planString(refEnv.Core().Graph())
	execute(t, refEnv.Execute)
	ref := map[resultKey]int{}
	for _, k := range refOut.Records() {
		ref[resultKey{key: k.Key, wr: k.Value}]++
	}
	if len(ref) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	for _, cfg := range []struct {
		name string
		opts []streamline.Option
	}{
		{"batch=1", []streamline.Option{streamline.WithBatchSize(1)}},
		{"batch=2/flush=1ms", []streamline.Option{streamline.WithBatchSize(2), streamline.WithFlushInterval(time.Millisecond)}},
		{"batch=256/flush=off", []streamline.Option{streamline.WithBatchSize(256), streamline.WithFlushInterval(-1)}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			env, out := build(cfg.opts...)
			if plan := planString(env.Core().Graph()); plan != refPlan {
				t.Fatalf("batch options changed the logical plan:\nref:\n%s\ngot:\n%s", refPlan, plan)
			}
			execute(t, env.Execute)
			got := map[resultKey]int{}
			for _, k := range out.Records() {
				got[resultKey{key: k.Key, wr: k.Value}]++
			}
			if len(got) != len(ref) {
				t.Fatalf("distinct results: got %d, ref %d", len(got), len(ref))
			}
			for rk, c := range ref {
				if got[rk] != c {
					t.Fatalf("result %+v: got count %d, ref count %d", rk, got[rk], c)
				}
			}
		})
	}
}

// TestNumKeyGroupsIsPhysicalOnlyTyped proves WithNumKeyGroups is a pure
// state-partitioning knob on the typed API: identical results at group
// counts 1, 7 and 128, at parallelism below and above the group count.
func TestNumKeyGroupsIsPhysicalOnlyTyped(t *testing.T) {
	results := func(opts ...streamline.Option) map[uint64]float64 {
		env := streamline.New(opts...)
		src := streamline.From(env, "gen", streamline.Generator(2000,
			func(sub, par int, i int64) streamline.Keyed[float64] {
				return streamline.Keyed[float64]{Ts: i, Value: float64(i % 11)}
			}), streamline.WithSourceParallelism(2))
		keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return uint64(k.Value) % 5 })
		sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
		out := streamline.Collect(sums, "out")
		execute(t, env.Execute)
		res := map[uint64]float64{}
		for _, k := range out.Records() {
			res[k.Key] = k.Value
		}
		return res
	}
	want := results(streamline.WithParallelism(1))
	if len(want) != 5 {
		t.Fatalf("reference run produced %d keys, want 5", len(want))
	}
	for _, groups := range []int{1, 7, 128} {
		for _, par := range []int{1, 2, 4} {
			got := results(streamline.WithParallelism(par), streamline.WithNumKeyGroups(groups))
			if len(got) != len(want) {
				t.Fatalf("G=%d P=%d: %d keys, want %d", groups, par, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("G=%d P=%d: key %d = %v, want %v", groups, par, k, got[k], v)
				}
			}
		}
	}
}

// TestRescaleRecoveryTypedAPI is the full rescaling recipe on the public
// API: checkpoint to a durable file backend at parallelism 2, kill the
// process's job, then rebuild the same pipeline at parallelism 1 and at 4
// and resume from the latest on-disk snapshot. Dedup'd window results must
// equal a failure-free run.
func TestRescaleRecoveryTypedAPI(t *testing.T) {
	const n = 5000
	build := func(par int, perSec float64, opts ...streamline.Option) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
		env := streamline.New(append([]streamline.Option{streamline.WithParallelism(par)}, opts...)...)
		gen := streamline.Generator(n, func(sub, par int, i int64) streamline.Keyed[float64] {
			global := i*int64(par) + int64(sub)
			return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 6), Value: 1}
		})
		var src *streamline.Stream[float64]
		if perSec > 0 {
			src = streamline.From(env, "gen", streamline.Paced(gen, perSec), streamline.WithSourceParallelism(2))
		} else {
			src = streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
		}
		keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
		win := streamline.WindowAggregate(keyed, "win",
			streamline.Query(streamline.Tumbling(100), streamline.Sum()))
		return env, streamline.Collect(win, "out")
	}
	collect := func(outs ...*streamline.Results[streamline.WindowResult]) map[[2]int64]float64 {
		res := map[[2]int64]float64{}
		for _, out := range outs {
			for _, k := range out.Records() {
				res[[2]int64{int64(k.Key), k.Value.Start}] = k.Value.Value
			}
		}
		return res
	}

	refEnv, refOut := build(2, 0)
	execute(t, refEnv.Execute)
	want := collect(refOut)

	for _, restorePar := range []int{1, 4} {
		restorePar := restorePar
		t.Run(fmt.Sprintf("to-parallelism-%d", restorePar), func(t *testing.T) {
			backend, err := streamline.NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			crashEnv, crashOut := build(2, 10_000,
				streamline.WithCheckpointing(backend, 20*time.Millisecond))
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
			runErr := crashEnv.Execute(ctx)
			cancel()
			if runErr == nil {
				t.Skip("job finished before kill on this machine")
			}
			snap, ok, err := backend.Latest()
			if err != nil {
				t.Fatalf("Latest: %v", err)
			}
			if !ok {
				t.Skip("no checkpoint before kill")
			}
			resumeEnv, resumeOut := build(restorePar, 0, streamline.WithStateBackend(backend))
			if err := resumeEnv.ExecuteRestored(context.Background(), snap); err != nil {
				t.Fatalf("restored run at parallelism %d: %v", restorePar, err)
			}
			got := collect(crashOut, resumeOut)
			if len(got) != len(want) {
				t.Fatalf("got %d windows, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("window %v = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}
