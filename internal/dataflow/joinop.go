package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
)

// EdgeAware is an optional operator capability: head operators implementing
// it receive data records tagged with the input-edge index they arrived on.
// Two-input operators (joins, co-processing) need the distinction; ordinary
// operators ignore it and receive everything through OnRecord.
type EdgeAware interface {
	OnRecordEdge(edge int, r Record, out Collector)
}

// JoinedPair is the payload emitted by WindowJoinOp for each matching
// (left, right) value pair within a window.
type JoinedPair struct {
	WindowStart int64
	WindowEnd   int64
	Left        float64
	Right       float64
}

// WindowJoinOp is the keyed tumbling-window equi-join: records from edge 0
// (left) and edge 1 (right) with the same key and the same tumbling window
// are joined pairwise, the relational semantics of stream joins in Flink's
// DataStream API. Both inputs must be hash-partitioned on the join key with
// identical parallelism.
//
// The operator is checkpointable: open windows' buffered values are part of
// the snapshot.
type WindowJoinOp struct {
	// Size is the tumbling window length in event-time ticks.
	Size int64

	curWM   int64
	windows map[int64]*joinWindow // by window start
}

type joinWindow struct {
	perKey map[uint64]*joinBucket
}

type joinBucket struct {
	left  []float64
	right []float64
}

var _ Operator = (*WindowJoinOp)(nil)
var _ EdgeAware = (*WindowJoinOp)(nil)

// NewWindowJoinOp returns an operator factory for a tumbling equi-join.
func NewWindowJoinOp(size int64) OperatorFactory {
	if size <= 0 {
		panic("dataflow: join window size must be positive")
	}
	return func() Operator { return &WindowJoinOp{Size: size} }
}

type joinState struct {
	CurWM  int64
	Starts []int64
	Keys   [][]uint64
	Lefts  [][][]float64
	Rights [][][]float64
}

// Open implements Operator.
func (j *WindowJoinOp) Open(ctx *OpContext) error {
	j.windows = make(map[int64]*joinWindow)
	j.curWM = math.MinInt64
	if ctx.Restore == nil {
		return nil
	}
	var s joinState
	if err := gob.NewDecoder(bytes.NewReader(ctx.Restore)).Decode(&s); err != nil {
		return fmt.Errorf("join restore: %w", err)
	}
	j.curWM = s.CurWM
	for i, start := range s.Starts {
		w := &joinWindow{perKey: make(map[uint64]*joinBucket)}
		for k, key := range s.Keys[i] {
			w.perKey[key] = &joinBucket{left: s.Lefts[i][k], right: s.Rights[i][k]}
		}
		j.windows[start] = w
	}
	return nil
}

// OnRecord implements Operator; it should not be reached for a head join
// operator (the runtime dispatches through OnRecordEdge), but chains may
// deliver here — treat untagged records as left input.
func (j *WindowJoinOp) OnRecord(r Record, out Collector) { j.OnRecordEdge(0, r, out) }

// OnRecordEdge implements EdgeAware.
func (j *WindowJoinOp) OnRecordEdge(edge int, r Record, _ Collector) {
	v, ok := r.Value.(float64)
	if !ok {
		return
	}
	start := (r.Ts / j.Size) * j.Size
	if r.Ts < 0 {
		start = ((r.Ts - j.Size + 1) / j.Size) * j.Size
	}
	w := j.windows[start]
	if w == nil {
		w = &joinWindow{perKey: make(map[uint64]*joinBucket)}
		j.windows[start] = w
	}
	b := w.perKey[r.Key]
	if b == nil {
		b = &joinBucket{}
		w.perKey[r.Key] = b
	}
	if edge == 0 {
		b.left = append(b.left, v)
	} else {
		b.right = append(b.right, v)
	}
}

// OnWatermark implements Operator: fire every window whose end has passed.
func (j *WindowJoinOp) OnWatermark(wm int64, out Collector) {
	j.curWM = wm
	starts := make([]int64, 0, len(j.windows))
	for start := range j.windows {
		if start+j.Size <= wm {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, k int) bool { return starts[i] < starts[k] })
	for _, start := range starts {
		j.fire(start, out)
	}
}

func (j *WindowJoinOp) fire(start int64, out Collector) {
	w := j.windows[start]
	delete(j.windows, start)
	keys := make([]uint64, 0, len(w.perKey))
	for k := range w.perKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, k int) bool { return keys[i] < keys[k] })
	for _, key := range keys {
		b := w.perKey[key]
		for _, l := range b.left {
			for _, r := range b.right {
				out.Collect(Data(start+j.Size-1, key, JoinedPair{
					WindowStart: start, WindowEnd: start + j.Size, Left: l, Right: r,
				}))
			}
		}
	}
}

// Snapshot implements Operator.
func (j *WindowJoinOp) Snapshot() ([]byte, error) {
	s := joinState{CurWM: j.curWM}
	starts := make([]int64, 0, len(j.windows))
	for start := range j.windows {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, k int) bool { return starts[i] < starts[k] })
	for _, start := range starts {
		w := j.windows[start]
		keys := make([]uint64, 0, len(w.perKey))
		for k := range w.perKey {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, k int) bool { return keys[i] < keys[k] })
		var lefts, rights [][]float64
		for _, k := range keys {
			lefts = append(lefts, w.perKey[k].left)
			rights = append(rights, w.perKey[k].right)
		}
		s.Starts = append(s.Starts, start)
		s.Keys = append(s.Keys, keys)
		s.Lefts = append(s.Lefts, lefts)
		s.Rights = append(s.Rights, rights)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("join snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Finish implements Operator: fire all remaining windows.
func (j *WindowJoinOp) Finish(out Collector) {
	j.OnWatermark(math.MaxInt64, out)
}
