package streamline

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// WorkerEnvVar, when set in a process's environment, marks it as a
// self-spawned worker: ExecuteDistributed in that process runs the worker
// share against the coordinator at the variable's address instead of
// coordinating, and exits when the share completes. Set automatically by
// WithSelfSpawn; never set it by hand unless you are building your own
// process manager.
const WorkerEnvVar = "STREAMLINE_WORKER"

// WithWorkers makes ExecuteDistributed split the job across n worker
// processes plus the coordinator (this process, which keeps all sinks and
// live local sources). n == 0 (the default) runs single-process.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithListenAddr sets the coordinator's control listen address for
// distributed runs (default: an ephemeral loopback port). Use a fixed
// address when workers are started externally, e.g. "127.0.0.1:7171".
func WithListenAddr(addr string) Option { return core.WithListenAddr(addr) }

// WithSelfSpawn makes ExecuteDistributed start its own workers by
// re-executing the current binary with WorkerEnvVar set. The re-executed
// process runs the same main, builds the same pipeline, and its
// ExecuteDistributed call becomes the worker share — after which the child
// process exits rather than returning into a main that expects results.
func WithSelfSpawn() Option { return core.WithSelfSpawn() }

// WithPipelineRef names the registered pipeline externally started generic
// workers (RunRegisteredWorker) rebuild, with the arguments to rebuild it
// from. Unnecessary with WithSelfSpawn.
func WithPipelineRef(name string, args ...string) Option {
	return core.WithPipelineRef(name, args...)
}

// WithOnListen registers a callback invoked with the coordinator's bound
// control address once it is listening — the way to learn an ephemeral
// port so externally started workers (or test goroutines) can dial in.
func WithOnListen(f func(addr string)) Option { return core.WithOnListen(f) }

// RegisterWireTypes registers custom record payload types for distributed
// runs. Every process of a job must register the same set before
// executing; builtin payloads (string, int, float64, ...) and the engine's
// window/join results are pre-registered.
func RegisterWireTypes(examples ...any) { transport.RegisterTypes(examples...) }

// Metrics returns the environment's metrics registry (created on first
// use). Distributed runs report per-edge transport gauges and counters
// ("edge.<name>.<i>.queued_batches", "edge.<name>.<i>.tx_bytes") and
// checkpoint counts into it.
func (e *Env) Metrics() *metrics.Registry {
	e.regOnce.Do(func() { e.reg = metrics.NewRegistry() })
	return e.reg
}

// ExecuteDistributed runs the pipeline across WithWorkers processes. This
// process becomes the coordinator (participant 0): it distributes the
// structural plan, runs every pinned chain — sinks, so Collect results land
// here, and live channel sources, whose data exists only here — injects
// checkpoint barriers, assembles per-subtask acks into global snapshots on
// the configured backend, and aborts cleanly if any worker connection
// drops (the job is then restartable from the last snapshot at any worker
// count via ExecuteDistributedRestored).
//
// With zero workers it is exactly Execute. In a WithSelfSpawn child
// process it runs the worker share and exits.
func (e *Env) ExecuteDistributed(ctx context.Context) error {
	return e.executeDistributed(ctx, nil)
}

// ExecuteDistributedRestored is ExecuteDistributed starting from a recovery
// snapshot — the worker count may differ from the run that wrote it;
// keyed state and splittable scan work redistribute.
func (e *Env) ExecuteDistributedRestored(ctx context.Context, snap *Snapshot) error {
	return e.executeDistributed(ctx, snap)
}

func (e *Env) executeDistributed(ctx context.Context, snap *Snapshot) error {
	if err := e.core.BuildErr(); err != nil {
		return err
	}
	if addr := os.Getenv(WorkerEnvVar); addr != "" {
		// Self-spawned child: this very code built the identical pipeline,
		// so the env itself is the build product. The share must not return
		// into a main that would print empty results.
		err := transport.RunWorker(ctx, addr, e.Metrics(), func(string, []string) (*dataflow.Graph, bool, error) {
			return e.core.Graph(), e.core.Chaining(), nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamline worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	workers := e.core.Workers()
	if workers <= 0 {
		if snap != nil {
			return e.core.ExecuteRestored(ctx, snap)
		}
		return e.core.Execute(ctx)
	}
	backend, every := e.core.Backend()
	pipeline, args := e.core.PipelineRef()
	coord, err := transport.NewCoordinator(transport.Config{
		Graph:      e.core.Graph(),
		Chaining:   e.core.Chaining(),
		Workers:    workers,
		Backend:    backend,
		Interval:   every,
		Restore:    snap,
		Pipeline:   pipeline,
		Args:       args,
		Registry:   e.Metrics(),
		ListenAddr: e.core.ListenAddr(),
	})
	if err != nil {
		return err
	}
	if f := e.core.OnListen(); f != nil {
		f(coord.Addr())
	}
	var spawned []*exec.Cmd
	if e.core.SelfSpawn() {
		for i := 0; i < workers; i++ {
			cmd := exec.CommandContext(ctx, os.Args[0], os.Args[1:]...)
			cmd.Env = append(os.Environ(), WorkerEnvVar+"="+coord.Addr())
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				for _, c := range spawned {
					c.Process.Kill()
					c.Wait()
				}
				return fmt.Errorf("spawn worker %d: %w", i+1, err)
			}
			spawned = append(spawned, cmd)
		}
	}
	runErr := coord.Run(ctx)
	e.core.NoteDistributedCheckpoints(coord.CompletedCheckpoints())
	// Children exit on their own once their share (or the abort) lands:
	// Run has closed every control connection by now, which unblocks them.
	for _, c := range spawned {
		c.Wait()
	}
	return runErr
}

// Pipeline registry: generic worker processes (cmd/streamline-worker) have
// no main that builds the job, so pipelines register a named builder and
// the plan's pipeline name selects it.
var (
	pipelinesMu sync.RWMutex
	pipelines   = map[string]func(args []string) (*Env, error){}
)

// RegisterPipeline registers a named pipeline builder for generic workers.
// The builder must construct the pipeline exactly as the coordinator does
// for the same arguments — the plan fingerprint is verified before running.
func RegisterPipeline(name string, build func(args []string) (*Env, error)) {
	pipelinesMu.Lock()
	defer pipelinesMu.Unlock()
	pipelines[name] = build
}

// RunWorker executes one worker's share of a distributed job, rebuilding
// the pipeline with the given builder. It blocks until the share completes
// or the job aborts. Tests use it to run workers in-process over real TCP;
// cmd/streamline-worker wraps RunRegisteredWorker around it.
func RunWorker(ctx context.Context, coordAddr string, build func(pipeline string, args []string) (*Env, error)) error {
	reg := metrics.NewRegistry()
	return transport.RunWorker(ctx, coordAddr, reg, func(pipeline string, args []string) (*dataflow.Graph, bool, error) {
		env, err := build(pipeline, args)
		if err != nil {
			return nil, false, err
		}
		if err := env.core.BuildErr(); err != nil {
			return nil, false, err
		}
		return env.core.Graph(), env.core.Chaining(), nil
	})
}

// RunRegisteredWorker is RunWorker against the pipeline registry: the
// coordinator's plan names the pipeline, the registry builds it.
func RunRegisteredWorker(ctx context.Context, coordAddr string) error {
	return RunWorker(ctx, coordAddr, func(pipeline string, args []string) (*Env, error) {
		pipelinesMu.RLock()
		build, ok := pipelines[pipeline]
		pipelinesMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("pipeline %q not registered in this worker binary", pipeline)
		}
		return build(args)
	})
}
