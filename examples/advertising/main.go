// Target advertisement — the third STREAMLINE application and the showcase
// for multi-query aggregate sharing: several CTR dashboards with different
// sliding windows run concurrently over one impression stream, and Cutty
// computes them from one shared slice store per campaign.
//
//	go run ./examples/advertising
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/workloads"
	"repro/streamline"
)

// impression is one ad view; Click is 1 when it was clicked.
type impression struct {
	Campaign uint64
	Click    float64
}

func main() {
	const campaigns = 30
	gen := workloads.NewAdClicks(31, campaigns, 2000)

	env := streamline.New(streamline.WithParallelism(2))
	impressions := streamline.From(env, "impressions", streamline.Generator(60_000,
		func(sub, par int, i int64) streamline.Keyed[impression] {
			e := gen.At(i)
			return streamline.Keyed[impression]{Ts: e.Ts, Value: impression{Campaign: e.Key, Click: float64(e.Attr)}}
		}), streamline.WithSourceParallelism(1))
	perCampaign := streamline.KeyBy(impressions, "campaign", func(im impression) uint64 { return im.Campaign })
	clicks := streamline.Map(perCampaign, "clicks", func(im impression) float64 { return im.Click })
	results := streamline.Collect(
		streamline.WindowAggregate(clicks, "dashboards",
			// Three dashboard refresh rates + one count per horizon; all six
			// queries share slicing per campaign.
			streamline.Query(streamline.Sliding(5_000, 1_000), streamline.Sum()),
			streamline.Query(streamline.Sliding(5_000, 1_000), streamline.Count()),
			streamline.Query(streamline.Sliding(15_000, 5_000), streamline.Sum()),
			streamline.Query(streamline.Sliding(15_000, 5_000), streamline.Count()),
			streamline.Query(streamline.Tumbling(30_000), streamline.Sum()),
			streamline.Query(streamline.Tumbling(30_000), streamline.Count()),
		), "out")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Reassemble the 30s dashboard: clicks (query 4) / impressions (query 5).
	type key struct {
		campaign uint64
		start    int64
	}
	clicked := map[key]float64{}
	imps := map[key]float64{}
	for _, r := range results.Records() {
		k := key{r.Key, r.Value.Start}
		switch r.Value.QueryID {
		case 4:
			clicked[k] += r.Value.Value
		case 5:
			imps[k] += r.Value.Value
		}
	}
	type row struct {
		campaign uint64
		ctr      float64
		imps     float64
	}
	agg30 := map[uint64]*row{}
	for k, n := range imps {
		r := agg30[k.campaign]
		if r == nil {
			r = &row{campaign: k.campaign}
			agg30[k.campaign] = r
		}
		r.imps += n
		r.ctr += clicked[k]
	}
	rows := make([]*row, 0, len(agg30))
	for _, r := range agg30 {
		if r.imps > 0 {
			r.ctr /= r.imps
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ctr != rows[j].ctr {
			return rows[i].ctr > rows[j].ctr
		}
		return rows[i].campaign < rows[j].campaign
	})
	fmt.Println("top campaigns by CTR (30s tumbling dashboard):")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("  campaign %2d  impressions %6.0f  ctr %5.2f%%\n", r.campaign, r.imps, r.ctr*100)
	}
}
