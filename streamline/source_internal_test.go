package streamline

import (
	"testing"

	"repro/internal/dataflow"
)

// scriptedReader plays back a fixed sequence of reader events.
type scriptedReader struct {
	steps []struct {
		k  Keyed[float64]
		st ReadStatus
	}
	pos int
}

func (s *scriptedReader) add(k Keyed[float64], st ReadStatus) {
	s.steps = append(s.steps, struct {
		k  Keyed[float64]
		st ReadStatus
	}{k, st})
}

func (s *scriptedReader) Next() (Keyed[float64], ReadStatus) {
	if s.pos >= len(s.steps) {
		return Keyed[float64]{}, ReadEnd
	}
	step := s.steps[s.pos]
	s.pos++
	return step.k, step.st
}

func (s *scriptedReader) Snapshot() ([]byte, error) { return nil, nil }
func (s *scriptedReader) Restore([]byte) error      { return nil }

// A reader-steered watermark (the hybrid handoff) is computed from the
// reader's pre-extraction clock. With a WithTimestamps extractor installed,
// the lowering must still close out the extracted event time — and must
// never emit a regressing watermark on the wire.
func TestLoweredReaderWatermarkWithExtractor(t *testing.T) {
	r := &scriptedReader{}
	// Two data records whose extracted timestamps (the values) are far
	// ahead of the reader's own clock (the Ts fields, e.g. line indices).
	r.add(Keyed[float64]{Ts: 0, Value: 500}, ReadData)
	r.add(Keyed[float64]{Ts: 1, Value: 900}, ReadData)
	// The handoff watermark, stamped with the reader-clock max.
	r.add(Keyed[float64]{Ts: 1}, ReadWatermark)
	// An idle poll afterwards.
	r.add(Keyed[float64]{}, ReadIdle)

	l := &loweredReader[float64]{
		r:       r,
		ts:      func(v float64) int64 { return int64(v) },
		every:   1000,
		wmFloor: minInt64,
	}
	var wms []int64
	for {
		rec, ok := l.Next()
		if !ok {
			break
		}
		if rec.Kind == dataflow.KindWatermark {
			wms = append(wms, rec.Ts)
		} else if rec.Ts != int64(rec.Value.(float64)) {
			t.Fatalf("data record not re-stamped by the extractor: %+v", rec)
		}
	}
	if len(wms) != 2 {
		t.Fatalf("saw %d watermarks, want 2 (handoff + idle): %v", len(wms), wms)
	}
	if wms[0] != 900 {
		t.Fatalf("handoff watermark = %d, want 900 (the max extracted timestamp, not the reader clock)", wms[0])
	}
	if wms[1] < wms[0] {
		t.Fatalf("watermark regressed on the wire: %v", wms)
	}
}

// Without an extractor the reader's watermark passes through unchanged.
func TestLoweredReaderWatermarkPassThrough(t *testing.T) {
	r := &scriptedReader{}
	r.add(Keyed[float64]{Ts: 10, Value: 1}, ReadData)
	r.add(Keyed[float64]{Ts: 10}, ReadWatermark)
	l := &loweredReader[float64]{r: r, every: 1000, wmFloor: minInt64}
	var wms []int64
	for {
		rec, ok := l.Next()
		if !ok {
			break
		}
		if rec.Kind == dataflow.KindWatermark {
			wms = append(wms, rec.Ts)
		}
	}
	if len(wms) != 1 || wms[0] != 10 {
		t.Fatalf("watermarks = %v, want [10]", wms)
	}
}
