// Hybrid replay — the paper's most recognizable scenario: one pipeline
// bootstraps its state from stored history (data at rest) and seamlessly
// continues on the live stream (data in motion), with no Lambda-style
// second system and no code change between the phases.
//
// A day of per-sensor readings sits in a JSONL file; new readings keep
// arriving on a Go channel. The Hybrid connector replays the file, emits a
// handoff watermark at the history's max timestamp, then atomically
// switches to the channel — so the windowed aggregation below sees one
// continuous event-time stream, and windows straddling the handoff combine
// stored and live readings.
//
//	go run ./examples/hybrid
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/streamline"
)

// reading is one sensor sample; ts is in milliseconds of event time.
type reading struct {
	Ts     int64   `json:"ts"`
	Sensor uint64  `json:"sensor"`
	Value  float64 `json:"value"`
}

const (
	historyN = 6000 // readings at rest, ts 0..5999
	liveN    = 2000 // readings in motion, ts 6000..7999
	sensors  = 4
)

func mkReading(i int64) reading {
	sensor := uint64(i) % sensors
	return reading{Ts: i, Sensor: sensor, Value: float64(sensor*10) + float64(i%7)}
}

// writeHistory materializes the at-rest half as a JSONL file.
func writeHistory(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for i := int64(0); i < historyN; i++ {
		if err := enc.Encode(mkReading(i)); err != nil {
			return err
		}
	}
	return nil
}

// feedLive pushes the in-motion half into a channel, as a producer would.
func feedLive() <-chan streamline.Keyed[reading] {
	ch := make(chan streamline.Keyed[reading], 256)
	go func() {
		defer close(ch)
		for i := int64(historyN); i < historyN+liveN; i++ {
			r := mkReading(i)
			ch <- streamline.Keyed[reading]{Ts: r.Ts, Value: r}
		}
	}()
	return ch
}

func main() {
	dir, err := os.MkdirTemp("", "streamline-hybrid")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	historyPath := filepath.Join(dir, "history.jsonl")
	if err := writeHistory(historyPath); err != nil {
		log.Fatal(err)
	}

	env := streamline.New(streamline.WithParallelism(2))

	// The source: stored history, then the live feed — one connector. The
	// Channel live phase hints parallelism 1, so no explicit option needed.
	events := streamline.From(env, "readings",
		streamline.Hybrid(
			streamline.JSONL[reading](historyPath), // data at rest
			streamline.Channel(feedLive()),         // data in motion
		),
		streamline.WithTimestamps(func(r reading) int64 { return r.Ts }),
	)

	// Identical analysis to the quickstart: per-sensor tumbling 1s means.
	perSensor := streamline.KeyBy(events, "sensor", func(r reading) uint64 { return r.Sensor })
	values := streamline.Map(perSensor, "value", func(r reading) float64 { return r.Value })
	results := streamline.Collect(
		streamline.WindowAggregate(values, "avg-1s",
			streamline.Query(streamline.Tumbling(1000), streamline.Avg()),
		), "out")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	byWindow := map[int64]map[uint64]float64{}
	for _, r := range results.Records() {
		if byWindow[r.Value.Start] == nil {
			byWindow[r.Value.Start] = map[uint64]float64{}
		}
		byWindow[r.Value.Start][r.Key] = r.Value.Value
	}
	starts := make([]int64, 0, len(byWindow))
	for s := range byWindow {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	fmt.Printf("%d windows over %d stored + %d live readings; handoff at t=%d\n",
		len(byWindow), historyN, liveN, int64(historyN))
	for _, s := range starts {
		phase := "at rest"
		if s >= historyN {
			phase = "in motion"
		}
		fmt.Printf("window [%4d,%4d) %-9s", s, s+1000, phase)
		for sensor := uint64(0); sensor < sensors; sensor++ {
			fmt.Printf("  sensor%d=%.2f", sensor, byWindow[s][sensor])
		}
		fmt.Println()
	}
	fmt.Println("one program, one engine: the history bootstrap and the live tail ran through the same plan")
}
