package bench

import (
	"context"
	"testing"

	"repro/internal/dataflow"
)

// Both scan-bench pipelines must actually scan the whole file: the baseline
// reports every line, the split mode every line except the per-subtask tail
// batches its decode folds but never flushes (bounded by par × scanBatch) —
// a correctness guard so the recorded throughputs measure real work.
func TestScanBenchPipelinesCoverTheFile(t *testing.T) {
	const n = 50_000
	path, _, err := writeScanFile(t.TempDir(), n)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(factory dataflow.SourceFactory) float64 {
		t.Helper()
		g := dataflow.NewGraph("scan-check")
		src := g.AddSource("scan", 4, factory)
		sink := &dataflow.CollectSink{}
		g.AddOperator("sink", 1, sink.Factory(), dataflow.Edge{From: src, Part: dataflow.Rebalance})
		if err := dataflow.NewJob(g).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, r := range sink.Records() {
			total += r.Value.(float64)
		}
		return total
	}
	rr := sum(func(sub, par int) dataflow.SourceFunc {
		return &rrLineScan{path: path, sub: sub, par: par}
	})
	if rr != n {
		t.Fatalf("round-robin baseline counted %v lines, want %d", rr, n)
	}
	sp := sum(scanFactory(path, 1<<20, false))
	if sp > n || sp < n-4*scanBatch {
		t.Fatalf("split scan counted %v lines, want within (%d, %d]", sp, n-4*scanBatch, n)
	}
}
