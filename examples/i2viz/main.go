// I2 visualization demo (offline): ingest a synthetic signal into the I2
// history store, then walk through an interactive session — overview, zoom,
// pan — printing the ASCII rendering and the transfer statistics at every
// step, including the pixel-exactness check against the raw data.
//
//	go run ./examples/i2viz
package main

import (
	"fmt"

	"repro/internal/i2"
	"repro/internal/workloads"
)

func main() {
	const (
		n      = 200_000
		rate   = 2000
		width  = 72
		height = 14
	)
	store := i2.NewStore(n, i2.WithTiers(50, 4, 4))
	gen := workloads.TimeSeries{Seed: 3, PerSec: rate}
	raw := make([]i2.Point, n)
	for i := int64(0); i < n; i++ {
		e := gen.At(i)
		p := i2.Point{Ts: e.Ts, V: e.Value}
		raw[i] = p
		store.Append(p)
	}
	first, last := store.Span()
	fmt.Printf("ingested %d points over %.1fs of signal\n\n", store.Len(), float64(last-first)/1000)

	views := []struct {
		name string
		vp   i2.Viewport
	}{
		{"overview", i2.Viewport{From: first, To: last + 1, Width: width}},
		{"zoom 10x", i2.Viewport{From: 40_000, To: 50_000, Width: width}},
		{"pan right", i2.Viewport{From: 60_000, To: 70_000, Width: width}},
		{"deep zoom", i2.Viewport{From: 62_000, To: 62_500, Width: width}},
	}
	for _, v := range views {
		cols := store.Query(v.vp)
		pts := i2.Points(cols)
		rawClip := clip(raw, v.vp)
		lo, hi := i2.ValueRange(rawClip)
		sc := i2.Scale{VP: v.vp, VMin: lo, VMax: hi, H: height}
		reduced := i2.RenderLine(pts, sc)
		exact := i2.RenderLine(rawClip, sc)
		fmt.Printf("-- %s  [%d..%d)  raw=%d tuples  transferred=%d  reduction=%.0fx  pixel-errors=%d  tier=%dms\n",
			v.name, v.vp.From, v.vp.To, len(rawClip), len(pts),
			float64(len(rawClip))/float64(max(len(pts), 1)), exact.Diff(reduced),
			store.QueriedFromTier(v.vp))
		fmt.Print(reduced.String())
		fmt.Println()
	}
}

func clip(pts []i2.Point, vp i2.Viewport) []i2.Point {
	var out []i2.Point
	for _, p := range pts {
		if p.Ts >= vp.From && p.Ts < vp.To {
			out = append(out, p)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
