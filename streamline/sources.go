package streamline

import "repro/internal/dataflow"

// FromSlice creates a bounded stream from an in-memory slice (data at
// rest), read by a single source subtask in order. Element i carries event
// timestamp i; keys are assigned by a later KeyBy.
func FromSlice[T any](env *Env, name string, items []T) *Stream[T] {
	recs := make([]dataflow.Record, len(items))
	for i, v := range items {
		recs[i] = dataflow.Data(int64(i), 0, v)
	}
	return &Stream[T]{env: env, inner: env.core.FromRecords(name, recs)}
}

// FromKeyedSlice creates a bounded stream from records carrying explicit
// timestamps and keys.
func FromKeyedSlice[T any](env *Env, name string, items []Keyed[T]) *Stream[T] {
	recs := make([]dataflow.Record, len(items))
	for i, k := range items {
		recs[i] = box(k)
	}
	return &Stream[T]{env: env, inner: env.core.FromRecords(name, recs)}
}

// FromGenerator creates a stream from a deterministic generator. count < 0
// makes it unbounded (data in motion); otherwise it is a bounded stream
// that ends — the same plan either way. gen computes the i-th record of the
// given subtask; parallelism <= 0 uses the environment default.
func FromGenerator[T any](env *Env, name string, parallelism int, count int64, gen func(subtask, parallelism int, i int64) Keyed[T]) *Stream[T] {
	inner := env.core.FromGenerator(name, parallelism, count, func(sub, par int, i int64) dataflow.Record {
		return box(gen(sub, par, i))
	})
	return &Stream[T]{env: env, inner: inner}
}

// FromPacedGenerator is FromGenerator throttled to perSec records per
// second per subtask — the live-stream simulation used by the latency
// experiments.
func FromPacedGenerator[T any](env *Env, name string, parallelism int, count int64, perSec float64, gen func(subtask, parallelism int, i int64) Keyed[T]) *Stream[T] {
	inner := env.core.FromPacedGenerator(name, parallelism, count, perSec, func(sub, par int, i int64) dataflow.Record {
		return box(gen(sub, par, i))
	})
	return &Stream[T]{env: env, inner: inner}
}
