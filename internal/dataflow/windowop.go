package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/window"
)

// WindowQuery names a window aggregation declaratively so that the operator
// can be reconstructed on recovery (specs and functions live in the job
// definition; only mutable state is checkpointed).
type WindowQuery struct {
	Spec window.Spec
	Fn   *agg.FnF64
}

// WindowOp is the keyed window aggregation operator. It receives keyed
// float64 records (after a hash edge), restores event-time order with a
// watermark-driven reorder buffer (merging the per-upstream in-order streams
// re-introduces disorder), and runs one Cutty engine per key. Window results
// are emitted as records whose Value is a WindowResult and whose Ts is the
// window end.
//
// All mutable state — the per-key engines, the per-key reorder buffers and
// the per-group release watermark — lives in a state.KeyedState, so the
// operator snapshots per key group (asynchronously, behind a copy-on-write
// capture) and restores at any parallelism.
type WindowOp struct {
	Queries []WindowQuery

	out         Collector
	ks          *state.KeyedState
	engines     *state.MapCell[*cutty.Engine]
	buf         *state.MapCell[[]bufEntry]
	wm          *state.GroupCell[int64]
	curKey      uint64
	droppedLate int64
	droppedCtr  *metrics.Counter
}

// bufEntry is one buffered, not-yet-released element of a key's reorder
// buffer (exported fields for gob).
type bufEntry struct {
	Ts  int64
	Val float64
}

var _ Operator = (*WindowOp)(nil)
var _ KeyedStateful = (*WindowOp)(nil)

// NewWindowOp returns an operator factory running the given queries.
func NewWindowOp(queries ...WindowQuery) OperatorFactory {
	return func() Operator { return &WindowOp{Queries: queries} }
}

func (w *WindowOp) newEngine() *cutty.Engine {
	e := cutty.New(w.emitResult)
	for _, q := range w.Queries {
		if _, err := e.AddQuery(engine.Query{Window: q.Spec, Fn: q.Fn}); err != nil {
			// Queries are validated at graph build; this is unreachable in a
			// validated job.
			panic(fmt.Sprintf("dataflow: window query rejected: %v", err))
		}
	}
	return e
}

// cloneEngine deep-copies an engine via its snapshot codec — the
// copy-on-write path taken when a key is mutated while its captured state
// is still being serialized.
func (w *WindowOp) cloneEngine(e *cutty.Engine) *cutty.Engine {
	var buf bytes.Buffer
	if err := e.Snapshot(gob.NewEncoder(&buf)); err != nil {
		panic(fmt.Sprintf("dataflow: window engine clone (snapshot): %v", err))
	}
	ne := w.newEngine()
	if err := ne.Restore(gob.NewDecoder(bytes.NewReader(buf.Bytes()))); err != nil {
		panic(fmt.Sprintf("dataflow: window engine clone (restore): %v", err))
	}
	return ne
}

func (w *WindowOp) emitResult(r engine.Result) {
	w.out.Collect(Data(r.End, w.curKey, WindowResult{
		QueryID: r.QueryID,
		Start:   r.Start,
		End:     r.End,
		Value:   r.Value,
		Count:   r.Count,
	}))
}

// Open implements Operator.
func (w *WindowOp) Open(ctx *OpContext) error {
	w.ks = ctx.NewKeyedState()
	w.engines = state.RegisterMap(w.ks, "engines", state.Codec[*cutty.Engine]{
		Encode: func(enc *gob.Encoder, e *cutty.Engine) error { return e.Snapshot(enc) },
		Decode: func(dec *gob.Decoder) (*cutty.Engine, error) {
			e := w.newEngine()
			return e, e.Restore(dec)
		},
		Clone: w.cloneEngine,
	})
	w.buf = state.RegisterMap(w.ks, "buf", state.SliceCodec[bufEntry]())
	w.wm = state.RegisterPerGroup(w.ks, "wm", int64(math.MinInt64), state.GobCodec[int64]())
	if ctx.Metrics != nil {
		w.droppedCtr = ctx.Metrics.Counter("node." + ctx.NodeName + ".records_dropped_late")
	}
	return ctx.RestoreKeyedState(w.ks)
}

// KeyedState implements KeyedStateful.
func (w *WindowOp) KeyedState() *state.KeyedState { return w.ks }

// Snapshot implements Operator. All window state is keyed and travels per
// key group through KeyedState; there is no residual per-subtask state.
func (w *WindowOp) Snapshot() ([]byte, error) { return nil, nil }

// OnRecord implements Operator: buffer until the watermark releases. Late
// elements — older than their key group's release watermark — are dropped
// (allowed lateness zero): releasing them would feed the per-key engines
// out-of-order input. The count of dropped records is observable via
// DroppedLate and, when the job runs with metrics, the per-node
// records_dropped_late counter.
func (w *WindowOp) OnRecord(r Record, _ Collector) {
	v, ok := r.Value.(float64)
	if !ok {
		return
	}
	if r.Ts <= w.wm.Get(r.Key) {
		w.droppedLate++
		if w.droppedCtr != nil {
			w.droppedCtr.Inc()
		}
		return
	}
	entries, _ := w.buf.Get(r.Key)
	// Appending never mutates the visible prefix, so a captured view of the
	// old slice header stays intact; sorting and compacting below go
	// through GetMut.
	w.buf.Put(r.Key, append(entries, bufEntry{Ts: r.Ts, Val: v}))
}

// DroppedLate reports how many elements arrived after the watermark had
// passed their timestamp and were therefore excluded.
func (w *WindowOp) DroppedLate() int64 { return w.droppedLate }

// engineFor returns the key's engine for mutation, creating it on demand.
func (w *WindowOp) engineFor(key uint64) *cutty.Engine {
	e, ok := w.engines.GetMut(key)
	if !ok {
		e = w.newEngine()
		w.engines.Put(key, e)
	}
	return e
}

// OnWatermark implements Operator: release buffered records with ts <= wm
// per key in event-time order into the key's engine, then advance every
// engine's watermark and the per-group release watermark. The sweep runs
// eagerly — window results must be emitted before the runtime forwards the
// watermark downstream, or a downstream event-time operator would drop
// them as late. While a snapshot capture is serializing, each engine the
// sweep touches pays its copy-on-write clone once; that cost is bounded by
// one deep copy per engine per checkpoint and never blocks the barrier.
func (w *WindowOp) OnWatermark(wm int64, out Collector) {
	w.out = out
	for _, key := range w.buf.SortedKeys() {
		entries, _ := w.buf.Get(key)
		due := false
		for i := range entries {
			if entries[i].Ts <= wm {
				due = true
				break
			}
		}
		if !due {
			continue
		}
		entries, _ = w.buf.GetMut(key)
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Ts < entries[j].Ts })
		e := w.engineFor(key)
		w.curKey = key
		i := 0
		for ; i < len(entries) && entries[i].Ts <= wm; i++ {
			e.OnWatermark(entries[i].Ts)
			e.OnElement(entries[i].Ts, entries[i].Val)
		}
		if i == len(entries) {
			w.buf.Delete(key)
		} else {
			w.buf.Put(key, entries[i:])
		}
	}
	for _, key := range w.engines.SortedKeys() {
		w.curKey = key
		w.engineFor(key).OnWatermark(wm)
	}
	w.wm.SetAll(wm)
	w.out = nil
}

// Finish implements Operator: flush every remaining window.
func (w *WindowOp) Finish(out Collector) {
	w.OnWatermark(math.MaxInt64, out)
}
