// Package chaos is the fault-injection harness for the distributed
// runtime's soak tests and recovery benchmarks. It wraps net.Listener /
// net.Conn so tests can impose the failure modes the transport's failure
// model claims to survive — connection drops, added latency, and the nasty
// one, the hung-but-open connection (blackhole): reads see silence until
// their deadline, writes succeed into the void, exactly what a partitioned
// or wedged peer looks like to TCP. A Killer normalizes "kill this worker"
// across in-process workers (context cancellation) and real processes
// (SIGKILL).
package chaos

import (
	"context"
	"net"
	"os"
	"sync"
	"time"
)

// Listener wraps an accept loop, handing out fault-injectable Conns and
// remembering them so a test can reach into the currently open set — e.g.
// Partition, which blackholes everything accepted so far.
type Listener struct {
	net.Listener

	mu    sync.Mutex
	conns []*Conn
}

// Wrap decorates ln; every accepted connection is returned as a *Conn.
func Wrap(ln net.Listener) *Listener { return &Listener{Listener: ln} }

// Accept returns the next connection wrapped for fault injection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cc := newConn(c)
	l.mu.Lock()
	l.conns = append(l.conns, cc)
	l.mu.Unlock()
	return cc, nil
}

// Conns returns every connection accepted so far, in accept order (closed
// ones included).
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Conn, len(l.conns))
	copy(out, l.conns)
	return out
}

// Partition blackholes every connection accepted so far: from the peers'
// point of view the listener's process just fell off the network, while
// every TCP connection stays open. Only heartbeat timeouts can detect it.
func (l *Listener) Partition() {
	for _, c := range l.Conns() {
		c.Blackhole()
	}
}

// Conn is a net.Conn with switchable fault modes.
type Conn struct {
	net.Conn

	mu        sync.Mutex
	blackhole chan struct{} // non-nil once blackholed; closed never
	delay     time.Duration
	readDL    time.Time // tracked so blackholed reads honor deadlines
}

func newConn(c net.Conn) *Conn { return &Conn{Conn: c} }

// Blackhole switches the connection to hung-but-open: subsequent reads
// block (honoring any read deadline, returning a timeout error when it
// expires) and writes claim success while discarding the data. Idempotent.
func (c *Conn) Blackhole() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blackhole == nil {
		c.blackhole = make(chan struct{})
	}
}

// Delay makes every subsequent read wait d before touching the wire —
// coarse latency injection, enough to exercise deadline headroom.
func (c *Conn) Delay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay = d
}

// Drop closes the underlying connection — the crash-style failure.
func (c *Conn) Drop() { c.Conn.Close() }

func (c *Conn) faults() (chan struct{}, time.Duration, time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blackhole, c.delay, c.readDL
}

func (c *Conn) Read(p []byte) (int, error) {
	hole, delay, dl := c.faults()
	if hole != nil {
		// Silence until the read deadline; without one, until the peer or
		// the test closes the conn (the close makes the blocked read's
		// successor fail fast rather than hang the harness).
		var expire <-chan time.Time
		if !dl.IsZero() {
			t := time.NewTimer(time.Until(dl))
			defer t.Stop()
			expire = t.C
		}
		select {
		case <-expire:
			return 0, os.ErrDeadlineExceeded
		case <-hole: // never closed; keeps the select shape uniform
			return 0, net.ErrClosed
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	hole, _, _ := c.faults()
	if hole != nil {
		return len(p), nil // swallowed by the void
	}
	return c.Conn.Write(p)
}

// SetReadDeadline tracks the deadline so blackholed reads can honor it,
// then forwards to the real connection.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Killer normalizes killing workers across the two ways soak harnesses run
// them: in-process worker loops registered with a cancel function, and real
// processes registered with a pid (killed with SIGKILL — no goodbye on the
// control plane, exactly like a crash).
type Killer struct {
	mu      sync.Mutex
	cancels map[string]context.CancelFunc
	pids    map[string]int
}

// NewKiller returns an empty Killer.
func NewKiller() *Killer {
	return &Killer{cancels: map[string]context.CancelFunc{}, pids: map[string]int{}}
}

// RegisterCancel makes name killable by cancelling its context.
func (k *Killer) RegisterCancel(name string, cancel context.CancelFunc) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.cancels[name] = cancel
}

// RegisterPid makes name killable with SIGKILL.
func (k *Killer) RegisterPid(name string, pid int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.pids[name] = pid
}

// Kill terminates the named victim; unknown names are a no-op (the victim
// already died of natural causes).
func (k *Killer) Kill(name string) {
	k.mu.Lock()
	cancel := k.cancels[name]
	pid, hasPid := k.pids[name]
	delete(k.cancels, name)
	delete(k.pids, name)
	k.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if hasPid {
		if p, err := os.FindProcess(pid); err == nil {
			p.Kill()
		}
	}
}
