package i2

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, n int) (*Server, *httptest.Server) {
	t.Helper()
	store := NewStore(100000, WithTiers(10, 4, 3))
	srv := NewServer(store)
	for i := 0; i < n; i++ {
		srv.Ingest(Point{Ts: int64(i), V: float64(i % 17)})
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestSeriesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 5000)
	resp, err := http.Get(ts.URL + "/series?from=0&to=5000&width=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Viewport Viewport `json:"viewport"`
		Columns  []Column `json:"columns"`
		Points   []Point  `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Columns) != 50 {
		t.Fatalf("got %d columns, want 50", len(body.Columns))
	}
	if len(body.Points) > 4*50 {
		t.Fatalf("transfer %d exceeds 4*width", len(body.Points))
	}
}

func TestSeriesEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, 100)
	for _, q := range []string{
		"/series",
		"/series?from=10&to=5&width=10",
		"/series?from=0&to=100&width=0",
		"/series?from=a&to=b&width=c",
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 123)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Points int   `json:"points"`
		First  int64 `json:"first"`
		Last   int64 `json:"last"`
		Views  int   `json:"views"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Points != 123 || body.Last != 122 {
		t.Fatalf("stats = %+v", body)
	}
}

func TestViewRegistrationAndStream(t *testing.T) {
	srv, ts := newTestServer(t, 0)

	// Register a live view over [0, 100) with 10 columns.
	resp, err := http.Post(ts.URL+"/view", "application/json",
		strings.NewReader(`{"from":0,"to":100,"width":10}`))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Start the SSE consumer with a cancellable request so the handler
	// terminates when the test ends (closing a keep-alive body alone does
	// not cancel the server-side context).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/stream?id=%d", ts.URL, reg.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	streamResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Feed live points; columns complete every 10 ticks.
	go func() {
		for i := 0; i < 35; i++ {
			srv.Ingest(Point{Ts: int64(i), V: float64(i)})
		}
	}()

	reader := bufio.NewReader(streamResp.Body)
	deadline := time.After(5 * time.Second)
	got := 0
	event := ""
	for got < 3 {
		lineCh := make(chan string, 1)
		go func() {
			line, err := reader.ReadString('\n')
			if err != nil {
				close(lineCh)
				return
			}
			lineCh <- line
		}()
		select {
		case <-deadline:
			t.Fatalf("timed out after %d columns", got)
		case line, ok := <-lineCh:
			if !ok {
				t.Fatalf("stream closed after %d columns", got)
			}
			line = strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: ") && event == "column":
				var col Column
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &col); err != nil {
					t.Fatalf("bad column json: %v", err)
				}
				if col.Count != 10 {
					t.Fatalf("column %+v, want 10 points", col)
				}
				got++
			}
		}
	}
}

func TestViewValidation(t *testing.T) {
	_, ts := newTestServer(t, 0)
	resp, err := http.Post(ts.URL+"/view", "application/json",
		strings.NewReader(`{"from":10,"to":5,"width":10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid view accepted: %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/stream?id=999")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown view stream: %d", resp2.StatusCode)
	}
}

func TestDropView(t *testing.T) {
	srv, _ := newTestServer(t, 0)
	id, err := srv.RegisterView(Viewport{From: 0, To: 100, Width: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv.DropView(id)
	srv.DropView(id) // double drop must not panic
	// Ingest after drop must not panic either.
	srv.Ingest(Point{Ts: 1, V: 1})
}
