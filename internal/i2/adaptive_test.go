package i2

import (
	"math/rand"
	"testing"
)

// An adaptive view whose viewport never changes must produce exactly the
// columns of a direct batch aggregation.
func TestAdaptiveViewStaticMatchesBatch(t *testing.T) {
	store := NewStore(100000)
	vp := Viewport{From: 0, To: 1000, Width: 20}
	var got []Column
	view, err := NewAdaptiveView(store, vp, func(c Column) { got = append(got, c) })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{Ts: int64(i), V: rng.NormFloat64()}
		store.Append(pts[i])
		view.OnPoint(pts[i])
	}
	// Last column still open (no watermark past 1000): flush by switching
	// to the same viewport... not needed; compare the completed prefix.
	want := AggregateM4(pts, vp)
	if len(got) < len(want)-1 {
		t.Fatalf("got %d columns, want at least %d", len(got), len(want)-1)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("column %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Zoom during streaming: after a viewport switch, the union of backfilled
// and live columns must equal the direct aggregation of the new viewport.
func TestAdaptiveViewZoomMidStream(t *testing.T) {
	store := NewStore(100000)
	initial := Viewport{From: 0, To: 10_000, Width: 10}
	var got []Column
	view, err := NewAdaptiveView(store, initial, func(c Column) { got = append(got, c) })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pts := make([]Point, 6000)
	for i := range pts {
		pts[i] = Point{Ts: int64(i), V: rng.NormFloat64()}
	}
	// Stream the first 3000 points under the initial viewport.
	for _, p := range pts[:3000] {
		store.Append(p)
		view.OnPoint(p)
	}
	// User zooms into [2000, 6000) at 40 px — half historical, half future.
	zoom := Viewport{From: 2000, To: 6000, Width: 40}
	got = got[:0]
	if err := view.SetViewport(zoom); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[3000:] {
		store.Append(p)
		view.OnPoint(p)
	}
	// Flush the trailing open column.
	view.agg.Flush()

	want := AggregateM4(pts, zoom)
	if len(got) != len(want) {
		t.Fatalf("got %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		// Counts may differ for the seeded hand-off column (the historical
		// partial contributes its 4 extremes, not its raw count); the four
		// M4 points must be exact.
		if g.First != w.First || g.Last != w.Last || g.Min != w.Min || g.Max != w.Max ||
			g.T0 != w.T0 || g.T1 != w.T1 || g.Index != w.Index {
			t.Fatalf("column %d:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestAdaptiveViewPanBackwardsServesHistory(t *testing.T) {
	store := NewStore(100000)
	var got []Column
	view, err := NewAdaptiveView(store, Viewport{From: 0, To: 1000, Width: 10}, func(c Column) { got = append(got, c) })
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]Point, 5000)
	for i := range pts {
		pts[i] = Point{Ts: int64(i), V: float64(i % 50)}
		store.Append(pts[i])
		view.OnPoint(pts[i])
	}
	// Pan fully into the past: all columns must arrive synchronously.
	got = got[:0]
	if err := view.SetViewport(Viewport{From: 1000, To: 2000, Width: 10}); err != nil {
		t.Fatal(err)
	}
	want := AggregateM4(pts, Viewport{From: 1000, To: 2000, Width: 10})
	if len(got) != len(want) {
		t.Fatalf("backfill produced %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("column %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAdaptiveViewRejectsInvalid(t *testing.T) {
	store := NewStore(10)
	if _, err := NewAdaptiveView(store, Viewport{From: 5, To: 5, Width: 1}, func(Column) {}); err == nil {
		t.Fatalf("invalid initial viewport accepted")
	}
	view, err := NewAdaptiveView(store, Viewport{From: 0, To: 10, Width: 2}, func(Column) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := view.SetViewport(Viewport{Width: 0, From: 0, To: 1}); err == nil {
		t.Fatalf("invalid switch accepted")
	}
	if vp := view.Viewport(); vp.Width != 2 {
		t.Fatalf("failed switch mutated viewport: %+v", vp)
	}
}
