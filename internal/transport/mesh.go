package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
)

// Mesh is the TCP dataflow.EdgeTransport of one participant. It owns one
// listening socket for inbound channels and dials one connection per
// outbound channel (see the package comment for why conn-per-channel).
//
// Lifecycle: NewMesh (listener must already be bound, so the address can
// travel in the hello message before the graph exists) -> SetPeers (from
// the plan) -> exec registers Inbound/Outbound channels -> Start (opens the
// dial gate once every participant is ready, which guarantees all inbound
// registrations exist before the first frame arrives) -> DrainOutbound
// (after local subtasks finish: flush and close outbound connections) ->
// Close (tear down everything; also the abort path).
type Mesh struct {
	self  int
	ln    net.Listener
	reg   *metrics.Registry
	names map[int]string // node ID -> name, for metric labels

	ctx    context.Context
	cancel context.CancelFunc

	started chan struct{} // closed by Start: writers may dial
	failed  chan struct{} // closed by fail: transport is broken

	mu      sync.Mutex
	peers   map[int]string
	inbound map[dataflow.ChannelRef]chan []dataflow.Record
	feeders []chan []dataflow.Record
	conns   map[net.Conn]struct{}
	failErr error

	writers sync.WaitGroup
	readers sync.WaitGroup
}

// NewMesh wraps an already-bound data-plane listener. The graph supplies
// node names for per-edge metric labels; reg may be nil to disable metrics.
func NewMesh(self int, ln net.Listener, g *dataflow.Graph, reg *metrics.Registry) *Mesh {
	names := make(map[int]string)
	for _, n := range g.Nodes() {
		names[n.ID] = n.Name
	}
	m := &Mesh{
		self:    self,
		ln:      ln,
		reg:     reg,
		names:   names,
		started: make(chan struct{}),
		failed:  make(chan struct{}),
		inbound: make(map[dataflow.ChannelRef]chan []dataflow.Record),
		conns:   make(map[net.Conn]struct{}),
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	m.readers.Add(1)
	go m.acceptLoop()
	return m
}

// Addr returns the data-plane dial address peers use to reach this mesh.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// SetPeers installs the participant -> data-address map from the plan.
// Must precede Start.
func (m *Mesh) SetPeers(addrs map[int]string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers = addrs
}

// Start opens the dial gate: outbound writers block before it, so no frame
// is sent until the coordinator has confirmed every participant registered
// its inbound channels. Kills the registration race by construction.
func (m *Mesh) Start() { close(m.started) }

// Failed is closed on the first transport error (peer connection drop,
// encode/decode failure). The driver cancels the local job in response.
func (m *Mesh) Failed() <-chan struct{} { return m.failed }

// Err returns the first transport error, or nil.
func (m *Mesh) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failErr
}

func (m *Mesh) fail(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failErr == nil {
		m.failErr = err
		close(m.failed)
	}
}

// benign reports whether a read/accept error is part of ordinary teardown
// rather than a peer failure: clean EOF (peer drained and closed), our own
// Close, or an abort already in progress.
func (m *Mesh) benign(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || m.ctx.Err() != nil
}

func (m *Mesh) track(conn net.Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.conns[conn] = struct{}{}
}

// Inbound implements dataflow.EdgeTransport: it registers and returns the
// channel the demultiplexer will deliver ref's frames into.
func (m *Mesh) Inbound(ref dataflow.ChannelRef, buf int) chan []dataflow.Record {
	ch := make(chan []dataflow.Record, buf)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inbound[ref] = ch
	return ch
}

func (m *Mesh) inboundFor(ref dataflow.ChannelRef) chan []dataflow.Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inbound[ref]
}

// Outbound implements dataflow.EdgeTransport: it returns the feeder channel
// a local producer ships ref's batches into, and spawns the writer goroutine
// that owns ref's TCP connection to participant to.
func (m *Mesh) Outbound(ref dataflow.ChannelRef, to, buf int) chan []dataflow.Record {
	feeder := make(chan []dataflow.Record, buf)
	var tx *metrics.Counter
	if m.reg != nil {
		tx = m.reg.Counter(fmt.Sprintf("edge.%s.%d.tx_bytes", m.names[ref.Node], ref.Edge))
	}
	m.mu.Lock()
	m.feeders = append(m.feeders, feeder)
	m.mu.Unlock()
	m.writers.Add(1)
	go m.writeLoop(ref, to, feeder, tx)
	return feeder
}

func (m *Mesh) writeLoop(ref dataflow.ChannelRef, to int, feeder chan []dataflow.Record, tx *metrics.Counter) {
	defer m.writers.Done()
	select {
	case <-m.started:
	case <-m.ctx.Done():
		return
	}
	m.mu.Lock()
	addr, ok := m.peers[to]
	m.mu.Unlock()
	if !ok {
		m.fail(fmt.Errorf("transport: no address for participant %d", to))
		m.discard(feeder)
		return
	}
	// Every peer's data listener is bound before its address travels in the
	// plan, so retries only cover transient refusals (SYN backlog overflow
	// under a thundering-herd epoch start); the budget stays short.
	conn, err := DialRetry(m.ctx, addr, DialPolicy{MaxWait: 2 * time.Second})
	if err != nil {
		m.fail(fmt.Errorf("transport: dial participant %d: %w", to, err))
		m.discard(feeder)
		return
	}
	m.track(conn)
	bw := bufio.NewWriterSize(&countWriter{c: tx, w: conn}, 64<<10)
	enc := gob.NewEncoder(bw)
	for {
		select {
		case b, open := <-feeder:
			if !open {
				// Drained: flush the tail and close, delivering EOF as the
				// peer's end-of-connection signal (the End record inside the
				// last frame is the dataflow-level end-of-stream).
				if err := bw.Flush(); err != nil && !m.benign(err) {
					m.fail(fmt.Errorf("transport: flush to participant %d: %w", to, err))
				}
				conn.Close()
				return
			}
			// The pooled encode buffer is safe to recycle the moment Encode
			// returns: gob copies the GobEncode bytes into its own writer.
			ebuf := encBufPool.Get().(*[]byte)
			err := enc.Encode(frame{Ref: ref, Recs: wireBatch{recs: b, enc: ebuf}})
			encBufPool.Put(ebuf)
			if err != nil {
				m.fail(fmt.Errorf("transport: send to participant %d: %w", to, err))
				m.discard(feeder)
				return
			}
			// Flush on idle: amortize syscalls while the feeder is hot, but
			// never hold a batch once there is nothing behind it (control
			// records — watermarks, barriers, ends — must not sit in a
			// buffer while the peer waits on them).
			if len(feeder) == 0 {
				if err := bw.Flush(); err != nil {
					if !m.benign(err) {
						m.fail(fmt.Errorf("transport: flush to participant %d: %w", to, err))
					}
					m.discard(feeder)
					return
				}
			}
		case <-m.ctx.Done():
			return
		}
	}
}

// discard keeps consuming a feeder after a transport failure so producers
// blocked on it unwind (they also select on the job context, which the
// driver cancels when Failed closes — this is belt and suspenders for the
// window between failure and cancellation).
func (m *Mesh) discard(feeder chan []dataflow.Record) {
	for {
		select {
		case _, open := <-feeder:
			if !open {
				return
			}
		case <-m.ctx.Done():
			return
		}
	}
}

func (m *Mesh) acceptLoop() {
	defer m.readers.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			if !m.benign(err) {
				m.fail(fmt.Errorf("transport: accept: %w", err))
			}
			return
		}
		m.track(conn)
		m.readers.Add(1)
		go m.readLoop(conn)
	}
}

func (m *Mesh) readLoop(conn net.Conn) {
	defer m.readers.Done()
	dec := gob.NewDecoder(bufio.NewReaderSize(conn, 64<<10))
	for {
		// A fresh frame every iteration: gob decodes into an existing
		// slice's backing array when capacity allows, which would scribble
		// over a batch already handed to the consumer.
		var f frame
		if err := dec.Decode(&f); err != nil {
			if !m.benign(err) {
				m.fail(fmt.Errorf("transport: recv: %w", err))
			}
			return
		}
		ch := m.inboundFor(f.Ref)
		if ch == nil {
			m.fail(fmt.Errorf("transport: frame for unregistered channel %+v", f.Ref))
			return
		}
		select {
		case ch <- f.Recs.recs:
		case <-m.ctx.Done():
			return
		}
	}
}

// DrainOutbound closes every feeder and waits for the writers to flush and
// close their connections. Call exactly once, after all local producer
// subtasks have finished (the success path); the remote Ends are then on
// the wire before the worker reports done.
func (m *Mesh) DrainOutbound() {
	m.mu.Lock()
	feeders := m.feeders
	m.feeders = nil
	m.mu.Unlock()
	for _, f := range feeders {
		close(f)
	}
	m.writers.Wait()
}

// Close tears the mesh down: cancels every loop, closes the listener and
// all connections, and waits for the goroutines to exit. Safe after
// DrainOutbound and as the abort path without it.
func (m *Mesh) Close() {
	m.cancel()
	m.ln.Close()
	m.mu.Lock()
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	m.writers.Wait()
	m.readers.Wait()
}

// countWriter counts bytes flowing to the connection (post-buffer, so the
// count reflects actual wire traffic). c may be nil.
type countWriter struct {
	c *metrics.Counter
	w io.Writer
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if cw.c != nil && n > 0 {
		cw.c.Add(int64(n))
	}
	return n, err
}
