package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/window"
)

// strategies enumerates the window aggregation engines compared by E1–E5.
func strategies() []struct {
	name string
	make func(engine.Emit) engine.Engine
} {
	return []struct {
		name string
		make func(engine.Emit) engine.Engine
	}{
		{"cutty", func(e engine.Emit) engine.Engine { return cutty.New(e) }},
		{"pairs", baselines.NewPairs},
		{"panes", baselines.NewPanes},
		{"b-int", func(e engine.Emit) engine.Engine { return baselines.NewBInt(e) }},
		{"buckets", func(e engine.Emit) engine.Engine { return baselines.NewBuckets(e) }},
		{"eager", func(e engine.Emit) engine.Engine { return baselines.NewEager(e) }},
	}
}

// identityTs is the sparse timeline: one event per millisecond tick.
func identityTs(i int64) int64 { return i }

// denseTs is the dense timeline: five events per millisecond tick, so
// aggregation work dominates window-function dispatch (the regime of the
// published multi-query experiments).
func denseTs(i int64) int64 { return i / 5 }

// DriveResult summarizes one engine run.
type DriveResult struct {
	Elapsed     time.Duration
	Events      int64
	Results     int64
	MaxPartials int
}

// Throughput returns events per second.
func (d DriveResult) Throughput() float64 {
	if d.Elapsed <= 0 {
		return 0
	}
	return float64(d.Events) / d.Elapsed.Seconds()
}

// Drive feeds n events through the engine under the canonical protocol,
// sampling stored partials. tsOf maps the event index to its timestamp
// (identity = 1000 ev/s on the millisecond timeline; i/5 = 5000 ev/s).
func Drive(e engine.Engine, n int64, tsOf func(i int64) int64, value func(i int64) float64) DriveResult {
	var results int64
	start := time.Now()
	maxPartials := 0
	sampleEvery := n / 64
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	for i := int64(0); i < n; i++ {
		ts := tsOf(i)
		e.OnWatermark(ts)
		e.OnElement(ts, value(i))
		if i%sampleEvery == 0 {
			if p := e.StoredPartials(); p > maxPartials {
				maxPartials = p
			}
		}
	}
	e.OnWatermark(math.MaxInt64)
	return DriveResult{Elapsed: time.Since(start), Events: n, MaxPartials: maxPartials, Results: results}
}

// driveCounted drives and counts emitted results.
func driveCounted(mk func(engine.Emit) engine.Engine, qs []engine.Query, n int64, tsOf func(i int64) int64, value func(i int64) float64) (DriveResult, error) {
	var results int64
	e := mk(func(engine.Result) { results++ })
	for _, q := range qs {
		if _, err := e.AddQuery(q); err != nil {
			return DriveResult{}, err
		}
	}
	r := Drive(e, n, tsOf, value)
	r.Results = results
	return r, nil
}

// E1SinglePeriodic measures single-query sliding-window throughput as the
// slide shrinks (range fixed at 10 s on a 1000 ev/s timeline).
func E1SinglePeriodic(quick bool) *Table {
	n := int64(100_000)
	if quick {
		n = 20_000
	}
	t := &Table{
		ID:     "E1",
		Title:  "single periodic query: throughput vs slide (range 10s, 1000 ev/s)",
		Claim:  "Cutty \"outperforms previous solutions\" on periodic windows",
		Header: []string{"slide", "cutty", "pairs", "panes", "b-int", "buckets", "eager"},
	}
	for _, slide := range []int64{10, 100, 1000, 10000} {
		row := []string{fmt.Sprintf("%dms", slide)}
		for _, s := range strategies() {
			qs := []engine.Query{{Window: window.Sliding(10_000, slide), Fn: agg.SumF64()}}
			nEff := n
			if (s.name == "eager" || s.name == "buckets") && slide <= 10 {
				nEff = n / 4 // tuple-buffer baselines are quadratic here
			}
			res, err := driveCounted(s.make, qs, nEff, identityTs, func(i int64) float64 { return float64(i % 97) })
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmtRate(res.Throughput()))
		}
		t.Add(row...)
	}
	t.Note("eager/buckets driven with n/4 events at slide<=10ms (quadratic cost); rates normalized per event")
	return t
}

// e2Queries builds N deterministic random periodic queries.
func e2Queries(nQueries int, seed int64) []engine.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]engine.Query, nQueries)
	for i := range qs {
		slide := int64(rng.Intn(10)+1) * 100 // 100ms..1s
		size := slide * int64(rng.Intn(8)+2) // 2..9 slides
		qs[i] = engine.Query{Window: window.Sliding(size, slide), Fn: agg.SumF64()}
	}
	return qs
}

// E2MultiQuery measures throughput as concurrent periodic queries grow.
func E2MultiQuery(quick bool) *Table {
	n := int64(50_000)
	counts := []int{1, 2, 5, 10, 20, 40}
	if quick {
		n = 10_000
		counts = []int{1, 5, 10}
	}
	t := &Table{
		ID:     "E2",
		Title:  "multi-query sharing: throughput vs concurrent queries (5000 ev/s timeline)",
		Claim:  "\"suitable for multi query aggregation sharing\" / \"order of magnitudes\"",
		Header: []string{"queries", "cutty", "pairs", "panes", "b-int", "buckets", "eager"},
	}
	var cuttyAt, bucketsAt float64
	maxN := counts[len(counts)-1]
	for _, nq := range counts {
		row := []string{fmt.Sprintf("%d", nq)}
		for _, s := range strategies() {
			res, err := driveCounted(s.make, e2Queries(nq, 42), n, denseTs, func(i int64) float64 { return float64(i % 97) })
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			th := res.Throughput()
			row = append(row, fmtRate(th))
			if nq == maxN {
				switch s.name {
				case "cutty":
					cuttyAt = th
				case "buckets":
					bucketsAt = th
				}
			}
		}
		t.Add(row...)
	}
	if bucketsAt > 0 {
		t.Note("speedup cutty/buckets at %d queries: %.1fx", maxN, cuttyAt/bucketsAt)
	}
	return t
}

// E3Redundancy counts aggregation work (Combine/Invert + Lift invocations)
// per record — the paper's "window aggregations are one of the most
// redundancy-prone operations".
func E3Redundancy(quick bool) *Table {
	n := int64(20_000)
	counts := []int{1, 5, 20}
	if quick {
		n = 5_000
	}
	t := &Table{
		ID:     "E3",
		Title:  "aggregation redundancy: combine invocations per input record",
		Claim:  "shared slicing eliminates redundant per-window aggregation work",
		Header: []string{"queries", "cutty", "pairs", "panes", "b-int", "buckets", "eager"},
	}
	for _, nq := range counts {
		row := []string{fmt.Sprintf("%d", nq)}
		for _, s := range strategies() {
			var combines, lifts atomic.Int64
			qs := e2Queries(nq, 42)
			counted := make([]engine.Query, len(qs))
			for i, q := range qs {
				counted[i] = engine.Query{Window: q.Window, Fn: agg.Counting(q.Fn, &combines, &lifts)}
			}
			if _, err := driveCounted(s.make, counted, n, denseTs, func(i int64) float64 { return 1 }); err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", float64(combines.Load())/float64(n)))
		}
		t.Add(row...)
	}
	t.Note("lower is better; cutty pays ~1 combine/record + O(log slices) per window result")
	return t
}

// sessionTimeline produces a bursty timeline: bursts of 20 events 10ms
// apart, separated by 1.5s gaps — sessions under a 1s gap window.
func sessionTimeline(i int64) int64 {
	burst := i / 20
	within := i % 20
	return burst*(20*10+1500) + within*10
}

// E4Sessions measures non-periodic (session and punctuation) windows, the
// workloads Pairs and Panes cannot express.
func E4Sessions(quick bool) *Table {
	n := int64(50_000)
	counts := []int{1, 5, 20}
	if quick {
		n = 10_000
	}
	t := &Table{
		ID:     "E4",
		Title:  "user-defined windows (sessions, gap 1s): throughput vs queries",
		Claim:  "\"non-periodic windows, such as session windows\"",
		Header: []string{"queries", "cutty", "pairs", "panes", "b-int", "buckets", "eager"},
	}
	for _, nq := range counts {
		row := []string{fmt.Sprintf("%d", nq)}
		for _, s := range strategies() {
			rng := rand.New(rand.NewSource(7))
			qs := make([]engine.Query, nq)
			for i := range qs {
				qs[i] = engine.Query{Window: window.Session(int64(rng.Intn(10)+5) * 100), Fn: agg.SumF64()}
			}
			e := s.make(func(engine.Result) {})
			rejected := false
			for _, q := range qs {
				if _, err := e.AddQuery(q); err != nil {
					rejected = true
					break
				}
			}
			if rejected {
				row = append(row, "n/a")
				continue
			}
			start := time.Now()
			for i := int64(0); i < n; i++ {
				ts := sessionTimeline(i)
				e.OnWatermark(ts)
				e.OnElement(ts, 1)
			}
			e.OnWatermark(math.MaxInt64)
			row = append(row, fmtRate(float64(n)/time.Since(start).Seconds()))
		}
		t.Add(row...)
	}
	t.Note("pairs/panes report n/a: periodic-only techniques cannot express sessions")
	return t
}

// E5Memory reports the peak number of stored partial aggregates.
func E5Memory(quick bool) *Table {
	n := int64(50_000)
	if quick {
		n = 10_000
	}
	t := &Table{
		ID:     "E5",
		Title:  "state: peak stored partial aggregates (sliding 10s/100ms timeline)",
		Claim:  "slices store one partial per begin, not per element or window",
		Header: []string{"queries", "cutty", "pairs", "panes", "b-int", "buckets", "eager"},
	}
	for _, nq := range []int{1, 10, 40} {
		row := []string{fmt.Sprintf("%d", nq)}
		for _, s := range strategies() {
			res, err := driveCounted(s.make, e2Queries(nq, 42), n, denseTs, func(i int64) float64 { return 1 })
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmtCount(float64(res.MaxPartials)))
		}
		t.Add(row...)
	}
	t.Note("eager counts buffered raw tuples; b-int counts per-element tree leaves")
	return t
}
