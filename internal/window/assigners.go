package window

import "math"

// Tumbling returns a spec for non-overlapping time windows of the given
// size: [k*size, (k+1)*size).
func Tumbling(size int64) Spec {
	if size <= 0 {
		panic("window: Tumbling size must be positive")
	}
	return Spec{
		Name:    "tumbling",
		Size:    size,
		Slide:   size,
		Factory: func() Assigner { return &slidingAssigner{size: size, slide: size} },
	}
}

// Sliding returns a spec for overlapping time windows of the given size,
// advancing every slide ticks: [k*slide, k*slide+size).
func Sliding(size, slide int64) Spec {
	if size <= 0 || slide <= 0 {
		panic("window: Sliding size and slide must be positive")
	}
	if slide > size {
		panic("window: Sliding slide must not exceed size (use Tumbling with gaps instead)")
	}
	return Spec{
		Name:    "sliding",
		Size:    size,
		Slide:   slide,
		Factory: func() Assigner { return &slidingAssigner{size: size, slide: slide} },
	}
}

// slidingAssigner implements periodic time windows (tumbling is the special
// case slide == size). Windows are opened lazily when the first element that
// belongs to them arrives, and closed when the watermark passes their end —
// so empty windows produce no results, matching Flink semantics.
type slidingAssigner struct {
	size, slide int64
	// open window starts, ascending; all have start+size > last watermark.
	open []int64
	// nextStart is the smallest window start not yet opened.
	nextStart   int64
	initialized bool
}

func (a *slidingAssigner) Periodic() (int64, int64) { return a.size, a.slide }

func (a *slidingAssigner) OnElement(ts, pos int64, v float64, ctx Context) {
	// Windows containing ts start in (ts-size, ts]; the earliest is
	// floor((ts-size)/slide)*slide + slide (clamped to >= 0 for the stream
	// origin at time 0).
	first := firstStartAfter(ts-a.size, a.slide)
	if first < 0 {
		first = 0
	}
	if !a.initialized {
		a.nextStart = first
		a.initialized = true
	} else if first > a.nextStart {
		// Stream skipped ahead; windows strictly before `first` that were
		// never opened would be empty — skip them.
		if a.nextStart < first {
			a.nextStart = first
		}
	}
	for a.nextStart <= ts {
		ctx.Open(a.nextStart)
		a.open = append(a.open, a.nextStart)
		a.nextStart += a.slide
	}
}

func (a *slidingAssigner) OnTime(wm int64, ctx Context) {
	i := 0
	for ; i < len(a.open); i++ {
		start := a.open[i]
		if start+a.size > wm {
			break
		}
		ctx.CloseAt(start, start+a.size, start+a.size)
	}
	a.open = a.open[i:]
}

// firstStartAfter returns the smallest non-negative multiple of slide that
// is strictly greater than t.
func firstStartAfter(t, slide int64) int64 {
	if t < 0 {
		return 0
	}
	return (t/slide + 1) * slide
}

// Session returns a spec for session windows: a window spans consecutive
// elements whose gaps are < gap; a session closes when event time passes
// lastTs+gap. Sessions are the paper's canonical non-periodic window.
func Session(gap int64) Spec {
	if gap <= 0 {
		panic("window: Session gap must be positive")
	}
	return Spec{
		Name:    "session",
		Factory: func() Assigner { return &sessionAssigner{gap: gap} },
	}
}

type sessionAssigner struct {
	gap    int64
	active bool
	start  int64
	lastTs int64
}

func (a *sessionAssigner) OnElement(ts, pos int64, v float64, ctx Context) {
	if a.active && ts-a.lastTs >= a.gap {
		ctx.CloseHere(a.start, a.lastTs+a.gap)
		a.active = false
	}
	if !a.active {
		ctx.Open(ts)
		a.start = ts
		a.active = true
	}
	a.lastTs = ts
}

func (a *sessionAssigner) OnTime(wm int64, ctx Context) {
	if a.active && wm >= a.lastTs+a.gap {
		ctx.CloseHere(a.start, a.lastTs+a.gap)
		a.active = false
	}
}

// CountTumbling returns a spec for count windows of n elements each.
func CountTumbling(n int64) Spec {
	if n <= 0 {
		panic("window: CountTumbling n must be positive")
	}
	return Spec{
		Name:    "count",
		Factory: func() Assigner { return &countAssigner{size: n, every: n} },
	}
}

// CountSliding returns a spec for count windows of n elements, opening a new
// window every `every` elements.
func CountSliding(n, every int64) Spec {
	if n <= 0 || every <= 0 || every > n {
		panic("window: CountSliding requires 0 < every <= n")
	}
	return Spec{
		Name:    "count-sliding",
		Factory: func() Assigner { return &countAssigner{size: n, every: every} },
	}
}

type countAssigner struct {
	size, every int64
	open        []int64 // start positions
}

func (a *countAssigner) OnElement(ts, pos int64, v float64, ctx Context) {
	// Close windows whose size is reached: window [s, s+size) closes when
	// element s+size arrives.
	i := 0
	for ; i < len(a.open); i++ {
		if a.open[i]+a.size > pos {
			break
		}
		ctx.CloseHere(a.open[i], a.open[i]+a.size)
	}
	a.open = a.open[i:]
	if pos%a.every == 0 {
		ctx.Open(pos)
		a.open = append(a.open, pos)
	}
}

func (a *countAssigner) OnTime(wm int64, ctx Context) {
	// Count windows are insensitive to time except at end of stream, which
	// engines signal with a +inf watermark: flush incomplete windows.
	if wm == math.MaxInt64 {
		for _, s := range a.open {
			ctx.CloseHere(s, s+a.size)
		}
		a.open = nil
	}
}

// Punctuation returns a spec for data-driven windows delimited by marker
// elements: a window begins at a marker and spans up to (excluding) the next
// marker. Elements before the first marker belong to no window.
func Punctuation(isMarker func(v float64) bool) Spec {
	return Spec{
		Name:    "punctuation",
		Factory: func() Assigner { return &punctuationAssigner{isMarker: isMarker} },
	}
}

type punctuationAssigner struct {
	isMarker func(v float64) bool
	active   bool
	start    int64
}

func (a *punctuationAssigner) OnElement(ts, pos int64, v float64, ctx Context) {
	if !a.isMarker(v) {
		return
	}
	if a.active {
		ctx.CloseHere(a.start, ts)
	}
	ctx.Open(ts)
	a.start = ts
	a.active = true
}

func (a *punctuationAssigner) OnTime(wm int64, ctx Context) {
	if a.active && wm == math.MaxInt64 {
		ctx.CloseHere(a.start, wm)
		a.active = false
	}
}

// Delta returns a spec for delta (threshold) windows, one of Cutty's
// user-defined examples: a new window begins whenever the value deviates
// from the first value of the current window by at least threshold; the
// previous window closes at that point.
func Delta(threshold float64) Spec {
	if threshold <= 0 {
		panic("window: Delta threshold must be positive")
	}
	return Spec{
		Name:    "delta",
		Factory: func() Assigner { return &deltaAssigner{threshold: threshold} },
	}
}

type deltaAssigner struct {
	threshold float64
	active    bool
	start     int64
	ref       float64
}

func (a *deltaAssigner) OnElement(ts, pos int64, v float64, ctx Context) {
	if a.active && math.Abs(v-a.ref) >= a.threshold {
		ctx.CloseHere(a.start, ts)
		a.active = false
	}
	if !a.active {
		ctx.Open(ts)
		a.start = ts
		a.ref = v
		a.active = true
	}
}

func (a *deltaAssigner) OnTime(wm int64, ctx Context) {
	if a.active && wm == math.MaxInt64 {
		ctx.CloseHere(a.start, wm)
		a.active = false
	}
}

// SessionWithMaxDuration returns a spec for sessions that additionally close
// after maxDur ticks regardless of activity — a composite user-defined
// window beyond what periodic sharing techniques can express.
func SessionWithMaxDuration(gap, maxDur int64) Spec {
	if gap <= 0 || maxDur <= 0 {
		panic("window: SessionWithMaxDuration gap and maxDur must be positive")
	}
	return Spec{
		Name:    "session-maxdur",
		Factory: func() Assigner { return &sessionMaxAssigner{gap: gap, maxDur: maxDur} },
	}
}

type sessionMaxAssigner struct {
	gap, maxDur int64
	active      bool
	start       int64
	lastTs      int64
}

func (a *sessionMaxAssigner) OnElement(ts, pos int64, v float64, ctx Context) {
	if a.active {
		switch {
		case ts-a.lastTs >= a.gap:
			ctx.CloseHere(a.start, a.lastTs+a.gap)
			a.active = false
		case ts-a.start >= a.maxDur:
			ctx.CloseHere(a.start, a.start+a.maxDur)
			a.active = false
		}
	}
	if !a.active {
		ctx.Open(ts)
		a.start = ts
		a.active = true
	}
	a.lastTs = ts
}

func (a *sessionMaxAssigner) OnTime(wm int64, ctx Context) {
	if !a.active {
		return
	}
	end := a.lastTs + a.gap
	if a.start+a.maxDur < end {
		end = a.start + a.maxDur
	}
	if wm >= end {
		ctx.CloseHere(a.start, end)
		a.active = false
	}
}
