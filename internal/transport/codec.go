package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataflow"
)

// wireBatch is []Record with a hand-rolled wire encoding. Letting gob encode
// records directly would write each Value as a full interface value — the
// concrete type's name plus a nested single-value encoding, per record —
// which dominates the data plane's CPU cost at scale. Instead the batch
// packs into one byte slice: varint header fields and a one-byte payload tag
// with fixed fast paths for every payload type the engine itself produces.
// Custom payload types still work through a per-value gob fallback (paying
// gob's interface cost, so hot pipelines should stick to engine types or
// flat numerics). The frame struct keeps riding gob for its own fields; gob
// sees this type as a single opaque byte slice via GobEncode/GobDecode.
//
// enc, when non-nil, is a reusable encode buffer: GobEncode builds the wire
// bytes in it (growing it as needed) instead of allocating per batch. gob
// copies the returned bytes into its own writer before Encode returns, so
// the caller may recycle the buffer as soon as Encode does — writeLoop pairs
// each Encode with a Get/Put on encBufPool.
type wireBatch struct {
	recs []dataflow.Record
	enc  *[]byte
}

var (
	_ gob.GobEncoder = wireBatch{}
	_ gob.GobDecoder = (*wireBatch)(nil)
)

// encBufPool recycles wire-encode buffers across batches and connections.
// Buffers retain their grown capacity, so the steady state encodes every
// batch with zero buffer allocations.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// Payload tags. The tag space is part of the wire protocol: both ends are
// the same binary in SPMD execution, but keep additions append-only anyway.
const (
	pNil byte = iota
	pFloat64
	pInt64
	pInt
	pUint64
	pString
	pBool
	pWindowResult
	pJoinedPair
	pGob
)

// GobEncode implements gob.GobEncoder.
func (b wireBatch) GobEncode() ([]byte, error) {
	var buf []byte
	if b.enc != nil {
		buf = (*b.enc)[:0]
	} else {
		buf = make([]byte, 0, 16*len(b.recs)+8)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.recs)))
	for i := range b.recs {
		r := &b.recs[i]
		buf = append(buf, byte(r.Kind))
		buf = binary.AppendVarint(buf, r.Ts)
		buf = binary.AppendUvarint(buf, r.Key)
		switch v := r.Value.(type) {
		case nil:
			buf = append(buf, pNil)
		case float64:
			buf = append(buf, pFloat64)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		case int64:
			buf = append(buf, pInt64)
			buf = binary.AppendVarint(buf, v)
		case int:
			buf = append(buf, pInt)
			buf = binary.AppendVarint(buf, int64(v))
		case uint64:
			buf = append(buf, pUint64)
			buf = binary.AppendUvarint(buf, v)
		case string:
			buf = append(buf, pString)
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
		case bool:
			buf = append(buf, pBool)
			if v {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case dataflow.WindowResult:
			buf = append(buf, pWindowResult)
			buf = binary.AppendVarint(buf, int64(v.QueryID))
			buf = binary.AppendVarint(buf, v.Start)
			buf = binary.AppendVarint(buf, v.End)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Value))
			buf = binary.AppendVarint(buf, v.Count)
		case dataflow.JoinedPair:
			buf = append(buf, pJoinedPair)
			buf = binary.AppendVarint(buf, v.WindowStart)
			buf = binary.AppendVarint(buf, v.WindowEnd)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Left))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Right))
		default:
			var gb bytes.Buffer
			if err := gob.NewEncoder(&gb).Encode(&r.Value); err != nil {
				return nil, fmt.Errorf("wire batch: encode %T payload: %w", r.Value, err)
			}
			buf = append(buf, pGob)
			buf = binary.AppendUvarint(buf, uint64(gb.Len()))
			buf = append(buf, gb.Bytes()...)
		}
	}
	if b.enc != nil {
		*b.enc = buf // keep any growth for the next batch
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (b *wireBatch) GobDecode(data []byte) error {
	n, off, err := readUvarint(data, 0)
	if err != nil {
		return err
	}
	out := make([]dataflow.Record, 0, n)
	for i := uint64(0); i < n; i++ {
		var r dataflow.Record
		if off >= len(data) {
			return fmt.Errorf("wire batch: truncated at record %d", i)
		}
		r.Kind = dataflow.Kind(data[off])
		off++
		var ts int64
		if ts, off, err = readVarint(data, off); err != nil {
			return err
		}
		r.Ts = ts
		var key uint64
		if key, off, err = readUvarint(data, off); err != nil {
			return err
		}
		r.Key = key
		if off >= len(data) {
			return fmt.Errorf("wire batch: truncated payload tag at record %d", i)
		}
		tag := data[off]
		off++
		switch tag {
		case pNil:
		case pFloat64:
			var bits uint64
			if bits, off, err = readFixed64(data, off); err != nil {
				return err
			}
			r.Value = math.Float64frombits(bits)
		case pInt64:
			var v int64
			if v, off, err = readVarint(data, off); err != nil {
				return err
			}
			r.Value = v
		case pInt:
			var v int64
			if v, off, err = readVarint(data, off); err != nil {
				return err
			}
			r.Value = int(v)
		case pUint64:
			var v uint64
			if v, off, err = readUvarint(data, off); err != nil {
				return err
			}
			r.Value = v
		case pString:
			var ln uint64
			if ln, off, err = readUvarint(data, off); err != nil {
				return err
			}
			if uint64(len(data)-off) < ln {
				return fmt.Errorf("wire batch: truncated string at record %d", i)
			}
			r.Value = string(data[off : off+int(ln)])
			off += int(ln)
		case pBool:
			if off >= len(data) {
				return fmt.Errorf("wire batch: truncated bool at record %d", i)
			}
			r.Value = data[off] != 0
			off++
		case pWindowResult:
			var w dataflow.WindowResult
			var v int64
			if v, off, err = readVarint(data, off); err != nil {
				return err
			}
			w.QueryID = int(v)
			if w.Start, off, err = readVarint(data, off); err != nil {
				return err
			}
			if w.End, off, err = readVarint(data, off); err != nil {
				return err
			}
			var bits uint64
			if bits, off, err = readFixed64(data, off); err != nil {
				return err
			}
			w.Value = math.Float64frombits(bits)
			if w.Count, off, err = readVarint(data, off); err != nil {
				return err
			}
			r.Value = w
		case pJoinedPair:
			var j dataflow.JoinedPair
			if j.WindowStart, off, err = readVarint(data, off); err != nil {
				return err
			}
			if j.WindowEnd, off, err = readVarint(data, off); err != nil {
				return err
			}
			var bits uint64
			if bits, off, err = readFixed64(data, off); err != nil {
				return err
			}
			j.Left = math.Float64frombits(bits)
			if bits, off, err = readFixed64(data, off); err != nil {
				return err
			}
			j.Right = math.Float64frombits(bits)
			r.Value = j
		case pGob:
			var ln uint64
			if ln, off, err = readUvarint(data, off); err != nil {
				return err
			}
			if uint64(len(data)-off) < ln {
				return fmt.Errorf("wire batch: truncated gob payload at record %d", i)
			}
			var v any
			if err := gob.NewDecoder(bytes.NewReader(data[off : off+int(ln)])).Decode(&v); err != nil {
				return fmt.Errorf("wire batch: decode gob payload: %w", err)
			}
			r.Value = v
			off += int(ln)
		default:
			return fmt.Errorf("wire batch: unknown payload tag %d at record %d", tag, i)
		}
		out = append(out, r)
	}
	if off != len(data) {
		return fmt.Errorf("wire batch: %d trailing bytes", len(data)-off)
	}
	b.recs = out
	return nil
}

func readUvarint(data []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, off, fmt.Errorf("wire batch: bad uvarint at offset %d", off)
	}
	return v, off + n, nil
}

func readVarint(data []byte, off int) (int64, int, error) {
	v, n := binary.Varint(data[off:])
	if n <= 0 {
		return 0, off, fmt.Errorf("wire batch: bad varint at offset %d", off)
	}
	return v, off + n, nil
}

func readFixed64(data []byte, off int) (uint64, int, error) {
	if len(data)-off < 8 {
		return 0, off, fmt.Errorf("wire batch: truncated fixed64 at offset %d", off)
	}
	return binary.LittleEndian.Uint64(data[off : off+8]), off + 8, nil
}
