package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/dataflow"
)

// CombinerOp is the optimizer's pre-aggregation operator: it sits on the
// producer side of a hash shuffle and folds same-key float64 records into
// partial aggregates, flushing on every watermark (preserving event-time
// semantics downstream) and whenever the table reaches FlushEvery keys
// (bounding memory).
//
// In Adaptive mode the operator implements the paper's "adopted to the data
// distribution" promise: it first observes sampleSize records, estimates the
// duplicate-key ratio, and switches combining off when keys are nearly
// unique (combining would only add overhead) — Zipf-skewed streams keep it
// on, uniform high-cardinality streams turn it off.
type CombinerOp struct {
	F          func(acc, v float64) float64
	FlushEvery int
	Adaptive   bool

	table   map[uint64]combEntry
	order   []uint64 // flush in first-seen order for determinism
	decided bool
	enabled bool
	sampled int
	unique  map[uint64]struct{}
}

type combEntry struct {
	acc float64
	ts  int64 // max event time folded in
}

const combinerSampleSize = 512

var _ dataflow.Operator = (*CombinerOp)(nil)

type combinerState struct {
	Decided bool
	Enabled bool
	Sampled int
	Keys    []uint64
	Accs    []float64
	Ts      []int64
}

// Open implements dataflow.Operator.
func (c *CombinerOp) Open(ctx *dataflow.OpContext) error {
	c.table = make(map[uint64]combEntry)
	c.unique = make(map[uint64]struct{})
	if c.FlushEvery <= 0 {
		c.FlushEvery = 1024
	}
	if !c.Adaptive {
		c.decided, c.enabled = true, true
	}
	if ctx.Restore == nil {
		return nil
	}
	var s combinerState
	if err := gob.NewDecoder(bytes.NewReader(ctx.Restore)).Decode(&s); err != nil {
		return fmt.Errorf("combiner restore: %w", err)
	}
	c.decided, c.enabled, c.sampled = s.Decided, s.Enabled, s.Sampled
	for i, k := range s.Keys {
		c.table[k] = combEntry{acc: s.Accs[i], ts: s.Ts[i]}
		c.order = append(c.order, k)
	}
	return nil
}

// OnRecord implements dataflow.Operator.
func (c *CombinerOp) OnRecord(r dataflow.Record, out dataflow.Collector) {
	v, ok := r.Value.(float64)
	if !ok {
		out.Collect(r)
		return
	}
	if !c.decided {
		c.sampled++
		c.unique[r.Key] = struct{}{}
		if c.sampled >= combinerSampleSize {
			// Duplicate ratio above ~2x means combining pays for itself.
			c.enabled = len(c.unique)*2 <= c.sampled
			c.decided = true
			c.unique = nil
		}
		// While sampling, pass through unchanged (no combining yet).
		out.Collect(r)
		return
	}
	if !c.enabled {
		out.Collect(r)
		return
	}
	e, exists := c.table[r.Key]
	if exists {
		e.acc = c.F(e.acc, v)
		if r.Ts > e.ts {
			e.ts = r.Ts
		}
	} else {
		// First value is taken as-is (semigroup fold), so the combiner is
		// correct for any associative f, identity or not.
		e = combEntry{acc: v, ts: r.Ts}
		c.order = append(c.order, r.Key)
	}
	c.table[r.Key] = e
	if len(c.table) >= c.FlushEvery {
		c.flush(out)
	}
}

// OnBatch implements dataflow.BatchedOperator: the per-record fold applied
// over the whole run. Pass-throughs and flushes emit through out (delivered
// in fold order), so the semantics are exactly the per-record path's; the
// point is keeping a chain that contains a combiner on the vectorized path.
func (c *CombinerOp) OnBatch(b []dataflow.Record, out dataflow.Collector) []dataflow.Record {
	for i := range b {
		c.OnRecord(b[i], out)
	}
	return nil
}

// OnWatermark implements dataflow.Operator: flush so that downstream
// event-time processing (window release) sees all data at or below the
// watermark.
func (c *CombinerOp) OnWatermark(wm int64, out dataflow.Collector) {
	c.flush(out)
}

func (c *CombinerOp) flush(out dataflow.Collector) {
	for _, k := range c.order {
		e := c.table[k]
		out.Collect(dataflow.Data(e.ts, k, e.acc))
	}
	c.table = make(map[uint64]combEntry)
	c.order = c.order[:0]
}

// Snapshot implements dataflow.Operator.
func (c *CombinerOp) Snapshot() ([]byte, error) {
	s := combinerState{Decided: c.decided, Enabled: c.enabled, Sampled: c.sampled}
	keys := make([]uint64, 0, len(c.table))
	for k := range c.table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		s.Keys = append(s.Keys, k)
		s.Accs = append(s.Accs, c.table[k].acc)
		s.Ts = append(s.Ts, c.table[k].ts)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("combiner snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Finish implements dataflow.Operator.
func (c *CombinerOp) Finish(out dataflow.Collector) {
	c.flush(out)
}

// Enabled reports whether combining is currently active (diagnostics).
func (c *CombinerOp) Enabled() bool { return c.decided && c.enabled }
