package workloads

import (
	"math"
	"testing"
)

func TestUniformDeterministic(t *testing.T) {
	u := Uniform{Seed: 1, Keys: 8, PerSec: 1000}
	a, b := u.At(42), u.At(42)
	if a != b {
		t.Fatalf("generator not deterministic: %+v vs %+v", a, b)
	}
	if u.At(42) == u.At(43) {
		t.Fatalf("consecutive events identical")
	}
}

func TestUniformTimestampsMatchRate(t *testing.T) {
	u := Uniform{Seed: 1, Keys: 8, PerSec: 500}
	if ts := u.At(500).Ts; ts != 1000 {
		t.Fatalf("event 500 at %d ms, want 1000", ts)
	}
	if u.At(0).Ts != 0 {
		t.Fatalf("first event not at 0")
	}
}

func TestUniformDefaults(t *testing.T) {
	u := Uniform{Seed: 9}
	e := u.At(1)
	if e.Key >= 16 {
		t.Fatalf("default key range violated: %d", e.Key)
	}
}

func TestUniformKeyCoverage(t *testing.T) {
	u := Uniform{Seed: 3, Keys: 4, PerSec: 1000}
	seen := map[uint64]bool{}
	for i := int64(0); i < 200; i++ {
		seen[u.At(i).Key] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 keys seen", len(seen))
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	const n = 20000
	counts := func(s float64) map[uint64]int64 {
		z := NewZipf(7, 1000, 10000, s)
		out := map[uint64]int64{}
		for i := int64(0); i < n; i++ {
			out[z.At(i).Key]++
		}
		return out
	}
	top := func(c map[uint64]int64) float64 {
		var max int64
		for _, v := range c {
			if v > max {
				max = v
			}
		}
		return float64(max) / n
	}
	skewed := top(counts(1.5))
	uniform := top(counts(1.0))
	if skewed < 3*uniform {
		t.Fatalf("zipf 1.5 top-key share %.3f not >> uniform %.3f", skewed, uniform)
	}
}

func TestDisorderedBounded(t *testing.T) {
	base := Uniform{Seed: 2, Keys: 4, PerSec: 1000}
	d := Disordered{Inner: base.At, Bound: 50, Seed: 11}
	for i := int64(0); i < 1000; i++ {
		orig := base.At(i)
		pert := d.At(i)
		if pert.Ts > orig.Ts || orig.Ts-pert.Ts > 50 {
			t.Fatalf("event %d: disorder out of bound: %d -> %d", i, orig.Ts, pert.Ts)
		}
		if pert.Ts < 0 {
			t.Fatalf("negative timestamp")
		}
	}
}

func TestSessionsStructure(t *testing.T) {
	s := Sessions{Seed: 5, Users: 10, PerSec: 1000, MeanSession: 5, GapMs: 60000, SessionGapMs: 1000}
	// Per-user timestamps must be non-decreasing and exhibit gaps >= GapMs
	// between sessions.
	perUser := map[uint64][]int64{}
	for i := int64(0); i < 2000; i++ {
		e := s.At(i)
		perUser[e.Key] = append(perUser[e.Key], e.Ts)
	}
	if len(perUser) != 10 {
		t.Fatalf("got %d users", len(perUser))
	}
	for user, ts := range perUser {
		gaps := 0
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Fatalf("user %d timestamps regress at %d: %d < %d", user, i, ts[i], ts[i-1])
			}
			if ts[i]-ts[i-1] >= 30000 {
				gaps++
			}
		}
		if gaps == 0 {
			t.Fatalf("user %d shows no session gaps", user)
		}
	}
}

func TestSessionsChurnSignal(t *testing.T) {
	s := Sessions{Seed: 5, Users: 4, PerSec: 1000, MeanSession: 5, GapMs: 10000, SessionGapMs: 500}
	// Even users decline in engagement over sessions; odd users stay flat.
	lateEven := s.At(4 * 100).Value // user 0, step 100 -> session 20
	earlyEven := s.At(0).Value      // user 0, step 0
	if lateEven >= earlyEven {
		t.Fatalf("churn cohort should decline: early %v late %v", earlyEven, lateEven)
	}
	lateOdd := s.At(4*100 + 1).Value
	if lateOdd != 10 {
		t.Fatalf("retained cohort should stay at 10, got %v", lateOdd)
	}
}

func TestAdClicksCTRPlausible(t *testing.T) {
	a := NewAdClicks(13, 100, 10000)
	var clicks, imps int64
	for i := int64(0); i < 50000; i++ {
		e := a.At(i)
		imps++
		clicks += int64(e.Attr)
		if e.Value != 1 {
			t.Fatalf("impression value must be 1")
		}
		if e.Key >= 100 {
			t.Fatalf("campaign out of range: %d", e.Key)
		}
	}
	ctr := float64(clicks) / float64(imps)
	if ctr < 0.005 || ctr > 0.2 {
		t.Fatalf("aggregate CTR %.4f implausible", ctr)
	}
}

func TestRatingsDomain(t *testing.T) {
	r := NewRatings(17, 50, 200, 1000)
	for i := int64(0); i < 5000; i++ {
		e := r.At(i)
		if e.Value < 1 || e.Value > 5 || e.Value != math.Round(e.Value) {
			t.Fatalf("rating %v out of domain", e.Value)
		}
		if e.Key >= 50 || e.Attr >= 200 {
			t.Fatalf("user/item out of range: %+v", e)
		}
	}
}

func TestTimeSeriesDeterministicAndBounded(t *testing.T) {
	g := TimeSeries{Seed: 23, PerSec: 100}
	if g.At(5) != g.At(5) {
		t.Fatalf("not deterministic")
	}
	for i := int64(0); i < 10000; i++ {
		v := g.At(i).Value
		if math.IsNaN(v) || math.Abs(v) > 100 {
			t.Fatalf("sample %d out of expected envelope: %v", i, v)
		}
	}
}
