package streamline

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/seglog"
)

// Embedded history store: append-only segment-log topics. A TopicStore is a
// directory of topics; Persist writes a stream into one (exactly-once under
// checkpointing), Topic replays one as a bounded at-rest source — or, with
// WithFollow, as an unbounded source that replays the history and then tails
// new appends. Hybrid(Topic(store, "t"), Channel(live)) is the paper's
// bootstrap scenario with the history kept by the engine itself.

// ---- store -----------------------------------------------------------------

// TopicStore is a handle on a directory of segment-log topics. One store
// value owns each topic's single writer: open it once per process and share
// it between the Persist sinks and Topic sources that use it.
type TopicStore struct {
	s *seglog.Store
}

// TopicStoreOption configures an OpenTopicStore call.
type TopicStoreOption func(*seglog.Options)

// WithSegmentBytes rolls a topic's active segment when it reaches this size
// (default seglog.DefaultSegmentBytes). Smaller segments mean more splits
// for parallel replay and finer-grained retention.
func WithSegmentBytes(n int64) TopicStoreOption {
	return func(o *seglog.Options) { o.SegmentBytes = n }
}

// WithSegmentAge additionally rolls a non-empty active segment older than
// age (checked on append; 0 disables time-based roll).
func WithSegmentAge(age time.Duration) TopicStoreOption {
	return func(o *seglog.Options) { o.SegmentAge = age }
}

// WithRetention bounds each topic: the oldest sealed segments are deleted
// while the topic exceeds maxBytes total (0 = unlimited) or holds segments
// whose newest data is older than maxAge (0 = forever). The active segment
// is never deleted. Replaying offsets that retention has dropped fails
// loudly rather than silently skipping.
func WithRetention(maxBytes int64, maxAge time.Duration) TopicStoreOption {
	return func(o *seglog.Options) { o.RetainBytes, o.RetainAge = maxBytes, maxAge }
}

// FsyncPolicy picks when appended bytes are forced to disk; re-exported from
// the engine's segment log.
type FsyncPolicy = seglog.FsyncPolicy

const (
	// FsyncNever (the default) leaves durability to the OS; segment rolls,
	// store close and checkpoint syncs still fsync, so checkpointed offsets
	// are always durable. A crash may lose the unsynced tail — recovery
	// truncates the topic to its last valid record.
	FsyncNever = seglog.FsyncNever
	// FsyncAlways syncs after every append: no loss window, slowest.
	FsyncAlways = seglog.FsyncAlways
	// FsyncInterval syncs at most once per WithFsync interval, bounding the
	// loss window by time.
	FsyncInterval = seglog.FsyncInterval
)

// WithFsync sets the store's durability policy. every is the FsyncInterval
// period (ignored by the other policies; <= 0 uses the default).
func WithFsync(policy FsyncPolicy, every time.Duration) TopicStoreOption {
	return func(o *seglog.Options) { o.Fsync, o.FsyncEvery = policy, every }
}

// OpenTopicStore opens (creating if needed) a segment-log topic store rooted
// at dir. Existing topics recover on first use: a torn tail left by a crash
// is truncated to the last valid record and the sparse index is rebuilt.
func OpenTopicStore(dir string, opts ...TopicStoreOption) (*TopicStore, error) {
	var o seglog.Options
	for _, opt := range opts {
		opt(&o)
	}
	s, err := seglog.Open(dir, o)
	if err != nil {
		return nil, err
	}
	return &TopicStore{s: s}, nil
}

// Dir returns the store's root directory.
func (ts *TopicStore) Dir() string { return ts.s.Dir() }

// Topics lists the store's topic names, sorted.
func (ts *TopicStore) Topics() ([]string, error) { return ts.s.Topics() }

// Metrics returns the store's registry: per-topic append/scan counters and
// segment/size gauges under "topic.<name>.".
func (ts *TopicStore) Metrics() *metrics.Registry { return ts.s.Metrics() }

// Store exposes the underlying segment log (diagnostics and direct access).
func (ts *TopicStore) Store() *seglog.Store { return ts.s }

// Close flushes and closes every open topic.
func (ts *TopicStore) Close() error { return ts.s.Close() }

// ---- topic source ----------------------------------------------------------

// TopicOption configures a Topic source.
type TopicOption interface{ applyTopic(*topicConfig) }

type topicConfig struct {
	splitSize int64
	follow    bool
}

type topicOptionFunc func(*topicConfig)

func (f topicOptionFunc) applyTopic(c *topicConfig) { f(c) }

// WithFollow switches a Topic source from bounded replay to follow mode: it
// replays the history frozen at job start, emits the handoff watermark, then
// tails records appended after the freeze — an unbounded source. Follow mode
// runs at source parallelism 1 (the history replay still uses splits within
// that subtask's plan; the tail is a single ordered cursor).
func WithFollow() TopicOption {
	return topicOptionFunc(func(c *topicConfig) { c.follow = true })
}

// Topic returns a source replaying a segment-log topic's records, decoded
// from JSON into T with their stored event timestamps and keys. The replay
// is bounded by the topic's visible end at planning time (a frozen view):
// segments are chopped into byte-range splits (WithSplitSize) assigned
// dynamically to the stage's subtasks, exactly like the file scans —
// snapshots record (split, offset), recovery seeks, and a restore may run at
// a different source parallelism. WithFollow makes the source unbounded:
// history first, then the growing tail.
func Topic[T any](store *TopicStore, topic string, opts ...TopicOption) Source[T] {
	var cfg topicConfig
	for _, o := range opts {
		o.applyTopic(&cfg)
	}
	return &topicSource[T]{store: store, topic: topic, cfg: cfg}
}

type topicSource[T any] struct {
	store *TopicStore
	topic string
	cfg   topicConfig
	state *topicScanState
}

// topicScanState is the per-stage shared state of one topic replay: the
// split assigner over the frozen view, and the view's end offset — where a
// follow-mode tail starts.
type topicScanState struct {
	plan *dataflow.ScanPlan
	end  atomic.Int64 // next-offset of the frozen view; -1 until planned
}

func (t *topicSource[T]) newState() *topicScanState {
	st := &topicScanState{}
	st.end.Store(-1)
	split := t.cfg.splitSize
	if split <= 0 {
		split = DefaultSplitSize
	}
	st.plan = &dataflow.ScanPlan{SplitSize: split, FixedSplits: func() ([]dataflow.Split, error) {
		tp, err := t.store.s.Topic(t.topic)
		if err != nil {
			return nil, err
		}
		v, err := tp.View()
		if err != nil {
			return nil, err
		}
		var splits []dataflow.Split
		for _, g := range v.Segments {
			splits = dataflow.TileSplits(splits, g.Path, g.Bytes, split)
		}
		st.end.Store(v.Next)
		return splits, nil
	}}
	return st
}

// openShared implements sharedOpener: the stage's slot holds the shared scan
// state, like the file connectors' plan.
func (t *topicSource[T]) openShared(slot *any, sub, par int) Reader[T] {
	if sub == 0 || *slot == nil {
		*slot = t.newState()
	}
	return t.open((*slot).(*topicScanState), sub, par)
}

func (t *topicSource[T]) Open(sub, par int) Reader[T] {
	// Direct-use fallback; see jsonlSource.Open.
	if sub == 0 || t.state == nil {
		t.state = t.newState()
	}
	return t.open(t.state, sub, par)
}

// PreferredParallelism implements ParallelismHinter: a follow-mode tail is a
// single cursor, so the stage defaults to one subtask; bounded replay leaves
// the choice to the environment (splits spread across any parallelism).
func (t *topicSource[T]) PreferredParallelism() int {
	if t.cfg.follow {
		return 1
	}
	return 0
}

func (t *topicSource[T]) open(st *topicScanState, sub, par int) Reader[T] {
	scan := &dataflow.SplitScanSource{
		Plan: st.plan, Subtask: sub, Parallelism: par,
		Reader: &topicSplitReader[T]{store: t.store, topic: t.topic},
	}
	hist := &funcReader[T]{src: scan}
	if !t.cfg.follow {
		return hist
	}
	if par > 1 {
		return &errReader[T]{err: fmt.Errorf(
			"streamline: topic %q: follow mode runs at source parallelism 1, got %d (drop WithSourceParallelism or WithFollow)",
			t.topic, par)}
	}
	return &topicFollowReader[T]{
		store: t.store, topic: t.topic, st: st, hist: hist,
		end: -1, tailOff: -1, poll: 10 * time.Millisecond,
	}
}

// errReader fails a misconfigured source: Next ends the stream immediately
// and Err surfaces the reason when the runtime inspects it at end of stream.
type errReader[T any] struct {
	err error
}

func (r *errReader[T]) Next() (Keyed[T], ReadStatus) { return Keyed[T]{}, ReadEnd }
func (r *errReader[T]) Snapshot() ([]byte, error)    { return nil, r.err }
func (r *errReader[T]) Restore([]byte) error         { return r.err }
func (r *errReader[T]) Err() error                   { return r.err }

// topicSplitReader adapts a seglog topic to the engine's SplitReader: splits
// address (segment path, byte range), resume positions are logical offsets.
type topicSplitReader[T any] struct {
	store   *TopicStore
	topic   string
	rr      *seglog.RangeReader
	lastPos int64
}

func (r *topicSplitReader[T]) OpenSplit(sp dataflow.Split, resumeAt int64) error {
	if r.rr != nil {
		r.rr.Close()
		r.rr = nil
	}
	tp, err := r.store.s.Topic(r.topic)
	if err != nil {
		return err
	}
	rr, err := tp.OpenRange(sp.Path, sp.Start, sp.End, resumeAt)
	if err != nil {
		return err
	}
	r.rr = rr
	r.lastPos = rr.BytePos()
	return nil
}

func (r *topicSplitReader[T]) NextInSplit() (dataflow.Record, bool, error) {
	rec, ok, err := r.rr.Next()
	if err != nil || !ok {
		return dataflow.Record{}, false, err
	}
	var v T
	if err := json.Unmarshal(rec.Payload, &v); err != nil {
		return dataflow.Record{}, false, fmt.Errorf("topic %q offset %d: decode %s: %w", r.topic, rec.Offset, typeName[T](), err)
	}
	return dataflow.Data(rec.Ts, rec.Key, v), true, nil
}

func (r *topicSplitReader[T]) Pos() int64 {
	return r.rr.Pos()
}

func (r *topicSplitReader[T]) Bytes() int64 {
	if r.rr == nil {
		return 0
	}
	cur := r.rr.BytePos()
	n := cur - r.lastPos
	r.lastPos = cur
	return n
}

func (r *topicSplitReader[T]) Close() error {
	if r.rr == nil {
		return nil
	}
	err := r.rr.Close()
	r.rr = nil
	return err
}

// topicFollowReader is the follow-mode reader: a splittable history replay
// over the frozen view, a handoff watermark at the history's max event time,
// then an ordered tail from the view's end — the hybrid shape with both
// phases served by one topic.
type topicFollowReader[T any] struct {
	store *TopicStore
	topic string
	st    *topicScanState
	hist  Reader[T]
	tr    *seglog.TailReader

	inTail  bool
	end     int64 // tail start = frozen view's next-offset; -1 until known
	tailOff int64 // next offset the tail reads; -1 until the handoff
	maxTs   int64
	haveTs  bool
	poll    time.Duration
	err     error
}

type topicFollowState struct {
	Tail    bool
	End     int64
	TailOff int64
	MaxTs   int64
	HaveTs  bool
	Hist    []byte
}

func (r *topicFollowReader[T]) fail(err error) (Keyed[T], ReadStatus) {
	r.err = err
	return Keyed[T]{}, ReadEnd
}

func (r *topicFollowReader[T]) Next() (Keyed[T], ReadStatus) {
	if r.err != nil {
		return Keyed[T]{}, ReadEnd
	}
	if !r.inTail {
		k, st := r.hist.Next()
		switch st {
		case ReadData:
			if k.Ts > r.maxTs || !r.haveTs {
				r.maxTs, r.haveTs = k.Ts, true
			}
			return k, ReadData
		case ReadWatermark, ReadIdle, ReadHandoff:
			return k, st
		}
		// History replay finished — or failed; a failed history ends the
		// stream (the runtime inspects Err at end of stream) instead of
		// tailing forever past a truncated replay.
		if readerErr(r.hist) != nil {
			return Keyed[T]{}, ReadEnd
		}
		// Hand off to the tail in this same call, like hybridReader: a
		// checkpoint can never fall between the phase switch and the signal.
		r.inTail = true
		if r.end < 0 {
			r.end = r.st.end.Load()
		}
		if r.tailOff < 0 {
			r.tailOff = r.end
		}
		ts := int64(minInt64)
		if r.haveTs {
			ts = r.maxTs
		}
		return Keyed[T]{Ts: ts}, ReadHandoff
	}
	if r.tr == nil {
		tp, err := r.store.s.Topic(r.topic)
		if err != nil {
			return r.fail(err)
		}
		tr, err := tp.ReadFrom(r.tailOff)
		if err != nil {
			return r.fail(err)
		}
		r.tr = tr
	}
	rec, ok, err := r.tr.Next()
	if err != nil {
		return r.fail(err)
	}
	if !ok {
		// Caught up with the visible end; back off briefly before the
		// runtime polls again.
		time.Sleep(r.poll)
		return Keyed[T]{}, ReadIdle
	}
	r.tailOff = r.tr.Pos()
	var v T
	if err := json.Unmarshal(rec.Payload, &v); err != nil {
		return r.fail(fmt.Errorf("topic %q offset %d: decode %s: %w", r.topic, rec.Offset, typeName[T](), err))
	}
	return Keyed[T]{Ts: rec.Ts, Key: rec.Key, Value: v}, ReadData
}

// CanHandoff marks the reader as a ReadHandoff emitter (stage-wide handoff
// watermark tracking).
func (r *topicFollowReader[T]) CanHandoff() bool { return true }

// CrossedHandoff reports whether the reader is past the history phase.
func (r *topicFollowReader[T]) CrossedHandoff() bool { return r.inTail }

// Unordered reports the history scan's contract while replaying; the tail
// emits in append order.
func (r *topicFollowReader[T]) Unordered() bool {
	if !r.inTail {
		return readerUnordered(r.hist)
	}
	return false
}

func (r *topicFollowReader[T]) Snapshot() ([]byte, error) {
	// The history snapshot forces planning (the scan signature), so the
	// frozen view's end is always known by the time it is read below.
	hist, err := r.hist.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("topic %q history snapshot: %w", r.topic, err)
	}
	end := r.end
	if end < 0 {
		end = r.st.end.Load()
	}
	tailOff := r.tailOff
	if tailOff < 0 {
		tailOff = end
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(topicFollowState{
		Tail: r.inTail, End: end, TailOff: tailOff, MaxTs: r.maxTs, HaveTs: r.haveTs, Hist: hist,
	})
	return buf.Bytes(), err
}

func (r *topicFollowReader[T]) Restore(blob []byte) error {
	return r.RestoreAll(0, 1, map[int][]byte{0: blob})
}

// RestoreAll implements MultiRestorer. Follow mode runs single-subtask, but
// the aggregation mirrors hybridReader's for robustness: the stage re-enters
// the history phase unless every snapshotted subtask had crossed the
// handoff, and the tail resumes at the furthest recorded offset.
func (r *topicFollowReader[T]) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	hist := make(map[int][]byte, len(blobs))
	allTail := true
	end, tailOff := int64(-1), int64(-1)
	var maxTs int64
	haveTs := false
	for sub, blob := range blobs {
		var s topicFollowState
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			return fmt.Errorf("topic %q restore: %w", r.topic, err)
		}
		hist[sub] = s.Hist
		if !s.Tail {
			allTail = false
		}
		if s.End > end {
			end = s.End
		}
		if s.TailOff > tailOff {
			tailOff = s.TailOff
		}
		if s.HaveTs && (!haveTs || s.MaxTs > maxTs) {
			maxTs, haveTs = s.MaxTs, true
		}
	}
	if err := restoreReaderAll(r.hist, subtask, parallelism, hist); err != nil {
		return fmt.Errorf("topic %q history restore: %w", r.topic, err)
	}
	r.inTail = allTail
	r.end, r.tailOff = end, tailOff
	r.maxTs, r.haveTs = maxTs, haveTs
	r.err, r.tr = nil, nil
	return nil
}

// OpenSource forwards the runtime's per-subtask context to the history scan.
func (r *topicFollowReader[T]) OpenSource(ctx *dataflow.OpContext) { openReader(r.hist, ctx) }

func (r *topicFollowReader[T]) Err() error {
	if r.err != nil {
		return r.err
	}
	return readerErr(r.hist)
}

// ---- persist sink ----------------------------------------------------------

// Persist terminates the stream into a segment-log topic: every record is
// appended as one JSON document with its event timestamp and key, replayable
// later with Topic. The sink runs at parallelism 1 (one writer per topic)
// and participates in checkpointing: each snapshot syncs the topic and
// records its high-water offset, and a restore truncates the topic back to
// that offset before appending — records written after the checkpoint are
// not duplicated (the no-double-append contract). Exactly-once therefore
// holds within a checkpoint/restore lineage; a re-run from scratch appends
// after the topic's existing records.
func Persist[T any](s *Stream[T], store *TopicStore, topic string) {
	s.noteConsumer()
	s.lower().SinkOperator("persist("+topic+")", func() dataflow.Operator {
		return &persistOp{store: store.s, topic: topic}
	})
}

// persistOp is the stateful sink operator behind Persist.
type persistOp struct {
	dataflow.Base
	store *seglog.Store
	topic string
	t     *seglog.Topic
	err   error
}

func (p *persistOp) Open(ctx *dataflow.OpContext) error {
	t, err := p.store.Topic(p.topic)
	if err != nil {
		return err
	}
	p.t = t
	if len(ctx.Restore) > 0 {
		off, err := decodeCursor(ctx.Restore)
		if err != nil {
			return fmt.Errorf("persist %q: restore: %w", p.topic, err)
		}
		// Drop whatever was appended after the checkpoint: the replayed
		// records are about to be appended again.
		if err := t.TruncateTo(off); err != nil {
			return fmt.Errorf("persist %q: truncate to checkpointed offset %d: %w", p.topic, off, err)
		}
	}
	return nil
}

func (p *persistOp) OnRecord(r dataflow.Record, out dataflow.Collector) {
	if p.err != nil {
		return
	}
	data, err := json.Marshal(r.Value)
	if err != nil {
		p.err = fmt.Errorf("persist %q: encode: %w", p.topic, err)
		return
	}
	if _, err := p.t.Append(r.Ts, r.Key, data); err != nil {
		p.err = fmt.Errorf("persist %q: %w", p.topic, err)
	}
}

// Snapshot syncs the topic and records its high-water offset — and is also
// where a failed append surfaces to fail the job (sink operators have no
// mid-stream error channel).
func (p *persistOp) Snapshot() ([]byte, error) {
	if p.err != nil {
		return nil, p.err
	}
	if err := p.t.Sync(); err != nil {
		return nil, fmt.Errorf("persist %q: sync: %w", p.topic, err)
	}
	return encodeCursor(p.t.NextOffset())
}

func (p *persistOp) Finish(out dataflow.Collector) {
	if p.err == nil {
		p.err = p.t.Sync()
	}
}
