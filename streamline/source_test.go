package streamline_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/streamline"
)

// The acceptance bar of the connector redesign: From with the Slice
// connector must build the exact same job graph as the legacy FromSlice —
// the deprecated constructors are thin wrappers, not a parallel code path.
func TestSliceConnectorPlanIdentity(t *testing.T) {
	items := []float64{1, 2, 3, 4, 5, 6, 7}
	build := func(useConnector bool) (*streamline.Env, *streamline.Results[float64]) {
		env := streamline.New(streamline.WithParallelism(2))
		var src *streamline.Stream[float64]
		if useConnector {
			src = streamline.From(env, "src", streamline.Slice(items))
		} else {
			src = streamline.FromSlice(env, "src", items)
		}
		keyed := streamline.KeyBy(src, "key", func(v float64) uint64 { return uint64(v) % 2 })
		sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
		return env, streamline.Collect(sums, "out")
	}

	newEnv, newOut := build(true)
	oldEnv, oldOut := build(false)
	newPlan := planString(newEnv.Core().Graph())
	oldPlan := planString(oldEnv.Core().Graph())
	if newPlan != oldPlan {
		t.Fatalf("plans differ:\nFrom+Slice:\n%s\nFromSlice:\n%s", newPlan, oldPlan)
	}

	execute(t, newEnv.Execute)
	execute(t, oldEnv.Execute)
	sums := func(res *streamline.Results[float64]) map[uint64]float64 {
		out := map[uint64]float64{}
		for _, k := range res.Records() {
			out[k.Key] += k.Value
		}
		return out
	}
	got, want := sums(newOut), sums(oldOut)
	if len(got) != len(want) {
		t.Fatalf("key counts differ: %d vs %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: connector %v, legacy %v", k, got[k], v)
		}
	}
}

// Generator and paced-generator wrappers must likewise lower to identical
// plans through the connector path.
func TestGeneratorConnectorPlanIdentity(t *testing.T) {
	gen := func(sub, par int, i int64) streamline.Keyed[float64] {
		return streamline.Keyed[float64]{Ts: i, Value: float64(i)}
	}
	plan := func(build func(env *streamline.Env) *streamline.Stream[float64]) string {
		env := streamline.New(streamline.WithParallelism(2))
		streamline.Sink(build(env), "out", func(streamline.Keyed[float64]) {})
		return planString(env.Core().Graph())
	}
	if got, want := plan(func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "gen", streamline.Generator(100, gen), streamline.WithSourceParallelism(1))
	}), plan(func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.FromGenerator(env, "gen", 1, 100, gen)
	}); got != want {
		t.Fatalf("generator plans differ:\n%s\nvs\n%s", got, want)
	}
	if got, want := plan(func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "gen", streamline.Paced(streamline.Generator(100, gen), 1e6), streamline.WithSourceParallelism(2))
	}), plan(func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.FromPacedGenerator(env, "gen", 2, 100, 1e6, gen)
	}); got != want {
		t.Fatalf("paced plans differ:\n%s\nvs\n%s", got, want)
	}
}

func TestChannelConnectorEndToEnd(t *testing.T) {
	ch := make(chan streamline.Keyed[float64])
	go func() {
		for i := 0; i < 50; i++ {
			ch <- streamline.Keyed[float64]{Ts: int64(i), Value: float64(i)}
		}
		close(ch)
	}()
	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.FromChannel(env, "live", ch)
	keyed := streamline.KeyBy(src, "key", func(v float64) uint64 { return uint64(v) % 3 })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	out := streamline.Collect(sums, "out")
	execute(t, env.Execute)

	got := map[uint64]float64{}
	for _, k := range out.Records() {
		got[k.Key] += k.Value
	}
	want := map[uint64]float64{}
	for i := 0; i < 50; i++ {
		want[uint64(i%3)] += float64(i)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %d = %v, want %v", k, got[k], w)
		}
	}
}

// event is the element type of the file/hybrid tests.
type event struct {
	TsMs  int64   `json:"ts"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func writeJSONL(t *testing.T, events []event) string {
	t.Helper()
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "{\"ts\":%d,\"name\":%q,\"value\":%g}\n", e.TsMs, e.Name, e.Value)
	}
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func mkEvents(n int, startTs int64) []event {
	events := make([]event, n)
	for i := range events {
		events[i] = event{TsMs: startTs + int64(i), Name: fmt.Sprintf("s%d", i%3), Value: 1}
	}
	return events
}

func TestJSONLConnectorWithTimestamps(t *testing.T) {
	events := mkEvents(200, 1000)
	path := writeJSONL(t, events)

	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.FromJSONL[event](env, "history", path,
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
	keyed := streamline.KeyByString(src, "name", func(e event) string { return e.Name })
	vals := streamline.Map(keyed, "value", func(e event) float64 { return e.Value })
	win := streamline.WindowAggregate(vals, "count-100ms",
		streamline.Query(streamline.Tumbling(100), streamline.Count()))
	out := streamline.Collect(win, "out")
	execute(t, env.Execute)

	total := int64(0)
	for _, k := range out.Records() {
		if k.Value.Start < 1000 || k.Value.End > 1200 {
			t.Fatalf("window [%d,%d) outside the extracted event-time range", k.Value.Start, k.Value.End)
		}
		total += k.Value.Count
	}
	if total != 200 {
		t.Fatalf("windows cover %d events, want 200", total)
	}
}

func TestCSVConnectorParsesRows(t *testing.T) {
	content := "name,value\na,1\nb,2\na,3\nb,4\n"
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	type row struct {
		name  string
		value float64
	}
	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.FromCSV(env, "csv", path, true, func(r []string) (row, error) {
		var v float64
		if _, err := fmt.Sscanf(r[1], "%g", &v); err != nil {
			return row{}, err
		}
		return row{name: r[0], value: v}, nil
	})
	keyed := streamline.KeyByString(src, "name", func(r row) string { return r.name })
	vals := streamline.Map(keyed, "value", func(r row) float64 { return r.value })
	sums := streamline.ReduceByKey(vals, "sum", func(acc, v float64) float64 { return acc + v }, false)
	out := streamline.Collect(sums, "out")
	execute(t, env.Execute)

	got := map[uint64]float64{}
	for _, k := range out.Records() {
		got[k.Key] += k.Value
	}
	if got[streamline.KeyOf("a")] != 4 || got[streamline.KeyOf("b")] != 6 {
		t.Fatalf("sums = %v, want a=4 b=6", got)
	}
}

func TestCSVConnectorParseErrorFailsExecute(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("1\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.FromCSV(env, "csv", path, false, func(r []string) (float64, error) {
		var v float64
		_, err := fmt.Sscanf(r[0], "%g", &v)
		return v, err
	})
	streamline.Sink(src, "out", func(streamline.Keyed[float64]) {})
	if err := env.Execute(context.Background()); err == nil {
		t.Fatalf("parse error must fail Execute")
	}
}

func TestWithTimestampsTypeMismatchFailsBuild(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.From(env, "src", streamline.Slice([]string{"a", "b"}),
		streamline.WithTimestamps(func(v float64) int64 { return int64(v) })) // wrong element type
	streamline.Sink(src, "out", func(streamline.Keyed[string]) {})
	err := env.Execute(context.Background())
	if err == nil || !strings.Contains(err.Error(), "WithTimestamps") {
		t.Fatalf("Execute error = %v, want a WithTimestamps type mismatch", err)
	}
}

// windowKey dedups window results for the hybrid equivalence tests.
type windowKey struct {
	key   uint64
	query int
	start int64
}

func collectWindows(res *streamline.Results[streamline.WindowResult]) map[windowKey]float64 {
	out := map[windowKey]float64{}
	for _, k := range res.Records() {
		out[windowKey{key: k.Key, query: k.Value.QueryID, start: k.Value.Start}] = k.Value.Value
	}
	return out
}

// buildHybridPipeline assembles the paper's headline scenario: a windowed
// aggregation over a source that replays JSONL history and continues on a
// live channel.
func buildHybridPipeline(env *streamline.Env, src *streamline.Stream[event]) *streamline.Results[streamline.WindowResult] {
	keyed := streamline.KeyByString(src, "name", func(e event) string { return e.Name })
	vals := streamline.Map(keyed, "value", func(e event) float64 { return e.Value })
	win := streamline.WindowAggregate(vals, "sum-50ms",
		streamline.Query(streamline.Tumbling(50), streamline.Sum()))
	return streamline.Collect(win, "out")
}

// feedLive pushes the live tail into a channel and closes it.
func feedLive(events []event) <-chan streamline.Keyed[event] {
	ch := make(chan streamline.Keyed[event], len(events))
	for _, e := range events {
		ch <- streamline.Keyed[event]{Ts: e.TsMs, Value: e}
	}
	close(ch)
	return ch
}

// The hybrid acceptance test: history file → live channel must produce the
// same windows as the equivalent single-source run over the concatenation.
func TestHybridFileThenChannelMatchesSingleSource(t *testing.T) {
	// Event timestamps deliberately do not equal file line indices, so the
	// handoff watermark must come from the extracted event time.
	history := mkEvents(400, 5000) // ts 5000..5399
	live := mkEvents(200, 5400)    // ts 5400..5599
	all := append(append([]event{}, history...), live...)
	path := writeJSONL(t, history)

	// Reference: one bounded source over the concatenation.
	refEnv := streamline.New(streamline.WithParallelism(2))
	refOut := buildHybridPipeline(refEnv, streamline.From(refEnv, "events",
		streamline.Slice(all), streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs })))
	execute(t, refEnv.Execute)
	want := collectWindows(refOut)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	// Hybrid: replay the JSONL history, hand off to the live channel.
	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.From(env, "events",
		streamline.Hybrid(streamline.JSONL[event](path), streamline.Channel(feedLive(live))),
		streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
	out := buildHybridPipeline(env, src)
	execute(t, env.Execute)
	got := collectWindows(out)

	if len(got) != len(want) {
		t.Fatalf("hybrid produced %d windows, single-source %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v", k, got[k], v)
		}
	}
}

// The recovery acceptance test: kill the hybrid pipeline during the history
// replay, restore from the last checkpoint, continue across the handoff
// into the live channel — deduplicated windows must match the reference.
func TestHybridCheckpointRestoreMidHandoff(t *testing.T) {
	history := mkEvents(3000, 5000) // ts 5000..7999 (≠ line indices)
	live := mkEvents(600, 8000)     // ts 8000..8599
	all := append(append([]event{}, history...), live...)
	path := writeJSONL(t, history)

	refEnv := streamline.New(streamline.WithParallelism(2))
	refOut := buildHybridPipeline(refEnv, streamline.From(refEnv, "events",
		streamline.Slice(all), streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs })))
	execute(t, refEnv.Execute)
	want := collectWindows(refOut)

	build := func(paceHistory float64, liveCh <-chan streamline.Keyed[event], backend streamline.Backend) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
		env := streamline.New(streamline.WithParallelism(2),
			streamline.WithCheckpointing(backend, 15*time.Millisecond))
		var hist streamline.Source[event] = streamline.JSONL[event](path)
		if paceHistory > 0 {
			hist = streamline.Paced(hist, paceHistory)
		}
		src := streamline.From(env, "events",
			streamline.Hybrid(hist, streamline.Channel(liveCh)),
			streamline.WithSourceParallelism(1),
			streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
		return env, buildHybridPipeline(env, src)
	}

	// Crash run: pace the history so the kill lands mid-replay, before the
	// handoff. The live channel stays untouched.
	backend := streamline.NewMemoryBackend(0)
	crashCh := make(chan streamline.Keyed[event]) // never fed; the kill hits during history
	crashEnv, crashOut := build(20_000, crashCh, backend)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	err := crashEnv.Execute(ctx)
	cancel()
	close(crashCh)
	if err == nil {
		t.Skip("job finished before kill on this machine")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed before kill")
	}

	// Recovery run: rebuild the identical pipeline (fresh channel carrying
	// the live tail), resume from the snapshot, run through the handoff.
	// Windows that fired before the checkpoint live in the crash run's
	// sink; replays overwrite idempotently (same key, same value).
	recEnv, recOut := build(0, feedLive(live), streamline.NewMemoryBackend(0))
	recCtx, recCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer recCancel()
	if err := recEnv.ExecuteRestored(recCtx, snap); err != nil {
		t.Fatalf("restored run failed: %v", err)
	}
	got := collectWindows(crashOut)
	for k, v := range collectWindows(recOut) {
		got[k] = v
	}
	if len(got) != len(want) {
		t.Fatalf("restored run produced %d windows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v (exactly-once across the handoff)", k, got[k], v)
		}
	}
}

// A splittable JSONL scan at source parallelism 4 must produce exactly the
// records of the parallelism-1 scan: the shared split queue partitions the
// file, no line lost or duplicated, at every split size.
func TestJSONLSplitScanMatchesSingleSubtask(t *testing.T) {
	events := mkEvents(500, 1000)
	path := writeJSONL(t, events)
	counts := func(par int, opts ...streamline.FileOption) map[uint64]float64 {
		t.Helper()
		env := streamline.New(streamline.WithParallelism(2))
		src := streamline.From(env, "history", streamline.JSONL[event](path, opts...),
			streamline.WithSourceParallelism(par),
			streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
		keyed := streamline.KeyByString(src, "name", func(e event) string { return e.Name })
		vals := streamline.Map(keyed, "value", func(e event) float64 { return e.Value })
		sums := streamline.ReduceByKey(vals, "sum", func(acc, v float64) float64 { return acc + v }, false)
		out := streamline.Collect(sums, "out")
		execute(t, env.Execute)
		got := map[uint64]float64{}
		for _, k := range out.Records() {
			got[k.Key] += k.Value
		}
		return got
	}
	want := counts(1)
	for _, splitSize := range []int64{512, 2048} {
		got := counts(4, streamline.WithSplitSize(splitSize))
		if len(got) != len(want) {
			t.Fatalf("splitSize %d: %d keys, want %d", splitSize, len(got), len(want))
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("splitSize %d: key %d = %v, want %v", splitSize, k, got[k], w)
			}
		}
	}
}

// One connector value is reusable: two environments running concurrently
// off the same JSONL source each get their own scan plan (From's per-stage
// slot), so neither job loses records to the other's split consumption.
func TestFileConnectorReusableAcrossEnvironments(t *testing.T) {
	events := mkEvents(300, 1000)
	path := writeJSONL(t, events)
	src := streamline.JSONL[event](path, streamline.WithSplitSize(512))

	type result struct {
		n   int64
		err error
	}
	run := func(out chan<- result) {
		env := streamline.New(streamline.WithParallelism(2))
		s := streamline.From(env, "history", src, streamline.WithSourceParallelism(2),
			streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
		col := streamline.Collect(s, "out")
		err := env.Execute(context.Background())
		out <- result{n: int64(len(col.Records())), err: err}
	}
	results := make(chan result, 2)
	go run(results)
	go run(results)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.n != 300 {
			t.Fatalf("a concurrent execution saw %d of 300 records (scan plans bled across environments)", r.n)
		}
	}
}

// The at-scale hybrid scenario: JSONL history replayed at source parallelism
// 4 with splits in flight, killed mid-history, recovered at source
// parallelism 2 — pending splits redistribute, the handoff still happens
// exactly once, and the deduplicated windows equal the single-source
// reference.
func TestHybridScaledKillRecoverAtDifferentParallelism(t *testing.T) {
	history := mkEvents(4000, 5000) // ts 5000..8999
	live := mkEvents(800, 9000)     // ts 9000..9799
	all := append(append([]event{}, history...), live...)
	path := writeJSONL(t, history)

	refEnv := streamline.New(streamline.WithParallelism(2))
	refOut := buildHybridPipeline(refEnv, streamline.From(refEnv, "events",
		streamline.Slice(all), streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs })))
	execute(t, refEnv.Execute)
	want := collectWindows(refOut)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	build := func(srcPar int, paceHistory float64, liveCh <-chan streamline.Keyed[event], backend streamline.Backend) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
		env := streamline.New(streamline.WithParallelism(2),
			streamline.WithCheckpointing(backend, 15*time.Millisecond))
		var hist streamline.Source[event] = streamline.JSONL[event](path, streamline.WithSplitSize(4096))
		if paceHistory > 0 {
			hist = streamline.Paced(hist, paceHistory)
		}
		src := streamline.From(env, "events",
			streamline.Hybrid(hist, streamline.Channel(liveCh)),
			streamline.WithSourceParallelism(srcPar),
			streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
		return env, buildHybridPipeline(env, src)
	}

	// Crash run: source parallelism 4, paced so the kill lands with splits
	// in flight across the subtasks.
	backend := streamline.NewMemoryBackend(0)
	crashCh := make(chan streamline.Keyed[event]) // never fed; the kill hits during history
	crashEnv, crashOut := build(4, 8_000, crashCh, backend)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	err := crashEnv.Execute(ctx)
	cancel()
	close(crashCh)
	if err == nil {
		t.Skip("job finished before kill on this machine")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed before kill")
	}

	// Recovery at source parallelism 2: the remaining splits redistribute
	// across the smaller stage, the handoff crosses exactly once, and the
	// live tail flows.
	recEnv, recOut := build(2, 0, feedLive(live), streamline.NewMemoryBackend(0))
	recCtx, recCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer recCancel()
	if err := recEnv.ExecuteRestored(recCtx, snap); err != nil {
		t.Fatalf("restored run at source parallelism 2 failed: %v", err)
	}
	got := collectWindows(crashOut)
	for k, v := range collectWindows(recOut) {
		got[k] = v
	}
	if len(got) != len(want) {
		t.Fatalf("restored run produced %d windows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v (exactly-once across the split reassignment)", k, got[k], v)
		}
	}
}

// The handoff watermark must fire history windows without waiting for the
// live phase to end: with the live channel held open, every window closed by
// the stage-wide history maximum (5399) eventually fires, and every one of
// them matches the reference. The single-split case is the trap this
// guards: one subtask scans the whole history and the other three cross the
// handoff having seen nothing — their event time must follow the stage
// clock instead of pinning the job at -inf.
func TestHybridHandoffWatermarkFiresHistoryWindows(t *testing.T) {
	history := mkEvents(400, 5000) // ts 5000..5399
	all := append([]event{}, history...)
	path := writeJSONL(t, history)

	refEnv := streamline.New(streamline.WithParallelism(2))
	refOut := buildHybridPipeline(refEnv, streamline.From(refEnv, "events",
		streamline.Slice(all), streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs })))
	execute(t, refEnv.Execute)
	want := collectWindows(refOut)
	fireable := 0 // windows fully closed by the history max watermark
	for k := range want {
		if k.start+50 <= 5399 {
			fireable++
		}
	}
	if fireable == 0 {
		t.Fatalf("no fireable windows in the reference")
	}

	for name, splitSize := range map[string]int64{
		"many-splits":  1024,                        // splits outnumber the subtasks
		"single-split": streamline.DefaultSplitSize, // one subtask gets the whole history
	} {
		t.Run(name, func(t *testing.T) {
			live := make(chan streamline.Keyed[event]) // stays open: no end-of-stream close-out
			env := streamline.New(streamline.WithParallelism(2))
			src := streamline.From(env, "events",
				streamline.Hybrid(streamline.JSONL[event](path, streamline.WithSplitSize(splitSize)), streamline.Channel(live)),
				streamline.WithSourceParallelism(4),
				streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
			out := buildHybridPipeline(env, src)

			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- env.Execute(ctx) }()
			deadline := time.After(30 * time.Second)
			for len(collectWindows(out)) < fireable {
				select {
				case err := <-done:
					t.Fatalf("job ended with %d/%d windows fired: %v", len(collectWindows(out)), fireable, err)
				case <-deadline:
					t.Fatalf("only %d of %d history windows fired from the handoff watermark within 30s", len(collectWindows(out)), fireable)
				case <-time.After(5 * time.Millisecond):
				}
			}
			cancel()
			<-done
			close(live)
			for k, v := range collectWindows(out) {
				w, ok := want[k]
				if !ok || w != v {
					t.Fatalf("handoff-fired window %+v = %v, want %v", k, v, w)
				}
			}
		})
	}
}

// Sanity: the legacy wrappers still produce working pipelines (they are
// deprecated, not removed).
func TestDeprecatedWrappersStillWork(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	nums := streamline.FromSlice(env, "src", []float64{3, 1, 2})
	out := streamline.Collect(nums, "out")
	execute(t, env.Execute)
	var vals []float64
	for _, k := range out.Records() {
		vals = append(vals, k.Value)
	}
	sort.Float64s(vals)
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("vals = %v", vals)
	}
}

// A Channel connector passed straight to From must default to a single
// subtask (ParallelismHinter): at the environment default parallelism,
// subtasks would split the shared channel and a subtask that never receives
// a record would pin downstream event time at -inf. Decorating connectors
// forward the hint; an explicit WithSourceParallelism always wins.
func TestChannelConnectorHintsSingleSubtask(t *testing.T) {
	ch := make(chan streamline.Keyed[float64])
	srcParallelism := func(name string, build func(env *streamline.Env) *streamline.Stream[float64]) int {
		t.Helper()
		env := streamline.New(streamline.WithParallelism(4))
		src := build(env)
		streamline.Sink(src, "out", func(streamline.Keyed[float64]) {})
		for _, n := range env.Core().Graph().Nodes() {
			if n.Name == name {
				return n.Parallelism
			}
		}
		t.Fatalf("source node %q not in plan", name)
		return 0
	}

	if p := srcParallelism("chan", func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "chan", streamline.Channel(ch))
	}); p != 1 {
		t.Fatalf("Channel via From runs at parallelism %d, want 1", p)
	}
	// Hybrid takes its hint from the history phase (the part that must
	// scale), not the live channel: Slice has no hint, so the stage runs at
	// the environment default — the implicit parallelism-1 behavior is gone.
	if p := srcParallelism("hybrid", func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "hybrid", streamline.Hybrid(streamline.Slice([]float64{1, 2}), streamline.Channel(ch)))
	}); p != 4 {
		t.Fatalf("Hybrid parallelism = %d, want the env default 4 (history has no hint)", p)
	}
	if p := srcParallelism("paced", func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "paced", streamline.Paced(streamline.Channel(ch), 100))
	}); p != 1 {
		t.Fatalf("Paced Channel runs at parallelism %d, want 1", p)
	}
	if p := srcParallelism("chan3", func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "chan3", streamline.Channel(ch), streamline.WithSourceParallelism(3))
	}); p != 3 {
		t.Fatalf("explicit WithSourceParallelism gives %d, want 3", p)
	}
	if p := srcParallelism("chan0", func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "chan0", streamline.Channel(ch), streamline.WithSourceParallelism(0))
	}); p != 4 {
		t.Fatalf("explicit WithSourceParallelism(0) gives %d, want the env default 4 over the hint", p)
	}
	if p := srcParallelism("slice", func(env *streamline.Env) *streamline.Stream[float64] {
		return streamline.From(env, "slice", streamline.Slice([]float64{1, 2}))
	}); p != 4 {
		t.Fatalf("hint-free Slice runs at parallelism %d, want the env default 4", p)
	}
}

// A history that fails mid-replay must fail Execute instead of handing off
// to the live channel: with an unbounded live phase the job would otherwise
// run forever over a silently truncated history, the error parked in Err.
func TestHybridCorruptHistoryFailsExecute(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := os.WriteFile(path, []byte("{\"ts\":1,\"name\":\"a\",\"value\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	live := make(chan streamline.Keyed[event]) // never fed, never closed

	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.From(env, "hybrid",
		streamline.Hybrid(streamline.JSONL[event](path), streamline.Channel(live)))
	streamline.Sink(src, "out", func(streamline.Keyed[event]) {})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := env.Execute(ctx)
	if err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatalf("Execute = %v, want the history decode error surfaced", err)
	}
}
