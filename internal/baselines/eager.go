package baselines

import (
	"fmt"
	"math"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

// Eager is the tuple-buffer baseline: every open window of every query
// buffers the raw elements assigned to it and folds them only when the
// window fires. It models window operators without pre-aggregation (Flink's
// apply()/evictor path), the worst case in both time and memory and the
// reference point for the paper's "redundancy-prone" claim (E3).
type Eager struct {
	emit    engine.Emit
	pos     int64
	curWM   int64
	queries map[int]*eagerQuery
	nextQID int
	active  *eagerQuery
	stored  int
}

type eagerQuery struct {
	id       int
	assigner window.Assigner
	fn       *agg.FnF64
	open     map[int64]*eagerWin
}

type eagerWin struct {
	vals []float64
}

var _ engine.Engine = (*Eager)(nil)

// NewEager returns an empty Eager engine.
func NewEager(emit engine.Emit) *Eager {
	return &Eager{emit: emit, curWM: math.MinInt64, queries: make(map[int]*eagerQuery)}
}

// Name implements engine.Engine.
func (e *Eager) Name() string { return "eager" }

// AddQuery implements engine.Engine.
func (e *Eager) AddQuery(q engine.Query) (int, error) {
	if q.Fn == nil || q.Window.Factory == nil {
		return 0, fmt.Errorf("eager: query requires a window spec and an aggregate function")
	}
	id := e.nextQID
	e.nextQID++
	e.queries[id] = &eagerQuery{
		id:       id,
		assigner: q.Window.Factory(),
		fn:       q.Fn,
		open:     make(map[int64]*eagerWin),
	}
	return id, nil
}

// RemoveQuery implements engine.Engine.
func (e *Eager) RemoveQuery(id int) {
	if q, ok := e.queries[id]; ok {
		for _, w := range q.open {
			e.stored -= len(w.vals)
		}
		delete(e.queries, id)
	}
}

// OnElement implements engine.Engine.
func (e *Eager) OnElement(ts int64, v float64) {
	for _, q := range e.queries {
		e.active = q
		q.assigner.OnElement(ts, e.pos, v, (*eagerCtx)(e))
		for _, w := range q.open {
			w.vals = append(w.vals, v)
			e.stored++
		}
	}
	e.active = nil
	e.pos++
}

// OnWatermark implements engine.Engine.
func (e *Eager) OnWatermark(wm int64) {
	if wm <= e.curWM {
		return
	}
	e.curWM = wm
	for _, q := range e.queries {
		e.active = q
		q.assigner.OnTime(wm, (*eagerCtx)(e))
	}
	e.active = nil
}

// StoredPartials implements engine.Engine: buffered raw tuples count as
// stored state.
func (e *Eager) StoredPartials() int { return e.stored }

type eagerCtx Eager

func (c *eagerCtx) engine() *Eager { return (*Eager)(c) }

func (c *eagerCtx) Open(id int64) {
	e := c.engine()
	q := e.active
	if _, dup := q.open[id]; dup {
		return
	}
	q.open[id] = &eagerWin{}
}

func (c *eagerCtx) CloseHere(id, end int64) { c.close(id, end) }

func (c *eagerCtx) CloseAt(id, end, cutoff int64) { c.close(id, end) }

func (c *eagerCtx) close(id, end int64) {
	e := c.engine()
	q := e.active
	w, ok := q.open[id]
	if !ok {
		return
	}
	delete(q.open, id)
	e.stored -= len(w.vals)
	// Fold on fire: the eager recomputation the strategy is named for.
	acc := q.fn.Identity
	for i, v := range w.vals {
		if i == 0 {
			acc = q.fn.Lift(v)
		} else {
			acc = q.fn.Combine(acc, q.fn.Lift(v))
		}
	}
	e.emit(engine.Result{
		QueryID: q.id,
		Start:   id,
		End:     end,
		Value:   q.fn.Lower(acc),
		Count:   acc.N,
	})
}
