// Command streamline-repl is the interactive development environment of the
// I2 research highlight, reduced to its coordination essence: a live stream
// runs continuously while the analyst adds and removes window aggregation
// queries *interactively* — the Cutty engine shares slices between whatever
// queries are registered at any moment, and results stream to the console
// as windows complete.
//
//	go run ./cmd/streamline-repl -rate 2000
//
// Commands:
//
//	add tumbling <size-ms> <fn>          e.g. add tumbling 1000 sum
//	add sliding <size-ms> <slide-ms> <fn>
//	add session <gap-ms> <fn>
//	add count <n> <fn>
//	add timeorcount <dur-ms> <n> <fn>
//	remove <query-id>
//	list | stats | show <n> | help | quit
//
// Aggregate functions: sum count min max avg var.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/workloads"
)

func main() {
	rate := flag.Int64("rate", 2000, "stream rate (events/second)")
	flag.Parse()

	r := newRepl(*rate)
	go r.pump()

	fmt.Println("streamline-repl — live stream running; type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := sc.Text()
		out, quit := r.Eval(line)
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			return
		}
		fmt.Print("> ")
	}
}

// repl owns the live engine; Eval is synchronous and testable.
type repl struct {
	mu      sync.Mutex
	eng     *cutty.Engine
	queries map[int]string // id -> description
	results []engine.Result
	rate    int64
	stop    chan struct{}
}

func newRepl(rate int64) *repl {
	r := &repl{queries: make(map[int]string), rate: rate, stop: make(chan struct{})}
	r.eng = cutty.New(func(res engine.Result) {
		r.results = append(r.results, res)
		if len(r.results) > 10000 {
			r.results = append(r.results[:0], r.results[5000:]...)
		}
	})
	return r
}

// pump feeds the live stream, paced to wall clock.
func (r *repl) pump() {
	gen := workloads.TimeSeries{Seed: time.Now().UnixNano(), PerSec: r.rate}
	start := time.Now()
	for i := int64(0); ; i++ {
		select {
		case <-r.stop:
			return
		default:
		}
		e := gen.At(i)
		due := start.Add(time.Duration(e.Ts) * time.Millisecond)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		r.mu.Lock()
		r.eng.OnWatermark(e.Ts)
		r.eng.OnElement(e.Ts, e.Value)
		r.mu.Unlock()
	}
}

// Eval executes one command line and returns the response text and whether
// the session should end.
func (r *repl) Eval(line string) (string, bool) {
	cmd, err := Parse(line)
	if err != nil {
		return "error: " + err.Error(), false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch cmd.Kind {
	case CmdNop:
		return "", false
	case CmdQuit:
		close(r.stop)
		return "bye", true
	case CmdHelp:
		return helpText, false
	case CmdAdd:
		id, err := r.eng.AddQuery(engine.Query{Window: cmd.Spec, Fn: cmd.Fn})
		if err != nil {
			return "error: " + err.Error(), false
		}
		r.queries[id] = cmd.Desc
		return fmt.Sprintf("query %d registered: %s", id, cmd.Desc), false
	case CmdRemove:
		if _, ok := r.queries[cmd.N]; !ok {
			return fmt.Sprintf("error: no query %d", cmd.N), false
		}
		r.eng.RemoveQuery(cmd.N)
		delete(r.queries, cmd.N)
		return fmt.Sprintf("query %d removed", cmd.N), false
	case CmdList:
		if len(r.queries) == 0 {
			return "no queries registered", false
		}
		out := ""
		for id := 0; id < 1<<20; id++ {
			d, ok := r.queries[id]
			if ok {
				out += fmt.Sprintf("  %d: %s\n", id, d)
			}
			if len(out) > 0 && id > len(r.queries)*8 {
				break
			}
		}
		return out[:len(out)-1], false
	case CmdStats:
		return fmt.Sprintf("queries=%d live-slices=%d stored-partials=%d results=%d",
			len(r.queries), r.eng.Slices(), r.eng.StoredPartials(), len(r.results)), false
	case CmdShow:
		n := cmd.N
		if n <= 0 {
			n = 5
		}
		if n > len(r.results) {
			n = len(r.results)
		}
		if n == 0 {
			return "no results yet", false
		}
		out := ""
		for _, res := range r.results[len(r.results)-n:] {
			out += fmt.Sprintf("  q%d window [%d,%d) value=%.3f count=%d\n",
				res.QueryID, res.Start, res.End, res.Value, res.Count)
		}
		return out[:len(out)-1], false
	}
	return "error: unhandled command", false
}

const helpText = `commands:
  add tumbling <size-ms> <fn>
  add sliding <size-ms> <slide-ms> <fn>
  add session <gap-ms> <fn>
  add count <n> <fn>
  add timeorcount <dur-ms> <n> <fn>
  remove <query-id>
  list | stats | show <n> | help | quit
functions: sum count min max avg var`
