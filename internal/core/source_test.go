package core

import (
	"testing"

	"repro/internal/dataflow"
)

// FromRecords must honor the environment's default parallelism — the slice
// source round-robins across subtasks, so pinning it to 1 wasted the
// machine.
func TestFromRecordsHonorsEnvParallelism(t *testing.T) {
	env := NewEnvironment(WithParallelism(3))
	s := env.FromRecords("src", genRecords(30))
	if got := s.node.Parallelism; got != 3 {
		t.Fatalf("FromRecords parallelism = %d, want env default 3", got)
	}
	sink := s.
		KeyBy("key", func(r dataflow.Record) uint64 { return r.Key }).
		ReduceByKey("sum", func(acc, v float64) float64 { return acc + v }, false).
		Collect("out")
	execute(t, env)
	got := map[uint64]float64{}
	for _, r := range sink.Records() {
		got[r.Key] += r.Value.(float64)
	}
	want := map[uint64]float64{}
	for i := 0; i < 30; i++ {
		want[uint64(i%5)] += float64(i)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %d = %v, want %v", k, got[k], w)
		}
	}
}

// FromSource is the single lowering entry point: a custom factory plugs in
// directly, and explicit parallelism overrides the environment default.
func TestFromSourcePluggableFactory(t *testing.T) {
	env := NewEnvironment(WithParallelism(2))
	s := env.FromSource("chan", 1, func(sub, par int) dataflow.SourceFunc {
		return &dataflow.GenSource{N: 10, Gen: func(i int64) dataflow.Record {
			return dataflow.Data(i, uint64(i), float64(i))
		}}
	})
	if got := s.node.Parallelism; got != 1 {
		t.Fatalf("explicit parallelism = %d, want 1", got)
	}
	var n int
	s.Sink("count", func(dataflow.Record) { n++ })
	execute(t, env)
	if n != 10 {
		t.Fatalf("sink saw %d records, want 10", n)
	}
}
