package seglog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func appendN(t *testing.T, tp *Topic, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		off, err := tp.Append(int64(i), uint64(i%7), []byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if off != tp.NextOffset()-1 {
			t.Fatalf("Append %d returned offset %d; NextOffset is %d", i, off, tp.NextOffset())
		}
	}
}

func readAll(t *testing.T, tp *Topic, from int64) []Record {
	t.Helper()
	r, err := tp.ReadFrom(from)
	if err != nil {
		t.Fatalf("ReadFrom(%d): %v", from, err)
	}
	defer r.Close()
	var out []Record
	for {
		rec, ok, err := r.Next()
		if err != nil {
			t.Fatalf("tail Next: %v", err)
		}
		if !ok {
			return out
		}
		rec.Payload = append([]byte(nil), rec.Payload...)
		out = append(out, rec)
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	s := openStore(t, Options{})
	tp, err := s.Topic("events")
	if err != nil {
		t.Fatalf("Topic: %v", err)
	}
	appendN(t, tp, 100)
	recs := readAll(t, tp, 0)
	if len(recs) != 100 {
		t.Fatalf("read %d records, want 100", len(recs))
	}
	for i, rec := range recs {
		if rec.Offset != int64(i) || rec.Ts != int64(i) || rec.Key != uint64(i%7) {
			t.Fatalf("record %d = %+v", i, rec)
		}
		if want := fmt.Sprintf("record-%04d", i); string(rec.Payload) != want {
			t.Fatalf("record %d payload = %q, want %q", i, rec.Payload, want)
		}
	}
	if got := tp.NextOffset(); got != 100 {
		t.Fatalf("NextOffset = %d, want 100", got)
	}
	if got := tp.OldestOffset(); got != 0 {
		t.Fatalf("OldestOffset = %d, want 0", got)
	}
}

func TestReopenContinuesOffsets(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tp, _ := s.Topic("t")
	appendN(t, tp, 50)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	tp2, err := s2.Topic("t")
	if err != nil {
		t.Fatalf("reopen topic: %v", err)
	}
	if got := tp2.NextOffset(); got != 50 {
		t.Fatalf("NextOffset after reopen = %d, want 50", got)
	}
	appendN(t, tp2, 10)
	recs := readAll(t, tp2, 45)
	if len(recs) != 15 {
		t.Fatalf("read %d records from 45, want 15", len(recs))
	}
	if recs[0].Offset != 45 || recs[len(recs)-1].Offset != 59 {
		t.Fatalf("offsets [%d, %d], want [45, 59]", recs[0].Offset, recs[len(recs)-1].Offset)
	}
}

func TestSegmentRollBySize(t *testing.T) {
	s := openStore(t, Options{SegmentBytes: 256})
	tp, _ := s.Topic("t")
	appendN(t, tp, 40) // each frame is 24+11 = 35 bytes; rolls every ~8 records
	v, err := tp.View()
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if len(v.Segments) < 3 {
		t.Fatalf("expected >= 3 segments after roll, got %d", len(v.Segments))
	}
	// Bases must chain: each base = previous base + previous records.
	for i := 1; i < len(v.Segments); i++ {
		prev := v.Segments[i-1]
		if v.Segments[i].Base != prev.Base+prev.Records {
			t.Fatalf("segment %d base %d does not chain from %+v", i, v.Segments[i].Base, prev)
		}
	}
	recs := readAll(t, tp, 0)
	if len(recs) != 40 {
		t.Fatalf("read %d records across segments, want 40", len(recs))
	}
	for i, rec := range recs {
		if rec.Offset != int64(i) {
			t.Fatalf("record %d has offset %d", i, rec.Offset)
		}
	}
}

func TestSegmentRollByAge(t *testing.T) {
	s := openStore(t, Options{SegmentAge: 10 * time.Millisecond})
	tp, _ := s.Topic("t")
	appendN(t, tp, 5)
	time.Sleep(25 * time.Millisecond)
	appendN(t, tp, 5)
	v, _ := tp.View()
	if len(v.Segments) < 2 {
		t.Fatalf("expected time-based roll to create a second segment, got %d", len(v.Segments))
	}
	if got := len(readAll(t, tp, 0)); got != 10 {
		t.Fatalf("read %d records, want 10", got)
	}
}

func TestRetentionByBytes(t *testing.T) {
	s := openStore(t, Options{SegmentBytes: 256, RetainBytes: 600})
	tp, _ := s.Topic("t")
	appendN(t, tp, 100)
	if got := tp.OldestOffset(); got == 0 {
		t.Fatalf("retention did not advance the oldest offset")
	}
	oldest := tp.OldestOffset()
	recs := readAll(t, tp, oldest)
	if len(recs) == 0 || recs[0].Offset != oldest {
		t.Fatalf("tail from oldest %d returned %d records", oldest, len(recs))
	}
	if recs[len(recs)-1].Offset != 99 {
		t.Fatalf("last offset %d, want 99", recs[len(recs)-1].Offset)
	}
	// Reading below the oldest retained offset fails loudly.
	r, err := tp.ReadFrom(0)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	defer r.Close()
	if _, _, err := r.Next(); err == nil {
		t.Fatalf("tail below retention should error")
	}
}

func TestRetentionByAge(t *testing.T) {
	s := openStore(t, Options{SegmentBytes: 256, RetainAge: time.Hour})
	tp, _ := s.Topic("t")
	appendN(t, tp, 30)
	v, _ := tp.View()
	if len(v.Segments) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(v.Segments))
	}
	// Age the sealed segments beyond RetainAge.
	old := time.Now().Add(-2 * time.Hour)
	for _, g := range v.Segments[:len(v.Segments)-1] {
		if err := os.Chtimes(g.Path, old, old); err != nil {
			t.Fatalf("Chtimes: %v", err)
		}
	}
	appendN(t, tp, 30) // trigger a roll → retention pass
	for tp.NextOffset() < 200 {
		appendN(t, tp, 10)
	}
	if got := tp.OldestOffset(); got == 0 {
		t.Fatalf("age retention did not drop the aged segments")
	}
}

func TestTruncateTo(t *testing.T) {
	s := openStore(t, Options{SegmentBytes: 256})
	tp, _ := s.Topic("t")
	appendN(t, tp, 40)
	if err := tp.TruncateTo(17); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if got := tp.NextOffset(); got != 17 {
		t.Fatalf("NextOffset after truncate = %d, want 17", got)
	}
	recs := readAll(t, tp, 0)
	if len(recs) != 17 {
		t.Fatalf("read %d records after truncate, want 17", len(recs))
	}
	// Appends continue at the truncated offset.
	off, err := tp.Append(100, 1, []byte("resumed"))
	if err != nil {
		t.Fatalf("Append after truncate: %v", err)
	}
	if off != 17 {
		t.Fatalf("append after truncate got offset %d, want 17", off)
	}
	recs = readAll(t, tp, 16)
	if len(recs) != 2 || string(recs[1].Payload) != "resumed" {
		t.Fatalf("tail after re-append: %+v", recs)
	}
	// Truncating at/above next is a no-op.
	if err := tp.TruncateTo(1000); err != nil {
		t.Fatalf("TruncateTo beyond next: %v", err)
	}
	if got := tp.NextOffset(); got != 18 {
		t.Fatalf("NextOffset = %d, want 18", got)
	}
}

func TestTruncateBelowRetentionFails(t *testing.T) {
	s := openStore(t, Options{SegmentBytes: 256, RetainBytes: 600})
	tp, _ := s.Topic("t")
	appendN(t, tp, 100)
	if tp.OldestOffset() == 0 {
		t.Skip("retention did not kick in")
	}
	if err := tp.TruncateTo(0); err == nil {
		t.Fatalf("TruncateTo below oldest retained offset should fail")
	}
}

func TestRangeReaderAlignment(t *testing.T) {
	s := openStore(t, Options{IndexEvery: 64})
	tp, _ := s.Topic("t")
	appendN(t, tp, 50)
	v, _ := tp.View()
	if len(v.Segments) != 1 {
		t.Fatalf("want a single segment, got %d", len(v.Segments))
	}
	seg := v.Segments[0]

	// Reading the whole segment in two byte-range halves must partition the
	// records exactly: the frame straddling the midpoint belongs to the
	// half it starts in.
	mid := seg.Bytes / 2
	var got []Record
	for _, rng := range [][2]int64{{0, mid}, {mid, seg.Bytes}} {
		r, err := tp.OpenRange(seg.Path, rng[0], rng[1], -1)
		if err != nil {
			t.Fatalf("OpenRange%v: %v", rng, err)
		}
		for {
			rec, ok, err := r.Next()
			if err != nil {
				t.Fatalf("range Next: %v", err)
			}
			if !ok {
				break
			}
			rec.Payload = append([]byte(nil), rec.Payload...)
			got = append(got, rec)
		}
		r.Close()
	}
	if len(got) != 50 {
		t.Fatalf("two halves yielded %d records, want 50", len(got))
	}
	for i, rec := range got {
		if rec.Offset != int64(i) {
			t.Fatalf("record %d has offset %d — duplicated or skipped at the boundary", i, rec.Offset)
		}
	}
}

func TestRangeReaderResume(t *testing.T) {
	s := openStore(t, Options{IndexEvery: 64})
	tp, _ := s.Topic("t")
	appendN(t, tp, 50)
	v, _ := tp.View()
	seg := v.Segments[0]

	r, err := tp.OpenRange(seg.Path, 0, seg.Bytes, 23)
	if err != nil {
		t.Fatalf("OpenRange resume: %v", err)
	}
	defer r.Close()
	rec, ok, err := r.Next()
	if err != nil || !ok {
		t.Fatalf("Next after resume: ok=%v err=%v", ok, err)
	}
	if rec.Offset != 23 {
		t.Fatalf("resumed at offset %d, want 23", rec.Offset)
	}
	if r.Pos() != 24 {
		t.Fatalf("Pos after one read = %d, want 24", r.Pos())
	}
}

func TestViewIsFrozen(t *testing.T) {
	s := openStore(t, Options{})
	tp, _ := s.Topic("t")
	appendN(t, tp, 10)
	v, _ := tp.View()
	appendN(t, tp, 10)
	seg := v.Segments[0]
	r, err := tp.OpenRange(seg.Path, 0, seg.Bytes, -1)
	if err != nil {
		t.Fatalf("OpenRange: %v", err)
	}
	defer r.Close()
	n := 0
	for {
		_, ok, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("frozen view scan saw %d records, want the 10 visible at View time", n)
	}
}

func TestTopicNamesAndListing(t *testing.T) {
	s := openStore(t, Options{})
	for _, bad := range []string{"", "a/b", "..", "a b", "x\x00"} {
		if _, err := s.Topic(bad); err == nil {
			t.Fatalf("Topic(%q) should fail", bad)
		}
	}
	for _, good := range []string{"clicks", "a-b_c.d", "UPPER9"} {
		if _, err := s.Topic(good); err != nil {
			t.Fatalf("Topic(%q): %v", good, err)
		}
	}
	names, err := s.Topics()
	if err != nil {
		t.Fatalf("Topics: %v", err)
	}
	if len(names) != 3 || names[0] != "UPPER9" || names[1] != "a-b_c.d" || names[2] != "clicks" {
		t.Fatalf("Topics = %v", names)
	}
	// Same name returns the same cached writer.
	t1, _ := s.Topic("clicks")
	t2, _ := s.Topic("clicks")
	if t1 != t2 {
		t.Fatalf("Topic should return the cached instance")
	}
}

func TestMetricsCounters(t *testing.T) {
	s := openStore(t, Options{})
	tp, _ := s.Topic("m")
	appendN(t, tp, 20)
	readAll(t, tp, 0)
	reg := s.Metrics()
	if got := reg.Counter("topic.m.appended_records").Value(); got != 20 {
		t.Fatalf("appended_records = %d, want 20", got)
	}
	if reg.Counter("topic.m.appended_bytes").Value() == 0 {
		t.Fatalf("appended_bytes not tracked")
	}
	if got := reg.Counter("topic.m.scanned_records").Value(); got != 20 {
		t.Fatalf("scanned_records = %d, want 20", got)
	}
	if reg.Gauge("topic.m.segments").Value() != 1 {
		t.Fatalf("segments gauge = %d, want 1", reg.Gauge("topic.m.segments").Value())
	}
	if reg.Gauge("topic.m.retained_bytes").Value() == 0 {
		t.Fatalf("retained_bytes gauge not set")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncNever, FsyncAlways, FsyncInterval} {
		s := openStore(t, Options{Fsync: policy, FsyncEvery: time.Millisecond})
		tp, _ := s.Topic("t")
		appendN(t, tp, 10)
		if policy == FsyncInterval {
			time.Sleep(2 * time.Millisecond)
			appendN(t, tp, 1)
		}
		if err := tp.Sync(); err != nil {
			t.Fatalf("Sync under policy %d: %v", policy, err)
		}
	}
}

func TestEmptyTopicView(t *testing.T) {
	s := openStore(t, Options{})
	tp, _ := s.Topic("empty")
	v, err := tp.View()
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if v.Next != 0 || v.Oldest != 0 || len(v.Segments) != 1 || v.Segments[0].Bytes != 0 {
		t.Fatalf("empty view = %+v", v)
	}
	if recs := readAll(t, tp, 0); len(recs) != 0 {
		t.Fatalf("empty topic tail yielded %d records", len(recs))
	}
	// The empty segment file exists on disk so reopen finds the topic.
	if _, err := os.Stat(filepath.Join(s.Dir(), "empty", segName(0))); err != nil {
		t.Fatalf("segment file missing: %v", err)
	}
}
