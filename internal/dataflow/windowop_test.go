package dataflow

import (
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/window"
)

func newWindowOp(t *testing.T, qs ...WindowQuery) *WindowOp {
	t.Helper()
	op := NewWindowOp(qs...)().(*WindowOp)
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	return op
}

func TestWindowOpLateElementsDropped(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnRecord(Data(5, 1, 1.0), out)
	op.OnWatermark(20, out) // closes [0,10)
	// ts=7 is now late: the watermark passed it. It must not corrupt the
	// engine or resurrect the closed window.
	op.OnRecord(Data(7, 1, 100.0), out)
	op.OnWatermark(math.MaxInt64, out)
	if op.DroppedLate() != 1 {
		t.Fatalf("DroppedLate = %d, want 1", op.DroppedLate())
	}
	if len(out.recs) != 1 {
		t.Fatalf("got %d windows: %+v", len(out.recs), out.recs)
	}
	wr := out.recs[0].Value.(WindowResult)
	if wr.Value != 1 || wr.Start != 0 {
		t.Fatalf("window %+v, want [0,10) sum 1", wr)
	}
}

func TestWindowOpInOrderWithinWatermarkKept(t *testing.T) {
	// Elements between watermarks may arrive in any order; all with
	// ts > curWM must be kept and correctly ordered on release.
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.CountF64()})
	out := &collectList{}
	op.OnRecord(Data(9, 1, 1.0), out)
	op.OnRecord(Data(3, 1, 1.0), out) // out of order but not late
	op.OnRecord(Data(6, 1, 1.0), out)
	op.OnWatermark(10, out)
	if len(out.recs) != 1 {
		t.Fatalf("got %d windows", len(out.recs))
	}
	if wr := out.recs[0].Value.(WindowResult); wr.Count != 3 {
		t.Fatalf("count = %d, want 3", wr.Count)
	}
	if op.DroppedLate() != 0 {
		t.Fatalf("dropped %d in-time elements", op.DroppedLate())
	}
}

func TestWindowOpNonFloatValuesIgnored(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnRecord(Data(1, 1, "not a float"), out)
	op.OnRecord(Data(2, 1, 42), out) // int, not float64
	op.OnWatermark(math.MaxInt64, out)
	if len(out.recs) != 0 {
		t.Fatalf("non-float values produced windows: %+v", out.recs)
	}
}

func TestWindowOpSnapshotCarriesBufferAndWatermark(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnWatermark(5, out)
	op.OnRecord(Data(7, 2, 3.0), out) // buffered, not yet released
	groups := captureGroups(t, op)
	restored := NewWindowOp(WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})().(*WindowOp)
	if err := restored.Open(&OpContext{RestoreGroups: groups}); err != nil {
		t.Fatal(err)
	}
	// The release watermark travels per key group: ts=4 is late for the
	// restored operator exactly as it was for the original.
	restored.OnRecord(Data(4, 2, 99.0), out)
	if restored.DroppedLate() != 1 {
		t.Fatalf("restored op lost the release watermark: DroppedLate = %d", restored.DroppedLate())
	}
	restored.OnWatermark(math.MaxInt64, out)
	if len(out.recs) != 1 {
		t.Fatalf("restored op lost the buffered record: %+v", out.recs)
	}
	if wr := out.recs[0].Value.(WindowResult); wr.Value != 3 {
		t.Fatalf("window %+v", wr)
	}
}

// TestWindowOpCaptureImmutableWhileProcessing pins the copy-on-write
// contract on the hardest cell: a capture is taken, the operator keeps
// processing (mutating engines and buffers in place) before the capture is
// serialized — the blobs must reflect the state at capture time exactly.
func TestWindowOpCaptureImmutableWhileProcessing(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnRecord(Data(1, 1, 1.0), out)
	op.OnRecord(Data(2, 1, 2.0), out)
	op.OnWatermark(5, out) // engine for key 1 now holds sum 3 in window [0,10)

	captured := op.KeyedState().Capture()
	// Keep processing while the capture is outstanding: more elements into
	// the same key's engine and a new key entirely.
	op.OnRecord(Data(7, 1, 100.0), out)
	op.OnRecord(Data(8, 2, 50.0), out)
	op.OnWatermark(9, out)
	groups, err := captured.EncodeGroups()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewWindowOp(WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})().(*WindowOp)
	if err := restored.Open(&OpContext{RestoreGroups: groups}); err != nil {
		t.Fatal(err)
	}
	rout := &collectList{}
	restored.Finish(rout)
	if len(rout.recs) != 1 {
		t.Fatalf("restored op fired %d windows, want 1: %+v", len(rout.recs), rout.recs)
	}
	wr := rout.recs[0].Value.(WindowResult)
	if wr.Value != 3 || rout.recs[0].Key != 1 {
		t.Fatalf("capture leaked post-capture processing: window %+v (key %d), want sum 3 for key 1", wr, rout.recs[0].Key)
	}

	// The live operator, meanwhile, has everything.
	op.Finish(out)
	got := map[uint64]float64{}
	for _, r := range out.recs {
		got[r.Key] += r.Value.(WindowResult).Value
	}
	if got[1] != 103 || got[2] != 50 {
		t.Fatalf("live op results = %v, want key1=103 key2=50", got)
	}
}

// TestWindowOpCaptureSurvivesBufferReuse is the regression test for the
// aliased-Put corruption: OnWatermark keeps a buffer remainder whose
// backing array the next OnRecord appends into, and the subsequent
// release sort must not reorder memory a capture still references.
func TestWindowOpCaptureSurvivesBufferReuse(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnRecord(Data(5, 1, 10.0), out)
	op.OnRecord(Data(9, 1, 30.0), out)
	op.OnWatermark(7, out) // releases ts=5; remainder [{9,30}] keeps spare capacity

	captured := op.KeyedState().Capture()
	op.OnRecord(Data(8, 1, 1000.0), out) // appends into the remainder's backing array
	op.OnWatermark(9, out)               // sorts + releases — must not touch the captured view
	groups, err := captured.EncodeGroups()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewWindowOp(WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})().(*WindowOp)
	if err := restored.Open(&OpContext{RestoreGroups: groups}); err != nil {
		t.Fatal(err)
	}
	rout := &collectList{}
	restored.Finish(rout)
	// Capture-time state: engine holds ts5 (sum 10), buffer holds {9,30} —
	// the restored window must sum to 40, untouched by the post-capture 1000.
	if len(rout.recs) != 1 {
		t.Fatalf("restored op fired %d windows, want 1: %+v", len(rout.recs), rout.recs)
	}
	if wr := rout.recs[0].Value.(WindowResult); wr.Value != 40 {
		t.Fatalf("captured state corrupted by post-capture buffer reuse: window sum %v, want 40", wr.Value)
	}
}
