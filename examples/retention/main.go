// Customer retention — the first STREAMLINE application. User activity
// events are sessionized with Cutty session windows (the canonical
// non-periodic window the paper highlights); per-session engagement feeds a
// simple churn signal: users whose session engagement declines are the
// at-risk cohort.
//
//	go run ./examples/retention
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/window"
	"repro/internal/workloads"
)

func main() {
	const users = 40
	gen := workloads.Sessions{
		Seed: 11, Users: users, PerSec: 1000,
		MeanSession: 8, GapMs: 20_000, SessionGapMs: 800,
	}

	env := core.NewEnvironment(core.WithParallelism(2))
	sessions := env.FromGenerator("activity", 1, 40_000, func(sub, par int, i int64) dataflow.Record {
		e := gen.At(i)
		return dataflow.Data(e.Ts, e.Key, e.Value)
	}).
		KeyBy("user", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("sessions",
			// Mean engagement and event count per session (gap 5s):
			// both queries share one slice store per key.
			core.WindowedQuery{Window: window.Session(5000), Fn: agg.AvgF64()},
			core.WindowedQuery{Window: window.Session(5000), Fn: agg.CountF64()},
		).
		Collect("out")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Churn signal: compare each user's first and last session engagement.
	type sess struct {
		start int64
		avg   float64
	}
	perUser := map[uint64][]sess{}
	for _, r := range sessions.Records() {
		wr := r.Value.(dataflow.WindowResult)
		if wr.QueryID != 0 { // engagement query
			continue
		}
		perUser[r.Key] = append(perUser[r.Key], sess{start: wr.Start, avg: wr.Value})
	}
	var atRisk, healthy []uint64
	for user, ss := range perUser {
		sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
		if len(ss) < 2 {
			continue
		}
		if ss[len(ss)-1].avg < ss[0].avg*0.7 {
			atRisk = append(atRisk, user)
		} else {
			healthy = append(healthy, user)
		}
	}
	sort.Slice(atRisk, func(i, j int) bool { return atRisk[i] < atRisk[j] })
	total := 0
	for _, ss := range perUser {
		total += len(ss)
	}
	fmt.Printf("users analysed: %d, sessions: %d\n", len(perUser), total)
	fmt.Printf("at-risk (declining engagement): %d users %v...\n", len(atRisk), head(atRisk, 8))
	fmt.Printf("healthy: %d users\n", len(healthy))
}

func head(xs []uint64, k int) []uint64 {
	if len(xs) > k {
		return xs[:k]
	}
	return xs
}
