package seglog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Topic is one append-only log: a directory of segments with a single
// writer (this value) and any number of concurrent readers. All methods are
// safe for concurrent use; appends serialize on the topic lock, reads of
// sealed bytes proceed without it.
type Topic struct {
	store *Store
	name  string
	dir   string
	opts  Options

	mu     sync.Mutex
	closed bool
	segs   []*segment // ascending base; the last one is active
	next   int64      // offset the next append receives

	// active-segment writer state
	f           *os.File
	w           *bufio.Writer
	size        int64 // bytes appended to the active segment (buffered included)
	flushed     int64 // frame-boundary bytes visible to readers
	flushedNext int64 // logical offset bound of visible records (== next at last flush)
	lastIdxPos  int64 // position of the newest index entry (-1: none yet)
	openedAt    time.Time
	lastSync    time.Time
	frame       []byte // append scratch

	// per-topic observability (the store's registry)
	mAppB, mAppR   *metrics.Counter
	mScanB, mScanR *metrics.Counter
	mSegs, mRetB   *metrics.Gauge
}

// openTopic opens the topic directory, recovering the last segment's torn
// tail if the previous writer crashed mid-append. Called under the store
// lock, once per (store, name).
func openTopic(s *Store, name string) (*Topic, error) {
	dir := s.topicDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seglog: topic %q: %w", name, err)
	}
	t := &Topic{
		store:      s,
		name:       name,
		dir:        dir,
		opts:       s.opts,
		lastIdxPos: -1,
		mAppB:      s.reg.Counter("topic." + name + ".appended_bytes"),
		mAppR:      s.reg.Counter("topic." + name + ".appended_records"),
		mScanB:     s.reg.Counter("topic." + name + ".scanned_bytes"),
		mScanR:     s.reg.Counter("topic." + name + ".scanned_records"),
		mSegs:      s.reg.Gauge("topic." + name + ".segments"),
		mRetB:      s.reg.Gauge("topic." + name + ".retained_bytes"),
	}
	bases, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("seglog: topic %q: %w", name, err)
	}
	if len(bases) == 0 {
		bases = []int64{0}
		if err := os.WriteFile(segPath(dir, 0), nil, 0o644); err != nil {
			return nil, fmt.Errorf("seglog: topic %q: %w", name, err)
		}
	}
	for i, base := range bases {
		g := &segment{base: base, path: segPath(dir, base)}
		if i < len(bases)-1 {
			// Sealed segment: sizes from the filesystem, record count from
			// the next base (bases were assigned at roll time), index from
			// its validated .idx file.
			st, err := os.Stat(g.path)
			if err != nil {
				return nil, fmt.Errorf("seglog: topic %q: %w", name, err)
			}
			g.size = st.Size()
			g.records = bases[i+1] - base
			if g.records < 0 {
				return nil, fmt.Errorf("seglog: topic %q: segment bases %d and %d out of order", name, base, bases[i+1])
			}
			g.idx = loadIndex(g)
		} else {
			// Active (last) segment: crash recovery. Scan every frame from
			// the start; the first torn one truncates the file to the last
			// valid record, and the index is rebuilt from the scan — a
			// partially written index file is replaced wholesale.
			valid, records, idx, err := recoverSegment(g.path, base, t.opts.indexEvery())
			if err != nil {
				return nil, fmt.Errorf("seglog: topic %q: recover %s: %w", name, g.path, err)
			}
			if st, serr := os.Stat(g.path); serr == nil && st.Size() > valid {
				if err := os.Truncate(g.path, valid); err != nil {
					return nil, fmt.Errorf("seglog: topic %q: truncate torn tail: %w", name, err)
				}
			}
			g.size = valid
			g.idx = idx
			if err := writeIndex(g); err != nil {
				return nil, fmt.Errorf("seglog: topic %q: %w", name, err)
			}
			t.next = base + records
			t.size = valid
			t.flushed = valid
			if n := len(idx); n > 0 {
				t.lastIdxPos = idx[n-1].Pos
			}
		}
		t.segs = append(t.segs, g)
	}
	t.flushedNext = t.next
	if err := t.openWriter(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.retentionLocked()
	t.updateGaugesLocked()
	t.mu.Unlock()
	return t, nil
}

// openWriter (re)opens the write handle on the active segment, positioned
// at its valid end.
func (t *Topic) openWriter() error {
	g := t.active()
	f, err := os.OpenFile(g.path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	if _, err := f.Seek(t.size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	t.f = f
	if t.w == nil {
		t.w = bufio.NewWriterSize(f, 256<<10)
	} else {
		t.w.Reset(f)
	}
	t.openedAt = time.Now()
	t.lastSync = time.Now()
	return nil
}

func (t *Topic) active() *segment { return t.segs[len(t.segs)-1] }

// Name returns the topic's name.
func (t *Topic) Name() string { return t.name }

// Append writes one record and returns its logical offset. The record
// becomes durable according to the store's fsync policy; it becomes visible
// to readers at the next Flush/Sync (or when the writer's buffer fills a
// whole frame boundary behind a later append's flush).
func (t *Topic) Append(ts int64, key uint64, payload []byte) (int64, error) {
	if int64(len(payload)) > MaxRecordBytes {
		return 0, fmt.Errorf("seglog: topic %q: payload of %d bytes exceeds %d", t.name, len(payload), MaxRecordBytes)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, fmt.Errorf("seglog: topic %q is closed", t.name)
	}
	// Time-based roll first, so a long-idle topic starts a fresh segment
	// instead of extending a stale one.
	if t.opts.SegmentAge > 0 && t.size > 0 && time.Since(t.openedAt) >= t.opts.SegmentAge {
		if err := t.rollLocked(); err != nil {
			return 0, err
		}
	}
	g := t.active()
	if t.lastIdxPos < 0 || t.size-t.lastIdxPos >= t.opts.indexEvery() {
		g.idx = append(g.idx, indexEntry{Off: t.next, Pos: t.size})
		t.lastIdxPos = t.size
		var e8 [idxEntryBytes]byte
		binary.LittleEndian.PutUint64(e8[0:8], uint64(t.next))
		binary.LittleEndian.PutUint64(e8[8:16], uint64(t.size))
		if err := appendFile(g.idxPath(), e8[:]); err != nil {
			return 0, fmt.Errorf("seglog: topic %q: index: %w", t.name, err)
		}
	}
	t.frame = appendFrame(t.frame[:0], ts, key, payload)
	if _, err := t.w.Write(t.frame); err != nil {
		return 0, fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	off := t.next
	t.next++
	t.size += int64(len(t.frame))
	t.mAppR.Inc()
	t.mAppB.Add(int64(len(t.frame)))
	t.mRetB.Set(t.totalBytesLocked())
	switch t.opts.Fsync {
	case FsyncAlways:
		if err := t.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncInterval:
		if time.Since(t.lastSync) >= t.opts.fsyncEvery() {
			if err := t.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	if t.size >= t.opts.segmentBytes() {
		if err := t.rollLocked(); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// appendFile appends raw bytes to a file, creating it if needed. Index
// writes go through here: they are tiny, rare (one per IndexEvery bytes of
// frames) and advisory, so a plain O_APPEND write keeps the writer state
// simple.
func appendFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// flushLocked pushes buffered frames to the OS and advances the visible
// watermark. Called only between appends, so the watermark always lands on
// a frame boundary.
func (t *Topic) flushLocked() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	t.flushed = t.size
	t.flushedNext = t.next
	return nil
}

// syncLocked flushes and fsyncs the active segment.
func (t *Topic) syncLocked() error {
	if err := t.flushLocked(); err != nil {
		return err
	}
	if err := t.f.Sync(); err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	t.lastSync = time.Now()
	return nil
}

// rollLocked seals the active segment (flush + fsync + close) and starts a
// fresh one at the current next offset, then applies retention.
func (t *Topic) rollLocked() error {
	if err := t.syncLocked(); err != nil {
		return err
	}
	g := t.active()
	if err := t.f.Close(); err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	g.size = t.size
	g.records = t.next - g.base
	fresh := &segment{base: t.next, path: segPath(t.dir, t.next)}
	if err := os.WriteFile(fresh.path, nil, 0o644); err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	t.segs = append(t.segs, fresh)
	t.size, t.flushed, t.lastIdxPos = 0, 0, -1
	if err := t.openWriter(); err != nil {
		return err
	}
	t.retentionLocked()
	t.updateGaugesLocked()
	return nil
}

// retentionLocked deletes the oldest sealed segments while the topic
// exceeds RetainBytes, or while they are older than RetainAge (by segment
// file modification time — the time their newest record was written). The
// active segment is never deleted. Deletion errors are swallowed: a
// lingering file retries at the next roll.
func (t *Topic) retentionLocked() {
	for len(t.segs) > 1 {
		oldest := t.segs[0]
		drop := false
		if t.opts.RetainBytes > 0 && t.totalBytesLocked() > t.opts.RetainBytes {
			drop = true
		}
		if !drop && t.opts.RetainAge > 0 {
			if st, err := os.Stat(oldest.path); err == nil && time.Since(st.ModTime()) > t.opts.RetainAge {
				drop = true
			}
		}
		if !drop {
			break
		}
		_ = removeSegment(oldest)
		t.segs = t.segs[1:]
	}
}

// totalBytesLocked sums the topic's retained bytes (active included).
func (t *Topic) totalBytesLocked() int64 {
	var n int64
	for i, g := range t.segs {
		if i == len(t.segs)-1 {
			n += t.size
		} else {
			n += g.size
		}
	}
	return n
}

func (t *Topic) updateGaugesLocked() {
	t.mSegs.Set(int64(len(t.segs)))
	t.mRetB.Set(t.totalBytesLocked())
}

// Flush makes every appended record visible to readers (buffered frames
// are pushed to the OS). Durability still follows the fsync policy.
func (t *Topic) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("seglog: topic %q is closed", t.name)
	}
	return t.flushLocked()
}

// Sync flushes and fsyncs the topic — after it returns, every appended
// record survives a crash. Checkpoint sinks call this before recording
// their high-water offset, which is what makes the no-double-append restore
// contract sound under FsyncNever.
func (t *Topic) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("seglog: topic %q is closed", t.name)
	}
	return t.syncLocked()
}

// NextOffset returns the offset the next append will receive (the
// exclusive high-water mark).
func (t *Topic) NextOffset() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// OldestOffset returns the first offset still retained.
func (t *Topic) OldestOffset() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.segs[0].base
}

// SegmentInfo describes one retained segment at a frozen point in time.
type SegmentInfo struct {
	Path    string
	Base    int64 // logical offset of the first record
	Bytes   int64 // valid (visible) byte size
	Records int64 // record count (Next-Base for the active segment)
	Sealed  bool
}

// View is a frozen read view of a topic: the retained segments with their
// visible sizes, and the offset bounds. Scans planned over a View stay
// valid while the topic keeps appending — the active segment's growth past
// Bytes is simply not part of the view.
type View struct {
	Segments []SegmentInfo
	Oldest   int64 // first retained offset
	Next     int64 // offset after the last visible record
}

// View flushes buffered appends and returns a frozen read view.
func (t *Topic) View() (View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return View{}, fmt.Errorf("seglog: topic %q is closed", t.name)
	}
	if err := t.flushLocked(); err != nil {
		return View{}, err
	}
	v := View{Oldest: t.segs[0].base, Next: t.next}
	for i, g := range t.segs {
		info := SegmentInfo{Path: g.path, Base: g.base, Bytes: g.size, Records: g.records, Sealed: true}
		if i == len(t.segs)-1 {
			info.Bytes = t.flushed
			info.Records = t.next - g.base
			info.Sealed = false
		}
		v.Segments = append(v.Segments, info)
	}
	return v, nil
}

// TruncateTo discards every record at or beyond off, making off the next
// offset to be assigned — the restore hook of checkpoint-integrated sinks:
// truncating to the checkpointed high-water offset before replay guarantees
// the restored job never double-appends. Truncating below the oldest
// retained offset fails (those records are gone; nothing sound can replay
// over them). Concurrent readers of the truncated tail will surface
// checksum errors — the topic has one writer, and restore runs before the
// job's readers start.
func (t *Topic) TruncateTo(off int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("seglog: topic %q is closed", t.name)
	}
	if off >= t.next {
		return nil
	}
	if off < t.segs[0].base {
		return fmt.Errorf("seglog: topic %q: cannot truncate to %d: oldest retained offset is %d (retention already dropped that range)", t.name, off, t.segs[0].base)
	}
	if err := t.flushLocked(); err != nil {
		return err
	}
	if err := t.f.Close(); err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	// Drop whole segments past the target.
	keep := 0
	for i, g := range t.segs {
		if g.base <= off {
			keep = i
		}
	}
	// Valid size of the target segment: the byte watermark if it is the
	// (old) active one, its sealed size otherwise.
	validSize := t.segs[keep].size
	if keep == len(t.segs)-1 {
		validSize = t.flushed
	}
	for _, g := range t.segs[keep+1:] {
		_ = removeSegment(g)
	}
	t.segs = t.segs[:keep+1]
	g := t.active()
	// Locate the byte position of off inside the now-active segment and cut
	// there.
	pos, err := t.posOfLocked(g, off, validSize)
	if err != nil {
		return err
	}
	if err := os.Truncate(g.path, pos); err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	n := 0
	for _, e := range g.idx {
		if e.Off < off && e.Pos < pos {
			n++
		} else {
			break
		}
	}
	g.idx = g.idx[:n]
	if err := writeIndex(g); err != nil {
		return fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	t.next = off
	t.flushedNext = off
	t.size, t.flushed = pos, pos
	g.size, g.records = pos, 0
	t.lastIdxPos = -1
	if n > 0 {
		t.lastIdxPos = g.idx[n-1].Pos
	}
	if err := t.openWriter(); err != nil {
		return err
	}
	if err := t.syncLocked(); err != nil {
		return err
	}
	t.updateGaugesLocked()
	return nil
}

// posOfLocked scans from the nearest index entry to the byte position of
// the frame holding logical offset off within segment g, whose valid byte
// size the caller supplies (off == the segment's end offset yields size).
func (t *Topic) posOfLocked(g *segment, off, size int64) (int64, error) {
	e := g.seekEntryOff(off)
	f, err := os.Open(g.path)
	if err != nil {
		return 0, fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	defer f.Close()
	if _, err := f.Seek(e.Pos, io.SeekStart); err != nil {
		return 0, fmt.Errorf("seglog: topic %q: %w", t.name, err)
	}
	sc := newFrameScanner(f, e.Pos)
	cur := e.Off
	for cur < off {
		if sc.pos >= size {
			return 0, fmt.Errorf("seglog: topic %q: offset %d not found in %s", t.name, off, g.path)
		}
		if _, _, _, ok, err := sc.next(); err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("unexpected end of segment")
			}
			return 0, fmt.Errorf("seglog: topic %q: locate offset %d: %w", t.name, off, err)
		}
		cur++
	}
	return sc.pos, nil
}

// close syncs and closes the topic's writer (store Close path).
func (t *Topic) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	err := t.syncLocked()
	if cerr := t.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	t.closed = true
	return err
}

// segmentByPath resolves a segment by its file path plus the frozen valid
// size readers may consume, copying the index so readers iterate without
// the lock.
func (t *Topic) segmentByPath(path string) (seg segment, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, g := range t.segs {
		if g.path == path {
			seg = segment{base: g.base, path: g.path, size: g.size, records: g.records}
			if i == len(t.segs)-1 {
				seg.size = t.flushed
			}
			seg.idx = append([]indexEntry(nil), g.idx...)
			return seg, true
		}
	}
	return segment{}, false
}

// tailView reports the segment holding logical offset off (a copy with its
// index, so the reader iterates without the lock), for the tail reader.
// Only flushed records count as visible: ok=false when off is at or past
// the visible head; an error when off was already dropped by retention.
func (t *Topic) tailView(off int64) (seg segment, ok bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if off >= t.flushedNext {
		return segment{}, false, nil
	}
	if off < t.segs[0].base {
		return segment{}, false, fmt.Errorf("seglog: topic %q: offset %d already dropped by retention (oldest is %d)", t.name, off, t.segs[0].base)
	}
	idx := len(t.segs) - 1
	for i, g := range t.segs {
		last := t.flushedNext
		if i < len(t.segs)-1 {
			last = g.base + g.records
		}
		if off >= g.base && off < last {
			idx = i
			break
		}
	}
	g := t.segs[idx]
	seg = segment{base: g.base, path: g.path, size: g.size, records: g.records}
	seg.idx = append([]indexEntry(nil), g.idx...)
	if idx == len(t.segs)-1 {
		seg.size = t.flushed
	}
	return seg, true, nil
}

// visibleState reports the visibility watermarks and the active segment's
// base, cheaply (no index copy) — the tail reader's fast-path check.
func (t *Topic) visibleState() (flushed, flushedNext, activeBase int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushed, t.flushedNext, t.active().base
}

// scanned feeds the per-topic read counters (called by readers).
func (t *Topic) scanned(records, bytes int64) {
	if records != 0 {
		t.mScanR.Add(records)
	}
	if bytes != 0 {
		t.mScanB.Add(bytes)
	}
}
