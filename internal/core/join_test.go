package core

import (
	"context"
	"testing"

	"repro/internal/dataflow"
)

func TestJoinWindowThroughCore(t *testing.T) {
	env := NewEnvironment(WithParallelism(2))
	impressions := env.FromGenerator("imps", 1, 90, func(sub, par int, i int64) dataflow.Record {
		return dataflow.Data(i, uint64(i%3), float64(1))
	}).KeyBy("k", func(r dataflow.Record) uint64 { return r.Key })
	costs := env.FromGenerator("costs", 1, 30, func(sub, par int, i int64) dataflow.Record {
		return dataflow.Data(i*3, uint64(i%3), float64(2))
	}).KeyBy("k", func(r dataflow.Record) uint64 { return r.Key })

	sink := impressions.JoinWindow("join", costs, 30).Collect("out")
	execute(t, env)

	// Per window [w, w+30) and key k: lefts = 10 (30 ts, every 3rd key),
	// rights = #i with i*3 in window and i%3==k.
	count := 0
	for _, r := range sink.Records() {
		p := r.Value.(dataflow.JoinedPair)
		if p.Left != 1 || p.Right != 2 {
			t.Fatalf("bad pair %+v", p)
		}
		count++
	}
	// Exact expectation: 3 windows x 3 keys; lefts per (w,k) = 10;
	// rights per (w,k): i in [w/3,(w+30)/3) with i%3==k -> 10/3 ≈ 3 or 4.
	want := 0
	for w := int64(0); w < 90; w += 30 {
		for k := uint64(0); k < 3; k++ {
			l, rr := 0, 0
			for i := int64(0); i < 90; i++ {
				if i >= w && i < w+30 && uint64(i%3) == k {
					l++
				}
			}
			for i := int64(0); i < 30; i++ {
				if i*3 >= w && i*3 < w+30 && uint64(i%3) == k {
					rr++
				}
			}
			want += l * rr
		}
	}
	if count != want {
		t.Fatalf("joined %d pairs, want %d", count, want)
	}
}

func TestJoinWindowRequiresKeyed(t *testing.T) {
	env := NewEnvironment()
	a := env.FromRecords("a", genRecords(10))
	b := env.FromRecords("b", genRecords(10))
	a.JoinWindow("j", b, 10)
	if err := env.Execute(context.Background()); err == nil {
		t.Fatalf("unkeyed join must fail at build")
	}
}
