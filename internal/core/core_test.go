package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/dataflow"
	"repro/internal/state"
	"repro/internal/window"
)

func execute(t *testing.T, env *Environment) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.Execute(ctx); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

func genRecords(n int) []dataflow.Record {
	recs := make([]dataflow.Record, n)
	for i := range recs {
		recs[i] = dataflow.Data(int64(i), uint64(i%5), float64(i))
	}
	return recs
}

func TestBatchWordCountStyle(t *testing.T) {
	env := NewEnvironment(WithParallelism(2))
	sink := env.FromRecords("src", genRecords(100)).
		Map("inc", func(r dataflow.Record) dataflow.Record {
			r.Value = r.Value.(float64) + 0
			return r
		}).
		KeyBy("key", func(r dataflow.Record) uint64 { return r.Key }).
		ReduceByKey("sum", func(acc, v float64) float64 { return acc + v }, false).
		Collect("out")
	execute(t, env)

	got := map[uint64]float64{}
	for _, r := range sink.Records() {
		got[r.Key] += r.Value.(float64)
	}
	want := map[uint64]float64{}
	for i := 0; i < 100; i++ {
		want[uint64(i%5)] += float64(i)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %d = %v, want %v", k, got[k], w)
		}
	}
}

// The unified-model property (the paper's central premise): the identical
// pipeline produces identical results whether the input is a bounded
// collection or a generator-driven stream.
func TestBatchStreamEquivalence(t *testing.T) {
	build := func(fromGen bool) map[uint64]float64 {
		env := NewEnvironment(WithParallelism(2))
		var s *Stream
		if fromGen {
			s = env.FromGenerator("gen", 2, 200, func(sub, par int, i int64) dataflow.Record {
				global := i*int64(par) + int64(sub)
				return dataflow.Data(global, uint64(global%5), float64(global))
			})
		} else {
			s = env.FromRecords("slice", genRecords(200))
		}
		sink := s.
			KeyBy("key", func(r dataflow.Record) uint64 { return r.Key }).
			ReduceByKey("sum", func(acc, v float64) float64 { return acc + v }, false).
			Collect("out")
		execute(t, env)
		got := map[uint64]float64{}
		for _, r := range sink.Records() {
			got[r.Key] += r.Value.(float64)
		}
		return got
	}
	batch := build(false)
	stream := build(true)
	if len(batch) != len(stream) {
		t.Fatalf("key counts differ: %d vs %d", len(batch), len(stream))
	}
	for k, v := range batch {
		if stream[k] != v {
			t.Fatalf("key %d: batch %v, stream %v", k, v, stream[k])
		}
	}
}

func TestWindowAggregateMultiQuery(t *testing.T) {
	env := NewEnvironment(WithParallelism(2))
	sink := env.FromGenerator("gen", 1, 300, func(sub, par int, i int64) dataflow.Record {
		return dataflow.Data(i, uint64(i%2), float64(1))
	}).
		KeyBy("key", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("win",
			WindowedQuery{Window: window.Tumbling(30), Fn: agg.SumF64()},
			WindowedQuery{Window: window.Sliding(60, 30), Fn: agg.CountF64()},
		).
		Collect("out")
	execute(t, env)

	perQuery := map[int]int{}
	for _, r := range sink.Records() {
		wr := r.Value.(dataflow.WindowResult)
		perQuery[wr.QueryID]++
		switch wr.QueryID {
		case 0:
			if wr.Value != 15 { // 30 ticks alternating 2 keys -> 15 each
				t.Fatalf("tumbling sum = %v, want 15 (%+v)", wr.Value, wr)
			}
		case 1:
			if wr.Count != 30 && wr.Count != 15 { // full or edge window per key
				t.Fatalf("sliding count = %d (%+v)", wr.Count, wr)
			}
		}
	}
	if perQuery[0] == 0 || perQuery[1] == 0 {
		t.Fatalf("both queries must produce windows: %v", perQuery)
	}
}

func TestWindowAggregateRequiresKeyed(t *testing.T) {
	env := NewEnvironment()
	env.FromRecords("src", genRecords(10)).
		WindowAggregate("win", WindowedQuery{Window: window.Tumbling(5), Fn: agg.SumF64()})
	if err := env.Execute(context.Background()); err == nil {
		t.Fatalf("unkeyed WindowAggregate must fail at build")
	}
}

func TestWindowAggregateRequiresQueries(t *testing.T) {
	env := NewEnvironment()
	env.FromRecords("src", genRecords(10)).
		KeyBy("k", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("win")
	if err := env.Execute(context.Background()); err == nil {
		t.Fatalf("WindowAggregate without queries must fail at build")
	}
}

// Combiner correctness: all three modes must agree.
func TestCombinerModesAgree(t *testing.T) {
	results := map[CombinerMode]map[uint64]float64{}
	for _, mode := range []CombinerMode{CombinerOff, CombinerOn, CombinerAuto} {
		env := NewEnvironment(WithParallelism(2), WithCombiner(mode))
		sink := env.FromRecords("src", genRecords(500)).
			KeyBy("key", func(r dataflow.Record) uint64 { return r.Key }).
			ReduceByKey("sum", func(acc, v float64) float64 { return acc + v }, false).
			Collect("out")
		execute(t, env)
		got := map[uint64]float64{}
		for _, r := range sink.Records() {
			got[r.Key] += r.Value.(float64)
		}
		results[mode] = got
	}
	for k, v := range results[CombinerOff] {
		if results[CombinerOn][k] != v || results[CombinerAuto][k] != v {
			t.Fatalf("key %d: off=%v on=%v auto=%v", k, v, results[CombinerOn][k], results[CombinerAuto][k])
		}
	}
}

// Adaptive combiner decision: skewed keys -> enabled, unique keys -> disabled.
func TestCombinerAdaptiveDecision(t *testing.T) {
	runSample := func(gen func(i int) dataflow.Record) bool {
		c := &CombinerOp{F: func(a, v float64) float64 { return a + v }, Adaptive: true}
		if err := c.Open(&dataflow.OpContext{}); err != nil {
			t.Fatal(err)
		}
		sinkDrop := collectorFunc(func(dataflow.Record) {})
		for i := 0; i < combinerSampleSize+10; i++ {
			c.OnRecord(gen(i), sinkDrop)
		}
		return c.Enabled()
	}
	rng := rand.New(rand.NewSource(3))
	skewed := runSample(func(i int) dataflow.Record {
		return dataflow.Data(int64(i), uint64(rng.Intn(8)), 1.0)
	})
	unique := runSample(func(i int) dataflow.Record {
		return dataflow.Data(int64(i), uint64(i), 1.0)
	})
	if !skewed {
		t.Fatalf("combiner should enable on skewed keys")
	}
	if unique {
		t.Fatalf("combiner should disable on unique keys")
	}
}

type collectorFunc func(dataflow.Record)

func (f collectorFunc) Collect(r dataflow.Record) { f(r) }

func TestUnionMergesStreams(t *testing.T) {
	env := NewEnvironment(WithParallelism(1))
	a := env.FromRecords("a", genRecords(30))
	b := env.FromRecords("b", genRecords(40))
	sink := a.Union("u", b).Collect("out")
	execute(t, env)
	if got := len(sink.Records()); got != 70 {
		t.Fatalf("union saw %d records, want 70", got)
	}
}

func TestSinkFunc(t *testing.T) {
	env := NewEnvironment(WithParallelism(1))
	var n int
	env.FromRecords("src", genRecords(25)).Sink("count", func(dataflow.Record) { n++ })
	execute(t, env)
	if n != 25 {
		t.Fatalf("sink saw %d records", n)
	}
}

func TestCheckpointingThroughCoreAPI(t *testing.T) {
	backend := state.NewMemoryBackend(0)
	env := NewEnvironment(WithParallelism(1), WithCheckpointing(backend, 20*time.Millisecond))
	sink := env.FromPacedGenerator("gen", 1, 3000, 15000, func(sub, par int, i int64) dataflow.Record {
		return dataflow.Data(i, uint64(i%3), float64(1))
	}).
		KeyBy("key", func(r dataflow.Record) uint64 { return r.Key }).
		ReduceByKey("sum", func(acc, v float64) float64 { return acc + v }, false).
		Collect("out")
	execute(t, env)
	if env.CompletedCheckpoints() == 0 {
		t.Fatalf("no checkpoints completed")
	}
	if len(sink.Records()) == 0 {
		t.Fatalf("no output")
	}
	if _, ok, _ := backend.Latest(); !ok {
		t.Fatalf("backend empty")
	}
}

func TestEnvironmentDefaults(t *testing.T) {
	env := NewEnvironment()
	if env.parallelism < 1 || env.parallelism > 4 {
		t.Fatalf("default parallelism = %d, want within [1,4]", env.parallelism)
	}
	if !env.chaining {
		t.Fatalf("chaining should default on")
	}
	if env.combiner != CombinerAuto {
		t.Fatalf("combiner should default to auto")
	}
}

func TestFilterFlatMapThroughCore(t *testing.T) {
	env := NewEnvironment(WithParallelism(1))
	sink := env.FromRecords("src", genRecords(60)).
		Filter("odd", func(r dataflow.Record) bool { return int64(r.Value.(float64))%2 == 1 }).
		FlatMap("triple", func(r dataflow.Record, out dataflow.Collector) {
			for k := 0; k < 3; k++ {
				out.Collect(r)
			}
		}).
		Collect("out")
	execute(t, env)
	if got := len(sink.Records()); got != 90 { // 30 odds * 3
		t.Fatalf("got %d records, want 90", got)
	}
}
