// Multilingual Web processing — the fourth STREAMLINE application: the
// same pipeline classifies documents by language and counts per-language
// volume, first over a document collection at rest, then over a document
// stream in motion. The two runs share every operator — and on the typed
// API both are a Stream[string] end to end.
//
//	go run ./examples/weblang
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/lang"
	"repro/streamline"
)

func main() {
	detector := lang.DefaultDetector()
	samples := lang.SampleSentences()
	langs := detector.Languages()

	// A deterministic "web crawl": 3000 documents in mixed languages.
	rng := rand.New(rand.NewSource(67))
	docs := make([]string, 3000)
	truth := make([]string, len(docs))
	for i := range docs {
		l := langs[rng.Intn(len(langs))]
		truth[i] = l
		docs[i] = samples[l][rng.Intn(len(samples[l]))]
	}

	runPipeline := func(src *streamline.Stream[string], env *streamline.Env) map[string]int {
		perLang := map[string]int{}
		detected := streamline.Map(src, "detect", func(doc string) string {
			l, _ := detector.Detect(doc)
			return l
		})
		byLang := streamline.KeyByString(detected, "lang", func(l string) string { return l })
		streamline.Sink(byLang, "count", func(k streamline.Keyed[string]) {
			perLang[k.Value]++
		})
		if err := env.Execute(context.Background()); err != nil {
			log.Fatal(err)
		}
		return perLang
	}

	// Data at rest: the crawl as a bounded collection.
	envB := streamline.New(streamline.WithParallelism(1))
	atRest := runPipeline(streamline.From(envB, "crawl", streamline.Slice(docs)), envB)

	// Data in motion: the same documents as a stream.
	envS := streamline.New(streamline.WithParallelism(1))
	feed := streamline.From(envS, "feed", streamline.Generator(int64(len(docs)),
		func(sub, par int, i int64) streamline.Keyed[string] {
			return streamline.Keyed[string]{Ts: i, Value: docs[i]}
		}), streamline.WithSourceParallelism(1))
	inMotion := runPipeline(feed, envS)

	// Both runs must agree (unified model), and match ground truth.
	keys := make([]string, 0, len(atRest))
	for l := range atRest {
		keys = append(keys, l)
	}
	sort.Strings(keys)
	fmt.Println("language     batch  stream  truth")
	correct := 0
	truthCount := map[string]int{}
	for _, l := range truth {
		truthCount[l]++
	}
	for _, l := range keys {
		fmt.Printf("%-10s  %6d  %6d  %5d\n", l, atRest[l], inMotion[l], truthCount[l])
		if atRest[l] == inMotion[l] {
			correct++
		}
	}
	if correct == len(keys) {
		fmt.Println("batch == stream: the unified model holds")
	} else {
		fmt.Println("WARNING: batch and stream disagreed")
	}
}
