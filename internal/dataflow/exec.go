package dataflow

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/state"
)

// Job is an executable instance of a Graph: channels, subtask goroutines, an
// optional checkpoint coordinator, and optional recovery state.
type Job struct {
	g         *Graph
	backend   state.Backend
	interval  time.Duration
	restore   *state.Snapshot
	chaining  bool
	vectorize bool
	vecKeyed  bool
	reg       *metrics.Registry

	completed atomic.Int64
}

// JobOption configures a Job.
type JobOption func(*Job)

// WithCheckpointing enables periodic asynchronous barrier snapshotting to
// the given backend.
func WithCheckpointing(b state.Backend, interval time.Duration) JobOption {
	return func(j *Job) {
		j.backend = b
		j.interval = interval
	}
}

// WithRestore starts the job from a recovery snapshot: every operator and
// source subtask is handed its state blob before processing.
func WithRestore(snap *state.Snapshot) JobOption {
	return func(j *Job) { j.restore = snap }
}

// SetRestore installs a recovery snapshot after construction. Distributed
// workers need this: the snapshot arrives over the wire with the plan, long
// after the SPMD binary built its Job. Must be called before Run.
func (j *Job) SetRestore(snap *state.Snapshot) { j.restore = snap }

// WithChaining toggles operator chaining (fusing forward edges into a single
// goroutine). Enabled by default; the E10 ablation turns it off.
func WithChaining(on bool) JobOption {
	return func(j *Job) { j.chaining = on }
}

// WithVectorizedChains toggles the batch-at-a-time fast path through operator
// chains: exchange-fed chains whose operators implement BatchedOperator
// process each contiguous data run of an inbound batch with one OnBatch call
// per operator instead of one OnRecord dispatch per record. Enabled by
// default. Purely physical — results are identical at any batch size with the
// fast path on or off, and the setting is not part of the distributed
// PlanSpec.
func WithVectorizedChains(on bool) JobOption {
	return func(j *Job) { j.vectorize = on }
}

// WithVectorizedKeyedOps toggles the keyed half of the vectorized fast path
// (enabled by default; no effect with WithVectorizedChains(false)): batched
// keyed operators (KeyedReduceOp, WindowOp, and WindowJoinOp through its
// batched edge-aware contract) take whole data runs with run-grouped state
// access, and the exchange stager routes hash-partitioned runs batch at a
// time — the key hash computed once per record, each destination's records
// appended in contiguous slices. Purely physical, like WithVectorizedChains:
// results, plans and snapshots are identical either way, and the setting is
// not part of the distributed PlanSpec.
func WithVectorizedKeyedOps(on bool) JobOption {
	return func(j *Job) { j.vecKeyed = on }
}

// WithMetrics attaches a metrics registry: the job reports per-node input
// record counts ("node.<name>.records_in"), per-node watermark progress
// ("node.<name>.watermark"), completed checkpoint count
// ("job.checkpoints") and checkpoint end-to-end duration
// ("job.checkpoint_nanos").
func WithMetrics(reg *metrics.Registry) JobOption {
	return func(j *Job) { j.reg = reg }
}

// nodeMetrics caches a node's instruments so the hot path avoids registry
// lookups.
type nodeMetrics struct {
	recordsIn *metrics.Counter
	watermark *metrics.Gauge
}

func (j *Job) nodeMetrics(name string) *nodeMetrics {
	if j.reg == nil {
		return nil
	}
	return &nodeMetrics{
		recordsIn: j.reg.Counter("node." + name + ".records_in"),
		watermark: j.reg.Gauge("node." + name + ".watermark"),
	}
}

// NewJob prepares a graph for execution.
func NewJob(g *Graph, opts ...JobOption) *Job {
	j := &Job{g: g, chaining: true, vectorize: true, vecKeyed: true}
	for _, o := range opts {
		o(j)
	}
	return j
}

// CompletedCheckpoints reports how many checkpoints were fully persisted.
func (j *Job) CompletedCheckpoints() int64 { return j.completed.Load() }

// validateRestore checks that the recovery snapshot is compatible with this
// job's physical plan. Keyed state (stored per key group) redistributes to
// any parallelism; per-subtask state — source positions, unkeyed operator
// scalars — cannot, so a node whose parallelism changed may only restore if
// its per-subtask blobs are all empty. NumKeyGroups is a plan constant and
// must match the snapshot's.
func (j *Job) validateRestore(numGroups int) error {
	if len(j.restore.Groups) > 0 && j.restore.NumKeyGroups != numGroups {
		return fmt.Errorf("dataflow: snapshot written with %d key groups cannot restore into a graph with %d (NumKeyGroups is a plan constant)",
			j.restore.NumKeyGroups, numGroups)
	}
	for _, n := range j.g.nodes {
		oldPar := 0
		hasState := false
		for k, blob := range j.restore.Entries {
			if k.OperatorID != n.ID {
				continue
			}
			if k.Subtask+1 > oldPar {
				oldPar = k.Subtask + 1
			}
			if len(blob) > 0 {
				hasState = true
			}
		}
		if oldPar == 0 || oldPar == n.Parallelism {
			continue
		}
		if hasState {
			// Splittable sources are the exception: their snapshot state is a
			// set of splits, not a position per subtask, and RestoreAll
			// redistributes it at any parallelism. Probe a throwaway instance
			// for the capability (factories are cheap and side-effect-free
			// until first read). The probe is best-effort: composite sources
			// (typed-layer adapters, PacedSource) implement MultiRestorable
			// unconditionally and enforce the positional rules inside
			// RestoreAll instead, so their mismatch errors surface at source
			// restore time rather than here — still before any data flows.
			if n.NewSource != nil {
				if _, ok := n.NewSource(0, n.Parallelism).(MultiRestorable); ok {
					continue
				}
			}
			return fmt.Errorf("dataflow: node %q checkpointed at parallelism %d cannot restore at %d: its per-subtask state does not redistribute (only keyed state, stored per key group, and splittable at-rest scans rescale)",
				n.Name, oldPar, n.Parallelism)
		}
	}
	return nil
}

// ---- physical plan -------------------------------------------------------

// chainInfo maps every node to the head of its operator chain.
type chainInfo struct {
	head  map[*Node]*Node   // node -> chain head
	tail  map[*Node]*Node   // head -> last node of the chain
	links map[*Node][]*Node // head -> chained nodes in order (excluding head)
}

// buildChains fuses a node into its upstream when the edge is Forward, the
// upstream has exactly one consumer, and parallelism matches (guaranteed by
// Validate for Forward edges). A free function so placement (which must see
// the same chains as execution) can share it.
func buildChains(g *Graph, chaining bool) chainInfo {
	consumers := make(map[*Node]int)
	for _, n := range g.nodes {
		for _, e := range n.In {
			consumers[e.From]++
		}
	}
	ci := chainInfo{
		head:  make(map[*Node]*Node),
		tail:  make(map[*Node]*Node),
		links: make(map[*Node][]*Node),
	}
	for _, n := range g.nodes {
		chainable := chaining &&
			n.NewOperator != nil &&
			len(n.In) == 1 &&
			n.In[0].Part == Forward &&
			consumers[n.In[0].From] == 1
		if chainable {
			h := ci.head[n.In[0].From]
			ci.head[n] = h
			ci.links[h] = append(ci.links[h], n)
			ci.tail[h] = n
		} else {
			ci.head[n] = n
			ci.tail[n] = n
		}
	}
	return ci
}

// ---- runtime structures ----------------------------------------------------

type ackMsg struct {
	ckpt int64
	key  state.SubtaskKey
	blob []byte
	// groups carries a keyed operator's per-key-group blobs, produced by
	// the asynchronous serialization phase; the ack is sent only once they
	// have all been encoded.
	groups map[int][]byte
}

type runtime struct {
	ctx     context.Context
	cancel  context.CancelFunc
	errOnce sync.Once
	err     error
	wg      sync.WaitGroup

	ackCh    chan ackMsg
	controls []chan int64 // one per source subtask: checkpoint triggers
	needAcks int
}

func (rt *runtime) fail(err error) {
	if err == nil || err == context.Canceled {
		return
	}
	rt.errOnce.Do(func() { rt.err = err })
	rt.cancel()
}

// ---- batched exchange ------------------------------------------------------

// Exchange tuning defaults. Records cross subtask boundaries in pooled
// batches: a staged batch is shipped when it reaches the batch size, when the
// flush interval elapses (bounding in-motion latency), and always before a
// control record (watermark, barrier, end) so per-channel ordering and ABS
// barrier alignment are preserved.
const (
	// DefaultBatchSize is the number of data records staged per exchange
	// batch when Graph.BatchSize is unset.
	DefaultBatchSize = 64
	// DefaultFlushInterval bounds how long a staged record may wait before
	// being shipped when Graph.FlushInterval is unset.
	DefaultFlushInterval = 10 * time.Millisecond
)

// batchPool recycles exchange batches between senders and receivers. All
// edges of a job share one pool; receivers return fully consumed batches.
type batchPool struct {
	size int
	pool sync.Pool
}

func newBatchPool(size int) *batchPool {
	bp := &batchPool{size: size}
	bp.pool.New = func() any {
		b := make([]Record, 0, size)
		return &b
	}
	return bp
}

func (bp *batchPool) get() []Record {
	return (*bp.pool.Get().(*[]Record))[:0]
}

// put recycles a consumed batch. Entries are cleared first so the pool does
// not pin record payloads across reuse.
func (bp *batchPool) put(b []Record) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	clear(b)
	b = b[:0]
	bp.pool.Put(&b)
}

// outputs routes a subtask's emissions to downstream channels through
// per-edge, per-downstream-subtask staging buffers. The mutex covers the
// staging state: the owning subtask goroutine appends and flushes on the hot
// path, and the periodic flusher (startFlusher) ships half-full batches so a
// quiet in-motion pipeline never strands records in a buffer.
type outputs struct {
	ctx        context.Context
	pool       *batchPool
	batchSize  int
	flushEvery time.Duration
	numGroups  int  // key-group count for hash routing
	vecRoute   bool // batch-at-a-time routing in dataBatch (WithVectorizedKeyedOps)

	mu sync.Mutex
	// Run-routing scratch (guarded by mu, reused across runs): the key hash
	// per record — computed once and shared by every hash edge of the run —
	// the destination slot per record for the edge being routed, and the
	// slot-grouped gather buffer whose contiguous segments append into the
	// staged batches.
	hashBuf []uint64
	slotBuf []int32
	segLen  []int32
	segOff  []int32
	gather  []Record
	edges   []outEdge
}

type outEdge struct {
	part   Partitioning
	chans  []chan []Record // indexed by downstream subtask (this upstream's slot)
	stage  [][]Record      // staged batch per slot; nil when empty
	rr     int             // per-edge round-robin cursor (Rebalance only)
	queued *metrics.Gauge  // edge.<consumer>.<i>.queued_batches, nil without metrics
}

func (o *outputs) send(ch chan []Record, b []Record) bool {
	select {
	case ch <- b:
		return true
	case <-o.ctx.Done():
		return false
	}
}

// stageLocked appends r to the slot's staged batch, shipping it when full.
func (o *outputs) stageLocked(e *outEdge, slot int, r Record) bool {
	if e.stage[slot] == nil {
		e.stage[slot] = o.pool.get()
	}
	e.stage[slot] = append(e.stage[slot], r)
	if len(e.stage[slot]) >= o.batchSize {
		return o.flushSlotLocked(e, slot)
	}
	return true
}

// flushSlotLocked ships the slot's staged batch, if any.
func (o *outputs) flushSlotLocked(e *outEdge, slot int) bool {
	b := e.stage[slot]
	if len(b) == 0 {
		return true
	}
	e.stage[slot] = nil
	if !o.send(e.chans[slot], b) {
		return false
	}
	if e.queued != nil {
		e.queued.Set(int64(len(e.chans[slot])))
	}
	return true
}

// routeLocked stages one data record on one edge according to its
// partitioning.
func (o *outputs) routeLocked(e *outEdge, r Record) bool {
	n := len(e.chans)
	switch e.part {
	case BroadcastPartition:
		for slot := range e.chans {
			if !o.stageLocked(e, slot, r) {
				return false
			}
		}
	case HashPartition:
		// Route via the key group so routing and keyed-state
		// partitioning agree: the subtask receiving a key is exactly
		// the subtask owning its state's key group.
		g := state.KeyGroupFor(r.Key, o.numGroups)
		if !o.stageLocked(e, state.SubtaskForGroup(g, o.numGroups, n), r) {
			return false
		}
	case Rebalance:
		slot := e.rr % n
		e.rr++
		if !o.stageLocked(e, slot, r) {
			return false
		}
	default: // Forward
		// An unchained Forward edge holds exactly one channel: the peer
		// subtask's (see outputsFor), so routing is the single slot.
		if !o.stageLocked(e, 0, r) {
			return false
		}
	}
	return true
}

// data routes one data record according to each edge's partitioning.
func (o *outputs) data(r Record) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range o.edges {
		if !o.routeLocked(&o.edges[i], r) {
			return false
		}
	}
	return true
}

// stageRunLocked appends a slice of records destined for one slot to its
// staged batch, shipping at exactly the same batch boundaries the
// record-by-record stageLocked would: fill to batchSize, ship, continue.
func (o *outputs) stageRunLocked(e *outEdge, slot int, recs []Record) bool {
	for len(recs) > 0 {
		if e.stage[slot] == nil {
			e.stage[slot] = o.pool.get()
		}
		room := o.batchSize - len(e.stage[slot])
		if room > len(recs) {
			room = len(recs)
		}
		e.stage[slot] = append(e.stage[slot], recs[:room]...)
		recs = recs[room:]
		if len(e.stage[slot]) >= o.batchSize {
			if !o.flushSlotLocked(e, slot) {
				return false
			}
		}
	}
	return true
}

// routeRunLocked stages a whole data run on one edge: bulk appends for the
// single-destination partitionings, a strided gather for Rebalance, and for
// HashPartition a counting sort over cached per-record hashes, so each
// destination's records append in one contiguous slice. Per-slot record
// order and batch boundaries are identical to routing record by record.
func (o *outputs) routeRunLocked(e *outEdge, b []Record) bool {
	n := len(e.chans)
	switch e.part {
	case BroadcastPartition:
		for slot := 0; slot < n; slot++ {
			if !o.stageRunLocked(e, slot, b) {
				return false
			}
		}
	case HashPartition:
		if n == 1 {
			if !o.stageRunLocked(e, 0, b) {
				return false
			}
			return true
		}
		if len(o.hashBuf) < len(b) {
			// One hash per record per run: the first hash edge fills the
			// cache, further hash edges of the same run reuse it (dataBatch
			// truncates it between runs).
			for i := len(o.hashBuf); i < len(b); i++ {
				o.hashBuf = append(o.hashBuf, state.Hash64(b[i].Key))
			}
		}
		o.slotBuf = o.slotBuf[:0]
		o.segLen = o.segLen[:0]
		o.segLen = append(o.segLen, make([]int32, n)...)
		for i := range b {
			g := int(o.hashBuf[i] % uint64(o.numGroups))
			slot := int32(state.SubtaskForGroup(g, o.numGroups, n))
			o.slotBuf = append(o.slotBuf, slot)
			o.segLen[slot]++
		}
		o.segOff = o.segOff[:0]
		total := int32(0)
		for _, c := range o.segLen {
			o.segOff = append(o.segOff, total)
			total += c
		}
		if cap(o.gather) < len(b) {
			o.gather = make([]Record, len(b))
		} else {
			o.gather = o.gather[:len(b)]
		}
		for i := range b {
			slot := o.slotBuf[i]
			o.gather[o.segOff[slot]] = b[i]
			o.segOff[slot]++
		}
		for slot := 0; slot < n; slot++ {
			end := o.segOff[slot]
			seg := o.gather[end-o.segLen[slot] : end]
			if len(seg) == 0 {
				continue
			}
			if !o.stageRunLocked(e, slot, seg) {
				return false
			}
		}
		// Don't pin shipped payloads in the scratch until the next run.
		clear(o.gather)
	case Rebalance:
		if n == 1 {
			e.rr += len(b)
			return o.stageRunLocked(e, 0, b)
		}
		// Record i goes to slot (rr+i)%n — gather each slot's stride so the
		// per-slot sequences match the per-record round-robin exactly.
		if cap(o.gather) < len(b) {
			o.gather = make([]Record, 0, len(b))
		}
		for slot := 0; slot < n; slot++ {
			first := ((slot-e.rr%n)%n + n) % n
			seg := o.gather[:0]
			for i := first; i < len(b); i += n {
				seg = append(seg, b[i])
			}
			if len(seg) == 0 {
				continue
			}
			if !o.stageRunLocked(e, slot, seg) {
				return false
			}
			clear(seg)
		}
		e.rr += len(b)
	default: // Forward: the single peer slot
		if !o.stageRunLocked(e, 0, b) {
			return false
		}
	}
	return true
}

// dataBatch routes a run of data records under a single staging-lock
// acquisition — the vectorized chain's exit into the exchange. Per-slot
// record order matches routing the records one by one; with vecRoute the
// run is routed batch at a time (hash computed once per record per run,
// contiguous per-destination appends) instead of looping routeLocked.
func (o *outputs) dataBatch(b []Record) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.vecRoute {
		o.hashBuf = o.hashBuf[:0]
		for i := range o.edges {
			if !o.routeRunLocked(&o.edges[i], b) {
				return false
			}
		}
		return true
	}
	for i := range o.edges {
		e := &o.edges[i]
		for _, r := range b {
			if !o.routeLocked(e, r) {
				return false
			}
		}
	}
	return true
}

// broadcast delivers a control record (watermark/barrier/end) to every
// downstream subtask of every edge. The control record is appended to each
// slot's staged batch and the batch is shipped immediately, so on every
// channel all data staged before the control arrives before it — the
// ordering ABS barrier alignment and watermark semantics depend on.
func (o *outputs) broadcast(r Record) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range o.edges {
		e := &o.edges[i]
		for slot := range e.chans {
			if !o.stageLocked(e, slot, r) {
				return false
			}
			if !o.flushSlotLocked(e, slot) {
				return false
			}
		}
	}
	return true
}

// flushAll ships every non-empty staged batch (the flusher's tick).
func (o *outputs) flushAll() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range o.edges {
		e := &o.edges[i]
		for slot := range e.chans {
			if !o.flushSlotLocked(e, slot) {
				return false
			}
		}
	}
	return true
}

// startFlusher launches the periodic flush goroutine bounding how long a
// record may sit in a staging buffer — the in-motion latency guard. It
// no-ops for sinks (no edges) and when the interval is negative (disabled).
// The returned stop function must be called before the subtask exits; the
// goroutine is tracked by wg so Run cannot return while a flusher lives.
func (o *outputs) startFlusher(wg *sync.WaitGroup) (stop func()) {
	if o.flushEvery <= 0 || len(o.edges) == 0 {
		return func() {}
	}
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(o.flushEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-o.ctx.Done():
				return
			case <-t.C:
				o.flushAll()
			}
		}
	}()
	return func() { close(done) }
}

// outCollector terminates an operator chain into the channel outputs.
type outCollector struct{ o *outputs }

func (c outCollector) Collect(r Record) { c.o.data(r) }

// opCollector feeds records into the next operator of a chain.
type opCollector struct {
	op   Operator
	next Collector
}

func (c opCollector) Collect(r Record) { c.op.OnRecord(r, c.next) }

// chain is the per-subtask instantiation of a chain of operators.
type chain struct {
	nodes     []*Node    // chain nodes in order (head first for operator chains)
	ops       []Operator // instances, aligned with nodes
	colls     []Collector
	out       *outputs
	vectorize bool
	vecKeyed  bool
	batched   []BatchedOperator // aligned with ops; nil where the op has no OnBatch
}

// collector returns the entry collector of the chain (records flow through
// every operator, then to the outputs).
func (c *chain) collector() Collector {
	if len(c.ops) == 0 {
		return outCollector{c.out}
	}
	return opCollector{op: c.ops[0], next: c.colls[0]}
}

// build creates downstream collectors: colls[i] is what ops[i] emits into.
// With the keyed fast path disabled, keyed-stateful operators are withheld
// from the batched table, so they (and only they) fall back to per-record
// dispatch — the baseline the keyed vectorization is measured against.
func (c *chain) build() {
	c.colls = make([]Collector, len(c.ops))
	c.batched = make([]BatchedOperator, len(c.ops))
	for i := len(c.ops) - 1; i >= 0; i-- {
		if i == len(c.ops)-1 {
			c.colls[i] = outCollector{c.out}
		} else {
			c.colls[i] = opCollector{op: c.ops[i+1], next: c.colls[i+1]}
		}
		bo, _ := c.ops[i].(BatchedOperator)
		if bo != nil && !c.vecKeyed {
			if _, keyed := c.ops[i].(KeyedStateful); keyed {
				bo = nil
			}
		}
		c.batched[i] = bo
	}
}

// processBatch hands a contiguous run of data records through the chain's
// vectorized fast path: each BatchedOperator transforms the whole run with
// one OnBatch call, and the survivors exit into the exchange under a single
// staging-lock acquisition. The first operator without OnBatch downgrades the
// rest of the chain to the per-record path, so mixed chains stay correct.
// The run aliases the inbound pooled batch; in-place compaction is safe
// because the receiver owns the batch until it is recycled.
func (c *chain) processBatch(b []Record) { c.processBatchFrom(0, b) }

// processBatchFrom is processBatch starting at the from-th chain operator —
// the continuation used after an edge-aware head consumed the run.
func (c *chain) processBatchFrom(from int, b []Record) {
	for i := from; i < len(c.ops); i++ {
		if len(b) == 0 {
			return
		}
		bo := c.batched[i]
		if bo == nil {
			for _, r := range b {
				c.ops[i].OnRecord(r, c.colls[i])
			}
			return
		}
		b = bo.OnBatch(b, c.colls[i])
	}
	c.out.dataBatch(b)
}

// processBatchEdge drives a run through a batched edge-aware head (a join):
// the head takes the whole run tagged with its arrival edge, and whatever it
// forwards continues down the rest of the chain on the vectorized path.
func (c *chain) processBatchEdge(head BatchedEdgeAware, edge int, b []Record) {
	b = head.OnBatchEdge(edge, b, c.colls[0])
	if len(b) == 0 {
		return
	}
	c.processBatchFrom(1, b)
}

func (c *chain) watermark(wm int64) {
	for i, op := range c.ops {
		op.OnWatermark(wm, c.colls[i])
	}
}

func (c *chain) finish() {
	for i, op := range c.ops {
		op.Finish(c.colls[i])
	}
}

// snapshotAll snapshots every operator in the chain and acks each. Keyed
// operators take only a copy-on-write capture on this (barrier) path; the
// expensive serialization runs on a separate goroutine, and the ack — which
// the coordinator needs to complete the checkpoint — is sent only when the
// asynchronous phase lands.
func (c *chain) snapshotAll(rt *runtime, ckpt int64, subtask int) error {
	for i, op := range c.ops {
		name := c.nodes[i].Name
		key := state.SubtaskKey{OperatorID: c.nodes[i].ID, Subtask: subtask}
		blob, err := op.Snapshot()
		if err != nil {
			return fmt.Errorf("snapshot %q: %w", name, err)
		}
		if h, ok := op.(KeyedStateful); ok {
			captured := h.KeyedState().Capture()
			// The subtask goroutine still holds a WaitGroup slot, so the
			// counter cannot reach zero while this Add races Run's Wait.
			rt.wg.Add(1)
			go func() {
				defer rt.wg.Done()
				groups, err := captured.EncodeGroups()
				if err != nil {
					rt.fail(fmt.Errorf("async snapshot %q/%d: %w", name, subtask, err))
					return
				}
				msg := ackMsg{ckpt: ckpt, key: key, blob: blob, groups: groups}
				select {
				case rt.ackCh <- msg:
				case <-rt.ctx.Done():
				}
			}()
			continue
		}
		msg := ackMsg{ckpt: ckpt, key: key, blob: blob}
		select {
		case rt.ackCh <- msg:
		case <-rt.ctx.Done():
			return rt.ctx.Err()
		}
	}
	return nil
}

// ---- Run -------------------------------------------------------------------

// Run executes the job until all sinks finish (bounded inputs) or the
// context is cancelled (unbounded). It returns the first subtask error, or
// ctx.Err() on cancellation, or nil on normal completion.
func (j *Job) Run(ctx context.Context) error {
	return j.run(ctx, nil)
}

// run is the shared execution core. part == nil is the local fast path: all
// subtasks run here, exchange edges are direct Go channels, and the job owns
// its checkpoint coordinator. With a Participation only the subtasks placed
// on part.Self run, cross-participant edges go through part.Transport, and
// checkpointing is driven externally (part.Triggers in, part.Acks out).
func (j *Job) run(ctx context.Context, part *Participation) error {
	if err := j.g.Validate(); err != nil {
		return err
	}
	numGroups := j.g.numKeyGroups()
	if j.restore != nil {
		if err := j.validateRestore(numGroups); err != nil {
			return err
		}
	}
	ci := buildChains(j.g, j.chaining)

	// Placement helpers. In local mode every subtask is placed here.
	self := 0
	var placement Placement
	var transport EdgeTransport
	if part != nil {
		self = part.Self
		placement = part.Placement
		transport = part.Transport
	}
	partOf := func(n *Node, s int) int {
		if placement == nil {
			return self
		}
		return placement[ci.head[n].ID][s]
	}
	isLocal := func(n *Node, s int) bool { return partOf(n, s) == self }
	// localSubs lists a node's locally placed subtasks; nil in local mode
	// (meaning "all"), so the single-process plan is bit-identical to before.
	localSubs := func(n *Node) []int {
		if placement == nil {
			return nil
		}
		subs := make([]int, 0, n.Parallelism)
		for s := 0; s < n.Parallelism; s++ {
			if isLocal(n, s) {
				subs = append(subs, s)
			}
		}
		return subs
	}

	runCtx, cancel := context.WithCancel(ctx)
	rt := &runtime{ctx: runCtx, cancel: cancel}
	defer cancel()

	// Count acks per checkpoint: every node snapshots per subtask. In
	// participant mode only local subtasks ack here (the coordinator
	// assembles the global set), so size the buffer to the local count.
	for _, n := range j.g.nodes {
		if part == nil {
			rt.needAcks += n.Parallelism
		} else {
			rt.needAcks += len(localSubs(n))
		}
	}
	rt.ackCh = make(chan ackMsg, rt.needAcks+16)

	// Exchange configuration: batch size, flush interval, shared pool.
	batchSize := j.g.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	flushEvery := j.g.FlushInterval
	if flushEvery == 0 {
		flushEvery = DefaultFlushInterval
	}
	pool := newBatchPool(batchSize)

	// Channel matrices for unchained edges: in[to][edgeIdx][toSub][fromSub].
	// Channels carry pooled record batches; capacity is the record-
	// denominated BufferSize divided down by the batch size (floor 4, so
	// tiny buffers still pipeline), keeping the worst-case records queued
	// per channel roughly constant across batch sizes.
	bufBatches := j.g.BufferSize / batchSize
	if bufBatches < 4 {
		bufBatches = 4
	}
	inCh := make(map[*Node][][][]chan []Record)
	for _, n := range j.g.nodes {
		if ci.head[n] != n {
			continue // chained: no physical inputs
		}
		if n.NewOperator == nil {
			continue
		}
		mats := make([][][]chan []Record, len(n.In))
		for ei, e := range n.In {
			mat := make([][]chan []Record, n.Parallelism)
			for ts := 0; ts < n.Parallelism; ts++ {
				if !isLocal(n, ts) {
					continue // remote consumer subtask: no local inputs
				}
				row := make([]chan []Record, e.From.Parallelism)
				for fs := 0; fs < e.From.Parallelism; fs++ {
					if isLocal(e.From, fs) {
						row[fs] = make(chan []Record, bufBatches)
					} else {
						// Remote producer: the transport demultiplexes its
						// frames into this registered channel.
						row[fs] = transport.Inbound(ChannelRef{Node: n.ID, Edge: ei, To: ts, From: fs}, bufBatches)
					}
				}
				mat[ts] = row
			}
			mats[ei] = mat
		}
		inCh[n] = mats
	}

	// slotFor resolves the physical channel carrying (producer subtask s ->
	// consumer subtask ts) on the consumer's ei-th edge: a direct channel
	// when the consumer subtask is local, a transport feeder otherwise.
	slotFor := func(consumer *Node, ei, ts, s int) chan []Record {
		if isLocal(consumer, ts) {
			return inCh[consumer][ei][ts][s]
		}
		return transport.Outbound(ChannelRef{Node: consumer.ID, Edge: ei, To: ts, From: s}, partOf(consumer, ts), bufBatches)
	}

	// outputsFor builds the outputs of chain-tail `tail` for subtask s.
	outputsFor := func(tail *Node, s int) *outputs {
		o := &outputs{ctx: runCtx, pool: pool, batchSize: batchSize, flushEvery: flushEvery, numGroups: numGroups, vecRoute: j.vectorize && j.vecKeyed}
		for _, consumer := range j.g.nodes {
			if ci.head[consumer] != consumer {
				continue
			}
			for ei, e := range consumer.In {
				if e.From != tail {
					continue
				}
				var chans []chan []Record
				if e.Part == Forward {
					// one slot: this subtask's peer
					chans = []chan []Record{slotFor(consumer, ei, s, s)}
				} else {
					chans = make([]chan []Record, consumer.Parallelism)
					for ts := 0; ts < consumer.Parallelism; ts++ {
						chans[ts] = slotFor(consumer, ei, ts, s)
					}
				}
				var queued *metrics.Gauge
				if j.reg != nil {
					// One gauge per logical edge, shared by its producer
					// subtasks: sampled as channel occupancy after each ship,
					// the observability seed for credit-based backpressure.
					queued = j.reg.Gauge(fmt.Sprintf("edge.%s.%d.queued_batches", consumer.Name, ei))
				}
				o.edges = append(o.edges, outEdge{part: e.Part, chans: chans, stage: make([][]Record, len(chans)), queued: queued})
			}
		}
		return o
	}

	restoreBlob := func(n *Node, s int) []byte {
		if j.restore == nil {
			return nil
		}
		return j.restore.Get(state.SubtaskKey{OperatorID: n.ID, Subtask: s})
	}
	// restoreSourceBlobs collects a source node's non-empty per-subtask blobs
	// from the recovery snapshot, keyed by the old subtask index.
	restoreSourceBlobs := func(snap *state.Snapshot, n *Node) map[int][]byte {
		if snap == nil {
			return nil
		}
		var out map[int][]byte
		for k, b := range snap.EntriesOf(n.ID) {
			if len(b) == 0 {
				continue
			}
			if out == nil {
				out = make(map[int][]byte)
			}
			out[k] = b
		}
		return out
	}
	// restoreGroups redistributes the snapshot's keyed-state blobs: the
	// range is the *new* subtask's — whatever parallelism this job runs at
	// — and the blobs come from whichever subtasks wrote them.
	restoreGroups := func(n *Node, s int) map[int][]byte {
		if j.restore == nil {
			return nil
		}
		start, end := state.GroupRangeFor(numGroups, n.Parallelism, s)
		return j.restore.GroupsOf(n.ID, start, end)
	}

	// Build and launch subtasks.
	var launchErr error
	for _, n := range j.g.nodes {
		if ci.head[n] != n {
			continue
		}
		chainNodes := append([]*Node{}, ci.links[n]...)
		tail := ci.tail[n]
		var srcBlobs map[int][]byte
		if n.NewSource != nil {
			srcBlobs = restoreSourceBlobs(j.restore, n)
		}
		locals := localSubs(n)
		for s := 0; s < n.Parallelism; s++ {
			if !isLocal(n, s) {
				continue
			}
			ch := &chain{out: outputsFor(tail, s), vectorize: j.vectorize, vecKeyed: j.vecKeyed}
			if n.NewOperator != nil {
				ch.nodes = append([]*Node{n}, chainNodes...)
			} else {
				ch.nodes = chainNodes
			}
			for _, cn := range ch.nodes {
				op := cn.NewOperator()
				if err := op.Open(&OpContext{
					NodeID: cn.ID, NodeName: cn.Name, Subtask: s,
					Parallelism: cn.Parallelism, NumKeyGroups: numGroups,
					Metrics: j.reg, Restore: restoreBlob(cn, s),
					RestoreGroups: restoreGroups(cn, s),
					LocalSubtasks: locals,
				}); err != nil {
					launchErr = fmt.Errorf("open %q/%d: %w", cn.Name, s, err)
					break
				}
				ch.ops = append(ch.ops, op)
			}
			if launchErr != nil {
				break
			}
			ch.build()

			if n.NewSource != nil {
				src := n.NewSource(s, n.Parallelism)
				if so, ok := src.(SourceOpener); ok {
					so.OpenSource(&OpContext{
						NodeID: n.ID, NodeName: n.Name, Subtask: s,
						Parallelism: n.Parallelism, NumKeyGroups: numGroups,
						Metrics: j.reg, LocalSubtasks: locals,
					})
				}
				// Sources restore from the node-wide blob set: splittable
				// scans redistribute their remaining splits across this job's
				// parallelism, positional sources take their own subtask's
				// blob (RestoreSource enforces the difference). Subtask 0
				// restores (and with it a stage-shared scan plan rebuilds
				// from the full blob set) before its own goroutine launches;
				// later subtasks restore while subtask 0 may already be
				// scanning, which is safe because their RestoreAll calls are
				// idempotent no-ops on the already-rebuilt shared plan.
				if len(srcBlobs) > 0 {
					if err := RestoreSource(src, s, n.Parallelism, srcBlobs); err != nil {
						launchErr = fmt.Errorf("restore source %q/%d: %w", n.Name, s, err)
						break
					}
				}
				control := make(chan int64, 4)
				rt.controls = append(rt.controls, control)
				node, sub := n, s
				rt.wg.Add(1)
				go func() {
					defer rt.wg.Done()
					rt.fail(runSource(rt, node, sub, src, ch, control, j.nodeMetrics(node.Name)))
				}()
			} else {
				ins := make([]chan []Record, 0)
				edges := make([]int, 0)
				for ei := range n.In {
					if n.In[ei].Part == Forward {
						// An unchained Forward edge carries exactly one live
						// channel: the producer peer with the same subtask
						// index. The rest of the row is never written, and a
						// subtask listening on it would wait forever for an
						// End that cannot come.
						ins = append(ins, inCh[n][ei][s][s])
						edges = append(edges, ei)
						continue
					}
					for _, c := range inCh[n][ei][s] {
						ins = append(ins, c)
						edges = append(edges, ei)
					}
				}
				node, sub := n, s
				rt.wg.Add(1)
				go func() {
					defer rt.wg.Done()
					rt.fail(runOperator(rt, node, sub, ins, edges, ch, j.nodeMetrics(node.Name)))
				}()
			}
		}
		if launchErr != nil {
			break
		}
	}
	if launchErr != nil {
		cancel()
		rt.wg.Wait()
		return launchErr
	}

	// Checkpoint coordination. Local mode owns the full loop; a participant
	// instead receives externally injected triggers and forwards its local
	// acks to the distributed coordinator for global assembly.
	coordDone := make(chan struct{})
	var auxWg sync.WaitGroup
	if part == nil {
		if j.backend != nil && j.interval > 0 {
			go j.coordinate(rt, coordDone)
		} else {
			close(coordDone)
		}
	} else {
		close(coordDone)
		if part.Triggers != nil {
			auxWg.Add(1)
			go func() {
				defer auxWg.Done()
				for {
					var id int64
					select {
					case <-runCtx.Done():
						return
					case id = <-part.Triggers:
					}
					for _, c := range rt.controls {
						select {
						case c <- id:
						case <-runCtx.Done():
							return
						}
					}
				}
			}()
		}
		if part.Acks != nil {
			auxWg.Add(1)
			go func() {
				defer auxWg.Done()
				for {
					var a ackMsg
					select {
					case <-runCtx.Done():
						return
					case a = <-rt.ackCh:
					}
					select {
					case part.Acks <- Ack{Ckpt: a.ckpt, Key: a.key, Blob: a.blob, Groups: a.groups}:
					case <-runCtx.Done():
						return
					}
				}
			}()
		}
		if part.OnRunning != nil {
			part.OnRunning()
		}
	}

	rt.wg.Wait()
	cancel()
	<-coordDone
	auxWg.Wait()
	if rt.err != nil {
		return rt.err
	}
	return ctx.Err()
}

// coordinate triggers periodic checkpoints and assembles completed
// snapshots. One checkpoint is in flight at a time.
func (j *Job) coordinate(rt *runtime, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(j.interval)
	defer ticker.Stop()
	var nextID int64 = 1
	if j.restore != nil {
		nextID = j.restore.CheckpointID + 1
	}
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-ticker.C:
		}
		id := nextID
		nextID++
		ckptStart := time.Now()
		// Trigger all sources.
		for _, c := range rt.controls {
			select {
			case c <- id:
			case <-rt.ctx.Done():
				return
			}
		}
		// Collect acks. Keyed operators ack only after their asynchronous
		// serialization lands, so a completed checkpoint always holds every
		// key group.
		snap := state.NewSnapshot(id)
		snap.NumKeyGroups = j.g.numKeyGroups()
		got := 0
		for got < rt.needAcks {
			select {
			case a := <-rt.ackCh:
				if a.ckpt != id {
					continue // stale ack from an abandoned checkpoint
				}
				snap.Put(a.key, a.blob)
				for g, blob := range a.groups {
					snap.PutGroup(state.GroupKey{OperatorID: a.key.OperatorID, KeyGroup: g}, blob)
				}
				got++
			case <-rt.ctx.Done():
				return
			}
		}
		if err := j.backend.Persist(snap); err != nil {
			rt.fail(fmt.Errorf("persist checkpoint %d: %w", id, err))
			return
		}
		j.completed.Add(1)
		if j.reg != nil {
			j.reg.Counter("job.checkpoints").Inc()
			j.reg.Histogram("job.checkpoint_nanos").Observe(time.Since(ckptStart).Nanoseconds())
		}
	}
}

// runSource drives a source subtask: generate records, inject barriers on
// coordinator triggers, and finish the chain at end of stream. Records flow
// through the chain's collector into the batching outputs, so at-rest replay
// (files, slices) is vectorized end to end; the records_in counter is
// flushed in batches at control boundaries rather than per record.
func runSource(rt *runtime, n *Node, subtask int, src SourceFunc, ch *chain, control chan int64, nm *nodeMetrics) error {
	stopFlush := ch.out.startFlusher(&rt.wg)
	defer stopFlush()
	entry := ch.collector()
	var pendingIn int64
	flushIn := func() {
		if nm != nil && pendingIn != 0 {
			nm.recordsIn.Add(pendingIn)
			pendingIn = 0
		}
	}
	defer flushIn()
	for {
		// Handle pending control triggers and cancellation.
		select {
		case <-rt.ctx.Done():
			return nil
		case ckpt := <-control:
			flushIn()
			blob, err := src.Snapshot()
			if err != nil {
				return fmt.Errorf("snapshot source %q/%d: %w", n.Name, subtask, err)
			}
			msg := ackMsg{ckpt: ckpt, key: state.SubtaskKey{OperatorID: n.ID, Subtask: subtask}, blob: blob}
			select {
			case rt.ackCh <- msg:
			case <-rt.ctx.Done():
				return nil
			}
			if err := ch.snapshotAll(rt, ckpt, subtask); err != nil {
				return err
			}
			if !ch.out.broadcast(Barrier(ckpt)) {
				return nil
			}
			continue
		default:
		}
		r, ok := src.Next()
		if !ok {
			flushIn()
			if err := sourceErr(src); err != nil {
				return fmt.Errorf("source %q/%d: %w", n.Name, subtask, err)
			}
			ch.watermark(math.MaxInt64)
			if !ch.out.broadcast(Watermark(math.MaxInt64)) {
				return nil
			}
			ch.finish()
			ch.out.broadcast(End())
			return nil
		}
		switch r.Kind {
		case KindWatermark:
			flushIn()
			if nm != nil {
				nm.watermark.Max(r.Ts)
			}
			ch.watermark(r.Ts)
			if !ch.out.broadcast(r) {
				return nil
			}
		case KindData:
			pendingIn++
			if pendingIn >= int64(ch.out.batchSize) {
				// Keep the metric live for watermark-sparse sources without
				// reverting to per-record increments.
				flushIn()
			}
			entry.Collect(r)
		}
	}
}

// inState tracks one input channel of an operator subtask. batch/pos hold
// the received batch currently being consumed. Senders flush a control
// record in the same send as the data staged before it, so a barrier is
// last-in-batch by construction and blocking a channel mid-batch leaves no
// remainder; the cursor still survives a block defensively, in case a
// future sender ships controls mid-batch.
type inState struct {
	ch      chan []Record
	wm      int64
	ended   bool
	blocked bool // barrier alignment
	batch   []Record
	pos     int
}

// runOperator drives an operator subtask: merge inputs, track watermarks,
// align barriers, and finish when all inputs end. Inputs arrive as pooled
// record batches; the loop iterates each batch record by record (per-channel
// order is the sender's emission order) and returns consumed batches to the
// pool. edges[i] is the logical input-edge index of channel i, surfaced to
// EdgeAware head operators (joins need to know which side a record arrived
// on).
func runOperator(rt *runtime, n *Node, subtask int, inputs []chan []Record, edges []int, ch *chain, nm *nodeMetrics) error {
	stopFlush := ch.out.startFlusher(&rt.wg)
	defer stopFlush()
	pool := ch.out.pool
	ins := make([]inState, len(inputs))
	for i, c := range inputs {
		ins[i] = inState{ch: c, wm: math.MinInt64}
	}
	entry := ch.collector()
	var edgeAware EdgeAware
	if len(ch.ops) > 0 {
		edgeAware, _ = ch.ops[0].(EdgeAware)
	}
	// The vectorized fast path hands contiguous data runs to the chain in one
	// processBatch call. EdgeAware heads need the arrival edge; those offering
	// the batched edge-aware contract take whole runs tagged with it (a run
	// never spans channels, so the edge is constant across it), and the rest
	// stay on the per-record path.
	var batchedEdge BatchedEdgeAware
	if edgeAware != nil && ch.vecKeyed {
		batchedEdge, _ = edgeAware.(BatchedEdgeAware)
	}
	vectorized := ch.vectorize && (edgeAware == nil || batchedEdge != nil)
	curWM := int64(math.MinInt64)
	var aligning int64 // current barrier id, 0 = none
	var alignSeen int

	activeDirty := true
	var active []int
	var cases []reflect.SelectCase

	rebuild := func() {
		active = active[:0]
		for i := range ins {
			if !ins[i].ended && !ins[i].blocked {
				active = append(active, i)
			}
		}
		cases = cases[:0]
		cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(rt.ctx.Done())})
		for _, i := range active {
			cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ins[i].ch)})
		}
		activeDirty = false
	}

	minWM := func() int64 {
		m := int64(math.MaxInt64)
		anyOpen := false
		for i := range ins {
			if ins[i].ended {
				continue
			}
			anyOpen = true
			if ins[i].wm < m {
				m = ins[i].wm
			}
		}
		if !anyOpen {
			return math.MaxInt64
		}
		return m
	}

	completeBarrier := func(ckpt int64) error {
		if err := ch.snapshotAll(rt, ckpt, subtask); err != nil {
			return err
		}
		if !ch.out.broadcast(Barrier(ckpt)) {
			return nil
		}
		for i := range ins {
			ins[i].blocked = false
		}
		aligning = 0
		alignSeen = 0
		activeDirty = true
		return nil
	}

	barriersNeeded := func() int {
		need := 0
		for i := range ins {
			if !ins[i].ended {
				need++
			}
		}
		return need
	}

	// consume drains ins[idx]'s buffered batch from its cursor, handling
	// each record exactly as the per-record loop used to. It stops early
	// when a barrier blocks the channel (the remainder is held) and returns
	// stop=true when the subtask is finished (all inputs ended, or the job
	// was cancelled mid-broadcast). records_in is bumped once per call.
	consume := func(idx int) (stop bool, err error) {
		in := &ins[idx]
		var dataSeen int64
		defer func() {
			if nm != nil && dataSeen > 0 {
				nm.recordsIn.Add(dataSeen)
			}
		}()
		for in.pos < len(in.batch) {
			r := in.batch[in.pos]
			in.pos++
			switch r.Kind {
			case KindData:
				if vectorized {
					// Extend the run across every contiguous data record: the
					// whole run goes through the chain with one OnBatch call
					// per operator. Control records are excluded, so
					// watermark/barrier/end ordering is exactly the
					// per-record path's. records_in counts the whole run at
					// once on both branches, the batch-aware convention the
					// exchange uses.
					start := in.pos - 1
					for in.pos < len(in.batch) && in.batch[in.pos].Kind == KindData {
						in.pos++
					}
					dataSeen += int64(in.pos - start)
					if batchedEdge != nil {
						ch.processBatchEdge(batchedEdge, edges[idx], in.batch[start:in.pos])
					} else {
						ch.processBatch(in.batch[start:in.pos])
					}
					continue
				}
				dataSeen++
				if edgeAware != nil {
					edgeAware.OnRecordEdge(edges[idx], r, ch.colls[0])
				} else {
					entry.Collect(r)
				}
			case KindWatermark:
				if r.Ts > in.wm {
					in.wm = r.Ts
					if m := minWM(); m > curWM {
						curWM = m
						if nm != nil {
							nm.watermark.Max(curWM)
						}
						ch.watermark(curWM)
						if !ch.out.broadcast(Watermark(curWM)) {
							return true, nil
						}
					}
				}
			case KindBarrier:
				if aligning == 0 {
					aligning = r.Ts
				}
				if r.Ts != aligning {
					continue // stale barrier from an abandoned checkpoint
				}
				in.blocked = true
				alignSeen++
				activeDirty = true
				if alignSeen >= barriersNeeded() {
					if err := completeBarrier(aligning); err != nil {
						return true, err
					}
				}
				if in.blocked {
					// Alignment still pending. A barrier is last-in-batch by
					// construction, so the batch is exhausted here and goes
					// back to the pool (the next receive would otherwise
					// overwrite it); the guard keeps any remainder — only
					// possible with a mid-batch control — held until the
					// barrier completes and unblocks the channel.
					if in.pos >= len(in.batch) {
						pool.put(in.batch)
						in.batch, in.pos = nil, 0
					}
					return false, nil
				}
			case KindEnd:
				in.ended = true
				in.blocked = false
				activeDirty = true
				if m := minWM(); m > curWM && m != math.MaxInt64 {
					curWM = m
					ch.watermark(curWM)
					if !ch.out.broadcast(Watermark(curWM)) {
						return true, nil
					}
				}
				// An ended channel counts as having delivered any barrier.
				if aligning != 0 && alignSeen >= barriersNeeded() {
					if err := completeBarrier(aligning); err != nil {
						return true, err
					}
				}
				allEnded := true
				for i := range ins {
					if !ins[i].ended {
						allEnded = false
						break
					}
				}
				if allEnded {
					ch.watermark(math.MaxInt64)
					ch.out.broadcast(Watermark(math.MaxInt64))
					ch.finish()
					ch.out.broadcast(End())
					return true, nil
				}
				// Nothing follows an end marker on its channel.
				pool.put(in.batch)
				in.batch, in.pos = nil, 0
				return false, nil
			}
		}
		pool.put(in.batch)
		in.batch, in.pos = nil, 0
		return false, nil
	}

	for {
		// Drain held batch remainders of channels that can progress before
		// receiving anything new. With the control-last-in-batch invariant
		// this scan finds nothing (blocked channels recycle their exhausted
		// batch at the block point); it is the defensive half of the
		// mid-batch cursor, and costs one O(#inputs) pass per batch.
		progressed := false
		for i := range ins {
			in := &ins[i]
			if !in.blocked && !in.ended && in.pos < len(in.batch) {
				stop, err := consume(i)
				if stop || err != nil {
					return err
				}
				progressed = true
				break
			}
		}
		if progressed {
			continue
		}
		if activeDirty {
			rebuild()
		}
		if len(active) == 0 {
			allEnded := true
			for i := range ins {
				if !ins[i].ended {
					allEnded = false
					break
				}
			}
			if allEnded {
				ch.finish()
				ch.out.broadcast(End())
				return nil
			}
			if rt.ctx.Err() != nil {
				return nil // cancelled mid-alignment; not a deadlock
			}
			// All non-ended inputs are blocked on alignment but the barrier
			// is incomplete — impossible unless every channel delivered it,
			// which completeBarrier handles. Defensive:
			return fmt.Errorf("dataflow: %q/%d deadlocked in barrier alignment", n.Name, subtask)
		}

		var idx int
		var b []Record
		if len(active) == 1 {
			select {
			case <-rt.ctx.Done():
				return nil
			case b = <-ins[active[0]].ch:
				idx = active[0]
			}
		} else {
			chosen, val, _ := reflect.Select(cases)
			if chosen == 0 {
				return nil
			}
			idx = active[chosen-1]
			b = val.Interface().([]Record)
		}
		ins[idx].batch, ins[idx].pos = b, 0
		stop, err := consume(idx)
		if stop || err != nil {
			return err
		}
	}
}
