package agg

// TwoStacks is the classic two-stack FIFO sliding-window aggregator
// (attributed to the "SMQ" folklore algorithm; see also DABA, Tangwongsan et
// al. 2017): Push and PopFront run in amortized O(1) combines and the running
// aggregate of the whole window is available in O(1).
//
// It supports only whole-window queries (no arbitrary ranges), which makes it
// the right engine for single-query sliding windows evicted in FIFO order,
// and a useful comparison point for FlatFAT in micro-benchmarks.
type TwoStacks[A any] struct {
	combine  func(a, b A) A
	identity A

	// front stack: values and suffix aggregates (aggregate of the stack
	// from this element down to the bottom).
	frontAgg []A
	// back stack: raw values and one running aggregate of all of them.
	backVals []A
	backAgg  A
	hasBack  bool
}

// NewTwoStacks returns an empty two-stack aggregator.
func NewTwoStacks[A any](identity A, combine func(a, b A) A) *TwoStacks[A] {
	return &TwoStacks[A]{combine: combine, identity: identity}
}

// Len returns the number of elements in the window.
func (s *TwoStacks[A]) Len() int { return len(s.frontAgg) + len(s.backVals) }

// Push appends a partial aggregate at the back of the window.
func (s *TwoStacks[A]) Push(a A) {
	s.backVals = append(s.backVals, a)
	if s.hasBack {
		s.backAgg = s.combine(s.backAgg, a)
	} else {
		s.backAgg = a
		s.hasBack = true
	}
}

// PopFront removes the oldest element of the window. It panics if empty.
func (s *TwoStacks[A]) PopFront() {
	if len(s.frontAgg) == 0 {
		s.flip()
	}
	if len(s.frontAgg) == 0 {
		panic("agg: PopFront on empty TwoStacks")
	}
	s.frontAgg = s.frontAgg[:len(s.frontAgg)-1]
}

// flip moves the back stack into the front stack, computing suffix
// aggregates so that the top of frontAgg is always the aggregate of the
// remaining window prefix.
func (s *TwoStacks[A]) flip() {
	n := len(s.backVals)
	if n == 0 {
		return
	}
	// Oldest element of backVals must end up on top of the front stack.
	// frontAgg[i] = combine(backVals[i], backVals[i+1], ..., backVals[n-1])
	// pushed in reverse so index n-1 is at the bottom.
	suffix := make([]A, n)
	acc := s.backVals[n-1]
	suffix[n-1] = acc
	for i := n - 2; i >= 0; i-- {
		acc = s.combine(s.backVals[i], acc)
		suffix[i] = acc
	}
	// Stack order: bottom = suffix[n-1] (newest), top = suffix[0] (oldest).
	for i := n - 1; i >= 0; i-- {
		s.frontAgg = append(s.frontAgg, suffix[i])
	}
	s.backVals = s.backVals[:0]
	s.backAgg = s.identity
	s.hasBack = false
}

// Aggregate returns the aggregate of the whole window, or identity if empty.
func (s *TwoStacks[A]) Aggregate() A {
	switch {
	case len(s.frontAgg) > 0 && s.hasBack:
		return s.combine(s.frontAgg[len(s.frontAgg)-1], s.backAgg)
	case len(s.frontAgg) > 0:
		return s.frontAgg[len(s.frontAgg)-1]
	case s.hasBack:
		return s.backAgg
	default:
		return s.identity
	}
}
