// Personalized recommendations — the second STREAMLINE application: a
// streaming item-popularity and per-user-mean model over a rating stream.
// The pipeline keeps windowed item rating counts and means (trending
// items); the sink assembles "popular and well-rated" suggestions.
//
//	go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/workloads"
	"repro/streamline"
)

// rating is one user rating of an item.
type rating struct {
	Item  uint64
	Score float64
}

func main() {
	const (
		users = 200
		items = 500
	)
	gen := workloads.NewRatings(41, users, items, 2000)

	env := streamline.New(streamline.WithParallelism(2))

	// Trending items — tumbling 10s rating counts and means per item.
	ratings := streamline.From(env, "ratings", streamline.Generator(80_000,
		func(sub, par int, i int64) streamline.Keyed[rating] {
			e := gen.At(i)
			// Key by item for popularity; the score rides in the value.
			return streamline.Keyed[rating]{Ts: e.Ts, Value: rating{Item: e.Attr, Score: e.Value}}
		}), streamline.WithSourceParallelism(1))
	perItem := streamline.KeyBy(ratings, "item", func(r rating) uint64 { return r.Item })
	scores := streamline.Map(perItem, "score", func(r rating) float64 { return r.Score })
	trending := streamline.Collect(
		streamline.WindowAggregate(scores, "popularity",
			streamline.Query(streamline.Tumbling(10_000), streamline.Count()),
			streamline.Query(streamline.Tumbling(10_000), streamline.Avg()),
		), "trending")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Assemble the model from the window results.
	type itemStat struct {
		item  uint64
		count float64
		mean  float64
	}
	stats := map[uint64]*itemStat{}
	for _, r := range trending.Records() {
		st := stats[r.Key]
		if st == nil {
			st = &itemStat{item: r.Key}
			stats[r.Key] = st
		}
		switch r.Value.QueryID {
		case 0:
			st.count += r.Value.Value
		case 1:
			st.mean = (st.mean + r.Value.Value) / 2
		}
	}
	list := make([]*itemStat, 0, len(stats))
	for _, st := range stats {
		list = append(list, st)
	}
	// Recommendation score: popularity damped by mediocre ratings.
	sort.Slice(list, func(i, j int) bool {
		si := list[i].count * list[i].mean
		sj := list[j].count * list[j].mean
		if si != sj {
			return si > sj
		}
		return list[i].item < list[j].item
	})
	fmt.Println("recommended items (popularity x mean rating):")
	for i, st := range list {
		if i >= 10 {
			break
		}
		fmt.Printf("  item %3d  ratings %5.0f  mean %.2f\n", st.item, st.count, st.mean)
	}
	fmt.Printf("catalogue coverage: %d/%d items rated\n", len(list), items)
}
