package streamline

import (
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/window"
)

// Window describes a window shape (tumbling, sliding, session, ...) for
// WindowAggregate.
type Window = window.Spec

// Tumbling returns fixed, gap-free, non-overlapping windows of the given
// size (event-time ticks).
func Tumbling(size int64) Window { return window.Tumbling(size) }

// Sliding returns overlapping windows of the given size, starting every
// slide ticks.
func Sliding(size, slide int64) Window { return window.Sliding(size, slide) }

// Session returns data-driven session windows that close after gap ticks of
// inactivity per key.
func Session(gap int64) Window { return window.Session(gap) }

// SessionWithMaxDuration is Session with an upper bound on window length.
func SessionWithMaxDuration(gap, maxDur int64) Window {
	return window.SessionWithMaxDuration(gap, maxDur)
}

// CountTumbling returns windows of exactly n elements per key.
func CountTumbling(n int64) Window { return window.CountTumbling(n) }

// CountSliding returns n-element windows advancing every `every` elements.
func CountSliding(n, every int64) Window { return window.CountSliding(n, every) }

// Aggregate is a decomposable float64 aggregate function for windowed
// queries.
type Aggregate = *agg.FnF64

// Sum aggregates the window's values by addition.
func Sum() Aggregate { return agg.SumF64() }

// Count counts the window's elements.
func Count() Aggregate { return agg.CountF64() }

// Avg computes the arithmetic mean of the window's values.
func Avg() Aggregate { return agg.AvgF64() }

// Min computes the minimum of the window's values.
func Min() Aggregate { return agg.MinF64() }

// Max computes the maximum of the window's values.
func Max() Aggregate { return agg.MaxF64() }

// WindowedQuery pairs a window shape with an aggregate for WindowAggregate.
type WindowedQuery = core.WindowedQuery

// Query constructs a WindowedQuery.
func Query(w Window, fn Aggregate) WindowedQuery {
	return WindowedQuery{Window: w, Fn: fn}
}

// WindowResult is one fired window of one query: queries are numbered by
// their position in the WindowAggregate call, [Start, End) is the window
// span, Value the aggregate, and Count the number of elements aggregated.
type WindowResult = dataflow.WindowResult

// WindowAggregate runs one or more window queries over the keyed stream
// (KeyBy first). All queries registered in one call share slicing and
// pre-aggregation work per key through the Cutty engine — adding a query to
// an existing call is cheaper than a second WindowAggregate. Each element
// of the result stream is one fired window.
func WindowAggregate(s *Stream[float64], name string, queries ...WindowedQuery) *Stream[WindowResult] {
	s.noteConsumer()
	return &Stream[WindowResult]{env: s.env, inner: s.lower().WindowAggregate(name, queries...)}
}
