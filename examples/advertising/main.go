// Target advertisement — the third STREAMLINE application and the showcase
// for multi-query aggregate sharing: several CTR dashboards with different
// sliding windows run concurrently over one impression stream, and Cutty
// computes them from one shared slice store per campaign.
//
//	go run ./examples/advertising
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/window"
	"repro/internal/workloads"
)

func main() {
	const campaigns = 30
	gen := workloads.NewAdClicks(31, campaigns, 2000)

	env := core.NewEnvironment(core.WithParallelism(2))
	results := env.FromGenerator("impressions", 1, 60_000, func(sub, par int, i int64) dataflow.Record {
		e := gen.At(i)
		// Value carries the click flag; every record is one impression.
		return dataflow.Data(e.Ts, e.Key, float64(e.Attr))
	}).
		KeyBy("campaign", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("dashboards",
			// Three dashboard refresh rates + one count per horizon; all six
			// queries share slicing per campaign.
			core.WindowedQuery{Window: window.Sliding(5_000, 1_000), Fn: agg.SumF64()},
			core.WindowedQuery{Window: window.Sliding(5_000, 1_000), Fn: agg.CountF64()},
			core.WindowedQuery{Window: window.Sliding(15_000, 5_000), Fn: agg.SumF64()},
			core.WindowedQuery{Window: window.Sliding(15_000, 5_000), Fn: agg.CountF64()},
			core.WindowedQuery{Window: window.Tumbling(30_000), Fn: agg.SumF64()},
			core.WindowedQuery{Window: window.Tumbling(30_000), Fn: agg.CountF64()},
		).
		Collect("out")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Reassemble the 30s dashboard: clicks (query 4) / impressions (query 5).
	type key struct {
		campaign uint64
		start    int64
	}
	clicks := map[key]float64{}
	imps := map[key]float64{}
	for _, r := range results.Records() {
		wr := r.Value.(dataflow.WindowResult)
		k := key{r.Key, wr.Start}
		switch wr.QueryID {
		case 4:
			clicks[k] += wr.Value
		case 5:
			imps[k] += wr.Value
		}
	}
	type row struct {
		campaign uint64
		ctr      float64
		imps     float64
	}
	agg30 := map[uint64]*row{}
	for k, n := range imps {
		r := agg30[k.campaign]
		if r == nil {
			r = &row{campaign: k.campaign}
			agg30[k.campaign] = r
		}
		r.imps += n
		r.ctr += clicks[k]
	}
	rows := make([]*row, 0, len(agg30))
	for _, r := range agg30 {
		if r.imps > 0 {
			r.ctr /= r.imps
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ctr > rows[j].ctr })
	fmt.Println("top campaigns by CTR (30s tumbling dashboard):")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("  campaign %2d  impressions %6.0f  ctr %5.2f%%\n", r.campaign, r.imps, r.ctr*100)
	}
}
