package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataflow"
)

// The scan benchmark records the splittable at-rest scan trajectory: the
// same file drained through the engine with the pre-split round-robin
// design (every subtask scans the whole file and keeps its 1/p of the
// lines — p× the scan work) and with byte-range splits handed out by the
// dynamic assigner (each subtask scans ~1/p of the file). Two pipelines run
// at parallelism 1/2/4: "scan" counts lines with a near-free decode (the
// pure scan path under measurement) and "wordcount" tokenizes every owned
// line into words (decode work shared by both designs). A separate pair of
// measurements shows restore cost: seek-based split restore is O(remaining
// split), the legacy row-cursor restore re-scans O(file). Results are
// written to BENCH_scan.json by `streamline-bench -scan`.

// ScanRun is one (pipeline, mode, parallelism, split size) measurement.
type ScanRun struct {
	Pipeline    string  `json:"pipeline"` // "scan" | "wordcount"
	Mode        string  `json:"mode"`     // "roundrobin" | "splits"
	Parallelism int     `json:"parallelism"`
	SplitSize   int64   `json:"split_size,omitempty"`
	Lines       int64   `json:"lines"`
	Bytes       int64   `json:"bytes"`
	Seconds     float64 `json:"seconds"`
	LinesPerSec float64 `json:"lines_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// ScanRestoreRun is one restore-cost measurement: time from Restore to the
// first record, resuming at ~7/8 of the file.
type ScanRestoreRun struct {
	Mode          string  `json:"mode"` // "seek" | "legacy_rescan"
	FileBytes     int64   `json:"file_bytes"`
	ResumeAtLines int64   `json:"resume_at_lines"`
	FirstRecordMs float64 `json:"first_record_ms"`
}

// ScanReport is the full suite.
type ScanReport struct {
	DefaultSplitSize int64              `json:"default_split_size"`
	Runs             []ScanRun          `json:"runs"`
	Restore          []ScanRestoreRun   `json:"restore"`
	Speedup          map[string]float64 `json:"speedup"`
}

// scanBatch is how many owned lines a bench decode folds into one emitted
// record, keeping the downstream volume negligible next to the scan itself.
const scanBatch = 4096

// scanVocab pads the generated lines to realistic widths.
var scanVocab = []string{
	"stream", "line", "data", "at", "rest", "in", "motion", "window",
	"watermark", "barrier", "split", "assigner", "byte", "range", "seek",
}

// writeScanFile generates the benchmark input: n lines of space-separated
// words, ~70-90 bytes each. Returns the path and the byte size.
func writeScanFile(dir string, n int64) (string, int64, error) {
	path := filepath.Join(dir, "scan-input.txt")
	f, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var total int64
	for i := int64(0); i < n; i++ {
		k, err := fmt.Fprintf(w, "rec%08d %s %s %s %s %s %s %s %s\n", i,
			scanVocab[i%15], scanVocab[(i+1)%15], scanVocab[(i+2)%15],
			scanVocab[(i+3)%15], scanVocab[(i+5)%15], scanVocab[(i+7)%15],
			scanVocab[(i+11)%15], scanVocab[(i+13)%15])
		if err != nil {
			f.Close()
			return "", 0, err
		}
		total += int64(k)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return "", 0, err
	}
	return path, total, f.Close()
}

// countWords counts space-separated words — the wordcount pipeline's
// per-owned-line decode work, identical in both modes.
func countWords(line []byte) int64 {
	var n int64
	inWord := false
	for _, b := range line {
		if b == ' ' {
			inWord = false
		} else if !inWord {
			inWord = true
			n++
		}
	}
	return n
}

// rrLineScan replays the pre-split design as the benchmark baseline: every
// subtask opens the file, scans and tokenizes all of it, and keeps the lines
// whose index is congruent to its subtask modulo the parallelism — exactly
// what LineFileSource did before splits.
type rrLineScan struct {
	path     string
	sub, par int
	words    bool // wordcount pipeline: tokenize owned lines

	sc    *bufio.Scanner
	f     *os.File
	idx   int64
	acc   int64 // owned lines (or words) since the last emitted record
	batch int64
	done  bool
	err   error
}

func (r *rrLineScan) Next() (dataflow.Record, bool) {
	if r.err != nil || r.done {
		return dataflow.Record{}, false
	}
	if r.f == nil {
		f, err := os.Open(r.path)
		if err != nil {
			r.err = err
			return dataflow.Record{}, false
		}
		r.f = f
		r.sc = bufio.NewScanner(f)
		r.sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	}
	for r.sc.Scan() {
		idx := r.idx
		r.idx++
		if idx%int64(r.par) != int64(r.sub) {
			continue
		}
		if r.words {
			r.acc += countWords(r.sc.Bytes())
		} else {
			r.acc++
		}
		r.batch++
		if r.batch >= scanBatch {
			rec := dataflow.Data(idx, 0, float64(r.acc))
			r.acc, r.batch = 0, 0
			return rec, true
		}
	}
	r.err = r.sc.Err()
	r.f.Close()
	r.f = nil
	r.done = true
	if r.err == nil && r.acc > 0 {
		rec := dataflow.Data(r.idx, 0, float64(r.acc))
		r.acc, r.batch = 0, 0
		return rec, true
	}
	return dataflow.Record{}, false
}

func (r *rrLineScan) Snapshot() ([]byte, error) { return []byte{0}, nil }
func (r *rrLineScan) Restore([]byte) error      { return nil }
func (r *rrLineScan) Err() error                { return r.err }

// scanFactory builds the split-mode source: the shared plan assigns
// byte-range splits dynamically, and the per-subtask decode folds owned
// lines (or their words) into one record per scanBatch.
func scanFactory(path string, splitSize int64, words bool) dataflow.SourceFactory {
	var plan *dataflow.ScanPlan
	return func(sub, par int) dataflow.SourceFunc {
		if sub == 0 || plan == nil {
			plan = &dataflow.ScanPlan{Inputs: []string{path}, SplitSize: splitSize}
		}
		var acc, batch int64
		src := &dataflow.FileScanSource{Plan: plan, Subtask: sub, Parallelism: par}
		src.DecodeLine = func(line []byte, off int64) (dataflow.Record, bool, error) {
			if words {
				acc += countWords(line)
			} else {
				acc++
			}
			batch++
			if batch >= scanBatch {
				rec := dataflow.Data(off, 0, float64(acc))
				acc, batch = 0, 0
				return rec, true, nil
			}
			return dataflow.Record{}, false, nil
		}
		return src
	}
}

// runScanJob drains one scan pipeline through the engine and returns the
// elapsed seconds.
func runScanJob(factory dataflow.SourceFactory, par int) (float64, error) {
	g := dataflow.NewGraph("scan-bench")
	src := g.AddSource("scan", par, factory)
	sink := &dataflow.CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), dataflow.Edge{From: src, Part: dataflow.Rebalance})
	start := time.Now()
	if err := dataflow.NewJob(g).Run(context.Background()); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// scanOnce measures one configuration.
func scanOnce(pipeline, mode, path string, lines, size, splitSize int64, par int) (ScanRun, error) {
	words := pipeline == "wordcount"
	var factory dataflow.SourceFactory
	if mode == "roundrobin" {
		factory = func(sub, parallelism int) dataflow.SourceFunc {
			return &rrLineScan{path: path, sub: sub, par: parallelism, words: words}
		}
	} else {
		factory = scanFactory(path, splitSize, words)
	}
	el, err := runScanJob(factory, par)
	if err != nil {
		return ScanRun{}, fmt.Errorf("%s/%s p=%d: %w", pipeline, mode, par, err)
	}
	run := ScanRun{
		Pipeline: pipeline, Mode: mode, Parallelism: par,
		Lines: lines, Bytes: size, Seconds: el,
		LinesPerSec: float64(lines) / el,
		MBPerSec:    float64(size) / el / (1 << 20),
	}
	if mode == "splits" {
		run.SplitSize = splitSize
	}
	return run, nil
}

// legacyCursorBlob encodes a pre-split fileCursorState{Next} snapshot — the
// versioned decoder accepts it by field name, so the bench can exercise the
// legacy O(file) restore path without the old reader.
func legacyCursorBlob(next int64) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(struct{ Next int64 }{Next: next})
	return buf.Bytes(), err
}

// scanRestore measures the two restore paths at a resume position ~7/8 into
// the file: seek-based split restore versus the legacy row-cursor re-scan.
func scanRestore(path string, lines, size int64) ([]ScanRestoreRun, error) {
	keepAll := func(line []byte, off int64) (dataflow.Record, bool, error) {
		return dataflow.Data(off, 0, 1.0), true, nil
	}
	mk := func() *dataflow.FileScanSource {
		return &dataflow.FileScanSource{
			Plan:    &dataflow.ScanPlan{Inputs: []string{path}, SplitSize: size/8 + 1},
			Subtask: 0, Parallelism: 1, DecodeLine: keepAll,
		}
	}
	resumeAt := lines * 7 / 8

	// Seek path: consume 7/8 of the records, snapshot, restore fresh.
	src := mk()
	for i := int64(0); i < resumeAt; i++ {
		if _, ok := src.Next(); !ok {
			return nil, fmt.Errorf("scan restore bench: input ended at %d lines", i)
		}
	}
	blob, err := src.Snapshot()
	if err != nil {
		return nil, err
	}
	seek := mk()
	t0 := time.Now()
	if err := seek.Restore(blob); err != nil {
		return nil, err
	}
	if _, ok := seek.Next(); !ok {
		return nil, fmt.Errorf("seek restore emitted nothing")
	}
	seekMs := float64(time.Since(t0).Nanoseconds()) / 1e6

	// Legacy path: a pre-split cursor at the same position re-scans the
	// whole prefix before the first record.
	legacyBlob, err := legacyCursorBlob(resumeAt)
	if err != nil {
		return nil, err
	}
	legacy := mk()
	t1 := time.Now()
	if err := legacy.Restore(legacyBlob); err != nil {
		return nil, err
	}
	if _, ok := legacy.Next(); !ok {
		return nil, fmt.Errorf("legacy restore emitted nothing")
	}
	legacyMs := float64(time.Since(t1).Nanoseconds()) / 1e6

	return []ScanRestoreRun{
		{Mode: "seek", FileBytes: size, ResumeAtLines: resumeAt, FirstRecordMs: seekMs},
		{Mode: "legacy_rescan", FileBytes: size, ResumeAtLines: resumeAt, FirstRecordMs: legacyMs},
	}, nil
}

// Scan runs the scan benchmark suite.
func Scan(quick bool) (*ScanReport, error) {
	n := int64(800_000)
	if quick {
		n = 120_000
	}
	dir, err := os.MkdirTemp("", "streamline-scan")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path, size, err := writeScanFile(dir, n)
	if err != nil {
		return nil, err
	}

	rep := &ScanReport{
		DefaultSplitSize: dataflow.DefaultSplitSize,
		Speedup:          map[string]float64{},
	}
	base := map[string]float64{}
	record := func(run ScanRun, err error) error {
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, run)
		key := fmt.Sprintf("%s_p%d", run.Pipeline, run.Parallelism)
		if run.Mode == "roundrobin" {
			base[key] = run.LinesPerSec
		} else if run.SplitSize == dataflow.DefaultSplitSize {
			if b := base[key]; b > 0 {
				rep.Speedup[key] = run.LinesPerSec / b
			}
		}
		return nil
	}
	for _, par := range []int{1, 2, 4} {
		if err := record(scanOnce("scan", "roundrobin", path, n, size, 0, par)); err != nil {
			return nil, err
		}
		if err := record(scanOnce("scan", "splits", path, n, size, dataflow.DefaultSplitSize, par)); err != nil {
			return nil, err
		}
	}
	// Split-size sweep at the headline parallelism.
	for _, ss := range []int64{256 << 10, 1 << 20} {
		if err := record(scanOnce("scan", "splits", path, n, size, ss, 4)); err != nil {
			return nil, err
		}
	}
	// The wordcount pipeline: decode work on every owned line in both modes.
	for _, mode := range []string{"roundrobin", "splits"} {
		ss := int64(0)
		if mode == "splits" {
			ss = dataflow.DefaultSplitSize
		}
		if err := record(scanOnce("wordcount", mode, path, n, size, ss, 4)); err != nil {
			return nil, err
		}
	}

	restore, err := scanRestore(path, n, size)
	if err != nil {
		return nil, err
	}
	rep.Restore = restore
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *ScanReport) Table() *Table {
	t := &Table{
		ID:     "SCAN",
		Title:  "splittable at-rest scan: byte-range splits vs round-robin full-file scans",
		Claim:  "history replay scales with workers (H-STREAM), restore seeks instead of re-scanning",
		Header: []string{"pipeline", "mode", "par", "split size", "runtime", "lines/sec", "MB/sec"},
	}
	for _, run := range r.Runs {
		ss := "-"
		if run.SplitSize > 0 {
			ss = fmtCount(float64(run.SplitSize))
		}
		t.Add(run.Pipeline, run.Mode, fmt.Sprintf("%d", run.Parallelism), ss,
			fmt.Sprintf("%.3fs", run.Seconds), fmtRate(run.LinesPerSec),
			fmt.Sprintf("%.0f", run.MBPerSec))
	}
	for key, s := range r.Speedup {
		t.Note("%s: %.2fx lines/sec with splits (default size) over round-robin", key, s)
	}
	for _, rr := range r.Restore {
		t.Note("restore %s: first record after %.2fms (resume at line %d of a %s-byte file)",
			rr.Mode, rr.FirstRecordMs, rr.ResumeAtLines, fmtCount(float64(rr.FileBytes)))
	}
	return t
}

// WriteJSON records the report (the perf trajectory file BENCH_scan.json).
func (r *ScanReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
