package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/window"
)

// WindowQuery names a window aggregation declaratively so that the operator
// can be reconstructed on recovery (specs and functions live in the job
// definition; only mutable state is checkpointed).
type WindowQuery struct {
	Spec window.Spec
	Fn   *agg.FnF64
}

// WindowOp is the keyed window aggregation operator. It receives keyed
// float64 records (after a hash edge), restores event-time order with a
// watermark-driven reorder buffer (merging the per-upstream in-order streams
// re-introduces disorder), and runs one Cutty engine per key. Window results
// are emitted as records whose Value is a WindowResult and whose Ts is the
// window end.
//
// All mutable state — the per-key engines, the per-key reorder buffers and
// the per-group release watermark — lives in a state.KeyedState, so the
// operator snapshots per key group (asynchronously, behind a copy-on-write
// capture) and restores at any parallelism.
type WindowOp struct {
	Queries []WindowQuery

	out         Collector
	ks          *state.KeyedState
	engines     *state.MapCell[*cutty.Engine]
	buf         *state.MapCell[[]bufEntry]
	wm          *state.GroupCell[int64]
	curKey      uint64
	droppedLate int64
	droppedCtr  *metrics.Counter

	// Vectorized-run scratch (see OnBatch), reused across calls.
	kt     keyTable
	recIdx []int32    // per record: dense key index, -1 = skipped (non-float64)
	segLen []int32    // per dense key: element count in the run
	segOff []int32    // per dense key: gather cursor (segment end after fill)
	gather []bufEntry // run elements grouped by key, record order within a key
}

// bufEntry is one buffered, not-yet-released element of a key's reorder
// buffer (exported fields for gob).
type bufEntry struct {
	Ts  int64
	Val float64
}

var _ Operator = (*WindowOp)(nil)
var _ KeyedStateful = (*WindowOp)(nil)

// NewWindowOp returns an operator factory running the given queries.
func NewWindowOp(queries ...WindowQuery) OperatorFactory {
	return func() Operator { return &WindowOp{Queries: queries} }
}

func (w *WindowOp) newEngine() *cutty.Engine {
	e := cutty.New(w.emitResult)
	for _, q := range w.Queries {
		if _, err := e.AddQuery(engine.Query{Window: q.Spec, Fn: q.Fn}); err != nil {
			// Queries are validated at graph build; this is unreachable in a
			// validated job.
			panic(fmt.Sprintf("dataflow: window query rejected: %v", err))
		}
	}
	return e
}

// cloneEngine deep-copies an engine via its snapshot codec — the
// copy-on-write path taken when a key is mutated while its captured state
// is still being serialized.
func (w *WindowOp) cloneEngine(e *cutty.Engine) *cutty.Engine {
	var buf bytes.Buffer
	if err := e.Snapshot(gob.NewEncoder(&buf)); err != nil {
		panic(fmt.Sprintf("dataflow: window engine clone (snapshot): %v", err))
	}
	ne := w.newEngine()
	if err := ne.Restore(gob.NewDecoder(bytes.NewReader(buf.Bytes()))); err != nil {
		panic(fmt.Sprintf("dataflow: window engine clone (restore): %v", err))
	}
	return ne
}

func (w *WindowOp) emitResult(r engine.Result) {
	w.out.Collect(Data(r.End, w.curKey, WindowResult{
		QueryID: r.QueryID,
		Start:   r.Start,
		End:     r.End,
		Value:   r.Value,
		Count:   r.Count,
	}))
}

// Open implements Operator.
func (w *WindowOp) Open(ctx *OpContext) error {
	w.ks = ctx.NewKeyedState()
	w.engines = state.RegisterMap(w.ks, "engines", state.Codec[*cutty.Engine]{
		Encode: func(enc *gob.Encoder, e *cutty.Engine) error { return e.Snapshot(enc) },
		Decode: func(dec *gob.Decoder) (*cutty.Engine, error) {
			e := w.newEngine()
			return e, e.Restore(dec)
		},
		Clone: w.cloneEngine,
	})
	w.buf = state.RegisterMap(w.ks, "buf", state.SliceCodec[bufEntry]())
	w.wm = state.RegisterPerGroup(w.ks, "wm", int64(math.MinInt64), state.GobCodec[int64]())
	if ctx.Metrics != nil {
		w.droppedCtr = ctx.Metrics.Counter("node." + ctx.NodeName + ".records_dropped_late")
	}
	return ctx.RestoreKeyedState(w.ks)
}

// KeyedState implements KeyedStateful.
func (w *WindowOp) KeyedState() *state.KeyedState { return w.ks }

// Snapshot implements Operator. All window state is keyed and travels per
// key group through KeyedState; there is no residual per-subtask state.
func (w *WindowOp) Snapshot() ([]byte, error) { return nil, nil }

// OnRecord implements Operator: buffer until the watermark releases. Late
// elements — older than their key group's release watermark — are dropped
// (allowed lateness zero): releasing them would feed the per-key engines
// out-of-order input. The count of dropped records is observable via
// DroppedLate and, when the job runs with metrics, the per-node
// records_dropped_late counter.
func (w *WindowOp) OnRecord(r Record, _ Collector) {
	v, ok := r.Value.(float64)
	if !ok {
		return
	}
	if r.Ts <= w.wm.Get(r.Key) {
		w.droppedLate++
		if w.droppedCtr != nil {
			w.droppedCtr.Inc()
		}
		return
	}
	entries, _ := w.buf.Get(r.Key)
	// Appending never mutates the visible prefix, so a captured view of the
	// old slice header stays intact; sorting and compacting below go
	// through GetMut.
	w.buf.Put(r.Key, append(entries, bufEntry{Ts: r.Ts, Val: v}))
}

// OnBatch implements BatchedOperator: the run is grouped by key (counting
// sort into a reused gather buffer), then each distinct key pays one release-
// watermark read, one reorder-buffer load and one store for all its elements
// instead of one of each per record. Appending a key's survivors in a single
// append also grows the buffer once per run instead of element by element.
// The release watermark only moves in OnWatermark — never inside a data run
// — so one read per key is exact, and the per-element late check against it
// matches OnRecord's decision bit for bit. OnBatch emits nothing (results
// fire on watermarks), so ordering is trivially preserved.
func (w *WindowOp) OnBatch(b []Record, _ Collector) []Record {
	w.kt.reset()
	w.recIdx = w.recIdx[:0]
	w.segLen = w.segLen[:0]
	for i := range b {
		if _, ok := b[i].Value.(float64); !ok {
			w.recIdx = append(w.recIdx, -1)
			continue
		}
		idx, fresh := w.kt.index(b[i].Key)
		if fresh {
			w.segLen = append(w.segLen, 0)
		}
		w.segLen[idx]++
		w.recIdx = append(w.recIdx, idx)
	}
	keys := w.kt.distinct()
	if len(keys) == 0 {
		return nil
	}
	w.segOff = w.segOff[:0]
	total := int32(0)
	for _, n := range w.segLen {
		w.segOff = append(w.segOff, total)
		total += n
	}
	if cap(w.gather) < int(total) {
		w.gather = make([]bufEntry, total)
	} else {
		w.gather = w.gather[:total]
	}
	for i := range b {
		d := w.recIdx[i]
		if d < 0 {
			continue
		}
		w.gather[w.segOff[d]] = bufEntry{Ts: b[i].Ts, Val: b[i].Value.(float64)}
		w.segOff[d]++
	}
	var dropped int64
	for d, key := range keys {
		end := w.segOff[d]
		seg := w.gather[end-w.segLen[d] : end]
		wm := w.wm.Get(key)
		keep := seg[:0]
		for _, e := range seg {
			if e.Ts <= wm {
				dropped++
			} else {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			continue
		}
		ref := w.buf.RefFor(key)
		entries, _ := ref.Get()
		// Like OnRecord: append-only growth keeps a captured view of the old
		// slice header intact, so Get+Put (not GetMut) is COW-safe here.
		ref.Put(append(entries, keep...))
	}
	if dropped > 0 {
		w.droppedLate += dropped
		if w.droppedCtr != nil {
			w.droppedCtr.Add(dropped)
		}
	}
	return nil
}

// DroppedLate reports how many elements arrived after the watermark had
// passed their timestamp and were therefore excluded.
func (w *WindowOp) DroppedLate() int64 { return w.droppedLate }

// engineFor returns the key's engine for mutation, creating it on demand.
func (w *WindowOp) engineFor(key uint64) *cutty.Engine {
	e, ok := w.engines.GetMut(key)
	if !ok {
		e = w.newEngine()
		w.engines.Put(key, e)
	}
	return e
}

// OnWatermark implements Operator: release buffered records with ts <= wm
// per key in event-time order into the key's engine, then advance every
// engine's watermark and the per-group release watermark. The sweep runs
// eagerly — window results must be emitted before the runtime forwards the
// watermark downstream, or a downstream event-time operator would drop
// them as late. While a snapshot capture is serializing, each engine the
// sweep touches pays its copy-on-write clone once; that cost is bounded by
// one deep copy per engine per checkpoint and never blocks the barrier.
func (w *WindowOp) OnWatermark(wm int64, out Collector) {
	w.out = out
	for _, key := range w.buf.SortedKeys() {
		entries, _ := w.buf.Get(key)
		due := false
		for i := range entries {
			if entries[i].Ts <= wm {
				due = true
				break
			}
		}
		if !due {
			continue
		}
		entries, _ = w.buf.GetMut(key)
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Ts < entries[j].Ts })
		e := w.engineFor(key)
		w.curKey = key
		i := 0
		for ; i < len(entries) && entries[i].Ts <= wm; i++ {
			e.OnWatermark(entries[i].Ts)
			e.OnElement(entries[i].Ts, entries[i].Val)
		}
		if i == len(entries) {
			w.buf.Delete(key)
		} else {
			w.buf.Put(key, entries[i:])
		}
	}
	for _, key := range w.engines.SortedKeys() {
		w.curKey = key
		w.engineFor(key).OnWatermark(wm)
	}
	w.wm.SetAll(wm)
	w.out = nil
}

// Finish implements Operator: flush every remaining window.
func (w *WindowOp) Finish(out Collector) {
	w.OnWatermark(math.MaxInt64, out)
}
