// Command streamline-bench runs the STREAMLINE experiment suite E1–E10 and
// prints one table per experiment (see DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	streamline-bench              # all experiments, full sizes
//	streamline-bench -quick       # all experiments, reduced sizes
//	streamline-bench -e E2,E4     # selected experiments
//	streamline-bench -exchange BENCH_exchange.json
//	                              # exchange benchmark only: batched vs
//	                              # per-record data plane, results to JSON
//	streamline-bench -state BENCH_state.json
//	                              # keyed-state snapshot benchmark only:
//	                              # copy-on-write capture vs synchronous
//	                              # whole-state gob, results to JSON
//	streamline-bench -scan BENCH_scan.json
//	                              # at-rest scan benchmark only: byte-range
//	                              # splits vs round-robin full-file scans
//	                              # plus seek vs re-scan restore, to JSON
//	streamline-bench -topic BENCH_topic.json
//	                              # topic store benchmark only: segment-log
//	                              # append throughput, Topic-vs-JSONL replay,
//	                              # follow-mode latency, results to JSON
//	streamline-bench -net BENCH_net.json
//	                              # exchange transport benchmark only:
//	                              # in-process channels vs loopback TCP at
//	                              # batch sizes 1/64/256, results to JSON
//	streamline-bench -fusion BENCH_fusion.json
//	                              # vectorized operator chain benchmark only:
//	                              # fused OnBatch execution vs per-record
//	                              # boxing, throughput + allocs/record to JSON
//	streamline-bench -keyed BENCH_keyed.json
//	                              # vectorized keyed hot path benchmark only:
//	                              # run-grouped state access + batched hash
//	                              # routing vs per-record keyed dispatch on
//	                              # windowed-aggregation and reduce-by-key
//	                              # pipelines, throughput + allocs/record
//	streamline-bench -recover BENCH_recover.json
//	                              # supervised recovery benchmark only: inject
//	                              # worker kills into a supervised job and
//	                              # measure detect→restored MTTR per restart,
//	                              # results to JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run with reduced input sizes")
	exps := flag.String("e", "", "comma-separated experiment ids (default: all)")
	exchange := flag.String("exchange", "", "run the exchange benchmark and write JSON results to this path")
	stateBench := flag.String("state", "", "run the keyed-state snapshot benchmark and write JSON results to this path")
	scanBench := flag.String("scan", "", "run the at-rest scan benchmark and write JSON results to this path")
	topicBench := flag.String("topic", "", "run the topic store benchmark and write JSON results to this path")
	netBench := flag.String("net", "", "run the exchange transport benchmark and write JSON results to this path")
	fusionBench := flag.String("fusion", "", "run the vectorized operator chain benchmark and write JSON results to this path")
	keyedBench := flag.String("keyed", "", "run the vectorized keyed hot path benchmark and write JSON results to this path")
	recoverBench := flag.String("recover", "", "run the supervised recovery benchmark and write JSON results to this path")
	flag.Parse()

	if *recoverBench != "" {
		rep, err := bench.Recover(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recover benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*recoverBench); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *recoverBench, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *recoverBench)
		return
	}

	if *keyedBench != "" {
		rep, err := bench.Keyed(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "keyed benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*keyedBench); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *keyedBench, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *keyedBench)
		return
	}

	if *fusionBench != "" {
		rep, err := bench.Fusion(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusion benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*fusionBench); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *fusionBench, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *fusionBench)
		return
	}

	if *netBench != "" {
		rep, err := bench.Net(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "net benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*netBench); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *netBench, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *netBench)
		return
	}

	if *topicBench != "" {
		rep, err := bench.Topic(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topic benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*topicBench); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *topicBench, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *topicBench)
		return
	}

	if *scanBench != "" {
		rep, err := bench.Scan(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scan benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*scanBench); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *scanBench, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *scanBench)
		return
	}

	if *stateBench != "" {
		rep, err := bench.State(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "state benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*stateBench); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *stateBench, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *stateBench)
		return
	}

	if *exchange != "" {
		rep, err := bench.Exchange(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exchange benchmark failed: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Fprint(os.Stdout)
		if err := rep.WriteJSON(*exchange); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *exchange, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *exchange)
		return
	}

	if *exps == "" {
		for _, t := range bench.All(*quick) {
			t.Fprint(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		run := bench.ByID(id)
		if run == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: E1..E11)\n", id)
			os.Exit(2)
		}
		run(*quick).Fprint(os.Stdout)
	}
}
