package transport

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/state"
)

// The assembler is what keeps restarted epochs sane: after a recovery the
// control streams may still carry acks for a checkpoint the failed epoch
// abandoned, and they must never pollute the snapshot being assembled.
func TestAssemblerDropsStaleAndDuplicateAcks(t *testing.T) {
	a := &assembler{need: 2, numGroups: 8}
	keyA := state.SubtaskKey{OperatorID: 1, Subtask: 0}
	keyB := state.SubtaskKey{OperatorID: 1, Subtask: 1}

	if snap := a.offer(dataflow.Ack{Ckpt: 4, Key: keyA}); snap != nil {
		t.Fatal("ack with no checkpoint in flight must be dropped")
	}
	if a.inFlight() {
		t.Fatal("nothing was begun; no checkpoint should be in flight")
	}

	a.begin(5)
	if !a.inFlight() {
		t.Fatal("begin must open an in-flight checkpoint")
	}
	// Stale ack from checkpoint 4, abandoned by the previous epoch: dropped,
	// and its blob must not leak into checkpoint 5.
	if snap := a.offer(dataflow.Ack{Ckpt: 4, Key: keyA, Blob: []byte("stale")}); snap != nil {
		t.Fatal("stale ack must not complete the snapshot")
	}
	if snap := a.offer(dataflow.Ack{Ckpt: 5, Key: keyA, Blob: []byte("a"), Groups: map[int][]byte{3: []byte("ga")}}); snap != nil {
		t.Fatal("first of two subtasks must not complete the snapshot")
	}
	// Duplicate (e.g. redelivered after a control hiccup): dropped, first
	// blob wins.
	if snap := a.offer(dataflow.Ack{Ckpt: 5, Key: keyA, Blob: []byte("dup")}); snap != nil {
		t.Fatal("duplicate ack must not complete the snapshot")
	}

	snap := a.offer(dataflow.Ack{Ckpt: 5, Key: keyB, Blob: []byte("b")})
	if snap == nil {
		t.Fatal("last subtask's ack must complete the snapshot")
	}
	if snap.CheckpointID != 5 {
		t.Fatalf("CheckpointID = %d, want 5", snap.CheckpointID)
	}
	if got := string(snap.Get(keyA)); got != "a" {
		t.Fatalf("subtask A blob = %q, want %q (stale/duplicate acks must not overwrite)", got, "a")
	}
	if got := string(snap.Get(keyB)); got != "b" {
		t.Fatalf("subtask B blob = %q, want %q", got, "b")
	}
	if got := string(snap.GetGroup(state.GroupKey{OperatorID: 1, KeyGroup: 3})); got != "ga" {
		t.Fatalf("key-group blob = %q, want %q", got, "ga")
	}
	if a.inFlight() {
		t.Fatal("completion must clear the in-flight checkpoint")
	}
	if again := a.offer(dataflow.Ack{Ckpt: 5, Key: keyB, Blob: []byte("late")}); again != nil {
		t.Fatal("acks after completion must be dropped")
	}
}

func TestConfigHeartbeatDefaults(t *testing.T) {
	if i, to := (Config{}).heartbeat(); i != DefaultHeartbeatInterval || to != DefaultHeartbeatTimeout {
		t.Fatalf("zero config = (%v, %v), want defaults (%v, %v)", i, to, DefaultHeartbeatInterval, DefaultHeartbeatTimeout)
	}
	if i, to := (Config{HeartbeatInterval: 50 * time.Millisecond}).heartbeat(); i != 50*time.Millisecond || to != 200*time.Millisecond {
		t.Fatalf("interval-only config = (%v, %v), want (50ms, 200ms)", i, to)
	}
	if i, to := (Config{HeartbeatInterval: time.Second, HeartbeatTimeout: 3 * time.Second}).heartbeat(); i != time.Second || to != 3*time.Second {
		t.Fatalf("explicit config = (%v, %v), want (1s, 3s)", i, to)
	}
}

func TestBackoffDelayCappedExponentialWithJitter(t *testing.T) {
	pol := SupervisionPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}.withDefaults()
	for attempt := 0; attempt < 20; attempt++ {
		want := pol.BaseBackoff << uint(attempt)
		if want <= 0 || want > pol.MaxBackoff {
			want = pol.MaxBackoff
		}
		for trial := 0; trial < 32; trial++ {
			d := backoffDelay(pol, attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside equal-jitter band [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

func TestDialRetrySucceedsAfterCoordinatorAppears(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening yet: the first dials must fail and retry

	ready := make(chan net.Listener, 1)
	go func() {
		time.Sleep(80 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			close(ready)
			return
		}
		ready <- ln2
	}()
	conn, err := DialRetry(context.Background(), addr, DialPolicy{BaseDelay: 5 * time.Millisecond, MaxWait: 5 * time.Second})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	conn.Close()
	if ln2, ok := <-ready; ok {
		ln2.Close()
	} else {
		t.Fatal("late listener failed to bind")
	}
}

func TestDialRetryExhaustsBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	_, err = DialRetry(context.Background(), addr, DialPolicy{BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, MaxWait: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("dialing a dead address must fail once the budget is spent")
	}
	if !strings.Contains(err.Error(), "retries exhausted") {
		t.Fatalf("error %q does not mention the exhausted retry budget", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget of 100ms took %v to exhaust", elapsed)
	}
}

func TestDialRetryHonorsContext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := DialRetry(ctx, addr, DialPolicy{BaseDelay: 5 * time.Millisecond, MaxWait: 30 * time.Second}); err == nil {
		t.Fatal("cancelled dial must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}
