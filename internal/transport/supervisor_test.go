// Fault-injection tests for the supervised distributed runtime: a typed
// pipeline is driven through the transport.Supervisor directly, with the
// control plane wrapped in the chaos harness so the test can impose crashes,
// connection drops, and the hung-but-open blackhole that only heartbeat
// timeouts can detect. The external test package lets these tests build
// their graphs through the streamline layer, exactly as real jobs do.
package transport_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dataflow"
	"repro/internal/transport"
	"repro/streamline"
)

// soakEnv builds the soak pipeline: a deterministic paced generator, keyed
// 31 ways, summed per key behind a hash shuffle. The reduce emits only at
// end of stream, so every record the sink sees belongs to the epoch that
// completed — the byte-identity invariant the soak test checks.
func soakEnv(events int64, perSec float64) (*streamline.Env, *streamline.Results[float64]) {
	env := streamline.New(streamline.WithParallelism(2))
	var gen streamline.Source[float64] = streamline.Generator(events, func(sub, par int, i int64) streamline.Keyed[float64] {
		global := i*int64(par) + int64(sub)
		return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 31), Value: float64(global%7) + 1}
	})
	if perSec > 0 {
		gen = streamline.Paced(gen, perSec)
	}
	src := streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
	keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	return env, streamline.Collect(sums, "out")
}

func renderSums(out *streamline.Results[float64]) string {
	lines := make([]string, 0, len(out.Records()))
	for _, r := range out.Records() {
		lines = append(lines, fmt.Sprintf("%d=%v", r.Key, r.Value))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// soakBuild is the workers' SPMD rebuild of the identical pipeline.
func soakBuild(events int64, perSec float64) transport.BuildFunc {
	return func(string, []string) (*dataflow.Graph, bool, error) {
		env, _ := soakEnv(events, perSec)
		return env.Core().Graph(), env.Core().Chaining(), nil
	}
}

// TestSupervisorSoakSurvivesKills is the kill-and-recover soak: a supervised
// two-worker job absorbs three injected faults — a worker crash
// mid-checkpoint, a control-plane blackhole only heartbeat timeouts can
// detect, and a hard connection drop — and still produces output
// byte-identical to an unfaulted single-process run.
func TestSupervisorSoakSurvivesKills(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const events, pace = 24_000, 2_500.0 // ~4.8s of stream per source subtask

	localEnv, localOut := soakEnv(events, 0)
	if err := localEnv.Execute(ctx); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := renderSums(localOut)
	if want == "" {
		t.Fatal("reference run produced no sums")
	}

	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chLn := chaos.Wrap(rawLn)
	backend := streamline.NewMemoryBackend(0)
	supEnv, supOut := soakEnv(events, pace)
	cfg := transport.Config{
		Graph:             supEnv.Core().Graph(),
		Chaining:          supEnv.Core().Chaining(),
		Workers:           2,
		Backend:           backend,
		Interval:          10 * time.Millisecond,
		Listener:          chLn,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
	}
	sup, err := transport.NewSupervisor(cfg, transport.SupervisionPolicy{
		MaxRestarts:  12,
		BaseBackoff:  10 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		RejoinWindow: 400 * time.Millisecond,
		MinWorkers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}

	killer := chaos.NewKiller()
	var wg sync.WaitGroup
	startWorker := func(name string) {
		wctx, wcancel := context.WithCancel(ctx)
		killer.RegisterCancel(name, wcancel)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wcancel()
			// The loop rejoins across supervised epochs; errors are expected
			// for killed workers and irrelevant to the output invariant.
			_ = transport.RunWorkerLoop(wctx, sup.Addr(), nil, soakBuild(events, pace),
				transport.WithWorkerDialPolicy(transport.DialPolicy{BaseDelay: 5 * time.Millisecond, MaxWait: 5 * time.Second}))
		}()
	}
	startWorker("w1")
	startWorker("w2")

	supErr := make(chan error, 1)
	go func() { supErr <- sup.Run(ctx) }()

	// waitCkpts blocks until the cumulative completed-checkpoint count
	// reaches n — proof the current epoch is alive and making progress, so
	// the next fault lands on a running job (and, with a 10ms interval,
	// almost certainly mid-assembly of the next checkpoint).
	waitCkpts := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for sup.CompletedCheckpoints() < n {
			select {
			case err := <-supErr:
				t.Fatalf("job finished before fault injection (checkpoints=%d, err=%v)", sup.CompletedCheckpoints(), err)
			case <-time.After(2 * time.Millisecond):
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for checkpoint %d (have %d)", n, sup.CompletedCheckpoints())
			}
		}
	}
	waitRestarts := func(n int) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for len(sup.Stats()) < n {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for restart %d (have %d)", n, len(sup.Stats()))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Fault 1: crash a worker mid-checkpoint. No replacement appears, so the
	// recovery degrades onto the survivor after the rejoin window.
	waitCkpts(1)
	killer.Kill("w1")
	waitRestarts(1)
	waitCkpts(sup.CompletedCheckpoints() + 2)

	// Fault 2: blackhole every control connection — the process is gone from
	// the network but every TCP connection stays open. Detection must come
	// from the heartbeat timeout on both sides; the survivor then redials.
	chLn.Partition()
	waitRestarts(2)
	waitCkpts(sup.CompletedCheckpoints() + 2)

	// Fault 3: hard-drop the survivor's current control connection — the
	// crash-style failure, detected instantly as a read error.
	conns := chLn.Conns()
	conns[len(conns)-1].Drop()
	waitRestarts(3)

	if err := <-supErr; err != nil {
		t.Fatalf("supervised job failed despite restart budget: %v", err)
	}
	wg.Wait()

	stats := sup.Stats()
	if len(stats) < 3 {
		t.Fatalf("recorded %d restarts, want >= 3", len(stats))
	}
	sawHeartbeat, sawDegraded, sawCheckpointed := false, false, false
	for _, st := range stats {
		if strings.Contains(st.Cause, "heartbeat timeout") {
			sawHeartbeat = true
		}
		if st.Workers == 1 {
			sawDegraded = true
		}
		if st.Checkpoint > 0 {
			sawCheckpointed = true
		}
		if st.Downtime <= 0 {
			t.Fatalf("restart %d has non-positive downtime %v", st.Attempt, st.Downtime)
		}
		if st.RestoredAt.Before(st.FailedAt) {
			t.Fatalf("restart %d restored before it failed: %+v", st.Attempt, st)
		}
	}
	if !sawHeartbeat {
		t.Fatalf("no restart was caused by a heartbeat timeout; causes: %+v", stats)
	}
	if !sawDegraded {
		t.Fatalf("no restart degraded onto the survivor; stats: %+v", stats)
	}
	if !sawCheckpointed {
		t.Fatalf("no restart resumed from a completed checkpoint; stats: %+v", stats)
	}

	if got := renderSums(supOut); got != want {
		t.Fatalf("soak output diverged from the unfaulted run (exactly-once violated):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// failingSource always reports an error at end of stream — the permanently
// broken input that must exhaust the supervisor's restart budget.
type failingSource struct{}

func (failingSource) Open(sub, par int) streamline.Reader[float64] { return &failingReader{} }

type failingReader struct{ i int64 }

func (r *failingReader) Next() (streamline.Keyed[float64], streamline.ReadStatus) {
	if r.i < 8 {
		r.i++
		return streamline.Keyed[float64]{Ts: r.i, Key: uint64(r.i % 3), Value: 1}, streamline.ReadData
	}
	return streamline.Keyed[float64]{}, streamline.ReadEnd
}
func (r *failingReader) Snapshot() ([]byte, error) { return nil, nil }
func (r *failingReader) Restore([]byte) error      { return nil }
func (r *failingReader) Err() error                { return errors.New("injected permanent source failure") }

func failingEnv() *streamline.Env {
	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.From(env, "fail", failingSource{}, streamline.WithSourceParallelism(1))
	keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	streamline.Collect(sums, "out")
	return env
}

// TestSupervisorExhaustsRestartBudget: a permanent failure must not retry
// forever — after MaxRestarts failed recoveries the final error surfaces,
// wrapped with the budget, and the last epoch tells its workers not to
// rejoin.
func TestSupervisorExhaustsRestartBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	env := failingEnv()
	cfg := transport.Config{
		Graph:             env.Core().Graph(),
		Chaining:          env.Core().Chaining(),
		Workers:           1,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
	}
	sup, err := transport.NewSupervisor(cfg, transport.SupervisionPolicy{
		MaxRestarts:  2,
		BaseBackoff:  5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		RejoinWindow: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	build := func(string, []string) (*dataflow.Graph, bool, error) {
		e := failingEnv()
		return e.Core().Graph(), e.Core().Chaining(), nil
	}
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		// After the final epoch the listener closes; a worker that raced the
		// terminal stop gives up via its dial budget, so either exit is fine.
		_ = transport.RunWorkerLoop(ctx, sup.Addr(), nil, build,
			transport.WithWorkerDialPolicy(transport.DialPolicy{BaseDelay: 5 * time.Millisecond, MaxWait: time.Second}))
	}()

	runErr := sup.Run(ctx)
	if runErr == nil {
		t.Fatal("a permanently failing job must not report success")
	}
	if !strings.Contains(runErr.Error(), "restart budget (2) exhausted") {
		t.Fatalf("error %q does not surface the exhausted budget", runErr)
	}
	if !strings.Contains(runErr.Error(), "injected permanent source failure") {
		t.Fatalf("error %q does not carry the root cause", runErr)
	}
	if stats := sup.Stats(); len(stats) != 2 {
		t.Fatalf("recorded %d restarts, want exactly the budget's 2: %+v", len(stats), stats)
	}
	if n := sup.CompletedCheckpoints(); n != 0 {
		t.Fatalf("no backend was configured, yet %d checkpoints completed", n)
	}
	select {
	case <-workerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("worker loop did not exit after the terminal stop")
	}
}
