// Package pipelines holds the named demo pipelines shared by the
// distributed binaries: cmd/streamline-coord builds one as the coordinator,
// and cmd/streamline-worker rebuilds the identical pipeline from the plan's
// pipeline name — the SPMD contract across separate processes. Every
// builder is deterministic for a fixed argument list, so the coordinator's
// plan fingerprint matches the workers' and distributed output is
// byte-identical to a single-process run of the same pipeline.
package pipelines

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"repro/streamline"
)

// The joined pipeline ships typed join pairs across the rebalance edge to
// its collector, so the generic instantiation must be wire-registered.
func init() { streamline.RegisterWireTypes(streamline.JoinedPair[float64, float64]{}) }

// Names lists the registered pipelines.
func Names() []string { return []string{"wordcount", "windowed", "fused", "joined"} }

// Build constructs the named pipeline with its argument list plus any extra
// environment options (the coordinator passes WithWorkers/WithListenAddr;
// workers pass none). It returns the environment and a render function
// producing the pipeline's deterministic, sorted text output — valid after
// execution completes.
func Build(name string, args []string, extra ...streamline.Option) (*streamline.Env, func() string, error) {
	switch name {
	case "wordcount":
		return buildWordcount(args, extra...)
	case "windowed":
		return buildWindowed(args, extra...)
	case "fused":
		return buildFused(args, extra...)
	case "joined":
		return buildJoined(args, extra...)
	}
	return nil, nil, fmt.Errorf("unknown pipeline %q (have %s)", name, strings.Join(Names(), ", "))
}

// RegisterAll registers every demo pipeline for RunRegisteredWorker, so a
// generic worker binary can serve any of them.
func RegisterAll() {
	for _, name := range Names() {
		name := name
		streamline.RegisterPipeline(name, func(args []string) (*streamline.Env, error) {
			env, _, err := Build(name, args)
			return env, err
		})
	}
}

// buildWordcount is the distributed wordcount: a deterministic synthetic
// corpus split into words, counted per word behind a hash shuffle. The
// payload keeps the word text so the output is human-readable.
func buildWordcount(args []string, extra ...streamline.Option) (*streamline.Env, func() string, error) {
	fs := flag.NewFlagSet("wordcount", flag.ContinueOnError)
	lines := fs.Int("lines", 400, "number of synthetic input lines")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	opts := append([]streamline.Option{
		streamline.WithParallelism(2),
		streamline.WithPipelineRef("wordcount", args...),
	}, extra...)
	env := streamline.New(opts...)
	input := make([]string, *lines)
	vocab := map[uint64]string{}
	for i := range input {
		input[i] = fmt.Sprintf("alpha w%d beta w%d gamma w%d", i%17, i%29, (i*7)%61)
		for _, w := range strings.Fields(input[i]) {
			vocab[streamline.KeyOf(w)] = w
		}
	}
	src := streamline.FromSlice(env, "lines", input)
	words := streamline.FlatMap(src, "split", func(l string, em streamline.Emitter[string]) {
		for _, w := range strings.Fields(l) {
			em.Emit(w)
		}
	})
	keyed := streamline.KeyByString(words, "key", func(w string) string { return w })
	ones := streamline.Map(keyed, "one", func(string) float64 { return 1 })
	counts := streamline.ReduceByKey(ones, "count", func(acc, v float64) float64 { return acc + v }, false)
	out := streamline.Collect(counts, "out")
	render := func() string {
		ls := make([]string, 0, len(out.Records()))
		for _, r := range out.Records() {
			// The corpus is deterministic, so the key-to-word mapping is
			// recoverable on the render side; counting still runs keyed.
			ls = append(ls, fmt.Sprintf("%s=%g", vocab[r.Key], r.Value))
		}
		sort.Strings(ls)
		return strings.Join(ls, "\n") + "\n"
	}
	return env, render, nil
}

// buildFused is the stage-fusion guard: a genuine map→filter→map run that
// typed stage fusion collapses into one operator. Its fused node name is
// part of the plan fingerprint every distributed participant verifies, and
// its keyed sums must be byte-identical single-process and multi-process —
// so fusion lowering deterministically across processes is CI-checked, not
// assumed.
func buildFused(args []string, extra ...streamline.Option) (*streamline.Env, func() string, error) {
	fs := flag.NewFlagSet("fused", flag.ContinueOnError)
	events := fs.Int64("events", 8000, "number of generated events")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	opts := append([]streamline.Option{
		streamline.WithParallelism(2),
		streamline.WithPipelineRef("fused", args...),
	}, extra...)
	env := streamline.New(opts...)
	gen := streamline.Generator(*events, func(sub, par int, i int64) streamline.Keyed[float64] {
		global := i*int64(par) + int64(sub)
		return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 9), Value: float64(global % 223)}
	})
	src := streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
	scaled := streamline.Map(src, "scale", func(v float64) float64 { return v*3 + 1 })
	banded := streamline.Filter(scaled, "band", func(v float64) bool { return int64(v)%5 != 2 })
	final := streamline.Map(banded, "final", func(v float64) float64 { return v * 0.5 })
	keyed := streamline.KeyByRecord(final, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	out := streamline.Collect(sums, "out")
	render := func() string {
		ls := make([]string, 0, len(out.Records()))
		for _, r := range out.Records() {
			ls = append(ls, fmt.Sprintf("%d=%g", r.Key, r.Value))
		}
		sort.Strings(ls)
		return strings.Join(ls, "\n") + "\n"
	}
	return env, render, nil
}

// buildJoined is the keyed/windowed join guard: two deterministic generator
// streams equi-joined per key within tumbling windows. The join is a
// two-input keyed operator behind two hash edges, so the multi-process
// smoke diff covers the vectorized keyed path's edge-aware batching — its
// pair set must be byte-identical single-process and multi-process.
func buildJoined(args []string, extra ...streamline.Option) (*streamline.Env, func() string, error) {
	fs := flag.NewFlagSet("joined", flag.ContinueOnError)
	events := fs.Int64("events", 4000, "number of generated events per side")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	opts := append([]streamline.Option{
		streamline.WithParallelism(2),
		streamline.WithPipelineRef("joined", args...),
	}, extra...)
	env := streamline.New(opts...)
	gen := func(stride int64) streamline.Source[float64] {
		return streamline.Generator(*events, func(sub, par int, i int64) streamline.Keyed[float64] {
			global := i*int64(par) + int64(sub)
			return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 5), Value: float64((global * stride) % 101)}
		})
	}
	left := streamline.From(env, "left", gen(3),
		streamline.WithSourceParallelism(2), streamline.WithWatermarkEvery(64))
	right := streamline.From(env, "right", gen(7),
		streamline.WithSourceParallelism(2), streamline.WithWatermarkEvery(64))
	lk := streamline.KeyByRecord(left, "lkey", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	rk := streamline.KeyByRecord(right, "rkey", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	pairs := streamline.JoinWindow(lk, "join", rk, 50)
	out := streamline.Collect(pairs, "out")
	render := func() string {
		dedup := map[string]struct{}{}
		for _, r := range out.Records() {
			p := r.Value
			dedup[fmt.Sprintf("%d [%d,%d) %g|%g", r.Key, p.WindowStart, p.WindowEnd, p.Left, p.Right)] = struct{}{}
		}
		ls := make([]string, 0, len(dedup))
		for l := range dedup {
			ls = append(ls, l)
		}
		sort.Strings(ls)
		return strings.Join(ls, "\n") + "\n"
	}
	return env, render, nil
}

// buildWindowed is the distributed windowed aggregate: a deterministic
// generator keyed six ways feeding a tumbling sum and a sliding count.
// -pace throttles each source subtask to that many records per second —
// how the chaos smoke test keeps the job running long enough to kill a
// worker mid-flight. The render dedups window emissions, so a supervised
// run that replays a checkpoint suffix stays byte-identical to an
// unfaulted one.
func buildWindowed(args []string, extra ...streamline.Option) (*streamline.Env, func() string, error) {
	fs := flag.NewFlagSet("windowed", flag.ContinueOnError)
	events := fs.Int64("events", 6000, "number of generated events")
	pace := fs.Float64("pace", 0, "records/sec per source subtask (0: unpaced)")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	opts := append([]streamline.Option{
		streamline.WithParallelism(2),
		streamline.WithPipelineRef("windowed", args...),
	}, extra...)
	env := streamline.New(opts...)
	var gen streamline.Source[float64] = streamline.Generator(*events, func(sub, par int, i int64) streamline.Keyed[float64] {
		global := i*int64(par) + int64(sub)
		return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 6), Value: 1}
	})
	if *pace > 0 {
		gen = streamline.Paced(gen, *pace)
	}
	src := streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
	keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	win := streamline.WindowAggregate(keyed, "win",
		streamline.Query(streamline.Tumbling(100), streamline.Sum()),
		streamline.Query(streamline.Sliding(200, 100), streamline.Count()))
	out := streamline.Collect(win, "out")
	render := func() string {
		dedup := map[string]struct{}{}
		for _, r := range out.Records() {
			dedup[fmt.Sprintf("%d q%d [%d,%d)=%g", r.Key, r.Value.QueryID, r.Value.Start, r.Value.End, r.Value.Value)] = struct{}{}
		}
		ls := make([]string, 0, len(dedup))
		for l := range dedup {
			ls = append(ls, l)
		}
		sort.Strings(ls)
		return strings.Join(ls, "\n") + "\n"
	}
	return env, render, nil
}
