// Command wordcount is the classic demonstration of STREAMLINE's unified
// model: the same pipeline counts words over data at rest (a file) or data
// in motion (a synthetic document stream), selected by a flag — no code
// changes between batch and streaming.
//
//	wordcount -mode batch -file input.txt
//	wordcount -mode stream -docs 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/lang"
)

func main() {
	mode := flag.String("mode", "batch", "batch | stream")
	file := flag.String("file", "", "input file (batch mode; default: built-in corpus)")
	docs := flag.Int64("docs", 500, "number of generated documents (stream mode)")
	top := flag.Int("top", 10, "how many words to print")
	flag.Parse()

	env := core.NewEnvironment()
	var src *core.Stream
	switch *mode {
	case "batch":
		text := builtinCorpus()
		if *file != "" {
			data, err := os.ReadFile(*file)
			if err != nil {
				log.Fatalf("read %s: %v", *file, err)
			}
			text = string(data)
		}
		words := lang.Tokenize(text)
		recs := make([]dataflow.Record, len(words))
		for i, w := range words {
			recs[i] = dataflow.Data(int64(i), dataflow.KeyOf(w), w)
		}
		src = env.FromRecords("file", recs)
	case "stream":
		sentences := allSentences()
		src = env.FromGenerator("docs", 1, *docs, func(sub, par int, i int64) dataflow.Record {
			s := sentences[i%int64(len(sentences))]
			return dataflow.Data(i, 0, s)
		}).FlatMap("tokenize", func(r dataflow.Record, out dataflow.Collector) {
			for _, w := range lang.Tokenize(r.Value.(string)) {
				out.Collect(dataflow.Data(r.Ts, dataflow.KeyOf(w), w))
			}
		})
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	type count struct {
		word string
		n    int64
	}
	counts := map[string]int64{}
	src.
		Map("one", func(r dataflow.Record) dataflow.Record {
			word := r.Value.(string)
			return dataflow.Data(r.Ts, r.Key, word)
		}).
		Sink("count", func(r dataflow.Record) {
			counts[r.Value.(string)]++
		})
	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	list := make([]count, 0, len(counts))
	for w, n := range counts {
		list = append(list, count{w, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].word < list[j].word
	})
	if len(list) > *top {
		list = list[:*top]
	}
	fmt.Printf("top %d words (%s mode):\n", len(list), *mode)
	for _, c := range list {
		fmt.Printf("  %6d  %s\n", c.n, c.word)
	}
}

func builtinCorpus() string {
	out := ""
	for _, ss := range lang.SampleSentences() {
		for _, s := range ss {
			out += s + "\n"
		}
	}
	return out
}

func allSentences() []string {
	var out []string
	for _, ss := range lang.SampleSentences() {
		out = append(out, ss...)
	}
	sort.Strings(out)
	return out
}
