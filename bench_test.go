package repro

// Benchmarks regenerating the experiment tables E1–E10 (one benchmark
// family per table; see DESIGN.md section 4). The cmd/streamline-bench
// binary prints the same measurements as formatted tables with fixed input
// sizes; these testing.B variants let `go test -bench` scale iterations and
// report ns/op and allocations.

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/i2"
	"repro/internal/window"
	"repro/internal/workloads"
	"repro/streamline"
)

func mkEngines() map[string]func(engine.Emit) engine.Engine {
	return map[string]func(engine.Emit) engine.Engine{
		"cutty":   func(e engine.Emit) engine.Engine { return cutty.New(e) },
		"pairs":   baselines.NewPairs,
		"panes":   baselines.NewPanes,
		"b-int":   func(e engine.Emit) engine.Engine { return baselines.NewBInt(e) },
		"buckets": func(e engine.Emit) engine.Engine { return baselines.NewBuckets(e) },
		"eager":   func(e engine.Emit) engine.Engine { return baselines.NewEager(e) },
	}
}

var strategyOrder = []string{"cutty", "pairs", "panes", "b-int", "buckets", "eager"}

// driveN pushes b.N events through a fresh engine with the given queries.
func driveN(b *testing.B, mk func(engine.Emit) engine.Engine, qs []engine.Query) {
	b.Helper()
	var results int64
	e := mk(func(engine.Result) { results++ })
	for _, q := range qs {
		if _, err := e.AddQuery(q); err != nil {
			b.Skipf("strategy does not support query: %v", err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int64(i)
		e.OnWatermark(ts)
		e.OnElement(ts, float64(i%97))
	}
	e.OnWatermark(math.MaxInt64)
	b.ReportMetric(float64(results)/float64(b.N), "windows/ev")
}

// BenchmarkE1SinglePeriodic: table E1 — one sliding query, slide swept.
func BenchmarkE1SinglePeriodic(b *testing.B) {
	engines := mkEngines()
	for _, slide := range []int64{100, 1000} {
		for _, name := range strategyOrder {
			b.Run(fmt.Sprintf("slide=%dms/%s", slide, name), func(b *testing.B) {
				driveN(b, engines[name], []engine.Query{
					{Window: window.Sliding(10_000, slide), Fn: agg.SumF64()},
				})
			})
		}
	}
}

// e2qs mirrors the E2 query mix.
func e2qs(n int) []engine.Query {
	qs := make([]engine.Query, n)
	for i := range qs {
		slide := int64(i%10+1) * 100
		size := slide * int64(i%8+2)
		qs[i] = engine.Query{Window: window.Sliding(size, slide), Fn: agg.SumF64()}
	}
	return qs
}

// BenchmarkE2MultiQuery: table E2 — throughput vs concurrent queries.
func BenchmarkE2MultiQuery(b *testing.B) {
	engines := mkEngines()
	for _, nq := range []int{1, 10, 40} {
		for _, name := range strategyOrder {
			if nq == 40 && (name == "eager" || name == "buckets") && testing.Short() {
				continue
			}
			b.Run(fmt.Sprintf("queries=%d/%s", nq, name), func(b *testing.B) {
				driveN(b, engines[name], e2qs(nq))
			})
		}
	}
}

// BenchmarkE3Redundancy: table E3 — combine invocations per record.
func BenchmarkE3Redundancy(b *testing.B) {
	engines := mkEngines()
	for _, name := range strategyOrder {
		b.Run(fmt.Sprintf("queries=10/%s", name), func(b *testing.B) {
			var combines, lifts atomic.Int64
			qs := e2qs(10)
			for i, q := range qs {
				qs[i] = engine.Query{Window: q.Window, Fn: agg.Counting(q.Fn, &combines, &lifts)}
			}
			driveN(b, engines[name], qs)
			b.ReportMetric(float64(combines.Load())/float64(b.N), "combines/ev")
		})
	}
}

// BenchmarkE4Sessions: table E4 — session windows (non-periodic).
func BenchmarkE4Sessions(b *testing.B) {
	engines := mkEngines()
	for _, name := range strategyOrder {
		b.Run("queries=5/"+name, func(b *testing.B) {
			qs := make([]engine.Query, 5)
			for i := range qs {
				qs[i] = engine.Query{Window: window.Session(int64(i+5) * 100), Fn: agg.SumF64()}
			}
			var results int64
			e := engines[name](func(engine.Result) { results++ })
			for _, q := range qs {
				if _, err := e.AddQuery(q); err != nil {
					b.Skipf("n/a: %v", err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Bursty session timeline.
				ii := int64(i)
				ts := (ii/20)*1700 + (ii%20)*10
				e.OnWatermark(ts)
				e.OnElement(ts, 1)
			}
			e.OnWatermark(math.MaxInt64)
		})
	}
}

// BenchmarkE5Memory: table E5 — peak stored partials (reported as metric).
func BenchmarkE5Memory(b *testing.B) {
	engines := mkEngines()
	for _, name := range strategyOrder {
		b.Run("queries=10/"+name, func(b *testing.B) {
			e := engines[name](func(engine.Result) {})
			for _, q := range e2qs(10) {
				if _, err := e.AddQuery(q); err != nil {
					b.Skipf("n/a: %v", err)
				}
			}
			maxPartials := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := int64(i)
				e.OnWatermark(ts)
				e.OnElement(ts, 1)
				if i%1024 == 0 {
					if p := e.StoredPartials(); p > maxPartials {
						maxPartials = p
					}
				}
			}
			b.ReportMetric(float64(maxPartials), "partials")
		})
	}
}

// BenchmarkE6M4Aggregate: table E6 — M4 reduction throughput and transfer.
func BenchmarkE6M4Aggregate(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			gen := workloads.TimeSeries{Seed: 5, PerSec: int64(n) / 10}
			pts := make([]i2.Point, n)
			for i := 0; i < n; i++ {
				e := gen.At(int64(i))
				pts[i] = i2.Point{Ts: e.Ts, V: e.Value}
			}
			vp := i2.Viewport{From: 0, To: pts[n-1].Ts + 1, Width: 600}
			b.ResetTimer()
			var transfer int
			for i := 0; i < b.N; i++ {
				cols := i2.AggregateM4(pts, vp)
				transfer = i2.TransferSize(cols)
			}
			b.ReportMetric(float64(transfer), "tuples")
			b.ReportMetric(float64(n)/float64(transfer), "reduction")
		})
	}
}

// BenchmarkE7Raster: table E7 — raw vs reduced rendering cost.
func BenchmarkE7Raster(b *testing.B) {
	const n = 100_000
	gen := workloads.TimeSeries{Seed: 9, PerSec: 10_000}
	pts := make([]i2.Point, n)
	for i := 0; i < n; i++ {
		e := gen.At(int64(i))
		pts[i] = i2.Point{Ts: e.Ts, V: e.Value}
	}
	vp := i2.Viewport{From: 0, To: pts[n-1].Ts + 1, Width: 600}
	lo, hi := i2.ValueRange(pts)
	sc := i2.Scale{VP: vp, VMin: lo, VMax: hi, H: 240}
	reduced := i2.Points(i2.AggregateM4(pts, vp))
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			i2.RenderLine(pts, sc)
		}
	})
	b.Run("m4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			i2.RenderLine(reduced, sc)
		}
	})
}

// pipelineBench runs the windowed ad pipeline once per iteration. mkOpts is
// invoked per iteration so stateful options (checkpoint backends, whose
// checkpoint ids must not collide across runs) are created fresh. The
// campaign id rides as the stamped key so the plan carries no projection
// stages — identical to the hand-built untyped pipeline it replaced.
func pipelineBench(b *testing.B, n int64, mkOpts func() []streamline.Option) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := streamline.New(mkOpts()...)
		gen := workloads.NewAdClicks(99, 50, 1000)
		src := streamline.From(env, "ads", streamline.Generator(n,
			func(sub, par int, j int64) streamline.Keyed[float64] {
				e := gen.At(j)
				return streamline.Keyed[float64]{Ts: e.Ts, Key: e.Key, Value: float64(e.Attr)}
			}), streamline.WithSourceParallelism(1))
		keyed := streamline.KeyByRecord(src, "campaign", func(k streamline.Keyed[float64]) uint64 { return k.Key })
		wins := streamline.WindowAggregate(keyed, "ctr",
			streamline.Query(streamline.Tumbling(1000), streamline.Sum()),
			streamline.Query(streamline.Tumbling(1000), streamline.Count()),
		)
		streamline.Sink(wins, "out", func(streamline.Keyed[streamline.WindowResult]) {})
		if err := env.Execute(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkE8Unified: table E8 — the unified pipeline end to end (bounded).
func BenchmarkE8Unified(b *testing.B) {
	for _, n := range []int64{20_000, 100_000} {
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			pipelineBench(b, n, func() []streamline.Option {
				return []streamline.Option{streamline.WithParallelism(2)}
			})
		})
	}
}

// BenchmarkE9Checkpoint: table E9 — checkpointing overhead.
func BenchmarkE9Checkpoint(b *testing.B) {
	for _, interval := range []time.Duration{0, 250 * time.Millisecond, 50 * time.Millisecond} {
		name := "off"
		if interval > 0 {
			name = interval.String()
		}
		b.Run("interval="+name, func(b *testing.B) {
			iv := interval
			pipelineBench(b, 50_000, func() []streamline.Option {
				opts := []streamline.Option{streamline.WithParallelism(2)}
				if iv > 0 {
					opts = append(opts, streamline.WithCheckpointing(streamline.NewMemoryBackend(3), iv))
				}
				return opts
			})
		})
	}
}

// BenchmarkE10Optimizer: table E10 — combiner and chaining ablation.
func BenchmarkE10Optimizer(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mode streamline.CombinerMode
		skew float64
	}{
		{"combiner=off/zipf", streamline.CombinerOff, 1.4},
		{"combiner=on/zipf", streamline.CombinerOn, 1.4},
		{"combiner=auto/zipf", streamline.CombinerAuto, 1.4},
		{"combiner=off/uniform", streamline.CombinerOff, 1.0},
		{"combiner=auto/uniform", streamline.CombinerAuto, 1.0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			const n = 100_000
			for i := 0; i < b.N; i++ {
				gen := workloads.NewZipf(5, 100_000, 10_000, cfg.skew)
				env := streamline.New(streamline.WithParallelism(2), streamline.WithCombiner(cfg.mode))
				src := streamline.From(env, "gen", streamline.Generator(n,
					func(sub, par int, j int64) streamline.Keyed[float64] {
						e := gen.At(j)
						return streamline.Keyed[float64]{Ts: e.Ts, Key: e.Key, Value: e.Value}
					}), streamline.WithSourceParallelism(1))
				keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
				sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
				streamline.Sink(sums, "out", func(streamline.Keyed[float64]) {})
				if err := env.Execute(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(100_000)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
	for _, chaining := range []bool{true, false} {
		b.Run(fmt.Sprintf("chaining=%v", chaining), func(b *testing.B) {
			const n = 100_000
			for i := 0; i < b.N; i++ {
				env := streamline.New(streamline.WithParallelism(1), streamline.WithChaining(chaining))
				s := streamline.From(env, "gen", streamline.Generator(n,
					func(sub, par int, j int64) streamline.Keyed[float64] {
						return streamline.Keyed[float64]{Ts: j, Key: uint64(j % 64), Value: float64(j % 101)}
					}), streamline.WithSourceParallelism(1))
				for k := 0; k < 4; k++ {
					s = streamline.Map(s, fmt.Sprintf("m%d", k), func(v float64) float64 { return v + 1 })
				}
				streamline.Sink(s, "out", func(streamline.Keyed[float64]) {})
				if err := env.Execute(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(100_000)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkExchange: the batched-exchange trajectory — the bounded slice
// wordcount and the unbounded two-feed channel pipeline at per-record
// (batch=1) and default pooled-batch exchange. `streamline-bench -exchange`
// records the same measurements in BENCH_exchange.json.
func BenchmarkExchange(b *testing.B) {
	nWords, nLive := bench.ExchangeQuickWords, bench.ExchangeQuickLive
	for _, bs := range []int{1, streamline.DefaultBatchSize} {
		b.Run(fmt.Sprintf("wordcount/batch=%d", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.ExchangeWordcount(nWords, bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nWords)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
		b.Run(fmt.Sprintf("channel/batch=%d", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.ExchangeChannel(nLive, bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nLive)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkFusedChain: the vectorized operator chain trajectory — a
// map→filter→map run behind a rebalance exchange at parallelism 1 and 4,
// chaining on and off, under both execution strategies (vectorized = typed
// stage fusion + OnBatch chain driver; per-record = stage-per-node lowering
// with per-record dispatch). `streamline-bench -fusion` records the larger
// six-stage variant in BENCH_fusion.json.
func BenchmarkFusedChain(b *testing.B) {
	const n = 100_000
	for _, par := range []int{1, 4} {
		for _, chaining := range []bool{true, false} {
			for _, vectorized := range []bool{true, false} {
				mode := "vectorized"
				if !vectorized {
					mode = "per-record"
				}
				b.Run(fmt.Sprintf("par=%d/chaining=%v/%s", par, chaining, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						opts := []streamline.Option{
							streamline.WithParallelism(par),
							streamline.WithChaining(chaining),
						}
						if !vectorized {
							opts = append(opts,
								streamline.WithStageFusion(false),
								streamline.WithVectorizedChains(false))
						}
						env := streamline.New(opts...)
						src := streamline.From(env, "gen", streamline.Generator(n,
							func(sub, par int, j int64) streamline.Keyed[float64] {
								return streamline.Keyed[float64]{Ts: j, Key: uint64(j % 64), Value: float64(j % 101)}
							}), streamline.WithSourceParallelism(par))
						merged := streamline.Union(src, "merge")
						m1 := streamline.Map(merged, "scale", func(v float64) float64 { return v * 2 })
						f1 := streamline.Filter(m1, "band", func(v float64) bool { return int64(v)%4 != 2 })
						m2 := streamline.Map(f1, "final", func(v float64) float64 { return v + 1 })
						streamline.Sink(m2, "out", func(streamline.Keyed[float64]) {})
						if err := env.Execute(context.Background()); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
				})
			}
		}
	}
}

// BenchmarkStateCapture: the keyed-state snapshot trajectory — how long a
// subtask blocks at a checkpoint barrier with the copy-on-write capture vs
// the synchronous whole-state gob baseline. `streamline-bench -state`
// records the same measurements in BENCH_state.json.
func BenchmarkStateCapture(b *testing.B) {
	for _, keys := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := bench.StateCapture(keys, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(run.CowCaptureNs), "barrier-ns")
			}
		})
	}
}

// TestExperimentTablesQuick exercises the full harness end to end in quick
// mode so `go test ./...` validates every experiment path, not only the
// benchmarks.
func TestExperimentTablesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	for _, tab := range bench.All(true) {
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
	}
}
