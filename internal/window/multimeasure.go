package window

import (
	"encoding/gob"
	"math"
)

// TimeOrCount returns a spec for multi-measure windows, one of the window
// classes the Cutty paper supports beyond single-measure periodic windows:
// a window begins with the first element after the previous window closed
// and closes when *either* maxDur event-time ticks have passed since its
// start *or* maxCount elements have been collected — whichever happens
// first. Useful for "emit a batch every second or every 100 records"
// business logic.
func TimeOrCount(maxDur, maxCount int64) Spec {
	if maxDur <= 0 || maxCount <= 0 {
		panic("window: TimeOrCount requires positive maxDur and maxCount")
	}
	return Spec{
		Name:    "time-or-count",
		Factory: func() Assigner { return &timeOrCountAssigner{maxDur: maxDur, maxCount: maxCount} },
	}
}

type timeOrCountAssigner struct {
	maxDur, maxCount int64

	active   bool
	start    int64 // start timestamp
	startPos int64
	count    int64
}

func (a *timeOrCountAssigner) OnElement(ts, pos int64, v float64, ctx Context) {
	if a.active {
		switch {
		case ts-a.start >= a.maxDur:
			// Time bound hit before this element: the element belongs to
			// the next window.
			ctx.CloseHere(a.start, a.start+a.maxDur)
			a.active = false
		case a.count >= a.maxCount:
			// Count bound reached by the previous element.
			ctx.CloseHere(a.start, ts)
			a.active = false
		}
	}
	if !a.active {
		ctx.Open(ts)
		a.start = ts
		a.startPos = pos
		a.count = 0
		a.active = true
	}
	a.count++
}

func (a *timeOrCountAssigner) OnTime(wm int64, ctx Context) {
	if !a.active {
		return
	}
	if wm >= a.start+a.maxDur {
		ctx.CloseHere(a.start, a.start+a.maxDur)
		a.active = false
		return
	}
	if wm == math.MaxInt64 {
		ctx.CloseHere(a.start, wm)
		a.active = false
	}
}

type timeOrCountState struct {
	Active   bool
	Start    int64
	StartPos int64
	Count    int64
}

// SaveState implements Checkpointable.
func (a *timeOrCountAssigner) SaveState(enc *gob.Encoder) error {
	return enc.Encode(timeOrCountState{Active: a.active, Start: a.start, StartPos: a.startPos, Count: a.count})
}

// LoadState implements Checkpointable.
func (a *timeOrCountAssigner) LoadState(dec *gob.Decoder) error {
	var s timeOrCountState
	if err := dec.Decode(&s); err != nil {
		return err
	}
	a.active, a.start, a.startPos, a.count = s.Active, s.Start, s.StartPos, s.Count
	return nil
}
