package dataflow

import (
	"encoding/gob"
	"math"
	"sort"

	"repro/internal/state"
)

// EdgeAware is an optional operator capability: head operators implementing
// it receive data records tagged with the input-edge index they arrived on.
// Two-input operators (joins, co-processing) need the distinction; ordinary
// operators ignore it and receive everything through OnRecord.
type EdgeAware interface {
	OnRecordEdge(edge int, r Record, out Collector)
}

// BatchedEdgeAware is the vectorized form of EdgeAware: the chain driver
// hands a head operator implementing it whole contiguous data runs tagged
// with their arrival edge, so vectorized chains no longer downgrade to the
// per-record path at two-input (join) stages. Exactly one edge per run by
// construction — a run never spans channels. The contract mirrors
// BatchedOperator: OnBatchEdge must equal OnRecordEdge applied to each
// record in order, and the returned records (scratch or compacted input)
// are forwarded after anything collected through out.
type BatchedEdgeAware interface {
	EdgeAware
	OnBatchEdge(edge int, b []Record, out Collector) []Record
}

// JoinedPair is the payload emitted by WindowJoinOp for each matching
// (left, right) value pair within a window.
type JoinedPair struct {
	WindowStart int64
	WindowEnd   int64
	Left        float64
	Right       float64
}

// WindowJoinOp is the keyed tumbling-window equi-join: records from edge 0
// (left) and edge 1 (right) with the same key and the same tumbling window
// are joined pairwise, the relational semantics of stream joins in Flink's
// DataStream API. Both inputs must be hash-partitioned on the join key with
// identical parallelism.
//
// The open windows' buffered values live per key in a state.KeyedState, so
// the operator snapshots per key group and restores at any parallelism.
type WindowJoinOp struct {
	// Size is the tumbling window length in event-time ticks.
	Size int64

	ks   *state.KeyedState
	wins *state.MapCell[map[int64]joinSides]
	// minEnd is the earliest end among all open windows (MaxInt64 when
	// none), letting the common nothing-is-due watermark return in O(1)
	// instead of scanning every key. Transient: recomputed from the keyed
	// state on Open, kept current by OnRecordEdge and the fire pass.
	minEnd int64

	// Vectorized-run scratch (see OnBatchEdge), reused across calls.
	kt   keyTable
	maps []map[int64]joinSides // dense key index -> the key's window map
}

// joinSides buffers one (key, window) bucket's values (exported fields for
// gob). The slices are append-only between snapshots; structural changes go
// through the outer map under GetMut.
type joinSides struct {
	Left  []float64
	Right []float64
}

var _ Operator = (*WindowJoinOp)(nil)
var _ EdgeAware = (*WindowJoinOp)(nil)
var _ BatchedEdgeAware = (*WindowJoinOp)(nil)
var _ KeyedStateful = (*WindowJoinOp)(nil)

// NewWindowJoinOp returns an operator factory for a tumbling equi-join.
func NewWindowJoinOp(size int64) OperatorFactory {
	if size <= 0 {
		panic("dataflow: join window size must be positive")
	}
	return func() Operator { return &WindowJoinOp{Size: size} }
}

// Open implements Operator.
func (j *WindowJoinOp) Open(ctx *OpContext) error {
	j.ks = ctx.NewKeyedState()
	j.wins = state.RegisterMap(j.ks, "wins", state.Codec[map[int64]joinSides]{
		Encode: func(enc *gob.Encoder, m map[int64]joinSides) error { return enc.Encode(m) },
		Decode: func(dec *gob.Decoder) (map[int64]joinSides, error) {
			var m map[int64]joinSides
			err := dec.Decode(&m)
			return m, err
		},
		// Shallow copy: the slice headers are duplicated, and the buffers
		// behind them are only ever appended to, never edited in place.
		Clone: func(m map[int64]joinSides) map[int64]joinSides {
			out := make(map[int64]joinSides, len(m))
			for k, v := range m {
				out[k] = v
			}
			return out
		},
	})
	if err := ctx.RestoreKeyedState(j.ks); err != nil {
		return err
	}
	j.minEnd = math.MaxInt64
	j.wins.Range(func(_ uint64, m map[int64]joinSides) bool {
		for start := range m {
			if end := start + j.Size; end < j.minEnd {
				j.minEnd = end
			}
		}
		return true
	})
	return nil
}

// KeyedState implements KeyedStateful.
func (j *WindowJoinOp) KeyedState() *state.KeyedState { return j.ks }

// Snapshot implements Operator. All join state is keyed and travels per key
// group through KeyedState; there is no residual per-subtask state.
func (j *WindowJoinOp) Snapshot() ([]byte, error) { return nil, nil }

// OnRecord implements Operator; it should not be reached for a head join
// operator (the runtime dispatches through OnRecordEdge), but chains may
// deliver here — treat untagged records as left input.
func (j *WindowJoinOp) OnRecord(r Record, out Collector) { j.OnRecordEdge(0, r, out) }

// OnRecordEdge implements EdgeAware.
func (j *WindowJoinOp) OnRecordEdge(edge int, r Record, _ Collector) {
	v, ok := r.Value.(float64)
	if !ok {
		return
	}
	start := (r.Ts / j.Size) * j.Size
	if r.Ts < 0 {
		start = ((r.Ts - j.Size + 1) / j.Size) * j.Size
	}
	m, ok := j.wins.GetMut(r.Key)
	if !ok {
		m = make(map[int64]joinSides)
		j.wins.Put(r.Key, m)
	}
	b := m[start]
	if edge == 0 {
		b.Left = append(b.Left, v)
	} else {
		b.Right = append(b.Right, v)
	}
	m[start] = b
	if end := start + j.Size; end < j.minEnd {
		j.minEnd = end
	}
}

// OnBatchEdge implements BatchedEdgeAware: each distinct key of the run
// resolves its window map once — one key-group hash and, during a capture
// window, at most one copy-on-write clone — and the run's records then
// append straight into the resolved maps in record order. The per-record
// path reaches the same final state through a GetMut per record; deferring
// nothing and emitting nothing (joins fire on watermarks), the batched path
// is value-identical by construction.
func (j *WindowJoinOp) OnBatchEdge(edge int, b []Record, _ Collector) []Record {
	j.kt.reset()
	clear(j.maps)
	j.maps = j.maps[:0]
	for i := range b {
		v, ok := b[i].Value.(float64)
		if !ok {
			continue
		}
		idx, fresh := j.kt.index(b[i].Key)
		if fresh {
			ref := j.wins.RefFor(b[i].Key)
			m, ok := ref.GetMut()
			if !ok {
				m = make(map[int64]joinSides)
				ref.Put(m)
			}
			j.maps = append(j.maps, m)
		}
		m := j.maps[idx]
		r := &b[i]
		start := (r.Ts / j.Size) * j.Size
		if r.Ts < 0 {
			start = ((r.Ts - j.Size + 1) / j.Size) * j.Size
		}
		bkt := m[start]
		if edge == 0 {
			bkt.Left = append(bkt.Left, v)
		} else {
			bkt.Right = append(bkt.Right, v)
		}
		m[start] = bkt
		if end := start + j.Size; end < j.minEnd {
			j.minEnd = end
		}
	}
	return nil
}

// OnWatermark implements Operator: fire every window whose end has passed.
func (j *WindowJoinOp) OnWatermark(wm int64, out Collector) {
	if wm < j.minEnd {
		return // nothing due: O(1), independent of the key count
	}
	newMin := int64(math.MaxInt64)
	remaining := func(m map[int64]joinSides) {
		for start := range m {
			if end := start + j.Size; end < newMin {
				newMin = end
			}
		}
	}
	for _, key := range j.wins.SortedKeys() {
		m, _ := j.wins.Get(key)
		due := false
		for start := range m {
			if start+j.Size <= wm {
				due = true
				break
			}
		}
		if !due {
			remaining(m)
			continue
		}
		m, _ = j.wins.GetMut(key)
		starts := make([]int64, 0, len(m))
		for start := range m {
			if start+j.Size <= wm {
				starts = append(starts, start)
			}
		}
		sort.Slice(starts, func(i, k int) bool { return starts[i] < starts[k] })
		for _, start := range starts {
			b := m[start]
			delete(m, start)
			for _, l := range b.Left {
				for _, r := range b.Right {
					out.Collect(Data(start+j.Size-1, key, JoinedPair{
						WindowStart: start, WindowEnd: start + j.Size, Left: l, Right: r,
					}))
				}
			}
		}
		if len(m) == 0 {
			j.wins.Delete(key)
		} else {
			remaining(m)
		}
	}
	j.minEnd = newMin
}

// Finish implements Operator: fire all remaining windows.
func (j *WindowJoinOp) Finish(out Collector) {
	j.OnWatermark(math.MaxInt64, out)
}
