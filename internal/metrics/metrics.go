// Package metrics provides lightweight, allocation-free instrumentation
// primitives used throughout the STREAMLINE runtime and its benchmark
// harness: counters, gauges, meters (rates), log-bucketed histograms and
// stopwatches, plus a named registry that can render itself as a table.
//
// All primitives are safe for concurrent use.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Negative deltas are permitted so that a
// Counter can also track live totals (e.g. open windows).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Gauge holds an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max updates the gauge to v if v is greater than the current value.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Meter measures a rate of events over wall-clock time.
type Meter struct {
	count atomic.Int64
	start atomic.Int64 // unix nanos
}

// NewMeter returns a meter whose window starts now.
func NewMeter() *Meter {
	m := &Meter{}
	m.start.Store(time.Now().UnixNano())
	return m
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.count.Add(n) }

// Rate returns events per second since the meter started.
func (m *Meter) Rate() float64 {
	elapsed := time.Duration(time.Now().UnixNano() - m.start.Load())
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed.Seconds()
}

// Count returns the number of events marked so far.
func (m *Meter) Count() int64 { return m.count.Load() }

// histBuckets is the number of power-of-two latency buckets tracked by a
// Histogram; bucket i covers values in [2^i, 2^(i+1)).
const histBuckets = 64

// Histogram records an approximate distribution of non-negative int64
// observations (typically nanoseconds) using power-of-two buckets. Quantile
// estimates are exact to within a factor of two, which is sufficient for the
// order-of-magnitude comparisons the harness reports.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	once    sync.Once
}

func (h *Histogram) init() {
	h.min.Store(math.MaxInt64)
}

// Observe records one observation. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	h.once.Do(h.init)
	if v < 0 {
		v = 0
	}
	idx := 0
	if v > 0 {
		idx = 63 - leadingZeros64(uint64(v))
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the arithmetic mean of all observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) that is
// exact to within a factor of two.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			// Upper edge of bucket i.
			if i >= 62 {
				return math.MaxInt64
			}
			return (int64(1) << uint(i+1)) - 1
		}
	}
	return h.max.Load()
}

// Stopwatch measures elapsed time with Start/Stop pairs feeding a Histogram.
type Stopwatch struct {
	hist Histogram
}

// Time runs fn and records its duration.
func (s *Stopwatch) Time(fn func()) {
	t0 := time.Now()
	fn()
	s.hist.Observe(time.Since(t0).Nanoseconds())
}

// ObserveSince records the time elapsed since t0.
func (s *Stopwatch) ObserveSince(t0 time.Time) {
	s.hist.Observe(time.Since(t0).Nanoseconds())
}

// Hist exposes the underlying histogram.
func (s *Stopwatch) Hist() *Histogram { return &s.hist }

// Registry is a named collection of metrics that can print itself.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	meters   map[string]*Meter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		meters:   make(map[string]*Meter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Meter returns the named meter, creating it on first use.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewMeter()
		r.meters[name] = m
	}
	return m
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// WriteTo renders all metrics as a sorted, aligned text table.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter  %-40s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge    %-40s %d", name, g.Value()))
	}
	for name, m := range r.meters {
		lines = append(lines, fmt.Sprintf("meter    %-40s %.0f/s (n=%d)", name, m.Rate(), m.Count()))
	}
	for name, h := range r.hists {
		lines = append(lines, fmt.Sprintf("hist     %-40s n=%d mean=%.0f p50<=%d p99<=%d max=%d",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max()))
	}
	sort.Strings(lines)
	var total int64
	for _, l := range lines {
		n, err := fmt.Fprintln(w, l)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
