// Package repro is a from-scratch Go reproduction of STREAMLINE
// (Grulich, Rabl, Markl, Sidló, Benczur: "STREAMLINE — Streamlined Analysis
// of Data at Rest and Data in Motion", EDBT 2017): a unified batch/stream
// analysis platform in the architecture of Apache Flink, together with the
// paper's two research highlights — the Cutty aggregate-sharing engine for
// user-defined windows and the I2 interactive visualization system with its
// data-rate-independent M4 time-series aggregation.
//
// The importable product surface is the streamline package: a typed,
// generics-based pipeline API (Stream[T] handles carrying Keyed[T] records)
// that lowers onto the untyped record engine in internal/core and
// internal/dataflow. Programs written against it — all examples/ and the
// CLIs — never perform a type assertion; the optimizer (operator chaining,
// adaptive combiner insertion, Cutty multi-query window sharing,
// architecture-sized parallelism) applies to typed plans unchanged.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// experiment index (E1–E11), and EXPERIMENTS.md for recorded results. The
// benchmarks in bench_test.go regenerate every experiment table.
package repro
