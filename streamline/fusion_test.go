package streamline_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/streamline"
)

// buildFusedPipeline is the fusion test pipeline: a four-stage stateless
// run (map -> filter -> flatmap -> map) between a rebalance exchange and a
// keyed reduce, so fusion has a full run to collapse and hard boundaries on
// both sides.
func buildFusedPipeline(n int64, opts ...streamline.Option) (*streamline.Env, *streamline.Results[float64]) {
	env := streamline.New(append([]streamline.Option{streamline.WithParallelism(2)}, opts...)...)
	src := streamline.From(env, "gen", streamline.Generator(n,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			return streamline.Keyed[float64]{Ts: i, Key: uint64(i % 16), Value: float64(i % 311)}
		}), streamline.WithSourceParallelism(2))
	merged := streamline.Union(src, "merge")
	m1 := streamline.Map(merged, "scale", func(v float64) float64 { return v*2 + 1 })
	f1 := streamline.Filter(m1, "band", func(v float64) bool { return int64(v)%5 != 3 })
	fm := streamline.FlatMap(f1, "split", func(v float64, em streamline.Emitter[float64]) {
		em.Emit(v)
		if int64(v)%4 == 0 {
			em.Emit(v + 0.25)
		}
	})
	m2 := streamline.Map(fm, "final", func(v float64) float64 { return v * 0.5 })
	keyed := streamline.KeyByRecord(m2, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key % 5 })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	return env, streamline.Collect(sums, "out")
}

// TestStageFusionPlanShape proves the lowered plan: with fusion on, the
// four stateless stages collapse into one operator named by concatenating
// the stage names with "+", and the fused name is deterministic across
// builds (plan fingerprints must match across processes of a distributed
// run). With fusion off every stage lowers to its own node.
func TestStageFusionPlanShape(t *testing.T) {
	fusedEnv, _ := buildFusedPipeline(10)
	fusedPlan := planString(fusedEnv.Core().Graph())
	if !strings.Contains(fusedPlan, "scale+band+split+final") {
		t.Fatalf("fused plan lacks the concatenated stage node:\n%s", fusedPlan)
	}
	for _, single := range []string{"scale/", "band/", "split/", "final/"} {
		// Match at line start: the stage names also appear inside the fused
		// node's concatenated name.
		if strings.Contains("\n"+fusedPlan, "\n"+single) {
			t.Fatalf("fused plan still has standalone stage %q:\n%s", single, fusedPlan)
		}
	}

	againEnv, _ := buildFusedPipeline(10)
	if again := planString(againEnv.Core().Graph()); again != fusedPlan {
		t.Fatalf("fused plan is not deterministic:\nfirst:\n%s\nsecond:\n%s", fusedPlan, again)
	}

	plainEnv, _ := buildFusedPipeline(10, streamline.WithStageFusion(false))
	plainPlan := planString(plainEnv.Core().Graph())
	if strings.Contains(plainPlan, "+") {
		t.Fatalf("fusion disabled but plan has a fused node:\n%s", plainPlan)
	}
	for _, single := range []string{"scale/", "band/", "split/", "final/"} {
		if !strings.Contains("\n"+plainPlan, "\n"+single) {
			t.Fatalf("unfused plan lacks stage %q:\n%s", single, plainPlan)
		}
	}
}

// TestStageFusionIsSemanticOnly proves fusion changes execution, not
// results: the fused and unfused pipelines produce identical keyed sums.
func TestStageFusionIsSemanticOnly(t *testing.T) {
	const n = 4000
	results := func(opts ...streamline.Option) map[uint64]float64 {
		env, out := buildFusedPipeline(n, opts...)
		execute(t, env.Execute)
		res := map[uint64]float64{}
		for _, k := range out.Records() {
			res[k.Key] = k.Value
		}
		return res
	}
	want := results(streamline.WithStageFusion(false))
	got := results()
	if len(want) == 0 {
		t.Fatalf("reference run produced no keys")
	}
	if len(got) != len(want) {
		t.Fatalf("fused run produced %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if diff := got[k] - v; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("key %d: fused %v, unfused %v", k, got[k], v)
		}
	}
}

// TestStageFusionStopsAtBranches proves a stage consumed by more than one
// downstream stays a node of its own: fusing it into either consumer would
// duplicate its work and change the plan's sharing structure.
func TestStageFusionStopsAtBranches(t *testing.T) {
	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.From(env, "gen", streamline.Generator(100,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			return streamline.Keyed[float64]{Ts: i, Value: float64(i)}
		}), streamline.WithSourceParallelism(1))
	shared := streamline.Map(src, "shared", func(v float64) float64 { return v + 1 })
	left := streamline.Map(shared, "left", func(v float64) float64 { return v * 2 })
	right := streamline.Map(shared, "right", func(v float64) float64 { return v * 3 })
	lo := streamline.Collect(left, "lo")
	ro := streamline.Collect(right, "ro")
	plan := planString(env.Core().Graph())
	if !strings.Contains(plan, "shared/") {
		t.Fatalf("branch point was fused away:\n%s", plan)
	}
	execute(t, env.Execute)
	if len(lo.Records()) != 100 || len(ro.Records()) != 100 {
		t.Fatalf("branches saw %d/%d records, want 100/100", len(lo.Records()), len(ro.Records()))
	}
}

// TestFusedChainCheckpointRestore is the recovery proof for fused chains:
// checkpoint a pipeline whose stateless stages are fused, kill it mid-run,
// restore from the latest snapshot, and require the combined results to
// equal a failure-free run. Fusion must be invisible to the ABS protocol —
// barriers cross the fused operator exactly as they crossed the stage run.
func TestFusedChainCheckpointRestore(t *testing.T) {
	const n = 3000
	build := func(perSec float64, opts ...streamline.Option) (*streamline.Env, *streamline.Results[float64]) {
		env := streamline.New(append([]streamline.Option{streamline.WithParallelism(2)}, opts...)...)
		gen := streamline.Generator(n, func(sub, par int, i int64) streamline.Keyed[float64] {
			global := i*int64(par) + int64(sub)
			return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 6), Value: 1}
		})
		var src *streamline.Stream[float64]
		if perSec > 0 {
			src = streamline.From(env, "gen", streamline.Paced(gen, perSec), streamline.WithSourceParallelism(2))
		} else {
			src = streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
		}
		merged := streamline.Union(src, "merge")
		m1 := streamline.Map(merged, "scale", func(v float64) float64 { return v * 2 })
		f1 := streamline.Filter(m1, "keep", func(v float64) bool { return v >= 0 })
		m2 := streamline.Map(f1, "final", func(v float64) float64 { return v / 2 })
		keyed := streamline.KeyByRecord(m2, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
		sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
		return env, streamline.Collect(sums, "out")
	}
	collect := func(outs ...*streamline.Results[float64]) map[uint64]float64 {
		res := map[uint64]float64{}
		for _, out := range outs {
			for _, k := range out.Records() {
				res[k.Key] += k.Value
			}
		}
		return res
	}

	refEnv, refOut := build(0)
	if plan := planString(refEnv.Core().Graph()); !strings.Contains(plan, "scale+keep+final") {
		t.Fatalf("recovery pipeline is not fused:\n%s", plan)
	}
	execute(t, refEnv.Execute)
	want := collect(refOut)

	backend, err := streamline.NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crashEnv, crashOut := build(10_000,
		streamline.WithCheckpointing(backend, 20*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	runErr := crashEnv.Execute(ctx)
	cancel()
	if runErr == nil {
		t.Skip("job finished before kill on this machine")
	}
	snap, ok, err := backend.Latest()
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if !ok {
		t.Skip("no checkpoint before kill")
	}
	resumeEnv, resumeOut := build(0, streamline.WithStateBackend(backend))
	if err := resumeEnv.ExecuteRestored(context.Background(), snap); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	got := collect(crashOut, resumeOut)
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %v, want %v (restored run diverged from failure-free run)", k, got[k], v)
		}
	}
}

// TestFusedFlatMapEmitterReuse proves the per-batch Emitter restructure:
// a fused flatmap emitting bursts still delivers every emission in order,
// and the burst contents survive across batch boundaries at batch size 1.
func TestFusedFlatMapEmitterReuse(t *testing.T) {
	for _, bs := range []int{1, 64} {
		t.Run(fmt.Sprintf("batch=%d", bs), func(t *testing.T) {
			env := streamline.New(streamline.WithParallelism(1), streamline.WithBatchSize(bs))
			src := streamline.From(env, "gen", streamline.Generator(200,
				func(sub, par int, i int64) streamline.Keyed[float64] {
					return streamline.Keyed[float64]{Ts: i, Value: float64(i)}
				}), streamline.WithSourceParallelism(1))
			merged := streamline.Union(src, "merge")
			burst := streamline.FlatMap(merged, "burst", func(v float64, em streamline.Emitter[float64]) {
				for j := 0; j < 3; j++ {
					em.Emit(v*10 + float64(j))
				}
			})
			out := streamline.Collect(burst, "out")
			execute(t, env.Execute)
			recs := out.Records()
			if len(recs) != 600 {
				t.Fatalf("got %d records, want 600", len(recs))
			}
			vals := make([]float64, len(recs))
			for i, k := range recs {
				vals[i] = k.Value
			}
			sort.Float64s(vals)
			for i := int64(0); i < 200; i++ {
				for j := int64(0); j < 3; j++ {
					if want, got := float64(i*10+j), vals[i*3+j]; got != want {
						t.Fatalf("emission %d: got %v, want %v", i*3+j, got, want)
					}
				}
			}
		})
	}
}
