package streamline

// Convenience source entry points over the connector API. Each is sugar for
// From with a built-in connector; the legacy trio at the bottom is kept as
// deprecated wrappers so existing pipelines migrate mechanically.

// FromChannel creates a live in-motion stream fed by a Go channel; closing
// the channel ends the stream. The source defaults to parallelism 1 —
// subtasks would share the channel, splitting records — which
// WithSourceParallelism overrides.
//
// Equivalent to From(env, name, Channel(c), ...).
func FromChannel[T any](env *Env, name string, c <-chan Keyed[T], opts ...SourceOption) *Stream[T] {
	return From(env, name, Channel(c), opts...)
}

// FromJSONL creates a bounded stream from JSON-lines files at rest (a
// single file, a directory, or a glob), one document per line decoded into
// T, scanned in parallel byte-range splits. Pair with WithTimestamps to
// extract event time from the decoded values; use the JSONL connector
// directly to tune the split size (WithSplitSize).
//
// Equivalent to From(env, name, JSONL[T](input), ...).
func FromJSONL[T any](env *Env, name string, input string, opts ...SourceOption) *Stream[T] {
	return From(env, name, JSONL[T](input), opts...)
}

// FromCSV creates a bounded stream from CSV files at rest (a single file, a
// directory, or a glob), one row per record parsed into T, scanned in
// parallel quote-aware byte-range splits. skipHeader drops the first row of
// every file. Pair with WithTimestamps to extract event time from the
// parsed values; use the CSV connector directly to tune the split size.
//
// Equivalent to From(env, name, CSV(input, skipHeader, parse), ...).
func FromCSV[T any](env *Env, name string, input string, skipHeader bool, parse func(row []string) (T, error), opts ...SourceOption) *Stream[T] {
	return From(env, name, CSV(input, skipHeader, parse), opts...)
}

// FromSlice creates a bounded stream from an in-memory slice (data at
// rest). Element i carries event timestamp i; keys are assigned by a later
// KeyBy.
//
// Deprecated: Use From with the Slice connector:
// From(env, name, Slice(items)).
func FromSlice[T any](env *Env, name string, items []T) *Stream[T] {
	return From(env, name, Slice(items))
}

// FromKeyedSlice creates a bounded stream from records carrying explicit
// timestamps and keys.
//
// Deprecated: Use From with the KeyedSlice connector:
// From(env, name, KeyedSlice(items)).
func FromKeyedSlice[T any](env *Env, name string, items []Keyed[T]) *Stream[T] {
	return From(env, name, KeyedSlice(items))
}

// FromGenerator creates a stream from a deterministic generator. count < 0
// makes it unbounded (data in motion); otherwise it is a bounded stream
// that ends — the same plan either way. gen computes the i-th record of the
// given subtask; parallelism <= 0 uses the environment default.
//
// Deprecated: Use From with the Generator connector:
// From(env, name, Generator(count, gen), WithSourceParallelism(parallelism)).
func FromGenerator[T any](env *Env, name string, parallelism int, count int64, gen func(subtask, parallelism int, i int64) Keyed[T]) *Stream[T] {
	return From(env, name, Generator(count, gen), WithSourceParallelism(parallelism))
}

// FromPacedGenerator is FromGenerator throttled to perSec records per
// second per subtask — the live-stream simulation used by the latency
// experiments.
//
// Deprecated: Use From with the Paced and Generator connectors:
// From(env, name, Paced(Generator(count, gen), perSec), WithSourceParallelism(parallelism)).
func FromPacedGenerator[T any](env *Env, name string, parallelism int, count int64, perSec float64, gen func(subtask, parallelism int, i int64) Keyed[T]) *Stream[T] {
	return From(env, name, Paced(Generator(count, gen), perSec), WithSourceParallelism(parallelism))
}
