// Package i2 implements the I2 research highlight of the STREAMLINE paper
// (Traub et al., "I2: Interactive Real-Time Visualization for Streaming
// Data", EDBT 2017): interactive visualization of data in motion, built on
// an aggregation algorithm for time-series data that "reduces the amount of
// data in a data-rate independent manner and is proven to be correct and
// minimal in terms of transferred data".
//
// The algorithm is M4-style pixel-column aggregation (after Jugel et al.,
// VLDB 2014): for a viewport of w pixel columns over time range [t0, t1),
// each column keeps only the first, last, minimum and maximum points of the
// raw series within it. Three provable properties carry the paper's claims:
//
//	Data-rate independence — at most 4·w tuples are transferred regardless
//	of how many raw points arrive (E6);
//	Correctness — a 1-px polyline rendering of the reduced series is
//	pixel-identical to rendering the raw series (theorem in raster.go,
//	property-tested);
//	Minimality — removing any of the four extremes can change the rendered
//	pixels, so no smaller per-column selection is universally correct.
//
// Beyond the operator itself the package provides the pieces of the I2
// system: a multi-resolution history store for data at rest, a streaming
// column aggregator for data in motion, and an HTTP/SSE server that
// coordinates interactive viewports (zoom/pan) against both.
package i2

// Point is one time-series sample.
type Point struct {
	Ts int64   `json:"t"`
	V  float64 `json:"v"`
}

// Column is the M4 aggregate of one pixel column.
type Column struct {
	// Index is the pixel column index in [0, Width).
	Index int `json:"i"`
	// T0 and T1 delimit the column's time range [T0, T1).
	T0 int64 `json:"t0"`
	T1 int64 `json:"t1"`
	// First, Last, Min and Max are the four retained points.
	First Point `json:"first"`
	Last  Point `json:"last"`
	Min   Point `json:"min"`
	Max   Point `json:"max"`
	// Count is the number of raw points aggregated (diagnostics).
	Count int64 `json:"n"`
}

// Viewport describes a visualization request: a time range rendered into
// Width pixel columns.
type Viewport struct {
	From  int64 `json:"from"`
	To    int64 `json:"to"` // exclusive
	Width int   `json:"width"`
}

// Valid reports whether the viewport is well-formed.
func (v Viewport) Valid() bool { return v.Width > 0 && v.To > v.From }

// columnOf maps a timestamp to its pixel column.
func (v Viewport) columnOf(ts int64) int {
	span := v.To - v.From
	c := int((ts - v.From) * int64(v.Width) / span)
	if c < 0 {
		c = 0
	}
	if c >= v.Width {
		c = v.Width - 1
	}
	return c
}

// columnRange returns the time range [t0, t1) of column c. It is the exact
// integer inverse of columnOf: ts lands in column c iff t0 <= ts < t1, which
// requires ceiling division (floor would flush streaming columns one tick
// early whenever Width does not divide the span).
func (v Viewport) columnRange(c int) (int64, int64) {
	span := v.To - v.From
	w := int64(v.Width)
	t0 := v.From + ceilDiv(int64(c)*span, w)
	t1 := v.From + ceilDiv(int64(c+1)*span, w)
	return t0, t1
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// AggregateM4 reduces the points falling inside the viewport to at most
// 4·Width tuples: the M4 aggregation over pixel columns. Points must be in
// non-decreasing timestamp order. Empty columns produce no output.
func AggregateM4(points []Point, vp Viewport) []Column {
	if !vp.Valid() {
		return nil
	}
	var cols []Column
	var cur *Column
	for _, p := range points {
		if p.Ts < vp.From || p.Ts >= vp.To {
			continue
		}
		c := vp.columnOf(p.Ts)
		if cur == nil || cur.Index != c {
			t0, t1 := vp.columnRange(c)
			cols = append(cols, Column{
				Index: c, T0: t0, T1: t1,
				First: p, Last: p, Min: p, Max: p, Count: 1,
			})
			cur = &cols[len(cols)-1]
			continue
		}
		cur.Last = p
		cur.Count++
		if p.V < cur.Min.V {
			cur.Min = p
		}
		if p.V > cur.Max.V {
			cur.Max = p
		}
	}
	return cols
}

// Points flattens columns back into the reduced point series, deduplicating
// coincident tuples (a column with a single point contributes one tuple,
// not four). Within a column, points are emitted in rendering order —
// First, Min, Max, Last — so the polyline enters the column at the true
// first point and exits at the true last point even when timestamps
// collide; across columns the series is time-ordered. This is "the
// transferred data" whose size E6 and E7 measure.
func Points(cols []Column) []Point {
	var out []Point
	for _, c := range cols {
		// Entry must be First and exit must be Last: a duplicate may only
		// be elided when it does not move the polyline's entry or exit
		// position (otherwise the connector to the neighbouring column
		// would start from the wrong point and change pixels).
		out = append(out, c.First)
		if c.Min != c.First {
			out = append(out, c.Min)
		}
		if c.Max != c.First && c.Max != c.Min {
			out = append(out, c.Max)
		}
		if c.Last != out[len(out)-1] {
			out = append(out, c.Last)
		}
	}
	return out
}

// TransferSize reports the number of tuples the reduced series transfers.
func TransferSize(cols []Column) int { return len(Points(cols)) }

// StreamAgg is the data-in-motion variant: it consumes an in-order stream
// and emits each pixel column as soon as event time (watermarks) passes the
// column's end — the incremental protocol the I2 front end renders from.
// State is one open column, so memory is O(1) regardless of data rate.
type StreamAgg struct {
	vp   Viewport
	emit func(Column)
	cur  *Column
	done bool
}

// NewStreamAgg returns a streaming aggregator for the viewport, emitting
// completed columns to emit.
func NewStreamAgg(vp Viewport, emit func(Column)) *StreamAgg {
	return &StreamAgg{vp: vp, emit: emit}
}

// OnPoint consumes one in-order sample.
func (s *StreamAgg) OnPoint(p Point) {
	if s.done || !s.vp.Valid() || p.Ts < s.vp.From || p.Ts >= s.vp.To {
		return
	}
	c := s.vp.columnOf(p.Ts)
	if s.cur != nil && c != s.cur.Index {
		s.emit(*s.cur)
		s.cur = nil
	}
	if s.cur == nil {
		t0, t1 := s.vp.columnRange(c)
		s.cur = &Column{Index: c, T0: t0, T1: t1, First: p, Last: p, Min: p, Max: p, Count: 1}
		return
	}
	s.cur.Last = p
	s.cur.Count++
	if p.V < s.cur.Min.V {
		s.cur.Min = p
	}
	if p.V > s.cur.Max.V {
		s.cur.Max = p
	}
}

// OnWatermark flushes the open column once event time passes its end.
func (s *StreamAgg) OnWatermark(wm int64) {
	if s.done {
		return
	}
	if s.cur != nil && wm >= s.cur.T1 {
		s.emit(*s.cur)
		s.cur = nil
	}
	if wm >= s.vp.To {
		s.done = true
	}
}

// Flush emits any open column (end of stream).
func (s *StreamAgg) Flush() {
	if s.cur != nil {
		s.emit(*s.cur)
		s.cur = nil
	}
	s.done = true
}
