// Package engine defines the contract shared by all window aggregation
// engines: Cutty (internal/cutty) and the prior-art baselines
// (internal/baselines). A single interface lets the conformance tests and
// the E1–E5 experiments drive every strategy identically.
//
// Driving protocol: engines consume one in-order stream (per key). For every
// element the driver must first call OnWatermark(ts) and then
// OnElement(ts, v); additional watermarks may be injected at any time (they
// must be non-decreasing), and a final OnWatermark(math.MaxInt64) flushes
// data-driven windows at end of stream. The watermark-before-element rule
// guarantees that windows whose end has passed are closed before a newer
// element arrives, which is what makes "add to all open windows" correct for
// the bucket-style baselines. The dataflow layer enforces the same protocol.
package engine

import (
	"repro/internal/agg"
	"repro/internal/window"
)

// Query is one registered window aggregation: a window specification plus an
// aggregate function. Engines share work between queries where their
// strategy allows it (Cutty shares slices between all queries with the same
// Fn.Name; Buckets and Eager share nothing).
type Query struct {
	Window window.Spec
	Fn     *agg.FnF64
}

// Result is one completed window of one query.
type Result struct {
	// QueryID identifies the query as returned by AddQuery.
	QueryID int
	// Start and End are the window's logical extent as declared by its
	// assigner (timestamps for time windows, positions for count windows).
	Start, End int64
	// Value is the lowered aggregate of the window's content.
	Value float64
	// Count is the number of elements aggregated into the window.
	Count int64
}

// Emit receives completed windows. Engines call it synchronously from
// OnElement/OnWatermark.
type Emit func(Result)

// Engine is a multi-query window aggregation engine over a single in-order
// stream.
type Engine interface {
	// Name identifies the strategy ("cutty", "buckets", "pairs", ...).
	Name() string
	// AddQuery registers a query and returns its id. Queries may be added
	// while the stream is running; windows of the new query start with the
	// next element.
	AddQuery(q Query) (int, error)
	// RemoveQuery unregisters a query; its open windows are discarded.
	RemoveQuery(id int)
	// OnElement processes one element with event timestamp ts.
	OnElement(ts int64, v float64)
	// OnWatermark advances event time; must be non-decreasing.
	OnWatermark(wm int64)
	// StoredPartials reports the number of partial aggregates (or buffered
	// raw values, for tuple-buffering strategies) currently held — the
	// memory metric of experiment E5.
	StoredPartials() int
}
