package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/dataflow"
	"repro/internal/state"
	"repro/internal/window"
)

// Kill/restore through the public core API: the pipeline is rebuilt from
// its definition and resumed from the last checkpoint; dedup'd window
// results must equal a failure-free run.
func TestExecuteRestoredEquivalence(t *testing.T) {
	const n = 5000
	build := func(paced bool, backend state.Backend) (*Environment, *dataflow.CollectSink) {
		opts := []Option{WithParallelism(2)}
		if backend != nil {
			opts = append(opts, WithCheckpointing(backend, 20*time.Millisecond))
		}
		env := NewEnvironment(opts...)
		var src *Stream
		gen := func(sub, par int, i int64) dataflow.Record {
			global := i*int64(par) + int64(sub)
			return dataflow.Data(global, uint64(global%4), float64(1))
		}
		if paced {
			src = env.FromPacedGenerator("gen", 2, n, 10_000, gen)
		} else {
			src = env.FromGenerator("gen", 2, n, gen)
		}
		sink := src.
			KeyBy("k", func(r dataflow.Record) uint64 { return r.Key }).
			WindowAggregate("win",
				WindowedQuery{Window: window.Tumbling(100), Fn: agg.SumF64()},
			).
			Collect("out")
		return env, sink
	}
	collect := func(s *dataflow.CollectSink) map[[2]int64]float64 {
		out := map[[2]int64]float64{}
		for _, r := range s.Records() {
			wr := r.Value.(dataflow.WindowResult)
			out[[2]int64{int64(r.Key), wr.Start}] = wr.Value
		}
		return out
	}

	refEnv, refSink := build(false, nil)
	if err := refEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := collect(refSink)

	backend := state.NewMemoryBackend(0)
	crashEnv, crashSink := build(true, backend)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	err := crashEnv.Execute(ctx)
	cancel()
	if err == nil {
		t.Skip("job finished before kill on this machine")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint before kill")
	}
	// Rebuild the pipeline from its definition and resume from the
	// snapshot; results of replayed windows overwrite the crash run's
	// (sinks are per-environment, so the two result sets are merged).
	resumeEnv, sink2 := build(false, backend)
	if err := resumeEnv.ExecuteRestored(context.Background(), snap); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	got := collect(crashSink)
	for k, v := range collect(sink2) {
		got[k] = v // replayed windows overwrite (idempotent)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %v = %v, want %v", k, got[k], v)
		}
	}
}

// TestExecuteRestoredRescaledFileSource kills a checkpointing pipeline whose
// source is a splittable file scan at parallelism 2 and recovers it with the
// source at parallelism 1 and at 4 through the core lowering: the snapshot's
// split state redistributes across the new source subtasks (seek-based
// resume, no re-scan), the keyed window state redistributes by key group,
// and the deduplicated window results must equal a failure-free run.
func TestExecuteRestoredRescaledFileSource(t *testing.T) {
	const n = 6000
	path := filepath.Join(t.TempDir(), "history.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(f, "%d\n", i)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	decode := func(line []byte, off int64) (dataflow.Record, bool, error) {
		i, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return dataflow.Record{}, false, err
		}
		return dataflow.Data(i, uint64(i%5), 1.0), true, nil
	}
	build := func(srcPar int, perSec float64, backend state.Backend) (*Environment, *dataflow.CollectSink) {
		opts := []Option{WithParallelism(2)}
		if backend != nil {
			opts = append(opts, WithCheckpointing(backend, 20*time.Millisecond))
		}
		env := NewEnvironment(opts...)
		factory := dataflow.LineSourceFactory(dataflow.ScanConfig{Input: path, SplitSize: 2048}, decode)
		src := env.FromSource("scan", srcPar, func(sub, par int) dataflow.SourceFunc {
			if perSec > 0 {
				return &dataflow.PacedSource{PerSec: perSec, Inner: factory(sub, par)}
			}
			return factory(sub, par)
		})
		sink := src.
			KeyBy("k", func(r dataflow.Record) uint64 { return r.Key }).
			WindowAggregate("win",
				WindowedQuery{Window: window.Tumbling(100), Fn: agg.SumF64()},
			).
			Collect("out")
		return env, sink
	}
	collect := func(sinks ...*dataflow.CollectSink) map[[2]int64]float64 {
		out := map[[2]int64]float64{}
		for _, s := range sinks {
			for _, r := range s.Records() {
				wr := r.Value.(dataflow.WindowResult)
				out[[2]int64{int64(r.Key), wr.Start}] = wr.Value
			}
		}
		return out
	}

	refEnv, refSink := build(2, 0, nil)
	if err := refEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := collect(refSink)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	for _, restorePar := range []int{1, 4} {
		restorePar := restorePar
		t.Run(fmt.Sprintf("source-to-parallelism-%d", restorePar), func(t *testing.T) {
			backend := state.NewMemoryBackend(0)
			crashEnv, crashSink := build(2, 12_000, backend)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
			err := crashEnv.Execute(ctx)
			cancel()
			if err == nil {
				t.Skip("job finished before kill on this machine")
			}
			snap, ok, _ := backend.Latest()
			if !ok {
				t.Skip("no checkpoint before kill")
			}
			resumeEnv, sink2 := build(restorePar, 0, backend)
			if err := resumeEnv.ExecuteRestored(context.Background(), snap); err != nil {
				t.Fatalf("restored run with source parallelism %d: %v", restorePar, err)
			}
			got := collect(crashSink, sink2)
			if len(got) != len(want) {
				t.Fatalf("got %d windows, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("window %v = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}

// TestExecuteRestoredRescaled kills a checkpointing pipeline running its
// keyed operator at parallelism 2 and recovers it at parallelism 1 and at
// 4: the snapshot's key-group blobs redistribute to the new subtask ranges
// and the deduplicated window results must equal a failure-free run. The
// source keeps its pinned parallelism — only the keyed stage rescales
// (generator positions are per-subtask; file scans may rescale too, see
// TestExecuteRestoredRescaledFileSource).
func TestExecuteRestoredRescaled(t *testing.T) {
	const n = 5000
	build := func(parallelism int, paced bool, backend state.Backend) (*Environment, *dataflow.CollectSink) {
		opts := []Option{WithParallelism(parallelism)}
		if backend != nil {
			opts = append(opts, WithCheckpointing(backend, 20*time.Millisecond))
		}
		env := NewEnvironment(opts...)
		var src *Stream
		gen := func(sub, par int, i int64) dataflow.Record {
			global := i*int64(par) + int64(sub)
			return dataflow.Data(global, uint64(global%6), float64(1))
		}
		if paced {
			src = env.FromPacedGenerator("gen", 2, n, 10_000, gen)
		} else {
			src = env.FromGenerator("gen", 2, n, gen)
		}
		sink := src.
			KeyBy("k", func(r dataflow.Record) uint64 { return r.Key }).
			WindowAggregate("win",
				WindowedQuery{Window: window.Tumbling(100), Fn: agg.SumF64()},
			).
			Collect("out")
		return env, sink
	}
	collect := func(sinks ...*dataflow.CollectSink) map[[2]int64]float64 {
		out := map[[2]int64]float64{}
		for _, s := range sinks {
			for _, r := range s.Records() {
				wr := r.Value.(dataflow.WindowResult)
				out[[2]int64{int64(r.Key), wr.Start}] = wr.Value
			}
		}
		return out
	}

	refEnv, refSink := build(2, false, nil)
	if err := refEnv.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := collect(refSink)

	for _, restorePar := range []int{1, 4} {
		restorePar := restorePar
		t.Run(fmt.Sprintf("to-parallelism-%d", restorePar), func(t *testing.T) {
			backend := state.NewMemoryBackend(0)
			crashEnv, crashSink := build(2, true, backend)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
			err := crashEnv.Execute(ctx)
			cancel()
			if err == nil {
				t.Skip("job finished before kill on this machine")
			}
			snap, ok, _ := backend.Latest()
			if !ok {
				t.Skip("no checkpoint before kill")
			}
			// Rebuild the same logical pipeline at a different parallelism
			// and resume: WithRestore works because keyed state is stored
			// per key group, not per subtask.
			resumeEnv, sink2 := build(restorePar, false, backend)
			if err := resumeEnv.ExecuteRestored(context.Background(), snap); err != nil {
				t.Fatalf("restored run at parallelism %d: %v", restorePar, err)
			}
			got := collect(crashSink, sink2)
			if len(got) != len(want) {
				t.Fatalf("got %d windows, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("window %v = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}
