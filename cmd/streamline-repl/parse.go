package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/window"
)

// CmdKind enumerates REPL commands.
type CmdKind uint8

// Command kinds.
const (
	CmdNop CmdKind = iota
	CmdQuit
	CmdHelp
	CmdAdd
	CmdRemove
	CmdList
	CmdStats
	CmdShow
	CmdTopics
	CmdPersist
	CmdFromTopic
)

// Command is one parsed REPL line.
type Command struct {
	Kind CmdKind
	Spec window.Spec // CmdAdd
	Fn   *agg.FnF64  // CmdAdd
	Desc string      // CmdAdd
	N    int         // CmdRemove (query id), CmdShow (count)
	Name string      // CmdPersist ("off" to stop), CmdFromTopic (topic name)
}

// Parse parses one REPL line. An empty line is CmdNop.
func Parse(line string) (Command, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) == 0 {
		return Command{Kind: CmdNop}, nil
	}
	switch fields[0] {
	case "quit", "exit":
		return Command{Kind: CmdQuit}, nil
	case "help":
		return Command{Kind: CmdHelp}, nil
	case "list":
		return Command{Kind: CmdList}, nil
	case "stats":
		return Command{Kind: CmdStats}, nil
	case "show":
		n := 5
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return Command{}, fmt.Errorf("show: want a positive count, got %q", fields[1])
			}
			n = v
		}
		return Command{Kind: CmdShow, N: n}, nil
	case "remove":
		if len(fields) != 2 {
			return Command{}, fmt.Errorf("remove: usage: remove <query-id>")
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return Command{}, fmt.Errorf("remove: bad query id %q", fields[1])
		}
		return Command{Kind: CmdRemove, N: id}, nil
	case "topics":
		if len(fields) != 1 {
			return Command{}, fmt.Errorf("topics: takes no arguments")
		}
		return Command{Kind: CmdTopics}, nil
	case "persist":
		if len(fields) != 2 {
			return Command{}, fmt.Errorf("persist: usage: persist <topic> | persist off")
		}
		return Command{Kind: CmdPersist, Name: fields[1]}, nil
	case "from":
		if len(fields) != 3 || fields[1] != "topic" {
			return Command{}, fmt.Errorf("from: usage: from topic <name>")
		}
		return Command{Kind: CmdFromTopic, Name: fields[2]}, nil
	case "add":
		return parseAdd(fields[1:])
	}
	return Command{}, fmt.Errorf("unknown command %q (try 'help')", fields[0])
}

func parseAdd(args []string) (Command, error) {
	if len(args) < 2 {
		return Command{}, fmt.Errorf("add: usage: add <window> <params...> <fn>")
	}
	fnName := args[len(args)-1]
	fn := agg.StdFnF64(fnName)
	if fn == nil {
		return Command{}, fmt.Errorf("add: unknown function %q (sum count min max avg var)", fnName)
	}
	params := args[1 : len(args)-1]
	nums := make([]int64, len(params))
	for i, p := range params {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil || v <= 0 {
			return Command{}, fmt.Errorf("add: parameter %q must be a positive integer", p)
		}
		nums[i] = v
	}
	var spec window.Spec
	switch args[0] {
	case "tumbling":
		if len(nums) != 1 {
			return Command{}, fmt.Errorf("add tumbling: usage: add tumbling <size-ms> <fn>")
		}
		spec = window.Tumbling(nums[0])
	case "sliding":
		if len(nums) != 2 {
			return Command{}, fmt.Errorf("add sliding: usage: add sliding <size-ms> <slide-ms> <fn>")
		}
		if nums[1] > nums[0] {
			return Command{}, fmt.Errorf("add sliding: slide must not exceed size")
		}
		spec = window.Sliding(nums[0], nums[1])
	case "session":
		if len(nums) != 1 {
			return Command{}, fmt.Errorf("add session: usage: add session <gap-ms> <fn>")
		}
		spec = window.Session(nums[0])
	case "count":
		if len(nums) != 1 {
			return Command{}, fmt.Errorf("add count: usage: add count <n> <fn>")
		}
		spec = window.CountTumbling(nums[0])
	case "timeorcount":
		if len(nums) != 2 {
			return Command{}, fmt.Errorf("add timeorcount: usage: add timeorcount <dur-ms> <n> <fn>")
		}
		spec = window.TimeOrCount(nums[0], nums[1])
	default:
		return Command{}, fmt.Errorf("add: unknown window %q (tumbling sliding session count timeorcount)", args[0])
	}
	desc := fmt.Sprintf("%s(%s) %s", args[0], strings.Join(params, ","), fnName)
	return Command{Kind: CmdAdd, Spec: spec, Fn: fn, Desc: desc}, nil
}
