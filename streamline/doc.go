// Package streamline is the public, typed surface of the STREAMLINE
// reproduction: one fluent, generics-based programming model over data at
// rest and data in motion.
//
// A Stream[T] is a handle to one stage of a lazily-built pipeline. Typed
// operators — Map, Filter, FlatMap, KeyBy, ReduceByKey, WindowAggregate,
// JoinWindow, Union — derive new streams; Collect and Sink terminate them;
// Env.Execute runs the whole plan. Whether the source is a bounded slice
// (data at rest) or an unbounded generator (data in motion), the identical
// plan runs on the identical pipelined engine.
//
// Every typed operator lowers onto the untyped record engine in
// internal/core and internal/dataflow, boxing values at operator
// boundaries. The facade therefore inherits the optimizer unchanged:
// operator chaining, adaptive combiner insertion before hash shuffles,
// architecture-sized parallelism, and Cutty multi-query window sharing all
// fire exactly as they do for hand-built untyped plans — a typed layer
// compiled onto an untyped dataflow, in the tradition of Flink's
// TypeInformation machinery.
//
// The smallest complete pipeline:
//
//	env := streamline.New(streamline.WithParallelism(2))
//	nums := streamline.FromSlice(env, "nums", []float64{1, 2, 3, 4})
//	keyed := streamline.KeyBy(nums, "parity", func(v float64) uint64 { return uint64(v) % 2 })
//	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
//	out := streamline.Collect(sums, "out")
//	if err := env.Execute(context.Background()); err != nil { ... }
//	for _, k := range out.Records() { // []streamline.Keyed[float64]
//		fmt.Println(k.Key, k.Value)
//	}
//
// User-visible records are Keyed[T] values — no type assertions required
// anywhere downstream of a typed source.
package streamline
