package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"
)

// SourceFunc produces the records of a source subtask. Implementations must
// be replayable for exactly-once recovery: Snapshot captures the read
// position and Restore resumes from it, re-emitting everything after.
// Sources backed by inputs that cannot replay (live channels) document the
// weaker guarantee instead.
//
// A SourceFunc may emit Watermark records interleaved with data; the runtime
// emits the final +inf watermark and end-of-stream marker itself.
type SourceFunc interface {
	// Next returns the next record, or ok=false at end of stream.
	Next() (r Record, ok bool)
	// Snapshot serializes the read position.
	Snapshot() ([]byte, error)
	// Restore resumes from a snapshot taken by Snapshot.
	Restore([]byte) error
}

// Failable is an optional SourceFunc extension for sources whose input can
// fail mid-stream (files, networks). Next has no error return — a failing
// source ends its stream (ok=false) and reports the cause through Err, which
// the runtime checks at end of stream and surfaces as the job error.
type Failable interface {
	// Err returns the error that terminated the stream, or nil if the
	// stream is still healthy / ended normally.
	Err() error
}

// sourceErr returns the terminal error of a source, if it is Failable and
// failed.
func sourceErr(src SourceFunc) error {
	if f, ok := src.(Failable); ok {
		return f.Err()
	}
	return nil
}

// SourceOpener is an optional SourceFunc extension: the runtime hands each
// source subtask its OpContext before restore and the first Next — the same
// hook operators get in Open — so sources can register metrics instruments
// (scan counters) on OpContext.Metrics.
type SourceOpener interface {
	OpenSource(ctx *OpContext)
}

// MultiRestorable is an optional SourceFunc extension for sources whose
// snapshot state is not positional per subtask. RestoreAll receives the
// state blobs of *every* subtask of the checkpointing job, keyed by old
// subtask index, so the restoring stage may run at a different parallelism —
// splittable file scans redistribute their remaining splits this way.
// Composite sources (hybrid, paced) implement it by decomposing blobs and
// delegating with RestoreSource.
type MultiRestorable interface {
	RestoreAll(subtask, parallelism int, blobs map[int][]byte) error
}

// RestoreSource restores one source subtask from the node-wide blob set:
// sources implementing MultiRestorable redistribute freely, everything else
// falls back to the positional per-subtask Restore — which requires the
// parallelism to match the snapshot's.
func RestoreSource(src SourceFunc, subtask, parallelism int, blobs map[int][]byte) error {
	if m, ok := src.(MultiRestorable); ok {
		return m.RestoreAll(subtask, parallelism, blobs)
	}
	oldPar := 0
	for sub := range blobs {
		if sub+1 > oldPar {
			oldPar = sub + 1
		}
	}
	if oldPar != parallelism {
		return fmt.Errorf("source state of %d subtasks does not redistribute to parallelism %d (only splittable scans rescale; see MultiRestorable)", oldPar, parallelism)
	}
	blob, ok := blobs[subtask]
	if !ok {
		return fmt.Errorf("source snapshot is missing subtask %d", subtask)
	}
	return src.Restore(blob)
}

// GenSource is a deterministic generator source: record i is computed by Gen
// from its index, making the source replayable by construction. A watermark
// lagging the max emitted timestamp by Lag is emitted every WatermarkEvery
// records (default 64).
type GenSource struct {
	// N is the number of records to emit; N < 0 means unbounded.
	N int64
	// Gen computes the i-th record.
	Gen func(i int64) Record
	// WatermarkEvery controls watermark frequency in records (default 64).
	WatermarkEvery int64
	// Lag is subtracted from the max seen timestamp when emitting
	// watermarks — the bounded-disorder allowance.
	Lag int64

	idx       int64
	maxTs     int64
	sinceWM   int64
	havePend  bool
	pendingWM int64
}

type genSourceState struct {
	Idx     int64
	MaxTs   int64
	SinceWM int64
}

// Next implements SourceFunc.
func (g *GenSource) Next() (Record, bool) {
	if g.havePend {
		g.havePend = false
		return Watermark(g.pendingWM), true
	}
	if g.N >= 0 && g.idx >= g.N {
		return Record{}, false
	}
	r := g.Gen(g.idx)
	g.idx++
	if r.Ts > g.maxTs {
		g.maxTs = r.Ts
	}
	every := g.WatermarkEvery
	if every <= 0 {
		every = 64
	}
	g.sinceWM++
	if g.sinceWM >= every {
		g.sinceWM = 0
		g.havePend = true
		g.pendingWM = g.maxTs - g.Lag
	}
	return r, true
}

// Snapshot implements SourceFunc.
func (g *GenSource) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(genSourceState{Idx: g.idx, MaxTs: g.maxTs, SinceWM: g.sinceWM})
	return buf.Bytes(), err
}

// Restore implements SourceFunc.
func (g *GenSource) Restore(blob []byte) error {
	var s genSourceState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("gen source restore: %w", err)
	}
	g.idx, g.maxTs, g.sinceWM, g.havePend = s.Idx, s.MaxTs, s.SinceWM, false
	return nil
}

// SliceSource returns a SourceFactory that splits recs round-robin across
// the source's subtasks. Replayable (backed by GenSource).
func SliceSource(recs []Record) SourceFactory {
	return func(subtask, parallelism int) SourceFunc {
		var mine []Record
		for i := subtask; i < len(recs); i += parallelism {
			mine = append(mine, recs[i])
		}
		return &GenSource{
			N:   int64(len(mine)),
			Gen: func(i int64) Record { return mine[i] },
		}
	}
}

// Pacer throttles emissions to approximately perSec per second of wall
// clock, sleeping until the next emission is due. The schedule is anchored
// at the first Wait call; Reset re-anchors it (after a recovery restore,
// pacing must restart from the resume point, not replay the old schedule).
type Pacer struct {
	start time.Time
	count int64
}

// Wait sleeps until the next emission is due at the given rate. perSec <= 0
// waits nothing.
func (p *Pacer) Wait(perSec float64) {
	if p.start.IsZero() {
		p.start = time.Now()
	}
	if perSec > 0 {
		due := p.start.Add(time.Duration(float64(p.count) / perSec * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	p.count++
}

// Reset re-anchors the pacing schedule at the next Wait call.
func (p *Pacer) Reset() { *p = Pacer{} }

// Started reports whether the pacer has begun its schedule (diagnostics).
func (p *Pacer) Started() bool { return !p.start.IsZero() }

// PacedSource throttles an inner SourceFunc to approximately PerSec records
// per second (wall clock), used by the latency experiments.
type PacedSource struct {
	Inner  SourceFunc
	PerSec float64

	pacer Pacer
}

// Next implements SourceFunc.
func (p *PacedSource) Next() (Record, bool) {
	p.pacer.Wait(p.PerSec)
	return p.Inner.Next()
}

// Snapshot implements SourceFunc.
func (p *PacedSource) Snapshot() ([]byte, error) { return p.Inner.Snapshot() }

// Restore implements SourceFunc. The pacing schedule is re-anchored: a
// restored source must emit at PerSec from the resume point onward, not
// sleep (or burst) to catch up with the pre-crash schedule.
func (p *PacedSource) Restore(blob []byte) error {
	p.pacer.Reset()
	return p.Inner.Restore(blob)
}

// RestoreAll implements MultiRestorable by delegation (pacing carries no
// state of its own beyond the schedule anchor, which is reset like Restore).
func (p *PacedSource) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	p.pacer.Reset()
	return RestoreSource(p.Inner, subtask, parallelism, blobs)
}

// OpenSource implements SourceOpener by delegation.
func (p *PacedSource) OpenSource(ctx *OpContext) {
	if o, ok := p.Inner.(SourceOpener); ok {
		o.OpenSource(ctx)
	}
}

// Err implements Failable by delegation.
func (p *PacedSource) Err() error { return sourceErr(p.Inner) }

// SourceLocalOnly implements LocalOnlySource by delegation.
func (p *PacedSource) SourceLocalOnly() bool {
	lo, ok := p.Inner.(LocalOnlySource)
	return ok && lo.SourceLocalOnly()
}

// ChannelSource ingests live records from a Go channel — data in motion that
// exists only once, pushed by an external producer. A closed channel ends
// the stream. Watermarks lagging the max seen timestamp by Lag are emitted
// every WatermarkEvery records (default 64) and whenever the channel stays
// idle for Poll (default 25ms), so event time keeps advancing and the
// runtime stays responsive to checkpoints and cancellation while the
// producer is quiet. Producers may also inject Watermark records directly.
//
// A channel cannot be replayed: Snapshot records only the watermark
// bookkeeping, so recovery resumes at the live position ("at most once" for
// records consumed before the crash). Exactly-once replay of history belongs
// to replayable sources — compose both with HybridSource.
type ChannelSource struct {
	C <-chan Record
	// WatermarkEvery controls watermark cadence in records (default 64).
	WatermarkEvery int64
	// Lag is the bounded-disorder allowance subtracted from the max seen
	// timestamp when emitting watermarks.
	Lag int64
	// Poll is how long Next waits for a record before emitting an idle
	// watermark (default 25ms).
	Poll time.Duration

	emitted   int64
	maxTs     int64
	haveTs    bool
	wmFloor   int64 // max producer-promised watermark; emissions never regress below it
	haveFloor bool
	sinceWM   int64
	havePend  bool
	pendingWM int64
}

type channelSourceState struct {
	Emitted   int64
	MaxTs     int64
	HaveTs    bool
	WMFloor   int64
	HaveFloor bool
	SinceWM   int64
}

// watermark returns the current watermark value of the source: the max seen
// data timestamp minus Lag, floored at the highest producer promise.
func (c *ChannelSource) watermark() int64 {
	wm := int64(minInt64)
	if c.haveTs {
		wm = c.maxTs - c.Lag
	}
	if c.haveFloor && c.wmFloor > wm {
		wm = c.wmFloor
	}
	return wm
}

const minInt64 = -1 << 63

// Next implements SourceFunc.
func (c *ChannelSource) Next() (Record, bool) {
	if c.havePend {
		c.havePend = false
		return Watermark(c.pendingWM), true
	}
	// Fast path: a busy producer keeps the channel non-empty, so the idle
	// timer (an allocation per call) is only armed when it is needed.
	select {
	case r, ok := <-c.C:
		return c.received(r, ok)
	default:
	}
	poll := c.Poll
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	timer := time.NewTimer(poll)
	defer timer.Stop()
	select {
	case r, ok := <-c.C:
		return c.received(r, ok)
	case <-timer.C:
		return Watermark(c.watermark()), true
	}
}

// received folds one channel delivery into the source's bookkeeping.
func (c *ChannelSource) received(r Record, ok bool) (Record, bool) {
	if !ok {
		return Record{}, false
	}
	switch r.Kind {
	case KindWatermark:
		// A producer promise becomes a floor on the emitted watermark —
		// not a Lag-adjusted maxTs update, which would overflow for a +inf
		// close-out promise — and is emitted through watermark(), so later
		// idle/cadence watermarks can never regress behind it (a regressing
		// watermark re-opens windows downstream).
		if r.Ts > c.wmFloor || !c.haveFloor {
			c.wmFloor, c.haveFloor = r.Ts, true
		}
		return Watermark(c.watermark()), true
	case KindData:
		c.emitted++
		if r.Ts > c.maxTs || !c.haveTs {
			c.maxTs, c.haveTs = r.Ts, true
		}
		every := c.WatermarkEvery
		if every <= 0 {
			every = 64
		}
		c.sinceWM++
		if c.sinceWM >= every {
			c.sinceWM = 0
			c.havePend = true
			c.pendingWM = c.watermark()
		}
		return r, true
	default:
		// Barriers and end markers belong to the runtime, not producers;
		// drop them and emit the current watermark to keep the loop moving.
		return Watermark(c.watermark()), true
	}
}

// SourceLocalOnly implements LocalOnlySource: the Go channel exists only in
// the process that built the graph, so distributed placement pins the node
// to the coordinator.
func (c *ChannelSource) SourceLocalOnly() bool { return true }

// Snapshot implements SourceFunc (watermark bookkeeping only — see the type
// comment for the recovery semantics of non-replayable channels).
func (c *ChannelSource) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(channelSourceState{
		Emitted: c.emitted, MaxTs: c.maxTs, HaveTs: c.haveTs,
		WMFloor: c.wmFloor, HaveFloor: c.haveFloor, SinceWM: c.sinceWM,
	})
	return buf.Bytes(), err
}

// Restore implements SourceFunc.
func (c *ChannelSource) Restore(blob []byte) error {
	var s channelSourceState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("channel source restore: %w", err)
	}
	c.emitted, c.maxTs, c.haveTs, c.sinceWM, c.havePend = s.Emitted, s.MaxTs, s.HaveTs, s.SinceWM, false
	c.wmFloor, c.haveFloor = s.WMFloor, s.HaveFloor
	return nil
}

// Hybrid phases, in snapshot order.
const (
	hybridHistory byte = iota
	hybridLive
)

// HybridSource is the at-rest→in-motion handoff: it replays a bounded
// History source, emits a handoff watermark at the history's max data
// timestamp the moment history ends, then switches to the Live source — one
// source stage bootstrapped from stored data and continued on the live
// stream, the scenario the paper eliminates the Lambda architecture with.
//
// The switch is atomic within one Next call, and Snapshot records the phase
// plus both inner positions, so a checkpoint taken during replay restores
// into the history phase and still crosses the handoff exactly once.
//
// Live records must carry timestamps after the history's max timestamp;
// older ones arrive late relative to the handoff watermark (standard
// bounded-disorder semantics apply).
//
// The handoff watermark is per subtask: each instance promises only the max
// timestamp it saw itself, and an instance whose history share was empty
// (possible over a splittable FileScanSource history, where one subtask may
// drain the whole split queue) emits no handoff watermark at all — its
// channel then holds downstream event time at -inf until live data reaches
// it. The typed layer (streamline.Hybrid) closes this with a stage-wide
// clock and the ReadHandoff protocol; compose file histories at parallelism
// > 1 through it, or keep engine-level hybrids single-subtask.
type HybridSource struct {
	History SourceFunc
	Live    SourceFunc

	phase  byte
	maxTs  int64
	haveTs bool
}

type hybridSourceState struct {
	Phase   byte
	MaxTs   int64
	HaveTs  bool
	History []byte
	Live    []byte
}

// Next implements SourceFunc.
func (h *HybridSource) Next() (Record, bool) {
	if h.phase == hybridHistory {
		r, ok := h.History.Next()
		if ok {
			if r.Kind == KindData && (r.Ts > h.maxTs || !h.haveTs) {
				h.maxTs, h.haveTs = r.Ts, true
			}
			return r, true
		}
		// A history that failed mid-replay (Failable) ends the whole
		// stream here instead of handing off: the runtime only inspects
		// Err at end of stream, and an unbounded live phase would bury a
		// truncated history forever.
		if sourceErr(h.History) != nil {
			return Record{}, false
		}
		h.phase = hybridLive
		if h.haveTs {
			// Handoff: close out event time over the whole history before
			// the first live record, so history windows can fire.
			return Watermark(h.maxTs), true
		}
	}
	return h.Live.Next()
}

// Snapshot implements SourceFunc.
func (h *HybridSource) Snapshot() ([]byte, error) {
	hist, err := h.History.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("hybrid history snapshot: %w", err)
	}
	live, err := h.Live.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("hybrid live snapshot: %w", err)
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(hybridSourceState{
		Phase: h.phase, MaxTs: h.maxTs, HaveTs: h.haveTs, History: hist, Live: live,
	})
	return buf.Bytes(), err
}

// Restore implements SourceFunc.
func (h *HybridSource) Restore(blob []byte) error {
	var s hybridSourceState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("hybrid source restore: %w", err)
	}
	if err := h.History.Restore(s.History); err != nil {
		return fmt.Errorf("hybrid history restore: %w", err)
	}
	if err := h.Live.Restore(s.Live); err != nil {
		return fmt.Errorf("hybrid live restore: %w", err)
	}
	h.phase, h.maxTs, h.haveTs = s.Phase, s.MaxTs, s.HaveTs
	return nil
}

// RestoreAll implements MultiRestorable: every subtask blob is decomposed
// into its phase flag and the two inner positions, and each inner source is
// restored from its own node-wide blob set via RestoreSource — so a hybrid
// over a splittable history rescales while the history replay is still in
// flight (the satellite scenario: kill mid-history at one source
// parallelism, recover at another).
//
// The restored phase is aggregated: the stage re-enters the history phase
// unless every old subtask had already crossed the handoff (in which case no
// history work remains). A subtask that had crossed individually may re-enter
// history after a rescale; that is sound for histories that emit no
// in-flight watermarks (file scans), because downstream event time cannot
// have advanced past the handoff while any subtask was still replaying. The
// live phase, when not yet entered anywhere, restores fresh; live state that
// was already accumulating only redistributes if the live source itself is
// MultiRestorable (or the parallelism is unchanged).
func (h *HybridSource) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	hist := make(map[int][]byte, len(blobs))
	live := make(map[int][]byte, len(blobs))
	allLive, anyLive := true, false
	var maxTs int64
	haveTs := false
	for sub, blob := range blobs {
		var s hybridSourceState
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			return fmt.Errorf("hybrid source restore: %w", err)
		}
		hist[sub] = s.History
		live[sub] = s.Live
		if s.Phase == hybridLive {
			anyLive = true
		} else {
			allLive = false
		}
		if s.HaveTs && (!haveTs || s.MaxTs > maxTs) {
			maxTs, haveTs = s.MaxTs, true
		}
	}
	if err := RestoreSource(h.History, subtask, parallelism, hist); err != nil {
		return fmt.Errorf("hybrid history restore: %w", err)
	}
	if err := h.restoreLive(subtask, parallelism, live, anyLive); err != nil {
		return fmt.Errorf("hybrid live restore: %w", err)
	}
	if allLive {
		h.phase = hybridLive
	} else {
		h.phase = hybridHistory
	}
	h.maxTs, h.haveTs = maxTs, haveTs
	return nil
}

// restoreLive restores the live half of a multi-blob recovery. While no old
// subtask had entered the live phase (started=false), its snapshots hold
// only pre-start bookkeeping and the live source starts fresh at the new
// parallelism; once *any* subtask had crossed, its live state may hold
// consumed positions and must genuinely restore or fail.
func (h *HybridSource) restoreLive(subtask, parallelism int, blobs map[int][]byte, started bool) error {
	if m, ok := h.Live.(MultiRestorable); ok {
		return m.RestoreAll(subtask, parallelism, blobs)
	}
	if blob, ok := blobs[subtask]; ok && len(blobs) == parallelism {
		return h.Live.Restore(blob)
	}
	if !started {
		return nil // fresh live source: nothing was consumed before the crash
	}
	return fmt.Errorf("live source state of %d subtasks does not redistribute to parallelism %d", len(blobs), parallelism)
}

// OpenSource implements SourceOpener by delegation to both phases.
func (h *HybridSource) OpenSource(ctx *OpContext) {
	if o, ok := h.History.(SourceOpener); ok {
		o.OpenSource(ctx)
	}
	if o, ok := h.Live.(SourceOpener); ok {
		o.OpenSource(ctx)
	}
}

// SourceLocalOnly implements LocalOnlySource: a hybrid is local-only when
// either phase is (its live half usually is a channel).
func (h *HybridSource) SourceLocalOnly() bool {
	if lo, ok := h.History.(LocalOnlySource); ok && lo.SourceLocalOnly() {
		return true
	}
	lo, ok := h.Live.(LocalOnlySource)
	return ok && lo.SourceLocalOnly()
}

// Err implements Failable by checking both phases' sources.
func (h *HybridSource) Err() error {
	if err := sourceErr(h.History); err != nil {
		return err
	}
	return sourceErr(h.Live)
}
