package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseBasicCommands(t *testing.T) {
	cases := map[string]CmdKind{
		"":                      CmdNop,
		"   ":                   CmdNop,
		"quit":                  CmdQuit,
		"exit":                  CmdQuit,
		"help":                  CmdHelp,
		"list":                  CmdList,
		"stats":                 CmdStats,
		"show":                  CmdShow,
		"show 10":               CmdShow,
		"remove 3":              CmdRemove,
		"ADD tumbling 1000 sum": CmdAdd, // case-insensitive
		"topics":                CmdTopics,
		"persist sensors":       CmdPersist,
		"persist off":           CmdPersist,
		"from topic sensors":    CmdFromTopic,
	}
	for line, want := range cases {
		cmd, err := Parse(line)
		if err != nil {
			t.Errorf("Parse(%q): %v", line, err)
			continue
		}
		if cmd.Kind != want {
			t.Errorf("Parse(%q).Kind = %d, want %d", line, cmd.Kind, want)
		}
	}
	if cmd, _ := Parse("persist sensors"); cmd.Name != "sensors" {
		t.Errorf("persist name = %q, want sensors", cmd.Name)
	}
	if cmd, _ := Parse("from topic readings"); cmd.Name != "readings" {
		t.Errorf("from topic name = %q, want readings", cmd.Name)
	}
}

func TestParseAddVariants(t *testing.T) {
	for _, line := range []string{
		"add tumbling 1000 sum",
		"add sliding 5000 1000 avg",
		"add session 2000 count",
		"add count 100 max",
		"add timeorcount 1000 50 min",
	} {
		cmd, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if cmd.Kind != CmdAdd || cmd.Fn == nil || cmd.Spec.Factory == nil {
			t.Fatalf("Parse(%q) incomplete: %+v", line, cmd)
		}
		if cmd.Desc == "" {
			t.Fatalf("Parse(%q) missing description", line)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, line := range []string{
		"frobnicate",
		"add",
		"add tumbling sum",
		"add tumbling 0 sum",
		"add tumbling 1000 bogusfn",
		"add sliding 100 200 sum", // slide > size
		"add mystery 5 sum",
		"remove",
		"remove xyz",
		"show -3",
		"show zero",
		"topics extra",
		"persist",
		"persist a b",
		"from",
		"from topic",
		"from file x",
	} {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

func TestReplEvalLifecycle(t *testing.T) {
	r := newRepl(1000)
	// No pump: drive the engine manually through Eval + direct feeds.
	out, quit := r.Eval("add tumbling 100 sum")
	if quit || !strings.Contains(out, "query 0 registered") {
		t.Fatalf("add: %q", out)
	}
	out, _ = r.Eval("list")
	if !strings.Contains(out, "tumbling(100) sum") {
		t.Fatalf("list: %q", out)
	}
	// Feed events directly (the pump is not running in tests).
	for ts := int64(0); ts < 500; ts++ {
		r.mu.Lock()
		r.eng.OnWatermark(ts)
		r.eng.OnElement(ts, 1)
		r.mu.Unlock()
	}
	out, _ = r.Eval("stats")
	if !strings.Contains(out, "queries=1") {
		t.Fatalf("stats: %q", out)
	}
	out, _ = r.Eval("show 3")
	if !strings.Contains(out, "q0 window") {
		t.Fatalf("show: %q", out)
	}
	out, _ = r.Eval("remove 0")
	if !strings.Contains(out, "removed") {
		t.Fatalf("remove: %q", out)
	}
	out, _ = r.Eval("remove 0")
	if !strings.Contains(out, "error") {
		t.Fatalf("double remove should error: %q", out)
	}
	out, _ = r.Eval("list")
	if !strings.Contains(out, "no queries") {
		t.Fatalf("list after remove: %q", out)
	}
	out, quit = r.Eval("quit")
	if !quit || out != "bye" {
		t.Fatalf("quit: %q %v", out, quit)
	}
}

func TestReplEvalTopicLifecycle(t *testing.T) {
	r := newRepl(1000)
	r.storeDir = t.TempDir()

	out, _ := r.Eval("persist off")
	if !strings.Contains(out, "not active") {
		t.Fatalf("persist off while inactive: %q", out)
	}
	out, _ = r.Eval("persist sensors")
	if !strings.Contains(out, `persisting live stream to "sensors"`) {
		t.Fatalf("persist: %q", out)
	}
	// Feed elements through the same path the pump uses (pump is not
	// running in tests): engine plus the active persist topic.
	for ts := int64(0); ts < 500; ts++ {
		r.mu.Lock()
		data, err := json.Marshal(topicEvent{Ts: ts, V: 1})
		if err == nil {
			_, err = r.persist.Append(ts, 0, data)
		}
		r.mu.Unlock()
		if err != nil {
			t.Fatalf("append ts=%d: %v", ts, err)
		}
	}
	out, _ = r.Eval("persist off")
	if !strings.Contains(out, "500 records stored") {
		t.Fatalf("persist off: %q", out)
	}
	out, _ = r.Eval("topics")
	if !strings.Contains(out, "sensors: 500 records") {
		t.Fatalf("topics: %q", out)
	}

	out, _ = r.Eval("from topic sensors")
	if !strings.Contains(out, "error: no queries registered") {
		t.Fatalf("from topic without queries: %q", out)
	}
	if out, _ = r.Eval("add tumbling 100 sum"); !strings.Contains(out, "registered") {
		t.Fatalf("add: %q", out)
	}
	out, _ = r.Eval("from topic sensors")
	// 500 one-valued events at ts 0..499 through tumbling(100) sum: five
	// complete windows, each summing to 100.
	if !strings.Contains(out, `replayed 500 records from "sensors" (ts 0..499) through 1 queries: 5 windows`) {
		t.Fatalf("from topic: %q", out)
	}
	if !strings.Contains(out, "value=100.000 count=100") {
		t.Fatalf("from topic windows: %q", out)
	}
	out, _ = r.Eval("from topic nosuch")
	if !strings.Contains(out, "is empty") && !strings.Contains(out, "error") {
		t.Fatalf("from missing topic: %q", out)
	}
	if out, quit := r.Eval("quit"); !quit || out != "bye" {
		t.Fatalf("quit: %q", out)
	}
}

func TestReplEvalBadInput(t *testing.T) {
	r := newRepl(1000)
	out, quit := r.Eval("nonsense command")
	if quit || !strings.Contains(out, "error") {
		t.Fatalf("bad input: %q", out)
	}
	out, _ = r.Eval("show")
	if !strings.Contains(out, "no results yet") {
		t.Fatalf("show with no results: %q", out)
	}
	out, _ = r.Eval("help")
	if !strings.Contains(out, "add tumbling") {
		t.Fatalf("help: %q", out)
	}
}
