// Customer retention — the first STREAMLINE application. User activity
// events are sessionized with Cutty session windows (the canonical
// non-periodic window the paper highlights); per-session engagement feeds a
// simple churn signal: users whose session engagement declines are the
// at-risk cohort.
//
//	go run ./examples/retention
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/workloads"
	"repro/streamline"
)

// activity is one user interaction with an engagement score.
type activity struct {
	User       uint64
	Engagement float64
}

func main() {
	const users = 40
	gen := workloads.Sessions{
		Seed: 11, Users: users, PerSec: 1000,
		MeanSession: 8, GapMs: 20_000, SessionGapMs: 800,
	}

	env := streamline.New(streamline.WithParallelism(2))
	events := streamline.From(env, "activity", streamline.Generator(40_000,
		func(sub, par int, i int64) streamline.Keyed[activity] {
			e := gen.At(i)
			return streamline.Keyed[activity]{Ts: e.Ts, Value: activity{User: e.Key, Engagement: e.Value}}
		}), streamline.WithSourceParallelism(1))
	perUser := streamline.KeyBy(events, "user", func(a activity) uint64 { return a.User })
	engagement := streamline.Map(perUser, "engagement", func(a activity) float64 { return a.Engagement })
	sessions := streamline.Collect(
		streamline.WindowAggregate(engagement, "sessions",
			// Mean engagement and event count per session (gap 5s):
			// both queries share one slice store per key.
			streamline.Query(streamline.Session(5000), streamline.Avg()),
			streamline.Query(streamline.Session(5000), streamline.Count()),
		), "out")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Churn signal: compare each user's first and last session engagement.
	type sess struct {
		start int64
		avg   float64
	}
	byUser := map[uint64][]sess{}
	for _, r := range sessions.Records() {
		if r.Value.QueryID != 0 { // engagement query
			continue
		}
		byUser[r.Key] = append(byUser[r.Key], sess{start: r.Value.Start, avg: r.Value.Value})
	}
	var atRisk, healthy []uint64
	for user, ss := range byUser {
		sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
		if len(ss) < 2 {
			continue
		}
		if ss[len(ss)-1].avg < ss[0].avg*0.7 {
			atRisk = append(atRisk, user)
		} else {
			healthy = append(healthy, user)
		}
	}
	sort.Slice(atRisk, func(i, j int) bool { return atRisk[i] < atRisk[j] })
	total := 0
	for _, ss := range byUser {
		total += len(ss)
	}
	fmt.Printf("users analysed: %d, sessions: %d\n", len(byUser), total)
	fmt.Printf("at-risk (declining engagement): %d users %v...\n", len(atRisk), head(atRisk, 8))
	fmt.Printf("healthy: %d users\n", len(healthy))
}

func head(xs []uint64, k int) []uint64 {
	if len(xs) > k {
		return xs[:k]
	}
	return xs
}
