package dataflow

// This file holds the scratch structures of the vectorized keyed hot path:
// a small open-addressing table that groups one contiguous data run by key
// (keyTable), reused across batches so the steady state allocates nothing.
// Keyed operators use it to touch their per-key state once per distinct key
// per run instead of once per record; the exchange stager uses the same
// run-at-a-time discipline for hash routing (see outputs.dataBatch).

// keyTable maps the record keys of one data run to dense indices 0..n-1 in
// first-touch order. It is an open-addressing, power-of-two table with
// epoch-stamped slots: reset is O(1) (bump the epoch), lookups are a cheap
// mixed hash plus linear probing, and the table only grows — across batches
// it settles at the run's distinct-key count and stops allocating.
//
// Record keys are often small sequential integers (not pre-hashed), so slot
// placement runs them through a 64-bit finalizer mix rather than using the
// low bits directly.
type keyTable struct {
	keys  []uint64 // slot -> key (valid when stamp matches)
	dense []int32  // slot -> dense index (valid when stamp matches)
	stamp []uint32 // slot -> epoch of last write
	epoch uint32
	mask  uint64
	order []uint64 // dense index -> key, first-touch order
}

const keyTableMinSlots = 128

// mix64 is the splitmix64 finalizer — a full-avalanche scramble so
// sequential keys spread across slots.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *keyTable) init(slots int) {
	t.keys = make([]uint64, slots)
	t.dense = make([]int32, slots)
	t.stamp = make([]uint32, slots)
	t.mask = uint64(slots - 1)
	t.epoch = 1
}

// reset starts a new run: previous entries expire by epoch, nothing is
// cleared.
func (t *keyTable) reset() {
	if t.stamp == nil {
		t.init(keyTableMinSlots)
	}
	t.order = t.order[:0]
	t.epoch++
	if t.epoch == 0 { // uint32 wrap: stale stamps could alias epoch 0
		clear(t.stamp)
		t.epoch = 1
	}
}

// index returns key's dense index for the current run, assigning the next
// one (and recording the key in first-touch order) on first sight.
func (t *keyTable) index(key uint64) (idx int32, fresh bool) {
	if len(t.order)*2 >= len(t.keys) {
		t.grow()
	}
	h := mix64(key) & t.mask
	for {
		if t.stamp[h] != t.epoch {
			t.stamp[h] = t.epoch
			t.keys[h] = key
			idx = int32(len(t.order))
			t.dense[h] = idx
			t.order = append(t.order, key)
			return idx, true
		}
		if t.keys[h] == key {
			return t.dense[h], false
		}
		h = (h + 1) & t.mask
	}
}

// distinct returns the run's distinct keys in first-touch order; the slice
// is valid until the next reset.
func (t *keyTable) distinct() []uint64 { return t.order }

// grow doubles the table, reinserting the current run's keys. Load stays
// below 1/2, keeping probe chains short.
func (t *keyTable) grow() {
	order := t.order
	t.init(2 * len(t.keys))
	t.order = order
	for i, key := range order {
		h := mix64(key) & t.mask
		for t.stamp[h] == t.epoch {
			h = (h + 1) & t.mask
		}
		t.stamp[h] = t.epoch
		t.keys[h] = key
		t.dense[h] = int32(i)
	}
}
