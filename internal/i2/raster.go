package i2

import "strings"

// This file provides the rendering model under which I2's aggregation is
// *proven correct*: a two-color, 1-px polyline chart rasterized with
// Bresenham lines. The theorem (after Jugel et al.):
//
//	raster(raw series) == raster(M4-reduced series)
//
// for any viewport, because (a) inter-column segments connect last(c) to
// first(c') and those are actual raw points, so the connecting segments are
// identical; and (b) within a column the continuous polyline covers exactly
// the pixel rows between the column's min and max, which the reduced
// polyline first→min→max→last (in time order) also covers. The property
// test in raster_test.go checks the equality on random series; the E7 bench
// reports the transfer reduction at guaranteed-zero pixel error.

// Bitmap is a w×h two-color pixel matrix (row 0 at the value minimum).
type Bitmap struct {
	W, H int
	bits []bool
}

// NewBitmap returns a cleared bitmap.
func NewBitmap(w, h int) *Bitmap {
	return &Bitmap{W: w, H: h, bits: make([]bool, w*h)}
}

// Set marks pixel (x, y); out-of-range coordinates are clipped.
func (b *Bitmap) Set(x, y int) {
	if x < 0 || x >= b.W || y < 0 || y >= b.H {
		return
	}
	b.bits[y*b.W+x] = true
}

// Get reports pixel (x, y); out-of-range reads are false.
func (b *Bitmap) Get(x, y int) bool {
	if x < 0 || x >= b.W || y < 0 || y >= b.H {
		return false
	}
	return b.bits[y*b.W+x]
}

// Equal reports whether two bitmaps have identical dimensions and pixels.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.W != o.W || b.H != o.H {
		return false
	}
	for i := range b.bits {
		if b.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Diff counts differing pixels (the "pixel error" E7 reports).
func (b *Bitmap) Diff(o *Bitmap) int {
	if b.W != o.W || b.H != o.H {
		return b.W*b.H + o.W*o.H
	}
	n := 0
	for i := range b.bits {
		if b.bits[i] != o.bits[i] {
			n++
		}
	}
	return n
}

// OnPixels counts set pixels.
func (b *Bitmap) OnPixels() int {
	n := 0
	for _, v := range b.bits {
		if v {
			n++
		}
	}
	return n
}

// String renders the bitmap as ASCII art (top row = max value), for test
// failure diagnostics.
func (b *Bitmap) String() string {
	var sb strings.Builder
	for y := b.H - 1; y >= 0; y-- {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// line draws a Bresenham line between two pixels.
func (b *Bitmap) line(x0, y0, x1, y1 int) {
	dx := x1 - x0
	if dx < 0 {
		dx = -dx
	}
	dy := y1 - y0
	if dy < 0 {
		dy = -dy
	}
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx - dy
	for {
		b.Set(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 > -dy {
			err -= dy
			x0 += sx
		}
		if e2 < dx {
			err += dx
			y0 += sy
		}
	}
}

// Scale maps values to pixel coordinates for a fixed viewport and value
// range — shared by both renderings so the comparison is meaningful.
type Scale struct {
	VP         Viewport
	VMin, VMax float64
	H          int
}

// X maps a timestamp to its pixel column.
func (s Scale) X(ts int64) int { return s.VP.columnOf(ts) }

// Y maps a value to its pixel row.
func (s Scale) Y(v float64) int {
	if s.VMax <= s.VMin {
		return 0
	}
	y := int((v - s.VMin) / (s.VMax - s.VMin) * float64(s.H-1))
	if y < 0 {
		y = 0
	}
	if y >= s.H {
		y = s.H - 1
	}
	return y
}

// RenderLine rasterizes the polyline through points (which must be in
// timestamp order and inside the viewport) under the scale.
func RenderLine(points []Point, s Scale) *Bitmap {
	bm := NewBitmap(s.VP.Width, s.H)
	for i := range points {
		x, y := s.X(points[i].Ts), s.Y(points[i].V)
		if i == 0 {
			bm.Set(x, y)
			continue
		}
		px, py := s.X(points[i-1].Ts), s.Y(points[i-1].V)
		bm.line(px, py, x, y)
	}
	return bm
}

// ValueRange returns the min and max values of a series (0,1 when empty) —
// used to fix the render scale.
func ValueRange(points []Point) (float64, float64) {
	if len(points) == 0 {
		return 0, 1
	}
	lo, hi := points[0].V, points[0].V
	for _, p := range points[1:] {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	return lo, hi
}
