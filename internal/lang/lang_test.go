package lang

import (
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! Café #42 foo_bar")
	want := []string{"hello", "world", "café", "42", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ... !!! "); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestDetectorLanguages(t *testing.T) {
	d := DefaultDetector()
	langs := d.Languages()
	if len(langs) != 6 {
		t.Fatalf("got %d languages: %v", len(langs), langs)
	}
	for i := 1; i < len(langs); i++ {
		if langs[i-1] >= langs[i] {
			t.Fatalf("languages not sorted: %v", langs)
		}
	}
}

// Held-out accuracy: every sample sentence must be classified correctly.
func TestDetectionAccuracyOnHeldOut(t *testing.T) {
	d := DefaultDetector()
	total, correct := 0, 0
	for lang, sentences := range SampleSentences() {
		for _, s := range sentences {
			got, sim := d.Detect(s)
			total++
			if got == lang {
				correct++
			} else {
				t.Logf("misclassified %q as %s (sim %.3f), want %s", s, got, sim, lang)
			}
		}
	}
	if correct != total {
		t.Fatalf("accuracy %d/%d on held-out sentences", correct, total)
	}
}

func TestDetectEmpty(t *testing.T) {
	d := DefaultDetector()
	lang, sim := d.Detect("")
	if lang != "" || sim != 0 {
		t.Fatalf("empty detect = %q, %v", lang, sim)
	}
	if s := d.Scores("12345 67890"); s == nil {
		// digits still tokenize; scores may be all ~0 but present
		t.Logf("numeric-only text produced no scores (acceptable)")
	}
}

func TestScoresSortedDescending(t *testing.T) {
	d := DefaultDetector()
	scores := d.Scores("the cat sat on the mat and the dog was there too")
	if len(scores) != 6 {
		t.Fatalf("got %d scores", len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i-1].Sim < scores[i].Sim {
			t.Fatalf("scores not sorted: %v", scores)
		}
	}
	if scores[0].Lang != "en" {
		t.Fatalf("top language = %s", scores[0].Lang)
	}
}

func TestTrainCustomProfile(t *testing.T) {
	p := Train("xx", "zzz zzz zzz qqq qqq")
	d := NewDetector(p, Train("en", seedCorpora["en"]))
	got, _ := d.Detect("zzz qqq zzz")
	if got != "xx" {
		t.Fatalf("custom profile not matched, got %s", got)
	}
}

func TestSqrt(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{{0, 0}, {-3, 0}, {4, 2}, {9, 3}, {2, 1.41421356}} {
		got := sqrt(c.in)
		if diff := got - c.want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("sqrt(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSimilarityRange(t *testing.T) {
	d := DefaultDetector()
	for _, sentences := range SampleSentences() {
		for _, s := range sentences {
			for _, sc := range d.Scores(s) {
				if sc.Sim < -1e-9 || sc.Sim > 1+1e-9 {
					t.Fatalf("cosine similarity out of range: %v", sc)
				}
			}
		}
	}
}

func TestLongDocumentDetection(t *testing.T) {
	d := DefaultDetector()
	doc := strings.Repeat(SampleSentences()["de"][0]+" ", 20)
	got, sim := d.Detect(doc)
	if got != "de" || sim < 0.3 {
		t.Fatalf("long de doc: got %s (%.3f)", got, sim)
	}
}
