package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/state"
)

// Default control-plane liveness settings: both sides ping every interval
// and declare the peer dead after a silent timeout. The timeout is several
// intervals so one delayed ping never kills a healthy epoch.
const (
	DefaultHeartbeatInterval = 1 * time.Second
	DefaultHeartbeatTimeout  = 4 * time.Second
)

// Config describes one distributed run from the coordinator's side.
type Config struct {
	// Graph is the job to execute; the coordinator is participant 0 and
	// runs every pinned chain (sinks, live sources) itself.
	Graph    *dataflow.Graph
	Chaining bool
	// Workers is how many worker processes the run expects; the
	// coordinator waits for exactly that many hellos before planning.
	Workers int
	// Backend + Interval enable periodic checkpointing; the coordinator
	// persists assembled snapshots (workers never touch the backend).
	Backend  state.Backend
	Interval time.Duration
	// Restore, when set, starts every participant from this snapshot.
	Restore *state.Snapshot
	// Pipeline/Args are forwarded to generic workers so they can rebuild
	// the graph from their pipeline registry.
	Pipeline string
	Args     []string
	// Registry receives coordinator-side metrics; nil disables them.
	Registry *metrics.Registry
	// ListenAddr is the control-plane listen address ("" = ephemeral
	// loopback port; read it back via Addr).
	ListenAddr string
	// Listener, when non-nil, is used as the control listener instead of
	// binding ListenAddr — the hook fault-injection tests use to interpose
	// a chaos wrapper between workers and the coordinator.
	Listener net.Listener
	// HeartbeatInterval/HeartbeatTimeout override the control-plane
	// liveness defaults (zero: DefaultHeartbeat*).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
}

// heartbeat resolves the liveness settings, defaulting the timeout to four
// intervals when only the interval is set.
func (c Config) heartbeat() (interval, timeout time.Duration) {
	interval, timeout = c.HeartbeatInterval, c.HeartbeatTimeout
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	if timeout <= 0 {
		timeout = 4 * interval
		if c.HeartbeatInterval <= 0 {
			timeout = DefaultHeartbeatTimeout
		}
	}
	return interval, timeout
}

// listen binds the control listener: the injected one, the configured
// address, or an ephemeral loopback port.
func (c Config) listen() (net.Listener, error) {
	if c.Listener != nil {
		return c.Listener, nil
	}
	addr := c.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coordinator listen: %w", err)
	}
	return ln, nil
}

// Coordinator owns one distributed run: it distributes the plan, injects
// checkpoint barriers, assembles global snapshots from per-subtask acks,
// and treats any lost worker connection — or one silent past the heartbeat
// timeout — as a job failure (clean abort; the persisted snapshots make the
// job restartable at any worker count, and Supervisor automates exactly
// that restart).
type Coordinator struct {
	cfg       Config
	ln        net.Listener
	completed atomic.Int64
}

// NewCoordinator binds the control listener so workers can dial before Run
// is entered (Addr is valid immediately).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	ln, err := cfg.listen()
	if err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the control-plane address workers dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// CompletedCheckpoints reports how many snapshots this run persisted.
func (c *Coordinator) CompletedCheckpoints() int64 { return c.completed.Load() }

// Run executes the distributed job to completion. It blocks until the local
// share and every worker finished (returning nil), or until any participant
// fails — lost control connection included — in which case everything is
// cancelled and the first error returns.
func (c *Coordinator) Run(ctx context.Context) error {
	RegisterTypes()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Unblock Accept when the caller cancels during the gather phase.
	go func() { <-ctx.Done(); c.ln.Close() }()
	defer c.ln.Close()

	_, hbTimeout := c.cfg.heartbeat()
	// Gather exactly W workers, in connection order; the order fixes the
	// participant indices 1..W.
	workers := make([]*wconn, 0, c.cfg.Workers)
	defer closeWorkers(workers)
	for i := 1; i <= c.cfg.Workers; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("coordinator accept: %w", err)
		}
		w, err := newWorkerConn(i, conn, hbTimeout)
		if err != nil {
			conn.Close()
			return fmt.Errorf("coordinator: bad hello from connection %d: %v", i, err)
		}
		workers = append(workers, w)
	}

	ep := &epoch{cfg: c.cfg, workers: workers, restore: c.cfg.Restore, completed: &c.completed}
	return ep.run(ctx)
}

// wconn is the coordinator's handle on one worker's control connection.
type wconn struct {
	i        int
	conn     net.Conn
	dec      *gob.Decoder
	bw       *bufio.Writer
	enc      *gob.Encoder
	mu       sync.Mutex
	wto      time.Duration // write deadline per control send
	dataAddr string
	// done is set by the epoch's event loop and read by the heartbeat
	// pinger, hence atomic.
	done atomic.Bool
}

// newWorkerConn wraps a freshly accepted control connection and consumes
// its hello, which must arrive within the heartbeat timeout — a connection
// that dials and goes silent must not wedge the gather phase.
func newWorkerConn(i int, conn net.Conn, hbTimeout time.Duration) (*wconn, error) {
	w := &wconn{i: i, conn: conn, dec: gob.NewDecoder(conn), bw: bufio.NewWriter(conn), wto: hbTimeout}
	w.enc = gob.NewEncoder(w.bw)
	conn.SetReadDeadline(time.Now().Add(hbTimeout))
	var hello ctrlMsg
	if err := w.dec.Decode(&hello); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Time{})
	if hello.Kind != ctrlHello {
		return nil, fmt.Errorf("expected hello, got message kind %d", hello.Kind)
	}
	w.dataAddr = hello.Addr
	return w, nil
}

// send writes one control message under a write deadline: a wedged peer
// errors out instead of blocking the abort or barrier path indefinitely,
// and the error surfaces as a peer failure at the caller.
func (w *wconn) send(msg ctrlMsg) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.wto > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.wto))
	}
	if err := w.enc.Encode(msg); err != nil {
		return err
	}
	return w.bw.Flush()
}

func closeWorkers(ws []*wconn) {
	for _, w := range ws {
		w.conn.Close()
	}
}

// event is one occurrence on a worker control connection.
type event struct {
	i   int
	msg ctrlMsg
	err error
}

// assembler accumulates per-subtask checkpoint acks into at most one
// in-flight global snapshot. Stale acks — from a checkpoint abandoned on a
// previous epoch, or still draining the control stream after a restart —
// and duplicates are dropped; the snapshot completes when every subtask of
// the whole job has acked.
type assembler struct {
	need      int
	numGroups int
	pending   *state.Snapshot
	got       map[state.SubtaskKey]bool
}

// inFlight reports whether a checkpoint is still assembling.
func (a *assembler) inFlight() bool { return a.pending != nil }

// begin opens checkpoint id; offers for any other id are dropped.
func (a *assembler) begin(id int64) {
	a.pending = state.NewSnapshot(id)
	a.pending.NumKeyGroups = a.numGroups
	a.got = make(map[state.SubtaskKey]bool, a.need)
}

// offer merges one ack. It returns the completed snapshot once the last
// subtask acks, nil otherwise.
func (a *assembler) offer(ack dataflow.Ack) *state.Snapshot {
	if a.pending == nil || ack.Ckpt != a.pending.CheckpointID {
		return nil // stale ack from an abandoned checkpoint
	}
	if a.got[ack.Key] {
		return nil
	}
	a.got[ack.Key] = true
	a.pending.Put(ack.Key, ack.Blob)
	for kg, blob := range ack.Groups {
		a.pending.PutGroup(state.GroupKey{OperatorID: ack.Key.OperatorID, KeyGroup: kg}, blob)
	}
	if len(a.got) == a.need {
		s := a.pending
		a.pending, a.got = nil, nil
		return s
	}
	return nil
}

// epoch is one execution attempt over an established set of worker control
// connections: plan distribution, readiness barrier, checkpoint loop, and
// teardown. A plain Coordinator runs exactly one; a Supervisor runs a fresh
// epoch (with a fresh restore snapshot and possibly different workers)
// after every failure.
type epoch struct {
	cfg       Config
	workers   []*wconn
	restore   *state.Snapshot
	completed *atomic.Int64
	// supervised rides in the plan: workers report failures as rejoinable.
	// rejoinOnAbort rides in the abort stop: whether another epoch follows.
	supervised    bool
	rejoinOnAbort bool
	// onStarted fires once the epoch's producers are unleashed (readiness
	// barrier passed) — the "restored" instant of the MTTR measurement.
	onStarted func(time.Time)
	// failedAt is when the epoch first observed its failure.
	failedAt time.Time
}

// run executes the epoch to completion or first failure. The worker
// connections stay open on return (the caller owns their lifecycle); on
// the abort path workers are told to stop, with the rejoin flag telling
// them whether a supervisor will run another epoch.
func (ep *epoch) run(ctx context.Context) error {
	g := ep.cfg.Graph
	W := len(ep.workers)
	reg := ep.cfg.Registry
	hbInterval, hbTimeout := ep.cfg.heartbeat()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The coordinator's own data plane (participant 0).
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("coordinator data listen: %w", err)
	}
	mesh := NewMesh(0, dataLn, g, reg)
	defer mesh.Close()

	addrs := map[int]string{0: mesh.Addr()}
	for _, w := range ep.workers {
		addrs[w.i] = w.dataAddr
	}
	spec := core.SpecOf(g, ep.cfg.Chaining)
	fp := spec.Fingerprint()
	placement := dataflow.ComputePlacement(g, ep.cfg.Chaining, W)
	for _, w := range ep.workers {
		plan := &planMsg{
			Self:              w.i,
			Workers:           W,
			Spec:              spec,
			Fingerprint:       fp,
			Placement:         placement,
			DataAddrs:         addrs,
			Restore:           ep.restore,
			Pipeline:          ep.cfg.Pipeline,
			Args:              ep.cfg.Args,
			HeartbeatInterval: hbInterval,
			HeartbeatTimeout:  hbTimeout,
			Supervised:        ep.supervised,
		}
		if err := w.send(ctrlMsg{Kind: ctrlPlan, Plan: plan}); err != nil {
			return fmt.Errorf("coordinator: send plan to worker %d: %w", w.i, err)
		}
	}

	// One reader per worker funnels control messages into the main loop.
	// Every Decode sits under a read deadline refreshed by any traffic —
	// heartbeats included — so a hung-but-open connection surfaces as a
	// timeout instead of stalling the job forever.
	events := make(chan event, 16)
	for _, w := range ep.workers {
		go func(w *wconn) {
			for {
				w.conn.SetReadDeadline(time.Now().Add(hbTimeout))
				var msg ctrlMsg
				if err := w.dec.Decode(&msg); err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						err = fmt.Errorf("heartbeat timeout (silent for %v)", hbTimeout)
					}
					select {
					case events <- event{i: w.i, err: err}:
					case <-ctx.Done():
					}
					return
				}
				if msg.Kind == ctrlPing {
					continue
				}
				select {
				case events <- event{i: w.i, msg: msg}:
				case <-ctx.Done():
					return
				}
				if msg.Kind == ctrlDone {
					return
				}
			}
		}(w)
	}
	// Heartbeats to the workers: a send error needs no handling here — the
	// worker's reader deadline expires on its own, and this coordinator's
	// reader sees the broken connection first anyway.
	go func() {
		t := time.NewTicker(hbInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				for _, w := range ep.workers {
					if !w.done.Load() {
						_ = w.send(ctrlMsg{Kind: ctrlPing})
					}
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// The coordinator's local share of the job.
	triggers := make(chan int64, 16)
	acks := make(chan dataflow.Ack, 256)
	running := make(chan struct{})
	opts := []dataflow.JobOption{dataflow.WithChaining(ep.cfg.Chaining)}
	if reg != nil {
		opts = append(opts, dataflow.WithMetrics(reg))
	}
	if ep.restore != nil {
		opts = append(opts, dataflow.WithRestore(ep.restore))
	}
	jb := dataflow.NewJob(g, opts...)
	jobDone := make(chan error, 1)
	go func() {
		err := jb.RunParticipant(ctx, &dataflow.Participation{
			Self:      0,
			Placement: placement,
			Transport: mesh,
			Triggers:  triggers,
			Acks:      acks,
			OnRunning: func() { close(running) },
		})
		if err == nil {
			// Flush remote Ends before the run counts as locally done.
			mesh.DrainOutbound()
		}
		jobDone <- err
	}()

	// Readiness barrier: every worker registered its inbound channels and
	// so did the local participant; only then may producers dial and ship.
	// A participant may legitimately finish during this phase (it was
	// assigned no subtasks, or only instantly-completing ones) — ready
	// always precedes done on an ordered control stream, so done here just
	// counts toward completion.
	readyLeft := W
	localRunning := false
	localDone := false
	doneWorkers := 0
	var failure error
	fail := func(err error) {
		if failure == nil {
			failure = err
			ep.failedAt = time.Now()
		}
	}
	workerEvent := func(ev event) {
		switch {
		case ev.err != nil:
			if ep.workers[ev.i-1].done.Load() {
				return // post-done EOF is the worker exiting; benign
			}
			fail(fmt.Errorf("worker %d control connection lost: %w", ev.i, ev.err))
		case ev.msg.Kind == ctrlReady:
			readyLeft--
		case ev.msg.Kind == ctrlDone:
			ep.workers[ev.i-1].done.Store(true)
			doneWorkers++
			if ev.msg.Err != "" {
				fail(fmt.Errorf("worker %d: %s", ev.i, ev.msg.Err))
			}
		}
	}
	for (readyLeft > 0 || !localRunning) && failure == nil {
		select {
		case <-running:
			localRunning = true
			running = nil
		case ev := <-events:
			workerEvent(ev)
		case err := <-jobDone:
			localRunning = true
			localDone = true
			jobDone = nil
			if err != nil {
				fail(fmt.Errorf("local participant failed during startup: %w", err))
			}
		case <-ctx.Done():
			fail(ctx.Err())
		}
	}
	if failure == nil {
		mesh.Start()
		for _, w := range ep.workers {
			if w.done.Load() {
				continue
			}
			if err := w.send(ctrlMsg{Kind: ctrlStart}); err != nil {
				fail(fmt.Errorf("coordinator: start worker %d: %w", w.i, err))
				break
			}
		}
	}
	if failure == nil && ep.onStarted != nil {
		ep.onStarted(time.Now())
	}

	// Checkpoint machinery: at most one checkpoint in flight, assembled
	// from the acks of every subtask in the whole job.
	asm := &assembler{need: g.TotalSubtasks(), numGroups: g.KeyGroups()}
	var nextID int64 = 1
	if ep.restore != nil {
		nextID = ep.restore.CheckpointID + 1
	}
	var tick <-chan time.Time
	if ep.cfg.Backend != nil && ep.cfg.Interval > 0 && failure == nil {
		t := time.NewTicker(ep.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	merge := func(a dataflow.Ack) {
		snap := asm.offer(a)
		if snap == nil {
			return
		}
		if err := ep.cfg.Backend.Persist(snap); err != nil {
			fail(fmt.Errorf("persist checkpoint %d: %w", snap.CheckpointID, err))
			return
		}
		ep.completed.Add(1)
		if reg != nil {
			reg.Counter("job.checkpoints").Inc()
		}
	}

	meshFailed := mesh.Failed()
	for failure == nil && !(localDone && doneWorkers == W) {
		select {
		case <-tick:
			if asm.inFlight() {
				continue // previous checkpoint still assembling
			}
			id := nextID
			nextID++
			asm.begin(id)
			select {
			case triggers <- id:
			case <-ctx.Done():
				fail(ctx.Err())
			}
			for _, w := range ep.workers {
				if !w.done.Load() {
					// A send error will surface as a reader event.
					_ = w.send(ctrlMsg{Kind: ctrlTrigger, Ckpt: id})
				}
			}
		case a := <-acks:
			merge(a)
		case ev := <-events:
			if ev.err == nil && ev.msg.Kind == ctrlAck && ev.msg.Ack != nil {
				merge(*ev.msg.Ack)
				continue
			}
			workerEvent(ev)
		case err := <-jobDone:
			localDone = true
			jobDone = nil
			if err != nil {
				fail(err)
			}
		case <-meshFailed:
			meshFailed = nil // closed channel; fire once
			fail(mesh.Err())
		case <-ctx.Done():
			fail(ctx.Err())
		}
	}

	if failure != nil {
		cancel()
		for _, w := range ep.workers {
			if !w.done.Load() {
				_ = w.send(ctrlMsg{Kind: ctrlStop, Err: failure.Error(), Rejoin: ep.rejoinOnAbort})
			}
		}
		if !localDone {
			<-jobDone
		}
		return failure
	}
	// Global success: confirm completion (workers are already exiting on
	// their own; the stop is informational and errors are irrelevant).
	for _, w := range ep.workers {
		_ = w.send(ctrlMsg{Kind: ctrlStop})
	}
	return nil
}
