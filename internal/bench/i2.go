package bench

import (
	"fmt"
	"time"

	"repro/internal/i2"
	"repro/internal/workloads"
)

// E6DataRate measures transferred tuples vs input rate for a fixed viewport
// — the paper's "reduces the amount of data in a data-rate independent
// manner".
func E6DataRate(quick bool) *Table {
	rates := []int64{1_000, 10_000, 100_000, 1_000_000}
	if quick {
		rates = []int64{1_000, 10_000, 100_000}
	}
	const windowSec = 10
	vp := i2.Viewport{From: 0, To: windowSec * 1000, Width: 600}
	t := &Table{
		ID:     "E6",
		Title:  "I2 transfer volume vs input rate (10s range, 600px viewport)",
		Claim:  "\"reduces the amount of data in a data-rate independent manner\"",
		Header: []string{"rate", "raw tuples", "m4 tuples", "reduction", "bound 4w"},
	}
	for _, rate := range rates {
		gen := workloads.TimeSeries{Seed: 5, PerSec: rate}
		n := rate * windowSec
		pts := make([]i2.Point, n)
		for i := int64(0); i < n; i++ {
			e := gen.At(i)
			pts[i] = i2.Point{Ts: e.Ts, V: e.Value}
		}
		cols := i2.AggregateM4(pts, vp)
		size := i2.TransferSize(cols)
		t.Add(
			fmtRate(float64(rate)),
			fmtCount(float64(n)),
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0fx", float64(n)/float64(size)),
			fmt.Sprintf("%d", 4*vp.Width),
		)
	}
	t.Note("m4 tuples stay bounded by 4*width while raw grows linearly with rate")
	return t
}

// E7M4Cost verifies pixel-exactness and reports aggregation throughput and
// reduction per viewport width.
func E7M4Cost(quick bool) *Table {
	n := int64(500_000)
	if quick {
		n = 100_000
	}
	gen := workloads.TimeSeries{Seed: 9, PerSec: 50_000}
	pts := make([]i2.Point, n)
	for i := int64(0); i < n; i++ {
		e := gen.At(i)
		pts[i] = i2.Point{Ts: e.Ts, V: e.Value}
	}
	span := pts[len(pts)-1].Ts + 1
	t := &Table{
		ID:     "E7",
		Title:  "I2 correctness and cost per viewport width",
		Claim:  "\"proven to be correct and minimal in terms of transferred data\"",
		Header: []string{"width", "m4 tuples", "reduction", "pixel errors", "agg throughput"},
	}
	for _, width := range []int{100, 600, 1920} {
		vp := i2.Viewport{From: 0, To: span, Width: width}
		start := time.Now()
		cols := i2.AggregateM4(pts, vp)
		elapsed := time.Since(start)
		size := i2.TransferSize(cols)

		lo, hi := i2.ValueRange(pts)
		sc := i2.Scale{VP: vp, VMin: lo, VMax: hi, H: 240}
		raw := i2.RenderLine(pts, sc)
		red := i2.RenderLine(i2.Points(cols), sc)
		t.Add(
			fmt.Sprintf("%dpx", width),
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0fx", float64(n)/float64(size)),
			fmt.Sprintf("%d", raw.Diff(red)),
			fmtRate(float64(n)/elapsed.Seconds()),
		)
	}
	t.Note("pixel errors must be 0 at every width: the correctness theorem")
	return t
}
