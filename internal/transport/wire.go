// Package transport carries STREAMLINE's distributed runtime: the TCP
// exchange transport (Mesh) that ships batched records between worker
// processes, the control protocol between a coordinator and its workers,
// and the coordinator itself, which owns plan distribution, checkpoint
// barrier injection, snapshot assembly and failure detection.
//
// The execution model is SPMD (see internal/dataflow's participant model):
// operator logic is closures and never crosses the wire. Every process
// rebuilds the identical graph from code; the wire carries only the
// structural plan spec (with a fingerprint both sides verify), the
// placement map, peer addresses, and — on recovery — the restore snapshot.
//
// Data-plane framing is gob: each exchange channel gets its own TCP
// connection carrying a stream of frames, each frame one pooled []Record
// batch prefixed by its channel reference. gob messages are themselves
// length-prefixed (a uvarint byte count precedes every message), and a
// persistent encoder/decoder pair per connection sends type information
// once, so steady-state framing overhead is a few bytes per batch. One
// connection per channel — not per process pair — is deliberate: a
// checkpoint barrier parks its channel until alignment completes, and
// multiplexing a parked channel with live ones over one connection would
// head-of-line-block the live channels' barriers behind the parked one,
// deadlocking alignment. A connection per single-writer single-reader
// channel keeps TCP's in-order delivery exactly congruent with the
// in-process channel ordering that ABS alignment relies on.
//
// # Failure model
//
// Either side of the control plane treats three things as a dead peer: the
// connection dropping (process exit, kill -9 — the OS resets the socket),
// a read deadline expiring with no traffic (hung-but-open TCP: the peer is
// blackholed or wedged; heartbeats ride every HeartbeatInterval so a
// healthy-but-quiet epoch never trips it), and a control write missing its
// deadline (a wedged peer must not block the abort or barrier path). The
// coordinator reacts by failing the epoch; a plain Coordinator run surfaces
// that as the job error, while a Supervisor (see supervisor.go) reloads the
// last completed checkpoint from the backend and runs a fresh epoch —
// respawning its workers in self-spawn mode, or re-placing the dead
// worker's subtasks onto whoever redials within the rejoin window
// (graceful degradation: restore works at any worker count). Restarts are
// spaced by capped exponential backoff with jitter and bounded by a restart
// budget; exhausting the budget surfaces the last epoch's error.
package transport

import (
	"encoding/gob"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/state"
)

// registerOnce guards the built-in registrations; gob.Register panics on
// re-registration only when names collide, but there is no reason to do the
// reflection walk more than once.
var registerOnce sync.Once

// RegisterTypes registers the payload types that cross process boundaries
// inside Record.Value. Gob encodes interface values by concrete-type name,
// so both ends of every connection must register the same set — workers and
// coordinators call this before touching a connection. Builtin payloads
// (int, string, float64, bool, ...) need no registration; the engine's own
// composite payloads (window results, join pairs) are covered here.
// Pipelines whose records carry custom struct payloads pass examples via
// extra (duplicate registrations of the same type are harmless).
func RegisterTypes(extra ...any) {
	registerOnce.Do(func() {
		gob.Register(dataflow.WindowResult{})
		gob.Register(dataflow.JoinedPair{})
	})
	for _, v := range extra {
		gob.Register(v)
	}
}

// frame is one data-plane message: a record batch on one exchange channel.
// The Ref identifies the channel to the receiving demultiplexer; within one
// connection every frame carries the same Ref (conn-per-channel), which
// after the first frame costs four small ints — gob omits zero fields. The
// batch itself bypasses gob's per-value interface encoding (see wireBatch).
type frame struct {
	Ref  dataflow.ChannelRef
	Recs wireBatch
}

// ctrlKind discriminates control-plane messages.
type ctrlKind uint8

const (
	// ctrlHello: worker -> coordinator, first message after dialing.
	// Carries the worker's data-plane listen address.
	ctrlHello ctrlKind = iota
	// ctrlPlan: coordinator -> worker. Carries the full plan (see planMsg).
	ctrlPlan
	// ctrlReady: worker -> coordinator. All local subtasks are launched and
	// every inbound channel is registered; safe to start producers.
	ctrlReady
	// ctrlStart: coordinator -> worker, after every participant is ready.
	// Opens the outbound dial gate.
	ctrlStart
	// ctrlTrigger: coordinator -> worker. Inject a checkpoint barrier
	// (Ckpt carries the checkpoint id) at the worker's local sources.
	ctrlTrigger
	// ctrlAck: worker -> coordinator. One local subtask's checkpoint
	// acknowledgement with its state blobs.
	ctrlAck
	// ctrlDone: worker -> coordinator. The worker's share of the job
	// finished (Err empty) or failed (Err set). Sent after the worker
	// flushed and closed its outbound connections.
	ctrlDone
	// ctrlStop: coordinator -> worker. Abort (Err set) or confirm global
	// completion (Err empty). Connection loss doubles as an implicit stop:
	// either side treats a dropped control connection as a failed peer.
	// Under supervision, Rejoin distinguishes "epoch aborted, redial for
	// the next one" from "job over, exit".
	ctrlStop
	// ctrlPing: both directions, periodic heartbeat. Carries nothing; its
	// arrival refreshes the receiver's read deadline. Appended after the
	// original kinds so the wire numbering of a mixed-version loopback
	// deployment stays stable.
	ctrlPing
)

// ctrlMsg is the single control-plane message shape; Kind selects which
// fields are meaningful. One flat struct keeps the gob stream to a single
// registered type.
type ctrlMsg struct {
	Kind   ctrlKind
	Addr   string        // ctrlHello: worker data-plane address
	Plan   *planMsg      // ctrlPlan
	Ckpt   int64         // ctrlTrigger
	Ack    *dataflow.Ack // ctrlAck
	Err    string        // ctrlDone / ctrlStop
	Rejoin bool          // ctrlStop: redial — the supervisor will run another epoch
}

// planMsg is everything a worker needs to execute its share of a job —
// except the operator logic, which it rebuilds from code (SPMD).
type planMsg struct {
	// Self is the receiving worker's participant index (1..Workers).
	Self    int
	Workers int
	// Spec is the coordinator's structural plan; Fingerprint is its
	// digest. The worker refuses to run if its locally built graph
	// fingerprints differently — mismatched binaries or arguments.
	Spec        core.PlanSpec
	Fingerprint string
	// Placement maps (node, subtask) -> participant; identical everywhere.
	Placement dataflow.Placement
	// DataAddrs maps participant index -> data-plane dial address.
	DataAddrs map[int]string
	// Restore, when non-nil, is the recovery snapshot each participant
	// restores its local subtasks from.
	Restore *state.Snapshot
	// Pipeline and Args name the registered pipeline generic workers
	// rebuild. Self-spawned workers rebuild implicitly and ignore them.
	Pipeline string
	Args     []string
	// HeartbeatInterval/HeartbeatTimeout configure the control-plane
	// liveness protocol for this epoch (zero: package defaults). Both
	// sides ping every interval and treat a control stream silent for the
	// timeout as a dead peer.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Supervised tells the worker a failed epoch is not the end of the
	// job: on failure it should report rejoinable errors so its driver
	// loop redials the coordinator for the next epoch.
	Supervised bool
}
