package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value counter should read 0, got %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if got := c.Reset(); got != 42 {
		t.Fatalf("Reset returned %d, want 42", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset Value = %d, want 0", got)
	}
}

func TestCounterNegativeDelta(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-3)
	if got := c.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGaugeSetAndMax(t *testing.T) {
	var g Gauge
	g.Set(5)
	if g.Value() != 5 {
		t.Fatalf("Value = %d, want 5", g.Value())
	}
	g.Max(3)
	if g.Value() != 5 {
		t.Fatalf("Max(3) lowered gauge to %d", g.Value())
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Fatalf("Max(9) -> %d, want 9", g.Value())
	}
}

func TestMeterCountsAndRate(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	m.Mark(5)
	if m.Count() != 15 {
		t.Fatalf("Count = %d, want 15", m.Count())
	}
	time.Sleep(2 * time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatalf("Rate should be positive, got %f", m.Rate())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram should read zeros")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 4, 8, 16} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Min() != 1 || h.Max() != 16 {
		t.Fatalf("Min/Max = %d/%d, want 1/16", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 31.0/5.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %f, want %f", got, want)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, min=%d", h.Min())
	}
}

// Quantile upper bound property: for any set of observations the reported
// q-quantile bound must be >= the exact quantile value and <= 2x it.
func TestHistogramQuantileBound(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]int64, len(raw))
		for i, r := range raw {
			v := int64(r) + 1
			vals[i] = v
			h.Observe(v)
		}
		// exact p50
		sorted := append([]int64(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
				sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
			}
		}
		exact := sorted[(len(sorted)-1)/2]
		bound := h.Quantile(0.5)
		return bound >= exact && bound <= 2*exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStopwatchRecords(t *testing.T) {
	var s Stopwatch
	s.Time(func() { time.Sleep(time.Millisecond) })
	if s.Hist().Count() != 1 {
		t.Fatalf("stopwatch did not record")
	}
	if s.Hist().Min() < int64(time.Millisecond)/2 {
		t.Fatalf("recorded duration implausibly small: %d", s.Hist().Min())
	}
	s.ObserveSince(time.Now().Add(-2 * time.Millisecond))
	if s.Hist().Count() != 2 {
		t.Fatalf("ObserveSince did not record")
	}
}

func TestRegistryCreatesAndReuses(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatalf("registry returned distinct counters for the same name")
	}
	if r.Gauge("g") != r.Gauge("g") || r.Meter("m") != r.Meter("m") || r.Histogram("h") != r.Histogram("h") {
		t.Fatalf("registry must memoize by name")
	}
}

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(7)
	r.Gauge("open").Set(3)
	r.Histogram("lat").Observe(100)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"events", "open", "lat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLeadingZeros(t *testing.T) {
	cases := map[uint64]int{0: 64, 1: 63, 2: 62, 3: 62, 1 << 63: 0}
	for in, want := range cases {
		if got := leadingZeros64(in); got != want {
			t.Errorf("leadingZeros64(%d) = %d, want %d", in, got, want)
		}
	}
}
