package window

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func elems(ts ...int64) []Element {
	out := make([]Element, len(ts))
	for i, t := range ts {
		out[i] = Element{Ts: t, V: float64(i + 1)}
	}
	return out
}

func TestTumblingBasic(t *testing.T) {
	// size 10: elements at 1,5,12,19,25 -> windows [0,10) {pos0,1}, [10,20) {2,3}, [20,30) {4}
	ext := Drive(Tumbling(10), Interleave(elems(1, 5, 12, 19, 25), math.MaxInt64))
	want := []Extent{
		{Start: 0, End: 10, FromPos: 0, ToPos: 2},
		{Start: 10, End: 20, FromPos: 2, ToPos: 4},
		{Start: 20, End: 30, FromPos: 4, ToPos: 5},
	}
	if len(ext) != len(want) {
		t.Fatalf("got %d windows %v, want %d", len(ext), ext, len(want))
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("window %d = %+v, want %+v", i, ext[i], want[i])
		}
	}
}

func TestTumblingEmptyPeriodsProduceNoWindows(t *testing.T) {
	// Gap between 5 and 95 skips nine empty windows.
	ext := Drive(Tumbling(10), Interleave(elems(5, 95), math.MaxInt64))
	if len(ext) != 2 {
		t.Fatalf("got %d windows %v, want 2 (no empty windows)", len(ext), ext)
	}
	if ext[0].Start != 0 || ext[1].Start != 90 {
		t.Fatalf("unexpected starts: %v", ext)
	}
}

func TestSlidingOverlap(t *testing.T) {
	// size 10 slide 5: element at 7 belongs to [0,10) and [5,15).
	ext := Drive(Sliding(10, 5), Interleave(elems(7), math.MaxInt64))
	if len(ext) != 2 {
		t.Fatalf("got %v, want 2 windows", ext)
	}
	if ext[0] != (Extent{Start: 0, End: 10, FromPos: 0, ToPos: 1}) {
		t.Fatalf("first = %+v", ext[0])
	}
	if ext[1] != (Extent{Start: 5, End: 15, FromPos: 0, ToPos: 1}) {
		t.Fatalf("second = %+v", ext[1])
	}
}

func TestSlidingWindowContentsCorrect(t *testing.T) {
	// size 4 slide 2, elements at 0..9: window [k,k+4) holds ts in range.
	ts := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ext := Drive(Sliding(4, 2), Interleave(elems(ts...), math.MaxInt64))
	for _, e := range ext {
		for p := e.FromPos; p < e.ToPos; p++ {
			if ts[p] < e.Start || ts[p] >= e.End {
				t.Fatalf("window %+v contains ts %d out of range", e, ts[p])
			}
		}
		// and completeness: neighbors outside
		if e.FromPos > 0 && ts[e.FromPos-1] >= e.Start {
			t.Fatalf("window %+v missing element before FromPos", e)
		}
		if int(e.ToPos) < len(ts) && ts[e.ToPos] < e.End {
			t.Fatalf("window %+v missing element at ToPos", e)
		}
	}
}

func TestSlidingPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { Sliding(0, 1) },
		func() { Sliding(10, 0) },
		func() { Sliding(5, 10) },
		func() { Tumbling(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSessionBasic(t *testing.T) {
	// gap 10: elements 1,5,8 | 30,35 | 60
	ext := Drive(Session(10), Interleave(elems(1, 5, 8, 30, 35, 60), math.MaxInt64))
	want := []Extent{
		{Start: 1, End: 18, FromPos: 0, ToPos: 3},
		{Start: 30, End: 45, FromPos: 3, ToPos: 5},
		{Start: 60, End: 70, FromPos: 5, ToPos: 6},
	}
	if len(ext) != len(want) {
		t.Fatalf("got %v, want %v", ext, want)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("session %d = %+v, want %+v", i, ext[i], want[i])
		}
	}
}

func TestSessionClosesOnWatermarkOnly(t *testing.T) {
	// No element after the session; the final watermark must close it.
	events := []Event{
		{Kind: ElementEvent, Elem: Element{Ts: 5}},
		{Kind: WatermarkEvent, WM: 5},
		{Kind: WatermarkEvent, WM: 14}, // 5+10=15 > 14: still open
	}
	ext := Drive(Session(10), events)
	if len(ext) != 0 {
		t.Fatalf("session closed too early: %v", ext)
	}
	events = append(events, Event{Kind: WatermarkEvent, WM: 15})
	ext = Drive(Session(10), events)
	if len(ext) != 1 || ext[0].End != 15 {
		t.Fatalf("session not closed at wm=15: %v", ext)
	}
}

func TestCountTumbling(t *testing.T) {
	ext := Drive(CountTumbling(3), Interleave(elems(1, 2, 3, 4, 5, 6, 7), math.MaxInt64))
	want := []Extent{
		{Start: 0, End: 3, FromPos: 0, ToPos: 3},
		{Start: 3, End: 6, FromPos: 3, ToPos: 6},
		{Start: 6, End: 9, FromPos: 6, ToPos: 7}, // flushed incomplete at end
	}
	if len(ext) != len(want) {
		t.Fatalf("got %v, want %v", ext, want)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("count window %d = %+v, want %+v", i, ext[i], want[i])
		}
	}
}

func TestCountSliding(t *testing.T) {
	ext := Drive(CountSliding(4, 2), Interleave(elems(1, 2, 3, 4, 5, 6), math.MaxInt64))
	// Opens at pos 0,2,4; closes: [0,4) content 0..4, [2,6) content 2..6, [4,8) flushed 4..6.
	if len(ext) != 3 {
		t.Fatalf("got %d extents: %v", len(ext), ext)
	}
	if ext[0] != (Extent{Start: 0, End: 4, FromPos: 0, ToPos: 4}) {
		t.Fatalf("first = %+v", ext[0])
	}
	if ext[1] != (Extent{Start: 2, End: 6, FromPos: 2, ToPos: 6}) {
		t.Fatalf("second = %+v", ext[1])
	}
}

func TestPunctuation(t *testing.T) {
	// markers are values < 0; elements (ts, v): (1, -1), (2, 5), (3, 6), (4, -1), (5, 7)
	els := []Element{{1, -1}, {2, 5}, {3, 6}, {4, -1}, {5, 7}}
	spec := Punctuation(func(v float64) bool { return v < 0 })
	ext := Drive(spec, Interleave(els, math.MaxInt64))
	if len(ext) != 2 {
		t.Fatalf("got %v, want 2 windows", ext)
	}
	if ext[0] != (Extent{Start: 1, End: 4, FromPos: 0, ToPos: 3}) {
		t.Fatalf("first = %+v", ext[0])
	}
	if ext[1].FromPos != 3 || ext[1].ToPos != 5 {
		t.Fatalf("second = %+v", ext[1])
	}
}

func TestDelta(t *testing.T) {
	// threshold 10: values 0, 5, 12 -> new window at 12
	els := []Element{{1, 0}, {2, 5}, {3, 12}, {4, 15}}
	ext := Drive(Delta(10), Interleave(els, math.MaxInt64))
	if len(ext) != 2 {
		t.Fatalf("got %v", ext)
	}
	if ext[0].FromPos != 0 || ext[0].ToPos != 2 {
		t.Fatalf("first window = %+v", ext[0])
	}
}

func TestSessionWithMaxDuration(t *testing.T) {
	// gap 10, maxDur 15: steady elements every 5 ticks force duration split.
	els := elems(0, 5, 10, 15, 20, 25, 30)
	ext := Drive(SessionWithMaxDuration(10, 15), Interleave(els, math.MaxInt64))
	if len(ext) < 2 {
		t.Fatalf("maxDur did not split steady stream: %v", ext)
	}
	for _, e := range ext {
		if e.End-e.Start > 25 { // start..lastTs+gap bounded by maxDur cut
			t.Fatalf("window too long: %+v", e)
		}
	}
}

// Property: tumbling window extents partition the element positions — every
// element belongs to exactly one window, and windows are disjoint.
func TestTumblingPartitionProperty(t *testing.T) {
	f := func(deltas []uint16, sizeRaw uint8) bool {
		size := int64(sizeRaw)%50 + 1
		ts := make([]int64, 0, len(deltas))
		var cur int64
		for _, d := range deltas {
			cur += int64(d % 100)
			ts = append(ts, cur)
		}
		if len(ts) == 0 {
			return true
		}
		ext := Drive(Tumbling(size), Interleave(elems(ts...), math.MaxInt64))
		covered := make([]int, len(ts))
		for _, e := range ext {
			for p := e.FromPos; p < e.ToPos; p++ {
				covered[p]++
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: session extents are separated by at least gap and contain
// elements separated by less than gap.
func TestSessionGapProperty(t *testing.T) {
	f := func(deltas []uint16, gapRaw uint8) bool {
		gap := int64(gapRaw)%30 + 1
		ts := make([]int64, 0, len(deltas))
		var cur int64
		for _, d := range deltas {
			cur += int64(d % 50)
			ts = append(ts, cur)
		}
		if len(ts) == 0 {
			return true
		}
		ext := Drive(Session(gap), Interleave(elems(ts...), math.MaxInt64))
		for _, e := range ext {
			for p := e.FromPos + 1; p < e.ToPos; p++ {
				if ts[p]-ts[p-1] >= gap {
					return false
				}
			}
			if e.ToPos < int64(len(ts)) && ts[e.ToPos]-ts[e.ToPos-1] < gap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: sliding windows with slide s and size r contain exactly the
// elements with ts in [start, start+r), for random in-order streams.
func TestSlidingContentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		slide := int64(rng.Intn(9) + 1)
		size := slide * int64(rng.Intn(4)+1)
		n := rng.Intn(60) + 1
		ts := make([]int64, n)
		var cur int64
		for i := range ts {
			cur += int64(rng.Intn(7))
			ts[i] = cur
		}
		ext := Drive(Sliding(size, slide), Interleave(elems(ts...), math.MaxInt64))
		for _, e := range ext {
			// expected positions
			var from, to int64 = -1, -1
			for p, tv := range ts {
				if tv >= e.Start && tv < e.End {
					if from == -1 {
						from = int64(p)
					}
					to = int64(p) + 1
				}
			}
			if from == -1 {
				t.Fatalf("iter %d: empty window emitted: %+v", iter, e)
			}
			if e.FromPos != from || e.ToPos != to {
				t.Fatalf("iter %d: window %+v, want [%d,%d) for ts=%v", iter, e, from, to, ts)
			}
		}
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Open(5)
	r.CloseHere(5, 10)
	if len(r.Opens) != 1 || r.Opens[0] != 5 {
		t.Fatalf("opens = %v", r.Opens)
	}
	if len(r.Closes) != 1 || r.Closes[0].Start != 5 || r.Closes[0].End != 10 {
		t.Fatalf("closes = %v", r.Closes)
	}
}

func TestSpecIsPeriodic(t *testing.T) {
	if !Sliding(10, 2).IsPeriodic() || !Tumbling(10).IsPeriodic() {
		t.Fatalf("sliding/tumbling must be periodic")
	}
	if Session(5).IsPeriodic() || CountTumbling(3).IsPeriodic() {
		t.Fatalf("session/count must not be periodic")
	}
}

func TestPeriodicInterface(t *testing.T) {
	a := Sliding(10, 2).Factory()
	p, ok := a.(Periodic)
	if !ok {
		t.Fatalf("sliding assigner should implement Periodic")
	}
	size, slide := p.Periodic()
	if size != 10 || slide != 2 {
		t.Fatalf("Periodic() = %d,%d", size, slide)
	}
}

func TestCloseWithoutOpenIgnored(t *testing.T) {
	ctx := &oracleCtx{opens: map[int64]int64{}}
	ctx.CloseHere(99, 100) // must not panic or record
	ctx.CloseAt(99, 100, 100)
	if len(ctx.out) != 0 {
		t.Fatalf("unexpected extent recorded")
	}
}
