package agg

// Naive is the reference sliding-window aggregator: it stores every partial
// and recomputes the aggregate with a left fold on demand. O(n) per query.
// It exists as the oracle for conformance and property tests and as the
// honest cost model for the "Eager" baseline.
type Naive[A any] struct {
	combine  func(a, b A) A
	identity A
	vals     []A
}

// NewNaive returns an empty naive aggregator.
func NewNaive[A any](identity A, combine func(a, b A) A) *Naive[A] {
	return &Naive[A]{combine: combine, identity: identity}
}

// Len returns the number of stored partials.
func (n *Naive[A]) Len() int { return len(n.vals) }

// Append adds a partial at the back.
func (n *Naive[A]) Append(a A) { n.vals = append(n.vals, a) }

// EvictFront removes the oldest partial. It panics if empty.
func (n *Naive[A]) EvictFront() {
	if len(n.vals) == 0 {
		panic("agg: EvictFront on empty Naive")
	}
	n.vals = n.vals[1:]
}

// Aggregate folds the whole window.
func (n *Naive[A]) Aggregate() A { return n.Range(0, len(n.vals)) }

// Range folds partials with logical indices [i, j) in FIFO order.
func (n *Naive[A]) Range(i, j int) A {
	if i < 0 {
		i = 0
	}
	if j > len(n.vals) {
		j = len(n.vals)
	}
	acc := n.identity
	first := true
	for k := i; k < j; k++ {
		if first {
			acc = n.vals[k]
			first = false
		} else {
			acc = n.combine(acc, n.vals[k])
		}
	}
	return acc
}
