package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
)

// OpContext carries per-subtask information into Operator.Open.
type OpContext struct {
	NodeID      int
	NodeName    string
	Subtask     int
	Parallelism int
	// Restore holds the subtask's state blob from the recovery snapshot,
	// or nil on a fresh start.
	Restore []byte
}

// Collector receives records an operator emits downstream. Operators may
// emit from OnRecord, OnWatermark and Finish. Watermarks, barriers and end
// markers are forwarded by the runtime — operators emit only data records.
type Collector interface {
	Collect(r Record)
}

// Operator is one subtask instance of a dataflow operator. Instances are
// never shared between subtasks, so implementations need no internal
// locking.
type Operator interface {
	// Open initializes the subtask, restoring state from ctx.Restore when
	// recovering.
	Open(ctx *OpContext) error
	// OnRecord processes one data record.
	OnRecord(r Record, out Collector)
	// OnWatermark observes the subtask's event-time advance (the minimum
	// across all input channels).
	OnWatermark(wm int64, out Collector)
	// Snapshot serializes the subtask's state for a checkpoint barrier.
	Snapshot() ([]byte, error)
	// Finish is called when all inputs have ended (bounded execution);
	// operators flush their remaining results here.
	Finish(out Collector)
}

// Base is a convenience embedding providing no-op Operator methods.
type Base struct{}

// Open implements Operator.
func (Base) Open(*OpContext) error { return nil }

// OnRecord implements Operator.
func (Base) OnRecord(Record, Collector) {}

// OnWatermark implements Operator.
func (Base) OnWatermark(int64, Collector) {}

// Snapshot implements Operator.
func (Base) Snapshot() ([]byte, error) { return nil, nil }

// Finish implements Operator.
func (Base) Finish(Collector) {}

// MapOp applies F to every data record. Stateless.
type MapOp struct {
	Base
	F func(Record) Record
}

// OnRecord implements Operator.
func (m *MapOp) OnRecord(r Record, out Collector) { out.Collect(m.F(r)) }

// FilterOp forwards records for which F returns true. Stateless.
type FilterOp struct {
	Base
	F func(Record) bool
}

// OnRecord implements Operator.
func (f *FilterOp) OnRecord(r Record, out Collector) {
	if f.F(r) {
		out.Collect(r)
	}
}

// FlatMapOp applies F, which may emit zero or more records. Stateless.
type FlatMapOp struct {
	Base
	F func(Record, Collector)
}

// OnRecord implements Operator.
func (f *FlatMapOp) OnRecord(r Record, out Collector) { f.F(r, out) }

// KeyedReduceOp maintains a float64 accumulator per key, combining values
// with F. With EmitEach it emits the updated accumulator for every input
// (continuous results); otherwise it emits one record per key on Finish
// (bounded/batch results). Checkpointable.
type KeyedReduceOp struct {
	Base
	F        func(acc, v float64) float64
	Init     float64
	EmitEach bool

	state map[uint64]float64
}

type keyedReduceState struct {
	Keys []uint64
	Vals []float64
}

// Open implements Operator.
func (k *KeyedReduceOp) Open(ctx *OpContext) error {
	k.state = make(map[uint64]float64)
	if ctx.Restore == nil {
		return nil
	}
	var s keyedReduceState
	if err := gob.NewDecoder(bytes.NewReader(ctx.Restore)).Decode(&s); err != nil {
		return fmt.Errorf("keyed-reduce restore: %w", err)
	}
	for i, key := range s.Keys {
		k.state[key] = s.Vals[i]
	}
	return nil
}

// OnRecord implements Operator.
func (k *KeyedReduceOp) OnRecord(r Record, out Collector) {
	v, ok := r.Value.(float64)
	if !ok {
		return
	}
	acc, exists := k.state[r.Key]
	if !exists {
		acc = k.Init
	}
	acc = k.F(acc, v)
	k.state[r.Key] = acc
	if k.EmitEach {
		out.Collect(Data(r.Ts, r.Key, acc))
	}
}

// Snapshot implements Operator.
func (k *KeyedReduceOp) Snapshot() ([]byte, error) {
	s := keyedReduceState{}
	keys := make([]uint64, 0, len(k.state))
	for key := range k.state {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		s.Keys = append(s.Keys, key)
		s.Vals = append(s.Vals, k.state[key])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("keyed-reduce snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Finish implements Operator.
func (k *KeyedReduceOp) Finish(out Collector) {
	if k.EmitEach {
		return
	}
	keys := make([]uint64, 0, len(k.state))
	for key := range k.state {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		out.Collect(Data(0, key, k.state[key]))
	}
}

// FuncSink invokes F for every data record; terminal node.
type FuncSink struct {
	Base
	F func(Record)
	// OnWM, if set, is additionally invoked for watermarks.
	OnWM func(int64)
}

// OnRecord implements Operator.
func (s *FuncSink) OnRecord(r Record, _ Collector) { s.F(r) }

// OnWatermark implements Operator.
func (s *FuncSink) OnWatermark(wm int64, _ Collector) {
	if s.OnWM != nil {
		s.OnWM(wm)
	}
}

// CollectSink accumulates all data records; safe for concurrent subtasks
// and for reading after Run returns. Intended for tests and examples.
type CollectSink struct {
	Base
	mu   sync.Mutex
	recs []Record
}

// OnRecord implements Operator.
func (s *CollectSink) OnRecord(r Record, _ Collector) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

// Records returns a copy of everything collected so far.
func (s *CollectSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Factory returns an OperatorFactory handing every subtask this same sink
// (the sink locks internally).
func (s *CollectSink) Factory() OperatorFactory {
	return func() Operator { return s }
}
