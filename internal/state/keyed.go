package state

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync/atomic"
)

// DefaultNumKeyGroups is the number of key groups a plan uses when it does
// not choose one explicitly. Key groups are the unit of state partitioning
// and redistribution: a job may later restore at any parallelism up to this
// many keyed subtasks without splitting a group.
const DefaultNumKeyGroups = 128

// FNV-1a parameters for the engine-wide key hash.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hash64 is THE key hash of the engine: FNV-1a over the 8 little-endian key
// bytes. Hash routing (internal/dataflow) and key-group assignment share it
// by construction, which is what makes routing and state partitioning agree.
func Hash64(key uint64) uint64 {
	h := fnvOffset64
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(key>>(8*i)))) * fnvPrime64
	}
	return h
}

// KeyOf hashes an arbitrary string to a partitioning key (FNV-1a over the
// string bytes). It lives next to Hash64 so every key hash in the engine has
// one definition: KeyOf produces the keys, Hash64 routes and groups them.
func KeyOf(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// KeyGroupFor maps a key to its key group: Hash64(key) % numKeyGroups. The
// key group is a property of the logical plan (numKeyGroups is a plan
// constant), never of the physical parallelism.
func KeyGroupFor(key uint64, numKeyGroups int) int {
	return int(Hash64(key) % uint64(numKeyGroups))
}

// GroupRangeFor returns the contiguous key-group range [start, end) owned by
// one subtask. Ranges partition [0, numKeyGroups) across the subtasks; a
// subtask whose range is empty (parallelism > numKeyGroups) owns no keys.
func GroupRangeFor(numKeyGroups, parallelism, subtask int) (start, end int) {
	start = (subtask*numKeyGroups + parallelism - 1) / parallelism
	end = ((subtask+1)*numKeyGroups + parallelism - 1) / parallelism
	return start, end
}

// SubtaskForGroup returns the subtask owning a key group at the given
// parallelism — the inverse of GroupRangeFor, and the routing function of
// hash-partitioned edges.
func SubtaskForGroup(group, numKeyGroups, parallelism int) int {
	return group * parallelism / numKeyGroups
}

// Codec serializes one cell value. Encode/Decode run inside a group blob's
// gob stream; Clone deep-copies a value so a copy-on-write capture can keep
// the original immutable while processing continues. A nil Clone declares
// the value immutable or value-like (numbers, strings): captures then share
// it without copying, and in-place mutation through GetMut is not needed.
type Codec[V any] struct {
	Encode func(enc *gob.Encoder, v V) error
	Decode func(dec *gob.Decoder) (V, error)
	Clone  func(v V) V
}

// GobCodec returns the codec for plainly gob-encodable value types with no
// in-place mutation (Clone is nil).
func GobCodec[V any]() Codec[V] {
	return Codec[V]{
		Encode: func(enc *gob.Encoder, v V) error { return enc.Encode(v) },
		Decode: func(dec *gob.Decoder) (V, error) {
			var v V
			err := dec.Decode(&v)
			return v, err
		},
	}
}

// SliceCodec returns the codec for append-only slice values: gob encoding
// plus a Clone that copies the slice header and elements, so sorting or
// compacting a slice in place (via GetMut) cannot reach into a capture.
func SliceCodec[E any]() Codec[[]E] {
	return Codec[[]E]{
		Encode: func(enc *gob.Encoder, v []E) error { return enc.Encode(v) },
		Decode: func(dec *gob.Decoder) ([]E, error) {
			var v []E
			err := dec.Decode(&v)
			return v, err
		},
		Clone: func(v []E) []E {
			out := make([]E, len(v))
			copy(out, v)
			return out
		},
	}
}

// KeyedState is an operator subtask's keyed state: a set of named cells
// whose physical unit is the key group. Operators register their cells in
// Open — in a deterministic order, the registration sequence is part of the
// snapshot protocol like cutty's AddQuery sequence — then read and write
// per-key values on the hot path. Snapshots capture a copy-on-write view per
// key group (Capture) and serialize it asynchronously; restore redistributes
// group blobs to whatever subtask owns each group after a rescale.
//
// A KeyedState belongs to one subtask goroutine; only Capture's returned
// view is touched from another goroutine (the async serializer), and the
// copy-on-write discipline keeps that view immutable.
type KeyedState struct {
	numGroups  int
	start, end int // owned range [start, end)
	cells      []keyedCell
	names      map[string]struct{}

	// active counts captures whose serialization has not finished yet.
	// While non-zero, mutations clone shared structures first; at zero,
	// cells mutate in place with no copying.
	active atomic.Int32
}

// NewKeyedState returns an empty keyed-state container for the subtask
// owning key groups [start, end) of numKeyGroups.
func NewKeyedState(numKeyGroups, start, end int) *KeyedState {
	if numKeyGroups <= 0 {
		numKeyGroups = DefaultNumKeyGroups
	}
	if start < 0 || end > numKeyGroups || start > end {
		panic(fmt.Sprintf("state: key-group range [%d,%d) outside [0,%d)", start, end, numKeyGroups))
	}
	return &KeyedState{
		numGroups: numKeyGroups,
		start:     start,
		end:       end,
		names:     make(map[string]struct{}),
	}
}

// NumKeyGroups returns the plan's key-group count.
func (ks *KeyedState) NumKeyGroups() int { return ks.numGroups }

// GroupRange returns the owned key-group range [start, end).
func (ks *KeyedState) GroupRange() (start, end int) { return ks.start, ks.end }

// register adds a cell; names must be unique per KeyedState.
func (ks *KeyedState) register(name string, c keyedCell) {
	if _, dup := ks.names[name]; dup {
		panic(fmt.Sprintf("state: duplicate cell %q", name))
	}
	ks.names[name] = struct{}{}
	ks.cells = append(ks.cells, c)
}

// groupIndex maps a key to the owned-slice index of its group, panicking on
// keys outside the owned range: those can only arrive through a routing /
// partitioning mismatch, which must fail loudly rather than corrupt state.
func (ks *KeyedState) groupIndex(key uint64) int {
	g := KeyGroupFor(key, ks.numGroups)
	if g < ks.start || g >= ks.end {
		panic(fmt.Sprintf("state: key %#x maps to key group %d outside owned range [%d,%d) — hash routing and state partitioning disagree", key, g, ks.start, ks.end))
	}
	return g - ks.start
}

// keyedCell is the untyped view of a registered cell.
type keyedCell interface {
	cellName() string
	// captureCell freezes the cell's owned groups and returns an immutable
	// per-group view for asynchronous serialization.
	captureCell() capturedCell
	// decodeGroup loads one group's portion of a snapshot blob.
	decodeGroup(dec *gob.Decoder, group int) error
}

// capturedCell is one cell's frozen view inside a Captured snapshot.
type capturedCell interface {
	encodeGroup(enc *gob.Encoder, group int) error
}

// ---- MapCell ---------------------------------------------------------------

// mapGroup is one key group of a MapCell. frozen marks the map as shared
// with an in-flight capture: the next mutation clones it first. dirty lists
// the keys whose values GetMut has cloned since the last capture — provably
// un-aliased private copies — so in-place mutation clones each value at
// most once per capture. Only GetMut's clone may mark a key dirty: a value
// stored with Put can alias captured memory (an appended slice shares its
// backing array with the captured header).
type mapGroup[V any] struct {
	m      map[uint64]V
	frozen bool
	dirty  map[uint64]struct{}
}

// MapCell is a typed per-key cell: one value per key, stored per key group.
// Values fetched with Get must be treated as read-only; use GetMut before
// mutating a value in place (engines, buffers) so copy-on-write can protect
// in-flight snapshot captures.
type MapCell[V any] struct {
	ks     *KeyedState
	name   string
	codec  Codec[V]
	groups []mapGroup[V]
}

// RegisterMap registers a per-key cell on ks under the given name.
func RegisterMap[V any](ks *KeyedState, name string, codec Codec[V]) *MapCell[V] {
	if codec.Encode == nil || codec.Decode == nil {
		panic(fmt.Sprintf("state: cell %q registered without codec", name))
	}
	c := &MapCell[V]{ks: ks, name: name, codec: codec, groups: make([]mapGroup[V], ks.end-ks.start)}
	ks.register(name, c)
	return c
}

func (c *MapCell[V]) cellName() string { return c.name }

func (c *MapCell[V]) group(key uint64) *mapGroup[V] {
	return &c.groups[c.ks.groupIndex(key)]
}

// thaw makes the group's map privately mutable. If a capture may still be
// serializing (ks.active > 0) the map is cloned; once the capture has landed
// the shared reference is gone and the map can be reused as-is.
func (c *MapCell[V]) thaw(g *mapGroup[V]) {
	if !g.frozen {
		return
	}
	if c.ks.active.Load() > 0 {
		m := make(map[uint64]V, len(g.m))
		for k, v := range g.m {
			m[k] = v
		}
		g.m = m
	}
	g.frozen = false
}

// markDirty records that key's value is private since the last capture.
func (c *MapCell[V]) markDirty(g *mapGroup[V], key uint64) {
	if c.codec.Clone == nil {
		return
	}
	if g.dirty == nil {
		g.dirty = make(map[uint64]struct{})
	}
	g.dirty[key] = struct{}{}
}

// Get returns the value stored under key. The value must not be mutated in
// place — use GetMut for that.
func (c *MapCell[V]) Get(key uint64) (V, bool) {
	v, ok := c.group(key).m[key]
	return v, ok
}

// getMutIn is GetMut on an already-resolved group.
func (c *MapCell[V]) getMutIn(g *mapGroup[V], key uint64) (V, bool) {
	v, ok := g.m[key]
	if !ok {
		return v, false
	}
	c.thaw(g)
	if c.codec.Clone != nil && c.ks.active.Load() > 0 {
		if _, private := g.dirty[key]; !private {
			v = c.codec.Clone(v)
			g.m[key] = v
			c.markDirty(g, key)
		}
	}
	return v, true
}

// putIn is Put on an already-resolved group.
func (c *MapCell[V]) putIn(g *mapGroup[V], key uint64, v V) {
	c.thaw(g)
	if g.m == nil {
		g.m = make(map[uint64]V)
	}
	g.m[key] = v
	// Revoke any privacy granted by an earlier GetMut: the stored value's
	// provenance is unknown, so the next GetMut must clone again.
	delete(g.dirty, key)
}

// GetMut returns the value stored under key for in-place mutation, cloning
// it first when it may be shared with an in-flight snapshot capture. With
// no capture in flight it is as cheap as Get — no clone, no bookkeeping
// (the dirty set only means anything during a capture window, and the next
// capture resets it).
func (c *MapCell[V]) GetMut(key uint64) (V, bool) {
	return c.getMutIn(c.group(key), key)
}

// Put stores a value under key. Put does NOT make the value private for
// in-place mutation: a stored value may alias captured memory (the classic
// case is an appended slice sharing its backing array with the captured
// header), so only GetMut — whose clone provably breaks the aliasing —
// grants privacy during a capture window.
func (c *MapCell[V]) Put(key uint64, v V) {
	c.putIn(c.group(key), key, v)
}

// Delete removes key's value.
func (c *MapCell[V]) Delete(key uint64) {
	g := c.group(key)
	c.thaw(g)
	delete(g.m, key)
	delete(g.dirty, key)
}

// KeyRef is a resolved handle to one key's slot in a MapCell: the key-group
// hash (Hash64 + range check) is paid once at RefFor, and every access
// through the ref skips it. It is the run-scoped state access of vectorized
// keyed operators, which touch each distinct key of a contiguous data run a
// handful of times (load, fold, store) and would otherwise rehash on every
// touch.
//
// A ref stays valid for the cell's lifetime: groups are laid out once at
// registration and never move. Every access re-reads the group's frozen
// flag and the capture counter, so the copy-on-write discipline — thaw on
// mutation, clone-on-GetMut during a capture window, privacy revocation on
// Put — is byte-for-byte the MapCell's own; holding a ref across a barrier
// is safe.
type KeyRef[V any] struct {
	c   *MapCell[V]
	g   *mapGroup[V]
	key uint64
}

// RefFor resolves key's group once and returns the ref. Like every cell
// access it panics on keys outside the owned range.
func (c *MapCell[V]) RefFor(key uint64) KeyRef[V] {
	return KeyRef[V]{c: c, g: c.group(key), key: key}
}

// Key returns the key the ref was resolved for.
func (r KeyRef[V]) Key() uint64 { return r.key }

// Get is MapCell.Get without the group hash.
func (r KeyRef[V]) Get() (V, bool) {
	v, ok := r.g.m[r.key]
	return v, ok
}

// GetMut is MapCell.GetMut without the group hash: it clones the value when
// an in-flight capture may still share it.
func (r KeyRef[V]) GetMut() (V, bool) {
	return r.c.getMutIn(r.g, r.key)
}

// Put is MapCell.Put without the group hash.
func (r KeyRef[V]) Put(v V) {
	r.c.putIn(r.g, r.key, v)
}

// Len counts keys across all owned groups.
func (c *MapCell[V]) Len() int {
	n := 0
	for i := range c.groups {
		n += len(c.groups[i].m)
	}
	return n
}

// Range calls f for every (key, value) pair, iterating key groups in order
// (map order within a group). Values are read-only; it stops when f returns
// false. The cell must not be mutated during Range.
func (c *MapCell[V]) Range(f func(key uint64, v V) bool) {
	for i := range c.groups {
		for k, v := range c.groups[i].m {
			if !f(k, v) {
				return
			}
		}
	}
}

// SortedKeys returns every key across the owned groups in ascending order —
// the deterministic iteration order used by emission paths.
func (c *MapCell[V]) SortedKeys() []uint64 {
	keys := make([]uint64, 0, c.Len())
	for i := range c.groups {
		for k := range c.groups[i].m {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// capturedMap is a MapCell's frozen per-group view.
type capturedMap[V any] struct {
	cell  *MapCell[V]
	start int
	maps  []map[uint64]V
}

func (c *MapCell[V]) captureCell() capturedCell {
	cm := &capturedMap[V]{cell: c, start: c.ks.start, maps: make([]map[uint64]V, len(c.groups))}
	for i := range c.groups {
		cm.maps[i] = c.groups[i].m
		c.groups[i].frozen = true
		c.groups[i].dirty = nil
	}
	return cm
}

// encodeGroup writes one group's entries in ascending key order, so a
// group's blob is a deterministic function of its contents.
func (cm *capturedMap[V]) encodeGroup(enc *gob.Encoder, group int) error {
	m := cm.maps[group-cm.start]
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if err := enc.Encode(len(keys)); err != nil {
		return err
	}
	for _, k := range keys {
		if err := enc.Encode(k); err != nil {
			return err
		}
		if err := cm.cell.codec.Encode(enc, m[k]); err != nil {
			return fmt.Errorf("cell %q key %#x: %w", cm.cell.name, k, err)
		}
	}
	return nil
}

func (c *MapCell[V]) decodeGroup(dec *gob.Decoder, group int) error {
	var n int
	if err := dec.Decode(&n); err != nil {
		return err
	}
	g := &c.groups[group-c.ks.start]
	if g.m == nil && n > 0 {
		g.m = make(map[uint64]V, n)
	}
	for i := 0; i < n; i++ {
		var k uint64
		if err := dec.Decode(&k); err != nil {
			return err
		}
		v, err := c.codec.Decode(dec)
		if err != nil {
			return fmt.Errorf("cell %q key %#x: %w", c.name, k, err)
		}
		g.m[k] = v
	}
	return nil
}

// ---- GroupCell -------------------------------------------------------------

// GroupCell is a per-key-group scalar — state that is logically "one value
// for every key in the group", like the watermark a group of keys has been
// released up to. Unlike a per-subtask scalar it redistributes exactly under
// rescaling. Values should be value-like (no in-place mutation).
type GroupCell[V any] struct {
	ks    *KeyedState
	name  string
	codec Codec[V]
	vals  []V
}

// RegisterPerGroup registers a per-group scalar cell on ks, initialized to
// init for every owned group.
func RegisterPerGroup[V any](ks *KeyedState, name string, init V, codec Codec[V]) *GroupCell[V] {
	if codec.Encode == nil || codec.Decode == nil {
		panic(fmt.Sprintf("state: cell %q registered without codec", name))
	}
	c := &GroupCell[V]{ks: ks, name: name, codec: codec, vals: make([]V, ks.end-ks.start)}
	for i := range c.vals {
		c.vals[i] = init
	}
	ks.register(name, c)
	return c
}

func (c *GroupCell[V]) cellName() string { return c.name }

// Get returns the scalar of the key's group.
func (c *GroupCell[V]) Get(key uint64) V { return c.vals[c.ks.groupIndex(key)] }

// Set stores the scalar of the key's group.
func (c *GroupCell[V]) Set(key uint64, v V) { c.vals[c.ks.groupIndex(key)] = v }

// SetAll stores v into every owned group.
func (c *GroupCell[V]) SetAll(v V) {
	for i := range c.vals {
		c.vals[i] = v
	}
}

// capturedGroup copies the scalars at capture time (O(#groups), cheap).
type capturedGroup[V any] struct {
	cell  *GroupCell[V]
	start int
	vals  []V
}

func (c *GroupCell[V]) captureCell() capturedCell {
	vals := make([]V, len(c.vals))
	copy(vals, c.vals)
	if c.codec.Clone != nil {
		for i := range vals {
			vals[i] = c.codec.Clone(vals[i])
		}
	}
	return &capturedGroup[V]{cell: c, start: c.ks.start, vals: vals}
}

func (cg *capturedGroup[V]) encodeGroup(enc *gob.Encoder, group int) error {
	return cg.cell.codec.Encode(enc, cg.vals[group-cg.start])
}

func (c *GroupCell[V]) decodeGroup(dec *gob.Decoder, group int) error {
	v, err := c.codec.Decode(dec)
	if err != nil {
		return fmt.Errorf("cell %q: %w", c.name, err)
	}
	c.vals[group-c.ks.start] = v
	return nil
}

// ---- capture / restore -----------------------------------------------------

// Captured is a consistent copy-on-write view of a KeyedState, taken at a
// checkpoint barrier. Taking it is cheap — O(#cells x #groups) flag flips
// and scalar copies, no serialization — so the barrier path stays fast;
// EncodeGroups then serializes the view from another goroutine while the
// operator keeps processing (mutations clone shared structures first).
type Captured struct {
	ks         *KeyedState
	start, end int
	names      []string
	cells      []capturedCell
	released   bool
}

// Capture freezes the current state into an immutable view. The caller must
// call Release (or EncodeGroups, which releases on completion) exactly once,
// after which mutations stop paying the copy-on-write cost.
func (ks *KeyedState) Capture() *Captured {
	c := &Captured{ks: ks, start: ks.start, end: ks.end}
	for _, cell := range ks.cells {
		c.names = append(c.names, cell.cellName())
		c.cells = append(c.cells, cell.captureCell())
	}
	ks.active.Add(1)
	return c
}

// Release declares the capture no longer in use, ending the copy-on-write
// window. Idempotent.
func (c *Captured) Release() {
	if c.released {
		return
	}
	c.released = true
	c.ks.active.Add(-1)
}

// GroupRange returns the captured key-group range [start, end).
func (c *Captured) GroupRange() (start, end int) { return c.start, c.end }

// EncodeGroup serializes one key group of the view: every cell in
// registration order, each prefixed with its name.
func (c *Captured) EncodeGroup(group int) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i, cc := range c.cells {
		if err := enc.Encode(c.names[i]); err != nil {
			return nil, err
		}
		if err := cc.encodeGroup(enc, group); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// EncodeGroups serializes every captured key group — the asynchronous phase
// of a snapshot — and releases the capture.
func (c *Captured) EncodeGroups() (map[int][]byte, error) {
	defer c.Release()
	out := make(map[int][]byte, c.end-c.start)
	for g := c.start; g < c.end; g++ {
		blob, err := c.EncodeGroup(g)
		if err != nil {
			return nil, fmt.Errorf("state: encode key group %d: %w", g, err)
		}
		out[g] = blob
	}
	return out, nil
}

// RestoreGroup loads one key group's snapshot blob into the registered
// cells. The group must lie in the owned range and the cells must have been
// registered in the same order as when the blob was written.
func (ks *KeyedState) RestoreGroup(group int, blob []byte) error {
	if group < ks.start || group >= ks.end {
		return fmt.Errorf("state: restore of key group %d outside owned range [%d,%d)", group, ks.start, ks.end)
	}
	dec := gob.NewDecoder(bytes.NewReader(blob))
	for _, cell := range ks.cells {
		var name string
		if err := dec.Decode(&name); err != nil {
			return fmt.Errorf("state: restore key group %d: %w", group, err)
		}
		if name != cell.cellName() {
			return fmt.Errorf("state: restore key group %d: cell %q in snapshot, %q registered (registration order changed?)", group, name, cell.cellName())
		}
		if err := cell.decodeGroup(dec, group); err != nil {
			return fmt.Errorf("state: restore key group %d: %w", group, err)
		}
	}
	return nil
}
