package cutty

import (
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/agg"
	"repro/internal/window"
)

// Snapshot/Restore make the Cutty engine checkpointable, which is what the
// dataflow layer's asynchronous barrier snapshotting needs to give windowed
// aggregations exactly-once state (experiment E9).
//
// Protocol: the restoring side first reconstructs the engine with the same
// AddQuery sequence (specs and functions are part of the job definition and
// survive failures in the job graph, not in the snapshot), then calls
// Restore. Only mutable state is serialized: the slice ring, the per-store
// tree leaves, each query's open windows and — via window.Checkpointable —
// each assigner's mutable fields.

type engineState struct {
	Pos        int64
	CurWM      int64
	CutPending bool
	MetaBase   int64
	MetaFirst  []int64
	MetaCount  []int64
	Stores     []storeState
	Queries    []queryStateBlob
}

type storeState struct {
	FnName string
	Leaves []agg.Acc
}

type queryStateBlob struct {
	ID        int
	OpenIDs   []int64
	OpenBegin []int64
	MinBegin  int64
}

// Snapshot serializes the engine's mutable state.
func (e *Engine) Snapshot(enc *gob.Encoder) error {
	st := engineState{
		Pos:        e.pos,
		CurWM:      e.curWM,
		CutPending: e.cutPending,
		MetaBase:   e.meta.base,
	}
	for _, m := range e.meta.items {
		st.MetaFirst = append(st.MetaFirst, m.firstTs)
		st.MetaCount = append(st.MetaCount, m.count)
	}
	storeNames := make([]string, 0, len(e.stores))
	for name := range e.stores {
		storeNames = append(storeNames, name)
	}
	sort.Strings(storeNames)
	for _, name := range storeNames {
		s := e.stores[name]
		ss := storeState{FnName: name}
		for i := 0; i < s.tree.Len(); i++ {
			ss.Leaves = append(ss.Leaves, s.tree.Range(i, i+1))
		}
		st.Stores = append(st.Stores, ss)
	}
	qids := make([]int, 0, len(e.queries))
	for id := range e.queries {
		qids = append(qids, id)
	}
	sort.Ints(qids)
	for _, id := range qids {
		q := e.queries[id]
		qb := queryStateBlob{ID: id, MinBegin: q.minBegin}
		wids := make([]int64, 0, len(q.open))
		for wid := range q.open {
			wids = append(wids, wid)
		}
		sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
		for _, wid := range wids {
			qb.OpenIDs = append(qb.OpenIDs, wid)
			qb.OpenBegin = append(qb.OpenBegin, q.open[wid].begin)
		}
		st.Queries = append(st.Queries, qb)
	}
	if err := enc.Encode(st); err != nil {
		return fmt.Errorf("cutty: snapshot: %w", err)
	}
	// Assigner state, in query-id order.
	for _, id := range qids {
		ck, ok := e.queries[id].assigner.(window.Checkpointable)
		if !ok {
			return fmt.Errorf("cutty: assigner of query %d is not checkpointable", id)
		}
		if err := ck.SaveState(enc); err != nil {
			return fmt.Errorf("cutty: snapshot assigner %d: %w", id, err)
		}
	}
	return nil
}

// Restore loads state produced by Snapshot into an engine that was rebuilt
// with the same AddQuery sequence.
func (e *Engine) Restore(dec *gob.Decoder) error {
	var st engineState
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("cutty: restore: %w", err)
	}
	e.pos = st.Pos
	e.curWM = st.CurWM
	e.cutPending = st.CutPending
	e.meta = metaRing{base: st.MetaBase}
	for i := range st.MetaFirst {
		e.meta.append(sliceMeta{firstTs: st.MetaFirst[i], count: st.MetaCount[i]})
	}
	for _, ss := range st.Stores {
		s, ok := e.stores[ss.FnName]
		if !ok {
			return fmt.Errorf("cutty: restore: no store for function %q (query set mismatch)", ss.FnName)
		}
		s.tree = agg.NewFlatFAT(s.fn.Identity, s.fn.Combine, len(ss.Leaves)+1)
		for _, leaf := range ss.Leaves {
			s.tree.Append(leaf)
		}
	}
	for _, qb := range st.Queries {
		q, ok := e.queries[qb.ID]
		if !ok {
			return fmt.Errorf("cutty: restore: query %d missing (query set mismatch)", qb.ID)
		}
		q.minBegin = qb.MinBegin
		q.open = make(map[int64]openWin, len(qb.OpenIDs))
		for i, wid := range qb.OpenIDs {
			q.open[wid] = openWin{begin: qb.OpenBegin[i]}
		}
	}
	qids := make([]int, 0, len(e.queries))
	for id := range e.queries {
		qids = append(qids, id)
	}
	sort.Ints(qids)
	for _, id := range qids {
		ck, ok := e.queries[id].assigner.(window.Checkpointable)
		if !ok {
			return fmt.Errorf("cutty: assigner of query %d is not checkpointable", id)
		}
		if err := ck.LoadState(dec); err != nil {
			return fmt.Errorf("cutty: restore assigner %d: %w", id, err)
		}
	}
	return nil
}
