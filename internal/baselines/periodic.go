package baselines

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

// periodicSlicer is the shared machinery behind the Pairs and Panes
// baselines. Both pre-slice the stream on a *schedule derived from the
// registered periodic windows* — independent of window begins — and answer
// each window by linearly combining the slices it covers (the published
// evaluation cost for both techniques). They differ only in the boundary
// schedule:
//
//	Panes (Li et al., SIGMOD Record 2005): slice length gcd(size, slide),
//	extended to multiple queries with the gcd across all queries.
//
//	Pairs (Krishnamurthy et al., 2006): two alternating slice lengths per
//	query, (size mod slide) and slide-(size mod slide); for multiple
//	queries the union of all boundary points.
//
// Neither technique is defined for non-periodic windows (sessions,
// punctuations, deltas, count windows): AddQuery rejects them, and the
// experiment harness reports "n/a" — which is precisely the gap Cutty closes.
type periodicSlicer struct {
	name     string
	schedule scheduler
	emit     engine.Emit

	pos     int64
	curWM   int64
	queries map[int]*psQuery
	nextQID int
	active  *psQuery

	fns    []*agg.FnF64 // distinct functions, indexed by slice acc slot
	fnSlot map[string]int

	slices    []psSlice // ascending by bStart; linear eval per window
	curEnd    int64     // schedule end of the newest slice, valid if len > 0
	haveSlice bool
}

// scheduler yields the periodic boundary schedule.
type scheduler interface {
	// rebuild recomputes the schedule from the registered queries.
	rebuild(qs []engine.Query)
	// boundaryAtOrBefore returns the largest boundary <= t.
	boundaryAtOrBefore(t int64) int64
	// boundaryAfter returns the smallest boundary > t.
	boundaryAfter(t int64) int64
}

type psSlice struct {
	bStart int64
	accs   []agg.Acc
	begun  []bool
}

type psQuery struct {
	id       int
	spec     engine.Query
	assigner window.Assigner
	slot     int
	open     map[int64]struct{} // open window starts
	minOpen  int64
}

// NewPairs returns the Pairs baseline engine.
func NewPairs(emit engine.Emit) engine.Engine {
	return &periodicSlicer{
		name:     "pairs",
		schedule: &pairsSchedule{},
		emit:     emit,
		curWM:    math.MinInt64,
		queries:  make(map[int]*psQuery),
		fnSlot:   make(map[string]int),
	}
}

// NewPanes returns the Panes baseline engine.
func NewPanes(emit engine.Emit) engine.Engine {
	return &periodicSlicer{
		name:     "panes",
		schedule: &panesSchedule{},
		emit:     emit,
		curWM:    math.MinInt64,
		queries:  make(map[int]*psQuery),
		fnSlot:   make(map[string]int),
	}
}

func (p *periodicSlicer) Name() string { return p.name }

// AddQuery implements engine.Engine; only periodic time windows are
// accepted.
func (p *periodicSlicer) AddQuery(q engine.Query) (int, error) {
	if q.Fn == nil || q.Window.Factory == nil {
		return 0, fmt.Errorf("%s: query requires a window spec and an aggregate function", p.name)
	}
	if !q.Window.IsPeriodic() {
		return 0, fmt.Errorf("%s: window %q is not periodic; %s supports only tumbling and sliding time windows",
			p.name, q.Window.Name, p.name)
	}
	slot, ok := p.fnSlot[q.Fn.Name]
	if !ok {
		slot = len(p.fns)
		p.fns = append(p.fns, q.Fn)
		p.fnSlot[q.Fn.Name] = slot
		for i := range p.slices {
			p.slices[i].accs = append(p.slices[i].accs, q.Fn.Identity)
			p.slices[i].begun = append(p.slices[i].begun, false)
		}
	}
	id := p.nextQID
	p.nextQID++
	p.queries[id] = &psQuery{
		id:       id,
		spec:     q,
		assigner: q.Window.Factory(),
		slot:     slot,
		open:     make(map[int64]struct{}),
	}
	p.rebuildSchedule()
	return id, nil
}

// RemoveQuery implements engine.Engine.
func (p *periodicSlicer) RemoveQuery(id int) {
	if _, ok := p.queries[id]; !ok {
		return
	}
	delete(p.queries, id)
	p.rebuildSchedule()
	p.evict()
}

func (p *periodicSlicer) rebuildSchedule() {
	qs := make([]engine.Query, 0, len(p.queries))
	for _, q := range p.queries {
		qs = append(qs, q.spec)
	}
	p.schedule.rebuild(qs)
}

// OnElement implements engine.Engine.
func (p *periodicSlicer) OnElement(ts int64, v float64) {
	for _, q := range p.queries {
		p.active = q
		q.assigner.OnElement(ts, p.pos, v, (*psCtx)(p))
	}
	p.active = nil
	// Assign the element to the schedule slice covering ts.
	if !p.haveSlice || ts >= p.curEnd {
		start := p.schedule.boundaryAtOrBefore(ts)
		p.curEnd = p.schedule.boundaryAfter(ts)
		s := psSlice{bStart: start, accs: make([]agg.Acc, len(p.fns)), begun: make([]bool, len(p.fns))}
		for i, fn := range p.fns {
			s.accs[i] = fn.Identity
		}
		p.slices = append(p.slices, s)
		p.haveSlice = true
	}
	s := &p.slices[len(p.slices)-1]
	for i, fn := range p.fns {
		if s.begun[i] {
			s.accs[i] = fn.Combine(s.accs[i], fn.Lift(v))
		} else {
			s.accs[i] = fn.Lift(v)
			s.begun[i] = true
		}
	}
	p.pos++
}

// OnWatermark implements engine.Engine.
func (p *periodicSlicer) OnWatermark(wm int64) {
	if wm <= p.curWM {
		return
	}
	p.curWM = wm
	for _, q := range p.queries {
		p.active = q
		q.assigner.OnTime(wm, (*psCtx)(p))
	}
	p.active = nil
	p.evict()
}

// StoredPartials implements engine.Engine.
func (p *periodicSlicer) StoredPartials() int { return len(p.slices) * len(p.fns) }

func (p *periodicSlicer) evict() {
	minNeeded := int64(math.MaxInt64)
	for _, q := range p.queries {
		if len(q.open) > 0 && q.minOpen < minNeeded {
			minNeeded = q.minOpen
		}
	}
	cut := 0
	for cut < len(p.slices) && p.slices[cut].bStart < minNeeded {
		// A slice starting before the earliest open window also *ends* at
		// or before that window's start (boundaries align), except the
		// newest slice which may still grow — keep it.
		if cut == len(p.slices)-1 && p.haveSlice && p.curEnd > minNeeded {
			break
		}
		cut++
	}
	if cut > 0 {
		p.slices = append(p.slices[:0], p.slices[cut:]...)
		if len(p.slices) == 0 {
			p.haveSlice = false
		}
	}
}

type psCtx periodicSlicer

func (c *psCtx) engine() *periodicSlicer { return (*periodicSlicer)(c) }

func (c *psCtx) Open(id int64) {
	p := c.engine()
	q := p.active
	if _, dup := q.open[id]; dup {
		return
	}
	if len(q.open) == 0 || id < q.minOpen {
		q.minOpen = id
	}
	q.open[id] = struct{}{}
}

// CloseHere: periodic assigners never use it (all closes are watermark
// driven), but implement it defensively as "everything so far".
func (c *psCtx) CloseHere(id, end int64) { c.CloseAt(id, end, math.MaxInt64) }

func (c *psCtx) CloseAt(id, end, cutoff int64) {
	p := c.engine()
	q := p.active
	if _, ok := q.open[id]; !ok {
		return
	}
	delete(q.open, id)
	if id == q.minOpen && len(q.open) > 0 {
		q.minOpen = math.MaxInt64
		for s := range q.open {
			if s < q.minOpen {
				q.minOpen = s
			}
		}
	}
	// Linear combine over the slices covering [id, cutoff) — the published
	// evaluation cost of Pairs and Panes.
	fn := p.fns[q.slot]
	lo := sort.Search(len(p.slices), func(i int) bool { return p.slices[i].bStart >= id })
	acc := fn.Identity
	begun := false
	for i := lo; i < len(p.slices) && p.slices[i].bStart < cutoff; i++ {
		if !p.slices[i].begun[q.slot] {
			continue
		}
		if begun {
			acc = fn.Combine(acc, p.slices[i].accs[q.slot])
		} else {
			acc = p.slices[i].accs[q.slot]
			begun = true
		}
	}
	p.emit(engine.Result{QueryID: q.id, Start: id, End: end, Value: fn.Lower(acc), Count: acc.N})
}

// panesSchedule slices at multiples of the gcd of all sizes and slides.
type panesSchedule struct {
	g int64
}

func (s *panesSchedule) rebuild(qs []engine.Query) {
	s.g = 0
	for _, q := range qs {
		s.g = gcd64(s.g, gcd64(q.Window.Size, q.Window.Slide))
	}
	if s.g == 0 {
		s.g = 1
	}
}

func (s *panesSchedule) boundaryAtOrBefore(t int64) int64 { return (t / s.g) * s.g }
func (s *panesSchedule) boundaryAfter(t int64) int64      { return (t/s.g + 1) * s.g }

// pairsSchedule slices at the union of every query's window starts
// (t ≡ 0 mod slide) and window ends (t ≡ size mod slide).
type pairsSchedule struct {
	// offsets per modulus: for each query, slide and the two residues.
	entries []pairEntry
}

type pairEntry struct {
	slide int64
	r0    int64 // 0
	r1    int64 // size mod slide
}

func (s *pairsSchedule) rebuild(qs []engine.Query) {
	s.entries = s.entries[:0]
	for _, q := range qs {
		s.entries = append(s.entries, pairEntry{
			slide: q.Window.Slide,
			r0:    0,
			r1:    q.Window.Size % q.Window.Slide,
		})
	}
}

func (s *pairsSchedule) boundaryAtOrBefore(t int64) int64 {
	best := int64(math.MinInt64)
	for _, e := range s.entries {
		for _, r := range [2]int64{e.r0, e.r1} {
			b := floorTo(t, e.slide, r)
			if b > best {
				best = b
			}
		}
	}
	if best == math.MinInt64 {
		return 0
	}
	if best < 0 {
		best = 0
	}
	return best
}

func (s *pairsSchedule) boundaryAfter(t int64) int64 {
	best := int64(math.MaxInt64)
	for _, e := range s.entries {
		for _, r := range [2]int64{e.r0, e.r1} {
			b := floorTo(t, e.slide, r)
			for b <= t {
				b += e.slide
			}
			if b < best {
				best = b
			}
		}
	}
	return best
}

// floorTo returns the largest x <= t with x ≡ r (mod m).
func floorTo(t, m, r int64) int64 {
	d := t - r
	q := d / m
	if d%m < 0 {
		q--
	}
	return q*m + r
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}
