package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/streamline"
)

// The net benchmark records the cost of moving the exchange off-heap: the
// same keyed-shuffle pipeline runs single-process (in-process channel
// exchange) and distributed across two workers over loopback TCP (gob-framed
// record batches), at batch sizes 1, 64 and 256. The batch-size sweep is the
// point: per-record framing drowns in syscall and encoder overhead, while at
// the default batch size the TCP plane is expected to hold at least half the
// in-process rate. Results are written to BENCH_net.json by
// `streamline-bench -net`. The workers run as goroutines of this process —
// the wire is real loopback TCP; only process isolation is elided, keeping
// the measurement about the transport.

// NetRun is one (transport, batch size) measurement.
type NetRun struct {
	Transport     string  `json:"transport"` // "in-process" | "loopback-tcp"
	BatchSize     int     `json:"batch_size"`
	Records       int64   `json:"records"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// NetReport is the full sweep plus the loopback/in-process throughput ratio
// per batch size.
type NetReport struct {
	Workers int             `json:"workers"`
	Runs    []NetRun        `json:"runs"`
	Ratio   map[int]float64 `json:"ratio"`
}

// netEnv builds the benchmark pipeline: a deterministic generator keyed 256
// ways into a hash-shuffled sum, combiner off so every record crosses the
// exchange — in-process channels single-process, gob-over-TCP distributed.
func netEnv(n int64, batchSize, workers int, extra ...streamline.Option) *streamline.Env {
	opts := append([]streamline.Option{
		streamline.WithParallelism(2),
		streamline.WithCombiner(streamline.CombinerOff),
		streamline.WithBatchSize(batchSize),
		streamline.WithWorkers(workers),
	}, extra...)
	env := streamline.New(opts...)
	gen := streamline.Generator(n, func(sub, par int, i int64) streamline.Keyed[float64] {
		global := i*int64(par) + int64(sub)
		return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 256), Value: 1}
	})
	src := streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
	keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	streamline.Sink(sums, "out", func(streamline.Keyed[float64]) {})
	return env
}

// NetLocal measures the single-process run.
func NetLocal(n int64, batchSize int) (NetRun, error) {
	env := netEnv(n, batchSize, 0)
	start := time.Now()
	if err := env.Execute(context.Background()); err != nil {
		return NetRun{}, fmt.Errorf("in-process batch=%d: %w", batchSize, err)
	}
	el := time.Since(start).Seconds()
	return NetRun{
		Transport: "in-process", BatchSize: batchSize, Records: n,
		Seconds: el, RecordsPerSec: float64(n) / el,
	}, nil
}

// NetDistributed measures the same pipeline split across `workers`
// participants exchanging over loopback TCP. The workers run in-process
// (goroutines dialing the coordinator's real listener).
func NetDistributed(n int64, batchSize, workers int) (NetRun, error) {
	addrCh := make(chan string, 1)
	env := netEnv(n, batchSize, workers,
		streamline.WithOnListen(func(a string) { addrCh <- a }))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	errCh := make(chan error, workers)
	go func() {
		addr := <-addrCh
		for i := 0; i < workers; i++ {
			go func() {
				errCh <- streamline.RunWorker(ctx, addr, func(string, []string) (*streamline.Env, error) {
					return netEnv(n, batchSize, workers), nil
				})
			}()
		}
	}()
	start := time.Now()
	if err := env.ExecuteDistributed(ctx); err != nil {
		return NetRun{}, fmt.Errorf("loopback batch=%d: %w", batchSize, err)
	}
	el := time.Since(start).Seconds()
	for i := 0; i < workers; i++ {
		if err := <-errCh; err != nil {
			return NetRun{}, fmt.Errorf("loopback batch=%d worker: %w", batchSize, err)
		}
	}
	return NetRun{
		Transport: "loopback-tcp", BatchSize: batchSize, Records: n,
		Seconds: el, RecordsPerSec: float64(n) / el,
	}, nil
}

// Net workload sizes. Batch size 1 pays a gob message and a flush per
// record, so it runs a reduced record count to keep the sweep bounded.
const (
	NetRecords       int64 = 400_000
	NetQuickRecords  int64 = 60_000
	NetBatch1Divisor int64 = 4
)

// NetBatchSizes is the swept batch-size axis.
var NetBatchSizes = []int{1, 64, 256}

// Net runs the network transport sweep: both transports at every batch size.
func Net(quick bool) (*NetReport, error) {
	n := NetRecords
	if quick {
		n = NetQuickRecords
	}
	rep := &NetReport{Workers: 2, Ratio: map[int]float64{}}
	for _, bs := range NetBatchSizes {
		records := n
		if bs == 1 {
			records = n / NetBatch1Divisor
		}
		local, err := NetLocal(records, bs)
		if err != nil {
			return nil, err
		}
		dist, err := NetDistributed(records, bs, rep.Workers)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, local, dist)
		if local.RecordsPerSec > 0 {
			rep.Ratio[bs] = dist.RecordsPerSec / local.RecordsPerSec
		}
	}
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *NetReport) Table() *Table {
	t := &Table{
		ID:     "NET",
		Title:  "exchange transport: in-process channels vs loopback TCP",
		Claim:  "batching amortizes the network data plane to channel-like rates",
		Header: []string{"transport", "batch size", "records", "runtime", "throughput"},
	}
	for _, run := range r.Runs {
		t.Add(run.Transport, fmt.Sprintf("%d", run.BatchSize), fmtCount(float64(run.Records)),
			fmt.Sprintf("%.3fs", run.Seconds), fmtRate(run.RecordsPerSec))
	}
	for _, bs := range NetBatchSizes {
		if ratio, ok := r.Ratio[bs]; ok {
			t.Note("batch %d: loopback TCP at %.2fx the in-process rate (%d workers)", bs, ratio, r.Workers)
		}
	}
	return t
}

// WriteJSON records the report (the perf trajectory file BENCH_net.json).
func (r *NetReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
