package seglog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Crash-recovery tests: simulate a kill mid-append by mutilating the active
// segment (and its index) on disk after a hard close, then reopen and
// assert the topic truncates to the last valid record instead of failing.

// buildAndKill appends n records without closing cleanly (no final sync is
// simulated by editing the files afterward — the data was flushed, the
// "crash" is the mutation the caller applies next). Returns the store dir
// and the active segment path.
func buildAndKill(t *testing.T, n int) (dir, segPath string) {
	t.Helper()
	dir = t.TempDir()
	s, err := Open(dir, Options{IndexEvery: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tp, err := s.Topic("t")
	if err != nil {
		t.Fatalf("Topic: %v", err)
	}
	appendN(t, tp, n)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	v := filepath.Join(dir, "t", segName(0))
	return dir, v
}

func reopen(t *testing.T, dir string) *Topic {
	t.Helper()
	s, err := Open(dir, Options{IndexEvery: 64})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	tp, err := s.Topic("t")
	if err != nil {
		t.Fatalf("reopen topic: %v", err)
	}
	return tp
}

func TestRecoveryTornTailShortFrame(t *testing.T) {
	dir, seg := buildAndKill(t, 20)
	// Chop the file mid-way through the last frame: a short payload.
	st, _ := os.Stat(seg)
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	tp := reopen(t, dir)
	if got := tp.NextOffset(); got != 19 {
		t.Fatalf("NextOffset after torn tail = %d, want 19", got)
	}
	recs := readAll(t, tp, 0)
	if len(recs) != 19 {
		t.Fatalf("read %d records, want 19", len(recs))
	}
	// And the topic keeps working: appends continue at the recovered offset.
	off, err := tp.Append(0, 0, []byte("after-recovery"))
	if err != nil || off != 19 {
		t.Fatalf("append after recovery: off=%d err=%v", off, err)
	}
}

func TestRecoveryTornTailShortHeader(t *testing.T) {
	dir, seg := buildAndKill(t, 10)
	// Append 7 stray bytes — a crash after writing part of a header.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.Write([]byte("garbage"))
	f.Close()
	tp := reopen(t, dir)
	if got := tp.NextOffset(); got != 10 {
		t.Fatalf("NextOffset = %d, want 10 (stray header bytes dropped)", got)
	}
	if got := len(readAll(t, tp, 0)); got != 10 {
		t.Fatalf("read %d records, want 10", got)
	}
}

func TestRecoveryCorruptCRC(t *testing.T) {
	dir, seg := buildAndKill(t, 15)
	// Flip a byte inside the last frame's payload.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}
	tp := reopen(t, dir)
	if got := tp.NextOffset(); got != 14 {
		t.Fatalf("NextOffset after CRC corruption = %d, want 14", got)
	}
}

func TestRecoveryPartialIndex(t *testing.T) {
	dir, seg := buildAndKill(t, 30)
	idx := seg[:len(seg)-len(segSuffix)] + idxSuffix
	// Torn index write: chop mid-entry and append garbage.
	st, err := os.Stat(idx)
	if err != nil {
		t.Fatalf("stat idx: %v", err)
	}
	if st.Size() < idxEntryBytes {
		t.Fatalf("index too small to mutilate: %d bytes", st.Size())
	}
	if err := os.Truncate(idx, st.Size()-idxEntryBytes/2); err != nil {
		t.Fatalf("truncate idx: %v", err)
	}
	tp := reopen(t, dir)
	if got := tp.NextOffset(); got != 30 {
		t.Fatalf("NextOffset with torn index = %d, want 30", got)
	}
	// Positioned reads still work — the index was rebuilt at reopen.
	v, _ := tp.View()
	r, err := tp.OpenRange(v.Segments[0].Path, 0, v.Segments[0].Bytes, 25)
	if err != nil {
		t.Fatalf("OpenRange after index rebuild: %v", err)
	}
	defer r.Close()
	rec, ok, err := r.Next()
	if err != nil || !ok || rec.Offset != 25 {
		t.Fatalf("resume after rebuild: rec=%+v ok=%v err=%v", rec, ok, err)
	}
}

func TestRecoveryGarbageIndex(t *testing.T) {
	dir, seg := buildAndKill(t, 20)
	idx := seg[:len(seg)-len(segSuffix)] + idxSuffix
	if err := os.WriteFile(idx, []byte("this is not an index file at all"), 0o644); err != nil {
		t.Fatalf("write idx: %v", err)
	}
	tp := reopen(t, dir)
	if got := len(readAll(t, tp, 0)); got != 20 {
		t.Fatalf("read %d records with garbage index, want 20", got)
	}
}

func TestRecoveryStaleIndexFallsBackToScan(t *testing.T) {
	// A stale index entry pointing past a truncate must degrade a
	// positioned read to a scan, not corrupt it. Build the scenario by
	// hand-writing a bogus index while the store is closed.
	dir, seg := buildAndKill(t, 20)
	idx := seg[:len(seg)-len(segSuffix)] + idxSuffix
	st, _ := os.Stat(seg)
	// One absurd entry: offset 5 claims to start 1 byte before EOF.
	g := &segment{base: 0, path: seg, size: st.Size()}
	g.idx = []indexEntry{{Off: 5, Pos: st.Size() - 1}}
	if err := writeIndex(g); err != nil {
		t.Fatalf("writeIndex: %v", err)
	}
	_ = idx
	tp := reopen(t, dir)
	// Reopen rebuilds the index from the recovery scan, so even the bogus
	// entry is gone; the read must return every record.
	if got := len(readAll(t, tp, 0)); got != 20 {
		t.Fatalf("read %d records, want 20", got)
	}
}

func TestRecoveryMultiSegmentTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256, IndexEvery: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tp, _ := s.Topic("t")
	appendN(t, tp, 40)
	v, _ := tp.View()
	if len(v.Segments) < 2 {
		t.Fatalf("need multiple segments")
	}
	last := v.Segments[len(v.Segments)-1]
	total := tp.NextOffset()
	s.Close()

	// Tear the active segment's tail.
	st, _ := os.Stat(last.Path)
	if st.Size() == 0 {
		t.Skip("active segment empty after roll")
	}
	if err := os.Truncate(last.Path, st.Size()-3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	tp2 := reopen(t, dir)
	if got := tp2.NextOffset(); got != total-1 {
		t.Fatalf("NextOffset = %d, want %d (one record lost from the active segment only)", got, total-1)
	}
	recs := readAll(t, tp2, 0)
	if int64(len(recs)) != total-1 {
		t.Fatalf("read %d records, want %d", len(recs), total-1)
	}
	for i, rec := range recs {
		if rec.Offset != int64(i) {
			t.Fatalf("record %d has offset %d", i, rec.Offset)
		}
	}
}

func TestRecoveryEmptyActiveSegment(t *testing.T) {
	dir, seg := buildAndKill(t, 0)
	if st, err := os.Stat(seg); err != nil || st.Size() != 0 {
		t.Fatalf("expected empty segment: %v", err)
	}
	tp := reopen(t, dir)
	if got := tp.NextOffset(); got != 0 {
		t.Fatalf("NextOffset = %d, want 0", got)
	}
	appendN(t, tp, 3)
	if got := len(readAll(t, tp, 0)); got != 3 {
		t.Fatalf("read %d records, want 3", got)
	}
}

func TestRecoveryPreservesKeysAndTimestamps(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	tp, _ := s.Topic("t")
	for i := 0; i < 10; i++ {
		if _, err := tp.Append(int64(1000+i), uint64(i*i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()
	tp2 := reopen(t, dir)
	recs := readAll(t, tp2, 0)
	for i, rec := range recs {
		if rec.Ts != int64(1000+i) || rec.Key != uint64(i*i) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}
