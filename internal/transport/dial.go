package transport

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// DialPolicy shapes DialRetry's capped exponential backoff. The zero value
// picks sane defaults; set MaxWait to bound how long a peer may take to
// appear (workers racing a coordinator that has not bound its listener yet,
// mesh writers racing a peer that is still registering inbound channels).
type DialPolicy struct {
	// BaseDelay is the first retry delay (default 25ms). Each subsequent
	// retry doubles it up to MaxDelay, with equal jitter: the actual sleep
	// is uniformly drawn from [delay/2, delay), so a fleet of workers
	// restarting together does not reconverge on the listener in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry delay (default 1s).
	MaxDelay time.Duration
	// MaxWait bounds the total time spent dialing and waiting (default
	// 10s). The last error is returned once the budget is exhausted.
	MaxWait time.Duration
}

func (p DialPolicy) withDefaults() DialPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.MaxWait <= 0 {
		p.MaxWait = 10 * time.Second
	}
	return p
}

// DialRetry dials addr over TCP, retrying any dial failure (connection
// refused, name resolution hiccups, listener not yet bound) with capped
// exponential backoff plus jitter until the policy's MaxWait budget or the
// context expires. It is the one dial helper every transport component
// shares: the worker binary's initial dial, self-spawned workers, supervised
// rejoins, and mesh peer connections.
func DialRetry(ctx context.Context, addr string, p DialPolicy) (net.Conn, error) {
	p = p.withDefaults()
	deadline := time.Now().Add(p.MaxWait)
	var d net.Dialer
	delay := p.BaseDelay
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial %s: retries exhausted after %v: %w", addr, p.MaxWait, err)
		}
		// Equal jitter: half deterministic, half uniform.
		sleep := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		if until := time.Until(deadline); sleep > until {
			sleep = until
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
		}
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
