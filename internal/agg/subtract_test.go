package agg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSubtractOnEvictBasic(t *testing.T) {
	s := NewSubtractOnEvict(SumF64())
	s.Push(SumF64().Lift(3))
	s.Push(SumF64().Lift(4))
	if got := SumF64().Lower(s.Aggregate()); got != 7 {
		t.Fatalf("aggregate = %v", got)
	}
	s.PopFront()
	if got := SumF64().Lower(s.Aggregate()); got != 4 {
		t.Fatalf("after pop = %v", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSubtractOnEvictEmpty(t *testing.T) {
	s := NewSubtractOnEvict(SumF64())
	if got := SumF64().Lower(s.Aggregate()); got != 0 {
		t.Fatalf("empty aggregate = %v", got)
	}
}

func TestSubtractOnEvictRejectsNonInvertible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("min must be rejected")
		}
	}()
	NewSubtractOnEvict(MinF64())
}

func TestSubtractOnEvictPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewSubtractOnEvict(SumF64()).PopFront()
}

// Property: SubtractOnEvict matches Naive for every invertible standard
// function under random push/pop sequences.
func TestSubtractOnEvictMatchesNaive(t *testing.T) {
	for _, name := range []string{"sum", "count", "avg"} {
		fn := StdFnF64(name)
		f := func(ops []uint8) bool {
			s := NewSubtractOnEvict(fn)
			na := NewNaive(fn.Identity, fn.Combine)
			v := 0
			for _, op := range ops {
				if op%3 == 2 && s.Len() > 0 {
					s.PopFront()
					na.EvictFront()
				} else {
					a := fn.Lift(float64(v%13) - 6)
					v++
					s.Push(a)
					na.Append(a)
				}
				got := fn.Lower(s.Aggregate())
				want := fn.Lower(na.Aggregate())
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
