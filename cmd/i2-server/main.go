// Command i2-server runs the I2 interactive visualization server over a
// live synthetic time series (the STREAMLINE sensor-demo signal).
//
//	i2-server -addr :8080 -rate 1000
//
// Endpoints:
//
//	GET  /series?from=0&to=60000&width=600   one-shot viewport query
//	POST /view   {"from":0,"to":60000,"width":600}
//	GET  /stream?id=0                        SSE live columns
//	GET  /stats
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/i2"
	"repro/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rate := flag.Int64("rate", 1000, "samples per second")
	retain := flag.Int("retain", 1_000_000, "raw samples retained")
	flag.Parse()

	store := i2.NewStore(*retain, i2.WithTiers(100, 4, 5))
	srv := i2.NewServer(store)

	go func() {
		gen := workloads.TimeSeries{Seed: time.Now().UnixNano(), PerSec: *rate}
		start := time.Now()
		for i := int64(0); ; i++ {
			e := gen.At(i)
			// Pace generation to wall clock.
			due := start.Add(time.Duration(e.Ts) * time.Millisecond)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			srv.Ingest(i2.Point{Ts: e.Ts, V: e.Value})
		}
	}()

	log.Printf("i2-server listening on %s (rate %d/s)", *addr, *rate)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
