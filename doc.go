// Package repro is a from-scratch Go reproduction of STREAMLINE
// (Grulich, Rabl, Markl, Sidló, Benczur: "STREAMLINE — Streamlined Analysis
// of Data at Rest and Data in Motion", EDBT 2017): a unified batch/stream
// analysis platform in the architecture of Apache Flink, together with the
// paper's two research highlights — the Cutty aggregate-sharing engine for
// user-defined windows and the I2 interactive visualization system with its
// data-rate-independent M4 time-series aggregation.
//
// The importable product surface is the streamline package: a typed,
// generics-based pipeline API (Stream[T] handles carrying Keyed[T] records)
// fed through a composable Source[T] connector API — slices and files for
// data at rest, channels and generators for data in motion, and the Hybrid
// connector for the paper's headline scenario, replaying stored history and
// seamlessly continuing on the live stream. Everything lowers onto the
// untyped record engine in internal/core and internal/dataflow. Programs
// written against it — all examples/ and the CLIs — never perform a type
// assertion; the optimizer (operator chaining, adaptive combiner insertion,
// Cutty multi-query window sharing, architecture-sized parallelism) applies
// to typed plans unchanged.
//
// The examples tour the application scenarios:
//
//   - examples/quickstart — the smallest complete windowed pipeline
//   - examples/hybrid — at-rest→in-motion handoff: JSONL history replay
//     into a live channel, one plan across both
//   - examples/advertising — targeted-advertising CTR dashboards
//   - examples/retention — session windows for user retention
//   - examples/recommend — trending items and per-user taste profiles
//   - examples/weblang — multilingual Web classification, batch == stream
//   - examples/i2viz — I2/M4 interactive visualization
//
// The benchmarks in bench_test.go regenerate every experiment table
// (E1–E11).
package repro
