package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
)

// ErrRejoin marks a worker failure that is part of a supervised job's epoch
// restart rather than the end of the job: the coordinator's supervisor is
// about to run another epoch and this worker should redial. RunWorkerLoop
// does exactly that; callers driving RunWorker directly test for it with
// errors.Is.
var ErrRejoin = errors.New("transport: supervised epoch ended, worker should rejoin")

// BuildFunc rebuilds the pipeline graph inside a worker process. SPMD:
// the wire cannot carry operator closures, so the worker constructs the
// graph from code — from a pipeline registry keyed by the plan's pipeline
// name, or (self-spawned workers) by re-running the exact construction the
// parent ran. It returns the graph and the chaining flag, both of which
// must reproduce the coordinator's plan bit for bit.
type BuildFunc func(pipeline string, args []string) (*dataflow.Graph, bool, error)

// WorkerOption configures RunWorker / RunWorkerLoop.
type WorkerOption func(*workerOpts)

type workerOpts struct {
	dial DialPolicy
}

// WithWorkerDialPolicy sets the backoff policy for dialing (and, under
// supervision, redialing) the coordinator.
func WithWorkerDialPolicy(p DialPolicy) WorkerOption {
	return func(o *workerOpts) { o.dial = p }
}

func resolveWorkerOpts(opts []WorkerOption) workerOpts {
	var o workerOpts
	for _, f := range opts {
		f(&o)
	}
	return o
}

// RunWorker executes one worker's share of a distributed job: dial the
// coordinator (with retry/backoff), receive the plan, rebuild the graph,
// verify the fingerprint, run the assigned subtasks with a TCP mesh
// carrying the cross-participant edges, and stream checkpoint acks back.
// It returns when the share completes (nil), the coordinator aborts or
// disappears, or ctx is cancelled. Under a supervised coordinator, any
// failure that is part of an epoch restart wraps ErrRejoin. reg may be nil
// to disable metrics.
func RunWorker(ctx context.Context, coordAddr string, reg *metrics.Registry, build BuildFunc, opts ...WorkerOption) error {
	RegisterTypes()
	o := resolveWorkerOpts(opts)
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	conn, err := DialRetry(ctx, coordAddr, o.dial)
	if err != nil {
		return fmt.Errorf("worker: dial coordinator: %w", err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	var sendMu sync.Mutex
	// Until the plan arrives the write deadline is the dial policy's
	// conservative default; the plan's heartbeat timeout takes over after.
	wto := atomic.Int64{}
	wto.Store(int64(DefaultHeartbeatTimeout))
	send := func(msg ctrlMsg) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(time.Duration(wto.Load())))
		if err := enc.Encode(msg); err != nil {
			return err
		}
		return bw.Flush()
	}
	dec := gob.NewDecoder(conn)

	// The data listener binds before the graph exists so its address can
	// ride in the hello; the mesh adopts it once the plan arrives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("worker: data listen: %w", err)
	}
	if err := send(ctrlMsg{Kind: ctrlHello, Addr: ln.Addr().String()}); err != nil {
		ln.Close()
		return fmt.Errorf("worker: hello: %w", err)
	}
	var planEnv ctrlMsg
	if err := dec.Decode(&planEnv); err != nil {
		ln.Close()
		return fmt.Errorf("worker: receive plan: %w", err)
	}
	if planEnv.Kind != ctrlPlan || planEnv.Plan == nil {
		ln.Close()
		return fmt.Errorf("worker: expected plan, got message kind %d", planEnv.Kind)
	}
	p := planEnv.Plan
	hbInterval, hbTimeout := p.HeartbeatInterval, p.HeartbeatTimeout
	if hbInterval <= 0 {
		hbInterval = DefaultHeartbeatInterval
	}
	if hbTimeout <= 0 {
		hbTimeout = DefaultHeartbeatTimeout
	}
	wto.Store(int64(hbTimeout))
	// noRejoin latches when the coordinator's stop says the job is over
	// (success, or a supervisor whose restart budget is exhausted).
	var noRejoin atomic.Bool

	// Refuse to run rather than exchange streams against a different plan:
	// a fingerprint mismatch means divergent binaries or arguments.
	abort := func(err error) error {
		_ = send(ctrlMsg{Kind: ctrlDone, Err: err.Error()})
		ln.Close()
		return err
	}
	g, chaining, err := build(p.Pipeline, p.Args)
	if err != nil {
		return abort(fmt.Errorf("worker: build pipeline %q: %w", p.Pipeline, err))
	}
	if fp := core.SpecOf(g, chaining).Fingerprint(); fp != p.Fingerprint {
		return abort(fmt.Errorf("worker: plan fingerprint mismatch: local %.12s vs coordinator %.12s", fp, p.Fingerprint))
	}

	mesh := NewMesh(p.Self, ln, g, reg)
	defer mesh.Close()
	mesh.SetPeers(p.DataAddrs)

	triggers := make(chan int64, 16)
	acks := make(chan dataflow.Ack, 256)

	opts2 := []dataflow.JobOption{dataflow.WithChaining(chaining)}
	if reg != nil {
		opts2 = append(opts2, dataflow.WithMetrics(reg))
	}
	jb := dataflow.NewJob(g, opts2...)
	if p.Restore != nil {
		jb.SetRestore(p.Restore)
	}

	// Control reader: start opens the dial gate, triggers inject barriers,
	// stop (or a dropped connection) cancels the local share. Every Decode
	// sits under a read deadline refreshed by any control traffic — the
	// coordinator pings every interval, so a silent stream past the
	// timeout means the coordinator is gone or the path is blackholed.
	ctrlErr := make(chan error, 1)
	go func() {
		for {
			conn.SetReadDeadline(time.Now().Add(hbTimeout))
			var msg ctrlMsg
			if err := dec.Decode(&msg); err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					err = fmt.Errorf("heartbeat timeout (silent for %v)", hbTimeout)
				}
				ctrlErr <- fmt.Errorf("worker: coordinator connection lost: %w", err)
				cancel()
				return
			}
			switch msg.Kind {
			case ctrlStart:
				mesh.Start()
			case ctrlTrigger:
				select {
				case triggers <- msg.Ckpt:
				case <-ctx.Done():
					return
				}
			case ctrlStop:
				if !msg.Rejoin {
					noRejoin.Store(true)
				}
				if msg.Err != "" {
					ctrlErr <- fmt.Errorf("worker: stopped by coordinator: %s", msg.Err)
				} else {
					ctrlErr <- nil
				}
				cancel()
				return
			}
		}
	}()
	// Heartbeats to the coordinator; its reader deadline handles a dead us,
	// so send errors need no reaction here beyond stopping.
	go func() {
		t := time.NewTicker(hbInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := send(ctrlMsg{Kind: ctrlPing}); err != nil {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	// Ack pump: local subtask acknowledgements stream to the coordinator.
	go func() {
		for {
			select {
			case a := <-acks:
				if err := send(ctrlMsg{Kind: ctrlAck, Ack: &a}); err != nil {
					cancel()
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	// A broken data plane is a job failure even while control is healthy.
	go func() {
		select {
		case <-mesh.Failed():
			cancel()
		case <-ctx.Done():
		}
	}()

	runErr := jb.RunParticipant(ctx, &dataflow.Participation{
		Self:      p.Self,
		Placement: p.Placement,
		Transport: mesh,
		Triggers:  triggers,
		Acks:      acks,
		OnRunning: func() { _ = send(ctrlMsg{Kind: ctrlReady}) },
	})
	if runErr == nil {
		// Flush the remote Ends before reporting done.
		mesh.DrainOutbound()
	}
	// Prefer the specific cause over a bare context.Canceled.
	if merr := mesh.Err(); merr != nil && (runErr == nil || runErr == context.Canceled) {
		runErr = merr
	}
	select {
	case cerr := <-ctrlErr:
		if cerr != nil && (runErr == nil || runErr == context.Canceled) {
			runErr = cerr
		}
	default:
	}
	msg := ""
	if runErr != nil {
		msg = runErr.Error()
	}
	_ = send(ctrlMsg{Kind: ctrlDone, Err: msg})
	if runErr != nil && p.Supervised && !noRejoin.Load() && parent.Err() == nil {
		// The failure belongs to a supervised epoch and the coordinator did
		// not declare the job over: the caller's loop should redial. A
		// caller-cancelled context is this worker being shut down, never a
		// rejoin — checked via the parent, since our derived ctx is
		// cancelled on every exit path.
		runErr = fmt.Errorf("%w: %v", ErrRejoin, runErr)
	}
	return runErr
}

// RunWorkerLoop serves a supervised job across epochs: it runs RunWorker
// and redials the coordinator whenever the share ends with ErrRejoin — a
// worker that survived another worker's crash rejoins the recovered epoch.
// It returns when the job globally completes (nil), fails terminally, or
// ctx is cancelled.
func RunWorkerLoop(ctx context.Context, coordAddr string, reg *metrics.Registry, build BuildFunc, opts ...WorkerOption) error {
	for {
		err := RunWorker(ctx, coordAddr, reg, build, opts...)
		if err == nil || !errors.Is(err, ErrRejoin) {
			return err
		}
		// Give the supervisor a beat to tear the failed epoch down;
		// DialRetry's backoff absorbs the rest of its restart delay.
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return err
		}
	}
}
