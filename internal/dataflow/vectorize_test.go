package dataflow

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// capCollector accumulates Collect calls for direct operator-level tests.
type capCollector struct{ recs []Record }

func (c *capCollector) Collect(r Record) { c.recs = append(c.recs, r) }

// perRecordOutput drives op over the batch one OnRecord at a time and
// returns everything it emitted — the reference semantics OnBatch must
// reproduce exactly.
func perRecordOutput(op Operator, in []Record) []Record {
	out := &capCollector{}
	for _, r := range in {
		op.OnRecord(r, out)
	}
	return out.recs
}

// batchOutput drives op over the batch with one OnBatch call on a private
// copy (implementations may compact in place) and returns the delivered
// records in delivery order: out-collected first, then the returned run.
func batchOutput(op BatchedOperator, in []Record) []Record {
	b := append([]Record{}, in...)
	out := &capCollector{}
	ret := op.OnBatch(b, out)
	return append(out.recs, ret...)
}

// TestOnBatchMatchesOnRecord proves the vectorized contract for every
// stateless operator: OnBatch over a run is byte-identical to OnRecord per
// record, including the degenerate filters (drop-all, keep-all) and a
// flatmap whose per-record fan-out alternates between zero and three.
func TestOnBatchMatchesOnRecord(t *testing.T) {
	input := func() []Record {
		var in []Record
		for i := int64(0); i < 57; i++ {
			in = append(in, Data(i, uint64(i%7), float64(i)*1.5))
		}
		return in
	}

	cases := []struct {
		name string
		op   func() BatchedOperator
	}{
		{"map", func() BatchedOperator {
			return &MapOp{F: func(r Record) Record {
				r.Value = r.Value.(float64) * 2
				return r
			}}
		}},
		{"filter", func() BatchedOperator {
			return &FilterOp{F: func(r Record) bool { return int64(r.Value.(float64))%3 != 1 }}
		}},
		{"filter-drop-all", func() BatchedOperator {
			return &FilterOp{F: func(Record) bool { return false }}
		}},
		{"filter-keep-all", func() BatchedOperator {
			return &FilterOp{F: func(Record) bool { return true }}
		}},
		{"flatmap-0-and-3", func() BatchedOperator {
			return &FlatMapOp{F: func(r Record, out Collector) {
				if int64(r.Value.(float64))%2 == 0 {
					return // even inputs emit nothing
				}
				for j := 0; j < 3; j++ {
					out.Collect(Data(r.Ts, r.Key, r.Value.(float64)+float64(j)))
				}
			}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := perRecordOutput(tc.op(), input())
			got := batchOutput(tc.op(), input())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("OnBatch diverged from OnRecord:\n got %v\nwant %v", got, want)
			}
			// Batch splitting is the runtime's job; the operator must give
			// the same answer regardless of how a run is carved up.
			op := tc.op()
			var pieces []Record
			in := input()
			for lo := 0; lo < len(in); lo += 10 {
				hi := min(lo+10, len(in))
				pieces = append(pieces, batchOutput2(op, in[lo:hi])...)
			}
			if !reflect.DeepEqual(pieces, want) {
				t.Fatalf("chunked OnBatch diverged:\n got %v\nwant %v", pieces, want)
			}
		})
	}
}

// batchOutput2 is batchOutput but must copy the returned run immediately:
// an operator's scratch buffer (flatmap) is only valid until the next call.
func batchOutput2(op BatchedOperator, in []Record) []Record {
	b := append([]Record{}, in...)
	out := &capCollector{}
	ret := op.OnBatch(b, out)
	return append(out.recs, append([]Record{}, ret...)...)
}

// TestCollectSinkOnBatch proves the sink's one-lock append delivers exactly
// the per-record sequence.
func TestCollectSinkOnBatch(t *testing.T) {
	var in []Record
	for i := int64(0); i < 20; i++ {
		in = append(in, Data(i, uint64(i), float64(i)))
	}
	ref := &CollectSink{}
	for _, r := range in {
		ref.OnRecord(r, nil)
	}
	batched := &CollectSink{}
	if ret := batched.OnBatch(append([]Record{}, in...), nil); len(ret) != 0 {
		t.Fatalf("sink OnBatch forwarded %d records; sinks forward nothing", len(ret))
	}
	if !reflect.DeepEqual(batched.Records(), ref.Records()) {
		t.Fatalf("CollectSink batch path diverged")
	}
}

// TestFuncSinkOnBatch proves the function sink sees every record in order.
func TestFuncSinkOnBatch(t *testing.T) {
	var mu sync.Mutex
	var got []int64
	sink := &FuncSink{F: func(r Record) {
		mu.Lock()
		got = append(got, r.Ts)
		mu.Unlock()
	}}
	var in []Record
	for i := int64(0); i < 15; i++ {
		in = append(in, Data(i, 0, float64(i)))
	}
	sink.OnBatch(in, nil)
	for i, ts := range got {
		if ts != int64(i) {
			t.Fatalf("FuncSink batch order broken at %d: got ts %d", i, ts)
		}
	}
	if len(got) != len(in) {
		t.Fatalf("FuncSink saw %d of %d records", len(got), len(in))
	}
}

// vectorizedResults runs a generator -> rebalance -> map -> filter ->
// flatmap -> sink pipeline and returns the sink contents sorted, so runs
// with different physical execution strategies compare directly.
func vectorizedResults(t *testing.T, n int64, par int, opts ...JobOption) []Record {
	t.Helper()
	g := NewGraph("vec")
	src := g.AddSource("gen", par, func(sub, par int) SourceFunc {
		return &GenSource{N: n / int64(par), Gen: func(i int64) Record {
			return Data(i, uint64(i%13), float64(i%997))
		}}
	})
	m := g.AddOperator("scale", par, func() Operator {
		return &MapOp{F: func(r Record) Record {
			r.Value = r.Value.(float64)*3 + 1
			return r
		}}
	}, Edge{From: src, Part: Rebalance})
	f := g.AddOperator("band", par, func() Operator {
		return &FilterOp{F: func(r Record) bool { return int64(r.Value.(float64))%5 != 2 }}
	}, Edge{From: m, Part: Forward})
	fm := g.AddOperator("split", par, func() Operator {
		return &FlatMapOp{F: func(r Record, out Collector) {
			out.Collect(r)
			if int64(r.Value.(float64))%4 == 0 {
				out.Collect(Data(r.Ts, r.Key, -r.Value.(float64)))
			}
		}}
	}, Edge{From: f, Part: Forward})
	sink := &CollectSink{}
	g.AddOperator("out", 1, sink.Factory(), Edge{From: fm, Part: Rebalance})
	run(t, g, opts...)

	recs := sink.Records()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Ts != recs[j].Ts {
			return recs[i].Ts < recs[j].Ts
		}
		return recs[i].Value.(float64) < recs[j].Value.(float64)
	})
	return recs
}

// TestVectorizedChainsArePhysicalOnly proves WithVectorizedChains is a pure
// execution knob: identical sink contents with batching on and off, chained
// and unchained, at parallelism 1 and 4.
func TestVectorizedChainsArePhysicalOnly(t *testing.T) {
	const n = 4000
	for _, par := range []int{1, 4} {
		for _, chain := range []bool{true, false} {
			ref := vectorizedResults(t, n, par,
				WithChaining(chain), WithVectorizedChains(false))
			got := vectorizedResults(t, n, par,
				WithChaining(chain), WithVectorizedChains(true))
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("par=%d chaining=%v: vectorized results diverged (%d vs %d records)",
					par, chain, len(got), len(ref))
			}
			if len(ref) == 0 {
				t.Fatalf("par=%d chaining=%v: empty reference run", par, chain)
			}
		}
	}
}

// TestMixedChainFallsBackPerRecord proves a chain containing an operator
// without OnBatch still computes correctly on the vectorized path: the
// driver downgrades at the first non-batched operator.
func TestMixedChainFallsBackPerRecord(t *testing.T) {
	const n = 1000
	results := func(vec bool) []Record {
		g := NewGraph("mixed")
		src := g.AddSource("gen", 2, func(sub, par int) SourceFunc {
			return &GenSource{N: n, Gen: func(i int64) Record {
				return Data(i, uint64(i%7), float64(i))
			}}
		})
		m := g.AddOperator("scale", 2, func() Operator {
			return &MapOp{F: func(r Record) Record {
				r.Value = r.Value.(float64) + 0.5
				return r
			}}
		}, Edge{From: src, Part: Rebalance})
		// seqCapture implements only the per-record contract.
		cap := g.AddOperator("tap", 2, func() Operator {
			return &passThrough{}
		}, Edge{From: m, Part: Forward})
		f := g.AddOperator("band", 2, func() Operator {
			return &FilterOp{F: func(r Record) bool { return int64(r.Value.(float64))%2 == 0 }}
		}, Edge{From: cap, Part: Forward})
		sink := &CollectSink{}
		g.AddOperator("out", 1, sink.Factory(), Edge{From: f, Part: Rebalance})
		run(t, g, WithVectorizedChains(vec))
		recs := sink.Records()
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Ts != recs[j].Ts {
				return recs[i].Ts < recs[j].Ts
			}
			return recs[i].Value.(float64) < recs[j].Value.(float64)
		})
		return recs
	}
	ref := results(false)
	got := results(true)
	if len(ref) == 0 || !reflect.DeepEqual(got, ref) {
		t.Fatalf("mixed chain diverged: %d vs %d records", len(got), len(ref))
	}
}

// passThrough forwards every record and implements only the per-record
// contract, forcing the chain driver's fallback.
type passThrough struct{ Base }

func (p *passThrough) OnRecord(r Record, out Collector) { out.Collect(r) }

// TestUnchainedForwardEdgesTerminate is the regression test for the
// unchained Forward-edge deadlock: with chaining disabled each consumer
// subtask must listen only on its producer peer's channel — the rest of the
// row is never written, and waiting on it starved the End marker forever at
// parallelism > 1.
func TestUnchainedForwardEdgesTerminate(t *testing.T) {
	for _, par := range []int{2, 4} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			for _, vec := range []bool{false, true} {
				recs := vectorizedResults(t, 2000, par, WithChaining(false), WithVectorizedChains(vec))
				if len(recs) == 0 {
					t.Fatalf("par=%d vec=%v: no output", par, vec)
				}
			}
		})
	}
}
