package i2

import (
	"math/rand"
	"testing"
)

func fillStore(s *Store, n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Ts: int64(i), V: rng.NormFloat64() * 5}
		s.Append(pts[i])
	}
	return pts
}

func TestStoreLenAndSpan(t *testing.T) {
	s := NewStore(1000)
	if s.Len() != 0 {
		t.Fatalf("fresh store not empty")
	}
	if a, b := s.Span(); a != 0 || b != 0 {
		t.Fatalf("empty span = %d..%d", a, b)
	}
	fillStore(s, 100, 1)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if a, b := s.Span(); a != 0 || b != 99 {
		t.Fatalf("span = %d..%d", a, b)
	}
}

func TestStoreRetentionBound(t *testing.T) {
	s := NewStore(50)
	fillStore(s, 500, 2)
	if s.Len() != 50 {
		t.Fatalf("retention failed: %d", s.Len())
	}
	a, _ := s.Span()
	if a != 450 {
		t.Fatalf("oldest retained = %d, want 450", a)
	}
}

func TestStoreQueryMatchesDirectM4(t *testing.T) {
	s := NewStore(10000)
	pts := fillStore(s, 5000, 3)
	vp := Viewport{From: 1000, To: 4000, Width: 60}
	got := s.Query(vp)
	want := AggregateM4(pts, vp)
	if len(got) != len(want) {
		t.Fatalf("got %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("column %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStoreTieredQueryIsExact(t *testing.T) {
	// Tiers of width 10, 40, 160; a viewport whose pixel columns are 80
	// ticks wide aligns with the 40-tier.
	s := NewStore(100000, WithTiers(10, 4, 3))
	pts := fillStore(s, 50000, 4)
	vp := Viewport{From: 0, To: 48000, Width: 600} // pixel width 80
	if tw := s.QueriedFromTier(vp); tw != 40 {
		t.Fatalf("expected the 40-tier, got %d", tw)
	}
	got := s.Query(vp)
	want := AggregateM4(pts, vp)
	if len(got) != len(want) {
		t.Fatalf("got %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("column %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestStoreFineZoomFallsBackToRaw(t *testing.T) {
	s := NewStore(100000, WithTiers(10, 4, 3))
	fillStore(s, 2000, 5)
	vp := Viewport{From: 100, To: 200, Width: 100} // pixel width 1 < tier 10
	if tw := s.QueriedFromTier(vp); tw != 0 {
		t.Fatalf("fine zoom should use raw, got tier %d", tw)
	}
	cols := s.Query(vp)
	if len(cols) == 0 {
		t.Fatalf("no columns for fine zoom")
	}
	for _, c := range cols {
		if c.Count != 1 {
			t.Fatalf("pixel width 1 should hold single points, got %+v", c)
		}
	}
}

func TestStoreInvalidViewport(t *testing.T) {
	s := NewStore(100)
	fillStore(s, 10, 6)
	if got := s.Query(Viewport{From: 5, To: 5, Width: 10}); got != nil {
		t.Fatalf("invalid viewport returned columns")
	}
}

// Zoom/pan sequence: every query along the way must be exact vs direct M4.
func TestStoreInteractiveZoomPan(t *testing.T) {
	s := NewStore(100000, WithTiers(8, 4, 4))
	pts := fillStore(s, 60000, 7)
	views := []Viewport{
		{From: 0, To: 60000, Width: 100},     // overview
		{From: 20000, To: 40000, Width: 100}, // zoom
		{From: 25000, To: 30000, Width: 100}, // deeper
		{From: 26000, To: 26200, Width: 100}, // pixel width 2: raw
		{From: 30000, To: 30200, Width: 100}, // pan
	}
	for _, vp := range views {
		got := s.Query(vp)
		want := AggregateM4(pts, vp)
		if len(got) != len(want) {
			t.Fatalf("vp %+v: got %d cols want %d", vp, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vp %+v col %d: got %+v want %+v", vp, i, got[i], want[i])
			}
		}
	}
}
