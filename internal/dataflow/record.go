// Package dataflow implements STREAMLINE's execution substrate: a pipelined
// parallel dataflow engine in the architecture of Apache Flink (Carbone et
// al., IEEE Data Eng. Bull. 2015), the system foundation the paper builds
// on. Jobs are DAGs of operators; each operator runs as `parallelism`
// subtasks (goroutines) connected by bounded channels (providing natural
// backpressure, like Flink's credit-based network stack). Event time flows
// as watermarks, fault tolerance uses asynchronous barrier snapshotting
// (Flink's checkpoint algorithm), and bounded inputs are simply streams that
// end — batch and streaming execute on the identical code path, which is the
// paper's central architectural premise ("data at rest and data in motion on
// a single pipelined execution engine").
//
// # The batched exchange
//
// Records cross subtask boundaries in pooled batches, not one at a time —
// the same vectorization Flink's network stack applies by shipping
// serialized record buffers. Each sending subtask stages records per edge
// and per downstream subtask, and a staged batch is shipped:
//
//   - when it reaches Graph.BatchSize records (default DefaultBatchSize),
//   - when Graph.FlushInterval elapses (default DefaultFlushInterval) — the
//     latency guard for in-motion sources, and
//   - always before a control record: a watermark, checkpoint barrier or
//     end marker is appended behind the staged data and the batch is
//     shipped immediately, so per-channel ordering — and with it watermark
//     monotonicity and ABS barrier alignment — is preserved exactly.
//
// Receivers return consumed batches to a shared sync.Pool. Operator chains
// are unaffected: a fused chain passes records by direct Collect calls and
// batches only at real exchange boundaries. Batching is purely physical —
// the logical plan and its results are identical at every batch size; only
// the throughput/latency trade-off moves (bigger batches amortize channel
// hops, the flush interval bounds how stale an in-motion record may get).
//
// # Vectorized operators
//
// Receiving subtasks do not pay one virtual OnRecord dispatch per record:
// operators implementing BatchedOperator take whole contiguous runs of data
// records through OnBatch. The chain driver scans each inbound batch up to
// the next control record (watermarks, barriers and end markers split runs,
// so alignment and event-time ordering never change), hands the run through
// every batched operator in the chain — maps overwrite slots in place,
// filters compact survivors by copy-down, flatmaps emit into a reused
// scratch buffer — and routes the survivors into the outbound exchange
// under a single staging-lock acquisition. The first operator without
// OnBatch downgrades the rest of its chain to per-record Collect calls, so
// mixed chains stay correct, and WithVectorizedChains(false) disables the
// fast path entirely; results are byte-identical on both paths by contract
// (OnBatch must equal OnRecord applied in order). All stateless built-ins
// (MapOp, FilterOp, FlatMapOp, FuncSink, CollectSink, CombinerOp) are
// batched.
//
// Keyed operators are batched too (KeyedReduceOp, WindowOp, and — through
// BatchedEdgeAware, the two-input variant of the contract — WindowJoinOp).
// Their OnBatch groups each run by key in a reusable open-addressing
// scratch table and pays the per-key costs once per distinct key per run
// instead of once per record: one key-group hash (state.MapCell.RefFor
// resolves a KeyRef whose later accesses skip the hash), one state load,
// one fold or append pass over the key's gathered elements, one store.
// Deferred writes are invisible because control records split runs — a
// barrier can never observe mid-run state, so checkpoints are identical on
// both paths and a snapshot taken under one execution mode restores under
// the other. The exchange stager is run-aware in the same way: a routed run
// is hashed key by key but appended to each destination's staging buffer in
// contiguous slices under one lock acquisition. WithVectorizedKeyedOps(false)
// downgrades only the keyed operators and run routing (stateless chains stay
// batched) — the ablation baseline that isolates the keyed half; emission
// order and every value are byte-identical either way.
//
// # The splittable at-rest scan
//
// Data at rest enters through FileScanSource: files are chopped into
// newline-aligned byte-range Splits (quote-aware for CSV) by a ScanPlan
// shared across the source stage's subtasks, and the plan's queue assigns
// splits dynamically — a subtask that finishes early pulls the next pending
// split, so total scan work is one pass over the input regardless of
// parallelism (the pre-split design scanned the whole file in every subtask
// and discarded (p−1)/p of it). Snapshots record which splits are done plus
// the (split id, byte offset) of the in-flight one, so Restore Seeks to the
// position instead of re-reading, and — because the state is a work set,
// not a position per subtask — a recovered job may run the source at a
// different parallelism (MultiRestorable): the remaining splits simply
// redistribute. Legacy row-cursor snapshots are still accepted and convert
// to a compatibility mode (see splitScanState). Split assignment carries no
// timestamp order, so file sources emit no in-flight watermarks; bounded
// scans close out event time at end of stream.
//
// # Keyed state: key groups and asynchronous snapshots
//
// Keyed operators (KeyedReduceOp, WindowOp, WindowJoinOp) keep their
// per-key state in a state.KeyedState, whose physical unit is the key
// group: keys map to Hash64(key) % Graph.NumKeyGroups (a logical-plan
// constant), and key groups map onto subtasks by contiguous range.
// HashPartition edges route through the same assignment, so the subtask
// receiving a key always owns its state — and because checkpoints store one
// blob per (operator, key group) instead of per subtask, WithRestore works
// at a *different* parallelism: restore simply redistributes group blobs to
// the new subtask ranges. Per-subtask state (source positions) does not
// redistribute; restoring a rescaled source fails loudly.
//
// Snapshots are asynchronous end to end. At a barrier, a keyed operator
// takes only a copy-on-write capture (flag flips and scalar copies) before
// forwarding the barrier; the serialization into group blobs runs on a
// separate goroutine while the operator keeps processing — a mutation that
// would touch captured data clones it first. The coordinator completes a
// checkpoint only when every subtask's asynchronous serialization has
// landed, preserving ABS consistency exactly.
package dataflow

import (
	"fmt"

	"repro/internal/state"
)

// Kind discriminates the records flowing through channels.
type Kind uint8

const (
	// KindData is a payload element.
	KindData Kind = iota
	// KindWatermark advances event time; Ts carries the watermark.
	KindWatermark
	// KindBarrier is a checkpoint barrier; Ts carries the checkpoint id.
	KindBarrier
	// KindEnd marks end-of-stream on a channel (bounded inputs).
	KindEnd
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindWatermark:
		return "watermark"
	case KindBarrier:
		return "barrier"
	case KindEnd:
		return "end"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is the unit of exchange between operator subtasks.
type Record struct {
	Kind Kind
	// Ts is the event timestamp for data records, the watermark value for
	// watermarks, and the checkpoint id for barriers.
	Ts int64
	// Key is the partitioning key (meaningful after a KeyBy edge).
	Key uint64
	// Value is the payload. Values crossing a checkpointable operator's
	// state must be gob-serializable.
	Value any
}

// Data constructs a data record.
func Data(ts int64, key uint64, value any) Record {
	return Record{Kind: KindData, Ts: ts, Key: key, Value: value}
}

// Watermark constructs a watermark record.
func Watermark(wm int64) Record { return Record{Kind: KindWatermark, Ts: wm} }

// Barrier constructs a checkpoint barrier record.
func Barrier(ckpt int64) Record { return Record{Kind: KindBarrier, Ts: ckpt} }

// End constructs an end-of-stream record.
func End() Record { return Record{Kind: KindEnd} }

// WindowResult is the payload type emitted by the window operator. It is the
// dataflow-level rendering of engine.Result.
type WindowResult struct {
	QueryID    int
	Start, End int64
	Value      float64
	Count      int64
}

// Hash64 is the key hash used by hash partitioning and key-group
// assignment (FNV-1a over the 8 key bytes); exposed so tests can predict
// routing. It delegates to state.Hash64, the engine-wide definition.
func Hash64(key uint64) uint64 { return state.Hash64(key) }

// KeyOf hashes an arbitrary string to a partitioning key. Like Hash64 it
// delegates to internal/state, where all key hashing is defined once.
func KeyOf(s string) uint64 { return state.KeyOf(s) }
