package lang

// seedCorpora holds small, public-domain-style seed texts per language —
// enough trigram mass to separate the six languages reliably on sentence-
// length documents (verified by the accuracy tests). A production system
// would train on Wikipedia dumps; the detector code is identical.
var seedCorpora = map[string]string{
	"en": `the quick brown fox jumps over the lazy dog and runs through the
forest while the sun is shining brightly in the clear blue sky above the
mountains where many animals live together in peace and harmony with
nature every day brings new challenges and opportunities for those who
are willing to work hard and learn from their mistakes because knowledge
is power and education is the key to success in the modern world where
technology changes everything we know about communication and information
the government announced new policies yesterday that will affect millions
of people across the country including students workers and families who
depend on public services for their daily needs and wellbeing this is why
it matters that we should think about what happens when things change`,

	"de": `der schnelle braune fuchs springt über den faulen hund und läuft
durch den wald während die sonne hell am klaren blauen himmel über den
bergen scheint wo viele tiere friedlich zusammenleben jeder tag bringt
neue herausforderungen und möglichkeiten für diejenigen die bereit sind
hart zu arbeiten und aus ihren fehlern zu lernen denn wissen ist macht
und bildung ist der schlüssel zum erfolg in der modernen welt in der die
technologie alles verändert was wir über kommunikation wissen die
regierung kündigte gestern neue richtlinien an die millionen von menschen
im ganzen land betreffen werden einschließlich studenten arbeiter und
familien die für ihre täglichen bedürfnisse auf öffentliche dienste
angewiesen sind deshalb ist es wichtig dass wir darüber nachdenken`,

	"fr": `le rapide renard brun saute par dessus le chien paresseux et court
à travers la forêt pendant que le soleil brille dans le ciel bleu clair
au dessus des montagnes où de nombreux animaux vivent ensemble en paix
chaque jour apporte de nouveaux défis et de nouvelles opportunités pour
ceux qui sont prêts à travailler dur et à apprendre de leurs erreurs car
le savoir est le pouvoir et l éducation est la clé du succès dans le
monde moderne où la technologie change tout ce que nous savons sur la
communication le gouvernement a annoncé hier de nouvelles politiques qui
toucheront des millions de personnes à travers le pays y compris les
étudiants les travailleurs et les familles qui dépendent des services
publics pour leurs besoins quotidiens c est pourquoi il est important`,

	"es": `el rápido zorro marrón salta sobre el perro perezoso y corre por
el bosque mientras el sol brilla intensamente en el cielo azul claro
sobre las montañas donde muchos animales viven juntos en paz y armonía
cada día trae nuevos desafíos y oportunidades para aquellos que están
dispuestos a trabajar duro y aprender de sus errores porque el
conocimiento es poder y la educación es la clave del éxito en el mundo
moderno donde la tecnología cambia todo lo que sabemos sobre la
comunicación el gobierno anunció ayer nuevas políticas que afectarán a
millones de personas en todo el país incluidos estudiantes trabajadores
y familias que dependen de los servicios públicos para sus necesidades
diarias por eso es importante que pensemos en lo que sucede cuando`,

	"it": `la veloce volpe marrone salta sopra il cane pigro e corre
attraverso la foresta mentre il sole splende luminoso nel cielo azzurro
sopra le montagne dove molti animali vivono insieme in pace e armonia
ogni giorno porta nuove sfide e opportunità per coloro che sono disposti
a lavorare sodo e imparare dai propri errori perché la conoscenza è
potere e l istruzione è la chiave del successo nel mondo moderno dove la
tecnologia cambia tutto ciò che sappiamo sulla comunicazione il governo
ha annunciato ieri nuove politiche che influenzeranno milioni di persone
in tutto il paese compresi studenti lavoratori e famiglie che dipendono
dai servizi pubblici per i loro bisogni quotidiani ecco perché è
importante pensare a cosa succede quando le cose cambiano nella vita`,

	"hu": `a gyors barna róka átugrik a lusta kutya felett és átfut az erdőn
miközben a nap fényesen süt a tiszta kék égen a hegyek felett ahol sok
állat él együtt békében és harmóniában minden nap új kihívásokat és
lehetőségeket hoz azok számára akik hajlandóak keményen dolgozni és
tanulni a hibáikból mert a tudás hatalom és az oktatás a siker kulcsa a
modern világban ahol a technológia mindent megváltoztat amit a
kommunikációról tudunk a kormány tegnap új irányelveket jelentett be
amelyek emberek millióit érintik az egész országban beleértve a
diákokat a munkavállalókat és a családokat akik a közszolgáltatásoktól
függenek mindennapi szükségleteik kielégítésében ezért fontos hogy
elgondolkodjunk azon mi történik amikor a dolgok megváltoznak`,
}

// SampleSentences returns labelled held-out sentences per language used by
// tests and by the multilingual web-processing workload generator. These do
// not appear in the training corpora.
func SampleSentences() map[string][]string {
	return map[string][]string{
		"en": {
			"the weather report says it will rain tomorrow in the northern regions",
			"she opened the window and looked out at the busy street below",
			"scientists discovered a new species of butterfly in the rain forest",
		},
		"de": {
			"der wetterbericht sagt dass es morgen in den nördlichen regionen regnen wird",
			"sie öffnete das fenster und schaute auf die belebte straße hinunter",
			"wissenschaftler entdeckten eine neue schmetterlingsart im regenwald",
		},
		"fr": {
			"la météo annonce qu il pleuvra demain dans les régions du nord",
			"elle ouvrit la fenêtre et regarda la rue animée en dessous",
			"les scientifiques ont découvert une nouvelle espèce de papillon",
		},
		"es": {
			"el pronóstico del tiempo dice que lloverá mañana en las regiones del norte",
			"ella abrió la ventana y miró la calle concurrida de abajo",
			"los científicos descubrieron una nueva especie de mariposa en la selva",
		},
		"it": {
			"le previsioni del tempo dicono che domani pioverà nelle regioni settentrionali",
			"lei aprì la finestra e guardò la strada affollata sottostante",
			"gli scienziati hanno scoperto una nuova specie di farfalla nella foresta",
		},
		"hu": {
			"az időjárás jelentés szerint holnap esni fog az északi régiókban",
			"kinyitotta az ablakot és lenézett a forgalmas utcára",
			"a tudósok új pillangófajt fedeztek fel az esőerdőben",
		},
	}
}
