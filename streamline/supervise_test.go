package streamline_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/streamline"
)

// flakySource fails its first `failures` attempts: each reader emits until
// failAt, then — once a checkpoint has actually completed, so the recovery
// genuinely resumes mid-stream instead of restarting from scratch — reports
// an injected error. The attempt counter is shared across epochs, exactly
// like a transient external fault that eventually clears.
type flakySource struct {
	total    int64
	failAt   int64
	failures int32
	attempts *atomic.Int32
	backend  streamline.Backend
}

func (f *flakySource) Open(sub, par int) streamline.Reader[float64] {
	attempt := f.attempts.Add(1) - 1
	return &flakyReader{total: f.total, failAt: f.failAt, fail: attempt < f.failures, backend: f.backend}
}

type flakyReader struct {
	pos, total, failAt int64
	fail               bool
	backend            streamline.Backend
	err                error
}

func (r *flakyReader) Next() (streamline.Keyed[float64], streamline.ReadStatus) {
	if r.fail && r.pos >= r.failAt {
		if _, ok, _ := r.backend.Latest(); ok {
			r.err = fmt.Errorf("injected transient failure at position %d", r.pos)
			return streamline.Keyed[float64]{}, streamline.ReadEnd
		}
		// No checkpoint to resume from yet; stall until one completes so the
		// failure always tests a mid-stream recovery.
		time.Sleep(time.Millisecond)
		return streamline.Keyed[float64]{}, streamline.ReadIdle
	}
	if r.pos >= r.total {
		return streamline.Keyed[float64]{}, streamline.ReadEnd
	}
	i := r.pos
	r.pos++
	return streamline.Keyed[float64]{Ts: i, Key: uint64(i % 5), Value: float64(i)}, streamline.ReadData
}

func (r *flakyReader) Snapshot() ([]byte, error) {
	buf := make([]byte, binary.MaxVarintLen64)
	return buf[:binary.PutVarint(buf, r.pos)], nil
}

func (r *flakyReader) Restore(blob []byte) error {
	pos, n := binary.Varint(blob)
	if n <= 0 {
		return errors.New("flakyReader: bad cursor")
	}
	r.pos = pos
	return nil
}

func (r *flakyReader) Err() error { return r.err }

// TestExecuteSupervisedLocalRecoversExactlyOnce: the zero-worker supervision
// loop restores from the newest checkpoint and re-executes in-process; the
// Collect sink must roll back to its checkpointed length so every source
// position lands in the output exactly once despite two mid-stream failures.
func TestExecuteSupervisedLocalRecoversExactlyOnce(t *testing.T) {
	const total, failAt = 800, 600
	backend := streamline.NewMemoryBackend(0)
	var attempts atomic.Int32
	src := &flakySource{total: total, failAt: failAt, failures: 2, attempts: &attempts, backend: backend}

	env := streamline.New(
		streamline.WithParallelism(1),
		streamline.WithCheckpointing(backend, 10*time.Millisecond),
		streamline.WithSupervision(5, 10*time.Millisecond, 50*time.Millisecond),
	)
	paced := streamline.Paced[float64](src, 4000)
	stream := streamline.From(env, "flaky", paced, streamline.WithSourceParallelism(1))
	out := streamline.Collect(stream, "out")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := env.ExecuteSupervised(ctx); err != nil {
		t.Fatalf("supervised local run: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("source opened %d times, want 3 (two failures, one success)", got)
	}
	stats := env.RestartStats()
	if len(stats) != 2 {
		t.Fatalf("recorded %d restarts, want 2: %+v", len(stats), stats)
	}
	for _, st := range stats {
		if st.Checkpoint == 0 {
			t.Fatalf("restart %d resumed from scratch; the failure is gated on a completed checkpoint: %+v", st.Attempt, st)
		}
		if !strings.Contains(st.Cause, "injected transient failure") {
			t.Fatalf("restart %d cause %q does not carry the injected error", st.Attempt, st.Cause)
		}
	}

	recs := out.Records()
	if len(recs) != total {
		t.Fatalf("collected %d records, want exactly %d (exactly-once across restarts)", len(recs), total)
	}
	seen := make(map[int64]int, total)
	for _, r := range recs {
		seen[r.Ts]++
	}
	for i := int64(0); i < total; i++ {
		if seen[i] != 1 {
			t.Fatalf("position %d collected %d times, want exactly once", i, seen[i])
		}
	}
}

// brokenSource fails every attempt — the permanent fault that must exhaust
// the local supervision loop's restart budget.
type brokenSource struct{ attempts *atomic.Int32 }

func (b brokenSource) Open(sub, par int) streamline.Reader[float64] {
	b.attempts.Add(1)
	return &brokenReader{}
}

type brokenReader struct{ i int64 }

func (r *brokenReader) Next() (streamline.Keyed[float64], streamline.ReadStatus) {
	if r.i < 5 {
		r.i++
		return streamline.Keyed[float64]{Ts: r.i, Value: 1}, streamline.ReadData
	}
	return streamline.Keyed[float64]{}, streamline.ReadEnd
}
func (r *brokenReader) Snapshot() ([]byte, error) { return nil, nil }
func (r *brokenReader) Restore([]byte) error      { return nil }
func (r *brokenReader) Err() error                { return errors.New("injected permanent failure") }

func TestExecuteSupervisedLocalExhaustsBudget(t *testing.T) {
	var attempts atomic.Int32
	env := streamline.New(
		streamline.WithParallelism(1),
		streamline.WithSupervision(1, time.Millisecond, 5*time.Millisecond),
	)
	stream := streamline.From(env, "broken", brokenSource{attempts: &attempts}, streamline.WithSourceParallelism(1))
	streamline.Collect(stream, "out")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := env.ExecuteSupervised(ctx)
	if err == nil {
		t.Fatal("a permanently failing job must not report success")
	}
	if !strings.Contains(err.Error(), "restart budget (1) exhausted") {
		t.Fatalf("error %q does not surface the exhausted budget", err)
	}
	if !strings.Contains(err.Error(), "injected permanent failure") {
		t.Fatalf("error %q does not carry the root cause", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("source opened %d times, want 2 (initial + one restart)", got)
	}
	if stats := env.RestartStats(); len(stats) != 1 {
		t.Fatalf("recorded %d restarts, want 1: %+v", len(stats), stats)
	}
}

// startWorkerLoops is startWorkers for supervised jobs: each worker runs
// RunWorkerLoop, so it redials and rejoins across epoch restarts. Worker
// n-1 runs under victimCtx so the test can crash it.
func startWorkerLoops(ctx context.Context, n int, addrCh <-chan string, victimCtx context.Context, build func() *streamline.Env) (wait func() []error) {
	errCh := make(chan error, n)
	go func() {
		var addr string
		select {
		case addr = <-addrCh:
		case <-ctx.Done():
			for i := 0; i < n; i++ {
				errCh <- ctx.Err()
			}
			return
		}
		for i := 0; i < n; i++ {
			wctx := ctx
			if victimCtx != nil && i == n-1 {
				wctx = victimCtx
			}
			go func(wctx context.Context) {
				errCh <- streamline.RunWorkerLoop(wctx, addr, func(string, []string) (*streamline.Env, error) {
					return build(), nil
				}, streamline.WithWorkerDialPolicy(streamline.DialPolicy{BaseDelay: 5 * time.Millisecond, MaxWait: 5 * time.Second}))
			}(wctx)
		}
	}()
	return func() []error {
		errs := make([]error, n)
		for i := range errs {
			errs[i] = <-errCh
		}
		return errs
	}
}

// TestExecuteSupervisedDistributedKillWorker: crash one of two workers
// mid-checkpoint under load; the supervised coordinator restores the newest
// snapshot and degrades onto the surviving worker, and the output stays
// byte-identical to an unfaulted single-process run.
func TestExecuteSupervisedDistributedKillWorker(t *testing.T) {
	localEnv, localOut := buildDistWindowed(2, 0, 0)
	execute(t, localEnv.Execute)
	want := renderWindows(localOut)

	backend := streamline.NewMemoryBackend(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	addrCh := make(chan string, 1)
	supEnv, supOut := buildDistWindowed(2, 2, 4_000,
		streamline.WithCheckpointing(backend, 15*time.Millisecond),
		streamline.WithSupervision(6, 10*time.Millisecond, 50*time.Millisecond),
		streamline.WithHeartbeat(20*time.Millisecond, 500*time.Millisecond),
		streamline.WithRejoinWindow(500*time.Millisecond),
		streamline.WithOnListen(func(a string) { addrCh <- a }))
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	go func() {
		for {
			if _, ok, _ := backend.Latest(); ok {
				killVictim()
				return
			}
			select {
			case <-victimCtx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	wait := startWorkerLoops(ctx, 2, addrCh, victimCtx, func() *streamline.Env {
		env, _ := buildDistWindowed(2, 2, 4_000, streamline.WithCheckpointing(backend, 15*time.Millisecond))
		return env
	})
	if err := supEnv.ExecuteSupervised(ctx); err != nil {
		t.Fatalf("supervised distributed run: %v", err)
	}
	wait() // the victim's error is the kill; the survivor exits nil

	stats := supEnv.RestartStats()
	if len(stats) == 0 {
		t.Skip("job finished before the kill on this machine")
	}
	if stats[0].Workers != 1 {
		t.Fatalf("first recovery ran with %d workers, want degradation onto the 1 survivor", stats[0].Workers)
	}
	for _, st := range stats {
		if st.Downtime <= 0 {
			t.Fatalf("restart %d has non-positive downtime: %+v", st.Attempt, st)
		}
	}
	if got := renderWindows(supOut); got != want {
		t.Fatalf("supervised recovery diverged from local run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
