package dataflow

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/window"
)

// encodeLegacyCursor produces a pre-split source snapshot blob: the
// fileCursorState{Next} gob that LineFileSource/CSVFileSource used to write.
func encodeLegacyCursor(t *testing.T, next int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fileCursorState{Next: next}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A legacy (pre-split) snapshot blob must be recognized by the versioned
// decoder and restore to the right row: the reader continues the old
// round-robin scan from the recorded index instead of failing or replaying
// from the start.
func TestLegacySnapshotRestoresToTheRightRow(t *testing.T) {
	path, mkPlan := mkLinePlan(t, 20, 0)
	_ = path
	src := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := src.Restore(encodeLegacyCursor(t, 7)); err != nil {
		t.Fatal(err)
	}
	data, _ := drainData(t, src, 100)
	if len(data) != 13 {
		t.Fatalf("restored legacy cursor emitted %d rows, want 13 (rows 7..19)", len(data))
	}
	for i, r := range data {
		if want := fmt.Sprintf("v%d", 7+i); r.Value.(string) != want {
			t.Fatalf("row %d = %q, want %q", i, r.Value, want)
		}
		// Legacy mode hands the decode the row *index*, not the byte offset:
		// the job's checkpointed downstream state is in the pre-split
		// default-timestamp domain and replayed rows must stay in it.
		if r.Ts != int64(7+i) {
			t.Fatalf("row %d carries ts %d, want row index %d", i, r.Ts, 7+i)
		}
	}

	// The converted state keeps round-tripping: a snapshot taken after the
	// legacy restore resumes at the position the scan reached.
	src2 := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := src2.Restore(encodeLegacyCursor(t, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := src2.Next(); !ok {
			t.Fatalf("ended early")
		}
	}
	blob, err := src2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	src3 := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := src3.Restore(blob); err != nil {
		t.Fatal(err)
	}
	rest, _ := drainData(t, src3, 100)
	if len(rest) != 15 || rest[0].Value.(string) != "v5" {
		t.Fatalf("round-tripped legacy state resumed at %v (%d rows), want v5 (15 rows)", rest[0].Value, len(rest))
	}
}

// Legacy cursors are positional (row index modulo the old parallelism), so a
// multi-subtask legacy snapshot restores each subtask's stripe — and refuses
// a different parallelism with a useful error.
func TestLegacySnapshotMultiSubtaskAndRescaleRejection(t *testing.T) {
	_, mkPlan := mkLinePlan(t, 20, 0)
	blobs := map[int][]byte{
		0: encodeLegacyCursor(t, 6),
		1: encodeLegacyCursor(t, 7),
	}
	plan := mkPlan()
	for sub, wantFirst := range map[int]string{0: "v6", 1: "v7"} {
		src := &FileScanSource{Plan: plan, Subtask: sub, Parallelism: 2, DecodeLine: lineDecode}
		if err := src.RestoreAll(sub, 2, blobs); err != nil {
			t.Fatal(err)
		}
		data, _ := drainData(t, src, 100)
		if len(data) != 7 {
			t.Fatalf("subtask %d emitted %d rows, want 7", sub, len(data))
		}
		if data[0].Value.(string) != wantFirst {
			t.Fatalf("subtask %d resumed at %v, want %s", sub, data[0].Value, wantFirst)
		}
		for _, r := range data {
			idx, _ := strconv.Atoi(strings.TrimPrefix(r.Value.(string), "v"))
			if idx%2 != sub {
				t.Fatalf("subtask %d saw row %d (wrong stripe)", sub, idx)
			}
		}
	}

	rescaled := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 4, DecodeLine: lineDecode}
	err := rescaled.RestoreAll(0, 4, blobs)
	if err == nil || !strings.Contains(err.Error(), "legacy") {
		t.Fatalf("legacy rescale error = %v, want a legacy-parallelism error", err)
	}
}

// Split-mode snapshots are parallelism-agnostic: two readers consume part of
// the scan, their blobs restore into a stage of four, and the union of all
// emissions is exactly-once.
func TestSplitSnapshotsRedistributeAcrossParallelism(t *testing.T) {
	_, mkPlan := mkLinePlan(t, 60, 48)
	plan := mkPlan()
	old := []*FileScanSource{
		{Plan: plan, Subtask: 0, Parallelism: 2, DecodeLine: lineDecode},
		{Plan: plan, Subtask: 1, Parallelism: 2, DecodeLine: lineDecode},
	}
	seen := map[string]int{}
	for i := 0; i < 18; i++ { // partial, interleaved consumption
		r, ok := old[i%2].Next()
		if !ok {
			t.Fatalf("scan ended early")
		}
		seen[r.Value.(string)]++
	}
	blobs := map[int][]byte{}
	for sub, src := range old {
		blob, err := src.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		blobs[sub] = blob
	}

	newPlan := mkPlan()
	var readers []*FileScanSource
	for sub := 0; sub < 4; sub++ {
		r := &FileScanSource{Plan: newPlan, Subtask: sub, Parallelism: 4, DecodeLine: lineDecode}
		if err := r.RestoreAll(sub, 4, blobs); err != nil {
			t.Fatal(err)
		}
		readers = append(readers, r)
	}
	for _, r := range readers {
		data, _ := drainData(t, r, 1000)
		for _, rec := range data {
			seen[rec.Value.(string)]++
		}
	}
	if len(seen) != 60 {
		t.Fatalf("union covers %d lines, want 60", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("line %q emitted %d times across the rescaled restore", v, n)
		}
	}
}

// A checkpoint taken after a restore but before every resumed in-flight
// cursor is re-acquired must keep those resume offsets (subtask 0 carries
// them as Pending): a second recovery would otherwise re-scan such splits
// from their start and duplicate records consumed before the first crash.
func TestPendingResumedSplitSurvivesSecondRestore(t *testing.T) {
	_, mkPlan := mkLinePlan(t, 60, 48)
	plan := mkPlan()
	old := []*FileScanSource{
		{Plan: plan, Subtask: 0, Parallelism: 2, DecodeLine: lineDecode},
		{Plan: plan, Subtask: 1, Parallelism: 2, DecodeLine: lineDecode},
	}
	seen := map[string]int{}
	for i := 0; i < 20; i++ { // both subtasks end up mid-split
		r, ok := old[i%2].Next()
		if !ok {
			t.Fatalf("scan ended early")
		}
		seen[r.Value.(string)]++
	}
	blobs1 := map[int][]byte{}
	for sub, src := range old {
		blob, err := src.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		blobs1[sub] = blob
	}

	// First recovery at parallelism 1: re-acquire one of the resumed
	// cursors (3 records), then checkpoint while the other still sits
	// unacquired in the queue.
	r1 := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := r1.RestoreAll(0, 1, blobs1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r, ok := r1.Next()
		if !ok {
			t.Fatalf("restored scan ended early")
		}
		seen[r.Value.(string)]++
	}
	blob2, err := r1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Second recovery, from the post-restore checkpoint: the union of
	// everything consumed before each crash and everything emitted now must
	// cover the 60 lines exactly once.
	r2 := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := r2.RestoreAll(0, 1, map[int][]byte{0: blob2}); err != nil {
		t.Fatal(err)
	}
	rest, _ := drainData(t, r2, 1000)
	for _, r := range rest {
		seen[r.Value.(string)]++
	}
	if len(seen) != 60 {
		t.Fatalf("union covers %d lines, want 60", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("line %q emitted %d times across two recoveries", v, n)
		}
	}
}

// Scan observability: records_out, bytes_scanned and splits_completed are
// per source node and must sum correctly across subtasks — records to the
// line count, bytes to the exact input size (splits tile the file), splits
// to the planned split count.
func TestScanMetricsSumAcrossSubtasks(t *testing.T) {
	var b strings.Builder
	const n = 300
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "line-%04d-%s\n", i, strings.Repeat("p", i%13))
	}
	content := b.String()
	path := writeTempFile(t, "metered.txt", content)

	cfg := ScanConfig{Input: path, SplitSize: 512}
	wantSplits := (int64(len(content)) + 511) / 512

	reg := metrics.NewRegistry()
	g := NewGraph("scan-metrics")
	src := g.AddSource("scan", 4, LineSourceFactory(cfg, lineDecode))
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: src, Part: Rebalance})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := NewJob(g, WithMetrics(reg)).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("node.scan.records_out").Value(); got != n {
		t.Fatalf("records_out = %d, want %d", got, n)
	}
	if got := reg.Counter("node.scan.bytes_scanned").Value(); got != int64(len(content)) {
		t.Fatalf("bytes_scanned = %d, want %d", got, len(content))
	}
	if got := reg.Counter("node.scan.splits_completed").Value(); got != wantSplits {
		t.Fatalf("splits_completed = %d, want %d", got, wantSplits)
	}
	if got := len(sink.Records()); got != n {
		t.Fatalf("sink saw %d records, want %d", got, n)
	}
}

// buildScanRecoveryGraph builds the kill/recover job over a file scan: lines
// carry integers, the window op sums per key. The scan emits no in-flight
// watermarks, so windows fire on the end-of-stream close-out; the sink
// dedups by (key, query, start) making replays idempotent.
func buildScanRecoveryGraph(path string, srcPar int, perSec float64, sink *CollectSink) *Graph {
	g := NewGraph("scan-recovery")
	decode := func(line []byte, off int64) (Record, bool, error) {
		i, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return Record{}, false, err
		}
		return Data(i, uint64(i%4), 1.0), true, nil
	}
	factory := LineSourceFactory(ScanConfig{Input: path, SplitSize: 2048}, decode)
	src := g.AddSource("scan", srcPar, func(sub, par int) SourceFunc {
		inner := factory(sub, par)
		if perSec > 0 {
			return &PacedSource{PerSec: perSec, Inner: inner}
		}
		return inner
	})
	win := g.AddOperator("win", 2, NewWindowOp(
		WindowQuery{Spec: window.Tumbling(50), Fn: agg.SumF64()},
	), Edge{From: src, Part: HashPartition})
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: win, Part: Rebalance})
	return g
}

// The tentpole recovery guarantee: kill a checkpointing file scan running at
// source parallelism 2 mid-scan, restore at source parallelism 1 and 4 —
// the pending splits redistribute, in-flight splits resume at their byte
// offsets, and the deduplicated window results equal a failure-free run (no
// record lost or duplicated across the split reassignment).
func TestFileScanKillRecoverRescaledSource(t *testing.T) {
	const n = 6000
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	path := writeTempFile(t, "recovery.txt", b.String())

	refSink := &CollectSink{}
	run(t, buildScanRecoveryGraph(path, 2, 0, refSink))
	want := collectWindows(t, refSink)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	for _, restorePar := range []int{1, 4} {
		restorePar := restorePar
		t.Run(fmt.Sprintf("to-parallelism-%d", restorePar), func(t *testing.T) {
			backend := state.NewMemoryBackend(0)
			crashSink := &CollectSink{}
			g1 := buildScanRecoveryGraph(path, 2, 12000, crashSink)
			job1 := NewJob(g1, WithCheckpointing(backend, 20*time.Millisecond))
			ctx1, cancel1 := context.WithTimeout(context.Background(), 120*time.Millisecond)
			err := job1.Run(ctx1)
			cancel1()
			if err == nil {
				got := collectWindows(t, crashSink)
				assertWindowsEqual(t, got, want)
				t.Skip("job completed before kill; recovery path not exercised on this machine")
			}
			snap, ok, _ := backend.Latest()
			if !ok {
				t.Skip("no checkpoint completed before kill")
			}

			g2 := buildScanRecoveryGraph(path, restorePar, 0, crashSink)
			job2 := NewJob(g2, WithRestore(snap), WithCheckpointing(backend, 25*time.Millisecond))
			ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel2()
			if err := job2.Run(ctx2); err != nil {
				t.Fatalf("recovery run at source parallelism %d failed: %v", restorePar, err)
			}
			assertWindowsEqual(t, collectWindows(t, crashSink), want)
		})
	}
}

// A mixed-phase hybrid snapshot (one subtask already past the handoff with
// live records consumed, another still in history) must refuse a rescaled
// restore when the live source cannot redistribute — silently resetting the
// live cursor would replay already-checkpointed live records.
func TestHybridMixedPhaseRescaleRejectsPositionalLive(t *testing.T) {
	_, mkPlan := mkLinePlan(t, 6, 8) // several small splits
	mk := func(plan *ScanPlan, sub, par int) *HybridSource {
		return &HybridSource{
			History: &FileScanSource{Plan: plan, Subtask: sub, Parallelism: par, DecodeLine: lineDecode},
			Live:    &GenSource{N: 50, WatermarkEvery: 1000, Gen: func(i int64) Record { return Data(100+i, 0, float64(i)) }},
		}
	}
	plan := mkPlan()
	crossed, inHistory := mk(plan, 0, 2), mk(plan, 1, 2)
	// Subtask 1 starts one split, then subtask 0 drains the rest, crosses
	// the handoff, and consumes 5 live records.
	if r, ok := inHistory.Next(); !ok || r.Kind != KindData {
		t.Fatalf("subtask 1 first Next = %+v ok=%v, want history data", r, ok)
	}
	liveSeen := 0
	for liveSeen < 5 {
		r, ok := crossed.Next()
		if !ok {
			t.Fatalf("subtask 0 ended early")
		}
		if r.Kind == KindData && r.Ts >= 100 {
			liveSeen++
		}
	}
	blobs := map[int][]byte{}
	for sub, src := range map[int]*HybridSource{0: crossed, 1: inHistory} {
		blob, err := src.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		blobs[sub] = blob
	}

	// Rescale: the history (splits) would redistribute, but subtask 0's
	// live state holds a consumed position and GenSource is positional —
	// the restore must refuse rather than silently reset the live cursor
	// and replay checkpointed live records.
	err := mk(mkPlan(), 0, 4).RestoreAll(0, 4, blobs)
	if err == nil || !strings.Contains(err.Error(), "live") {
		t.Fatalf("mixed-phase rescale = %v, want a live-state error", err)
	}

	// Same parallelism restores positionally: subtask 0 re-enters the
	// history phase (pending splits exist), finishes it, and resumes the
	// live stream at record 5 — ts 105, nothing replayed.
	plan2 := mkPlan()
	resumed := mk(plan2, 0, 2)
	if err := resumed.RestoreAll(0, 2, blobs); err != nil {
		t.Fatal(err)
	}
	for {
		r, ok := resumed.Next()
		if !ok {
			t.Fatalf("resumed subtask 0 ended before reaching the live phase")
		}
		if r.Kind == KindData && r.Ts >= 100 {
			if r.Ts != 105 {
				t.Fatalf("first live record after restore has ts %d, want 105 (live records 100..104 were checkpointed as consumed)", r.Ts)
			}
			break
		}
	}
}

// Split IDs are positional in the plan, so a restore whose inputs chop
// differently — a changed split size, or files added to the scanned
// directory — must be refused instead of silently remapping completed
// ranges onto different bytes.
func TestRestoreRejectsChangedPlanGeometry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "v%d\n", i)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	src := &FileScanSource{Plan: &ScanPlan{Inputs: []string{dir}, SplitSize: 32},
		Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	for i := 0; i < 5; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("ended early")
		}
	}
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Different split size: same bytes, different chopping.
	resized := &FileScanSource{Plan: &ScanPlan{Inputs: []string{dir}, SplitSize: 64},
		Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := resized.Restore(blob); err == nil || !strings.Contains(err.Error(), "split size changed") {
		t.Fatalf("restore with a different split size = %v, want a geometry error", err)
	}

	// A file added to the scanned directory shifts every later split ID.
	if err := os.WriteFile(filepath.Join(dir, "added.txt"), []byte("x\ny\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	grown := &FileScanSource{Plan: &ScanPlan{Inputs: []string{dir}, SplitSize: 32},
		Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := grown.Restore(blob); err == nil || !strings.Contains(err.Error(), "changed since the checkpoint") {
		t.Fatalf("restore after the input set grew = %v, want a geometry error", err)
	}

	// Unchanged inputs restore fine.
	same := &FileScanSource{Plan: &ScanPlan{Inputs: []string{dir}, SplitSize: 32},
		Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := os.Remove(filepath.Join(dir, "added.txt")); err != nil {
		t.Fatal(err)
	}
	if err := same.Restore(blob); err != nil {
		t.Fatalf("restore with unchanged inputs failed: %v", err)
	}
}

// The versioned decoder must reject snapshots from a future format rather
// than silently misreading them.
func TestScanStateUnknownVersionRejected(t *testing.T) {
	blob, err := encodeScanState(splitScanState{V: 99, CurID: -1, Legacy: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeScanState(blob); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("decode of version 99 = %v, want a version error", err)
	}
}
