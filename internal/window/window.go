// Package window implements STREAMLINE's window semantics in the style of
// Cutty (Carbone et al., CIKM 2016): windows are *deterministic user-defined
// window functions* (UDWFs). An assigner observes every element of an
// in-order stream (and every watermark) and declares window begins and ends
// through a Context. Determinism — the declarations depend only on the
// stream prefix observed so far — is the property that makes shared slicing
// correct: a slice boundary is cut at every window begin, so every window is
// a union of whole slices.
//
// Timestamps are int64 ticks; by convention the examples and benches use
// milliseconds. Element positions are 0-based stream offsets, so count-based
// windows use the same mechanism as time-based ones.
//
// Engines must call OnElement *before* incorporating the element, so a
// Close issued from OnElement excludes the current element, and an Open
// issued from OnElement places the slice boundary immediately before it.
package window

// Context is the callback surface through which an Assigner declares window
// boundaries. Implementations are provided by the window aggregation engines
// (internal/cutty, internal/baselines) and by the test Recorder.
//
// The two close variants make the content boundary explicit, which is what
// lets engines resolve window contents from shared slices without inspecting
// individual elements:
//
//   - CloseHere: the window's content ends at the current boundary — before
//     the element being processed (from OnElement), or after everything seen
//     so far (from OnTime). Used when the assigner knows the trigger point
//     itself delimits the content (sessions split by a gap element, count
//     windows, punctuation markers, end-of-stream flushes).
//
//   - CloseAt: the window's content is exactly the elements with timestamp
//     < cutoff. Only meaningful for time-measured windows and only needed
//     from OnTime, where the watermark may have overtaken elements that
//     belong to *later* windows (e.g. sliding windows whose end passed while
//     newer elements already arrived).
type Context interface {
	// Open declares that a window identified by id begins at the current
	// boundary: immediately before the element being processed when called
	// from OnElement, or at the current watermark when called from OnTime.
	// Ids must be unique among concurrently open windows of one query;
	// assigners conventionally use the window's start timestamp or start
	// position.
	Open(id int64)
	// CloseHere completes window id with content up to the current boundary.
	// end is the window's logical end, reported with the result.
	CloseHere(id, end int64)
	// CloseAt completes window id with content = elements with ts < cutoff.
	// end is the window's logical end, reported with the result (usually
	// equal to cutoff).
	CloseAt(id, end, cutoff int64)
}

// Assigner is a deterministic user-defined window function. Implementations
// are stateful and must not be shared across keys or queries; use a Factory.
type Assigner interface {
	// OnElement observes the element with event timestamp ts and stream
	// position pos before it is added to any slice. Values are visible so
	// that data-driven windows (punctuation, delta) can be expressed.
	OnElement(ts, pos int64, v float64, ctx Context)
	// OnTime observes the advance of event time to wm (a watermark).
	// Time-based windows close here.
	OnTime(wm int64, ctx Context)
}

// Factory produces a fresh, independent Assigner instance (one per key and
// query).
type Factory func() Assigner

// Periodic is an optional interface: assigners for periodic time windows
// report their (size, slide) so that the Pairs and Panes baselines — which
// are only defined for periodic windows — can be configured. Non-periodic
// assigners simply do not implement it.
type Periodic interface {
	Periodic() (size, slide int64)
}

// Spec pairs a Factory with a human-readable name and optional periodicity,
// as registered with the engines.
type Spec struct {
	Name    string
	Factory Factory
	// Size and Slide are set for periodic time windows (Slide == Size for
	// tumbling); zero otherwise.
	Size  int64
	Slide int64
}

// IsPeriodic reports whether the spec describes a periodic time window.
func (s Spec) IsPeriodic() bool { return s.Size > 0 && s.Slide > 0 }
