package agg

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var allStdF64 = []string{"sum", "count", "min", "max", "avg", "var"}

// sanitizeF64 maps arbitrary quick-generated floats into a bounded range so
// that property tests exercise algorithm structure rather than float64
// overflow at magnitudes near 1.7e308.
func sanitizeF64(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(v, 1e6)
}

func foldF64(fn *FnF64, vals []float64) float64 {
	acc := fn.Identity
	for _, v := range vals {
		acc = fn.Combine(acc, fn.Lift(v))
	}
	return fn.Lower(acc)
}

func TestStdFnF64Lookup(t *testing.T) {
	for _, name := range allStdF64 {
		fn := StdFnF64(name)
		if fn == nil {
			t.Fatalf("StdFnF64(%q) = nil", name)
		}
		if fn.Name != name {
			t.Fatalf("StdFnF64(%q).Name = %q", name, fn.Name)
		}
	}
	if StdFnF64("nope") != nil {
		t.Fatalf("unknown name should return nil")
	}
}

func TestSumF64(t *testing.T) {
	if got := foldF64(SumF64(), []float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("sum = %v, want 6.5", got)
	}
}

func TestCountF64(t *testing.T) {
	if got := foldF64(CountF64(), []float64{9, 9, 9, 9}); got != 4 {
		t.Fatalf("count = %v, want 4", got)
	}
}

func TestMinMaxF64(t *testing.T) {
	vals := []float64{3, -1, 7, 0}
	if got := foldF64(MinF64(), vals); got != -1 {
		t.Fatalf("min = %v, want -1", got)
	}
	if got := foldF64(MaxF64(), vals); got != 7 {
		t.Fatalf("max = %v, want 7", got)
	}
}

func TestAvgF64(t *testing.T) {
	if got := foldF64(AvgF64(), []float64{2, 4, 6}); got != 4 {
		t.Fatalf("avg = %v, want 4", got)
	}
	fn := AvgF64()
	if got := fn.Lower(fn.Identity); got != 0 {
		t.Fatalf("avg of empty = %v, want 0", got)
	}
}

func TestVarF64MatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()*10 + 5
	}
	got := foldF64(VarF64(), vals)
	// two-pass reference
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var m2 float64
	for _, v := range vals {
		m2 += (v - mean) * (v - mean)
	}
	want := m2 / float64(len(vals))
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("var = %v, want %v", got, want)
	}
}

// Associativity property: for every standard function, combining in two
// different parenthesizations of a random split yields the same result.
func TestFnF64Associativity(t *testing.T) {
	for _, name := range allStdF64 {
		fn := StdFnF64(name)
		f := func(xs []float64, split uint8) bool {
			if len(xs) < 3 {
				return true
			}
			for i := range xs {
				xs[i] = sanitizeF64(xs[i])
			}
			i := 1 + int(split)%(len(xs)-2)
			j := i + 1
			lift := func(vals []float64) Acc {
				acc := fn.Identity
				for _, v := range vals {
					acc = fn.Combine(acc, fn.Lift(v))
				}
				return acc
			}
			a, b, c := lift(xs[:i]), lift(xs[i:j]), lift(xs[j:])
			left := fn.Lower(fn.Combine(fn.Combine(a, b), c))
			right := fn.Lower(fn.Combine(a, fn.Combine(b, c)))
			return math.Abs(left-right) <= 1e-6*(1+math.Abs(left))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s not associative: %v", name, err)
		}
	}
}

// Identity property: Combine(identity, a) == a == Combine(a, identity).
func TestFnF64Identity(t *testing.T) {
	for _, name := range allStdF64 {
		fn := StdFnF64(name)
		f := func(v float64) bool {
			v = sanitizeF64(v)
			a := fn.Lift(v)
			l := fn.Combine(fn.Identity, a)
			r := fn.Combine(a, fn.Identity)
			return fn.Lower(l) == fn.Lower(a) && fn.Lower(r) == fn.Lower(a)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s identity violated: %v", name, err)
		}
	}
}

// Invertibility property for sum/count/avg: Invert(Combine(a,b), b) == a.
func TestFnF64Invert(t *testing.T) {
	for _, name := range []string{"sum", "count", "avg"} {
		fn := StdFnF64(name)
		if fn.Invert == nil {
			t.Fatalf("%s should be invertible", name)
		}
		f := func(x, y float64) bool {
			x, y = sanitizeF64(x), sanitizeF64(y)
			a, b := fn.Lift(x), fn.Lift(y)
			back := fn.Invert(fn.Combine(a, b), b)
			return math.Abs(fn.Lower(back)-fn.Lower(a)) <= 1e-6*(1+math.Abs(fn.Lower(a)))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s Invert violated: %v", name, err)
		}
	}
}

func TestMinMaxNotInvertible(t *testing.T) {
	if MinF64().Invert != nil || MaxF64().Invert != nil {
		t.Fatalf("min/max must not claim invertibility")
	}
}

func TestCountingWrapper(t *testing.T) {
	var combines, lifts atomic.Int64
	fn := Counting(SumF64(), &combines, &lifts)
	acc := fn.Combine(fn.Lift(1), fn.Lift(2))
	acc = fn.Invert(acc, fn.Lift(1))
	if got := fn.Lower(acc); got != 2 {
		t.Fatalf("wrapped semantics broken: got %v", got)
	}
	if lifts.Load() != 3 {
		t.Fatalf("lifts = %d, want 3", lifts.Load())
	}
	if combines.Load() != 2 { // one Combine + one Invert
		t.Fatalf("combines = %d, want 2", combines.Load())
	}
}

func TestFnF64String(t *testing.T) {
	if SumF64().String() != "FnF64(sum)" {
		t.Fatalf("String() = %q", SumF64().String())
	}
}
