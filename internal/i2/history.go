package i2

import (
	"sort"
	"sync"
)

// Store is I2's history service: it absorbs the live stream (data in
// motion) and serves arbitrary viewport queries over the retained window
// (data at rest) — the two halves every interactive zoom/pan touches.
//
// Raw points are kept in a bounded ring. On top of the raw ring the store
// maintains a pyramid of pre-aggregated M4 tiers (column width multiplying
// by tierFanout per level), so wide viewports are answered from coarse
// tiers instead of scanning millions of raw points — the "advanced and
// adaptive aggregations directly on the cluster" of the paper. Queries pick
// the coarsest tier whose columns still subdivide the requested pixel
// columns; the final M4 pass over tier columns is exact because M4 columns
// compose (min of mins, first of firsts, ...).
type Store struct {
	mu sync.RWMutex

	capacity int
	raw      []Point // time-ordered ring (compacted slice)

	tierBase   int64 // finest tier column width in ticks
	tierFanout int64
	tiers      []tier
}

// tier is one pre-aggregation level: completed columns of fixed time width.
type tier struct {
	width int64
	cols  []Column // time-ordered; Index unused (recomputed per query)
	open  *Column
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithTiers enables the pre-aggregation pyramid: levels columns of width
// base, base*fanout, base*fanout^2, ... (levels >= 1, fanout >= 2).
func WithTiers(base int64, fanout int64, levels int) StoreOption {
	return func(s *Store) {
		s.tierBase = base
		s.tierFanout = fanout
		for l := 0; l < levels; l++ {
			w := base
			for k := 0; k < l; k++ {
				w *= fanout
			}
			s.tiers = append(s.tiers, tier{width: w})
		}
	}
}

// NewStore returns a store retaining up to capacity raw points.
func NewStore(capacity int, opts ...StoreOption) *Store {
	s := &Store{capacity: capacity}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Append absorbs one in-order sample.
func (s *Store) Append(p Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.raw = append(s.raw, p)
	if len(s.raw) > s.capacity {
		drop := len(s.raw) - s.capacity
		s.raw = append(s.raw[:0], s.raw[drop:]...)
	}
	for i := range s.tiers {
		s.tierAppend(&s.tiers[i], p)
	}
}

func (s *Store) tierAppend(t *tier, p Point) {
	colStart := (p.Ts / t.width) * t.width
	if t.open != nil && t.open.T0 != colStart {
		t.cols = append(t.cols, *t.open)
		t.open = nil
		// Bound tier memory proportionally to the raw retention.
		if max := s.capacity / int(t.width/s.tierBase) * 4; len(t.cols) > max && max > 0 {
			t.cols = append(t.cols[:0], t.cols[len(t.cols)-max:]...)
		}
	}
	if t.open == nil {
		t.open = &Column{T0: colStart, T1: colStart + t.width, First: p, Last: p, Min: p, Max: p, Count: 1}
		return
	}
	t.open.Last = p
	t.open.Count++
	if p.V < t.open.Min.V {
		t.open.Min = p
	}
	if p.V > t.open.Max.V {
		t.open.Max = p
	}
}

// Len reports the number of retained raw points.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.raw)
}

// Span returns the retained time range [first, last] (0, 0 when empty).
func (s *Store) Span() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.raw) == 0 {
		return 0, 0
	}
	return s.raw[0].Ts, s.raw[len(s.raw)-1].Ts
}

// Query answers a viewport with M4 columns. It serves from the coarsest
// tier whose column width divides the viewport's pixel columns evenly
// enough (>= 1 tier column per pixel column boundary-aligned), falling back
// to the raw ring for fine zooms.
func (s *Store) Query(vp Viewport) []Column {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !vp.Valid() {
		return nil
	}
	pixelWidth := (vp.To - vp.From) / int64(vp.Width)
	// Choose the coarsest tier that still subdivides a pixel column and is
	// boundary-aligned with the viewport grid.
	for i := len(s.tiers) - 1; i >= 0; i-- {
		t := &s.tiers[i]
		if t.width <= pixelWidth/2 && pixelWidth%t.width == 0 && vp.From%t.width == 0 && len(t.cols) > 0 {
			return s.queryTier(t, vp)
		}
	}
	return AggregateM4(s.rawInRange(vp.From, vp.To), vp)
}

// QueriedFromTier reports which tier width a viewport would use (0 = raw);
// exposed for tests and the E7 ablation.
func (s *Store) QueriedFromTier(vp Viewport) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !vp.Valid() {
		return 0
	}
	pixelWidth := (vp.To - vp.From) / int64(vp.Width)
	for i := len(s.tiers) - 1; i >= 0; i-- {
		t := &s.tiers[i]
		if t.width <= pixelWidth/2 && pixelWidth%t.width == 0 && vp.From%t.width == 0 && len(t.cols) > 0 {
			return t.width
		}
	}
	return 0
}

func (s *Store) rawInRange(from, to int64) []Point {
	lo := sort.Search(len(s.raw), func(i int) bool { return s.raw[i].Ts >= from })
	hi := sort.Search(len(s.raw), func(i int) bool { return s.raw[i].Ts >= to })
	return s.raw[lo:hi]
}

// queryTier composes tier columns into viewport pixel columns. M4 columns
// compose exactly: first = first of the earliest, last = last of the
// latest, min/max = extremes over components.
func (s *Store) queryTier(t *tier, vp Viewport) []Column {
	cols := t.cols
	if t.open != nil {
		cols = append(append([]Column{}, cols...), *t.open)
	}
	lo := sort.Search(len(cols), func(i int) bool { return cols[i].T1 > vp.From })
	var out []Column
	var cur *Column
	for _, tc := range cols[lo:] {
		if tc.T0 >= vp.To {
			break
		}
		c := vp.columnOf(tc.T0)
		if cur == nil || cur.Index != c {
			t0, t1 := vp.columnRange(c)
			out = append(out, Column{
				Index: c, T0: t0, T1: t1,
				First: tc.First, Last: tc.Last, Min: tc.Min, Max: tc.Max, Count: tc.Count,
			})
			cur = &out[len(out)-1]
			continue
		}
		cur.Last = tc.Last
		cur.Count += tc.Count
		if tc.Min.V < cur.Min.V {
			cur.Min = tc.Min
		}
		if tc.Max.V > cur.Max.V {
			cur.Max = tc.Max
		}
	}
	return out
}
