package state

import "testing"

// TestKeyRefMatchesCellAccess: the resolved handle reads and writes the
// same slot as the cell's hashed path, and a ref resolved before a write
// observes it.
func TestKeyRefMatchesCellAccess(t *testing.T) {
	ks := NewKeyedState(8, 0, 8)
	cell := RegisterMap(ks, "acc", GobCodec[float64]())
	ref := cell.RefFor(5)
	if _, ok := ref.Get(); ok {
		t.Fatalf("ref saw a value in an empty cell")
	}
	ref.Put(1.5)
	if v, ok := cell.Get(5); !ok || v != 1.5 {
		t.Fatalf("cell.Get after ref.Put = %v, %v", v, ok)
	}
	cell.Put(5, 2.5)
	if v, _ := ref.Get(); v != 2.5 {
		t.Fatalf("ref.Get after cell.Put = %v", v)
	}
	if ref.Key() != 5 {
		t.Fatalf("ref.Key = %d", ref.Key())
	}
}

// TestKeyRefClonesDuringCapture is the copy-on-write contract for
// run-grouped state access: a ref resolved BEFORE an asynchronous snapshot
// capture begins must still clone shared structures when mutated through
// GetMut while the capture is in flight — vectorized keyed operators hold
// refs for a whole data run, and a barrier-triggered capture between runs
// must never see their later mutations.
func TestKeyRefClonesDuringCapture(t *testing.T) {
	ks := NewKeyedState(4, 0, 4)
	cell := RegisterMap(ks, "buf", SliceCodec[int]())
	ref := cell.RefFor(1)
	ref.Put([]int{1, 2, 3})

	captured := ks.Capture()
	shared, _ := ref.Get()
	mut, ok := ref.GetMut()
	if !ok {
		t.Fatalf("GetMut lost the value")
	}
	mut[0] = 99
	if shared[0] != 1 {
		t.Fatalf("KeyRef.GetMut did not clone while a capture was in flight")
	}
	// A second GetMut through the ref inside the same capture window reuses
	// the private copy instead of cloning again.
	mut2, _ := ref.GetMut()
	if &mut2[0] != &mut[0] {
		t.Fatalf("value cloned twice within one capture window")
	}
	// The capture still serializes the pre-mutation value.
	blobs, err := captured.EncodeGroups()
	if err != nil {
		t.Fatal(err)
	}
	ks2 := NewKeyedState(4, 0, 4)
	cell2 := RegisterMap(ks2, "buf", SliceCodec[int]())
	for group, blob := range blobs {
		if err := ks2.RestoreGroup(group, blob); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := cell2.Get(1)
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("capture saw post-capture mutation: %v", got)
	}

	// Capture released: mutation through the ref no longer clones.
	before, _ := ref.GetMut()
	after, _ := ref.GetMut()
	if &before[0] != &after[0] {
		t.Fatalf("value cloned after the capture was released")
	}
}
