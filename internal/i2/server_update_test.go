package i2

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestUpdateViewEndpoint(t *testing.T) {
	store := NewStore(100000)
	srv := NewServer(store)
	for i := 0; i < 2000; i++ {
		srv.Ingest(Point{Ts: int64(i), V: float64(i % 23)})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, err := srv.RegisterView(Viewport{From: 0, To: 10_000, Width: 10})
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/view?id=0",
		strings.NewReader(`{"from":500,"to":1500,"width":20}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	// The view's viewport must have switched.
	srv.mu.Lock()
	vp := srv.views[id].view.Viewport()
	srv.mu.Unlock()
	if vp.From != 500 || vp.To != 1500 || vp.Width != 20 {
		t.Fatalf("viewport not updated: %+v", vp)
	}

	// Unknown id and invalid body.
	req2, _ := http.NewRequest(http.MethodPut, ts.URL+"/view?id=99",
		strings.NewReader(`{"from":0,"to":10,"width":1}`))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown view update: %d", resp2.StatusCode)
	}
	req3, _ := http.NewRequest(http.MethodPut, ts.URL+"/view?id=0", strings.NewReader(`garbage`))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", resp3.StatusCode)
	}
}

// Registering a view after history exists must backfill completed columns
// through the SSE buffer.
func TestRegisterViewBackfillsHistory(t *testing.T) {
	store := NewStore(100000)
	srv := NewServer(store)
	for i := 0; i < 1000; i++ {
		srv.Ingest(Point{Ts: int64(i), V: float64(i)})
	}
	id, err := srv.RegisterView(Viewport{From: 0, To: 1000, Width: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	v := srv.views[id]
	srv.mu.Unlock()
	// Columns [0,100)... up to the one containing maxTs are buffered.
	if got := len(v.cols); got < 9 {
		t.Fatalf("backfill buffered %d columns, want >= 9", got)
	}
}
