package bench

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/state"
)

// The state benchmark records the keyed-state snapshot trajectory: how long
// an operator subtask blocks at a checkpoint barrier. The baseline is the
// pre-key-group design — the whole keyed state gob-encoded synchronously
// under the barrier, one blob per subtask. The measured path is the
// key-group design: a copy-on-write Capture (flag flips and scalar copies)
// blocks the barrier, and the per-group serialization runs asynchronously.
// Results are written to BENCH_state.json by `streamline-bench -state`.

// StateRun is one key-count measurement.
type StateRun struct {
	Keys int `json:"keys"`
	// SyncCaptureNs is the barrier-blocking time of the baseline: the whole
	// state serialized synchronously (sorted keys, one gob blob).
	SyncCaptureNs int64 `json:"sync_capture_ns"`
	SyncBytes     int64 `json:"sync_bytes"`
	// CowCaptureNs is the barrier-blocking time of the key-group design:
	// taking the copy-on-write capture.
	CowCaptureNs int64 `json:"cow_capture_ns"`
	// AsyncEncodeNs is the off-barrier serialization of the capture into
	// per-group blobs.
	AsyncEncodeNs int64 `json:"async_encode_ns"`
	AsyncBytes    int64 `json:"async_bytes"`
	// CaptureSpeedup is SyncCaptureNs / CowCaptureNs — how much less time
	// the subtask spends blocked at the barrier.
	CaptureSpeedup float64 `json:"capture_speedup"`
}

// StateReport is the full suite.
type StateReport struct {
	NumKeyGroups int        `json:"num_key_groups"`
	Runs         []StateRun `json:"runs"`
}

// syncGobState is the baseline blob layout: the shape KeyedReduceOp used to
// serialize under the barrier before keyed state moved to key groups.
type syncGobState struct {
	Keys []uint64
	Vals []float64
}

func encodeSyncWholeState(m map[uint64]float64) (int64, error) {
	s := syncGobState{Keys: make([]uint64, 0, len(m)), Vals: make([]float64, 0, len(m))}
	for k := range m {
		s.Keys = append(s.Keys, k)
	}
	sort.Slice(s.Keys, func(i, j int) bool { return s.Keys[i] < s.Keys[j] })
	for _, k := range s.Keys {
		s.Vals = append(s.Vals, m[k])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return 0, err
	}
	return int64(buf.Len()), nil
}

// stateKeys generates the benchmark's key space: every key is touched once
// with a running-sum value, the KeyedReduce workload shape.
func buildKeyedState(keys int) (*state.KeyedState, *state.MapCell[float64], map[uint64]float64) {
	ks := state.NewKeyedState(state.DefaultNumKeyGroups, 0, state.DefaultNumKeyGroups)
	cell := state.RegisterMap(ks, "acc", state.GobCodec[float64]())
	plain := make(map[uint64]float64, keys)
	for i := 0; i < keys; i++ {
		k := uint64(i)*2654435761 + 1
		v := float64(i % 97)
		cell.Put(k, v)
		plain[k] = v
	}
	return ks, cell, plain
}

// StateCapture measures one key count, best of `rounds` attempts.
func StateCapture(keys, rounds int) (StateRun, error) {
	run := StateRun{Keys: keys}
	ks, _, plain := buildKeyedState(keys)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		syncBytes, err := encodeSyncWholeState(plain)
		syncNs := time.Since(t0).Nanoseconds()
		if err != nil {
			return run, err
		}

		t1 := time.Now()
		captured := ks.Capture()
		cowNs := time.Since(t1).Nanoseconds()

		t2 := time.Now()
		groups, err := captured.EncodeGroups()
		asyncNs := time.Since(t2).Nanoseconds()
		if err != nil {
			return run, err
		}
		var asyncBytes int64
		for _, b := range groups {
			asyncBytes += int64(len(b))
		}

		if r == 0 || syncNs < run.SyncCaptureNs {
			run.SyncCaptureNs = syncNs
			run.SyncBytes = syncBytes
		}
		if r == 0 || cowNs < run.CowCaptureNs {
			run.CowCaptureNs = cowNs
		}
		if r == 0 || asyncNs < run.AsyncEncodeNs {
			run.AsyncEncodeNs = asyncNs
			run.AsyncBytes = asyncBytes
		}
	}
	if run.CowCaptureNs > 0 {
		run.CaptureSpeedup = float64(run.SyncCaptureNs) / float64(run.CowCaptureNs)
	}
	return run, nil
}

// State runs the state-snapshot benchmark suite.
func State(quick bool) (*StateReport, error) {
	counts := []int{10_000, 100_000, 500_000}
	rounds := 5
	if quick {
		counts = []int{10_000, 100_000}
		rounds = 3
	}
	rep := &StateReport{NumKeyGroups: state.DefaultNumKeyGroups}
	for _, n := range counts {
		run, err := StateCapture(n, rounds)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *StateReport) Table() *Table {
	t := &Table{
		ID:     "STATE",
		Title:  "keyed-state snapshots: copy-on-write capture vs synchronous whole-state gob",
		Claim:  "the barrier path blocks for the capture, not the serialization",
		Header: []string{"keys", "sync capture", "cow capture", "async encode", "bytes", "capture speedup"},
	}
	for _, run := range r.Runs {
		t.Add(
			fmtCount(float64(run.Keys)),
			fmt.Sprintf("%.3fms", float64(run.SyncCaptureNs)/1e6),
			fmt.Sprintf("%.4fms", float64(run.CowCaptureNs)/1e6),
			fmt.Sprintf("%.3fms", float64(run.AsyncEncodeNs)/1e6),
			fmtCount(float64(run.AsyncBytes)),
			fmt.Sprintf("%.0fx", run.CaptureSpeedup),
		)
	}
	t.Note("barrier-blocking time per checkpoint at %d key groups; serialization now overlaps processing", r.NumKeyGroups)
	return t
}

// WriteJSON records the report (the perf trajectory file BENCH_state.json).
func (r *StateReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
