// Command streamline-coord runs a named demo pipeline as the coordinator
// of a distributed STREAMLINE job: it listens for -workers worker processes
// (cmd/streamline-worker), distributes the plan, injects checkpoint
// barriers, and prints the pipeline's deterministic output. With
// -workers 0 it runs the identical pipeline single-process — diffing the
// two outputs is the distribution smoke test.
//
//	streamline-coord -pipeline wordcount -workers 2 -listen 127.0.0.1:7171
//	streamline-coord -pipeline wordcount -workers 0
//
// Arguments after the flags are passed to the pipeline builder, e.g.
//
//	streamline-coord -pipeline windowed -workers 2 -- -events 12000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/pipelines"
	"repro/streamline"
)

func main() {
	pipeline := flag.String("pipeline", "wordcount", "registered pipeline to run")
	workers := flag.Int("workers", 0, "worker processes to wait for (0: single-process)")
	listen := flag.String("listen", "127.0.0.1:7171", "control listen address (with -workers > 0)")
	out := flag.String("out", "", "write results to this file (default: stdout)")
	flag.Parse()

	extra := []streamline.Option{streamline.WithWorkers(*workers)}
	if *workers > 0 {
		extra = append(extra, streamline.WithListenAddr(*listen))
	}
	env, render, err := pipelines.Build(*pipeline, flag.Args(), extra...)
	if err != nil {
		log.Fatal(err)
	}
	if err := env.ExecuteDistributed(context.Background()); err != nil {
		log.Fatal(err)
	}
	text := render()
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		log.Fatal(err)
	}
}
