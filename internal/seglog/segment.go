package seglog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout. A segment file is a sequence of record frames:
//
//	u32  payload length
//	u32  CRC32-C over the remaining 16 header bytes and the payload
//	i64  event timestamp
//	u64  partitioning key
//	...  payload
//
// all little-endian. The file name is the 20-digit base offset (the logical
// offset of its first record) plus ".seg"; the sibling ".idx" file holds
// sparse index entries of [i64 offset][i64 position], one per IndexEvery
// bytes of frames. The index is advisory — every consumer validates frames
// by CRC and falls back to scanning from the segment start — so a stale or
// torn index degrades positioned reads to a scan instead of corrupting them.

const (
	frameHeader = 24
	// MaxRecordBytes bounds one record's payload; a larger length prefix
	// marks the frame as torn.
	MaxRecordBytes = 16 << 20

	segSuffix     = ".seg"
	idxSuffix     = ".idx"
	idxEntryBytes = 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one stored record: its logical offset within the topic, the
// event timestamp and partitioning key it was appended with, and the
// payload. Payload slices returned by readers are reused between calls —
// copy before retaining.
type Record struct {
	Offset  int64
	Ts      int64
	Key     uint64
	Payload []byte
}

// appendFrame encodes one record frame onto buf.
func appendFrame(buf []byte, ts int64, key uint64, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(ts))
	binary.LittleEndian.PutUint64(hdr[16:24], key)
	crc := crc32.Checksum(hdr[8:24], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:len(payload):len(payload)]...)
}

// frameLen is the on-disk size of a frame with the given payload length.
func frameLen(payload int) int64 { return int64(frameHeader + payload) }

// errTorn marks bytes that do not form a complete valid frame — the
// signature of a crash mid-append. Recovery truncates at the torn position;
// readers below the visible watermark treat it as corruption and fail.
var errTorn = errors.New("torn record")

// frameScanner sequentially parses frames from a reader, tracking the
// absolute byte position. It reports clean EOF (ok=false) only exactly at a
// frame boundary; anything else wraps errTorn with the frame's start
// position.
type frameScanner struct {
	rd  *bufio.Reader
	pos int64 // absolute position of the next unread byte
	hdr [frameHeader]byte
	buf []byte
}

func newFrameScanner(r io.Reader, pos int64) *frameScanner {
	return &frameScanner{rd: bufio.NewReaderSize(r, 64<<10), pos: pos}
}

// next parses the frame at the current position. The returned payload slice
// is valid until the following call.
func (s *frameScanner) next() (ts int64, key uint64, payload []byte, ok bool, err error) {
	start := s.pos
	if _, rerr := io.ReadFull(s.rd, s.hdr[:]); rerr != nil {
		if rerr == io.EOF {
			return 0, 0, nil, false, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			return 0, 0, nil, false, fmt.Errorf("%w at byte %d (short header)", errTorn, start)
		}
		return 0, 0, nil, false, rerr
	}
	n := binary.LittleEndian.Uint32(s.hdr[0:4])
	if int64(n) > MaxRecordBytes {
		return 0, 0, nil, false, fmt.Errorf("%w at byte %d (length %d exceeds %d)", errTorn, start, n, MaxRecordBytes)
	}
	if cap(s.buf) < int(n) {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
	if _, rerr := io.ReadFull(s.rd, s.buf); rerr != nil {
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return 0, 0, nil, false, fmt.Errorf("%w at byte %d (short payload)", errTorn, start)
		}
		return 0, 0, nil, false, rerr
	}
	crc := crc32.Checksum(s.hdr[8:24], castagnoli)
	crc = crc32.Update(crc, castagnoli, s.buf)
	if crc != binary.LittleEndian.Uint32(s.hdr[4:8]) {
		return 0, 0, nil, false, fmt.Errorf("%w at byte %d (checksum mismatch)", errTorn, start)
	}
	s.pos = start + frameLen(int(n))
	ts = int64(binary.LittleEndian.Uint64(s.hdr[8:16]))
	key = binary.LittleEndian.Uint64(s.hdr[16:24])
	return ts, key, s.buf, true, nil
}

// indexEntry maps a logical offset to the byte position its frame starts at.
type indexEntry struct {
	Off int64
	Pos int64
}

// segment is one segment file of a topic. base, path and (for sealed
// segments) size and records are immutable; the active segment's size lives
// in the topic's visible watermark and idx grows under the topic lock.
type segment struct {
	base    int64
	path    string
	size    int64 // valid bytes (sealed: final; active: mirrors Topic.flushed on roll)
	records int64 // sealed segments only
	idx     []indexEntry
}

func (g *segment) idxPath() string { return strings.TrimSuffix(g.path, segSuffix) + idxSuffix }

// segName renders a segment file name from its base offset.
func segName(base int64) string { return fmt.Sprintf("%020d%s", base, segSuffix) }

// parseSegName extracts the base offset from a segment file name.
func parseSegName(name string) (int64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(name, segSuffix)
	if len(digits) != 20 {
		return 0, false
	}
	base, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || base < 0 {
		return 0, false
	}
	return base, true
}

// listSegments returns the segment base offsets present in dir, sorted.
func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []int64
	for _, e := range ents {
		if base, ok := parseSegName(e.Name()); ok && e.Type().IsRegular() {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// loadIndex reads and validates a segment's index file: entries must be
// strictly ascending in offset and position, start at or after the base,
// and point inside the segment's valid bytes. The first invalid entry drops
// it and everything after — the index is advisory, a truncated one only
// means longer alignment scans.
func loadIndex(g *segment) []indexEntry {
	data, err := os.ReadFile(g.idxPath())
	if err != nil {
		return nil
	}
	data = data[:len(data)-len(data)%idxEntryBytes]
	var idx []indexEntry
	for i := 0; i+idxEntryBytes <= len(data); i += idxEntryBytes {
		e := indexEntry{
			Off: int64(binary.LittleEndian.Uint64(data[i : i+8])),
			Pos: int64(binary.LittleEndian.Uint64(data[i+8 : i+16])),
		}
		if e.Off < g.base || e.Pos < 0 || e.Pos >= g.size {
			break
		}
		if n := len(idx); n > 0 && (e.Off <= idx[n-1].Off || e.Pos <= idx[n-1].Pos) {
			break
		}
		idx = append(idx, e)
	}
	return idx
}

// writeIndex rewrites a segment's index file from its in-memory entries.
func writeIndex(g *segment) error {
	buf := make([]byte, 0, len(g.idx)*idxEntryBytes)
	var e8 [idxEntryBytes]byte
	for _, e := range g.idx {
		binary.LittleEndian.PutUint64(e8[0:8], uint64(e.Off))
		binary.LittleEndian.PutUint64(e8[8:16], uint64(e.Pos))
		buf = append(buf, e8[:]...)
	}
	return os.WriteFile(g.idxPath(), buf, 0o644)
}

// seekEntry returns the greatest index entry at or below the byte position,
// or (base, 0) when the index has none.
func (g *segment) seekEntry(pos int64) indexEntry {
	lo, hi := 0, len(g.idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.idx[mid].Pos <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return indexEntry{Off: g.base, Pos: 0}
	}
	return g.idx[lo-1]
}

// seekEntryOff is seekEntry keyed by logical offset.
func (g *segment) seekEntryOff(off int64) indexEntry {
	lo, hi := 0, len(g.idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.idx[mid].Off <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return indexEntry{Off: g.base, Pos: 0}
	}
	return g.idx[lo-1]
}

// recoverSegment scans the segment file at path from the start, validating
// every frame, and returns the valid byte size, the record count, and a
// rebuilt sparse index. A torn tail (short header or payload, oversized
// length, CRC mismatch) ends the scan at the last valid frame; any other
// I/O error is returned.
func recoverSegment(path string, base, indexEvery int64) (valid, records int64, idx []indexEntry, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	sc := newFrameScanner(f, 0)
	var lastIdx int64 = -1
	for {
		start := sc.pos
		_, _, _, ok, err := sc.next()
		if err != nil {
			if errors.Is(err, errTorn) {
				return start, records, idx, nil
			}
			return 0, 0, nil, err
		}
		if !ok {
			return start, records, idx, nil
		}
		if lastIdx < 0 || start-lastIdx >= indexEvery {
			idx = append(idx, indexEntry{Off: base + records, Pos: start})
			lastIdx = start
		}
		records++
	}
}

// removeSegment deletes a segment's files.
func removeSegment(g *segment) error {
	err := os.Remove(g.path)
	if rerr := os.Remove(g.idxPath()); err == nil {
		err = rerr
	}
	if err != nil && os.IsNotExist(err) {
		err = nil
	}
	return err
}

// segPath renders a segment file path.
func segPath(dir string, base int64) string { return filepath.Join(dir, segName(base)) }
