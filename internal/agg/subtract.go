package agg

// SubtractOnEvict is the sliding-window aggregator for *invertible*
// aggregates (sum, count, avg): a single running accumulator, O(1) combines
// per push and one Invert per eviction. It is the cheapest possible window
// state but applies only when Invert exists — min/max cannot use it, which
// is exactly why general engines need FlatFAT/two-stacks. The agg
// micro-benchmarks compare all three, and the Cutty engine could use it per
// slice-range for invertible functions (an ablation discussed in
// DESIGN.md).
type SubtractOnEvict struct {
	fn   *FnF64
	acc  Acc
	fifo []Acc
}

// NewSubtractOnEvict returns an empty aggregator; fn must have Invert.
func NewSubtractOnEvict(fn *FnF64) *SubtractOnEvict {
	if fn.Invert == nil {
		panic("agg: SubtractOnEvict requires an invertible function: " + fn.Name)
	}
	return &SubtractOnEvict{fn: fn, acc: fn.Identity}
}

// Len returns the window size.
func (s *SubtractOnEvict) Len() int { return len(s.fifo) }

// Push appends a partial at the back.
func (s *SubtractOnEvict) Push(a Acc) {
	s.fifo = append(s.fifo, a)
	s.acc = s.fn.Combine(s.acc, a)
}

// PopFront evicts the oldest partial with one Invert.
func (s *SubtractOnEvict) PopFront() {
	if len(s.fifo) == 0 {
		panic("agg: PopFront on empty SubtractOnEvict")
	}
	s.acc = s.fn.Invert(s.acc, s.fifo[0])
	s.fifo = s.fifo[1:]
	if cap(s.fifo) > 64 && len(s.fifo) < cap(s.fifo)/4 {
		fresh := make([]Acc, len(s.fifo))
		copy(fresh, s.fifo)
		s.fifo = fresh
	}
}

// Aggregate returns the whole-window aggregate in O(1).
func (s *SubtractOnEvict) Aggregate() Acc {
	if len(s.fifo) == 0 {
		return s.fn.Identity
	}
	return s.acc
}
