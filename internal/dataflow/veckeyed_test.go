package dataflow

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/window"
)

// newKeyedReduce opens a fresh keyed reduce with a non-commutative fold, so
// any reordering or re-bracketing in the batched path changes the result.
func newKeyedReduce(t *testing.T, emitEach bool) *KeyedReduceOp {
	t.Helper()
	op := &KeyedReduceOp{
		F:        func(acc, v float64) float64 { return acc*2 + v },
		Init:     1,
		EmitEach: emitEach,
	}
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	return op
}

// keyedRun builds a data run with repeated keys (adjacent and interleaved)
// and non-float64 records sprinkled in — the inputs the run-grouping scratch
// table has to get right.
func keyedRun(n int, tsBase int64) []Record {
	in := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := Data(tsBase+int64(i), uint64(i*i%5), float64(i%11)+0.25)
		switch {
		case i%9 == 4:
			r.Value = "not a float"
		case i%13 == 7:
			r.Value = i // int, not float64
		}
		in = append(in, r)
	}
	return in
}

// TestKeyedReduceOnBatchMatchesOnRecord proves the keyed vectorized
// contract at the operator level: one OnBatch call over a run — and the
// same run chopped into small chunks — emits byte-identical records to
// OnRecord in order, with EmitEach both on and off, and leaves identical
// state behind (compared via Finish).
func TestKeyedReduceOnBatchMatchesOnRecord(t *testing.T) {
	in := keyedRun(57, 0)
	for _, emitEach := range []bool{true, false} {
		ref := newKeyedReduce(t, emitEach)
		want := perRecordOutput(ref, in)

		batched := newKeyedReduce(t, emitEach)
		got := batchOutput(batched, in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("emitEach=%v: OnBatch diverged from OnRecord:\n got %+v\nwant %+v", emitEach, got, want)
		}

		chunked := newKeyedReduce(t, emitEach)
		var gotChunked []Record
		for off := 0; off < len(in); off += 10 {
			end := min(off+10, len(in))
			gotChunked = append(gotChunked, batchOutput(chunked, in[off:end])...)
		}
		if !reflect.DeepEqual(gotChunked, want) {
			t.Fatalf("emitEach=%v: chunked OnBatch diverged from OnRecord", emitEach)
		}

		for name, op := range map[string]*KeyedReduceOp{"batched": batched, "chunked": chunked} {
			refOut, opOut := &capCollector{}, &capCollector{}
			ref.Finish(refOut)
			op.Finish(opOut)
			if !reflect.DeepEqual(opOut.recs, refOut.recs) {
				t.Fatalf("emitEach=%v: %s Finish state diverged:\n got %+v\nwant %+v",
					emitEach, name, opOut.recs, refOut.recs)
			}
		}
	}
}

// TestKeyedReduceSnapshotCrossesExecutionModes: a checkpoint taken
// mid-stream under batched execution restores into a per-record operator
// (and vice versa) with identical final state — the barrier-mid-batch
// guarantee that makes the toggle invisible to recovery.
func TestKeyedReduceSnapshotCrossesExecutionModes(t *testing.T) {
	first, second := keyedRun(40, 0), keyedRun(40, 100)

	ref := newKeyedReduce(t, false)
	perRecordOutput(ref, first)
	perRecordOutput(ref, second)
	want := &capCollector{}
	ref.Finish(want)

	// Batched first half -> capture (the barrier lands between runs, never
	// inside one) -> restore -> per-record second half.
	half := newKeyedReduce(t, false)
	batchOutput(half, first)
	groups := captureGroups(t, half)
	restored := &KeyedReduceOp{F: ref.F, Init: ref.Init}
	if err := restored.Open(&OpContext{RestoreGroups: groups}); err != nil {
		t.Fatal(err)
	}
	perRecordOutput(restored, second)
	got := &capCollector{}
	restored.Finish(got)
	if !reflect.DeepEqual(got.recs, want.recs) {
		t.Fatalf("batched->restore->per-record diverged:\n got %+v\nwant %+v", got.recs, want.recs)
	}

	// And the mirror image: per-record first half, batched after restore.
	half2 := newKeyedReduce(t, false)
	perRecordOutput(half2, first)
	restored2 := &KeyedReduceOp{F: ref.F, Init: ref.Init}
	if err := restored2.Open(&OpContext{RestoreGroups: captureGroups(t, half2)}); err != nil {
		t.Fatal(err)
	}
	batchOutput(restored2, second)
	got2 := &capCollector{}
	restored2.Finish(got2)
	if !reflect.DeepEqual(got2.recs, want.recs) {
		t.Fatalf("per-record->restore->batched diverged:\n got %+v\nwant %+v", got2.recs, want.recs)
	}
}

// windowScript drives a WindowOp through a fixed interleaving of data runs
// and watermarks, dispatching runs through deliver, and returns everything
// emitted. The script includes exactly-late records (Ts == watermark, must
// drop), barely-in-time records (Ts == watermark+1, must keep) and
// out-of-order-but-not-late records.
func windowScript(t *testing.T, deliver func(op *WindowOp, b []Record, out Collector)) ([]Record, int64) {
	t.Helper()
	op := newWindowOp(t,
		WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()},
		WindowQuery{Spec: window.Sliding(20, 10), Fn: agg.CountF64()})
	out := &capCollector{}
	deliver(op, keyedRun(30, 0), out)
	op.OnWatermark(20, out)
	// One run mixing late and in-time elements across keys: Ts <= 20 drops,
	// Ts == 21 is the earliest survivor.
	late := []Record{
		Data(5, 1, 1.0),   // late
		Data(20, 1, 2.0),  // exactly at the watermark: late
		Data(21, 1, 3.0),  // barely in time
		Data(20, 4, 4.0),  // late, different key
		Data(35, 4, 5.0),  // in time
		Data(25, 2, 6.0),  // in time, out of order vs the 35 above
		Data(12, 3, "no"), // non-float64: ignored, not counted as late
	}
	deliver(op, late, out)
	deliver(op, keyedRun(30, 22), out)
	op.OnWatermark(40, out)
	deliver(op, keyedRun(15, 41), out)
	op.OnWatermark(math.MaxInt64, out)
	return out.recs, op.DroppedLate()
}

// TestWindowOpOnBatchMatchesOnRecord proves the windowed keyed contract:
// the batched path produces byte-identical emissions and the same late-drop
// count as per-record delivery across watermark interleavings, including
// drops exactly at the allowed-lateness boundary.
func TestWindowOpOnBatchMatchesOnRecord(t *testing.T) {
	want, wantDropped := windowScript(t, func(op *WindowOp, b []Record, out Collector) {
		for _, r := range b {
			op.OnRecord(r, out)
		}
	})
	got, gotDropped := windowScript(t, func(op *WindowOp, b []Record, out Collector) {
		if ret := op.OnBatch(append([]Record{}, b...), out); len(ret) != 0 {
			t.Fatalf("WindowOp.OnBatch returned records: %+v", ret)
		}
	})
	if wantDropped != 3 {
		t.Fatalf("reference dropped %d late records, want 3", wantDropped)
	}
	if gotDropped != wantDropped {
		t.Fatalf("DroppedLate = %d batched, %d per-record", gotDropped, wantDropped)
	}
	if len(want) == 0 {
		t.Fatal("script emitted no windows")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OnBatch emissions diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestWindowOpBatchSnapshotRestoreMatches: capture mid-script under batched
// delivery, restore, finish per-record — emissions after the restore match
// a pure per-record run of the same tail.
func TestWindowOpBatchSnapshotRestoreMatches(t *testing.T) {
	q := WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()}
	head, tail := keyedRun(30, 0), keyedRun(30, 25)

	ref := newWindowOp(t, q)
	refOut := &capCollector{}
	for _, r := range head {
		ref.OnRecord(r, refOut)
	}
	ref.OnWatermark(20, refOut)
	for _, r := range tail {
		ref.OnRecord(r, refOut)
	}
	ref.OnWatermark(math.MaxInt64, refOut)

	op := newWindowOp(t, q)
	opOut := &capCollector{}
	op.OnBatch(append([]Record{}, head...), opOut)
	op.OnWatermark(20, opOut)
	restored := NewWindowOp(q)().(*WindowOp)
	if err := restored.Open(&OpContext{RestoreGroups: captureGroups(t, op)}); err != nil {
		t.Fatal(err)
	}
	for _, r := range tail {
		restored.OnRecord(r, opOut)
	}
	restored.OnWatermark(math.MaxInt64, opOut)

	if !reflect.DeepEqual(opOut.recs, refOut.recs) {
		t.Fatalf("batched+restore emissions diverged:\n got %+v\nwant %+v", opOut.recs, refOut.recs)
	}
}

// joinScript drives a WindowJoinOp through runs on both edges interleaved
// with watermarks and returns everything emitted.
func joinScript(t *testing.T, deliver func(op *WindowJoinOp, edge int, b []Record, out Collector)) []Record {
	t.Helper()
	op := &WindowJoinOp{Size: 10}
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	out := &capCollector{}
	deliver(op, 0, keyedRun(25, 0), out)
	deliver(op, 1, keyedRun(25, 3), out)
	op.OnWatermark(20, out)
	deliver(op, 1, keyedRun(20, 21), out)
	deliver(op, 0, keyedRun(20, 24), out)
	op.OnWatermark(40, out)
	op.Finish(out)
	return out.recs
}

// TestWindowJoinOnBatchEdgeMatchesOnRecordEdge proves the two-input keyed
// contract: OnBatchEdge over whole runs joins identically to OnRecordEdge.
func TestWindowJoinOnBatchEdgeMatchesOnRecordEdge(t *testing.T) {
	want := joinScript(t, func(op *WindowJoinOp, edge int, b []Record, out Collector) {
		for _, r := range b {
			op.OnRecordEdge(edge, r, out)
		}
	})
	got := joinScript(t, func(op *WindowJoinOp, edge int, b []Record, out Collector) {
		if ret := op.OnBatchEdge(edge, append([]Record{}, b...), out); len(ret) != 0 {
			t.Fatalf("OnBatchEdge returned records: %+v", ret)
		}
	})
	if len(want) == 0 {
		t.Fatal("join script emitted no pairs")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OnBatchEdge emissions diverged:\n got %d pairs\nwant %d pairs", len(got), len(want))
	}
}

// vecKeyedResults runs a two-keyed-stage pipeline (windowed aggregation
// behind one hash edge feeding a keyed reduce behind another) and returns
// the sink contents in a canonical order.
func vecKeyedResults(t *testing.T, par int, opts ...JobOption) []Record {
	t.Helper()
	g := NewGraph("veckeyed")
	src := g.AddSource("src", 2, func(sub, par int) SourceFunc {
		return &GenSource{N: 2000, WatermarkEvery: 64, Gen: func(i int64) Record {
			global := i*2 + int64(sub)
			return Data(global, uint64(global*global%23), float64(global%17))
		}}
	})
	win := g.AddOperator("win", par,
		NewWindowOp(WindowQuery{Spec: window.Tumbling(100), Fn: agg.SumF64()}),
		Edge{From: src, Part: HashPartition})
	toVal := g.AddOperator("toval", par, func() Operator {
		return &MapOp{F: func(r Record) Record {
			r.Value = r.Value.(WindowResult).Value
			return r
		}}
	}, Edge{From: win, Part: Forward})
	sum := g.AddOperator("sum", par, func() Operator {
		return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
	}, Edge{From: toVal, Part: HashPartition})
	sink := &CollectSink{}
	g.AddOperator("out", 1, sink.Factory(), Edge{From: sum, Part: Rebalance})
	run(t, g, opts...)

	recs := sink.Records()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Ts < recs[j].Ts
	})
	return recs
}

// TestVectorizedKeyedOpsArePhysicalOnly proves WithVectorizedKeyedOps is a
// pure execution knob: identical sink contents with the keyed fast path on
// and off, at parallelism 1 and 4 — including under checkpointing, whose
// barriers land between the runs the batched operators consume.
func TestVectorizedKeyedOpsArePhysicalOnly(t *testing.T) {
	for _, par := range []int{1, 4} {
		ref := vecKeyedResults(t, par, WithVectorizedKeyedOps(false))
		if len(ref) == 0 {
			t.Fatalf("par=%d: empty reference run", par)
		}
		got := vecKeyedResults(t, par, WithVectorizedKeyedOps(true))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("par=%d: keyed vectorization changed results (%d vs %d records)",
				par, len(got), len(ref))
		}
		ckpt := vecKeyedResults(t, par, WithVectorizedKeyedOps(true),
			WithCheckpointing(state.NewMemoryBackend(1), 5*time.Millisecond))
		if !reflect.DeepEqual(ckpt, ref) {
			t.Fatalf("par=%d: keyed vectorization under checkpointing changed results", par)
		}
	}
}

// TestKeyedVectorizedRecordsInCounts: records_in on a keyed operator counts
// every record of every run when the batched path consumes them whole.
func TestKeyedVectorizedRecordsInCounts(t *testing.T) {
	const n = 500
	reg := metrics.NewRegistry()
	g := NewGraph("veckeyed-metrics")
	src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
		return &GenSource{N: n, WatermarkEvery: 64, Gen: func(i int64) Record {
			return Data(i, uint64(i%7), float64(i))
		}}
	})
	sum := g.AddOperator("sum", 2, func() Operator {
		return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }, EmitEach: true}
	}, Edge{From: src, Part: HashPartition})
	sink := &CollectSink{}
	g.AddOperator("out", 1, sink.Factory(), Edge{From: sum, Part: Rebalance})
	run(t, g, WithMetrics(reg), WithVectorizedKeyedOps(true))

	if got := reg.Counter("node.sum.records_in").Value(); got != n {
		t.Fatalf("node.sum.records_in = %d, want %d", got, n)
	}
	if got := len(sink.Records()); got != n {
		t.Fatalf("sink saw %d records, want %d", got, n)
	}
}
