package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/state"
	"repro/internal/window"
	"repro/internal/workloads"
)

// adPipeline builds the target-advertisement CTR pipeline used by E8/E9:
// impressions keyed by campaign, tumbling 1s click-through counts.
func adPipeline(env *core.Environment, n int64, perSec float64) *dataflow.CollectSink {
	gen := workloads.NewAdClicks(99, 50, 1000)
	var src *core.Stream
	mk := func(sub, par int, i int64) dataflow.Record {
		e := gen.At(i*int64(par) + int64(sub))
		return dataflow.Data(e.Ts, e.Key, float64(e.Attr))
	}
	if perSec > 0 {
		src = env.FromPacedGenerator("ads", 1, n, perSec, mk)
	} else {
		src = env.FromGenerator("ads", 1, n, mk)
	}
	return src.
		KeyBy("campaign", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("ctr",
			core.WindowedQuery{Window: window.Tumbling(1000), Fn: agg.SumF64()},
			core.WindowedQuery{Window: window.Tumbling(1000), Fn: agg.CountF64()},
		).
		Collect("out")
}

// E8Unified compares the unified continuous pipeline against the simulated
// lambda architecture (periodic batch recomputation) — the "system and
// human latency" argument of the paper.
func E8Unified(quick bool) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "unified model: one program over data at rest and in motion",
		Claim:  "\"reduction of complexity, costs, and latency\" via one engine",
		Header: []string{"mode", "input", "runtime", "result freshness"},
	}
	sizes := []int64{100_000, 200_000, 400_000}
	if quick {
		sizes = []int64{50_000, 100_000}
	}
	// Batch runs: same program, bounded input ("data at rest").
	var batchRuntimes []time.Duration
	for _, n := range sizes {
		env := core.NewEnvironment(core.WithParallelism(2))
		sink := adPipeline(env, n, 0)
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			t.Note("batch n=%d failed: %v", n, err)
			continue
		}
		el := time.Since(start)
		batchRuntimes = append(batchRuntimes, el)
		t.Add("batch", fmtCount(float64(n))+" events", el.Round(time.Millisecond).String(),
			fmt.Sprintf("stale by full period (results: %d)", len(sink.Records())))
	}
	// Continuous run: identical program, paced live input ("data in motion").
	// Event time == wall time offset at 1000 ev/s, so freshness of a window
	// ending at b is (receive wall time - start - b). The sink records the
	// receive time synchronously.
	n := int64(4000)
	if quick {
		n = 2000
	}
	env := core.NewEnvironment(core.WithParallelism(2))
	gen := workloads.NewAdClicks(99, 50, 1000)
	var lat []time.Duration
	start := time.Now()
	env.FromPacedGenerator("ads", 1, n, 1000, func(sub, par int, i int64) dataflow.Record {
		e := gen.At(i)
		return dataflow.Data(e.Ts, e.Key, float64(e.Attr))
	}).
		KeyBy("campaign", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("ctr",
			core.WindowedQuery{Window: window.Tumbling(1000), Fn: agg.SumF64()},
			core.WindowedQuery{Window: window.Tumbling(1000), Fn: agg.CountF64()},
		).
		Sink("fresh", func(r dataflow.Record) {
			wr := r.Value.(dataflow.WindowResult)
			fresh := time.Since(start) - time.Duration(wr.End)*time.Millisecond
			if fresh > 0 && wr.End < int64(n) { // skip the end-of-stream flush
				lat = append(lat, fresh)
			}
		})
	if err := env.Execute(context.Background()); err != nil {
		t.Note("continuous run failed: %v", err)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		mean := time.Duration(0)
		for _, l := range lat {
			mean += l
		}
		mean /= time.Duration(len(lat))
		p99 := lat[len(lat)*99/100]
		t.Add("continuous", fmt.Sprintf("%d ev/s live", 1000),
			"(runs forever)", fmt.Sprintf("mean %s, p99 %s", mean.Round(time.Millisecond), p99.Round(time.Millisecond)))
	}
	// Lambda staleness model: recompute every T; average staleness is T/2
	// plus the batch runtime at the largest measured size.
	if len(batchRuntimes) > 0 {
		T := 60 * time.Second
		stale := T/2 + batchRuntimes[len(batchRuntimes)-1]
		t.Add("lambda (T=60s)", fmtCount(float64(sizes[len(sizes)-1]))+" events",
			batchRuntimes[len(batchRuntimes)-1].Round(time.Millisecond).String(),
			fmt.Sprintf("mean staleness %s", stale.Round(time.Millisecond)))
	}
	t.Note("continuous freshness is bounded by window length + pipeline latency, not by a batch period")
	return t
}

// E9Checkpoint measures the throughput cost of asynchronous barrier
// snapshotting at different intervals, on the windowed ad pipeline.
func E9Checkpoint(quick bool) *Table {
	n := int64(200_000)
	if quick {
		n = 50_000
	}
	t := &Table{
		ID:     "E9",
		Title:  "checkpointing overhead (windowed ad pipeline, bounded run)",
		Claim:  "pipelined engine with exactly-once state via barrier snapshots",
		Header: []string{"interval", "runtime", "throughput", "checkpoints"},
	}
	var base time.Duration
	for _, interval := range []time.Duration{0, time.Second, 250 * time.Millisecond, 50 * time.Millisecond} {
		opts := []core.Option{core.WithParallelism(2)}
		if interval > 0 {
			opts = append(opts, core.WithCheckpointing(state.NewMemoryBackend(3), interval))
		}
		env := core.NewEnvironment(opts...)
		adPipeline(env, n, 0)
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			t.Note("interval %s failed: %v", interval, err)
			continue
		}
		el := time.Since(start)
		label := "off"
		if interval > 0 {
			label = interval.String()
		} else {
			base = el
		}
		over := ""
		if interval > 0 && base > 0 {
			over = fmt.Sprintf(" (%+.1f%%)", (el.Seconds()/base.Seconds()-1)*100)
		}
		t.Add(label, el.Round(time.Millisecond).String()+over,
			fmtRate(float64(n)/el.Seconds()),
			fmt.Sprintf("%d", env.CompletedCheckpoints()))
	}
	return t
}

// E10Optimizer ablates the optimizer's levers: operator chaining, combiner
// insertion under key skew, and parallelism.
func E10Optimizer(quick bool) *Table {
	n := int64(300_000)
	if quick {
		n = 80_000
	}
	t := &Table{
		ID:     "E10",
		Title:  "optimizer ablation: chaining, adaptive combiner, parallelism",
		Claim:  "\"automatically be optimized, parallelized, and adopted to ... data distribution\"",
		Header: []string{"configuration", "workload", "runtime", "throughput"},
	}

	// Chaining: a map-heavy linear pipeline.
	chainRun := func(on bool) time.Duration {
		env := core.NewEnvironment(core.WithParallelism(1), core.WithChaining(on))
		s := env.FromGenerator("gen", 1, n, func(sub, par int, i int64) dataflow.Record {
			return dataflow.Data(i, uint64(i%64), float64(i%101))
		})
		for k := 0; k < 4; k++ {
			s = s.Map(fmt.Sprintf("m%d", k), func(r dataflow.Record) dataflow.Record {
				r.Value = r.Value.(float64) + 1
				return r
			})
		}
		s.Sink("out", func(dataflow.Record) {})
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			return 0
		}
		return time.Since(start)
	}
	for _, on := range []bool{true, false} {
		el := chainRun(on)
		label := "chaining off"
		if on {
			label = "chaining on"
		}
		t.Add(label, "4 chained maps", el.Round(time.Millisecond).String(), fmtRate(float64(n)/el.Seconds()))
	}

	// Combiner under skew: reduce-by-key over zipf keys.
	combRun := func(mode core.CombinerMode, skew float64) time.Duration {
		gen := workloads.NewZipf(5, 100_000, 10_000, skew)
		env := core.NewEnvironment(core.WithParallelism(2), core.WithCombiner(mode))
		env.FromGenerator("gen", 1, n, func(sub, par int, i int64) dataflow.Record {
			e := gen.At(i)
			return dataflow.Data(e.Ts, e.Key, e.Value)
		}).
			KeyBy("key", func(r dataflow.Record) uint64 { return r.Key }).
			ReduceByKey("sum", func(acc, v float64) float64 { return acc + v }, false).
			Sink("out", func(dataflow.Record) {})
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			return 0
		}
		return time.Since(start)
	}
	for _, cfg := range []struct {
		mode  core.CombinerMode
		label string
		skew  float64
		wl    string
	}{
		{core.CombinerOff, "combiner off", 1.4, "zipf s=1.4"},
		{core.CombinerOn, "combiner on", 1.4, "zipf s=1.4"},
		{core.CombinerAuto, "combiner auto", 1.4, "zipf s=1.4"},
		{core.CombinerOff, "combiner off", 1.0, "uniform keys"},
		{core.CombinerOn, "combiner on", 1.0, "uniform keys"},
		{core.CombinerAuto, "combiner auto", 1.0, "uniform keys"},
	} {
		el := combRun(cfg.mode, cfg.skew)
		t.Add(cfg.label, cfg.wl, el.Round(time.Millisecond).String(), fmtRate(float64(n)/el.Seconds()))
	}

	// Parallelism scaling on the windowed pipeline.
	for _, p := range []int{1, 2} {
		env := core.NewEnvironment(core.WithParallelism(p))
		adPipeline(env, n/2, 0)
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			continue
		}
		el := time.Since(start)
		t.Add(fmt.Sprintf("parallelism %d", p), "windowed ads", el.Round(time.Millisecond).String(),
			fmtRate(float64(n/2)/el.Seconds()))
	}
	t.Note("auto combiner should match 'on' under skew and 'off' on unique keys")
	return t
}

// All runs every experiment.
func All(quick bool) []*Table {
	return []*Table{
		E1SinglePeriodic(quick),
		E2MultiQuery(quick),
		E3Redundancy(quick),
		E4Sessions(quick),
		E5Memory(quick),
		E6DataRate(quick),
		E7M4Cost(quick),
		E8Unified(quick),
		E9Checkpoint(quick),
		E10Optimizer(quick),
		E11Ablation(quick),
	}
}

// ByID returns the named experiment runner, or nil.
func ByID(id string) func(bool) *Table {
	switch id {
	case "E1":
		return E1SinglePeriodic
	case "E2":
		return E2MultiQuery
	case "E3":
		return E3Redundancy
	case "E4":
		return E4Sessions
	case "E5":
		return E5Memory
	case "E6":
		return E6DataRate
	case "E7":
		return E7M4Cost
	case "E8":
		return E8Unified
	case "E9":
		return E9Checkpoint
	case "E10":
		return E10Optimizer
	case "E11":
		return E11Ablation
	}
	return nil
}
