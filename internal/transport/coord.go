package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/state"
)

// Config describes one distributed run from the coordinator's side.
type Config struct {
	// Graph is the job to execute; the coordinator is participant 0 and
	// runs every pinned chain (sinks, live sources) itself.
	Graph    *dataflow.Graph
	Chaining bool
	// Workers is how many worker processes the run expects; the
	// coordinator waits for exactly that many hellos before planning.
	Workers int
	// Backend + Interval enable periodic checkpointing; the coordinator
	// persists assembled snapshots (workers never touch the backend).
	Backend  state.Backend
	Interval time.Duration
	// Restore, when set, starts every participant from this snapshot.
	Restore *state.Snapshot
	// Pipeline/Args are forwarded to generic workers so they can rebuild
	// the graph from their pipeline registry.
	Pipeline string
	Args     []string
	// Registry receives coordinator-side metrics; nil disables them.
	Registry *metrics.Registry
	// ListenAddr is the control-plane listen address ("" = ephemeral
	// loopback port; read it back via Addr).
	ListenAddr string
}

// Coordinator owns one distributed run: it distributes the plan, injects
// checkpoint barriers, assembles global snapshots from per-subtask acks,
// and treats any lost worker connection as a job failure (clean abort; the
// persisted snapshots make the job restartable at any worker count).
type Coordinator struct {
	cfg       Config
	ln        net.Listener
	completed atomic.Int64
}

// NewCoordinator binds the control listener so workers can dial before Run
// is entered (Addr is valid immediately).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coordinator listen: %w", err)
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the control-plane address workers dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// CompletedCheckpoints reports how many snapshots this run persisted.
func (c *Coordinator) CompletedCheckpoints() int64 { return c.completed.Load() }

// wconn is the coordinator's handle on one worker's control connection.
type wconn struct {
	i        int
	conn     net.Conn
	dec      *gob.Decoder
	bw       *bufio.Writer
	enc      *gob.Encoder
	mu       sync.Mutex
	dataAddr string
	done     bool
}

func (w *wconn) send(msg ctrlMsg) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(msg); err != nil {
		return err
	}
	return w.bw.Flush()
}

// event is one occurrence on a worker control connection.
type event struct {
	i   int
	msg ctrlMsg
	err error
}

// Run executes the distributed job to completion. It blocks until the local
// share and every worker finished (returning nil), or until any participant
// fails — lost control connection included — in which case everything is
// cancelled and the first error returns.
func (c *Coordinator) Run(ctx context.Context) error {
	RegisterTypes()
	g := c.cfg.Graph
	W := c.cfg.Workers
	reg := c.cfg.Registry

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Unblock Accept when the caller cancels during the gather phase.
	go func() { <-ctx.Done(); c.ln.Close() }()
	defer c.ln.Close()

	// Gather exactly W workers, in connection order; the order fixes the
	// participant indices 1..W.
	workers := make([]*wconn, 0, W)
	defer func() {
		for _, w := range workers {
			w.conn.Close()
		}
	}()
	for i := 1; i <= W; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("coordinator accept: %w", err)
		}
		w := &wconn{i: i, conn: conn, dec: gob.NewDecoder(conn), bw: bufio.NewWriter(conn)}
		w.enc = gob.NewEncoder(w.bw)
		var hello ctrlMsg
		if err := w.dec.Decode(&hello); err != nil || hello.Kind != ctrlHello {
			conn.Close()
			return fmt.Errorf("coordinator: bad hello from connection %d: %v", i, err)
		}
		w.dataAddr = hello.Addr
		workers = append(workers, w)
	}

	// The coordinator's own data plane (participant 0).
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("coordinator data listen: %w", err)
	}
	mesh := NewMesh(0, dataLn, g, reg)
	defer mesh.Close()

	addrs := map[int]string{0: mesh.Addr()}
	for _, w := range workers {
		addrs[w.i] = w.dataAddr
	}
	spec := core.SpecOf(g, c.cfg.Chaining)
	fp := spec.Fingerprint()
	placement := dataflow.ComputePlacement(g, c.cfg.Chaining, W)
	for _, w := range workers {
		plan := &planMsg{
			Self:        w.i,
			Workers:     W,
			Spec:        spec,
			Fingerprint: fp,
			Placement:   placement,
			DataAddrs:   addrs,
			Restore:     c.cfg.Restore,
			Pipeline:    c.cfg.Pipeline,
			Args:        c.cfg.Args,
		}
		if err := w.send(ctrlMsg{Kind: ctrlPlan, Plan: plan}); err != nil {
			return fmt.Errorf("coordinator: send plan to worker %d: %w", w.i, err)
		}
	}

	// One reader per worker funnels control messages into the main loop.
	events := make(chan event, 16)
	for _, w := range workers {
		go func(w *wconn) {
			for {
				var msg ctrlMsg
				if err := w.dec.Decode(&msg); err != nil {
					select {
					case events <- event{i: w.i, err: err}:
					case <-ctx.Done():
					}
					return
				}
				select {
				case events <- event{i: w.i, msg: msg}:
				case <-ctx.Done():
					return
				}
				if msg.Kind == ctrlDone {
					return
				}
			}
		}(w)
	}

	// The coordinator's local share of the job.
	triggers := make(chan int64, 16)
	acks := make(chan dataflow.Ack, 256)
	running := make(chan struct{})
	opts := []dataflow.JobOption{dataflow.WithChaining(c.cfg.Chaining)}
	if reg != nil {
		opts = append(opts, dataflow.WithMetrics(reg))
	}
	if c.cfg.Restore != nil {
		opts = append(opts, dataflow.WithRestore(c.cfg.Restore))
	}
	jb := dataflow.NewJob(g, opts...)
	jobDone := make(chan error, 1)
	go func() {
		err := jb.RunParticipant(ctx, &dataflow.Participation{
			Self:      0,
			Placement: placement,
			Transport: mesh,
			Triggers:  triggers,
			Acks:      acks,
			OnRunning: func() { close(running) },
		})
		if err == nil {
			// Flush remote Ends before the run counts as locally done.
			mesh.DrainOutbound()
		}
		jobDone <- err
	}()

	// Readiness barrier: every worker registered its inbound channels and
	// so did the local participant; only then may producers dial and ship.
	// A participant may legitimately finish during this phase (it was
	// assigned no subtasks, or only instantly-completing ones) — ready
	// always precedes done on an ordered control stream, so done here just
	// counts toward completion.
	readyLeft := W
	localRunning := false
	localDone := false
	doneWorkers := 0
	var failure error
	fail := func(err error) {
		if failure == nil {
			failure = err
		}
	}
	workerEvent := func(ev event) {
		switch {
		case ev.err != nil:
			if workers[ev.i-1].done {
				return // post-done EOF is the worker exiting; benign
			}
			fail(fmt.Errorf("worker %d control connection lost: %w", ev.i, ev.err))
		case ev.msg.Kind == ctrlReady:
			readyLeft--
		case ev.msg.Kind == ctrlDone:
			workers[ev.i-1].done = true
			doneWorkers++
			if ev.msg.Err != "" {
				fail(fmt.Errorf("worker %d: %s", ev.i, ev.msg.Err))
			}
		}
	}
	for (readyLeft > 0 || !localRunning) && failure == nil {
		select {
		case <-running:
			localRunning = true
			running = nil
		case ev := <-events:
			workerEvent(ev)
		case err := <-jobDone:
			localRunning = true
			localDone = true
			jobDone = nil
			if err != nil {
				fail(fmt.Errorf("local participant failed during startup: %w", err))
			}
		case <-ctx.Done():
			fail(ctx.Err())
		}
	}
	if failure == nil {
		mesh.Start()
		for _, w := range workers {
			if w.done {
				continue
			}
			if err := w.send(ctrlMsg{Kind: ctrlStart}); err != nil {
				fail(fmt.Errorf("coordinator: start worker %d: %w", w.i, err))
				break
			}
		}
	}

	// Checkpoint machinery: at most one checkpoint in flight, assembled
	// from the acks of every subtask in the whole job.
	needAcks := g.TotalSubtasks()
	var pending *state.Snapshot
	var got map[state.SubtaskKey]bool
	var nextID int64 = 1
	if c.cfg.Restore != nil {
		nextID = c.cfg.Restore.CheckpointID + 1
	}
	var tick <-chan time.Time
	if c.cfg.Backend != nil && c.cfg.Interval > 0 && failure == nil {
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	merge := func(a dataflow.Ack) {
		if pending == nil || a.Ckpt != pending.CheckpointID {
			return // stale ack from an abandoned checkpoint
		}
		if got[a.Key] {
			return
		}
		got[a.Key] = true
		pending.Put(a.Key, a.Blob)
		for kg, blob := range a.Groups {
			pending.PutGroup(state.GroupKey{OperatorID: a.Key.OperatorID, KeyGroup: kg}, blob)
		}
		if len(got) == needAcks {
			if err := c.cfg.Backend.Persist(pending); err != nil {
				fail(fmt.Errorf("persist checkpoint %d: %w", pending.CheckpointID, err))
			} else {
				c.completed.Add(1)
				if reg != nil {
					reg.Counter("job.checkpoints").Inc()
				}
			}
			pending = nil
		}
	}

	meshFailed := mesh.Failed()
	for failure == nil && !(localDone && doneWorkers == W) {
		select {
		case <-tick:
			if pending != nil {
				continue // previous checkpoint still assembling
			}
			id := nextID
			nextID++
			pending = state.NewSnapshot(id)
			pending.NumKeyGroups = g.KeyGroups()
			got = make(map[state.SubtaskKey]bool, needAcks)
			select {
			case triggers <- id:
			case <-ctx.Done():
				fail(ctx.Err())
			}
			for _, w := range workers {
				if !w.done {
					// A send error will surface as a reader event.
					_ = w.send(ctrlMsg{Kind: ctrlTrigger, Ckpt: id})
				}
			}
		case a := <-acks:
			merge(a)
		case ev := <-events:
			if ev.err == nil && ev.msg.Kind == ctrlAck && ev.msg.Ack != nil {
				merge(*ev.msg.Ack)
				continue
			}
			workerEvent(ev)
		case err := <-jobDone:
			localDone = true
			jobDone = nil
			if err != nil {
				fail(err)
			}
		case <-meshFailed:
			meshFailed = nil // closed channel; fire once
			fail(mesh.Err())
		case <-ctx.Done():
			fail(ctx.Err())
		}
	}

	if failure != nil {
		cancel()
		for _, w := range workers {
			if !w.done {
				_ = w.send(ctrlMsg{Kind: ctrlStop, Err: failure.Error()})
			}
		}
		if !localDone {
			<-jobDone
		}
		return failure
	}
	// Global success: confirm completion (workers are already exiting on
	// their own; the stop is informational and errors are irrelevant).
	for _, w := range workers {
		_ = w.send(ctrlMsg{Kind: ctrlStop})
	}
	return nil
}
