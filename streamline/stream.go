package streamline

import (
	"strings"

	"repro/internal/core"
	"repro/internal/dataflow"
)

// Keyed is the user-visible record of a typed stream: an event timestamp, a
// partitioning key, and a payload of the stream's element type. It is the
// typed rendering of the engine's untyped record.
type Keyed[T any] struct {
	// Ts is the event timestamp in event-time ticks (milliseconds in the
	// examples and experiments).
	Ts int64
	// Key is the partitioning key (meaningful after KeyBy).
	Key uint64
	// Value is the payload.
	Value T
}

// Stream is a typed handle to one stage of a pipeline — the unified
// abstraction over data at rest and data in motion. All transformations
// derive new streams; none execute until Env.Execute. Each typed operator
// lowers to the untyped record plan, so the optimizer (chaining, combiner
// insertion, Cutty sharing) applies unchanged.
//
// Lowering is deferred for the stateless stages (Map, Filter, FlatMap): a
// run of adjacent stages fuses into one lowered operator whose composed
// closure keeps the value in its concrete type across stages — one unbox at
// chain entry, one box at chain exit, instead of a box/unbox pair per stage.
// The fused node's name concatenates the stage names with "+", so plan
// fingerprints stay deterministic; fusion never crosses KeyBy, window, join,
// union, sink, or exchange boundaries, and WithStageFusion(false) restores
// the stage-per-node lowering.
type Stream[T any] struct {
	env *Env

	// inner is the lowered engine stream. It is set at construction for
	// materialized streams (sources, shuffles) and memoized by lower() for
	// deferred stages.
	inner *core.Stream
	// parent and stage describe a deferred stateless stage: stage applied to
	// parent's elements. nil once lowered or for materialized streams.
	parent fusible
	stage  *fuseStage
	// consumers counts derived streams and terminals. A pending stage is
	// absorbed into a downstream fused run only while it has exactly one
	// consumer; branch points materialize their own run instead, so no
	// consumer's records are computed by another branch's operator.
	consumers int
}

// emitFn is the typed hot-path signature fused stages compose: one call per
// element, with the collector threaded as a parameter so the composed
// closures are built once at lowering — never per record.
type emitFn[T any] func(ts int64, key uint64, v T, out dataflow.Collector)

// boxEmit is the terminal emitFn of a fused run: it boxes the typed value
// into an engine record. One generic instantiation per element type, bound
// once at lowering.
func boxEmit[U any](ts int64, key uint64, v U, out dataflow.Collector) {
	out.Collect(dataflow.Data(ts, key, v))
}

// fuseStage is one deferred stateless stage. compose and entry are
// type-erased only at the seams (any wraps a concrete emitFn); inside the
// composed closure values stay in their concrete types.
type fuseStage struct {
	name string
	// compose wraps the downstream emitFn (of this stage's output type) into
	// this stage's emitFn (of its input type).
	compose func(down any) any
	// entry binds the run's single unbox: it turns the fully composed head
	// emitFn into the lowered operator's per-record function.
	entry func(em any) func(dataflow.Record, dataflow.Collector)
	// direct is the classic stage-per-node lowering, used for runs of one
	// and when fusion is disabled — keeping those plans bit-identical to the
	// pre-fusion layout.
	direct func(base *core.Stream) *core.Stream
}

// fusible is the type-erased view of a Stream[T] the fusion walk uses to
// cross element-type boundaries (a Map[T,U]'s parent is a Stream[T], its
// child a Stream[U]).
type fusible interface {
	noteConsumer()
	consumerCount() int
	lowerAny() *core.Stream
	// pendingRun returns the stream's deferred stage and parent, reporting
	// false once lowered or for materialized streams.
	pendingRun() (*fuseStage, fusible, bool)
}

func (s *Stream[T]) noteConsumer()      { s.consumers++ }
func (s *Stream[T]) consumerCount() int { return s.consumers }
func (s *Stream[T]) lowerAny() *core.Stream {
	return s.lower()
}

func (s *Stream[T]) pendingRun() (*fuseStage, fusible, bool) {
	if s.inner != nil || s.stage == nil {
		return nil, nil, false
	}
	return s.stage, s.parent, true
}

// lower materializes the stream into the engine plan, fusing the maximal run
// of pending single-consumer stages ending here into one operator. The
// result is memoized: every consumer of this handle shares the lowered node.
func (s *Stream[T]) lower() *core.Stream {
	if s.inner != nil {
		return s.inner
	}
	// Collect the run tail-first: s's own stage, then ancestors while they
	// are unmaterialized stages feeding only this run.
	stages := []*fuseStage{s.stage}
	base := s.parent
	for {
		st, p, ok := base.pendingRun()
		if !ok || base.consumerCount() != 1 {
			break
		}
		stages = append(stages, st)
		base = p
	}
	cb := base.lowerAny()
	if len(stages) == 1 {
		s.inner = s.stage.direct(cb)
		return s.inner
	}
	var em any = emitFn[T](boxEmit[T])
	names := make([]string, len(stages))
	for i, st := range stages {
		em = st.compose(em)
		names[len(stages)-1-i] = st.name
	}
	head := stages[len(stages)-1]
	s.inner = cb.FlatMap(strings.Join(names, "+"), head.entry(em))
	return s.inner
}

// derive creates the typed handle of a deferred stage over parent. With
// fusion disabled the stage lowers immediately through its direct path.
func derive[U, T any](parent *Stream[T], st *fuseStage) *Stream[U] {
	if !parent.env.core.StageFusion() {
		return &Stream[U]{env: parent.env, inner: st.direct(parent.lower())}
	}
	parent.noteConsumer()
	return &Stream[U]{env: parent.env, parent: parent, stage: st}
}

// box converts a typed record to the engine representation.
func box[T any](k Keyed[T]) dataflow.Record {
	return dataflow.Data(k.Ts, k.Key, k.Value)
}

// unbox converts an engine record back to its typed form. It panics on a
// payload of the wrong type, which indicates a bug in the lowering layer —
// typed plans never mix payload types on one edge.
func unbox[T any](r dataflow.Record) Keyed[T] {
	return Keyed[T]{Ts: r.Ts, Key: r.Key, Value: r.Value.(T)}
}

// Inner exposes the untyped stream this handle lowers to (diagnostics and
// interop with internal/core builders). Calling it materializes the handle,
// so pending stages upstream fuse up to this point and later consumers build
// on the lowered node.
func (s *Stream[T]) Inner() *core.Stream { return s.lower() }

// Map derives a stream by applying f to every element. Timestamps and keys
// are preserved.
func Map[T, U any](s *Stream[T], name string, f func(T) U) *Stream[U] {
	return derive[U](s, &fuseStage{
		name: name,
		compose: func(down any) any {
			d := down.(emitFn[U])
			return emitFn[T](func(ts int64, key uint64, v T, out dataflow.Collector) {
				d(ts, key, f(v), out)
			})
		},
		entry: entryFor[T],
		direct: func(base *core.Stream) *core.Stream {
			return base.Map(name, func(r dataflow.Record) dataflow.Record {
				r.Value = f(r.Value.(T))
				return r
			})
		},
	})
}

// Filter derives a stream keeping elements for which f returns true.
func Filter[T any](s *Stream[T], name string, f func(T) bool) *Stream[T] {
	return derive[T](s, &fuseStage{
		name: name,
		compose: func(down any) any {
			d := down.(emitFn[T])
			return emitFn[T](func(ts int64, key uint64, v T, out dataflow.Collector) {
				if f(v) {
					d(ts, key, v, out)
				}
			})
		},
		entry: entryFor[T],
		direct: func(base *core.Stream) *core.Stream {
			return base.Filter(name, func(r dataflow.Record) bool {
				return f(r.Value.(T))
			})
		},
	})
}

// entryFor binds a fused run's single unbox for head-stage input type T.
func entryFor[T any](em any) func(dataflow.Record, dataflow.Collector) {
	e := em.(emitFn[T])
	return func(r dataflow.Record, out dataflow.Collector) {
		e(r.Ts, r.Key, r.Value.(T), out)
	}
}

// Emitter receives the elements a FlatMap function produces. Emitted
// elements inherit the input record's timestamp and key unless EmitAt is
// used. It is passed by value and carries the downstream emit function bound
// once at lowering — per-record use allocates nothing.
type Emitter[U any] struct {
	ts   int64
	key  uint64
	out  dataflow.Collector
	emit emitFn[U]
}

// Emit sends one element downstream with the input's timestamp and key.
func (e Emitter[U]) Emit(v U) { e.emit(e.ts, e.key, v, e.out) }

// EmitAt sends one element downstream with an explicit timestamp; the key
// is still inherited from the input record.
func (e Emitter[U]) EmitAt(ts int64, v U) { e.emit(ts, e.key, v, e.out) }

// FlatMap derives a stream where f may emit any number of elements per
// input.
func FlatMap[T, U any](s *Stream[T], name string, f func(T, Emitter[U])) *Stream[U] {
	return derive[U](s, &fuseStage{
		name: name,
		compose: func(down any) any {
			d := down.(emitFn[U])
			return emitFn[T](func(ts int64, key uint64, v T, out dataflow.Collector) {
				f(v, Emitter[U]{ts: ts, key: key, out: out, emit: d})
			})
		},
		entry: entryFor[T],
		direct: func(base *core.Stream) *core.Stream {
			return base.FlatMap(name, func(r dataflow.Record, out dataflow.Collector) {
				f(r.Value.(T), Emitter[U]{ts: r.Ts, key: r.Key, out: out, emit: boxEmit[U]})
			})
		},
	})
}

// KeyBy re-keys every element with keyFn. The next shuffling transformation
// (ReduceByKey, WindowAggregate, JoinWindow) partitions by this key.
func KeyBy[T any](s *Stream[T], name string, keyFn func(T) uint64) *Stream[T] {
	s.noteConsumer()
	inner := s.lower().KeyBy(name, func(r dataflow.Record) uint64 {
		return keyFn(r.Value.(T))
	})
	return &Stream[T]{env: s.env, inner: inner}
}

// KeyByRecord re-keys every element with keyFn, which sees the full Keyed
// record — timestamp and currently stamped key included. Use it when the
// source already stamps a meaningful key; KeyBy is the value-only form.
func KeyByRecord[T any](s *Stream[T], name string, keyFn func(Keyed[T]) uint64) *Stream[T] {
	s.noteConsumer()
	inner := s.lower().KeyBy(name, func(r dataflow.Record) uint64 {
		return keyFn(unbox[T](r))
	})
	return &Stream[T]{env: s.env, inner: inner}
}

// KeyByString re-keys every element by hashing the string keyFn extracts
// (FNV-1a, via the engine's KeyOf).
func KeyByString[T any](s *Stream[T], name string, keyFn func(T) string) *Stream[T] {
	return KeyBy(s, name, func(v T) uint64 { return dataflow.KeyOf(keyFn(v)) })
}

// KeyOf hashes an arbitrary string to a partitioning key — the same hash
// KeyByString applies, exposed for callers that pre-compute keys.
func KeyOf(s string) uint64 { return dataflow.KeyOf(s) }

// ReduceByKey aggregates float64 elements per key with the associative,
// commutative function f. In bounded execution it emits one element per key
// at the end; in continuous mode (emitEach) it emits every update. The
// optimizer inserts a combiner before the shuffle according to the
// environment's CombinerMode.
func ReduceByKey(s *Stream[float64], name string, f func(acc, v float64) float64, emitEach bool) *Stream[float64] {
	s.noteConsumer()
	return &Stream[float64]{env: s.env, inner: s.lower().ReduceByKey(name, f, emitEach)}
}

// JoinedPair is one match of a windowed equi-join: the left and right
// values that shared a key within one tumbling window.
type JoinedPair[L, R any] struct {
	WindowStart int64
	WindowEnd   int64
	Left        L
	Right       R
}

// JoinWindow equi-joins this stream (left) with other (right) on the
// element key within tumbling event-time windows of the given size. Both
// streams must be keyed (KeyBy first). The engine's join operates on
// float64 payloads, so both sides are Stream[float64]. Unlike the other
// operators, the lowering appends one re-typing map stage after the join;
// it sits on a forward edge, so chaining fuses it into the join subtask.
func JoinWindow(s *Stream[float64], name string, other *Stream[float64], size int64) *Stream[JoinedPair[float64, float64]] {
	s.noteConsumer()
	other.noteConsumer()
	joined := s.lower().JoinWindow(name, other.lower(), size)
	// Rebox the engine's pair type into the typed pair on a chained edge.
	inner := joined.Map(name+"-typed", func(r dataflow.Record) dataflow.Record {
		p := r.Value.(dataflow.JoinedPair)
		r.Value = JoinedPair[float64, float64]{
			WindowStart: p.WindowStart,
			WindowEnd:   p.WindowEnd,
			Left:        p.Left,
			Right:       p.Right,
		}
		return r
	})
	return &Stream[JoinedPair[float64, float64]]{env: s.env, inner: inner}
}

// Union merges this stream with others of the same element type (no
// ordering guarantee).
func Union[T any](s *Stream[T], name string, others ...*Stream[T]) *Stream[T] {
	s.noteConsumer()
	rest := make([]*core.Stream, len(others))
	for i, o := range others {
		o.noteConsumer()
		rest[i] = o.lower()
	}
	return &Stream[T]{env: s.env, inner: s.lower().Union(name, rest...)}
}

// Sink terminates the stream invoking f for every element.
func Sink[T any](s *Stream[T], name string, f func(Keyed[T])) {
	s.noteConsumer()
	s.lower().Sink(name, func(r dataflow.Record) { f(unbox[T](r)) })
}

// Results holds the records a Collect terminal gathered; read it after
// Env.Execute returns.
type Results[T any] struct {
	sink *dataflow.CollectSink
}

// Records returns everything collected so far, unboxed.
func (c *Results[T]) Records() []Keyed[T] {
	recs := c.sink.Records()
	out := make([]Keyed[T], len(recs))
	for i, r := range recs {
		out[i] = unbox[T](r)
	}
	return out
}

// Collect terminates the stream into an in-memory Results handle.
func Collect[T any](s *Stream[T], name string) *Results[T] {
	s.noteConsumer()
	return &Results[T]{sink: s.lower().Collect(name)}
}
