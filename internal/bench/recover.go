package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/dataflow"
	"repro/internal/transport"
	"repro/streamline"
)

// The recover benchmark measures the self-healing runtime's MTTR: a
// supervised two-worker job over loopback TCP absorbs a series of injected
// worker kills, and each recovery is decomposed into detect (kill →
// coordinator observes the failure) and repair (detected → recovered epoch's
// producers unleashed, restored from the newest checkpoint). A replacement
// worker loop starts at each kill, so the measurement captures the
// supervisor's detect/restore path rather than the rejoin-window wait.
// Output is verified byte-identical to an unfaulted single-process run —
// a recovery that loses or duplicates records does not count as repaired.
// Results go to BENCH_recover.json via `streamline-bench -recover`.

// RecoverRestart is one injected kill and its measured recovery.
type RecoverRestart struct {
	Attempt    int     `json:"attempt"`
	Cause      string  `json:"cause"`
	DetectMs   float64 `json:"detect_ms"` // kill → failure observed
	RepairMs   float64 `json:"repair_ms"` // observed → epoch restored (downtime)
	TotalMs    float64 `json:"total_ms"`  // kill → epoch restored
	Workers    int     `json:"workers"`
	Checkpoint int64   `json:"checkpoint"`
}

// RecoverReport is the full fault series plus the MTTR summary.
type RecoverReport struct {
	Workers     int              `json:"workers"`
	Kills       int              `json:"kills"`
	Records     int64            `json:"records"`
	Checkpoints int64            `json:"checkpoints"`
	Restarts    []RecoverRestart `json:"restarts"`
	MTTRMeanMs  float64          `json:"mttr_mean_ms"` // mean detect→restored
	MTTRMaxMs   float64          `json:"mttr_max_ms"`
	OutputOK    bool             `json:"output_ok"`
}

// recoverEnv builds the benchmark pipeline: a paced deterministic generator,
// keyed 31 ways into a hash-shuffled sum that emits only at end of stream —
// so the collected output of a faulted run is comparable byte for byte with
// an unfaulted one.
func recoverEnv(n int64, perSec float64) (*streamline.Env, *streamline.Results[float64]) {
	env := streamline.New(streamline.WithParallelism(2))
	var gen streamline.Source[float64] = streamline.Generator(n, func(sub, par int, i int64) streamline.Keyed[float64] {
		global := i*int64(par) + int64(sub)
		return streamline.Keyed[float64]{Ts: global, Key: uint64(global % 31), Value: float64(global%7) + 1}
	})
	if perSec > 0 {
		gen = streamline.Paced(gen, perSec)
	}
	src := streamline.From(env, "gen", gen, streamline.WithSourceParallelism(2))
	keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	return env, streamline.Collect(sums, "out")
}

func renderRecoverSums(out *streamline.Results[float64]) string {
	lines := make([]string, 0, len(out.Records()))
	for _, r := range out.Records() {
		lines = append(lines, fmt.Sprintf("%d=%v", r.Key, r.Value))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Recover workload sizes: total generated records and the per-subtask pace
// that keeps the job alive long enough for the fault series.
const (
	RecoverRecords      int64 = 60_000
	RecoverPace               = 6_000.0
	RecoverKills              = 3
	RecoverQuickRecords int64 = 20_000
	RecoverQuickPace          = 5_000.0
	RecoverQuickKills         = 2
)

// Recover runs the fault series and measures every recovery.
func Recover(quick bool) (*RecoverReport, error) {
	n, pace, kills := RecoverRecords, RecoverPace, RecoverKills
	if quick {
		n, pace, kills = RecoverQuickRecords, RecoverQuickPace, RecoverQuickKills
	}
	const workers = 2

	refEnv, refOut := recoverEnv(n, 0)
	if err := refEnv.Execute(context.Background()); err != nil {
		return nil, fmt.Errorf("reference run: %w", err)
	}
	want := renderRecoverSums(refOut)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	backend := streamline.NewMemoryBackend(0)
	supEnv, supOut := recoverEnv(n, pace)
	sup, err := transport.NewSupervisor(transport.Config{
		Graph:             supEnv.Core().Graph(),
		Chaining:          supEnv.Core().Chaining(),
		Workers:           workers,
		Backend:           backend,
		Interval:          10 * time.Millisecond,
		Listener:          ln,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
	}, transport.SupervisionPolicy{
		MaxRestarts:  kills + 2,
		BaseBackoff:  10 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		RejoinWindow: time.Second,
	})
	if err != nil {
		return nil, err
	}

	build := func(string, []string) (*dataflow.Graph, bool, error) {
		env, _ := recoverEnv(n, pace)
		return env.Core().Graph(), env.Core().Chaining(), nil
	}
	killer := chaos.NewKiller()
	nextWorker := 0
	startWorker := func() string {
		name := fmt.Sprintf("w%d", nextWorker)
		nextWorker++
		wctx, wcancel := context.WithCancel(ctx)
		killer.RegisterCancel(name, wcancel)
		go func() {
			defer wcancel()
			_ = transport.RunWorkerLoop(wctx, sup.Addr(), nil, build,
				transport.WithWorkerDialPolicy(transport.DialPolicy{BaseDelay: 5 * time.Millisecond, MaxWait: 30 * time.Second}))
		}()
		return name
	}
	victims := make([]string, 0, workers)
	for i := 0; i < workers; i++ {
		victims = append(victims, startWorker())
	}

	supErr := make(chan error, 1)
	go func() { supErr <- sup.Run(ctx) }()

	waitCkpts := func(min int64) error {
		deadline := time.Now().Add(time.Minute)
		for sup.CompletedCheckpoints() < min {
			select {
			case err := <-supErr:
				return fmt.Errorf("job finished before the fault series completed (checkpoints=%d, err=%v)", sup.CompletedCheckpoints(), err)
			case <-time.After(2 * time.Millisecond):
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out waiting for checkpoint %d", min)
			}
		}
		return nil
	}

	killAt := make([]time.Time, 0, kills)
	for k := 0; k < kills; k++ {
		// A fresh checkpoint after the previous recovery proves the epoch is
		// live before the next kill lands.
		if err := waitCkpts(sup.CompletedCheckpoints() + 2); err != nil {
			return nil, err
		}
		victim := victims[k%len(victims)]
		killAt = append(killAt, time.Now())
		killer.Kill(victim)
		victims[k%len(victims)] = startWorker() // replacement rejoins the next epoch
		deadline := time.Now().Add(time.Minute)
		for len(sup.Stats()) < k+1 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("recovery %d never completed", k+1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := <-supErr; err != nil {
		return nil, fmt.Errorf("supervised run: %w", err)
	}

	rep := &RecoverReport{
		Workers:     workers,
		Kills:       kills,
		Records:     n,
		Checkpoints: sup.CompletedCheckpoints(),
		OutputOK:    renderRecoverSums(supOut) == want,
	}
	if !rep.OutputOK {
		return nil, fmt.Errorf("recovered output diverged from the unfaulted run")
	}
	for i, st := range sup.Stats() {
		if i >= len(killAt) {
			break
		}
		r := RecoverRestart{
			Attempt:    st.Attempt,
			Cause:      st.Cause,
			DetectMs:   st.FailedAt.Sub(killAt[i]).Seconds() * 1e3,
			RepairMs:   st.Downtime.Seconds() * 1e3,
			TotalMs:    st.RestoredAt.Sub(killAt[i]).Seconds() * 1e3,
			Workers:    st.Workers,
			Checkpoint: st.Checkpoint,
		}
		rep.Restarts = append(rep.Restarts, r)
		rep.MTTRMeanMs += r.RepairMs
		if r.RepairMs > rep.MTTRMaxMs {
			rep.MTTRMaxMs = r.RepairMs
		}
	}
	if len(rep.Restarts) > 0 {
		rep.MTTRMeanMs /= float64(len(rep.Restarts))
	}
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *RecoverReport) Table() *Table {
	t := &Table{
		ID:     "RECOVER",
		Title:  "supervised recovery: detect and repair per injected worker kill",
		Claim:  "worker failures heal from the last checkpoint in well under a second",
		Header: []string{"kill", "cause", "detect", "repair", "total", "workers", "ckpt"},
	}
	for i, st := range r.Restarts {
		cause := st.Cause
		if len(cause) > 40 {
			cause = cause[:37] + "..."
		}
		t.Add(fmt.Sprintf("%d", i+1), cause,
			fmt.Sprintf("%.1fms", st.DetectMs), fmt.Sprintf("%.1fms", st.RepairMs),
			fmt.Sprintf("%.1fms", st.TotalMs), fmt.Sprintf("%d", st.Workers),
			fmt.Sprintf("%d", st.Checkpoint))
	}
	t.Note("%d kills over %s records, %d checkpoints; detect→restored MTTR mean %.1fms, max %.1fms; output byte-identical: %v",
		r.Kills, fmtCount(float64(r.Records)), r.Checkpoints, r.MTTRMeanMs, r.MTTRMaxMs, r.OutputOK)
	return t
}

// WriteJSON records the report (the recovery trajectory file
// BENCH_recover.json).
func (r *RecoverReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
