// Package seglog is STREAMLINE's embedded history store: durable,
// append-only segment-log topics in the storage architecture of a Kafka
// partition, scaled down to an embedded library. A topic is a directory of
// segment files; each segment holds length-prefixed, CRC32-protected record
// frames carrying an event timestamp, a partitioning key and an opaque
// payload, addressed by monotonically increasing logical offsets. A sparse
// offset→byte-position index rides next to every segment, so positioned
// reads (tailing from an offset, aligning a byte-range split to a record
// boundary) skip at most IndexEvery bytes of scanning.
//
// The store closes the paper's at-rest/in-motion loop: a pipeline's output
// persisted to a topic *is* data at rest, and the same records replay later
// as the history side of a hybrid source — the direction H-STREAM argues
// (query big streams and their data histories in one system).
//
// # Durability model
//
// Appends buffer in the writer and become visible to readers only at frame
// boundaries (Flush), so a reader below the visible size always sees whole,
// valid frames. The fsync policy (Options.Fsync) decides when visible bytes
// are forced to disk: never (OS decides; Sync and segment rolls still
// sync), on every append, or at a bounded interval. Checkpoint-integrated
// sinks call Sync at every snapshot regardless, so a checkpointed
// high-water offset is always durable.
//
// Crash recovery reopens a topic by scanning its last segment: the first
// torn frame — a short header, an oversized length, a CRC mismatch —
// truncates the segment to the last valid record instead of failing the
// topic, and the segment's index is rebuilt from the scan (a partially
// written index is discarded the same way). Sealed segments are never torn
// by a process crash: sealing syncs them.
//
// # Retention
//
// Segments roll by size (Options.SegmentBytes) and optionally by age
// (Options.SegmentAge); whole sealed segments are then deleted when the
// topic exceeds Options.RetainBytes or a segment's data outlives
// Options.RetainAge. Retention never touches the active segment, and the
// oldest retained offset moves forward in segment-sized steps — readers
// below it fail loudly rather than silently skipping.
package seglog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Defaults for Options fields left zero.
const (
	// DefaultSegmentBytes is the roll threshold of stores that do not
	// choose one: large enough that frame and index overhead is noise,
	// small enough that retention reclaims space in useful steps.
	DefaultSegmentBytes = 64 << 20
	// DefaultIndexEvery is the sparse-index granularity: one entry per this
	// many bytes of frames, bounding the alignment scan of positioned reads.
	DefaultIndexEvery = 32 << 10
	// DefaultFsyncEvery is the FsyncInterval period when none is given.
	DefaultFsyncEvery = 100 * time.Millisecond
)

// FsyncPolicy picks when appended bytes are forced to disk.
type FsyncPolicy uint8

const (
	// FsyncNever leaves durability to the OS; Sync, segment rolls and
	// store close still sync. The fastest policy: a crash may lose the
	// unsynced tail of the active segment (recovery truncates to the last
	// valid record), but checkpointed offsets stay durable because
	// checkpoint sinks call Sync explicitly.
	FsyncNever FsyncPolicy = iota
	// FsyncAlways syncs after every append — no loss window, slowest.
	FsyncAlways
	// FsyncInterval syncs when Options.FsyncEvery has elapsed since the
	// last sync, bounding the loss window by time.
	FsyncInterval
)

// Options configure a Store; the zero value is usable (size-based roll at
// DefaultSegmentBytes, unlimited retention, FsyncNever).
type Options struct {
	// SegmentBytes rolls the active segment when it reaches this size
	// (<= 0 uses DefaultSegmentBytes).
	SegmentBytes int64
	// SegmentAge additionally rolls a non-empty active segment older than
	// this (checked on append; 0 disables time-based roll).
	SegmentAge time.Duration
	// RetainBytes deletes the oldest sealed segments while the topic
	// exceeds this total size (0 retains everything).
	RetainBytes int64
	// RetainAge deletes sealed segments whose newest data is older than
	// this (by file modification time; 0 retains everything).
	RetainAge time.Duration
	// Fsync is the durability policy (default FsyncNever).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (<= 0 uses DefaultFsyncEvery).
	FsyncEvery time.Duration
	// IndexEvery is the sparse-index granularity in bytes (<= 0 uses
	// DefaultIndexEvery).
	IndexEvery int64
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) indexEvery() int64 {
	if o.IndexEvery <= 0 {
		return DefaultIndexEvery
	}
	return o.IndexEvery
}

func (o Options) fsyncEvery() time.Duration {
	if o.FsyncEvery <= 0 {
		return DefaultFsyncEvery
	}
	return o.FsyncEvery
}

// Store is a directory of topics. One Store value owns each topic's single
// writer; open it once per process and share it.
type Store struct {
	dir  string
	opts Options
	reg  *metrics.Registry

	mu     sync.Mutex
	topics map[string]*Topic
	closed bool
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seglog: %w", err)
	}
	return &Store{
		dir:    dir,
		opts:   opts,
		reg:    metrics.NewRegistry(),
		topics: make(map[string]*Topic),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Metrics exposes the store's observability registry. Per-topic series:
// topic.<name>.appended_bytes, .appended_records, .scanned_bytes,
// .scanned_records (counters), .segments and .retained_bytes (gauges).
func (s *Store) Metrics() *metrics.Registry { return s.reg }

// validTopicName restricts topic names to path-safe tokens — a topic name
// becomes a directory name.
func validTopicName(name string) error {
	if name == "" {
		return fmt.Errorf("seglog: empty topic name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("seglog: topic name %q: only letters, digits, '-', '_', '.' allowed", name)
		}
	}
	if strings.Trim(name, ".") == "" {
		return fmt.Errorf("seglog: topic name %q is not allowed", name)
	}
	return nil
}

// Topic opens (creating if needed) the named topic, running crash recovery
// if its last segment has a torn tail. The returned Topic is cached: every
// call with the same name yields the same single-writer instance.
func (s *Store) Topic(name string) (*Topic, error) {
	if err := validTopicName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("seglog: store is closed")
	}
	if t, ok := s.topics[name]; ok {
		return t, nil
	}
	t, err := openTopic(s, name)
	if err != nil {
		return nil, err
	}
	s.topics[name] = t
	return t, nil
}

// Topics lists the store's topic names (existing directories, opened or
// not), sorted.
func (s *Store) Topics() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("seglog: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && validTopicName(e.Name()) == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Close syncs and closes every open topic. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, t := range s.topics {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// topicDir returns the directory of a topic.
func (s *Store) topicDir(name string) string { return filepath.Join(s.dir, name) }
