package seglog

import (
	"fmt"
	"io"
	"os"
)

// RangeReader reads the records of one segment whose frames *start* inside
// a byte range [start, end) — the record-alignment contract of dataflow
// byte-range splits: a frame straddling end is consumed entirely by the
// reader whose range it starts in. Ranges come from a frozen View, whose
// visible end always lands on a frame boundary, so a RangeReader never
// observes partial frames.
type RangeReader struct {
	t    *Topic
	f    *os.File
	sc   *frameScanner
	seg  segment
	end  int64 // byte-range end (exclusive, by frame start)
	off  int64 // logical offset of the next record
	rec  Record
	nRec int64
	nByt int64
}

// OpenRange opens a byte-range reader on the segment at path. start/end
// bound the range; resumeAt (>= 0) instead positions the reader at an exact
// logical offset inside the range — the seek-based restore path. The
// reader aligns forward to the first frame starting at or after the target
// using the sparse index, falling back to a scan from the segment start if
// the index misleads.
func (t *Topic) OpenRange(path string, start, end, resumeAt int64) (*RangeReader, error) {
	seg, ok := t.segmentByPath(path)
	if !ok {
		return nil, fmt.Errorf("seglog: topic %q: segment %s no longer exists (dropped by retention?)", t.name, path)
	}
	if end > seg.size {
		end = seg.size
	}
	r := &RangeReader{t: t, seg: seg, end: end}
	if err := r.open(start, resumeAt); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *RangeReader) open(start, resumeAt int64) error {
	f, err := os.Open(r.seg.path)
	if err != nil {
		return fmt.Errorf("seglog: open segment: %w", err)
	}
	r.f = f
	var e indexEntry
	if resumeAt >= 0 {
		e = r.seg.seekEntryOff(resumeAt)
	} else {
		e = r.seg.seekEntry(start)
	}
	if err := r.align(e, start, resumeAt); err == nil {
		return nil
	} else if e.Pos == 0 {
		r.f.Close()
		return err
	}
	// The index pointed somewhere invalid (stale entry after a truncate).
	// Fall back to scanning from the segment start.
	e = indexEntry{Off: r.seg.base, Pos: 0}
	if err := r.align(e, start, resumeAt); err != nil {
		r.f.Close()
		return err
	}
	return nil
}

// align positions the scanner on the first frame at/after the target,
// starting from index entry e.
func (r *RangeReader) align(e indexEntry, start, resumeAt int64) error {
	if _, err := r.f.Seek(e.Pos, io.SeekStart); err != nil {
		return fmt.Errorf("seglog: seek segment: %w", err)
	}
	r.sc = newFrameScanner(r.f, e.Pos)
	r.off = e.Off
	for {
		if resumeAt >= 0 {
			if r.off >= resumeAt {
				return nil
			}
		} else if r.sc.pos >= start {
			return nil
		}
		if r.sc.pos >= r.seg.size {
			// Ran past the visible end while still below the target: an
			// empty range (or a resume target at the segment's end).
			return nil
		}
		if _, _, _, ok, err := r.sc.next(); err != nil {
			return fmt.Errorf("seglog: align at byte %d: %w", r.sc.pos, err)
		} else if !ok {
			return nil
		}
		r.off++
	}
}

// Next returns the next record whose frame starts inside the range. The
// record's Payload is only valid until the following call. ok=false marks
// the clean end of the range.
func (r *RangeReader) Next() (Record, bool, error) {
	if r.sc.pos >= r.end || r.sc.pos >= r.seg.size {
		return Record{}, false, nil
	}
	before := r.sc.pos
	ts, key, payload, ok, err := r.sc.next()
	if err != nil {
		return Record{}, false, fmt.Errorf("seglog: read %s: %w", r.seg.path, err)
	}
	if !ok {
		return Record{}, false, nil
	}
	r.rec = Record{Offset: r.off, Ts: ts, Key: key, Payload: payload}
	r.off++
	r.nRec++
	r.nByt += r.sc.pos - before
	return r.rec, true, nil
}

// Pos returns the logical offset of the next unread record — the seek
// cursor a snapshot stores and a restore passes back as resumeAt.
func (r *RangeReader) Pos() int64 { return r.off }

// BytePos returns the byte position of the next unread frame.
func (r *RangeReader) BytePos() int64 { return r.sc.pos }

// Close releases the reader and flushes its read counters to the topic's
// metrics.
func (r *RangeReader) Close() error {
	r.t.scanned(r.nRec, r.nByt)
	r.nRec, r.nByt = 0, 0
	return r.f.Close()
}

// TailReader follows a topic by logical offset across segment boundaries,
// including the growing active segment. It returns ok=false when caught up
// (the caller polls); appends become visible after the writer's Flush, and
// Next nudges the writer's buffer itself when it finds nothing, so a
// steadily appending topic never stalls a follower for long.
type TailReader struct {
	t    *Topic
	off  int64 // logical offset of the next record
	seg  segment
	f    *os.File
	sc   *frameScanner
	open bool
	rec  Record
	nRec int64
	nByt int64
}

// ReadFrom opens a follower positioned at logical offset off.
func (t *Topic) ReadFrom(off int64) (*TailReader, error) {
	if off < 0 {
		off = 0
	}
	return &TailReader{t: t, off: off}, nil
}

// Next returns the next record, or ok=false when the reader has caught up
// with the visible end of the topic. When caught up it nudges the writer's
// buffer once (Flush) before giving up, so buffered appends surface without
// waiting for the writer's own flush. The record's Payload is only valid
// until the following call.
func (r *TailReader) Next() (Record, bool, error) {
	for {
		if !r.open {
			seg, ok, err := r.t.tailView(r.off)
			if err != nil {
				return Record{}, false, err
			}
			if !ok {
				// Nothing visible at this offset. Poke the writer's buffer
				// once: under light load frames sit buffered until a flush.
				if err := r.t.Flush(); err != nil {
					return Record{}, false, err
				}
				if seg, ok, err = r.t.tailView(r.off); err != nil || !ok {
					return Record{}, false, err
				}
			}
			if err := r.openSegment(seg); err != nil {
				return Record{}, false, err
			}
		}
		// Bound the read by the open segment's visible bytes.
		var vis int64
		if r.seg.records > 0 {
			// Sealed segment: fixed size, fixed record count.
			if r.off >= r.seg.base+r.seg.records {
				r.closeFile()
				continue
			}
			vis = r.seg.size
		} else {
			flushed, flushedNext, activeBase := r.t.visibleState()
			if activeBase != r.seg.base {
				// Our segment was sealed (and possibly truncated away) since
				// we opened it; reopen to refresh its metadata.
				r.closeFile()
				continue
			}
			if r.off >= flushedNext {
				if err := r.t.Flush(); err != nil {
					return Record{}, false, err
				}
				if flushed, flushedNext, _ = r.t.visibleState(); r.off >= flushedNext {
					return Record{}, false, nil
				}
			}
			vis = flushed
		}
		if r.sc.pos >= vis {
			return Record{}, false, nil
		}
		before := r.sc.pos
		ts, key, payload, ok, err := r.sc.next()
		if err != nil {
			r.closeFile()
			return Record{}, false, fmt.Errorf("seglog: tail %s: %w", r.seg.path, err)
		}
		if !ok {
			return Record{}, false, nil
		}
		r.rec = Record{Offset: r.off, Ts: ts, Key: key, Payload: payload}
		r.off++
		r.nRec++
		r.nByt += r.sc.pos - before
		return r.rec, true, nil
	}
}

func (r *TailReader) openSegment(seg segment) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("seglog: open segment: %w", err)
	}
	e := seg.seekEntryOff(r.off)
	if _, err := f.Seek(e.Pos, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("seglog: seek segment: %w", err)
	}
	sc := newFrameScanner(f, e.Pos)
	// Skip forward from the index entry to the exact logical offset.
	for cur := e.Off; cur < r.off; cur++ {
		if _, _, _, ok, err := sc.next(); err != nil || !ok {
			f.Close()
			if err == nil {
				err = fmt.Errorf("offset %d beyond segment", r.off)
			}
			return fmt.Errorf("seglog: position tail: %w", err)
		}
	}
	r.seg, r.f, r.sc, r.open = seg, f, sc, true
	return nil
}

func (r *TailReader) closeFile() {
	if r.open {
		r.f.Close()
		r.open = false
	}
}

// Pos returns the logical offset of the next unread record.
func (r *TailReader) Pos() int64 { return r.off }

// Close releases the reader and flushes its read counters.
func (r *TailReader) Close() error {
	r.t.scanned(r.nRec, r.nByt)
	r.nRec, r.nByt = 0, 0
	r.closeFile()
	return nil
}
