// Package baselines implements the prior-art window aggregation strategies
// that Cutty is evaluated against in the STREAMLINE paper's first research
// highlight: per-window Buckets (Flink 1.x style), Eager tuple buffering,
// Pairs (Krishnamurthy et al.), Panes (Li et al.) and B-Int interval sharing
// (Arasu & Widom). All satisfy engine.Engine so that the E1–E5 experiments
// and the conformance tests drive every strategy identically.
//
// Each implementation follows the published cost model faithfully:
//
//	Buckets  O(open windows) combines per element, partials per open window
//	Eager    O(1) appends per element but buffers raw tuples, O(n) per window
//	Pairs    <= 2 slices per slide, linear combine per window; periodic only
//	Panes    slices of gcd(range, slide), linear combine per window; periodic only
//	B-Int    element-granularity aggregate tree: O(log n) per element and window
package baselines

import (
	"fmt"
	"math"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

// bucketWin is one open window's accumulator.
type bucketWin struct {
	acc   agg.Acc
	begun bool // becomes true once the first element is folded in
}

type bucketQuery struct {
	id       int
	assigner window.Assigner
	fn       *agg.FnF64
	open     map[int64]*bucketWin
}

// Buckets is the no-sharing baseline: every open window of every query keeps
// its own accumulator, and every element is combined into every open window
// it belongs to. This is the behaviour of Flink's default window operator
// (with pre-aggregation) at the time of the paper.
type Buckets struct {
	emit    engine.Emit
	pos     int64
	curWM   int64
	queries map[int]*bucketQuery
	nextQID int
	active  *bucketQuery
	stored  int
}

var _ engine.Engine = (*Buckets)(nil)

// NewBuckets returns an empty Buckets engine.
func NewBuckets(emit engine.Emit) *Buckets {
	return &Buckets{emit: emit, curWM: math.MinInt64, queries: make(map[int]*bucketQuery)}
}

// Name implements engine.Engine.
func (b *Buckets) Name() string { return "buckets" }

// AddQuery implements engine.Engine.
func (b *Buckets) AddQuery(q engine.Query) (int, error) {
	if q.Fn == nil || q.Window.Factory == nil {
		return 0, fmt.Errorf("buckets: query requires a window spec and an aggregate function")
	}
	id := b.nextQID
	b.nextQID++
	b.queries[id] = &bucketQuery{
		id:       id,
		assigner: q.Window.Factory(),
		fn:       q.Fn,
		open:     make(map[int64]*bucketWin),
	}
	return id, nil
}

// RemoveQuery implements engine.Engine.
func (b *Buckets) RemoveQuery(id int) {
	if q, ok := b.queries[id]; ok {
		b.stored -= len(q.open)
		delete(b.queries, id)
	}
}

// OnElement implements engine.Engine: the element is folded into every open
// window of every query — the redundant work Cutty eliminates.
func (b *Buckets) OnElement(ts int64, v float64) {
	for _, q := range b.queries {
		b.active = q
		q.assigner.OnElement(ts, b.pos, v, (*bucketsCtx)(b))
		for _, w := range q.open {
			if w.begun {
				w.acc = q.fn.Combine(w.acc, q.fn.Lift(v))
			} else {
				w.acc = q.fn.Lift(v)
				w.begun = true
			}
		}
	}
	b.active = nil
	b.pos++
}

// OnWatermark implements engine.Engine.
func (b *Buckets) OnWatermark(wm int64) {
	if wm <= b.curWM {
		return
	}
	b.curWM = wm
	for _, q := range b.queries {
		b.active = q
		q.assigner.OnTime(wm, (*bucketsCtx)(b))
	}
	b.active = nil
}

// StoredPartials implements engine.Engine: one partial per open window.
func (b *Buckets) StoredPartials() int { return b.stored }

type bucketsCtx Buckets

func (c *bucketsCtx) engine() *Buckets { return (*Buckets)(c) }

func (c *bucketsCtx) Open(id int64) {
	b := c.engine()
	q := b.active
	if _, dup := q.open[id]; dup {
		return
	}
	q.open[id] = &bucketWin{acc: q.fn.Identity}
	b.stored++
}

func (c *bucketsCtx) CloseHere(id, end int64) { c.close(id, end) }

// CloseAt behaves like CloseHere: under the watermark-before-element driving
// protocol (see package engine) a window is always closed before any element
// at or beyond its cutoff arrives, so the accumulator already holds exactly
// the window's content.
func (c *bucketsCtx) CloseAt(id, end, cutoff int64) { c.close(id, end) }

func (c *bucketsCtx) close(id, end int64) {
	b := c.engine()
	q := b.active
	w, ok := q.open[id]
	if !ok {
		return
	}
	delete(q.open, id)
	b.stored--
	b.emit(engine.Result{
		QueryID: q.id,
		Start:   id,
		End:     end,
		Value:   q.fn.Lower(w.acc),
		Count:   w.acc.N,
	})
}
