package cutty

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

// snapshotQueries is the query set used by the round-trip tests.
func snapshotQueries() []engine.Query {
	return []engine.Query{
		{Window: window.Sliding(20, 5), Fn: agg.SumF64()},
		{Window: window.Session(7), Fn: agg.MaxF64()},
		{Window: window.CountTumbling(9), Fn: agg.CountF64()},
	}
}

func buildEngine(emit engine.Emit, qs []engine.Query, t *testing.T) *Engine {
	t.Helper()
	e := New(emit)
	for _, q := range qs {
		if _, err := e.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// The crash-recovery equivalence property: running a stream straight through
// must produce exactly the same results as running a prefix, snapshotting,
// restoring into a fresh engine, and running the suffix.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 200 + rng.Intn(200)
		cut := 1 + rng.Intn(n-1)
		elems := make([]window.Element, n)
		var ts int64
		for i := range elems {
			ts += rng.Int63n(4)
			elems[i] = window.Element{Ts: ts, V: float64(rng.Intn(10))}
		}

		var straight []engine.Result
		ref := buildEngine(func(r engine.Result) { straight = append(straight, r) }, snapshotQueries(), t)
		for _, el := range elems {
			ref.OnWatermark(el.Ts)
			ref.OnElement(el.Ts, el.V)
		}
		ref.OnWatermark(math.MaxInt64)

		var split []engine.Result
		first := buildEngine(func(r engine.Result) { split = append(split, r) }, snapshotQueries(), t)
		for _, el := range elems[:cut] {
			first.OnWatermark(el.Ts)
			first.OnElement(el.Ts, el.V)
		}
		var buf bytes.Buffer
		if err := first.Snapshot(gob.NewEncoder(&buf)); err != nil {
			t.Fatalf("trial %d: snapshot: %v", trial, err)
		}
		second := buildEngine(func(r engine.Result) { split = append(split, r) }, snapshotQueries(), t)
		if err := second.Restore(gob.NewDecoder(&buf)); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		for _, el := range elems[cut:] {
			second.OnWatermark(el.Ts)
			second.OnElement(el.Ts, el.V)
		}
		second.OnWatermark(math.MaxInt64)

		if len(straight) != len(split) {
			t.Fatalf("trial %d (cut %d/%d): %d results straight, %d with snapshot",
				trial, cut, n, len(straight), len(split))
		}
		count := map[engine.Result]int{}
		for _, r := range straight {
			count[r]++
		}
		for _, r := range split {
			count[r]--
		}
		for r, c := range count {
			if c != 0 {
				t.Fatalf("trial %d: result multiset differs at %+v (delta %d)", trial, r, c)
			}
		}
	}
}

func TestRestoreRejectsQueryMismatch(t *testing.T) {
	e1 := buildEngine(func(engine.Result) {}, snapshotQueries(), t)
	e1.OnWatermark(1)
	e1.OnElement(1, 1)
	var buf bytes.Buffer
	if err := e1.Snapshot(gob.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	// Rebuild with a different (smaller) query set: must fail, not corrupt.
	e2 := buildEngine(func(engine.Result) {}, snapshotQueries()[:1], t)
	if err := e2.Restore(gob.NewDecoder(&buf)); err == nil {
		t.Fatalf("restore into mismatched engine should fail")
	}
}

func TestSnapshotEmptyEngine(t *testing.T) {
	e1 := buildEngine(func(engine.Result) {}, snapshotQueries(), t)
	var buf bytes.Buffer
	if err := e1.Snapshot(gob.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	e2 := buildEngine(func(engine.Result) {}, snapshotQueries(), t)
	if err := e2.Restore(gob.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}
	// Restored empty engine must still work.
	var got []engine.Result
	e2.emit = func(r engine.Result) { got = append(got, r) }
	for ts := int64(0); ts < 50; ts++ {
		e2.OnWatermark(ts)
		e2.OnElement(ts, 1)
	}
	e2.OnWatermark(math.MaxInt64)
	if len(got) == 0 {
		t.Fatalf("restored engine produced no results")
	}
}
