package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/workloads"
	"repro/streamline"
)

// adClicks lowers one AdClicks event into a typed record: the campaign id
// rides as the stamped key, the click flag as the float64 payload — keeping
// the benchmark plan free of projection stages.
func adClicks(gen *workloads.AdClicks, i int64) streamline.Keyed[float64] {
	e := gen.At(i)
	return streamline.Keyed[float64]{Ts: e.Ts, Key: e.Key, Value: float64(e.Attr)}
}

// adWindows aggregates an impression stream into the tumbling 1s CTR
// dashboard (sum of clicks + impression count, shared slicing per campaign).
func adWindows(src *streamline.Stream[float64], name string) *streamline.Stream[streamline.WindowResult] {
	keyed := streamline.KeyByRecord(src, "campaign", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	return streamline.WindowAggregate(keyed, name,
		streamline.Query(streamline.Tumbling(1000), streamline.Sum()),
		streamline.Query(streamline.Tumbling(1000), streamline.Count()),
	)
}

// adPipeline builds the target-advertisement CTR pipeline used by E8/E9:
// impressions keyed by campaign, tumbling 1s click-through counts.
func adPipeline(env *streamline.Env, n int64, perSec float64) *streamline.Results[streamline.WindowResult] {
	gen := workloads.NewAdClicks(99, 50, 1000)
	mk := func(sub, par int, i int64) streamline.Keyed[float64] {
		return adClicks(gen, i*int64(par)+int64(sub))
	}
	conn := streamline.Source[float64](streamline.Generator(n, mk))
	if perSec > 0 {
		conn = streamline.Paced(conn, perSec)
	}
	src := streamline.From(env, "ads", conn, streamline.WithSourceParallelism(1))
	return streamline.Collect(adWindows(src, "ctr"), "out")
}

// E8Unified compares the unified continuous pipeline against the simulated
// lambda architecture (periodic batch recomputation) — the "system and
// human latency" argument of the paper.
func E8Unified(quick bool) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "unified model: one program over data at rest and in motion",
		Claim:  "\"reduction of complexity, costs, and latency\" via one engine",
		Header: []string{"mode", "input", "runtime", "result freshness"},
	}
	sizes := []int64{100_000, 200_000, 400_000}
	if quick {
		sizes = []int64{50_000, 100_000}
	}
	// Batch runs: same program, bounded input ("data at rest").
	var batchRuntimes []time.Duration
	for _, n := range sizes {
		env := streamline.New(streamline.WithParallelism(2))
		sink := adPipeline(env, n, 0)
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			t.Note("batch n=%d failed: %v", n, err)
			continue
		}
		el := time.Since(start)
		batchRuntimes = append(batchRuntimes, el)
		t.Add("batch", fmtCount(float64(n))+" events", el.Round(time.Millisecond).String(),
			fmt.Sprintf("stale by full period (results: %d)", len(sink.Records())))
	}
	// Continuous run: identical program, paced live input ("data in motion").
	// Event time == wall time offset at 1000 ev/s, so freshness of a window
	// ending at b is (receive wall time - start - b). The sink records the
	// receive time synchronously.
	n := int64(4000)
	if quick {
		n = 2000
	}
	env := streamline.New(streamline.WithParallelism(2))
	gen := workloads.NewAdClicks(99, 50, 1000)
	var lat []time.Duration
	start := time.Now()
	live := streamline.From(env, "ads",
		streamline.Paced(streamline.Generator(n, func(sub, par int, i int64) streamline.Keyed[float64] {
			return adClicks(gen, i)
		}), 1000),
		streamline.WithSourceParallelism(1))
	streamline.Sink(adWindows(live, "ctr"), "fresh", func(k streamline.Keyed[streamline.WindowResult]) {
		fresh := time.Since(start) - time.Duration(k.Value.End)*time.Millisecond
		if fresh > 0 && k.Value.End < int64(n) { // skip the end-of-stream flush
			lat = append(lat, fresh)
		}
	})
	if err := env.Execute(context.Background()); err != nil {
		t.Note("continuous run failed: %v", err)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		mean := time.Duration(0)
		for _, l := range lat {
			mean += l
		}
		mean /= time.Duration(len(lat))
		p99 := lat[len(lat)*99/100]
		t.Add("continuous", fmt.Sprintf("%d ev/s live", 1000),
			"(runs forever)", fmt.Sprintf("mean %s, p99 %s", mean.Round(time.Millisecond), p99.Round(time.Millisecond)))
	}
	// Lambda staleness model: recompute every T; average staleness is T/2
	// plus the batch runtime at the largest measured size.
	if len(batchRuntimes) > 0 {
		T := 60 * time.Second
		stale := T/2 + batchRuntimes[len(batchRuntimes)-1]
		t.Add("lambda (T=60s)", fmtCount(float64(sizes[len(sizes)-1]))+" events",
			batchRuntimes[len(batchRuntimes)-1].Round(time.Millisecond).String(),
			fmt.Sprintf("mean staleness %s", stale.Round(time.Millisecond)))
	}
	t.Note("continuous freshness is bounded by window length + pipeline latency, not by a batch period")
	return t
}

// E9Checkpoint measures the throughput cost of asynchronous barrier
// snapshotting at different intervals, on the windowed ad pipeline.
func E9Checkpoint(quick bool) *Table {
	n := int64(200_000)
	if quick {
		n = 50_000
	}
	t := &Table{
		ID:     "E9",
		Title:  "checkpointing overhead (windowed ad pipeline, bounded run)",
		Claim:  "pipelined engine with exactly-once state via barrier snapshots",
		Header: []string{"interval", "runtime", "throughput", "checkpoints"},
	}
	var base time.Duration
	for _, interval := range []time.Duration{0, time.Second, 250 * time.Millisecond, 50 * time.Millisecond} {
		opts := []streamline.Option{streamline.WithParallelism(2)}
		if interval > 0 {
			opts = append(opts, streamline.WithCheckpointing(streamline.NewMemoryBackend(3), interval))
		}
		env := streamline.New(opts...)
		adPipeline(env, n, 0)
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			t.Note("interval %s failed: %v", interval, err)
			continue
		}
		el := time.Since(start)
		label := "off"
		if interval > 0 {
			label = interval.String()
		} else {
			base = el
		}
		over := ""
		if interval > 0 && base > 0 {
			over = fmt.Sprintf(" (%+.1f%%)", (el.Seconds()/base.Seconds()-1)*100)
		}
		t.Add(label, el.Round(time.Millisecond).String()+over,
			fmtRate(float64(n)/el.Seconds()),
			fmt.Sprintf("%d", env.CompletedCheckpoints()))
	}
	return t
}

// E10Optimizer ablates the optimizer's levers: operator chaining, combiner
// insertion under key skew, and parallelism.
func E10Optimizer(quick bool) *Table {
	n := int64(300_000)
	if quick {
		n = 80_000
	}
	t := &Table{
		ID:     "E10",
		Title:  "optimizer ablation: chaining, adaptive combiner, parallelism",
		Claim:  "\"automatically be optimized, parallelized, and adopted to ... data distribution\"",
		Header: []string{"configuration", "workload", "runtime", "throughput"},
	}

	// Chaining: a map-heavy linear pipeline.
	chainRun := func(on bool) time.Duration {
		env := streamline.New(streamline.WithParallelism(1), streamline.WithChaining(on))
		s := streamline.From(env, "gen", streamline.Generator(n,
			func(sub, par int, i int64) streamline.Keyed[float64] {
				return streamline.Keyed[float64]{Ts: i, Key: uint64(i % 64), Value: float64(i % 101)}
			}), streamline.WithSourceParallelism(1))
		for k := 0; k < 4; k++ {
			s = streamline.Map(s, fmt.Sprintf("m%d", k), func(v float64) float64 { return v + 1 })
		}
		streamline.Sink(s, "out", func(streamline.Keyed[float64]) {})
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			return 0
		}
		return time.Since(start)
	}
	for _, on := range []bool{true, false} {
		el := chainRun(on)
		label := "chaining off"
		if on {
			label = "chaining on"
		}
		t.Add(label, "4 chained maps", el.Round(time.Millisecond).String(), fmtRate(float64(n)/el.Seconds()))
	}

	// Combiner under skew: reduce-by-key over zipf keys.
	combRun := func(mode streamline.CombinerMode, skew float64) time.Duration {
		gen := workloads.NewZipf(5, 100_000, 10_000, skew)
		env := streamline.New(streamline.WithParallelism(2), streamline.WithCombiner(mode))
		src := streamline.From(env, "gen", streamline.Generator(n,
			func(sub, par int, i int64) streamline.Keyed[float64] {
				e := gen.At(i)
				return streamline.Keyed[float64]{Ts: e.Ts, Key: e.Key, Value: e.Value}
			}), streamline.WithSourceParallelism(1))
		keyed := streamline.KeyByRecord(src, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
		sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
		streamline.Sink(sums, "out", func(streamline.Keyed[float64]) {})
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			return 0
		}
		return time.Since(start)
	}
	for _, cfg := range []struct {
		mode  streamline.CombinerMode
		label string
		skew  float64
		wl    string
	}{
		{streamline.CombinerOff, "combiner off", 1.4, "zipf s=1.4"},
		{streamline.CombinerOn, "combiner on", 1.4, "zipf s=1.4"},
		{streamline.CombinerAuto, "combiner auto", 1.4, "zipf s=1.4"},
		{streamline.CombinerOff, "combiner off", 1.0, "uniform keys"},
		{streamline.CombinerOn, "combiner on", 1.0, "uniform keys"},
		{streamline.CombinerAuto, "combiner auto", 1.0, "uniform keys"},
	} {
		el := combRun(cfg.mode, cfg.skew)
		t.Add(cfg.label, cfg.wl, el.Round(time.Millisecond).String(), fmtRate(float64(n)/el.Seconds()))
	}

	// Parallelism scaling on the windowed pipeline.
	for _, p := range []int{1, 2} {
		env := streamline.New(streamline.WithParallelism(p))
		adPipeline(env, n/2, 0)
		start := time.Now()
		if err := env.Execute(context.Background()); err != nil {
			continue
		}
		el := time.Since(start)
		t.Add(fmt.Sprintf("parallelism %d", p), "windowed ads", el.Round(time.Millisecond).String(),
			fmtRate(float64(n/2)/el.Seconds()))
	}
	t.Note("auto combiner should match 'on' under skew and 'off' on unique keys")
	return t
}

// All runs every experiment.
func All(quick bool) []*Table {
	return []*Table{
		E1SinglePeriodic(quick),
		E2MultiQuery(quick),
		E3Redundancy(quick),
		E4Sessions(quick),
		E5Memory(quick),
		E6DataRate(quick),
		E7M4Cost(quick),
		E8Unified(quick),
		E9Checkpoint(quick),
		E10Optimizer(quick),
		E11Ablation(quick),
	}
}

// ByID returns the named experiment runner, or nil.
func ByID(id string) func(bool) *Table {
	switch id {
	case "E1":
		return E1SinglePeriodic
	case "E2":
		return E2MultiQuery
	case "E3":
		return E3Redundancy
	case "E4":
		return E4Sessions
	case "E5":
		return E5Memory
	case "E6":
		return E6DataRate
	case "E7":
		return E7M4Cost
	case "E8":
		return E8Unified
	case "E9":
		return E9Checkpoint
	case "E10":
		return E10Optimizer
	case "E11":
		return E11Ablation
	}
	return nil
}
