// Package lang is the multilingual Web-processing substrate of the fourth
// STREAMLINE application: a compact trigram-profile language detector and a
// Unicode-aware tokenizer, built from embedded seed corpora so the whole
// pipeline is self-contained and offline.
//
// Detection follows the classic Cavnar–Trenkle approach simplified to
// cosine similarity over character-trigram frequency vectors: a profile is
// trained per language from the seed corpus; classification scores a
// document's trigram vector against every profile.
package lang

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits text into lower-cased word tokens (letters and digits;
// everything else separates).
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Profile is a normalized trigram frequency vector for one language.
type Profile struct {
	Lang string
	vec  map[string]float64
	norm float64
}

// trigrams extracts padded character trigrams from text.
func trigrams(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, word := range Tokenize(text) {
		padded := " " + word + " "
		runes := []rune(padded)
		for i := 0; i+3 <= len(runes); i++ {
			out[string(runes[i:i+3])]++
		}
	}
	return out
}

func vecNorm(v map[string]float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return sqrt(s)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Train builds a language profile from corpus text.
func Train(lang, corpus string) Profile {
	vec := trigrams(corpus)
	return Profile{Lang: lang, vec: vec, norm: vecNorm(vec)}
}

// Detector classifies documents against a set of profiles.
type Detector struct {
	profiles []Profile
}

// NewDetector returns a detector over the given profiles.
func NewDetector(profiles ...Profile) *Detector {
	return &Detector{profiles: profiles}
}

// DefaultDetector returns a detector trained on the embedded seed corpora
// (English, German, French, Spanish, Italian, Hungarian — the last a nod to
// the paper's SZTAKI partner).
func DefaultDetector() *Detector {
	d := &Detector{}
	for lang, corpus := range seedCorpora {
		d.profiles = append(d.profiles, Train(lang, corpus))
	}
	sort.Slice(d.profiles, func(i, j int) bool { return d.profiles[i].Lang < d.profiles[j].Lang })
	return d
}

// Languages lists the detector's languages.
func (d *Detector) Languages() []string {
	out := make([]string, len(d.profiles))
	for i, p := range d.profiles {
		out[i] = p.Lang
	}
	return out
}

// Score is one language's similarity to a document.
type Score struct {
	Lang string
	Sim  float64
}

// Detect returns the best-matching language and its cosine similarity;
// empty input returns ("", 0).
func (d *Detector) Detect(text string) (string, float64) {
	scores := d.Scores(text)
	if len(scores) == 0 {
		return "", 0
	}
	return scores[0].Lang, scores[0].Sim
}

// Scores returns all languages ranked by similarity (descending; ties by
// language name for determinism).
func (d *Detector) Scores(text string) []Score {
	doc := trigrams(text)
	if len(doc) == 0 {
		return nil
	}
	docNorm := vecNorm(doc)
	scores := make([]Score, 0, len(d.profiles))
	for _, p := range d.profiles {
		var dot float64
		for tg, x := range doc {
			if y, ok := p.vec[tg]; ok {
				dot += x * y
			}
		}
		sim := 0.0
		if p.norm > 0 && docNorm > 0 {
			sim = dot / (p.norm * docNorm)
		}
		scores = append(scores, Score{Lang: p.Lang, Sim: sim})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Sim != scores[j].Sim {
			return scores[i].Sim > scores[j].Sim
		}
		return scores[i].Lang < scores[j].Lang
	})
	return scores
}
