// Multilingual Web processing — the fourth STREAMLINE application: the
// same pipeline classifies documents by language and counts per-language
// token volume, first over a document collection at rest, then over a
// document stream in motion. The two runs share every operator.
//
//	go run ./examples/weblang
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/lang"
)

func main() {
	detector := lang.DefaultDetector()
	samples := lang.SampleSentences()
	langs := detector.Languages()

	// A deterministic "web crawl": 3000 documents in mixed languages.
	rng := rand.New(rand.NewSource(67))
	docs := make([]string, 3000)
	truth := make([]string, len(docs))
	for i := range docs {
		l := langs[rng.Intn(len(langs))]
		truth[i] = l
		docs[i] = samples[l][rng.Intn(len(samples[l]))]
	}

	runPipeline := func(mode string, src *core.Stream, env *core.Environment) map[string]int {
		perLang := map[string]int{}
		src.
			Map("detect", func(r dataflow.Record) dataflow.Record {
				detected, _ := detector.Detect(r.Value.(string))
				return dataflow.Data(r.Ts, dataflow.KeyOf(detected), detected)
			}).
			Sink("count", func(r dataflow.Record) {
				perLang[r.Value.(string)]++
			})
		if err := env.Execute(context.Background()); err != nil {
			log.Fatal(err)
		}
		return perLang
	}

	// Data at rest: the crawl as a bounded collection.
	envB := core.NewEnvironment(core.WithParallelism(1))
	recs := make([]dataflow.Record, len(docs))
	for i, d := range docs {
		recs[i] = dataflow.Data(int64(i), 0, d)
	}
	atRest := runPipeline("batch", envB.FromRecords("crawl", recs), envB)

	// Data in motion: the same documents as a stream.
	envS := core.NewEnvironment(core.WithParallelism(1))
	stream := envS.FromGenerator("feed", 1, int64(len(docs)), func(sub, par int, i int64) dataflow.Record {
		return dataflow.Data(i, 0, docs[i])
	})
	inMotion := runPipeline("stream", stream, envS)

	// Both runs must agree (unified model), and match ground truth.
	keys := make([]string, 0, len(atRest))
	for l := range atRest {
		keys = append(keys, l)
	}
	sort.Strings(keys)
	fmt.Println("language     batch  stream  truth")
	correct := 0
	truthCount := map[string]int{}
	for _, l := range truth {
		truthCount[l]++
	}
	for _, l := range keys {
		fmt.Printf("%-10s  %6d  %6d  %5d\n", l, atRest[l], inMotion[l], truthCount[l])
		if atRest[l] == inMotion[l] {
			correct++
		}
	}
	if correct == len(keys) {
		fmt.Println("batch == stream: the unified model holds")
	} else {
		fmt.Println("WARNING: batch and stream disagreed")
	}
}
