package state

import (
	"bytes"
	"os"
	"sync"
	"testing"
)

func sample(id int64) *Snapshot {
	s := NewSnapshot(id)
	s.Put(SubtaskKey{OperatorID: 1, Subtask: 0}, []byte("alpha"))
	s.Put(SubtaskKey{OperatorID: 2, Subtask: 3}, []byte{0x00, 0x01, 0x02})
	return s
}

func TestSubtaskKeyString(t *testing.T) {
	if got := (SubtaskKey{OperatorID: 4, Subtask: 2}).String(); got != "4/2" {
		t.Fatalf("String = %q", got)
	}
}

func TestMemoryBackendRoundTrip(t *testing.T) {
	b := NewMemoryBackend(0)
	if _, ok, _ := b.Latest(); ok {
		t.Fatalf("empty backend reported a snapshot")
	}
	if err := b.Persist(sample(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Persist(sample(2)); err != nil {
		t.Fatal(err)
	}
	latest, ok, _ := b.Latest()
	if !ok || latest.CheckpointID != 2 {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
	got, err := b.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Get(SubtaskKey{1, 0}), []byte("alpha")) {
		t.Fatalf("blob mismatch")
	}
	if got.Get(SubtaskKey{9, 9}) != nil {
		t.Fatalf("missing key should be nil")
	}
}

func TestMemoryBackendDuplicateRejected(t *testing.T) {
	b := NewMemoryBackend(0)
	if err := b.Persist(sample(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Persist(sample(1)); err == nil {
		t.Fatalf("duplicate checkpoint accepted")
	}
}

func TestMemoryBackendRetention(t *testing.T) {
	b := NewMemoryBackend(2)
	for id := int64(1); id <= 5; id++ {
		if err := b.Persist(sample(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Load(3); err == nil {
		t.Fatalf("retention did not evict old checkpoints")
	}
	latest, ok, _ := b.Latest()
	if !ok || latest.CheckpointID != 5 {
		t.Fatalf("latest = %+v", latest)
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Latest(); ok {
		t.Fatalf("empty dir reported a snapshot")
	}
	if err := b.Persist(sample(7)); err != nil {
		t.Fatal(err)
	}
	if err := b.Persist(sample(12)); err != nil {
		t.Fatal(err)
	}
	latest, ok, _ := b.Latest()
	if !ok || latest.CheckpointID != 12 {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
	got, err := b.Load(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Get(SubtaskKey{2, 3}), []byte{0x00, 0x01, 0x02}) {
		t.Fatalf("blob mismatch after disk round trip")
	}
	// A second backend over the same dir sees the snapshots (recovery path).
	b2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest2, ok, _ := b2.Latest()
	if !ok || latest2.CheckpointID != 12 {
		t.Fatalf("recovery backend Latest = %+v, %v", latest2, ok)
	}
}

func TestFileBackendLoadMissing(t *testing.T) {
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(99); err == nil {
		t.Fatalf("loading a missing checkpoint should error")
	}
}

// TestFileBackendLatestSkipsCorrupt: a corrupt newest snapshot file must
// not read as "no snapshot" — Latest falls back to the most recent readable
// checkpoint and surfaces the corruption through the error.
func TestFileBackendLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 3; id++ {
		if err := b.Persist(sample(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest file (truncated write) and garbage the second.
	if err := os.WriteFile(b.path(3), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(b.path(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b.path(2), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	snap, ok, cerr := b.Latest()
	if !ok || snap.CheckpointID != 1 {
		t.Fatalf("Latest = %+v, %v — did not skip back to the readable snapshot", snap, ok)
	}
	if cerr == nil {
		t.Fatalf("corruption was swallowed: Latest returned nil error")
	}

	// All snapshots corrupt: no snapshot, and an error saying why.
	if err := os.WriteFile(b.path(1), []byte{0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, cerr := b.Latest(); ok || cerr == nil {
		t.Fatalf("all-corrupt dir: ok=%v err=%v, want ok=false with error", ok, cerr)
	}
}

func TestFileBackendGroupRoundTrip(t *testing.T) {
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapshot(5)
	s.NumKeyGroups = 16
	s.Put(SubtaskKey{OperatorID: 0, Subtask: 0}, []byte("src"))
	s.PutGroup(GroupKey{OperatorID: 1, KeyGroup: 3}, []byte("g3"))
	s.PutGroup(GroupKey{OperatorID: 1, KeyGroup: 9}, []byte("g9"))
	if err := b.Persist(s); err != nil {
		t.Fatal(err)
	}
	got, err := b.Load(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumKeyGroups != 16 {
		t.Fatalf("NumKeyGroups = %d", got.NumKeyGroups)
	}
	if !bytes.Equal(got.GetGroup(GroupKey{OperatorID: 1, KeyGroup: 9}), []byte("g9")) {
		t.Fatalf("group blob lost in the disk round trip")
	}
	groups := got.GroupsOf(1, 0, 16)
	if len(groups) != 2 || !bytes.Equal(groups[3], []byte("g3")) {
		t.Fatalf("GroupsOf = %v", groups)
	}
}

// TestMemoryBackendRetainConcurrent hammers Persist and Latest from
// concurrent goroutines while retention prunes: Latest must always see a
// fully formed snapshot (run with -race to catch unsynchronized pruning).
func TestMemoryBackendRetainConcurrent(t *testing.T) {
	b := NewMemoryBackend(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := int64(1); id <= 200; id++ {
			if err := b.Persist(sample(id)); err != nil {
				t.Errorf("persist %d: %v", id, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for i := 0; i < 500; i++ {
				snap, ok, err := b.Latest()
				if err != nil {
					t.Errorf("Latest: %v", err)
					return
				}
				if !ok {
					continue
				}
				if snap.CheckpointID < last {
					t.Errorf("Latest went backwards: %d after %d", snap.CheckpointID, last)
					return
				}
				last = snap.CheckpointID
				if len(snap.Entries) != 2 {
					t.Errorf("Latest returned a partially formed snapshot: %d entries", len(snap.Entries))
					return
				}
			}
		}()
	}
	wg.Wait()
	if snap, ok, _ := b.Latest(); !ok || snap.CheckpointID != 200 {
		t.Fatalf("final Latest = %v, %v", snap, ok)
	}
	if _, err := b.Load(198); err == nil {
		t.Fatalf("retention kept more than 2 snapshots")
	}
}
