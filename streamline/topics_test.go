package streamline_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/streamline"
)

// openTopicStore opens a store under a test temp dir with small segments so
// even modest histories span several segments (and several splits).
func openTopicStore(t *testing.T, opts ...streamline.TopicStoreOption) *streamline.TopicStore {
	t.Helper()
	store, err := streamline.OpenTopicStore(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// persistEvents runs a bounded pipeline appending events to a topic.
func persistEvents(t *testing.T, store *streamline.TopicStore, topic string, events []event) {
	t.Helper()
	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.From(env, "events", streamline.Slice(events),
		streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
	streamline.Persist(src, store, topic)
	execute(t, env.Execute)
}

// assertEventsExactlyOnce checks got against want by the unique TsMs of
// mkEvents-generated inputs: every event once, none invented.
func assertEventsExactlyOnce(t *testing.T, got []streamline.Keyed[event], want []event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	byTs := map[int64]event{}
	for _, e := range want {
		byTs[e.TsMs] = e
	}
	seen := map[int64]bool{}
	for _, k := range got {
		e, ok := byTs[k.Value.TsMs]
		if !ok {
			t.Fatalf("unexpected event ts %d", k.Value.TsMs)
		}
		if seen[k.Value.TsMs] {
			t.Fatalf("event ts %d read twice", k.Value.TsMs)
		}
		seen[k.Value.TsMs] = true
		if k.Ts != e.TsMs || k.Value.Name != e.Name || k.Value.Value != e.Value {
			t.Fatalf("event ts %d replayed as %+v (record ts %d), want %+v", e.TsMs, k.Value, k.Ts, e)
		}
	}
}

// Persist → Topic round trip: events written by one job replay exactly-once
// through another, with their stored event timestamps, at source parallelism
// 1 and 4 across multiple segments and byte-range splits.
func TestPersistTopicRoundTrip(t *testing.T) {
	store := openTopicStore(t, streamline.WithSegmentBytes(4<<10))
	events := mkEvents(500, 1000)
	persistEvents(t, store, "events", events)

	if names, err := store.Topics(); err != nil || len(names) != 1 || names[0] != "events" {
		t.Fatalf("Topics() = %v, %v; want [events]", names, err)
	}
	for _, par := range []int{1, 4} {
		env := streamline.New(streamline.WithParallelism(2))
		src := streamline.From(env, "replay",
			streamline.Topic[event](store, "events", streamline.WithSplitSize(1024)),
			streamline.WithSourceParallelism(par))
		out := streamline.Collect(src, "out")
		execute(t, env.Execute)
		assertEventsExactlyOnce(t, out.Records(), events)
	}
}

// The paper's bootstrap scenario served from the engine's own store:
// Hybrid(Topic, Channel) must produce the same windows as a single source
// over the concatenation, with the handoff watermark derived from the
// persisted history's max event time.
func TestTopicHybridMatchesSingleSource(t *testing.T) {
	history := mkEvents(400, 5000) // ts 5000..5399
	live := mkEvents(200, 5400)    // ts 5400..5599
	all := append(append([]event{}, history...), live...)

	store := openTopicStore(t, streamline.WithSegmentBytes(4<<10))
	persistEvents(t, store, "history", history)

	refEnv := streamline.New(streamline.WithParallelism(2))
	refOut := buildHybridPipeline(refEnv, streamline.From(refEnv, "events",
		streamline.Slice(all), streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs })))
	execute(t, refEnv.Execute)
	want := collectWindows(refOut)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.From(env, "events",
		streamline.Hybrid(
			streamline.Topic[event](store, "history", streamline.WithSplitSize(1024)),
			streamline.Channel(feedLive(live))),
		streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
	out := buildHybridPipeline(env, src)
	execute(t, env.Execute)
	got := collectWindows(out)

	if len(got) != len(want) {
		t.Fatalf("hybrid produced %d windows, single-source %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v", k, got[k], v)
		}
	}
}

// The recovery acceptance test of the issue: Hybrid(Topic, Channel) killed
// mid-history at source parallelism 4, restored at source parallelism 2 —
// the topic's pending splits redistribute, the handoff crosses exactly once,
// and the deduplicated windows equal the single-source reference.
func TestTopicHybridKillRecoverAtDifferentParallelism(t *testing.T) {
	history := mkEvents(4000, 5000) // ts 5000..8999
	live := mkEvents(800, 9000)     // ts 9000..9799
	all := append(append([]event{}, history...), live...)

	store := openTopicStore(t, streamline.WithSegmentBytes(16<<10))
	persistEvents(t, store, "history", history)

	refEnv := streamline.New(streamline.WithParallelism(2))
	refOut := buildHybridPipeline(refEnv, streamline.From(refEnv, "events",
		streamline.Slice(all), streamline.WithSourceParallelism(1),
		streamline.WithTimestamps(func(e event) int64 { return e.TsMs })))
	execute(t, refEnv.Execute)
	want := collectWindows(refOut)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	build := func(srcPar int, paceHistory float64, liveCh <-chan streamline.Keyed[event], backend streamline.Backend) (*streamline.Env, *streamline.Results[streamline.WindowResult]) {
		env := streamline.New(streamline.WithParallelism(2),
			streamline.WithCheckpointing(backend, 15*time.Millisecond))
		var hist streamline.Source[event] = streamline.Topic[event](store, "history", streamline.WithSplitSize(4096))
		if paceHistory > 0 {
			hist = streamline.Paced(hist, paceHistory)
		}
		src := streamline.From(env, "events",
			streamline.Hybrid(hist, streamline.Channel(liveCh)),
			streamline.WithSourceParallelism(srcPar),
			streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
		return env, buildHybridPipeline(env, src)
	}

	// Crash run: source parallelism 4, paced so the kill lands with splits
	// in flight across the subtasks.
	backend := streamline.NewMemoryBackend(0)
	crashCh := make(chan streamline.Keyed[event]) // never fed; the kill hits during history
	crashEnv, crashOut := build(4, 8_000, crashCh, backend)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	err := crashEnv.Execute(ctx)
	cancel()
	close(crashCh)
	if err == nil {
		t.Skip("job finished before kill on this machine")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed before kill")
	}

	// Recovery at source parallelism 2.
	recEnv, recOut := build(2, 0, feedLive(live), streamline.NewMemoryBackend(0))
	recCtx, recCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer recCancel()
	if err := recEnv.ExecuteRestored(recCtx, snap); err != nil {
		t.Fatalf("restored run at source parallelism 2 failed: %v", err)
	}
	got := collectWindows(crashOut)
	for k, v := range collectWindows(recOut) {
		got[k] = v
	}
	if len(got) != len(want) {
		t.Fatalf("restored run produced %d windows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v (exactly-once across the split reassignment)", k, got[k], v)
		}
	}
}

// The no-double-append contract: a Persist job killed mid-stream and resumed
// from its checkpoint must leave each input event in the topic exactly once —
// the restore truncates whatever the crash run appended past the
// checkpointed high-water offset before the replayed records arrive.
func TestPersistCheckpointRestoreNoDoubleAppend(t *testing.T) {
	store := openTopicStore(t, streamline.WithSegmentBytes(8<<10))
	events := mkEvents(3000, 1000)

	build := func(pace float64, backend streamline.Backend) *streamline.Env {
		env := streamline.New(streamline.WithParallelism(2),
			streamline.WithCheckpointing(backend, 15*time.Millisecond))
		var src streamline.Source[event] = streamline.Slice(events)
		if pace > 0 {
			src = streamline.Paced(src, pace)
		}
		s := streamline.From(env, "events", src,
			streamline.WithSourceParallelism(1),
			streamline.WithTimestamps(func(e event) int64 { return e.TsMs }))
		streamline.Persist(s, store, "out")
		return env
	}

	backend := streamline.NewMemoryBackend(0)
	crashEnv := build(20_000, backend)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	err := crashEnv.Execute(ctx)
	cancel()
	if err == nil {
		t.Skip("job finished before kill on this machine")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed before kill")
	}

	recEnv := build(0, streamline.NewMemoryBackend(0))
	recCtx, recCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer recCancel()
	if err := recEnv.ExecuteRestored(recCtx, snap); err != nil {
		t.Fatalf("restored run failed: %v", err)
	}

	// Read the topic back: every event exactly once despite the crash run
	// appending past its last checkpoint.
	readEnv := streamline.New(streamline.WithParallelism(2))
	replay := streamline.From(readEnv, "replay", streamline.Topic[event](store, "out"),
		streamline.WithSourceParallelism(2))
	out := streamline.Collect(replay, "out")
	execute(t, readEnv.Execute)
	assertEventsExactlyOnce(t, out.Records(), events)
}

// Follow mode: the source replays the history frozen at job start, then
// tails appends made while the job is running.
func TestTopicFollowTailsNewAppends(t *testing.T) {
	store := openTopicStore(t, streamline.WithSegmentBytes(4<<10))
	history := mkEvents(50, 1000)
	persistEvents(t, store, "events", history)

	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.From(env, "follow",
		streamline.Topic[event](store, "events", streamline.WithFollow()))
	out := streamline.Collect(src, "out")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- env.Execute(ctx) }()

	waitFor := func(n int) {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for len(out.Records()) < n {
			select {
			case err := <-done:
				t.Fatalf("job ended with %d/%d records: %v", len(out.Records()), n, err)
			case <-deadline:
				t.Fatalf("only %d of %d records arrived within 30s", len(out.Records()), n)
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	waitFor(len(history))

	// Append the live tail directly to the topic while the job runs.
	live := mkEvents(30, 2000)
	tp, err := store.Store().Topic("events")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range live {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tp.Append(e.TsMs, 0, data); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(len(history) + len(live))

	cancel()
	<-done
	assertEventsExactlyOnce(t, out.Records(), append(append([]event{}, history...), live...))
}

// Follow mode is a single ordered tail: a stage forced to higher source
// parallelism must fail the job instead of emitting duplicates.
func TestTopicFollowRejectsHigherParallelism(t *testing.T) {
	store := openTopicStore(t)
	persistEvents(t, store, "events", mkEvents(10, 1000))

	env := streamline.New(streamline.WithParallelism(2))
	src := streamline.From(env, "follow",
		streamline.Topic[event](store, "events", streamline.WithFollow()),
		streamline.WithSourceParallelism(2))
	streamline.Sink(src, "out", func(streamline.Keyed[event]) {})
	if err := env.Execute(context.Background()); err == nil {
		t.Fatalf("follow mode at source parallelism 2 must fail Execute")
	}
}

// A fresh (non-restored) Persist run appends after the topic's existing
// records rather than truncating them: exactly-once is a property of a
// checkpoint lineage, not of topic contents.
func TestPersistFreshRunAppends(t *testing.T) {
	store := openTopicStore(t)
	first := mkEvents(20, 1000)
	second := mkEvents(20, 2000)
	persistEvents(t, store, "events", first)
	persistEvents(t, store, "events", second)

	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.From(env, "replay", streamline.Topic[event](store, "events"))
	out := streamline.Collect(src, "out")
	execute(t, env.Execute)
	assertEventsExactlyOnce(t, out.Records(), append(append([]event{}, first...), second...))
}

// Topic metrics: the store's registry carries per-topic append and scan
// series under "topic.<name>.".
func TestTopicStoreMetrics(t *testing.T) {
	store := openTopicStore(t)
	events := mkEvents(40, 1000)
	persistEvents(t, store, "m", events)

	env := streamline.New(streamline.WithParallelism(1))
	src := streamline.From(env, "replay", streamline.Topic[event](store, "m"))
	streamline.Sink(src, "out", func(streamline.Keyed[event]) {})
	execute(t, env.Execute)

	for _, name := range []string{"topic.m.appended_records", "topic.m.scanned_records"} {
		if v := store.Metrics().Counter(name).Value(); v < int64(len(events)) {
			t.Fatalf("metric %s = %d, want >= %d", name, v, len(events))
		}
	}
}
