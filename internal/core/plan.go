package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dataflow"
)

// PlanSpec is the structural identity of a physical plan — everything about
// a graph that must match between distributed participants for exchanged
// batches, barriers and state blobs to mean the same thing on both ends.
//
// It deliberately carries no behavior: closures (operator and source
// factories) cannot cross a process boundary, so distribution is SPMD —
// every process rebuilds the identical graph from code, and the spec is the
// checksum that proves they did. The coordinator ships its spec with the
// plan; a worker whose locally built graph fingerprints differently refuses
// to run rather than silently exchanging mismatched streams.
type PlanSpec struct {
	Name          string
	BatchSize     int
	BufferSize    int
	FlushInterval time.Duration
	NumKeyGroups  int
	Chaining      bool
	Nodes         []NodeSpec
}

// NodeSpec mirrors one graph vertex.
type NodeSpec struct {
	ID          int
	Name        string
	Parallelism int
	Source      bool
	Pinned      bool
	In          []EdgeSpec
}

// EdgeSpec mirrors one incoming edge: the upstream node ID and the
// partitioning that routes data across it.
type EdgeSpec struct {
	From int
	Part uint8
}

// SpecOf extracts the structural spec of a graph. Chaining is part of the
// physical plan (it decides which edges exist at runtime), so it is folded
// into the spec rather than carried separately.
func SpecOf(g *dataflow.Graph, chaining bool) PlanSpec {
	s := PlanSpec{
		Name:          g.Name,
		BatchSize:     g.BatchSize,
		BufferSize:    g.BufferSize,
		FlushInterval: g.FlushInterval,
		NumKeyGroups:  g.NumKeyGroups,
		Chaining:      chaining,
	}
	for _, n := range g.Nodes() {
		ns := NodeSpec{
			ID:          n.ID,
			Name:        n.Name,
			Parallelism: n.Parallelism,
			Source:      n.NewSource != nil,
			Pinned:      n.Pinned,
		}
		for _, e := range n.In {
			ns.In = append(ns.In, EdgeSpec{From: e.From.ID, Part: uint8(e.Part)})
		}
		s.Nodes = append(s.Nodes, ns)
	}
	return s
}

// Fingerprint returns a stable hex digest of the spec. Node and edge order
// are construction order, identical across SPMD rebuilds, and JSON encodes
// struct fields in declaration order — so equal plans hash equal. (Gob is
// unsuitable here: its wire type IDs come from a process-global counter in
// first-reflection order, so two processes that gob-encoded different types
// earlier would hash the same spec differently.)
func (s PlanSpec) Fingerprint() string {
	data, err := json.Marshal(s)
	if err != nil {
		// A spec is plain data; encoding can only fail on a broken type,
		// which is a programming error worth failing loudly for.
		panic(fmt.Sprintf("plan spec fingerprint: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
