package state

import (
	"bytes"
	"testing"
)

func sample(id int64) *Snapshot {
	s := NewSnapshot(id)
	s.Put(SubtaskKey{OperatorID: 1, Subtask: 0}, []byte("alpha"))
	s.Put(SubtaskKey{OperatorID: 2, Subtask: 3}, []byte{0x00, 0x01, 0x02})
	return s
}

func TestSubtaskKeyString(t *testing.T) {
	if got := (SubtaskKey{OperatorID: 4, Subtask: 2}).String(); got != "4/2" {
		t.Fatalf("String = %q", got)
	}
}

func TestMemoryBackendRoundTrip(t *testing.T) {
	b := NewMemoryBackend(0)
	if _, ok := b.Latest(); ok {
		t.Fatalf("empty backend reported a snapshot")
	}
	if err := b.Persist(sample(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Persist(sample(2)); err != nil {
		t.Fatal(err)
	}
	latest, ok := b.Latest()
	if !ok || latest.CheckpointID != 2 {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
	got, err := b.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Get(SubtaskKey{1, 0}), []byte("alpha")) {
		t.Fatalf("blob mismatch")
	}
	if got.Get(SubtaskKey{9, 9}) != nil {
		t.Fatalf("missing key should be nil")
	}
}

func TestMemoryBackendDuplicateRejected(t *testing.T) {
	b := NewMemoryBackend(0)
	if err := b.Persist(sample(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Persist(sample(1)); err == nil {
		t.Fatalf("duplicate checkpoint accepted")
	}
}

func TestMemoryBackendRetention(t *testing.T) {
	b := NewMemoryBackend(2)
	for id := int64(1); id <= 5; id++ {
		if err := b.Persist(sample(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Load(3); err == nil {
		t.Fatalf("retention did not evict old checkpoints")
	}
	latest, ok := b.Latest()
	if !ok || latest.CheckpointID != 5 {
		t.Fatalf("latest = %+v", latest)
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Latest(); ok {
		t.Fatalf("empty dir reported a snapshot")
	}
	if err := b.Persist(sample(7)); err != nil {
		t.Fatal(err)
	}
	if err := b.Persist(sample(12)); err != nil {
		t.Fatal(err)
	}
	latest, ok := b.Latest()
	if !ok || latest.CheckpointID != 12 {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
	got, err := b.Load(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Get(SubtaskKey{2, 3}), []byte{0x00, 0x01, 0x02}) {
		t.Fatalf("blob mismatch after disk round trip")
	}
	// A second backend over the same dir sees the snapshots (recovery path).
	b2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest2, ok := b2.Latest()
	if !ok || latest2.CheckpointID != 12 {
		t.Fatalf("recovery backend Latest = %+v, %v", latest2, ok)
	}
}

func TestFileBackendLoadMissing(t *testing.T) {
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(99); err == nil {
		t.Fatalf("loading a missing checkpoint should error")
	}
}
