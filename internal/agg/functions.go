package agg

import (
	"math/rand"
	"sort"
)

// Number constrains the numeric element types accepted by the generic
// aggregate constructors.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Sum returns a decomposable sum over any numeric type.
func Sum[T Number]() Function[T, T, T] {
	return NewFunction(
		func() T { var z T; return z },
		func(v T) T { return v },
		func(a, b T) T { return a + b },
		func(a T) T { return a },
	)
}

// Count returns a decomposable element count.
func Count[T any]() Function[T, int64, int64] {
	return NewFunction(
		func() int64 { return 0 },
		func(T) int64 { return 1 },
		func(a, b int64) int64 { return a + b },
		func(a int64) int64 { return a },
	)
}

// minMaxAcc carries a value plus a presence flag so that empty windows
// lower to the zero value rather than a sentinel.
type minMaxAcc[T any] struct {
	v   T
	set bool
}

// Min returns a decomposable minimum.
func Min[T Number]() Function[T, minMaxAcc[T], T] {
	return NewFunction(
		func() minMaxAcc[T] { return minMaxAcc[T]{} },
		func(v T) minMaxAcc[T] { return minMaxAcc[T]{v: v, set: true} },
		func(a, b minMaxAcc[T]) minMaxAcc[T] {
			if !a.set {
				return b
			}
			if !b.set {
				return a
			}
			if b.v < a.v {
				return b
			}
			return a
		},
		func(a minMaxAcc[T]) T { return a.v },
	)
}

// Max returns a decomposable maximum.
func Max[T Number]() Function[T, minMaxAcc[T], T] {
	return NewFunction(
		func() minMaxAcc[T] { return minMaxAcc[T]{} },
		func(v T) minMaxAcc[T] { return minMaxAcc[T]{v: v, set: true} },
		func(a, b minMaxAcc[T]) minMaxAcc[T] {
			if !a.set {
				return b
			}
			if !b.set {
				return a
			}
			if b.v > a.v {
				return b
			}
			return a
		},
		func(a minMaxAcc[T]) T { return a.v },
	)
}

// MeanAcc is the accumulator for Mean.
type MeanAcc struct {
	Sum float64
	N   int64
}

// Mean returns a decomposable arithmetic mean over float64 inputs.
func Mean() Function[float64, MeanAcc, float64] {
	return NewFunction(
		func() MeanAcc { return MeanAcc{} },
		func(v float64) MeanAcc { return MeanAcc{Sum: v, N: 1} },
		func(a, b MeanAcc) MeanAcc { return MeanAcc{Sum: a.Sum + b.Sum, N: a.N + b.N} },
		func(a MeanAcc) float64 {
			if a.N == 0 {
				return 0
			}
			return a.Sum / float64(a.N)
		},
	)
}

// TopKAcc is the accumulator for TopK: item counts, merged additively.
type TopKAcc struct {
	Counts map[string]int64
}

// TopKItem is one entry of a TopK result.
type TopKItem struct {
	Key   string
	Count int64
}

// TopK returns a decomposable heavy-hitters aggregate: it accumulates exact
// per-key counts and lowers to the k most frequent keys (ties broken by key
// order for determinism). Suitable for windowed trend computation in the
// recommendation and advertisement examples.
func TopK(k int) Function[string, TopKAcc, []TopKItem] {
	return NewFunction(
		func() TopKAcc { return TopKAcc{Counts: map[string]int64{}} },
		func(v string) TopKAcc { return TopKAcc{Counts: map[string]int64{v: 1}} },
		func(a, b TopKAcc) TopKAcc {
			out := TopKAcc{Counts: make(map[string]int64, len(a.Counts)+len(b.Counts))}
			for key, c := range a.Counts {
				out.Counts[key] += c
			}
			for key, c := range b.Counts {
				out.Counts[key] += c
			}
			return out
		},
		func(a TopKAcc) []TopKItem {
			items := make([]TopKItem, 0, len(a.Counts))
			for key, c := range a.Counts {
				items = append(items, TopKItem{Key: key, Count: c})
			}
			sort.Slice(items, func(i, j int) bool {
				if items[i].Count != items[j].Count {
					return items[i].Count > items[j].Count
				}
				return items[i].Key < items[j].Key
			})
			if len(items) > k {
				items = items[:k]
			}
			return items
		},
	)
}

// ReservoirAcc is the accumulator for Reservoir.
type ReservoirAcc struct {
	Sample []float64
	Seen   int64
	rng    *rand.Rand
}

// Reservoir returns a decomposable uniform sample of up to k elements
// (Vitter's algorithm R per partial, weighted merge across partials). The
// seed makes tests deterministic.
func Reservoir(k int, seed int64) Function[float64, ReservoirAcc, []float64] {
	newRng := func() *rand.Rand { return rand.New(rand.NewSource(seed)) }
	return NewFunction(
		func() ReservoirAcc { return ReservoirAcc{rng: newRng()} },
		func(v float64) ReservoirAcc {
			return ReservoirAcc{Sample: []float64{v}, Seen: 1, rng: newRng()}
		},
		func(a, b ReservoirAcc) ReservoirAcc {
			rng := a.rng
			if rng == nil {
				rng = b.rng
			}
			if rng == nil {
				rng = newRng()
			}
			out := ReservoirAcc{Seen: a.Seen + b.Seen, rng: rng}
			// Weighted merge: draw from a with probability a.Seen/(a.Seen+b.Seen).
			merged := make([]float64, 0, k)
			ai, bi := 0, 0
			for len(merged) < k && (ai < len(a.Sample) || bi < len(b.Sample)) {
				pickA := bi >= len(b.Sample)
				if !pickA && ai < len(a.Sample) {
					p := float64(a.Seen) / float64(a.Seen+b.Seen)
					pickA = rng.Float64() < p
				}
				if pickA && ai < len(a.Sample) {
					merged = append(merged, a.Sample[ai])
					ai++
				} else if bi < len(b.Sample) {
					merged = append(merged, b.Sample[bi])
					bi++
				}
			}
			out.Sample = merged
			return out
		},
		func(a ReservoirAcc) []float64 { return a.Sample },
	)
}

// FoldAll folds a slice of inputs through a Function — a convenience used by
// batch paths and tests.
func FoldAll[In, Acc, Out any](fn Function[In, Acc, Out], in []In) Out {
	acc := fn.CreateAccumulator()
	for i, v := range in {
		if i == 0 {
			acc = fn.Lift(v)
		} else {
			acc = fn.Combine(acc, fn.Lift(v))
		}
	}
	return fn.Lower(acc)
}
