package i2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func series(rng *rand.Rand, n int, maxGap int64) []Point {
	pts := make([]Point, n)
	var ts int64
	for i := range pts {
		ts += rng.Int63n(maxGap + 1)
		pts[i] = Point{Ts: ts, V: rng.NormFloat64() * 10}
		ts++
	}
	return pts
}

func TestViewportColumnMapping(t *testing.T) {
	vp := Viewport{From: 0, To: 100, Width: 10}
	cases := map[int64]int{0: 0, 9: 0, 10: 1, 99: 9, 55: 5}
	for ts, want := range cases {
		if got := vp.columnOf(ts); got != want {
			t.Errorf("columnOf(%d) = %d, want %d", ts, got, want)
		}
	}
	t0, t1 := vp.columnRange(3)
	if t0 != 30 || t1 != 40 {
		t.Errorf("columnRange(3) = [%d,%d)", t0, t1)
	}
}

func TestViewportValid(t *testing.T) {
	if (Viewport{From: 0, To: 0, Width: 10}).Valid() {
		t.Errorf("empty range should be invalid")
	}
	if (Viewport{From: 0, To: 10, Width: 0}).Valid() {
		t.Errorf("zero width should be invalid")
	}
	if !(Viewport{From: -5, To: 10, Width: 3}).Valid() {
		t.Errorf("negative from should be valid")
	}
}

func TestAggregateM4Basic(t *testing.T) {
	pts := []Point{{0, 5}, {1, 9}, {2, 1}, {3, 7}, {15, 2}}
	vp := Viewport{From: 0, To: 20, Width: 2}
	cols := AggregateM4(pts, vp)
	if len(cols) != 2 {
		t.Fatalf("got %d columns, want 2", len(cols))
	}
	c := cols[0]
	if c.First != (Point{0, 5}) || c.Last != (Point{3, 7}) || c.Min != (Point{2, 1}) || c.Max != (Point{1, 9}) {
		t.Fatalf("column 0 = %+v", c)
	}
	if c.Count != 4 {
		t.Fatalf("count = %d", c.Count)
	}
	if cols[1].Count != 1 || cols[1].First != (Point{15, 2}) {
		t.Fatalf("column 1 = %+v", cols[1])
	}
}

func TestAggregateM4OutOfRangeIgnored(t *testing.T) {
	pts := []Point{{-5, 1}, {3, 2}, {25, 3}}
	cols := AggregateM4(pts, Viewport{From: 0, To: 20, Width: 4})
	if len(cols) != 1 || cols[0].Count != 1 {
		t.Fatalf("cols = %+v", cols)
	}
}

// Data-rate independence (the paper's literal claim, E6): growing the input
// rate by 100x leaves the transfer size bounded by 4*width.
func TestDataRateIndependence(t *testing.T) {
	vp := Viewport{From: 0, To: 10000, Width: 50}
	for _, n := range []int{100, 1000, 10000, 100000} {
		rng := rand.New(rand.NewSource(int64(n)))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Ts: int64(i) * 10000 / int64(n), V: rng.Float64()}
		}
		size := TransferSize(AggregateM4(pts, vp))
		if size > 4*vp.Width {
			t.Fatalf("n=%d: transfer %d exceeds 4*width=%d", n, size, 4*vp.Width)
		}
	}
}

// Minimality: each of the four extremes is necessary — dropping it changes
// rendered pixels on an adversarial series.
func TestMinimalityOfM4(t *testing.T) {
	// The middle column has distinct first/min/max/last; its neighbours
	// anchor the incoming and outgoing connectors, so *every* one of the
	// four extremes influences pixels.
	pts := []Point{{2, 5}, {12, 6}, {14, 9}, {16, 0}, {18, 5}, {22, 5}}
	vp := Viewport{From: 0, To: 30, Width: 3}
	lo, hi := ValueRange(pts)
	sc := Scale{VP: vp, VMin: lo, VMax: hi, H: 16}
	ref := RenderLine(pts, sc)

	cols := AggregateM4(pts, vp)
	if len(cols) != 3 {
		t.Fatalf("expected 3 columns, got %d", len(cols))
	}
	full := RenderLine(Points(cols), sc)
	if !ref.Equal(full) {
		t.Fatalf("M4 itself should be pixel-exact here:\nraw:\n%s\nm4:\n%s", ref, full)
	}
	drop := func(mutate func(*Column)) *Bitmap {
		mut := make([]Column, len(cols))
		copy(mut, cols)
		mutate(&mut[1])
		return RenderLine(Points(mut), sc)
	}
	if bm := drop(func(c *Column) { c.Min = c.First }); ref.Equal(bm) {
		t.Errorf("dropping min did not change pixels — min would be redundant")
	}
	if bm := drop(func(c *Column) { c.Max = c.First }); ref.Equal(bm) {
		t.Errorf("dropping max did not change pixels — max would be redundant")
	}
	if bm := drop(func(c *Column) { c.Last = c.Max }); ref.Equal(bm) {
		t.Errorf("dropping last did not change pixels — last would be redundant")
	}
	if bm := drop(func(c *Column) { c.First = c.Min }); ref.Equal(bm) {
		t.Errorf("dropping first did not change pixels — first would be redundant")
	}
}

// Correctness theorem (the paper's "proven to be correct", E7): rendering
// the M4-reduced series is pixel-identical to rendering the raw series, on
// random series, viewports and resolutions.
func TestPixelEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(500) + 2
		pts := series(rng, n, int64(rng.Intn(20)))
		span := pts[len(pts)-1].Ts + 1
		vp := Viewport{From: 0, To: span, Width: rng.Intn(60) + 2}
		h := rng.Intn(40) + 2
		lo, hi := ValueRange(pts)
		sc := Scale{VP: vp, VMin: lo, VMax: hi, H: h}

		raw := RenderLine(clip(pts, vp), sc)
		red := RenderLine(Points(AggregateM4(pts, vp)), sc)
		if d := raw.Diff(red); d != 0 {
			t.Fatalf("trial %d: %d pixel errors (n=%d, vp=%+v, h=%d)\nraw:\n%s\nm4:\n%s",
				trial, d, n, vp, h, raw, red)
		}
	}
}

func clip(pts []Point, vp Viewport) []Point {
	var out []Point
	for _, p := range pts {
		if p.Ts >= vp.From && p.Ts < vp.To {
			out = append(out, p)
		}
	}
	return out
}

// Reduction: on dense series the reduced size is far below the raw size.
func TestReductionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 100000)
	for i := range pts {
		pts[i] = Point{Ts: int64(i), V: rng.NormFloat64()}
	}
	vp := Viewport{From: 0, To: 100000, Width: 100}
	size := TransferSize(AggregateM4(pts, vp))
	if size > 400 {
		t.Fatalf("transfer %d > 400", size)
	}
	if ratio := float64(len(pts)) / float64(size); ratio < 100 {
		t.Fatalf("reduction ratio %.1f too small", ratio)
	}
}

// Streaming aggregator must agree with the batch aggregation.
func TestStreamAggMatchesBatch(t *testing.T) {
	f := func(seed int64, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := series(rng, rng.Intn(300)+2, 5)
		span := pts[len(pts)-1].Ts + 1
		vp := Viewport{From: 0, To: span, Width: int(widthRaw)%40 + 1}
		want := AggregateM4(pts, vp)

		var got []Column
		sa := NewStreamAgg(vp, func(c Column) { got = append(got, c) })
		for _, p := range pts {
			sa.OnWatermark(p.Ts)
			sa.OnPoint(p)
		}
		sa.Flush()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamAggWatermarkFlush(t *testing.T) {
	vp := Viewport{From: 0, To: 100, Width: 10}
	var got []Column
	sa := NewStreamAgg(vp, func(c Column) { got = append(got, c) })
	sa.OnPoint(Point{Ts: 3, V: 1})
	sa.OnPoint(Point{Ts: 7, V: 2})
	if len(got) != 0 {
		t.Fatalf("column emitted before watermark")
	}
	sa.OnWatermark(9) // column [0,10) not complete yet
	if len(got) != 0 {
		t.Fatalf("column emitted at wm=9")
	}
	sa.OnWatermark(10)
	if len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("got %+v", got)
	}
	// After the viewport ends the aggregator ignores input.
	sa.OnWatermark(100)
	sa.OnPoint(Point{Ts: 50, V: 1})
	sa.Flush()
	if len(got) != 1 {
		t.Fatalf("points accepted after viewport end: %+v", got)
	}
}

func TestPointsDedup(t *testing.T) {
	p := Point{5, 1}
	cols := []Column{{First: p, Last: p, Min: p, Max: p, Count: 1}}
	if got := Points(cols); len(got) != 1 {
		t.Fatalf("single-point column transferred %d tuples", len(got))
	}
}

func TestValueRangeEmpty(t *testing.T) {
	lo, hi := ValueRange(nil)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty range = %v..%v", lo, hi)
	}
}

func TestBitmapBasics(t *testing.T) {
	bm := NewBitmap(4, 3)
	bm.Set(1, 2)
	bm.Set(-1, 0) // clipped
	bm.Set(4, 0)  // clipped
	if !bm.Get(1, 2) || bm.Get(0, 0) || bm.Get(-1, 0) {
		t.Fatalf("get/set broken")
	}
	if bm.OnPixels() != 1 {
		t.Fatalf("OnPixels = %d", bm.OnPixels())
	}
	other := NewBitmap(4, 3)
	if bm.Equal(other) || bm.Diff(other) != 1 {
		t.Fatalf("diff accounting broken")
	}
	if bm.Equal(NewBitmap(2, 2)) {
		t.Fatalf("dimension mismatch must not be equal")
	}
	if len(bm.String()) == 0 {
		t.Fatalf("String should render")
	}
}

func TestScaleClamps(t *testing.T) {
	sc := Scale{VP: Viewport{From: 0, To: 10, Width: 5}, VMin: 0, VMax: 10, H: 10}
	if sc.Y(-5) != 0 || sc.Y(100) != 9 {
		t.Fatalf("Y clamping broken")
	}
	flat := Scale{VP: sc.VP, VMin: 3, VMax: 3, H: 10}
	if flat.Y(3) != 0 {
		t.Fatalf("degenerate range should map to 0")
	}
	if math.IsNaN(float64(flat.Y(3))) {
		t.Fatalf("NaN row")
	}
}
