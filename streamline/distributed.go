package streamline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// WorkerEnvVar, when set in a process's environment, marks it as a
// self-spawned worker: ExecuteDistributed in that process runs the worker
// share against the coordinator at the variable's address instead of
// coordinating, and exits when the share completes. Set automatically by
// WithSelfSpawn; never set it by hand unless you are building your own
// process manager.
const WorkerEnvVar = "STREAMLINE_WORKER"

// WithWorkers makes ExecuteDistributed split the job across n worker
// processes plus the coordinator (this process, which keeps all sinks and
// live local sources). n == 0 (the default) runs single-process.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithListenAddr sets the coordinator's control listen address for
// distributed runs (default: an ephemeral loopback port). Use a fixed
// address when workers are started externally, e.g. "127.0.0.1:7171".
func WithListenAddr(addr string) Option { return core.WithListenAddr(addr) }

// WithSelfSpawn makes ExecuteDistributed start its own workers by
// re-executing the current binary with WorkerEnvVar set. The re-executed
// process runs the same main, builds the same pipeline, and its
// ExecuteDistributed call becomes the worker share — after which the child
// process exits rather than returning into a main that expects results.
func WithSelfSpawn() Option { return core.WithSelfSpawn() }

// WithPipelineRef names the registered pipeline externally started generic
// workers (RunRegisteredWorker) rebuild, with the arguments to rebuild it
// from. Unnecessary with WithSelfSpawn.
func WithPipelineRef(name string, args ...string) Option {
	return core.WithPipelineRef(name, args...)
}

// WithOnListen registers a callback invoked with the coordinator's bound
// control address once it is listening — the way to learn an ephemeral
// port so externally started workers (or test goroutines) can dial in.
func WithOnListen(f func(addr string)) Option { return core.WithOnListen(f) }

// WithSupervision makes ExecuteDistributed self-healing: on any failure —
// worker crash, lost or blackholed connection, local error — the
// coordinator reloads the newest completed checkpoint from the backend and
// relaunches the job, respawning workers (self-spawn mode) or re-placing
// the lost subtasks onto the workers that rejoin (graceful degradation).
// maxRestarts bounds the budget (0: default 5; negative: no restarts);
// the optional backoff durations are the base delay before the first
// restart (doubling per consecutive restart, with jitter) and the delay
// cap. ExecuteSupervised implies this option with defaults.
func WithSupervision(maxRestarts int, backoff ...time.Duration) Option {
	return core.WithSupervision(maxRestarts, backoff...)
}

// WithHeartbeat tunes distributed failure detection: coordinator and
// workers ping every interval and declare a control stream silent for the
// timeout a dead peer — including the hung-but-open TCP case a plain
// connection drop never reports. Defaults: 1s interval, 4s timeout.
func WithHeartbeat(interval, timeout time.Duration) Option {
	return core.WithHeartbeat(interval, timeout)
}

// WithRejoinWindow bounds how long a supervised recovery waits for the full
// worker complement to redial before degrading onto the survivors
// (default 3s; self-spawn mode always respawns the full complement).
func WithRejoinWindow(d time.Duration) Option { return core.WithRejoinWindow(d) }

// RestartStat is one completed supervised recovery: cause, detect and
// restore instants, the Downtime between them (detect→restored MTTR), the
// recovered epoch's worker count, and the checkpoint it resumed from.
type RestartStat = transport.RestartStat

// DialPolicy shapes worker dial/redial backoff (see transport.DialRetry).
type DialPolicy = transport.DialPolicy

// RegisterWireTypes registers custom record payload types for distributed
// runs. Every process of a job must register the same set before
// executing; builtin payloads (string, int, float64, ...) and the engine's
// window/join results are pre-registered.
func RegisterWireTypes(examples ...any) { transport.RegisterTypes(examples...) }

// Metrics returns the environment's metrics registry (created on first
// use). Distributed runs report per-edge transport gauges and counters
// ("edge.<name>.<i>.queued_batches", "edge.<name>.<i>.tx_bytes") and
// checkpoint counts into it.
func (e *Env) Metrics() *metrics.Registry {
	e.regOnce.Do(func() { e.reg = metrics.NewRegistry() })
	return e.reg
}

// ExecuteDistributed runs the pipeline across WithWorkers processes. This
// process becomes the coordinator (participant 0): it distributes the
// structural plan, runs every pinned chain — sinks, so Collect results land
// here, and live channel sources, whose data exists only here — injects
// checkpoint barriers, assembles per-subtask acks into global snapshots on
// the configured backend, and aborts cleanly if any worker connection
// drops (the job is then restartable from the last snapshot at any worker
// count via ExecuteDistributedRestored).
//
// With zero workers it is exactly Execute. In a WithSelfSpawn child
// process it runs the worker share and exits.
func (e *Env) ExecuteDistributed(ctx context.Context) error {
	return e.executeDistributed(ctx, nil)
}

// ExecuteDistributedRestored is ExecuteDistributed starting from a recovery
// snapshot — the worker count may differ from the run that wrote it;
// keyed state and splittable scan work redistribute.
func (e *Env) ExecuteDistributedRestored(ctx context.Context, snap *Snapshot) error {
	return e.executeDistributed(ctx, snap)
}

// ExecuteSupervised is ExecuteDistributed under supervision (implying
// WithSupervision with defaults if not configured): the job survives worker
// crashes, partitions and transient failures by restoring from the newest
// completed checkpoint and relaunching, within the restart budget. With
// zero workers it supervises the single-process run the same way — fail,
// reload from the backend, re-execute. RestartStats reports the recovery
// trajectory afterwards.
func (e *Env) ExecuteSupervised(ctx context.Context) error {
	e.core.EnsureSupervision()
	return e.executeDistributed(ctx, nil)
}

// RestartStats returns one entry per supervised recovery of the last
// ExecuteSupervised / supervised ExecuteDistributed run, in order. The
// Downtime of each entry is the detect→restored repair time.
func (e *Env) RestartStats() []RestartStat { return e.restartStats }

func (e *Env) executeDistributed(ctx context.Context, snap *Snapshot) error {
	if err := e.core.BuildErr(); err != nil {
		return err
	}
	supervised, maxRestarts, backoffBase, backoffMax := e.core.Supervision()
	if addr := os.Getenv(WorkerEnvVar); addr != "" {
		// Self-spawned child: this very code built the identical pipeline,
		// so the env itself is the build product. The share must not return
		// into a main that would print empty results. A rejoin-shaped exit
		// is clean — the supervising parent respawns a fresh process per
		// epoch rather than having children redial.
		err := transport.RunWorker(ctx, addr, e.Metrics(), func(string, []string) (*dataflow.Graph, bool, error) {
			return e.core.Graph(), e.core.Chaining(), nil
		})
		if err != nil && !errors.Is(err, transport.ErrRejoin) {
			fmt.Fprintln(os.Stderr, "streamline worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	workers := e.core.Workers()
	if workers <= 0 {
		if !supervised {
			if snap != nil {
				return e.core.ExecuteRestored(ctx, snap)
			}
			return e.core.Execute(ctx)
		}
		return e.executeSupervisedLocal(ctx, snap, maxRestarts, backoffBase, backoffMax)
	}
	backend, every := e.core.Backend()
	pipeline, args := e.core.PipelineRef()
	hbInterval, hbTimeout := e.core.Heartbeat()
	cfg := transport.Config{
		Graph:             e.core.Graph(),
		Chaining:          e.core.Chaining(),
		Workers:           workers,
		Backend:           backend,
		Interval:          every,
		Restore:           snap,
		Pipeline:          pipeline,
		Args:              args,
		Registry:          e.Metrics(),
		ListenAddr:        e.core.ListenAddr(),
		HeartbeatInterval: hbInterval,
		HeartbeatTimeout:  hbTimeout,
	}
	spawnChild := func(addr string) (*exec.Cmd, error) {
		cmd := exec.CommandContext(ctx, os.Args[0], os.Args[1:]...)
		cmd.Env = append(os.Environ(), WorkerEnvVar+"="+addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return cmd, nil
	}

	if !supervised {
		coord, err := transport.NewCoordinator(cfg)
		if err != nil {
			return err
		}
		if f := e.core.OnListen(); f != nil {
			f(coord.Addr())
		}
		var spawned []*exec.Cmd
		if e.core.SelfSpawn() {
			for i := 0; i < workers; i++ {
				cmd, err := spawnChild(coord.Addr())
				if err != nil {
					for _, c := range spawned {
						c.Process.Kill()
						c.Wait()
					}
					return fmt.Errorf("spawn worker %d: %w", i+1, err)
				}
				spawned = append(spawned, cmd)
			}
		}
		runErr := coord.Run(ctx)
		e.core.NoteDistributedCheckpoints(coord.CompletedCheckpoints())
		// Children exit on their own once their share (or the abort) lands:
		// Run has closed every control connection by now, which unblocks them.
		for _, c := range spawned {
			c.Wait()
		}
		return runErr
	}

	sup, err := transport.NewSupervisor(cfg, transport.SupervisionPolicy{
		MaxRestarts:  maxRestarts,
		BaseBackoff:  backoffBase,
		MaxBackoff:   backoffMax,
		RejoinWindow: e.core.RejoinWindow(),
	})
	if err != nil {
		return err
	}
	// Spawn/Reap run sequentially on the supervisor's goroutine: each epoch
	// respawns the full complement after waiting out the previous one.
	var procs []*exec.Cmd
	if e.core.SelfSpawn() {
		sup.Spawn = func(_ context.Context, addr string, n int) error {
			for i := 0; i < n; i++ {
				cmd, err := spawnChild(addr)
				if err != nil {
					return fmt.Errorf("spawn worker %d: %w", i+1, err)
				}
				procs = append(procs, cmd)
			}
			return nil
		}
		sup.Reap = func() {
			for _, c := range procs {
				c.Process.Kill()
				c.Wait()
			}
			procs = nil
		}
	}
	if f := e.core.OnListen(); f != nil {
		f(sup.Addr())
	}
	runErr := sup.Run(ctx)
	e.core.NoteDistributedCheckpoints(sup.CompletedCheckpoints())
	e.restartStats = sup.Stats()
	for _, c := range procs {
		c.Wait()
	}
	return runErr
}

// executeSupervisedLocal is the zero-worker supervision loop: Execute,
// and on failure reload the newest completed checkpoint and re-execute,
// with the same budget and backoff semantics as the distributed path. The
// graph re-executes in-process, so Collect sinks roll back to their
// checkpointed length and exactly-once output holds across restarts.
func (e *Env) executeSupervisedLocal(ctx context.Context, snap *Snapshot, maxRestarts int, base, max time.Duration) error {
	if maxRestarts == 0 {
		maxRestarts = 5
	}
	if maxRestarts < 0 {
		maxRestarts = 0
	}
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	backend, _ := e.core.Backend()
	restore := snap
	e.restartStats = nil
	for attempt := 0; ; attempt++ {
		var err error
		if restore != nil {
			err = e.core.ExecuteRestored(ctx, restore)
		} else {
			err = e.core.Execute(ctx)
		}
		if err == nil {
			return nil
		}
		failedAt := time.Now()
		if ctx.Err() != nil {
			return err
		}
		if attempt >= maxRestarts {
			return fmt.Errorf("supervision: restart budget (%d) exhausted: %w", maxRestarts, err)
		}
		d := base << uint(attempt)
		if d <= 0 || d > max {
			d = max
		}
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return err
		}
		if backend != nil {
			if s, ok, lerr := backend.Latest(); lerr == nil && ok {
				restore = s
			}
		}
		stat := RestartStat{Attempt: attempt + 1, Cause: err.Error(), FailedAt: failedAt, RestoredAt: time.Now()}
		stat.Downtime = stat.RestoredAt.Sub(stat.FailedAt)
		if restore != nil {
			stat.Checkpoint = restore.CheckpointID
		}
		e.restartStats = append(e.restartStats, stat)
	}
}

// Pipeline registry: generic worker processes (cmd/streamline-worker) have
// no main that builds the job, so pipelines register a named builder and
// the plan's pipeline name selects it.
var (
	pipelinesMu sync.RWMutex
	pipelines   = map[string]func(args []string) (*Env, error){}
)

// RegisterPipeline registers a named pipeline builder for generic workers.
// The builder must construct the pipeline exactly as the coordinator does
// for the same arguments — the plan fingerprint is verified before running.
func RegisterPipeline(name string, build func(args []string) (*Env, error)) {
	pipelinesMu.Lock()
	defer pipelinesMu.Unlock()
	pipelines[name] = build
}

// buildFromEnv adapts an Env-producing pipeline builder to the transport
// layer's graph-producing contract.
func buildFromEnv(build func(pipeline string, args []string) (*Env, error)) transport.BuildFunc {
	return func(pipeline string, args []string) (*dataflow.Graph, bool, error) {
		env, err := build(pipeline, args)
		if err != nil {
			return nil, false, err
		}
		if err := env.core.BuildErr(); err != nil {
			return nil, false, err
		}
		return env.core.Graph(), env.core.Chaining(), nil
	}
}

// RunWorker executes one worker's share of a distributed job, rebuilding
// the pipeline with the given builder. It blocks until the share completes
// or the job aborts. Tests use it to run workers in-process over real TCP;
// cmd/streamline-worker wraps RunRegisteredWorker around it.
func RunWorker(ctx context.Context, coordAddr string, build func(pipeline string, args []string) (*Env, error), opts ...WorkerOption) error {
	reg := metrics.NewRegistry()
	return transport.RunWorker(ctx, coordAddr, reg, buildFromEnv(build), resolveWorkerOptions(opts))
}

// RunWorkerLoop is RunWorker for supervised jobs: the worker redials and
// rejoins after every supervised epoch restart, returning only when the job
// globally completes, fails terminally, or ctx is cancelled.
func RunWorkerLoop(ctx context.Context, coordAddr string, build func(pipeline string, args []string) (*Env, error), opts ...WorkerOption) error {
	reg := metrics.NewRegistry()
	return transport.RunWorkerLoop(ctx, coordAddr, reg, buildFromEnv(build), resolveWorkerOptions(opts))
}

// RunRegisteredWorker is RunWorker against the pipeline registry: the
// coordinator's plan names the pipeline, the registry builds it.
func RunRegisteredWorker(ctx context.Context, coordAddr string, opts ...WorkerOption) error {
	return RunWorker(ctx, coordAddr, registryBuilder, opts...)
}

// RunRegisteredWorkerLoop serves a supervised job across epochs: whenever
// the worker's share ends because the coordinator is restarting the job, it
// redials and rejoins the next epoch. It returns when the job globally
// completes, fails terminally, or ctx is cancelled. Use it instead of
// RunRegisteredWorker for workers of ExecuteSupervised coordinators.
func RunRegisteredWorkerLoop(ctx context.Context, coordAddr string, opts ...WorkerOption) error {
	reg := metrics.NewRegistry()
	return transport.RunWorkerLoop(ctx, coordAddr, reg, buildFromEnv(registryBuilder), resolveWorkerOptions(opts))
}

// WorkerOption configures worker dialing behavior.
type WorkerOption func(*workerConfig)

type workerConfig struct {
	dial DialPolicy
}

// WithWorkerDialPolicy sets the backoff policy workers use to dial (and,
// under supervision, redial) the coordinator.
func WithWorkerDialPolicy(p DialPolicy) WorkerOption {
	return func(c *workerConfig) { c.dial = p }
}

func resolveWorkerOptions(opts []WorkerOption) transport.WorkerOption {
	var c workerConfig
	for _, f := range opts {
		f(&c)
	}
	return transport.WithWorkerDialPolicy(c.dial)
}

func registryBuilder(pipeline string, args []string) (*Env, error) {
	pipelinesMu.RLock()
	build, ok := pipelines[pipeline]
	pipelinesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pipeline %q not registered in this worker binary", pipeline)
	}
	return build(args)
}
