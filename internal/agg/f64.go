package agg

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Acc is the fixed-size partial aggregate used by the window aggregation
// engines. A single representation for all standard functions keeps the
// engines monomorphic (no interface boxing on the hot path), which matters
// for the E1–E5 strategy comparisons.
//
// Field use by function:
//
//	Sum:   V = sum, N = count
//	Count: N = count
//	Min:   V = min, N = count
//	Max:   V = max, N = count
//	Avg:   V = sum, N = count
//	Var:   V = sum, M2 = sum of squared deviations, N = count
type Acc struct {
	V  float64
	M2 float64
	N  int64
}

// FnF64 is a monomorphic decomposable aggregate over float64 values.
// Combine must be associative; engines rely on nothing else unless
// Commutative or Invert is set.
type FnF64 struct {
	// Name identifies the function; engines share state between queries
	// that use the same Name on the same stream.
	Name string
	// Identity is the neutral partial aggregate: Combine(Identity, a) == a.
	Identity Acc
	// Lift converts a raw value into a partial aggregate.
	Lift func(v float64) Acc
	// Combine merges two partials; must be associative.
	Combine func(a, b Acc) Acc
	// Lower finalizes a partial into the result value.
	Lower func(a Acc) float64
	// Commutative reports whether Combine may be applied in any order.
	Commutative bool
	// Invert, if non-nil, removes b from a (Invert(Combine(a,b),b)==a).
	Invert func(a, b Acc) Acc
}

func (f *FnF64) String() string { return fmt.Sprintf("FnF64(%s)", f.Name) }

// SumF64 returns the sum aggregate.
func SumF64() *FnF64 {
	return &FnF64{
		Name:        "sum",
		Identity:    Acc{},
		Lift:        func(v float64) Acc { return Acc{V: v, N: 1} },
		Combine:     func(a, b Acc) Acc { return Acc{V: a.V + b.V, N: a.N + b.N} },
		Lower:       func(a Acc) float64 { return a.V },
		Commutative: true,
		Invert:      func(a, b Acc) Acc { return Acc{V: a.V - b.V, N: a.N - b.N} },
	}
}

// CountF64 returns the count aggregate.
func CountF64() *FnF64 {
	return &FnF64{
		Name:        "count",
		Identity:    Acc{},
		Lift:        func(float64) Acc { return Acc{N: 1} },
		Combine:     func(a, b Acc) Acc { return Acc{N: a.N + b.N} },
		Lower:       func(a Acc) float64 { return float64(a.N) },
		Commutative: true,
		Invert:      func(a, b Acc) Acc { return Acc{N: a.N - b.N} },
	}
}

// MinF64 returns the minimum aggregate. It is not invertible.
func MinF64() *FnF64 {
	return &FnF64{
		Name:     "min",
		Identity: Acc{V: math.Inf(1)},
		Lift:     func(v float64) Acc { return Acc{V: v, N: 1} },
		Combine: func(a, b Acc) Acc {
			if a.N == 0 {
				return b
			}
			if b.N == 0 {
				return a
			}
			return Acc{V: math.Min(a.V, b.V), N: a.N + b.N}
		},
		Lower:       func(a Acc) float64 { return a.V },
		Commutative: true,
	}
}

// MaxF64 returns the maximum aggregate. It is not invertible.
func MaxF64() *FnF64 {
	return &FnF64{
		Name:     "max",
		Identity: Acc{V: math.Inf(-1)},
		Lift:     func(v float64) Acc { return Acc{V: v, N: 1} },
		Combine: func(a, b Acc) Acc {
			if a.N == 0 {
				return b
			}
			if b.N == 0 {
				return a
			}
			return Acc{V: math.Max(a.V, b.V), N: a.N + b.N}
		},
		Lower:       func(a Acc) float64 { return a.V },
		Commutative: true,
	}
}

// AvgF64 returns the arithmetic-mean aggregate.
func AvgF64() *FnF64 {
	return &FnF64{
		Name:     "avg",
		Identity: Acc{},
		Lift:     func(v float64) Acc { return Acc{V: v, N: 1} },
		Combine:  func(a, b Acc) Acc { return Acc{V: a.V + b.V, N: a.N + b.N} },
		Lower: func(a Acc) float64 {
			if a.N == 0 {
				return 0
			}
			return a.V / float64(a.N)
		},
		Commutative: true,
		Invert:      func(a, b Acc) Acc { return Acc{V: a.V - b.V, N: a.N - b.N} },
	}
}

// VarF64 returns the population-variance aggregate using the numerically
// stable parallel merge of Chan, Golub and LeVeque.
func VarF64() *FnF64 {
	return &FnF64{
		Name:     "var",
		Identity: Acc{},
		Lift:     func(v float64) Acc { return Acc{V: v, M2: 0, N: 1} },
		Combine: func(a, b Acc) Acc {
			if a.N == 0 {
				return b
			}
			if b.N == 0 {
				return a
			}
			n := a.N + b.N
			// delta between the two means
			ma := a.V / float64(a.N)
			mb := b.V / float64(b.N)
			d := mb - ma
			m2 := a.M2 + b.M2 + d*d*float64(a.N)*float64(b.N)/float64(n)
			return Acc{V: a.V + b.V, M2: m2, N: n}
		},
		Lower: func(a Acc) float64 {
			if a.N == 0 {
				return 0
			}
			return a.M2 / float64(a.N)
		},
		Commutative: true,
	}
}

// StdFnF64 returns the named standard aggregate, or nil if unknown.
// Recognized names: sum, count, min, max, avg, var.
func StdFnF64(name string) *FnF64 {
	switch name {
	case "sum":
		return SumF64()
	case "count":
		return CountF64()
	case "min":
		return MinF64()
	case "max":
		return MaxF64()
	case "avg":
		return AvgF64()
	case "var":
		return VarF64()
	}
	return nil
}

// Counting wraps fn so that every Combine and Lift invocation increments the
// given counters (either may be nil). It is used by the E3 redundancy
// experiment to count aggregation work per strategy without touching engine
// code.
func Counting(fn *FnF64, combines, lifts *atomic.Int64) *FnF64 {
	wrapped := *fn
	inner := fn.Combine
	wrapped.Combine = func(a, b Acc) Acc {
		if combines != nil {
			combines.Add(1)
		}
		return inner(a, b)
	}
	innerLift := fn.Lift
	wrapped.Lift = func(v float64) Acc {
		if lifts != nil {
			lifts.Add(1)
		}
		return innerLift(v)
	}
	if fn.Invert != nil {
		innerInv := fn.Invert
		wrapped.Invert = func(a, b Acc) Acc {
			if combines != nil {
				combines.Add(1)
			}
			return innerInv(a, b)
		}
	}
	return &wrapped
}
