package chaos

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pair returns a loopback TCP connection accepted through a chaos Listener:
// client is the raw dialer side, server the fault-injectable accepted side.
func pair(t *testing.T) (client net.Conn, server *Conn, ln *Listener) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln = Wrap(raw)
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	errCh := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case c := <-accepted:
		server = c.(*Conn)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { server.Close() })
	return client, server, ln
}

func TestBlackholeReadHonorsDeadline(t *testing.T) {
	client, server, _ := pair(t)
	server.Blackhole()
	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	server.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	start := time.Now()
	buf := make([]byte, 16)
	_, err := server.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read returned %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("blackholed read returned after %v, before the deadline", elapsed)
	}
}

func TestBlackholeWriteSwallowsData(t *testing.T) {
	client, server, _ := pair(t)
	server.Blackhole()
	n, err := server.Write([]byte("into the void"))
	if err != nil || n != len("into the void") {
		t.Fatalf("blackholed write = (%d, %v), want claimed success", n, err)
	}
	client.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := client.Read(buf); err == nil {
		t.Fatalf("peer received %d bytes through a blackhole", n)
	}
}

func TestDelayPostponesReads(t *testing.T) {
	client, server, _ := pair(t)
	server.Delay(50 * time.Millisecond)
	if _, err := client.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "slow" {
		t.Fatalf("delayed read = (%q, %v)", buf[:n], err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("delayed read returned after only %v", elapsed)
	}
}

func TestDropIsCrashStyle(t *testing.T) {
	client, server, _ := pair(t)
	server.Drop()
	buf := make([]byte, 16)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Read(buf); err != io.EOF {
		t.Fatalf("peer of a dropped conn read %v, want EOF", err)
	}
}

func TestPartitionBlackholesEveryAcceptedConn(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(raw)
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	var clients []net.Conn
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(ln.Conns()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("listener never registered both conns")
		}
		time.Sleep(time.Millisecond)
	}
	ln.Partition()
	for _, c := range clients {
		c.Write([]byte("ping"))
	}
	for i, c := range ln.Conns() {
		c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		buf := make([]byte, 16)
		if _, err := c.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("partitioned conn %d read %v, want deadline exceeded", i, err)
		}
	}
	ln.Close()
	<-done
}

func TestKillerCancelsAndForgets(t *testing.T) {
	k := NewKiller()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	k.RegisterCancel("w1", cancel)
	k.Kill("w1")
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Kill did not cancel the registered context")
	}
	// Unknown and already-killed names are no-ops, not panics.
	k.Kill("w1")
	k.Kill("nobody")
}
