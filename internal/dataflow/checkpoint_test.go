package dataflow

import (
	"context"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/state"
	"repro/internal/window"
)

func TestCheckpointsComplete(t *testing.T) {
	g := NewGraph("ckpt")
	src := g.AddSource("src", 2, func(sub, par int) SourceFunc {
		return &PacedSource{
			PerSec: 20000,
			Inner: &GenSource{N: 8000, WatermarkEvery: 16, Gen: func(i int64) Record {
				return Data(i, uint64(i%5), float64(1))
			}},
		}
	})
	red := g.AddOperator("sum", 2, func() Operator {
		return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
	}, Edge{From: src, Part: HashPartition})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})

	backend := state.NewMemoryBackend(0)
	job := NewJob(g, WithCheckpointing(backend, 30*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if job.CompletedCheckpoints() == 0 {
		t.Fatalf("no checkpoints completed during a ~400ms run")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Fatalf("backend has no snapshot")
	}
	// Every node must have state for every subtask.
	for _, n := range g.Nodes() {
		for s := 0; s < n.Parallelism; s++ {
			if _, present := snap.Entries[state.SubtaskKey{OperatorID: n.ID, Subtask: s}]; !present {
				t.Fatalf("snapshot missing entry for %q/%d", n.Name, s)
			}
		}
	}
	// The keyed operator stores one blob per (operator, key group) — all of
	// them, including empty groups, so restore ranges never have holes.
	if snap.NumKeyGroups != DefaultNumKeyGroups {
		t.Fatalf("snapshot NumKeyGroups = %d, want %d", snap.NumKeyGroups, DefaultNumKeyGroups)
	}
	for gk := 0; gk < snap.NumKeyGroups; gk++ {
		if snap.GetGroup(state.GroupKey{OperatorID: red.ID, KeyGroup: gk}) == nil {
			t.Fatalf("snapshot missing key group %d of %q", gk, red.Name)
		}
	}
}

// buildRecoveryGraph builds the job used by the kill/recover tests. The sink
// dedups window results by (key, query, start), making output idempotent so
// that exactly-once *state* yields exactly-once *results*.
func buildRecoveryGraph(n int64, perSec float64, sink *CollectSink) *Graph {
	return buildRecoveryGraphAt(n, perSec, sink, 2)
}

// buildRecoveryGraphAt is buildRecoveryGraph with the keyed (window)
// operator's parallelism as a knob — the rescale tests checkpoint at one
// parallelism and recover at another. Source parallelism stays fixed:
// source positions are per-subtask state and do not redistribute.
func buildRecoveryGraphAt(n int64, perSec float64, sink *CollectSink, winPar int) *Graph {
	g := NewGraph("recovery")
	src := g.AddSource("src", 2, func(sub, par int) SourceFunc {
		var inner SourceFunc = &GenSource{N: n / 2, WatermarkEvery: 8, Gen: func(i int64) Record {
			global := i*2 + int64(sub)
			return Data(global, uint64(global%4), float64(1))
		}}
		if perSec > 0 {
			inner = &PacedSource{PerSec: perSec, Inner: inner}
		}
		return inner
	})
	win := g.AddOperator("win", winPar, NewWindowOp(
		WindowQuery{Spec: window.Tumbling(50), Fn: agg.SumF64()},
		WindowQuery{Spec: window.Session(25), Fn: agg.CountF64()},
	), Edge{From: src, Part: HashPartition})
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: win, Part: Rebalance})
	return g
}

type windowKey struct {
	key     uint64
	queryID int
	start   int64
}

func collectWindows(t *testing.T, sink *CollectSink) map[windowKey]float64 {
	t.Helper()
	out := map[windowKey]float64{}
	for _, r := range sink.Records() {
		wr, ok := r.Value.(WindowResult)
		if !ok {
			t.Fatalf("sink saw non-window value %T", r.Value)
		}
		k := windowKey{key: r.Key, queryID: wr.QueryID, start: wr.Start}
		// Idempotent overwrite: replays emit the same value again.
		out[k] = wr.Value
	}
	return out
}

// The headline fault-tolerance test: run the job straight through; then run
// the same job again, kill it mid-stream, recover from the last completed
// checkpoint, and compare the deduplicated window results. Exactly-once
// state means the two result sets are identical.
func TestKillAndRecoverEquivalence(t *testing.T) {
	const n = 6000

	// Reference run, no failure, unpaced.
	refSink := &CollectSink{}
	run(t, buildRecoveryGraph(n, 0, refSink))
	want := collectWindows(t, refSink)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	// Faulty run: paced to ~10k rec/s per source subtask (~300ms total),
	// killed after ~150ms with checkpoints every 25ms.
	backend := state.NewMemoryBackend(0)
	crashSink := &CollectSink{}
	g1 := buildRecoveryGraph(n, 10000, crashSink)
	job1 := NewJob(g1, WithCheckpointing(backend, 25*time.Millisecond))
	ctx1, cancel1 := context.WithTimeout(context.Background(), 150*time.Millisecond)
	err := job1.Run(ctx1)
	cancel1()
	if err == nil {
		// The job finished before the kill fired; the machine is fast —
		// the recovery path can't be exercised, but results must be right.
		got := collectWindows(t, crashSink)
		assertWindowsEqual(t, got, want)
		t.Skip("job completed before kill; recovery path not exercised on this machine")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed before kill; cannot exercise recovery")
	}

	// Recovery run: restore from the snapshot and run to completion,
	// collecting into the same sink (replayed windows overwrite). Unpaced:
	// recovery replays at full speed.
	g2 := buildRecoveryGraph(n, 0, crashSink)
	job2 := NewJob(g2, WithRestore(snap), WithCheckpointing(backend, 25*time.Millisecond))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	if err := job2.Run(ctx2); err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	got := collectWindows(t, crashSink)
	assertWindowsEqual(t, got, want)
}

func assertWindowsEqual(t *testing.T, got, want map[windowKey]float64) {
	t.Helper()
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("missing window %+v (have %d, want %d)", k, len(got), len(want))
		}
		if g != w {
			t.Fatalf("window %+v = %v, want %v", k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("unexpected window %+v", k)
		}
	}
}

func TestSourceSnapshotRestoreResumes(t *testing.T) {
	src := &GenSource{N: 100, Gen: func(i int64) Record { return Data(i, 0, float64(i)) }}
	var first []Record
	for i := 0; i < 30; i++ {
		r, ok := src.Next()
		if !ok {
			t.Fatalf("source ended early")
		}
		if r.Kind == KindData {
			first = append(first, r)
		}
	}
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed := &GenSource{N: 100, Gen: func(i int64) Record { return Data(i, 0, float64(i)) }}
	if err := resumed.Restore(blob); err != nil {
		t.Fatal(err)
	}
	// Drain both to end; the union must be exactly 0..99 with no gaps or dups.
	seen := map[int64]int{}
	for _, r := range first {
		seen[r.Ts]++
	}
	for {
		r, ok := resumed.Next()
		if !ok {
			break
		}
		if r.Kind == KindData {
			seen[r.Ts]++
		}
	}
	for i := int64(0); i < 100; i++ {
		if seen[i] != 1 {
			t.Fatalf("record %d seen %d times", i, seen[i])
		}
	}
}

func TestCheckpointOverheadIsBounded(t *testing.T) {
	// Sanity check for E9: with checkpointing the job still completes and
	// produces the same aggregate as without.
	build := func() (*Graph, *CollectSink) {
		g := NewGraph("ovh")
		src := g.AddSource("src", 1, SliceSource(intRecords(2000)))
		red := g.AddOperator("sum", 1, func() Operator {
			return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
		}, Edge{From: src, Part: HashPartition})
		sink := &CollectSink{}
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})
		return g, sink
	}
	total := func(s *CollectSink) float64 {
		var sum float64
		for _, r := range s.Records() {
			sum += r.Value.(float64)
		}
		return sum
	}
	g1, s1 := build()
	run(t, g1)
	g2, s2 := build()
	run(t, g2, WithCheckpointing(state.NewMemoryBackend(3), 10*time.Millisecond))
	if total(s1) != total(s2) {
		t.Fatalf("checkpointing changed results: %v vs %v", total(s1), total(s2))
	}
}
