package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Splits are the unit of at-rest work: a byte range of one input file. The
// scan planner chops every input file into newline-aligned ranges of roughly
// SplitSize bytes, and a per-source-stage assigner hands splits to subtasks
// dynamically — a subtask that finishes early pulls the next pending split
// from the shared queue, so skew in file sizes or decode cost never idles a
// worker the way static striping does. Because a split can be processed by
// any subtask, split state is not positional: snapshots record which splits
// are done and where the in-flight ones stand, and restore redistributes the
// remaining work across whatever source parallelism the recovered job runs
// at.

// DefaultSplitSize is the target split length when a plan does not choose
// one. Small enough that a handful of files still parallelizes, large enough
// that per-split open/seek overhead is noise.
const DefaultSplitSize = 4 << 20

// Split is one byte-range unit of at-rest work: the half-open range
// [Start, End) of the file at Path. Ranges tile each file exactly; record
// alignment is resolved by the reader (a split's first record is the first
// one *starting* at or after Start, and a record straddling End is consumed
// entirely by the split it starts in).
type Split struct {
	ID         int
	Path       string
	Start, End int64
}

// splitCursor is a split plus a resume position. offset < 0 means the split
// has not been started (the reader aligns to the first record boundary);
// offset >= 0 is the absolute byte offset of the next unread record, a
// position Restore can Seek to directly.
type splitCursor struct {
	split  Split
	offset int64
}

// ScanPlan owns the splits of one at-rest source stage and assigns them to
// the stage's subtasks. Exactly one ScanPlan is shared by all readers of a
// source node per execution (ScanConfig's factories arrange this); the
// shared queue is what makes assignment dynamic.
//
// Planning is lazy: inputs are expanded (file, directory, or glob) and
// split on first use, so building a graph never touches the filesystem and
// planning errors surface through the reader's Failable contract.
type ScanPlan struct {
	// Inputs are the scan's input patterns: literal file paths, directories
	// (all regular files inside, non-recursive), or filepath.Match globs.
	Inputs []string
	// SplitSize is the target split length in bytes (<= 0 uses
	// DefaultSplitSize).
	SplitSize int64
	// CSV plans quote-aware splits: a CSV file is only chopped mid-file when
	// it provably contains no quoted fields (no '"' byte anywhere), because a
	// quoted field may span lines and make newline alignment ambiguous.
	// Files with quotes fall back to one split covering the whole file;
	// seek-based restore still works there, since snapshots record row
	// boundaries.
	CSV bool
	// Header marks the first row of every CSV file as a header to skip.
	Header bool

	// FixedSplits, when set, replaces filesystem planning entirely: the plan
	// calls it once for the split list instead of expanding Inputs. Sources
	// whose inputs are not plain files (segment-log topics) use this to keep
	// the whole split machinery — dynamic assignment, snapshots, seek-based
	// restore at any parallelism. On restore the plan does not call it:
	// splits are rebuilt from the snapshot's own geometry signature, so a
	// grown input cannot shift the IDs the snapshot refers to.
	FixedSplits func() ([]Split, error)

	mu       sync.Mutex
	planned  bool
	planErr  error
	splits   []Split
	queue    []splitCursor
	restored bool
	legacy   map[int]int64 // legacy round-robin cursors by subtask, nil in split mode
	carry    []int         // restored completed ids, re-carried by subtask 0's snapshots
	// restoreSig is the plan signature carried by the snapshot being
	// restored. Planning trusts its per-file quote decisions (a file's
	// Splits count encodes them) instead of re-reading every CSV file, so
	// recovery stays O(remaining split); the signature comparison right
	// after planning still verifies paths, sizes and split counts.
	restoreSig *scanPlanSig
	// resumed registers the restored in-flight cursors at their resume
	// offsets, permanently for the plan's lifetime. Subtask 0 re-reports
	// them in every snapshot: the shared queue itself is no sound source —
	// a cursor popped by subtask k after k's own barrier but before subtask
	// 0's would be in neither k's blob nor the queue, and the split's
	// pre-restore progress would be lost. Stale entries are harmless: the
	// next restore dedups against completed IDs and later Cur offsets.
	resumed []pendingSplit
	// ownedSubs/ownerPar restrict the queue to locally owned splits in
	// distributed execution (see SetOwnedSubtasks). nil: every split is
	// local — the single-process case, where the queue stays fully dynamic.
	ownedSubs map[int]bool
	ownerPar  int
}

// SetOwnedSubtasks restricts the plan's split queue to the splits owned by
// the given subtasks of a parallelism-wide stage: split ID modulo the stage
// parallelism names the owning subtask. In distributed execution each
// participant's scan plan is a private copy of the same deterministic plan,
// so without ownership every participant would read every split; with it the
// participants partition the split set statically while assignment *within*
// a participant stays dynamic. Only the queue is filtered: the restored
// in-flight registry and the completed-ID carry remain global, because
// subtask 0 (wherever it is placed) re-reports them for the whole stage.
// A nil subs or non-positive parallelism keeps every split local.
func (p *ScanPlan) SetOwnedSubtasks(subs []int, parallelism int) {
	if subs == nil || parallelism <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ownedSubs != nil {
		return // already set (every local subtask passes the same set)
	}
	p.ownedSubs = make(map[int]bool, len(subs))
	for _, s := range subs {
		p.ownedSubs[s] = true
	}
	p.ownerPar = parallelism
	if p.planned && p.planErr == nil {
		kept := p.queue[:0]
		for _, c := range p.queue {
			if p.keepLocked(c.split.ID) {
				kept = append(kept, c)
			}
		}
		p.queue = kept
	}
}

// keepLocked reports whether the split belongs to this participant's queue.
func (p *ScanPlan) keepLocked(id int) bool {
	if p.ownedSubs == nil {
		return true
	}
	return p.ownedSubs[id%p.ownerPar]
}

// normSplitSize returns the plan's effective split size.
func (p *ScanPlan) normSplitSize() int64 {
	if p.SplitSize <= 0 {
		return DefaultSplitSize
	}
	return p.SplitSize
}

// expandInputs resolves the plan's input patterns to a sorted list of files.
func (p *ScanPlan) expandInputs() ([]string, error) {
	var files []string
	for _, in := range p.Inputs {
		st, err := os.Stat(in)
		switch {
		case err == nil && st.IsDir():
			ents, err := os.ReadDir(in)
			if err != nil {
				return nil, fmt.Errorf("scan %q: %w", in, err)
			}
			n := 0
			for _, e := range ents {
				if e.Type().IsRegular() {
					files = append(files, filepath.Join(in, e.Name()))
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("scan %q: directory holds no regular files", in)
			}
		case err == nil:
			files = append(files, in)
		case strings.ContainsAny(in, "*?["):
			matches, gerr := filepath.Glob(in)
			if gerr != nil {
				return nil, fmt.Errorf("scan %q: %w", in, gerr)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("scan %q: glob matched no files", in)
			}
			files = append(files, matches...)
		default:
			return nil, fmt.Errorf("scan %q: %w", in, err)
		}
	}
	sort.Strings(files)
	return files, nil
}

// fileHasQuote reports whether the file contains a '"' byte anywhere — the
// conservative test for CSV splittability (a quote-free file cannot have a
// row spanning lines, so every newline is an unambiguous row boundary).
func fileHasQuote(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	buf := make([]byte, 256*1024)
	for {
		n, err := f.Read(buf)
		if bytes.IndexByte(buf[:n], '"') >= 0 {
			return true, nil
		}
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			return false, err
		}
	}
}

// planLocked expands inputs and chops them into splits. Deterministic for a
// fixed file set: restore re-plans and the split IDs line up with the ones
// the snapshot recorded.
//
// CSV planning pays one extra sequential pass per multi-split file for the
// quote probe — a memchr-speed read, much cheaper than the parse scan, but
// real I/O on a cold cache. Files that fit in a single split skip it (their
// quote status cannot change the plan), and the probes of different files
// run concurrently.
func (p *ScanPlan) planLocked() error {
	if p.planned {
		return p.planErr
	}
	p.planned = true
	if p.FixedSplits != nil {
		if p.restoreSig != nil {
			// Restore path: rebuild the exact geometry the snapshot's split
			// IDs index into, from its signature. The live input may have
			// grown since the checkpoint; the extra bytes are simply not part
			// of this plan (a follow-mode tail picks them up instead).
			p.splits = splitsFromSig(p.restoreSig)
			p.SplitSize = p.restoreSig.SplitSize
		} else {
			splits, err := p.FixedSplits()
			if err != nil {
				p.planErr = err
				return err
			}
			p.splits = splits
		}
		for _, sp := range p.splits {
			if p.keepLocked(sp.ID) {
				p.queue = append(p.queue, splitCursor{split: sp, offset: -1})
			}
		}
		return nil
	}
	files, err := p.expandInputs()
	if err != nil {
		p.planErr = err
		return err
	}
	size := p.normSplitSize()
	type fileScan struct {
		path   string
		total  int64
		quoted bool
		err    error
	}
	var scans []*fileScan
	for _, path := range files {
		st, err := os.Stat(path)
		if err != nil {
			p.planErr = fmt.Errorf("scan %q: %w", path, err)
			return p.planErr
		}
		if st.Size() == 0 {
			continue
		}
		scans = append(scans, &fileScan{path: path, total: st.Size()})
	}
	if p.CSV && p.restoreSig != nil {
		// Restore path: the snapshot's signature records each file's split
		// count, which encodes the original quote decision — trust it and
		// skip the probe (the signature check after planning still verifies
		// the file set). Recovery stays O(remaining split), not O(input).
		recorded := make(map[string]scanFileSig, len(p.restoreSig.Files))
		for _, f := range p.restoreSig.Files {
			recorded[f.Path] = f
		}
		for _, fs := range scans {
			if f, ok := recorded[fs.path]; ok {
				fs.quoted = fs.total > size && f.Splits == 1
			}
		}
	} else if p.CSV {
		var wg sync.WaitGroup
		sem := make(chan struct{}, 8) // bound open files and goroutines
		for _, fs := range scans {
			if fs.total <= size {
				continue // single split either way: quoting cannot matter
			}
			fs := fs
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				fs.quoted, fs.err = fileHasQuote(fs.path)
			}()
		}
		wg.Wait()
		for _, fs := range scans {
			if fs.err != nil {
				p.planErr = fmt.Errorf("scan %q: %w", fs.path, fs.err)
				return p.planErr
			}
		}
	}
	for _, fs := range scans {
		chunk := size
		if fs.quoted {
			chunk = fs.total // unsplittable: one split per file
		}
		p.splits = TileSplits(p.splits, fs.path, fs.total, chunk)
	}
	for _, sp := range p.splits {
		if p.keepLocked(sp.ID) {
			p.queue = append(p.queue, splitCursor{split: sp, offset: -1})
		}
	}
	return nil
}

// TileSplits appends byte-range splits tiling [0, total) of the named input
// in chunks of roughly chunk bytes (chunk <= 0 yields one split covering
// the whole input), continuing the ID sequence from len(splits). This is
// the one split-boundary tiling shared by the file planner and fixed-split
// sources — alignment to record boundaries stays the reader's job (first
// record starting at or after Start; a record straddling End belongs to the
// split it starts in).
func TileSplits(splits []Split, path string, total, chunk int64) []Split {
	if total <= 0 {
		return splits
	}
	if chunk <= 0 {
		chunk = total
	}
	for off := int64(0); off < total; off += chunk {
		end := off + chunk
		if end > total {
			end = total
		}
		splits = append(splits, Split{ID: len(splits), Path: path, Start: off, End: end})
	}
	return splits
}

// splitsFromSig re-derives a fixed-split plan's split list from a snapshot
// signature: each recorded file re-tiles deterministically at the recorded
// split size. Valid because fixed-split sources always tile contiguously
// from byte 0 — signatureLocked's per-file (Size, Splits) fully determines
// the ranges.
func splitsFromSig(sig *scanPlanSig) []Split {
	var splits []Split
	for _, f := range sig.Files {
		splits = TileSplits(splits, f.Path, f.Size, sig.SplitSize)
	}
	return splits
}

// acquire pops the next pending split, or ok=false when the scan is
// exhausted. Safe for concurrent subtasks — this is the dynamic assignment.
func (p *ScanPlan) acquire() (splitCursor, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.planLocked(); err != nil {
		return splitCursor{}, false, err
	}
	if len(p.queue) == 0 {
		return splitCursor{}, false, nil
	}
	c := p.queue[0]
	p.queue = p.queue[1:]
	return c, true, nil
}

// Splits exposes the planned splits (planning first if needed) — used by
// tests and the scan benchmark.
func (p *ScanPlan) Splits() ([]Split, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.planLocked(); err != nil {
		return nil, err
	}
	return append([]Split(nil), p.splits...), nil
}

// ---- snapshot format -------------------------------------------------------

// splitScanState is the versioned snapshot of one FileScanSource subtask
// (format version 2). Completed lists the split IDs this subtask fully
// consumed (subtask 0 additionally re-carries the IDs completed before the
// last restore, so consecutive restores never resurrect finished splits);
// Cur* is the in-flight split and the absolute byte offset of its next
// unread record — the position restore Seeks to. Pending (subtask 0 only)
// carries the restored in-flight cursors still sitting unacquired in the
// shared queue: without it, a checkpoint taken between a restore and the
// cursor's re-acquisition would forget the resume offset and a second
// recovery would re-scan the split from its start, duplicating records.
// Legacy >= 0 marks a reader converted from a pre-split snapshot that is
// still scanning round-robin by row index.
// Plan (subtask 0 only) fingerprints the split geometry the IDs refer to;
// restore refuses to reuse IDs against a plan that chops the input
// differently.
type splitScanState struct {
	V         int
	Completed []int
	CurID     int // -1: no split in flight
	CurPath   string
	CurOff    int64
	Pending   []pendingSplit
	Plan      *scanPlanSig
	Legacy    int64 // -1: split mode
}

// pendingSplit is a resumed in-flight cursor not yet re-acquired: split ID,
// its file, and the absolute offset of its next unread record.
type pendingSplit struct {
	ID   int
	Path string
	Off  int64
}

// scanPlanSig fingerprints the plan geometry a snapshot's split IDs refer
// to: the split size plus each file's size and split count (which also
// encodes CSV quote-fallback decisions). Restore recomputes the signature
// from the current inputs and refuses a mismatch — split IDs are positional
// in the plan, so a changed split size or input set would otherwise
// silently remap completed ranges onto different bytes, dropping some
// records and duplicating others.
type scanPlanSig struct {
	SplitSize int64
	Files     []scanFileSig
}

// scanFileSig is one input file's contribution to the plan signature.
type scanFileSig struct {
	Path   string
	Size   int64
	Splits int
}

// signatureLocked derives the plan's geometry fingerprint (plan first).
func (p *ScanPlan) signatureLocked() (*scanPlanSig, error) {
	if err := p.planLocked(); err != nil {
		return nil, err
	}
	sig := &scanPlanSig{SplitSize: p.normSplitSize()}
	for _, sp := range p.splits {
		n := len(sig.Files)
		if n == 0 || sig.Files[n-1].Path != sp.Path {
			sig.Files = append(sig.Files, scanFileSig{Path: sp.Path})
			n++
		}
		f := &sig.Files[n-1]
		f.Size += sp.End - sp.Start
		f.Splits++
	}
	return sig, nil
}

// sigSplits renders a signature's total split count for error messages.
func sigSplits(s *scanPlanSig) string {
	n := 0
	for _, f := range s.Files {
		n += f.Splits
	}
	return fmt.Sprintf("%d", n)
}

// signature derives the plan's geometry fingerprint (plan first).
func (p *ScanPlan) signature() (*scanPlanSig, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.signatureLocked()
}

// sigsEqual compares two plan signatures.
func sigsEqual(a, b *scanPlanSig) bool {
	if a.SplitSize != b.SplitSize || len(a.Files) != len(b.Files) {
		return false
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			return false
		}
	}
	return true
}

// splitStateVersion is the current source-snapshot format version. Version 0
// is the implicit version of pre-split fileCursorState blobs.
const splitStateVersion = 2

// fileCursorState is the pre-split snapshot of the file readers: the next
// global record index, under round-robin row assignment. Kept so versioned
// decoding can accept and convert snapshots taken before splits existed.
type fileCursorState struct {
	Next int64
}

// decodeScanState decodes a source snapshot blob of either version: the
// version probe reads only a V field, which legacy fileCursorState blobs
// leave at zero, and dispatches. Legacy blobs convert to a Legacy-mode
// state (round-robin from row index Next).
func decodeScanState(blob []byte) (splitScanState, error) {
	// The probe declares one field from each format (gob needs at least one
	// match): V stays zero for legacy blobs, which only carry Next.
	var probe struct {
		V    int
		Next int64
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&probe); err != nil {
		return splitScanState{}, fmt.Errorf("scan restore: %w", err)
	}
	if probe.V == 0 {
		var legacy fileCursorState
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&legacy); err != nil {
			return splitScanState{}, fmt.Errorf("scan restore (legacy): %w", err)
		}
		return splitScanState{V: 0, CurID: -1, Legacy: legacy.Next}, nil
	}
	if probe.V != splitStateVersion {
		return splitScanState{}, fmt.Errorf("scan restore: unknown snapshot version %d", probe.V)
	}
	var s splitScanState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return splitScanState{}, fmt.Errorf("scan restore: %w", err)
	}
	return s, nil
}

func encodeScanState(s splitScanState) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// restoreFrom rebuilds the plan's queue from the snapshot blobs of every
// subtask of the checkpointing job (keyed by the *old* subtask index). The
// call is shared and idempotent: every reader of the stage passes the same
// blob set, the first call does the work, later calls see the result.
//
// Split-mode blobs are parallelism-agnostic: pending work is everything
// planned minus the union of completed splits, plus the in-flight splits
// resumed at their recorded offsets — so the restoring job may run at any
// source parallelism. Legacy blobs are positional (row index modulo the old
// parallelism), so they restore only at the parallelism they were written
// at; restoreFrom records the per-subtask cursors and the readers stay in
// round-robin mode.
func (p *ScanPlan) restoreFrom(blobs map[int][]byte, newPar int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.restored {
		return nil
	}
	p.restored = true
	states := make(map[int]splitScanState, len(blobs))
	legacyN, splitN := 0, 0
	maxSub := -1
	for sub, blob := range blobs {
		s, err := decodeScanState(blob)
		if err != nil {
			return err
		}
		states[sub] = s
		if s.Legacy >= 0 {
			legacyN++
		} else {
			splitN++
		}
		if sub > maxSub {
			maxSub = sub
		}
	}
	if legacyN > 0 && splitN > 0 {
		return fmt.Errorf("scan restore: snapshot mixes legacy and split-mode source state")
	}
	if legacyN > 0 && p.FixedSplits != nil {
		return fmt.Errorf("scan restore: legacy (pre-split) source state cannot restore a fixed-split source")
	}
	if legacyN > 0 {
		oldPar := maxSub + 1
		if oldPar != newPar {
			return fmt.Errorf("scan restore: legacy (pre-split) source snapshot written at parallelism %d cannot restore at %d: row-index cursors are positional; take one checkpoint at the original parallelism first", oldPar, newPar)
		}
		p.legacy = make(map[int]int64, len(states))
		for sub, s := range states {
			p.legacy[sub] = s.Legacy
		}
		return nil
	}
	for _, s := range states {
		if s.Plan != nil {
			p.restoreSig = s.Plan // planning trusts its quote decisions
			break
		}
	}
	if err := p.planLocked(); err != nil {
		return err
	}
	if p.restoreSig != nil {
		sig, err := p.signatureLocked()
		if err != nil {
			return err
		}
		if !sigsEqual(p.restoreSig, sig) {
			return fmt.Errorf("scan restore: the snapshot's split IDs were planned over %d files (%s splits of ~%d bytes) but the current inputs plan to %d files (%s splits of ~%d bytes): the input files or split size changed since the checkpoint, so split positions cannot be reused",
				len(p.restoreSig.Files), sigSplits(p.restoreSig), p.restoreSig.SplitSize, len(sig.Files), sigSplits(sig), sig.SplitSize)
		}
	}
	done := make(map[int]bool)
	// In-flight cursors come from two places — each subtask's Cur and
	// subtask 0's Pending carry — and the same split may appear in both
	// within one checkpoint (subtask 0 snapshots it as still-queued, then
	// another subtask acquires it and snapshots its own progress before
	// acking). The largest offset wins: ABS guarantees every record emitted
	// before the owner's barrier is covered by the checkpoint's downstream
	// state, and the owner's Cur offset is the furthest such position.
	inflight := map[int]pendingSplit{}
	noteInflight := func(c pendingSplit) {
		if prev, ok := inflight[c.ID]; !ok || c.Off > prev.Off {
			inflight[c.ID] = c
		}
	}
	for _, s := range states {
		for _, id := range s.Completed {
			done[id] = true
		}
		if s.CurID >= 0 {
			noteInflight(pendingSplit{ID: s.CurID, Path: s.CurPath, Off: s.CurOff})
		}
		for _, c := range s.Pending {
			noteInflight(c)
		}
	}
	check := func(id int, path string) (Split, error) {
		if id < 0 || id >= len(p.splits) {
			return Split{}, fmt.Errorf("scan restore: snapshot references split %d but the plan holds %d (input files changed since the checkpoint)", id, len(p.splits))
		}
		sp := p.splits[id]
		if path != "" && sp.Path != path {
			return Split{}, fmt.Errorf("scan restore: split %d is %q in the plan but %q in the snapshot (input files changed since the checkpoint)", id, sp.Path, path)
		}
		return sp, nil
	}
	for id := range done {
		if _, err := check(id, ""); err != nil {
			return err
		}
		// A split both completed and in flight: completion happened at a
		// later position, so the completed record wins.
		delete(inflight, id)
	}
	// In-flight splits first (they are partially consumed — resuming them
	// promptly bounds the re-read window), then the untouched remainder.
	p.queue = p.queue[:0]
	cur := make([]pendingSplit, 0, len(inflight))
	for _, c := range inflight {
		cur = append(cur, c)
	}
	sort.Slice(cur, func(i, j int) bool { return cur[i].ID < cur[j].ID })
	for _, c := range cur {
		sp, err := check(c.ID, c.Path)
		if err != nil {
			return err
		}
		done[c.ID] = true // claimed: keep it out of the pending scan below
		if c.Off >= sp.End {
			p.carry = append(p.carry, c.ID) // finished exactly at the boundary
			continue
		}
		if p.keepLocked(sp.ID) {
			p.queue = append(p.queue, splitCursor{split: sp, offset: c.Off})
		}
		// The registry stays global regardless of ownership: subtask 0
		// re-reports every resumed cursor for the whole stage.
		p.resumed = append(p.resumed, c)
	}
	for _, sp := range p.splits {
		if !done[sp.ID] && p.keepLocked(sp.ID) {
			p.queue = append(p.queue, splitCursor{split: sp, offset: -1})
		}
	}
	for id := range done {
		if _, claimed := inflight[id]; !claimed {
			p.carry = append(p.carry, id)
		}
	}
	sort.Ints(p.carry)
	return nil
}

// pendingResumed returns the registry of restored in-flight cursors at
// their resume offsets — subtask 0 includes it in every snapshot so a
// checkpoint taken at any point relative to their re-acquisition keeps the
// resume offsets (see the field comment for why the live queue cannot be
// consulted instead).
func (p *ScanPlan) pendingResumed() []pendingSplit {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]pendingSplit(nil), p.resumed...)
}

// restoredState hands a reader its post-restore role: the legacy cursor for
// its subtask (ok only in legacy mode) and, for subtask 0, the completed-ID
// carry set.
func (p *ScanPlan) restoredState(subtask int) (legacyNext int64, legacyMode bool, carry []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.legacy != nil {
		return p.legacy[subtask], true, nil
	}
	if subtask == 0 {
		return 0, false, append([]int(nil), p.carry...)
	}
	return 0, false, nil
}

// legacyInput returns the single input file of a legacy-restored scan.
// Pre-split snapshots only ever covered one literal path.
func (p *ScanPlan) legacyInput() (string, error) {
	if len(p.Inputs) != 1 {
		return "", fmt.Errorf("scan restore: legacy snapshot requires a single input file, plan has %d inputs", len(p.Inputs))
	}
	return p.Inputs[0], nil
}
