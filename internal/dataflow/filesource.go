package dataflow

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// File sources bring data at rest into the engine as plain streams that
// end — the same code path as data in motion. Both readers below are
// replayable by construction: records are addressed by their index in the
// file, Snapshot captures the next index, and Restore re-scans from the
// start of the file to that index (files are the cheap-to-reread tier of
// the at-rest spectrum). Rows are split round-robin across subtasks by
// global index, like SliceSource.

// maxLineBytes bounds a single line for LineFileSource (4 MiB).
const maxLineBytes = 4 << 20

// fileCursorState is the snapshot of both file readers: the next global
// record index to emit from.
type fileCursorState struct {
	Next int64
}

// LineFileSource reads a newline-delimited file, decoding one record per
// line with Decode — the substrate of the JSONL connector. Lines whose
// global index is not congruent to Subtask modulo Parallelism are skipped,
// as are lines Decode rejects with keep=false (blank lines, comments).
// A Decode error or I/O error ends the stream and surfaces through Err.
type LineFileSource struct {
	Path                 string
	Subtask, Parallelism int
	// Decode turns one line (without its newline) into a record. The line
	// buffer is only valid during the call.
	Decode func(line []byte, index int64) (r Record, keep bool, err error)

	f    *os.File
	sc   *bufio.Scanner
	cur  int64 // global index of the next line the scanner returns
	next int64 // restore target: skip lines below this index
	err  error
}

// open (re)opens the file and positions the scanner at the start.
func (l *LineFileSource) open() bool {
	f, err := os.Open(l.Path)
	if err != nil {
		l.err = fmt.Errorf("line source %q: %w", l.Path, err)
		return false
	}
	l.f = f
	l.sc = bufio.NewScanner(f)
	l.sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	l.cur = 0
	return true
}

func (l *LineFileSource) close() {
	if l.f != nil {
		l.f.Close()
		l.f, l.sc = nil, nil
		// A finished reader snapshots the position it reached: Snapshot's
		// f==nil branch returns next, which would otherwise still hold the
		// pre-start restore target and replay the whole file. (Restore
		// overwrites next right after calling close.)
		l.next = l.cur
	}
}

// Next implements SourceFunc.
func (l *LineFileSource) Next() (Record, bool) {
	if l.err != nil {
		return Record{}, false
	}
	if l.f == nil && !l.open() {
		return Record{}, false
	}
	par := l.Parallelism
	if par <= 0 {
		par = 1
	}
	for l.sc.Scan() {
		idx := l.cur
		l.cur++
		if idx < l.next || idx%int64(par) != int64(l.Subtask%par) {
			continue
		}
		r, keep, err := l.Decode(l.sc.Bytes(), idx)
		if err != nil {
			l.err = fmt.Errorf("line source %q: line %d: %w", l.Path, idx+1, err)
			l.close()
			return Record{}, false
		}
		if !keep {
			continue
		}
		return r, true
	}
	if err := l.sc.Err(); err != nil {
		l.err = fmt.Errorf("line source %q: %w", l.Path, err)
	}
	l.close()
	return Record{}, false
}

// Snapshot implements SourceFunc.
func (l *LineFileSource) Snapshot() ([]byte, error) {
	next := l.cur
	if l.f == nil {
		next = l.next // not started (or restored and not resumed) yet
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(fileCursorState{Next: next})
	return buf.Bytes(), err
}

// Restore implements SourceFunc: the file is re-scanned from the start and
// lines before the snapshot position are skipped.
func (l *LineFileSource) Restore(blob []byte) error {
	var s fileCursorState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("line source restore: %w", err)
	}
	l.close()
	l.next, l.err = s.Next, nil
	return nil
}

// Err implements Failable.
func (l *LineFileSource) Err() error { return l.err }

// CSVFileSource reads a CSV file with encoding/csv (quoted fields may span
// lines), decoding one record per row with Decode — the substrate of the
// CSV connector. Rows are split round-robin across subtasks by global row
// index; the header row, when SkipHeader is set, is not indexed.
type CSVFileSource struct {
	Path                 string
	SkipHeader           bool
	Subtask, Parallelism int
	// Decode turns one row into a record. The row slice is only valid
	// during the call.
	Decode func(row []string, index int64) (r Record, err error)

	f    *os.File
	rd   *csv.Reader
	cur  int64
	next int64
	err  error
}

// open (re)opens the file, consuming the header row if configured.
func (c *CSVFileSource) open() bool {
	f, err := os.Open(c.Path)
	if err != nil {
		c.err = fmt.Errorf("csv source %q: %w", c.Path, err)
		return false
	}
	c.f = f
	c.rd = csv.NewReader(bufio.NewReader(f))
	c.rd.FieldsPerRecord = -1
	c.cur = 0
	if c.SkipHeader {
		if _, err := c.rd.Read(); err != nil && err != io.EOF {
			c.err = fmt.Errorf("csv source %q: header: %w", c.Path, err)
			c.close()
			return false
		}
	}
	return true
}

func (c *CSVFileSource) close() {
	if c.f != nil {
		c.f.Close()
		c.f, c.rd = nil, nil
		// Like LineFileSource.close: a finished reader snapshots the
		// position it reached, not the pre-start restore target.
		c.next = c.cur
	}
}

// Next implements SourceFunc.
func (c *CSVFileSource) Next() (Record, bool) {
	if c.err != nil {
		return Record{}, false
	}
	if c.f == nil && !c.open() {
		return Record{}, false
	}
	par := c.Parallelism
	if par <= 0 {
		par = 1
	}
	for {
		row, err := c.rd.Read()
		if err == io.EOF {
			c.close()
			return Record{}, false
		}
		if err != nil {
			c.err = fmt.Errorf("csv source %q: %w", c.Path, err)
			c.close()
			return Record{}, false
		}
		idx := c.cur
		c.cur++
		if idx < c.next || idx%int64(par) != int64(c.Subtask%par) {
			continue
		}
		r, err := c.Decode(row, idx)
		if err != nil {
			c.err = fmt.Errorf("csv source %q: row %d: %w", c.Path, idx+1, err)
			c.close()
			return Record{}, false
		}
		return r, true
	}
}

// Snapshot implements SourceFunc.
func (c *CSVFileSource) Snapshot() ([]byte, error) {
	next := c.cur
	if c.f == nil {
		next = c.next
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(fileCursorState{Next: next})
	return buf.Bytes(), err
}

// Restore implements SourceFunc.
func (c *CSVFileSource) Restore(blob []byte) error {
	var s fileCursorState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("csv source restore: %w", err)
	}
	c.close()
	c.next, c.err = s.Next, nil
	return nil
}

// Err implements Failable.
func (c *CSVFileSource) Err() error { return c.err }
