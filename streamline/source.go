package streamline

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"repro/internal/dataflow"
)

// ReadStatus is what a Reader's Next call reports about its input — the
// typed rendering of Flink's InputStatus. Data-at-rest readers only ever
// return ReadData and ReadEnd; live (in-motion) readers additionally use
// ReadIdle so the runtime stays responsive while the input is quiet, and
// composite readers use ReadWatermark to steer event time explicitly.
type ReadStatus uint8

const (
	// ReadData means the returned element is valid.
	ReadData ReadStatus = iota
	// ReadWatermark means the returned element's Ts carries an event-time
	// watermark: a promise that no later element of this subtask has a
	// smaller timestamp.
	ReadWatermark
	// ReadIdle means no element is available right now; the runtime emits
	// the current watermark and polls again. Readers should wait briefly
	// before returning ReadIdle rather than spinning.
	ReadIdle
	// ReadEnd means the input is exhausted (bounded sources).
	ReadEnd
	// ReadHandoff means this subtask's at-rest phase is complete and
	// everything it emits next follows the live contract (timestamps after
	// the at-rest maximum; older ones are late). The element's Ts carries
	// the reader's own at-rest maximum, but the runtime promises the
	// *stage-wide* maximum seen so far: with dynamically assigned splits a
	// subtask's own share says little about the history as a whole — it may
	// even be empty — and the stage-wide promise is what lets history
	// windows fire at the handoff instead of waiting for live data.
	ReadHandoff
)

// Reader produces the elements of one source subtask. Implementations
// should be replayable for exactly-once recovery: Snapshot captures the
// read position, Restore resumes from it, re-emitting everything after.
// Sources that cannot replay (live channels) snapshot their bookkeeping and
// document the weaker guarantee.
//
// A Reader whose input can fail mid-stream (files, networks) may
// additionally implement `Err() error`; the runtime checks it at end of
// stream and fails the job with the reported error.
type Reader[T any] interface {
	// Next returns the next element and its status. The element is only
	// meaningful for ReadData (a record) and ReadWatermark (Ts is the
	// watermark).
	Next() (Keyed[T], ReadStatus)
	// Snapshot serializes the read position.
	Snapshot() ([]byte, error)
	// Restore resumes from a snapshot taken by Snapshot.
	Restore([]byte) error
}

// Source is a typed, pluggable connector: a factory of per-subtask Readers.
// Built-in connectors cover slices (Slice, KeyedSlice), deterministic
// generators (Generator, Paced), live channels (Channel), files at rest
// (JSONL, CSV), and the at-rest→in-motion handoff (Hybrid); custom
// connectors implement this interface directly and plug into the same From
// entry point, options and checkpointing machinery.
type Source[T any] interface {
	// Open builds the reader feeding one subtask of the source stage.
	Open(subtask, parallelism int) Reader[T]
}

// MultiRestorer is an optional Reader extension for readers whose snapshot
// state is not positional per subtask. RestoreAll receives the blobs of
// *every* subtask of the checkpointing job, keyed by old subtask index, so
// the restoring stage may run at a different source parallelism — the file
// connectors implement it by redistributing their remaining byte-range
// splits, and composite readers (Hybrid, Paced) by decomposing and
// delegating. Readers without it restore positionally and require the
// original parallelism.
type MultiRestorer interface {
	RestoreAll(subtask, parallelism int, blobs map[int][]byte) error
}

// ParallelismHinter is an optional Source extension for connectors that
// only behave correctly at a particular parallelism. From honors the hint
// whenever no WithSourceParallelism option is given; the option always
// wins. Channel hints 1 (subtasks would split the shared channel, and an
// idle subtask would pin downstream event time at -inf); decorating
// connectors (Paced, Hybrid) delegate to their inner sources.
type ParallelismHinter interface {
	// PreferredParallelism returns the parallelism the source stage should
	// default to; <= 0 means no preference.
	PreferredParallelism() int
}

// sourceConfig is the resolved set of source options.
type sourceConfig struct {
	parallelism int
	parSet      bool // WithSourceParallelism was given (even as zero)
	lag         int64
	wmEvery     int64
	ts          any // func(T) int64, asserted by From against the stream type
}

// SourceOption configures a source stage built by From.
type SourceOption interface{ applySource(*sourceConfig) }

type sourceOptionFunc func(*sourceConfig)

func (f sourceOptionFunc) applySource(c *sourceConfig) { f(c) }

// WithSourceParallelism sets the number of subtasks of the source stage.
// Zero or negative uses the environment default. Giving the option in any
// form overrides the connector's ParallelismHinter hint.
func WithSourceParallelism(p int) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.parallelism, c.parSet = p, true })
}

// WithWatermarkLag sets the bounded-disorder allowance: watermarks trail the
// max seen event timestamp by lag ticks (default 0).
func WithWatermarkLag(lag int64) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.lag = lag })
}

// WithWatermarkEvery sets the watermark cadence: one watermark per `every`
// records per subtask (default 64).
func WithWatermarkEvery(every int64) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.wmEvery = every })
}

// WithTimestamps installs an event-timestamp extractor: every element the
// source produces is re-stamped with f(value) before entering the pipeline.
// The extractor's input type must equal the stream's element type.
func WithTimestamps[T any](f func(T) int64) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.ts = f })
}

// From creates a stream reading from a source connector — the single entry
// point of the connector API. Whether src is data at rest (Slice, JSONL,
// CSV), data in motion (Channel, Paced), or a Hybrid of both, the identical
// plan runs on the identical engine. Options control the stage's
// parallelism, watermark cadence and lag, and timestamp extraction.
func From[T any](env *Env, name string, src Source[T], opts ...SourceOption) *Stream[T] {
	cfg := sourceConfig{wmEvery: 64}
	for _, o := range opts {
		o.applySource(&cfg)
	}
	if !cfg.parSet {
		cfg.parallelism = preferredParallelism(src)
	}
	var ts func(T) int64
	if cfg.ts != nil {
		f, ok := cfg.ts.(func(T) int64)
		if !ok {
			env.core.Fail(fmt.Errorf("streamline: From %q: WithTimestamps extractor is %T, want func(%s) int64",
				name, cfg.ts, typeName[T]()))
			return &Stream[T]{env: env, inner: env.core.FromSource(name, cfg.parallelism, emptySourceFactory)}
		}
		ts = f
	}
	// The stage clock is shared by every subtask of this source stage: it
	// tracks the maximum event time any subtask has emitted, and backs the
	// stage-wide promise of ReadHandoff. Only handoff-capable readers pay
	// for the tracking. Like the scan plan, it resets when subtask 0 is
	// built (the runtime builds subtasks in order), so re-executing the
	// same pipeline does not promise the previous run's event times.
	clock := newStageClock()
	var slot any // per-stage shared reader state (scan plans); see sharedOpener
	factory := func(sub, par int) dataflow.SourceFunc {
		if sub == 0 {
			clock.reset()
		}
		l := &loweredReader[T]{
			r:       openSourceShared(src, &slot, sub, par),
			ts:      ts,
			every:   cfg.wmEvery,
			lag:     cfg.lag,
			wmFloor: minInt64,
		}
		if readerCanHandoff(l.r) {
			l.clock = clock
		}
		return l
	}
	return &Stream[T]{env: env, inner: env.core.FromSource(name, cfg.parallelism, factory)}
}

// preferredParallelism reads a source's parallelism hint, if it carries one.
func preferredParallelism[T any](src Source[T]) int {
	if h, ok := src.(ParallelismHinter); ok {
		return h.PreferredParallelism()
	}
	return 0
}

// sharedOpener is the internal Source extension for connectors whose readers
// share per-execution state — the file connectors' scan plan (split queue).
// From allocates one slot per source stage and threads it through every Open
// of that stage, so a connector value stays stateless and can be reused
// across environments or concurrent executions without the stages bleeding
// into each other. Plain Open remains the fallback for direct use, with the
// connector holding the shared state itself (one execution at a time).
type sharedOpener[T any] interface {
	openShared(slot *any, subtask, parallelism int) Reader[T]
}

// openSourceShared opens one subtask's reader, preferring the slot-based
// path when the connector supports it.
func openSourceShared[T any](src Source[T], slot *any, sub, par int) Reader[T] {
	if s, ok := src.(sharedOpener[T]); ok {
		return s.openShared(slot, sub, par)
	}
	return src.Open(sub, par)
}

// typeName renders T for error messages.
func typeName[T any]() string {
	var zero T
	return fmt.Sprintf("%T", zero)
}

// emptySourceFactory keeps a failed From structurally valid; the build
// error recorded on the environment wins before anything runs.
func emptySourceFactory(sub, par int) dataflow.SourceFunc {
	return &dataflow.GenSource{N: 0, Gen: func(int64) dataflow.Record { return dataflow.Record{} }}
}

// loweredReader adapts a typed Reader to the engine's SourceFunc: it boxes
// elements, applies the timestamp extractor, and generates cadence
// watermarks (one per `every` records, trailing the max seen timestamp by
// `lag`), mirroring GenSource's watermarking so connector-built sources
// behave exactly like the legacy constructors.
// stageClock is the shared event-time high-water mark of one source stage:
// every subtask folds its emitted timestamps in, and ReadHandoff promises
// its value. Advance is a CAS-max, so the hot-path cost is one atomic load
// plus a CAS only while the maximum actually moves.
type stageClock struct {
	v atomic.Int64
}

func newStageClock() *stageClock {
	c := &stageClock{}
	c.v.Store(minInt64)
	return c
}

// reset rewinds the clock for a fresh execution of the stage.
func (c *stageClock) reset() { c.v.Store(minInt64) }

func (c *stageClock) advance(ts int64) {
	for {
		cur := c.v.Load()
		if ts <= cur || c.v.CompareAndSwap(cur, ts) {
			return
		}
	}
}

func (c *stageClock) max() int64 { return c.v.Load() }

// readerCanHandoff reports whether a reader may emit ReadHandoff (Hybrid
// does; decorators delegate).
func readerCanHandoff(r any) bool {
	if h, ok := r.(interface{ CanHandoff() bool }); ok {
		return h.CanHandoff()
	}
	return false
}

type loweredReader[T any] struct {
	r     Reader[T]
	ts    func(T) int64
	every int64
	lag   int64
	clock *stageClock // non-nil only for handoff-capable readers

	maxTs     int64
	haveTs    bool
	sinceWM   int64
	havePend  bool
	pendingWM int64
	wmFloor   int64 // max watermark emitted on the wire; never regress
	// atRestMax tracks the maximum event time emitted *before* crossing the
	// handoff — the only timestamps that may seed the stage clock. maxTs
	// keeps advancing with live records, so reseeding the clock from it
	// after a restore would promise the live maximum with no lag allowance.
	atRestMax  int64
	atRestHave bool
}

type loweredReaderState struct {
	MaxTs      int64
	HaveTs     bool
	SinceWM    int64
	WMFloor    int64
	AtRestMax  int64
	AtRestHave bool
	Inner      []byte
}

const minInt64 = -1 << 63

// watermark returns the adapter's current watermark value. Once the reader
// has crossed an at-rest→in-motion handoff, the stage clock is a floor: the
// stragglers still replaying history keep pushing it toward the global
// history maximum, and this subtask's idle/cadence watermarks follow it up —
// without this, a subtask that crossed early (or scanned no splits at all)
// would hold event time at its own stale maximum until live data happened to
// arrive on it.
func (l *loweredReader[T]) watermark() int64 {
	wm := int64(minInt64)
	if l.haveTs {
		wm = l.maxTs - l.lag
	}
	if l.clock != nil && readerCrossedHandoff(l.r) {
		if m := l.clock.max(); m > wm {
			wm = m
		}
	}
	return wm
}

// readerCrossedHandoff reports whether a handoff-capable reader is past its
// at-rest phase (everything it emits next follows the live contract).
func readerCrossedHandoff(r any) bool {
	if h, ok := r.(interface{ CrossedHandoff() bool }); ok {
		return h.CrossedHandoff()
	}
	return false
}

// emitWM stamps a watermark on the wire, clamped so the source's event
// time never regresses.
func (l *loweredReader[T]) emitWM(v int64) (dataflow.Record, bool) {
	if v > l.wmFloor {
		l.wmFloor = v
	}
	return dataflow.Watermark(l.wmFloor), true
}

// Next implements dataflow.SourceFunc.
func (l *loweredReader[T]) Next() (dataflow.Record, bool) {
	if l.havePend {
		l.havePend = false
		return l.emitWM(l.pendingWM)
	}
	k, st := l.r.Next()
	switch st {
	case ReadEnd:
		return dataflow.Record{}, false
	case ReadIdle:
		// Keep the runtime loop moving and event time visible while the
		// input is quiet. An unordered reader's running max is not a sound
		// promise mid-scan, so idling then just re-emits the current floor.
		if readerUnordered(l.r) {
			return l.emitWM(minInt64)
		}
		return l.emitWM(l.watermark())
	case ReadWatermark:
		// Reader-steered watermark (custom connectors): an explicit promise,
		// in event time, that the reader's input is complete up to here —
		// it may advance event time past the data already seen (heartbeats
		// during a lull). The at-rest→in-motion handoff does not come through
		// here; it has its own status below, because its natural clock (file
		// byte offsets) is not event time.
		wm := k.Ts
		if l.haveTs && l.maxTs > wm {
			wm = l.maxTs
		}
		if k.Ts > l.maxTs || !l.haveTs {
			l.maxTs, l.haveTs = k.Ts, true
		}
		return l.emitWM(wm)
	case ReadHandoff:
		// The at-rest phase is complete for this subtask; everything it
		// emits next follows the live contract, so the promise is the
		// *stage-wide* maximum event time — with dynamically assigned
		// splits, a subtask's own share (possibly empty) says nothing about
		// the history as a whole, and a per-subtask promise would leave
		// history windows hanging until live data happened to arrive here.
		wm := int64(minInt64)
		if l.clock != nil {
			wm = l.clock.max()
		}
		if l.ts != nil {
			if l.haveTs && l.maxTs > wm {
				wm = l.maxTs
			}
		} else if k.Ts > wm {
			wm = k.Ts
		}
		if wm == minInt64 {
			return l.emitWM(minInt64) // empty at-rest phase: nothing to promise
		}
		// Fold the promise into this subtask's clock so live-phase idle and
		// cadence watermarks hold the line instead of regressing.
		if wm > l.maxTs || !l.haveTs {
			l.maxTs, l.haveTs = wm, true
		}
		return l.emitWM(wm)
	}
	if l.ts != nil {
		k.Ts = l.ts(k.Value)
	}
	if k.Ts > l.maxTs || !l.haveTs {
		l.maxTs, l.haveTs = k.Ts, true
	}
	// The stage clock tracks the *at-rest* maximum only: once this subtask
	// crosses the handoff its records are live and stop contributing, so the
	// clock freezes at the history max. Folding live timestamps in would
	// lift every crossed subtask's floor to the newest live record — no lag
	// allowance, and promised cross-subtask before the records are seen.
	if l.clock != nil && !readerCrossedHandoff(l.r) {
		l.clock.advance(k.Ts)
		if k.Ts > l.atRestMax || !l.atRestHave {
			l.atRestMax, l.atRestHave = k.Ts, true
		}
	}
	// Cadence watermarks assume the reader emits in (roughly) timestamp
	// order. An unordered reader — a splittable file scan, whose dynamically
	// assigned splits make one subtask's stream jump around the file — gets
	// none: maxTs-lag over an unordered prefix is not a sound promise, and a
	// single early high-timestamp record would mark everything after it late.
	// Event time over such a scan closes out at end of stream (the runtime's
	// +inf watermark) or at a composite's explicit handoff watermark.
	if !readerUnordered(l.r) {
		every := l.every
		if every <= 0 {
			every = 64
		}
		l.sinceWM++
		if l.sinceWM >= every {
			l.sinceWM = 0
			l.havePend = true
			l.pendingWM = l.watermark()
		}
	}
	return box(k), true
}

// Snapshot implements dataflow.SourceFunc.
func (l *loweredReader[T]) Snapshot() ([]byte, error) {
	inner, err := l.r.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(loweredReaderState{
		MaxTs: l.maxTs, HaveTs: l.haveTs, SinceWM: l.sinceWM, WMFloor: l.wmFloor,
		AtRestMax: l.atRestMax, AtRestHave: l.atRestHave, Inner: inner,
	})
	return buf.Bytes(), err
}

// Restore implements dataflow.SourceFunc. A pending cadence watermark is
// dropped, like GenSource's.
func (l *loweredReader[T]) Restore(blob []byte) error {
	var s loweredReaderState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("source restore: %w", err)
	}
	if err := l.r.Restore(s.Inner); err != nil {
		return err
	}
	l.maxTs, l.haveTs, l.sinceWM, l.wmFloor, l.havePend = s.MaxTs, s.HaveTs, s.SinceWM, s.WMFloor, false
	l.atRestMax, l.atRestHave = s.AtRestMax, s.AtRestHave
	if l.clock != nil && s.AtRestHave {
		l.clock.advance(s.AtRestMax)
	}
	return nil
}

// RestoreAll implements dataflow.MultiRestorable: the adapter state of every
// old subtask is unwrapped, the inner blobs go to the reader's own
// RestoreAll (or its positional fallback), and this subtask's watermark
// bookkeeping comes from its own old blob when one exists — a subtask that
// only exists after a rescale starts with fresh bookkeeping, which is sound
// because it has made no watermark promises yet.
func (l *loweredReader[T]) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	inner := make(map[int][]byte, len(blobs))
	states := make(map[int]loweredReaderState, len(blobs))
	for sub, blob := range blobs {
		var s loweredReaderState
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			return fmt.Errorf("source restore: %w", err)
		}
		inner[sub] = s.Inner
		states[sub] = s
	}
	if err := restoreReaderAll(l.r, subtask, parallelism, inner); err != nil {
		return err
	}
	l.maxTs, l.haveTs, l.sinceWM, l.havePend = 0, false, 0, false
	l.wmFloor = minInt64
	l.atRestMax, l.atRestHave = 0, false
	if s, ok := states[subtask]; ok && parallelism == len(blobs) {
		l.maxTs, l.haveTs, l.sinceWM, l.wmFloor = s.MaxTs, s.HaveTs, s.SinceWM, s.WMFloor
		l.atRestMax, l.atRestHave = s.AtRestMax, s.AtRestHave
	}
	// Reseed the stage clock with every old subtask's *at-rest* high-water
	// mark: records consumed before the crash are not replayed, so without
	// this the post-restore handoff would promise less than the history
	// already covered and its windows would hang until live data lifted the
	// watermark. MaxTs would be wrong here — it keeps advancing with live
	// records, and a live-contaminated clock promises the live maximum with
	// no lag allowance. advance() is a CAS-max, so each subtask folding the
	// same set in is idempotent.
	if l.clock != nil {
		for _, s := range states {
			if s.AtRestHave {
				l.clock.advance(s.AtRestMax)
			}
		}
	}
	return nil
}

// OpenSource implements dataflow.SourceOpener by forwarding the runtime's
// per-subtask context (metrics registry) to the reader.
func (l *loweredReader[T]) OpenSource(ctx *dataflow.OpContext) { openReader(l.r, ctx) }

// Err implements dataflow.Failable by delegating to the reader, if it
// reports errors.
func (l *loweredReader[T]) Err() error {
	if f, ok := l.r.(interface{ Err() error }); ok {
		return f.Err()
	}
	return nil
}

// SourceLocalOnly implements dataflow.LocalOnlySource by delegating to the
// reader: live-channel readers exist only in the submitting process, so
// distributed placement pins their node to the coordinator.
func (l *loweredReader[T]) SourceLocalOnly() bool { return readerLocalOnly(l.r) }

// readerLocalOnly probes a reader (or source) for the local-only property;
// decorators delegate to their inner reader.
func readerLocalOnly(r any) bool {
	if lo, ok := r.(interface{ SourceLocalOnly() bool }); ok {
		return lo.SourceLocalOnly()
	}
	return false
}
