package cutty

import (
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

func feed(e *Engine, from, to int64, v func(int64) float64) {
	for ts := from; ts < to; ts++ {
		e.OnWatermark(ts)
		e.OnElement(ts, v(ts))
	}
}

func TestMetaRing(t *testing.T) {
	var r metaRing
	if r.len() != 0 || r.nextAbs() != 0 {
		t.Fatalf("empty ring: len=%d next=%d", r.len(), r.nextAbs())
	}
	for i := 0; i < 100; i++ {
		r.append(sliceMeta{firstTs: int64(i * 10)})
	}
	for i := 0; i < 60; i++ {
		r.popFront()
	}
	if r.base != 60 || r.len() != 40 || r.nextAbs() != 100 {
		t.Fatalf("after pops: base=%d len=%d next=%d", r.base, r.len(), r.nextAbs())
	}
	if r.at(60).firstTs != 600 || r.at(99).firstTs != 990 {
		t.Fatalf("absolute addressing broken")
	}
}

func TestMetaRingFirstAtOrAfter(t *testing.T) {
	var r metaRing
	for _, ts := range []int64{0, 10, 20, 30} {
		r.append(sliceMeta{firstTs: ts})
	}
	cases := []struct{ from, cutoff, want int64 }{
		{0, 15, 2},
		{0, 10, 1},
		{0, 100, 4},
		{2, 5, 2}, // from beyond cutoff: empty range
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := r.firstAtOrAfter(c.from, c.cutoff); got != c.want {
			t.Errorf("firstAtOrAfter(%d,%d) = %d, want %d", c.from, c.cutoff, got, c.want)
		}
	}
}

func TestEvictionBoundsMemory(t *testing.T) {
	e := New(func(engine.Result) {})
	if _, err := e.AddQuery(engine.Query{Window: window.Sliding(100, 10), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	feed(e, 0, 10000, func(int64) float64 { return 1 })
	// Live slices must stay around range/slide = 10, regardless of stream length.
	if s := e.Slices(); s > 20 {
		t.Fatalf("eviction failed: %d live slices after 10k elements", s)
	}
}

func TestEvictAllWhenNoOpenWindows(t *testing.T) {
	e := New(func(engine.Result) {})
	id, _ := e.AddQuery(engine.Query{Window: window.Session(5), Fn: agg.SumF64()})
	feed(e, 0, 100, func(int64) float64 { return 1 })
	e.RemoveQuery(id)
	if s := e.Slices(); s != 0 {
		t.Fatalf("removing the only query should evict all slices, have %d", s)
	}
	if e.StoredPartials() != 0 {
		t.Fatalf("stores not dropped: %d partials", e.StoredPartials())
	}
}

func TestTwoFnStoresShareSlices(t *testing.T) {
	e := New(func(engine.Result) {})
	if _, err := e.AddQuery(engine.Query{Window: window.Sliding(50, 10), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddQuery(engine.Query{Window: window.Sliding(50, 10), Fn: agg.MaxF64()}); err != nil {
		t.Fatal(err)
	}
	feed(e, 0, 500, func(ts int64) float64 { return float64(ts % 7) })
	// Two stores over the same slice ring: partials = 2 * slices.
	if e.StoredPartials() != 2*e.Slices() {
		t.Fatalf("stores misaligned: %d partials, %d slices", e.StoredPartials(), e.Slices())
	}
}

func TestWatermarkRegressionIgnored(t *testing.T) {
	var results []engine.Result
	e := New(func(r engine.Result) { results = append(results, r) })
	if _, err := e.AddQuery(engine.Query{Window: window.Tumbling(10), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	e.OnWatermark(5)
	e.OnElement(5, 1)
	e.OnWatermark(3) // regression: must be ignored
	e.OnWatermark(25)
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if results[0].Start != 0 || results[0].End != 10 || results[0].Value != 1 {
		t.Fatalf("result = %+v", results[0])
	}
}

func TestResultCountsMatchElements(t *testing.T) {
	var results []engine.Result
	e := New(func(r engine.Result) { results = append(results, r) })
	if _, err := e.AddQuery(engine.Query{Window: window.Tumbling(10), Fn: agg.AvgF64()}); err != nil {
		t.Fatal(err)
	}
	feed(e, 0, 100, func(int64) float64 { return 2 })
	e.OnWatermark(math.MaxInt64)
	if len(results) != 10 {
		t.Fatalf("got %d windows", len(results))
	}
	for _, r := range results {
		if r.Count != 10 || r.Value != 2 {
			t.Fatalf("window %+v: want count 10 avg 2", r)
		}
	}
}

func TestRemoveUnknownQueryNoop(t *testing.T) {
	e := New(func(engine.Result) {})
	e.RemoveQuery(42) // must not panic
}

func TestStableUnderManyQueriesSameFn(t *testing.T) {
	var n int
	e := New(func(engine.Result) { n++ })
	for i := 0; i < 16; i++ {
		if _, err := e.AddQuery(engine.Query{Window: window.Sliding(40, 8), Fn: agg.SumF64()}); err != nil {
			t.Fatal(err)
		}
	}
	feed(e, 0, 400, func(int64) float64 { return 1 })
	e.OnWatermark(math.MaxInt64)
	if len(e.stores) != 1 {
		t.Fatalf("expected a single shared store, got %d", len(e.stores))
	}
	if n == 0 {
		t.Fatalf("no results emitted")
	}
}
