package dataflow

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/window"
	"repro/internal/workloads"
)

// Diamond: one source feeding two branches whose results merge in one sink.
func TestDiamondTopology(t *testing.T) {
	g := NewGraph("diamond")
	src := g.AddSource("src", 1, SliceSource(intRecords(100)))
	double := g.AddOperator("double", 1, func() Operator {
		return &MapOp{F: func(r Record) Record { r.Value = r.Value.(float64) * 2; return r }}
	}, Edge{From: src, Part: BroadcastPartition})
	negate := g.AddOperator("negate", 1, func() Operator {
		return &MapOp{F: func(r Record) Record { r.Value = -r.Value.(float64); return r }}
	}, Edge{From: src, Part: BroadcastPartition})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(),
		Edge{From: double, Part: Rebalance}, Edge{From: negate, Part: Rebalance})
	run(t, g)

	var sum float64
	for _, r := range sink.Records() {
		sum += r.Value.(float64)
	}
	// sum(2i) + sum(-i) = sum(i) for i in 0..99 = 4950.
	if sum != 4950 {
		t.Fatalf("diamond sum = %v, want 4950", sum)
	}
	if len(sink.Records()) != 200 {
		t.Fatalf("got %d records, want 200", len(sink.Records()))
	}
}

// Bounded disorder: a source emitting out-of-order timestamps with a lag
// allowance; windows must still be exact because the watermark lags by the
// disorder bound and the window operator reorders on release.
func TestWindowingUnderBoundedDisorder(t *testing.T) {
	const (
		n     = 3000
		bound = 50
	)
	base := workloads.Uniform{Seed: 9, Keys: 3, PerSec: 1000, ValMean: 0}
	dis := workloads.Disordered{Inner: base.At, Bound: bound, Seed: 4}

	g := NewGraph("disorder")
	src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
		return &GenSource{
			N:              n,
			WatermarkEvery: 16,
			Lag:            bound, // watermark allowance == disorder bound
			Gen: func(i int64) Record {
				e := dis.At(i)
				return Data(e.Ts, e.Key, float64(1))
			},
		}
	})
	win := g.AddOperator("win", 1, NewWindowOp(
		WindowQuery{Spec: window.Tumbling(100), Fn: agg.CountF64()},
	), Edge{From: src, Part: HashPartition})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: win, Part: Rebalance})
	run(t, g)

	type wk struct {
		key   uint64
		start int64
	}
	got := map[wk]int64{}
	for _, r := range sink.Records() {
		wr := r.Value.(WindowResult)
		got[wk{r.Key, wr.Start}] += wr.Count
	}
	want := map[wk]int64{}
	for i := int64(0); i < n; i++ {
		e := dis.At(i)
		want[wk{e.Key, (e.Ts / 100) * 100}]++
	}
	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("window %+v count = %d, want %d", k, got[k], w)
		}
	}
}

// Rescale across a shuffle: parallelism 3 -> 2 -> 1.
func TestMixedParallelism(t *testing.T) {
	g := NewGraph("mixed")
	src := g.AddSource("src", 3, SliceSource(intRecords(300)))
	mid := g.AddOperator("mid", 2, func() Operator {
		return &MapOp{F: func(r Record) Record { return r }}
	}, Edge{From: src, Part: Rebalance})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: mid, Part: Rebalance})
	run(t, g)
	if got := len(sink.Records()); got != 300 {
		t.Fatalf("lost records across rescale: %d", got)
	}
}

// A chain hanging off a source (source -> map -> map fused into the source
// subtask) must produce identical results to the unchained plan.
func TestSourceChaining(t *testing.T) {
	build := func(chaining bool) float64 {
		g := NewGraph("srcchain")
		src := g.AddSource("src", 1, SliceSource(intRecords(500)))
		a := g.AddOperator("a", 1, func() Operator {
			return &MapOp{F: func(r Record) Record { r.Value = r.Value.(float64) + 1; return r }}
		}, Edge{From: src, Part: Forward})
		sink := &CollectSink{}
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: a, Part: Forward})
		run(t, g, WithChaining(chaining))
		var sum float64
		for _, r := range sink.Records() {
			sum += r.Value.(float64)
		}
		return sum
	}
	if on, off := build(true), build(false); on != off {
		t.Fatalf("source chaining changed results: %v vs %v", on, off)
	}
}

func TestHash64Spread(t *testing.T) {
	buckets := make([]int, 4)
	for k := uint64(0); k < 4000; k++ {
		buckets[Hash64(k)%4]++
	}
	for i, n := range buckets {
		if n < 800 || n > 1200 {
			t.Fatalf("bucket %d has %d of 4000 keys (poor spread)", i, n)
		}
	}
}

func TestKeyOfStability(t *testing.T) {
	if KeyOf("alpha") != KeyOf("alpha") {
		t.Fatalf("KeyOf not deterministic")
	}
	if KeyOf("alpha") == KeyOf("beta") {
		t.Fatalf("trivial collision")
	}
}
