package baselines

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

// BInt is the element-granularity interval-sharing baseline in the spirit of
// B-Int (Arasu & Widom, "Resource sharing in continuous sliding-window
// aggregates", VLDB 2004): a balanced aggregate tree is maintained over the
// *individual elements* of the stream, and every window of every query is
// answered with an O(log n) range query. Work is shared between queries with
// the same aggregate function (one tree per function), and arbitrary
// deterministic windows are supported — but unlike Cutty the tree must be
// updated for every element (O(log n) per element instead of O(1) per
// slice), and the tree holds one leaf per element instead of one per slice.
// That per-element overhead is the order-of-magnitude gap E2 measures.
type BInt struct {
	emit    engine.Emit
	pos     int64 // absolute position of the next element
	base    int64 // absolute position of the first retained element
	curWM   int64
	queries map[int]*bintQuery
	nextQID int
	active  *bintQuery

	fns    []*agg.FnF64
	fnSlot map[string]int
	trees  []*agg.FlatFAT[agg.Acc]
	ts     []int64 // timestamps of retained elements, aligned with tree leaves
}

type bintQuery struct {
	id       int
	assigner window.Assigner
	slot     int
	open     map[int64]int64 // window id -> absolute begin position
	minBegin int64
}

var _ engine.Engine = (*BInt)(nil)

// NewBInt returns an empty B-Int engine.
func NewBInt(emit engine.Emit) *BInt {
	return &BInt{
		emit:    emit,
		curWM:   math.MinInt64,
		queries: make(map[int]*bintQuery),
		fnSlot:  make(map[string]int),
	}
}

// Name implements engine.Engine.
func (b *BInt) Name() string { return "b-int" }

// AddQuery implements engine.Engine.
func (b *BInt) AddQuery(q engine.Query) (int, error) {
	if q.Fn == nil || q.Window.Factory == nil {
		return 0, fmt.Errorf("b-int: query requires a window spec and an aggregate function")
	}
	slot, ok := b.fnSlot[q.Fn.Name]
	if !ok {
		slot = len(b.fns)
		b.fns = append(b.fns, q.Fn)
		b.fnSlot[q.Fn.Name] = slot
		tree := agg.NewFlatFAT(q.Fn.Identity, q.Fn.Combine, 16)
		for range b.ts {
			tree.Append(q.Fn.Identity)
		}
		b.trees = append(b.trees, tree)
	}
	id := b.nextQID
	b.nextQID++
	b.queries[id] = &bintQuery{
		id:       id,
		assigner: q.Window.Factory(),
		slot:     slot,
		open:     make(map[int64]int64),
	}
	return id, nil
}

// RemoveQuery implements engine.Engine.
func (b *BInt) RemoveQuery(id int) {
	delete(b.queries, id)
	b.evict()
}

// OnElement implements engine.Engine: one O(log n) tree update per distinct
// aggregate function for every element.
func (b *BInt) OnElement(ts int64, v float64) {
	for _, q := range b.queries {
		b.active = q
		q.assigner.OnElement(ts, b.pos, v, (*bintCtx)(b))
	}
	b.active = nil
	b.ts = append(b.ts, ts)
	for i, fn := range b.fns {
		b.trees[i].Append(fn.Lift(v))
	}
	b.pos++
}

// OnWatermark implements engine.Engine.
func (b *BInt) OnWatermark(wm int64) {
	if wm <= b.curWM {
		return
	}
	b.curWM = wm
	for _, q := range b.queries {
		b.active = q
		q.assigner.OnTime(wm, (*bintCtx)(b))
	}
	b.active = nil
	b.evict()
}

// StoredPartials implements engine.Engine: one leaf per retained element per
// function tree.
func (b *BInt) StoredPartials() int {
	n := 0
	for _, t := range b.trees {
		n += t.Len()
	}
	return n
}

func (b *BInt) evict() {
	minNeeded := int64(math.MaxInt64)
	for _, q := range b.queries {
		if len(q.open) > 0 && q.minBegin < minNeeded {
			minNeeded = q.minBegin
		}
	}
	if minNeeded > b.pos {
		minNeeded = b.pos
	}
	for b.base < minNeeded && len(b.ts) > 0 {
		b.ts = b.ts[1:]
		for _, t := range b.trees {
			t.EvictFront()
		}
		b.base++
	}
	if cap(b.ts) > 1024 && len(b.ts) < cap(b.ts)/4 {
		fresh := make([]int64, len(b.ts))
		copy(fresh, b.ts)
		b.ts = fresh
	}
}

type bintCtx BInt

func (c *bintCtx) engine() *BInt { return (*BInt)(c) }

func (c *bintCtx) Open(id int64) {
	b := c.engine()
	q := b.active
	if _, dup := q.open[id]; dup {
		return
	}
	if len(q.open) == 0 || b.pos < q.minBegin {
		q.minBegin = b.pos
	}
	q.open[id] = b.pos
}

func (c *bintCtx) CloseHere(id, end int64) {
	b := c.engine()
	c.close(id, end, b.pos)
}

func (c *bintCtx) CloseAt(id, end, cutoff int64) {
	b := c.engine()
	q := b.active
	begin, ok := q.open[id]
	if !ok {
		return
	}
	lo := int(begin - b.base)
	if lo < 0 {
		lo = 0
	}
	idx := sort.Search(len(b.ts)-lo, func(i int) bool { return b.ts[lo+i] >= cutoff })
	c.close(id, end, b.base+int64(lo+idx))
}

func (c *bintCtx) close(id, end, toAbs int64) {
	b := c.engine()
	q := b.active
	begin, ok := q.open[id]
	if !ok {
		return
	}
	delete(q.open, id)
	if begin == q.minBegin && len(q.open) > 0 {
		q.minBegin = math.MaxInt64
		for _, p := range q.open {
			if p < q.minBegin {
				q.minBegin = p
			}
		}
	}
	fn := b.fns[q.slot]
	acc := b.trees[q.slot].Range(int(begin-b.base), int(toAbs-b.base))
	b.emit(engine.Result{QueryID: q.id, Start: id, End: end, Value: fn.Lower(acc), Count: acc.N})
}
