package streamline

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
)

// Built-in connectors. Each returns a Source[T] for From; they compose —
// Hybrid(JSONL[...](path), Channel(live)) is a pipeline bootstrapped from a
// file of history and continued on a live channel, and Paced(src, rate)
// throttles any connector into a live-stream simulation.

// ---- slices (data at rest) ------------------------------------------------

// Slice returns a bounded in-memory source (data at rest). Element i
// carries event timestamp i; keys are assigned by a later KeyBy (or a
// WithTimestamps option). Elements are split round-robin across subtasks.
func Slice[T any](items []T) Source[T] {
	return sliceSource[T]{make: func(i int64) Keyed[T] { return Keyed[T]{Ts: i, Value: items[i]} }, n: int64(len(items))}
}

// KeyedSlice returns a bounded in-memory source of records carrying
// explicit timestamps and keys, split round-robin across subtasks.
func KeyedSlice[T any](items []Keyed[T]) Source[T] {
	return sliceSource[T]{make: func(i int64) Keyed[T] { return items[i] }, n: int64(len(items))}
}

type sliceSource[T any] struct {
	make func(i int64) Keyed[T]
	n    int64
}

func (s sliceSource[T]) Open(sub, par int) Reader[T] {
	return &sliceReader[T]{src: s, idx: int64(sub), stride: int64(par)}
}

// sliceReader walks the global indices of one subtask's round-robin share.
type sliceReader[T any] struct {
	src    sliceSource[T]
	idx    int64 // next global index
	stride int64
}

func (r *sliceReader[T]) Next() (Keyed[T], ReadStatus) {
	if r.idx >= r.src.n {
		return Keyed[T]{}, ReadEnd
	}
	k := r.src.make(r.idx)
	r.idx += r.stride
	return k, ReadData
}

func (r *sliceReader[T]) Snapshot() ([]byte, error) { return encodeCursor(r.idx) }

func (r *sliceReader[T]) Restore(blob []byte) error {
	idx, err := decodeCursor(blob)
	if err != nil {
		return err
	}
	r.idx = idx
	return nil
}

// ---- generators (at rest or in motion, by count) --------------------------

// Generator returns a deterministic generator source. count < 0 makes it
// unbounded (data in motion); otherwise it is a bounded source that ends —
// the same plan either way. gen computes the i-th record of the given
// subtask; a bounded count is split across subtasks.
func Generator[T any](count int64, gen func(subtask, parallelism int, i int64) Keyed[T]) Source[T] {
	return generatorSource[T]{count: count, gen: gen}
}

type generatorSource[T any] struct {
	count int64
	gen   func(sub, par int, i int64) Keyed[T]
}

func (g generatorSource[T]) Open(sub, par int) Reader[T] {
	return &generatorReader[T]{
		n:   core.SplitCount(g.count, sub, par),
		gen: func(i int64) Keyed[T] { return g.gen(sub, par, i) },
	}
}

type generatorReader[T any] struct {
	n   int64
	gen func(i int64) Keyed[T]
	idx int64
}

func (r *generatorReader[T]) Next() (Keyed[T], ReadStatus) {
	if r.n >= 0 && r.idx >= r.n {
		return Keyed[T]{}, ReadEnd
	}
	k := r.gen(r.idx)
	r.idx++
	return k, ReadData
}

func (r *generatorReader[T]) Snapshot() ([]byte, error) { return encodeCursor(r.idx) }

func (r *generatorReader[T]) Restore(blob []byte) error {
	idx, err := decodeCursor(blob)
	if err != nil {
		return err
	}
	r.idx = idx
	return nil
}

// ---- pacing decorator -----------------------------------------------------

// Paced throttles any source to approximately perSec records per second per
// subtask (wall clock) — the live-stream simulation used by the latency
// experiments, now composable over every connector.
func Paced[T any](src Source[T], perSec float64) Source[T] {
	return pacedSource[T]{inner: src, perSec: perSec}
}

type pacedSource[T any] struct {
	inner  Source[T]
	perSec float64
}

func (p pacedSource[T]) Open(sub, par int) Reader[T] {
	return &pacedReader[T]{inner: p.inner.Open(sub, par), perSec: p.perSec}
}

// openShared implements sharedOpener by delegation: pacing owns no shared
// state, the slot passes straight to the inner connector.
func (p pacedSource[T]) openShared(slot *any, sub, par int) Reader[T] {
	return &pacedReader[T]{inner: openSourceShared(p.inner, slot, sub, par), perSec: p.perSec}
}

// PreferredParallelism implements ParallelismHinter by delegation: pacing
// does not change the inner connector's parallelism needs.
func (p pacedSource[T]) PreferredParallelism() int { return preferredParallelism(p.inner) }

type pacedReader[T any] struct {
	inner  Reader[T]
	perSec float64
	pacer  dataflow.Pacer
}

func (r *pacedReader[T]) Next() (Keyed[T], ReadStatus) {
	r.pacer.Wait(r.perSec)
	return r.inner.Next()
}

func (r *pacedReader[T]) Snapshot() ([]byte, error) { return r.inner.Snapshot() }

// Restore re-anchors the pacing schedule: a restored source emits at perSec
// from the resume point, it does not sleep (or burst) to catch up with the
// pre-crash schedule.
func (r *pacedReader[T]) Restore(blob []byte) error {
	r.pacer.Reset()
	return r.inner.Restore(blob)
}

// RestoreAll implements MultiRestorer by delegation, re-anchoring pacing
// like Restore.
func (r *pacedReader[T]) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	r.pacer.Reset()
	return restoreReaderAll(r.inner, subtask, parallelism, blobs)
}

// OpenSource forwards the runtime's per-subtask context to the inner reader.
func (r *pacedReader[T]) OpenSource(ctx *dataflow.OpContext) { openReader(r.inner, ctx) }

// Unordered delegates the order contract to the inner reader.
func (r *pacedReader[T]) Unordered() bool { return readerUnordered(r.inner) }

// CanHandoff delegates the handoff capability to the inner reader.
func (r *pacedReader[T]) CanHandoff() bool { return readerCanHandoff(r.inner) }

// CrossedHandoff delegates the handoff progress to the inner reader.
func (r *pacedReader[T]) CrossedHandoff() bool { return readerCrossedHandoff(r.inner) }

func (r *pacedReader[T]) Err() error { return readerErr(r.inner) }

// SourceLocalOnly delegates the local-only property to the inner reader.
func (r *pacedReader[T]) SourceLocalOnly() bool { return readerLocalOnly(r.inner) }

// ---- channels (data in motion) --------------------------------------------

// Channel returns a live in-motion source fed by a Go channel; closing the
// channel ends the stream. Subtasks would share the channel (each record
// consumed by exactly one) and a subtask that never receives a record would
// pin downstream event time at -inf, so the connector hints parallelism 1
// (ParallelismHinter) and From runs it single-subtask unless
// WithSourceParallelism overrides.
//
// A channel cannot be replayed: records consumed before a crash are not
// re-emitted after recovery (operator state remains exactly-once).
// Bootstrapping from replayable history belongs to Hybrid.
func Channel[T any](c <-chan Keyed[T]) Source[T] {
	return channelSource[T]{c: c}
}

type channelSource[T any] struct {
	c <-chan Keyed[T]
}

func (s channelSource[T]) Open(sub, par int) Reader[T] {
	return &channelReader[T]{c: s.c, poll: 25 * time.Millisecond}
}

// PreferredParallelism implements ParallelismHinter: a shared channel only
// keeps event time sound with a single subtask.
func (channelSource[T]) PreferredParallelism() int { return 1 }

type channelReader[T any] struct {
	c       <-chan Keyed[T]
	poll    time.Duration
	emitted int64
}

func (r *channelReader[T]) Next() (Keyed[T], ReadStatus) {
	// Fast path: a busy producer keeps the channel non-empty, so the idle
	// timer (an allocation per call) is only armed when it is actually
	// needed.
	select {
	case k, ok := <-r.c:
		return r.received(k, ok)
	default:
	}
	timer := time.NewTimer(r.poll)
	defer timer.Stop()
	select {
	case k, ok := <-r.c:
		return r.received(k, ok)
	case <-timer.C:
		return Keyed[T]{}, ReadIdle
	}
}

func (r *channelReader[T]) received(k Keyed[T], ok bool) (Keyed[T], ReadStatus) {
	if !ok {
		return Keyed[T]{}, ReadEnd
	}
	r.emitted++
	return k, ReadData
}

// SourceLocalOnly marks the reader as bound to this process: its feeding
// channel has no existence in a worker, so distributed placement pins the
// source node to the coordinator.
func (r *channelReader[T]) SourceLocalOnly() bool { return true }

func (r *channelReader[T]) Snapshot() ([]byte, error) { return encodeCursor(r.emitted) }

func (r *channelReader[T]) Restore(blob []byte) error {
	n, err := decodeCursor(blob)
	if err != nil {
		return err
	}
	r.emitted = n
	return nil
}

// ---- files (data at rest) -------------------------------------------------

// FileOption configures a file connector (JSONL, CSV).
type FileOption interface{ applyFile(*fileConfig) }

type fileConfig struct {
	splitSize int64
}

type fileOptionFunc func(*fileConfig)

func (f fileOptionFunc) applyFile(c *fileConfig) { f(c) }

// splitSizeOption configures the split length of both the file connectors
// and the Topic source — one option value satisfying both option interfaces.
type splitSizeOption int64

func (o splitSizeOption) applyFile(c *fileConfig)   { c.splitSize = int64(o) }
func (o splitSizeOption) applyTopic(c *topicConfig) { c.splitSize = int64(o) }

// WithSplitSize sets the target byte-range split length of a splittable
// connector — the file connectors (JSONL, CSV) and the Topic source alike
// (default streamline.DefaultSplitSize). Smaller splits spread a few inputs
// across more subtasks and tighten the re-read window after a recovery;
// larger splits amortize per-split open/seek overhead. Purely physical: the
// records produced are identical at every split size.
func WithSplitSize(bytes int64) interface {
	FileOption
	TopicOption
} {
	return splitSizeOption(bytes)
}

// DefaultSplitSize is the split length of file connectors that do not choose
// one, re-exported from the engine.
const DefaultSplitSize = dataflow.DefaultSplitSize

func resolveFileOpts(opts []FileOption) fileConfig {
	var cfg fileConfig
	for _, o := range opts {
		o.applyFile(&cfg)
	}
	return cfg
}

// JSONL returns a bounded source reading one JSON document per line from
// files at rest, decoded into T with encoding/json. input is a single file,
// a directory (all regular files inside), or a glob pattern. Blank lines are
// skipped. Records default to their byte offset in their file as event
// timestamp — pair with WithTimestamps to extract real event time.
//
// The scan is splittable: files are chopped into newline-aligned byte-range
// splits (WithSplitSize) that a shared assigner hands to the stage's
// subtasks dynamically, so the scan speeds up near-linearly with source
// parallelism and skewed file sizes cannot idle workers. Snapshots record
// (split, byte offset); recovery Seeks to the position — O(remaining split),
// not O(file) — and may restore at a different source parallelism, with the
// pending splits redistributed.
func JSONL[T any](input string, opts ...FileOption) Source[T] {
	return &jsonlSource[T]{input: input, cfg: resolveFileOpts(opts)}
}

type jsonlSource[T any] struct {
	input string
	cfg   fileConfig
	plan  *dataflow.ScanPlan
}

func (j *jsonlSource[T]) newPlan() *dataflow.ScanPlan {
	return &dataflow.ScanPlan{Inputs: []string{j.input}, SplitSize: j.cfg.splitSize}
}

// openShared implements sharedOpener: the stage's slot holds the scan plan
// (split assigner) shared by its subtasks, so the connector value itself
// stays reusable across environments.
func (j *jsonlSource[T]) openShared(slot *any, sub, par int) Reader[T] {
	if sub == 0 || *slot == nil {
		*slot = j.newPlan()
	}
	return j.open((*slot).(*dataflow.ScanPlan), sub, par)
}

func (j *jsonlSource[T]) Open(sub, par int) Reader[T] {
	// Direct-use fallback: the connector holds the shared plan itself.
	// Subtask 0 is opened first (the runtime builds subtasks in order), so
	// every execution starts from a freshly planned scan — but one connector
	// value then serves one execution at a time; From's slot path lifts that
	// restriction.
	if sub == 0 || j.plan == nil {
		j.plan = j.newPlan()
	}
	return j.open(j.plan, sub, par)
}

func (j *jsonlSource[T]) open(plan *dataflow.ScanPlan, sub, par int) Reader[T] {
	return &funcReader[T]{src: &dataflow.FileScanSource{
		Plan: plan, Subtask: sub, Parallelism: par,
		DecodeLine: func(line []byte, off int64) (dataflow.Record, bool, error) {
			if len(bytes.TrimSpace(line)) == 0 {
				return dataflow.Record{}, false, nil
			}
			var v T
			if err := json.Unmarshal(line, &v); err != nil {
				return dataflow.Record{}, false, fmt.Errorf("decode %s: %w", typeName[T](), err)
			}
			return dataflow.Data(off, 0, v), true, nil
		},
	}}
}

// CSV returns a bounded source reading rows from CSV files at rest, parsed
// into T with the given row parser (rows may vary in width). input is a
// single file, a directory, or a glob pattern; skipHeader drops the first
// row of every file. Records default to their byte offset in their file as
// event timestamp — pair with WithTimestamps to extract real event time.
//
// The scan is splittable like JSONL's, with one safety valve: a CSV file is
// only chopped mid-file when it contains no quote characters, because a
// quoted field may span lines and make byte-range alignment ambiguous.
// Files with quotes scan as one split each (parallelism then comes from the
// file count); seek-based restore works either way, since snapshots record
// row boundaries.
func CSV[T any](input string, skipHeader bool, parse func(row []string) (T, error), opts ...FileOption) Source[T] {
	return &csvSource[T]{input: input, skipHeader: skipHeader, parse: parse, cfg: resolveFileOpts(opts)}
}

type csvSource[T any] struct {
	input      string
	skipHeader bool
	parse      func(row []string) (T, error)
	cfg        fileConfig
	plan       *dataflow.ScanPlan
}

func (c *csvSource[T]) newPlan() *dataflow.ScanPlan {
	return &dataflow.ScanPlan{Inputs: []string{c.input}, SplitSize: c.cfg.splitSize, CSV: true, Header: c.skipHeader}
}

// openShared implements sharedOpener, like jsonlSource's.
func (c *csvSource[T]) openShared(slot *any, sub, par int) Reader[T] {
	if sub == 0 || *slot == nil {
		*slot = c.newPlan()
	}
	return c.open((*slot).(*dataflow.ScanPlan), sub, par)
}

func (c *csvSource[T]) Open(sub, par int) Reader[T] {
	// Direct-use fallback; see jsonlSource.Open.
	if sub == 0 || c.plan == nil {
		c.plan = c.newPlan()
	}
	return c.open(c.plan, sub, par)
}

func (c *csvSource[T]) open(plan *dataflow.ScanPlan, sub, par int) Reader[T] {
	return &funcReader[T]{src: &dataflow.FileScanSource{
		Plan: plan, Subtask: sub, Parallelism: par,
		DecodeRow: func(row []string, off int64) (dataflow.Record, error) {
			v, err := c.parse(row)
			if err != nil {
				return dataflow.Record{}, err
			}
			return dataflow.Data(off, 0, v), nil
		},
	}}
}

// funcReader bridges an engine-level SourceFunc whose data records carry T
// payloads into a typed Reader, forwarding the optional source capabilities
// (failure reporting, multi-blob restore, scan metrics, order contract).
type funcReader[T any] struct {
	src dataflow.SourceFunc
}

func (f *funcReader[T]) Next() (Keyed[T], ReadStatus) {
	r, ok := f.src.Next()
	if !ok {
		return Keyed[T]{}, ReadEnd
	}
	if r.Kind == dataflow.KindWatermark {
		return Keyed[T]{Ts: r.Ts}, ReadWatermark
	}
	return unbox[T](r), ReadData
}

func (f *funcReader[T]) Snapshot() ([]byte, error) { return f.src.Snapshot() }

func (f *funcReader[T]) Restore(blob []byte) error { return f.src.Restore(blob) }

// RestoreAll implements MultiRestorer by handing the node-wide blob set to
// the engine source (splittable scans redistribute; anything else falls back
// to the positional per-subtask restore).
func (f *funcReader[T]) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	return dataflow.RestoreSource(f.src, subtask, parallelism, blobs)
}

// OpenSource forwards the runtime's per-subtask context (metrics registry)
// to the engine source.
func (f *funcReader[T]) OpenSource(ctx *dataflow.OpContext) {
	if o, ok := f.src.(dataflow.SourceOpener); ok {
		o.OpenSource(ctx)
	}
}

// Unordered reports whether the wrapped source emits out of timestamp order
// (splittable scans do); the source stage then defers event time to the
// end-of-stream close-out instead of cadence watermarks.
func (f *funcReader[T]) Unordered() bool {
	if u, ok := f.src.(interface{ Unordered() bool }); ok {
		return u.Unordered()
	}
	return false
}

// SourceLocalOnly delegates the local-only property to the wrapped source.
func (f *funcReader[T]) SourceLocalOnly() bool { return readerLocalOnly(f.src) }

func (f *funcReader[T]) Err() error {
	if fail, ok := f.src.(dataflow.Failable); ok {
		return fail.Err()
	}
	return nil
}

// ---- hybrid (at rest → in motion) -----------------------------------------

// Hybrid is the at-rest→in-motion handoff — the paper's headline scenario:
// replay a bounded history source, emit a handoff watermark at the
// history's max event timestamp the moment it ends, then atomically switch
// to the live source. One pipeline bootstraps from stored data and
// continues on the live stream, with no Lambda-style second system.
//
// Snapshots record the phase and both inner positions, so a checkpoint
// taken during replay restores into the history phase and still crosses
// the handoff exactly once. Live records must carry timestamps after the
// history's max; older ones are late relative to the handoff watermark.
func Hybrid[T any](history, live Source[T]) Source[T] {
	return hybridSource[T]{history: history, live: live}
}

type hybridSource[T any] struct {
	history, live Source[T]
}

func (h hybridSource[T]) Open(sub, par int) Reader[T] {
	return &hybridReader[T]{history: h.history.Open(sub, par), live: h.live.Open(sub, par)}
}

// hybridSlots carries the per-stage shared state of both hybrid phases.
type hybridSlots struct {
	history, live any
}

// openShared implements sharedOpener: each phase gets its own sub-slot.
func (h hybridSource[T]) openShared(slot *any, sub, par int) Reader[T] {
	if sub == 0 || *slot == nil {
		*slot = &hybridSlots{}
	}
	s := (*slot).(*hybridSlots)
	return &hybridReader[T]{
		history: openSourceShared(h.history, &s.history, sub, par),
		live:    openSourceShared(h.live, &s.live, sub, par),
	}
}

// PreferredParallelism implements ParallelismHinter by delegation to the
// history phase: the handoff is the part that must scale, and a splittable
// history (JSONL, CSV) replays near-linearly with subtasks. The live phase
// no longer drags the stage to parallelism 1 when it is a Channel — after
// the handoff every subtask's event time is floored at its handoff
// watermark, so sharing the channel across subtasks cannot pin event time at
// -inf the way a bare Channel source can. Use WithSourceParallelism to pin
// the stage explicitly.
func (h hybridSource[T]) PreferredParallelism() int {
	return preferredParallelism(h.history)
}

type hybridReader[T any] struct {
	history, live Reader[T]
	inLive        bool // past the handoff
	maxTs         int64
	haveTs        bool
}

type hybridReaderState struct {
	Live    bool
	MaxTs   int64
	HaveTs  bool
	History []byte
	LivePos []byte
}

func (h *hybridReader[T]) Next() (Keyed[T], ReadStatus) {
	if !h.inLive {
		k, st := h.history.Next()
		switch st {
		case ReadData:
			if k.Ts > h.maxTs || !h.haveTs {
				h.maxTs, h.haveTs = k.Ts, true
			}
			return k, ReadData
		case ReadWatermark, ReadIdle, ReadHandoff:
			return k, st
		}
		// A history that failed mid-stream ends the whole stream here
		// instead of handing off: the runtime only inspects Err at end of
		// stream, and an unbounded live phase would bury a truncated
		// history forever.
		if readerErr(h.history) != nil {
			return Keyed[T]{}, ReadEnd
		}
		// History exhausted: hand off. The switch and the handoff signal
		// happen in this one call, so a checkpoint can never fall between
		// them. Ts carries this subtask's own history maximum (minInt64
		// when its share was empty — with dynamic split assignment a
		// subtask may well replay nothing); the runtime turns the signal
		// into a stage-wide watermark promise.
		h.inLive = true
		ts := int64(minInt64)
		if h.haveTs {
			ts = h.maxTs
		}
		return Keyed[T]{Ts: ts}, ReadHandoff
	}
	return h.live.Next()
}

// CanHandoff marks the reader as a ReadHandoff emitter, opting the source
// stage into shared event-time tracking for the stage-wide handoff promise.
func (h *hybridReader[T]) CanHandoff() bool { return true }

// CrossedHandoff reports whether this subtask is past the handoff; its
// idle/cadence watermarks then track the stage clock, which the straggling
// subtasks keep pushing toward the global history maximum.
func (h *hybridReader[T]) CrossedHandoff() bool { return h.inLive }

func (h *hybridReader[T]) Snapshot() ([]byte, error) {
	hist, err := h.history.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("hybrid history snapshot: %w", err)
	}
	live, err := h.live.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("hybrid live snapshot: %w", err)
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(hybridReaderState{
		Live: h.inLive, MaxTs: h.maxTs, HaveTs: h.haveTs, History: hist, LivePos: live,
	})
	return buf.Bytes(), err
}

func (h *hybridReader[T]) Restore(blob []byte) error {
	var s hybridReaderState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("hybrid restore: %w", err)
	}
	if err := h.history.Restore(s.History); err != nil {
		return fmt.Errorf("hybrid history restore: %w", err)
	}
	if err := h.live.Restore(s.LivePos); err != nil {
		return fmt.Errorf("hybrid live restore: %w", err)
	}
	h.inLive, h.maxTs, h.haveTs = s.Live, s.MaxTs, s.HaveTs
	return nil
}

// RestoreAll implements MultiRestorer: every subtask blob decomposes into
// the phase flag and the two inner positions, and each inner reader restores
// from its own node-wide blob set — so a hybrid over a splittable history
// rescales while the replay is still in flight. The restored phase is
// aggregated: the stage re-enters the history phase unless every old subtask
// had already crossed the handoff (then no history work remains), and the
// handoff watermark is re-derived from the maximum event time any subtask
// had seen. A live phase no subtask had entered restores fresh; live state
// that was already accumulating redistributes only if the live reader itself
// is a MultiRestorer (or the parallelism is unchanged).
func (h *hybridReader[T]) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	hist := make(map[int][]byte, len(blobs))
	live := make(map[int][]byte, len(blobs))
	allLive, anyLive := true, false
	var maxTs int64
	haveTs := false
	for sub, blob := range blobs {
		var s hybridReaderState
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			return fmt.Errorf("hybrid restore: %w", err)
		}
		hist[sub] = s.History
		live[sub] = s.LivePos
		if s.Live {
			anyLive = true
		} else {
			allLive = false
		}
		if s.HaveTs && (!haveTs || s.MaxTs > maxTs) {
			maxTs, haveTs = s.MaxTs, true
		}
	}
	if err := restoreReaderAll(h.history, subtask, parallelism, hist); err != nil {
		return fmt.Errorf("hybrid history restore: %w", err)
	}
	if err := h.restoreLive(subtask, parallelism, live, anyLive); err != nil {
		return fmt.Errorf("hybrid live restore: %w", err)
	}
	h.inLive = allLive
	h.maxTs, h.haveTs = maxTs, haveTs
	return nil
}

// restoreLive restores the live half of a multi-blob recovery. While no old
// subtask had entered the live phase, the blobs hold only pre-start
// bookkeeping and the live reader starts fresh at the new parallelism;
// started means *any* subtask had crossed — its live state may hold
// consumed positions and must genuinely restore or fail.
func (h *hybridReader[T]) restoreLive(subtask, parallelism int, blobs map[int][]byte, started bool) error {
	if m, ok := h.live.(MultiRestorer); ok {
		return m.RestoreAll(subtask, parallelism, blobs)
	}
	if blob, ok := blobs[subtask]; ok && len(blobs) == parallelism {
		return h.live.Restore(blob)
	}
	if !started {
		return nil
	}
	return fmt.Errorf("live source state of %d subtasks does not redistribute to parallelism %d", len(blobs), parallelism)
}

// OpenSource forwards the runtime's per-subtask context to both phases.
func (h *hybridReader[T]) OpenSource(ctx *dataflow.OpContext) {
	openReader(h.history, ctx)
	openReader(h.live, ctx)
}

// Unordered reports the order contract of the phase currently replaying.
func (h *hybridReader[T]) Unordered() bool {
	if !h.inLive {
		return readerUnordered(h.history)
	}
	return readerUnordered(h.live)
}

// SourceLocalOnly reports local-only when either phase is (the live half
// usually is a channel).
func (h *hybridReader[T]) SourceLocalOnly() bool {
	return readerLocalOnly(h.history) || readerLocalOnly(h.live)
}

func (h *hybridReader[T]) Err() error {
	if err := readerErr(h.history); err != nil {
		return err
	}
	return readerErr(h.live)
}

// readerErr returns the terminal error of a reader, if it reports one.
func readerErr[T any](r Reader[T]) error {
	if f, ok := r.(interface{ Err() error }); ok {
		return f.Err()
	}
	return nil
}

// readerUnordered reports a reader's order contract (false when it does not
// declare one — index-addressed readers emit in order).
func readerUnordered[T any](r Reader[T]) bool {
	if u, ok := r.(interface{ Unordered() bool }); ok {
		return u.Unordered()
	}
	return false
}

// openReader forwards the per-subtask OpContext to readers that accept one.
func openReader(r any, ctx *dataflow.OpContext) {
	if o, ok := r.(interface{ OpenSource(*dataflow.OpContext) }); ok {
		o.OpenSource(ctx)
	}
}

// restoreReaderAll restores one reader from the node-wide blob set:
// MultiRestorer readers redistribute, everything else falls back to the
// positional per-subtask Restore, which requires the parallelism to match
// the snapshot's.
func restoreReaderAll[T any](r Reader[T], subtask, parallelism int, blobs map[int][]byte) error {
	if m, ok := r.(MultiRestorer); ok {
		return m.RestoreAll(subtask, parallelism, blobs)
	}
	oldPar := 0
	for sub := range blobs {
		if sub+1 > oldPar {
			oldPar = sub + 1
		}
	}
	if oldPar != parallelism {
		return fmt.Errorf("source state of %d subtasks does not redistribute to parallelism %d (only splittable scans rescale)", oldPar, parallelism)
	}
	blob, ok := blobs[subtask]
	if !ok {
		return fmt.Errorf("source snapshot is missing subtask %d", subtask)
	}
	return r.Restore(blob)
}

// ---- cursor encoding ------------------------------------------------------

// encodeCursor serializes a single position counter — the snapshot format
// shared by the index-addressed readers.
func encodeCursor(idx int64) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(idx)
	return buf.Bytes(), err
}

func decodeCursor(blob []byte) (int64, error) {
	var idx int64
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&idx); err != nil {
		return 0, fmt.Errorf("source cursor restore: %w", err)
	}
	return idx, nil
}
